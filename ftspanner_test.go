package ftspanner_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/ftspanner/ftspanner"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g := ftspanner.CompleteGraph(9)
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.NumEdges() == 0 || res.Spanner.NumEdges() > g.NumEdges() {
		t.Fatalf("implausible spanner size %d", res.Spanner.NumEdges())
	}
	if err := ftspanner.CheckAllFaults(res); err != nil {
		t.Errorf("exhaustive check: %v", err)
	}
	if err := ftspanner.CheckAllFaultsParallel(res, 4); err != nil {
		t.Errorf("parallel exhaustive check: %v", err)
	}
	if err := ftspanner.CheckFaults(res, []int{0, 1}); err != nil {
		t.Errorf("specific fault set: %v", err)
	}
	s, err := ftspanner.WorstStretch(res, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if s > 3 {
		t.Errorf("worst stretch %v > 3", s)
	}
}

func TestFacadeEFTAndEdgeBlocking(t *testing.T) {
	g, err := ftspanner.RandomGraph(20, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftspanner.BuildEFT(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ftspanner.CheckRandomFaults(res, 30, 2); err != nil {
		t.Errorf("random check: %v", err)
	}
	pairs, err := ftspanner.EdgeBlockingSet(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) > res.Faults*res.Spanner.NumEdges() {
		t.Error("edge blocking set over budget")
	}
	if _, err := ftspanner.BlockingSet(res); err == nil {
		t.Error("vertex blocking set on EFT result should error")
	}
}

func TestFacadeBlockingAndSubsample(t *testing.T) {
	g, err := ftspanner.RandomGraph(40, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := ftspanner.BlockingSet(res)
	if err != nil {
		t.Fatal(err)
	}
	sub, stats, err := ftspanner.Subsample(res.Spanner, pairs, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Girth <= 4 {
		t.Errorf("subsample girth %d, want > 4", stats.Girth)
	}
	if sub.NumVertices() != stats.Nodes {
		t.Error("stats disagree with returned graph")
	}
}

func TestFacadeGenerators(t *testing.T) {
	if g := ftspanner.GridGraph(3, 3); g.NumVertices() != 9 || g.NumEdges() != 12 {
		t.Error("grid generator wrong")
	}
	geo, pts := ftspanner.RandomGeometricGraph(30, 0.4, 5)
	if geo.NumVertices() != 30 || len(pts) != 30 {
		t.Error("geometric generator wrong")
	}
	w, err := ftspanner.RandomizeWeights(ftspanner.CompleteGraph(5), 1, 2, 6)
	if err != nil || w.NumEdges() != 10 {
		t.Error("randomize weights wrong")
	}
	lb := ftspanner.LowerBoundGraph(10, 3, 4, 7)
	if lb.NumVertices() != 20 { // 10 base vertices × 2 copies
		t.Errorf("lower-bound graph n = %d, want 20", lb.NumVertices())
	}
}

func TestFacadeViolationSurfaces(t *testing.T) {
	// Build with f=1 and then check a 2-fault set that disconnects: the
	// violation must surface as *ftspanner.Violation.
	g := ftspanner.NewGraph(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 0, 1)
	res, err := ftspanner.BuildVFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = ftspanner.CheckFaults(res, []int{1, 3})
	if err == nil {
		t.Skip("C4 tolerates this fault set at stretch 3 with all edges kept")
	}
	var viol *ftspanner.Violation
	if !errors.As(err, &viol) {
		t.Errorf("want *Violation, got %T: %v", err, err)
	}
}

func TestFacadeEncodeDecodeRoundTrip(t *testing.T) {
	g, _ := ftspanner.RandomGeometricGraph(15, 0.5, 8)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ftspanner.DecodeGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != g.NumEdges() || got.NumVertices() != g.NumVertices() {
		t.Error("round trip mismatch")
	}
}

func TestFacadeConservativeAndParallel(t *testing.T) {
	g, err := ftspanner.RandomGraph(25, 150, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := ftspanner.BuildConservative(g, ftspanner.Options{
		Stretch: 3, Faults: 2, Mode: ftspanner.VertexFaults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cons.Spanner.NumEdges() < exact.Spanner.NumEdges() {
		t.Error("conservative output smaller than exact")
	}
	if err := ftspanner.CheckRandomFaultsParallel(cons, 60, 4, 9); err != nil {
		t.Errorf("parallel check: %v", err)
	}
	if err := ftspanner.CheckRandomFaultsParallel(exact, 60, 0, 9); err != nil {
		t.Errorf("parallel check (exact): %v", err)
	}
	if _, err := ftspanner.BlockingSet(cons); err == nil {
		t.Error("blocking set on conservative result should error (no witnesses)")
	}
	// Baseline builders through the facade.
	uni, err := ftspanner.BuildUnionEFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	samp, err := ftspanner.BuildSamplingVFT(g, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, br := range []*ftspanner.BaselineResult{uni, samp} {
		if _, err := ftspanner.NewVerifierFor(g, br.Spanner, br.Kept); err != nil {
			t.Errorf("baseline verifier: %v", err)
		}
	}
}

func TestFacadeBuildOptions(t *testing.T) {
	g := ftspanner.CompleteGraph(7)
	res, err := ftspanner.Build(g, ftspanner.Options{
		Stretch: 3,
		Faults:  1,
		Mode:    ftspanner.EdgeFaults,
		Oracle:  ftspanner.OracleOptions{DisableMemo: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ftspanner.EdgeFaults {
		t.Error("mode not echoed")
	}
	if res.Stats.Dijkstras <= 0 {
		t.Error("stats missing")
	}
	if math.IsNaN(res.Stretch) || res.Stretch != 3 {
		t.Error("stretch not echoed")
	}
}
