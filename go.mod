module github.com/ftspanner/ftspanner

go 1.24
