package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/ftspanner/ftspanner"
	"github.com/ftspanner/ftspanner/internal/fault"
)

// componentBench is one entry of the -benchjson report: a component
// benchmark's timing/allocation profile plus the oracle instrumentation of a
// single representative run. The schema is the repository's recorded perf
// trajectory (BENCH_PR<n>.json at the repo root); CI uploads one per build.
type componentBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Oracle instrumentation from one representative run (not per-op).
	Dijkstras     int64 `json:"dijkstras,omitempty"`
	OracleCalls   int64 `json:"oracle_calls,omitempty"`
	WitnessHits   int64 `json:"witness_hits,omitempty"`
	WitnessMisses int64 `json:"witness_misses,omitempty"`
	KeptEdges     int   `json:"kept_edges,omitempty"`
}

// benchReport is the top-level -benchjson document.
type benchReport struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Benchmarks []componentBench `json:"benchmarks"`
}

// buildCase is one oracle/build workload measured by -benchjson. The cases
// mirror the component benchmarks in bench_test.go so `go test -bench` and
// the JSON trajectory describe the same workloads.
type buildCase struct {
	name    string
	mode    ftspanner.Mode
	n, m    int
	seed    int64
	stretch float64
	faults  int
}

var buildCases = []buildCase{
	{name: "BuildVFTf1", mode: ftspanner.VertexFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 1},
	{name: "BuildVFTf3", mode: ftspanner.VertexFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 3},
	{name: "BuildEFTf1", mode: ftspanner.EdgeFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 1},
	{name: "BuildEFTf3", mode: ftspanner.EdgeFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 3},
}

// runBenchJSON measures the component benchmarks and writes the JSON report
// to path ("-" for stdout).
func runBenchJSON(path string, out io.Writer) error {
	report := benchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: make([]componentBench, 0, len(buildCases)+1),
	}

	for _, c := range buildCases {
		g, err := ftspanner.RandomGraph(c.n, c.m, c.seed)
		if err != nil {
			return err
		}
		opts := ftspanner.Options{Stretch: c.stretch, Faults: c.faults, Mode: c.mode}

		// One instrumented run for the counters the testing harness cannot
		// see (Dijkstras, witness cache traffic, output size)...
		res, err := ftspanner.Build(g, opts)
		if err != nil {
			return err
		}
		// ...then the timed runs.
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ftspanner.Build(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		report.Benchmarks = append(report.Benchmarks, componentBench{
			Name:          c.name,
			NsPerOp:       float64(br.NsPerOp()),
			AllocsPerOp:   br.AllocsPerOp(),
			BytesPerOp:    br.AllocedBytesPerOp(),
			Dijkstras:     res.Stats.Dijkstras,
			OracleCalls:   res.Stats.OracleCalls,
			WitnessHits:   res.Stats.WitnessHits,
			WitnessMisses: res.Stats.WitnessMisses,
			KeptEdges:     len(res.Kept),
		})
		fmt.Fprintf(out, "%-12s %12.0f ns/op %8d allocs/op %10d B/op  dijkstras=%d\n",
			c.name, float64(br.NsPerOp()), br.AllocsPerOp(), br.AllocedBytesPerOp(), res.Stats.Dijkstras)
	}

	if oracleBench, err := oracleQueryBench(out); err != nil {
		return err
	} else {
		report.Benchmarks = append(report.Benchmarks, oracleBench)
	}

	if path == "-" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// oracleQueryBench measures the oracle query hot path in isolation (the
// mirror of BenchmarkOracleQuery): repeated FindFaultSet calls against a
// fixed prebuilt spanner.
func oracleQueryBench(out io.Writer) (componentBench, error) {
	g, err := ftspanner.RandomGraph(120, 1200, 2)
	if err != nil {
		return componentBench{}, err
	}
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		return componentBench{}, err
	}
	br := testing.Benchmark(func(b *testing.B) {
		oracle, err := fault.NewOracle(res.Spanner, fault.Vertices, fault.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := g.Edge(i % g.NumEdges())
			if _, _, err := oracle.FindFaultSet(e.U, e.V, 3*e.Weight, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	fmt.Fprintf(out, "%-12s %12.0f ns/op %8d allocs/op %10d B/op\n",
		"OracleQuery", float64(br.NsPerOp()), br.AllocsPerOp(), br.AllocedBytesPerOp())
	return componentBench{
		Name:        "OracleQuery",
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
	}, nil
}
