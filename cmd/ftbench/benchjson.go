package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"github.com/ftspanner/ftspanner"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/obs"
)

// componentBench is one entry of the -benchjson report: a component
// benchmark's timing/allocation profile plus the oracle instrumentation of a
// single representative run. The schema is the repository's recorded perf
// trajectory (BENCH_PR<n>.json at the repo root); CI uploads one per build.
type componentBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Oracle instrumentation from one representative run (not per-op).
	Dijkstras     int64 `json:"dijkstras,omitempty"`
	OracleCalls   int64 `json:"oracle_calls,omitempty"`
	WitnessHits   int64 `json:"witness_hits,omitempty"`
	WitnessMisses int64 `json:"witness_misses,omitempty"`
	// WitnessHitRate is hits/(hits+misses); WitnessSeed* break out the
	// structure-aware cache's seed trials (hits included in WitnessHits).
	WitnessHitRate   float64 `json:"witness_hit_rate,omitempty"`
	WitnessSeedTries int64   `json:"witness_seed_tries,omitempty"`
	WitnessSeedHits  int64   `json:"witness_seed_hits,omitempty"`
	KeptEdges        int     `json:"kept_edges,omitempty"`
	// Speculation instrumentation (Parallelism > 1 cases): spec_hits +
	// spec_waste == spec_queries; rounds/requeries account how invalidated
	// answers were resolved; pipeline_depth is the effective depth.
	SpecBatches   int64   `json:"spec_batches,omitempty"`
	SpecQueries   int64   `json:"spec_queries,omitempty"`
	SpecHits      int64   `json:"spec_hits,omitempty"`
	SpecWaste     int64   `json:"spec_waste,omitempty"`
	SpecRounds    int64   `json:"spec_rounds,omitempty"`
	SpecRequeries int64   `json:"spec_requeries,omitempty"`
	SpecHitRate   float64 `json:"spec_hit_rate,omitempty"`
	PipelineDepth int     `json:"pipeline_depth,omitempty"`
	// SpannerDigest is the built spanner's content hash: parallel and
	// sequential runs of the same workload must record the same digest (the
	// determinism guarantee, checked at generation time).
	SpannerDigest string `json:"spanner_digest,omitempty"`
	// SpeedupVsBaseline is NsPerOp(baseline case)/NsPerOp(this case) for
	// cases declaring a baseline — the recorded parallel-vs-sequential win.
	// Wall-clock speedup requires runnable CPUs; see the report's cpus field.
	Baseline          string  `json:"baseline,omitempty"`
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline,omitempty"`
	// OracleQueryLatency summarizes sampled per-query oracle latency for
	// cases run with the latency hook attached — the same obs.Summary shape
	// ftserve reports in /metrics, so the recorded trajectory and the live
	// service share one schema.
	OracleQueryLatency *obs.Summary `json:"oracle_query_latency,omitempty"`
}

// benchReport is the top-level -benchjson document. CPUs records the
// runnable processors the run had (runtime.GOMAXPROCS): parallel-build
// speedups are only meaningful relative to it — on a single-CPU host the
// speculative builder can at best tie the sequential one.
type benchReport struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	Benchmarks []componentBench `json:"benchmarks"`
}

// buildCase is one oracle/build workload measured by -benchjson. The cases
// mirror the component benchmarks in bench_test.go so `go test -bench` and
// the JSON trajectory describe the same workloads.
type buildCase struct {
	name    string
	mode    ftspanner.Mode
	n, m    int
	seed    int64
	stretch float64
	faults  int
	// levels > 0 quantizes weights to {1..levels} (same-weight batches for
	// the speculative builder); 0 keeps the generator's unit weights.
	levels int
	// parallelism/pipeline are core.Options.{Parallelism,Pipeline}.
	parallelism int
	pipeline    int
	// baseline names an earlier case to compute a speedup against.
	baseline string
	// observed attaches the sampled oracle-latency hook during the timed
	// runs, measuring the observability overhead against the baseline case
	// (speedup_vs_baseline ≈ 1 means the hook is free).
	observed bool
}

var buildCases = []buildCase{
	{name: "BuildVFTf1", mode: ftspanner.VertexFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 1},
	{name: "BuildVFTf3", mode: ftspanner.VertexFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 3},
	{name: "BuildEFTf1", mode: ftspanner.EdgeFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 1},
	{name: "BuildEFTf3", mode: ftspanner.EdgeFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 3},
	// BuildVFTf1 again with the latency-sampling hook attached: the
	// recorded speedup_vs_baseline is the histogram overhead (target <2%).
	{name: "BuildVFTf1Obs", mode: ftspanner.VertexFaults, n: 80, m: 800, seed: 1, stretch: 3, faults: 1,
		baseline: "BuildVFTf1", observed: true},
	// The parallel-build large fixture: quantized weights give ~170-edge
	// same-weight batches, the regime the speculative scan was built for.
	{name: "LargeVFTf2Seq", mode: ftspanner.VertexFaults, n: 150, m: 2000, seed: 7, stretch: 3, faults: 2, levels: 12},
}

// parallelCases derives the large-fixture parallel cases from the
// -parallelism/-pipeline flags: depth 1 (PR3-style barrier between
// speculate and commit) and the pipelined depth, both against the
// sequential baseline. Default flags reproduce the recorded trajectory
// names (LargeVFTf2Par4, LargeVFTf2Par4Pipe4).
func parallelCases(parallelism, pipeline int) []buildCase {
	var seq buildCase
	for _, c := range buildCases {
		if c.name == "LargeVFTf2Seq" {
			seq = c
		}
	}
	par := seq
	par.name = fmt.Sprintf("LargeVFTf2Par%d", parallelism)
	par.parallelism = parallelism
	par.pipeline = 1
	par.baseline = seq.name
	pipe := par
	pipe.name = fmt.Sprintf("LargeVFTf2Par%dPipe%d", parallelism, pipeline)
	pipe.pipeline = pipeline
	return []buildCase{par, pipe}
}

// caseGraph materializes a case's input graph.
func caseGraph(c buildCase) (*ftspanner.Graph, error) {
	g, err := ftspanner.RandomGraph(c.n, c.m, c.seed)
	if err != nil {
		return nil, err
	}
	if c.levels > 0 {
		return ftspanner.QuantizeWeights(g, c.levels, c.seed)
	}
	return g, nil
}

// runBenchJSON measures the component benchmarks and writes the JSON report
// to path ("-" for stdout). parallelism and pipeline parameterize the large
// fixture's parallel cases.
func runBenchJSON(path string, out io.Writer, parallelism, pipeline int) error {
	cases := append(append([]buildCase{}, buildCases...), parallelCases(parallelism, pipeline)...)
	report := benchReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.GOMAXPROCS(0),
		Benchmarks: make([]componentBench, 0, len(cases)+1),
	}

	digests := make(map[string]string) // case name -> spanner digest
	for _, c := range cases {
		g, err := caseGraph(c)
		if err != nil {
			return err
		}
		opts := ftspanner.Options{Stretch: c.stretch, Faults: c.faults, Mode: c.mode,
			Parallelism: c.parallelism, Pipeline: c.pipeline}
		var queryHist *obs.Histogram
		if c.observed {
			queryHist = obs.NewHistogram()
			opts.Oracle.ObserveQuery = queryHist.Record
		}

		// One instrumented run for the counters the testing harness cannot
		// see (Dijkstras, witness cache traffic, output size)...
		res, err := ftspanner.Build(g, opts)
		if err != nil {
			return err
		}
		// ...then the timed runs.
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ftspanner.Build(g, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		entry := componentBench{
			Name:             c.name,
			NsPerOp:          float64(br.NsPerOp()),
			AllocsPerOp:      br.AllocsPerOp(),
			BytesPerOp:       br.AllocedBytesPerOp(),
			Dijkstras:        res.Stats.Dijkstras,
			OracleCalls:      res.Stats.OracleCalls,
			WitnessHits:      res.Stats.WitnessHits,
			WitnessMisses:    res.Stats.WitnessMisses,
			WitnessHitRate:   res.Stats.WitnessHitRate(),
			WitnessSeedTries: res.Stats.WitnessSeedTries,
			WitnessSeedHits:  res.Stats.WitnessSeedHits,
			KeptEdges:        len(res.Kept),
			SpecBatches:      res.Stats.SpecBatches,
			SpecQueries:      res.Stats.SpecQueries,
			SpecHits:         res.Stats.SpecHits,
			SpecWaste:        res.Stats.SpecWaste,
			SpecRounds:       res.Stats.SpecRounds,
			SpecRequeries:    res.Stats.SpecRequeries,
			SpecHitRate:      res.Stats.SpecHitRate(),
			PipelineDepth:    res.Stats.PipelineDepth,
			SpannerDigest:    res.Spanner.Digest(),
		}
		if queryHist != nil {
			s := queryHist.Summarize()
			entry.OracleQueryLatency = &s
		}
		digests[c.name] = entry.SpannerDigest
		if c.baseline != "" {
			entry.Baseline = c.baseline
			for _, prev := range report.Benchmarks {
				if prev.Name == c.baseline && entry.NsPerOp > 0 {
					entry.SpeedupVsBaseline = prev.NsPerOp / entry.NsPerOp
				}
			}
			if want, ok := digests[c.baseline]; ok && want != entry.SpannerDigest {
				return fmt.Errorf("benchjson: %s spanner digest %s differs from baseline %s's %s — determinism violated",
					c.name, entry.SpannerDigest, c.baseline, want)
			}
		}
		report.Benchmarks = append(report.Benchmarks, entry)
		fmt.Fprintf(out, "%-14s %12.0f ns/op %8d allocs/op %10d B/op  dijkstras=%d",
			c.name, float64(br.NsPerOp()), br.AllocsPerOp(), br.AllocedBytesPerOp(), res.Stats.Dijkstras)
		if c.baseline != "" {
			fmt.Fprintf(out, "  speedup=%.2fx vs %s (cpus=%d)", entry.SpeedupVsBaseline, c.baseline, report.CPUs)
		}
		fmt.Fprintln(out)
	}

	sessionEntries, err := sessionBenchEntries(out)
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, sessionEntries...)

	if oracleBench, err := oracleQueryBench(out); err != nil {
		return err
	} else {
		report.Benchmarks = append(report.Benchmarks, oracleBench)
	}

	if path == "-" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}

// oracleQueryBench measures the oracle query hot path in isolation (the
// mirror of BenchmarkOracleQuery): repeated FindFaultSet calls against a
// fixed prebuilt spanner.
func oracleQueryBench(out io.Writer) (componentBench, error) {
	g, err := ftspanner.RandomGraph(120, 1200, 2)
	if err != nil {
		return componentBench{}, err
	}
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		return componentBench{}, err
	}
	br := testing.Benchmark(func(b *testing.B) {
		oracle, err := fault.NewOracle(res.Spanner, fault.Vertices, fault.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := g.Edge(i % g.NumEdges())
			if _, _, err := oracle.FindFaultSet(e.U, e.V, 3*e.Weight, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
	// A separate instrumented pass feeds the latency histogram (sampled, the
	// same hook ftserve uses), so the summary below and the service's
	// /metrics oracle_query block share schema and methodology.
	hist := obs.NewHistogram()
	observed, err := fault.NewOracle(res.Spanner, fault.Vertices, fault.Options{ObserveQuery: hist.Record})
	if err != nil {
		return componentBench{}, err
	}
	const latencyQueries = 4096
	for i := 0; i < latencyQueries; i++ {
		e := g.Edge(i % g.NumEdges())
		if _, _, err := observed.FindFaultSet(e.U, e.V, 3*e.Weight, 2); err != nil {
			return componentBench{}, err
		}
	}
	sum := hist.Summarize()
	fmt.Fprintf(out, "%-12s %12.0f ns/op %8d allocs/op %10d B/op  p50=%.3fms p99=%.3fms\n",
		"OracleQuery", float64(br.NsPerOp()), br.AllocsPerOp(), br.AllocedBytesPerOp(), sum.P50MS, sum.P99MS)
	return componentBench{
		Name:               "OracleQuery",
		NsPerOp:            float64(br.NsPerOp()),
		AllocsPerOp:        br.AllocsPerOp(),
		BytesPerOp:         br.AllocedBytesPerOp(),
		OracleQueryLatency: &sum,
	}, nil
}
