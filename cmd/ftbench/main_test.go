package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E5", "E10"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "claim:") {
		t.Error("list should cite the claims")
	}
}

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E4,E10"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E4: PASS") || !strings.Contains(out, "E10: PASS") {
		t.Errorf("missing pass lines:\n%s", out)
	}
	if !strings.Contains(out, "all 2 experiment(s) passed") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	var seq, par bytes.Buffer
	if err := run([]string{"-quick", "-run", "E4,E10,E9"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-parallel", "-run", "E4,E10,E9"}, &par); err != nil {
		t.Fatal(err)
	}
	// Reports are deterministic under the seed and printed in order, so
	// apart from the per-experiment timing lines the outputs must agree.
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if strings.Contains(line, " in ") && strings.HasPrefix(strings.TrimSpace(line), "(E") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	if strip(seq.String()) != strip(par.String()) {
		t.Errorf("parallel output differs:\n--- sequential\n%s\n--- parallel\n%s", seq.String(), par.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestCSVExport(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "csv")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-run", "E10", "-csv", dir}, &buf); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no CSV files exported")
	}
	data, err := os.ReadFile(filepath.Join(dir, entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",") {
		t.Error("CSV content looks wrong")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}
