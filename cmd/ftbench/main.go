// Command ftbench runs the reproduction experiments E1–E13 (see DESIGN.md)
// and prints the paper-shaped result tables.
//
// Usage:
//
//	ftbench                 # run everything, full grids
//	ftbench -run E1,E4      # selected experiments
//	ftbench -quick          # reduced grids (seconds, for smoke runs)
//	ftbench -list           # list experiments and the claims they reproduce
//	ftbench -csv results/   # also export every table as CSV
//	ftbench -benchjson f    # component benchmarks as JSON ("-" for stdout):
//	                        # the repo's recorded perf trajectory (BENCH_PR<n>.json)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"github.com/ftspanner/ftspanner/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("ftbench", flag.ContinueOnError)
	var (
		runIDs      = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick       = fs.Bool("quick", false, "reduced parameter grids")
		seed        = fs.Int64("seed", 42, "random seed")
		list        = fs.Bool("list", false, "list experiments and exit")
		csvDir      = fs.String("csv", "", "directory to export tables as CSV")
		parallel    = fs.Bool("parallel", false, "run experiments concurrently (reports still print in order)")
		benchjson   = fs.String("benchjson", "", "run the component benchmarks and write a JSON report to this path (- for stdout)")
		parallelism = fs.Int("parallelism", 4, "worker count for the -benchjson parallel build cases")
		pipeline    = fs.Int("pipeline", 4, "pipeline depth for the -benchjson pipelined build case")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *benchjson != "" {
		if *parallelism < 2 {
			return fmt.Errorf("-parallelism must be >= 2, got %d", *parallelism)
		}
		if *pipeline < 1 {
			return fmt.Errorf("-pipeline must be >= 1, got %d", *pipeline)
		}
		return runBenchJSON(*benchjson, out, *parallelism, *pipeline)
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Fprintf(out, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	exps, err := selectExperiments(*runIDs)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	type outcome struct {
		rep     *experiment.Report
		err     error
		elapsed time.Duration
	}
	outcomes := make([]outcome, len(exps))
	runOne := func(i int) {
		start := time.Now()
		rep, err := exps[i].Run(experiment.Config{Seed: *seed, Quick: *quick})
		outcomes[i] = outcome{rep: rep, err: err, elapsed: time.Since(start)}
	}
	if *parallel {
		var wg sync.WaitGroup
		for i := range exps {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				runOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range exps {
			runOne(i)
		}
	}

	failed := 0
	for i, e := range exps {
		fmt.Fprintf(out, "=== %s: %s\n    %s\n\n", e.ID, e.Title, e.Claim)
		oc := outcomes[i]
		if oc.err != nil {
			return fmt.Errorf("%s: %w", e.ID, oc.err)
		}
		if err := oc.rep.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "  (%s in %s)\n\n", e.ID, oc.elapsed.Round(time.Millisecond))
		if !oc.rep.Pass {
			failed++
		}
		if *csvDir != "" {
			if err := exportCSV(*csvDir, oc.rep); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	fmt.Fprintf(out, "all %d experiment(s) passed\n", len(exps))
	return nil
}

func selectExperiments(ids string) ([]experiment.Experiment, error) {
	if ids == "" {
		return experiment.All(), nil
	}
	var out []experiment.Experiment
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		e, ok := experiment.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q (try -list)", id)
		}
		out = append(out, e)
	}
	return out, nil
}

func exportCSV(dir string, rep *experiment.Report) error {
	for i, t := range rep.Tables {
		name := fmt.Sprintf("%s_table%d.csv", strings.ToLower(rep.ID), i+1)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
