package main

import (
	"fmt"
	"io"
	"testing"

	"github.com/ftspanner/ftspanner"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// Session delta-stream cases: the persistent incremental engine measured on
// N-batch streams over the Large fixture (n=150, m=2000, 12 quantized weight
// levels). Each *Scratch case runs the DisableStateReuse ablation — every
// batch rebuilds the prefix graph and fault oracle from scratch, the
// pre-PR-10 behavior — and the paired default case rewinds the retained
// state instead, recording the headline speedup_vs_baseline. One op is one
// applied delta batch: SessionSmallDelta alternates inserting and deleting a
// single top-weight edge (a minimal dirty suffix), SessionChurn cycles a
// four-edge batch across the top three weight levels (a wider suffix with
// mixed decisions).
type sessionCase struct {
	name     string
	scratch  bool // run with DisableStateReuse (the from-scratch baseline)
	baseline string
	churn    bool // 4-edge mixed-weight batches instead of a single edge
}

var sessionCases = []sessionCase{
	{name: "SessionSmallDeltaScratch", scratch: true},
	{name: "SessionSmallDelta", baseline: "SessionSmallDeltaScratch"},
	{name: "SessionChurnScratch", scratch: true, churn: true},
	{name: "SessionChurn", baseline: "SessionChurnScratch", churn: true},
}

// sessionFixture builds the delta-stream substrate: the Large quantized
// graph, a deterministic set of free vertex pairs for the stream to cycle,
// and the top weight level.
func sessionFixture() (*ftspanner.Graph, [][2]int, float64, error) {
	g, err := ftspanner.RandomGraph(150, 2000, 7)
	if err != nil {
		return nil, nil, 0, err
	}
	g, err = ftspanner.QuantizeWeights(g, 12, 7)
	if err != nil {
		return nil, nil, 0, err
	}
	var pairs [][2]int
	for u := 0; u < g.NumVertices() && len(pairs) < 4; u++ {
		for v := u + 1; v < g.NumVertices() && len(pairs) < 4; v++ {
			if !g.HasEdge(u, v) {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	if len(pairs) < 4 {
		return nil, nil, 0, fmt.Errorf("benchjson: session fixture has fewer than 4 free pairs")
	}
	maxW := 0.0
	for _, e := range g.Edges() {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	return g, pairs, maxW, nil
}

// sessionBatch is the i-th batch of the stream: even batches insert the
// case's edge set near the top of the weight range, odd batches delete it
// again, so the stream is valid for any iteration count.
func sessionBatch(i int, churn bool, pairs [][2]int, maxW float64) ftspanner.Batch {
	k := 1
	if churn {
		k = 4
	}
	var b ftspanner.Batch
	for j := 0; j < k; j++ {
		u, v := pairs[j][0], pairs[j][1]
		if i%2 == 0 {
			w := maxW
			if churn {
				w = maxW - float64(j%3)
			}
			b.Deltas = append(b.Deltas, ftspanner.Delta{Op: ftspanner.DeltaInsert, U: u, V: v, Weight: w})
		} else {
			b.Deltas = append(b.Deltas, ftspanner.Delta{Op: ftspanner.DeltaDelete, U: u, V: v})
		}
	}
	return b
}

func sessionEngine(g *ftspanner.Graph, scratch bool) (*ftspanner.Incremental, error) {
	return ftspanner.NewIncremental(g, ftspanner.IncrementalOptions{
		Stretch: 3, Faults: 2, Mode: ftspanner.VertexFaults,
		DisableStateReuse: scratch,
	})
}

// sessionSpanner returns the engine's current spanner digest and kept count.
func sessionSpanner(eng *ftspanner.Incremental) (string, int, error) {
	mat, kept, err := eng.Current()
	if err != nil {
		return "", 0, err
	}
	sp := graph.New(mat.NumVertices())
	for _, id := range kept {
		e := mat.Edge(id)
		sp.MustAddEdge(e.U, e.V, e.Weight)
	}
	return sp.Digest(), len(kept), nil
}

// sessionBenchEntries measures the session cases and returns their report
// entries. The instrumented pass drives the reuse engine and its ablation
// twin through the same 8-batch stream, verifying byte-identical spanner
// digests after every batch and zero fault.NewOracle constructions on the
// reuse engine's non-fallback batches — the PR 10 acceptance criteria,
// enforced at generation time like the parallel determinism check.
func sessionBenchEntries(out io.Writer) ([]componentBench, error) {
	g, pairs, maxW, err := sessionFixture()
	if err != nil {
		return nil, err
	}

	entries := make([]componentBench, 0, len(sessionCases))
	for _, c := range sessionCases {
		// Instrumented pass: counters, digests, and the reuse guarantees.
		eng, err := sessionEngine(g, c.scratch)
		if err != nil {
			return nil, err
		}
		twin, err := sessionEngine(g, !c.scratch)
		if err != nil {
			return nil, err
		}
		const streamLen = 8
		var queries int64
		for i := 0; i < streamLen; i++ {
			b := sessionBatch(i, c.churn, pairs, maxW)
			before := fault.Constructions()
			res, err := eng.ApplyBatch(b)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %s batch %d: %w", c.name, i, err)
			}
			// Delta taken before the twin runs: Constructions is process-wide.
			constructed := fault.Constructions() - before
			if _, err := twin.ApplyBatch(b); err != nil {
				return nil, fmt.Errorf("benchjson: %s twin batch %d: %w", c.name, i, err)
			}
			queries += res.Stats.OracleQueries
			if !c.scratch && i > 0 && !res.Stats.FullRebuild && constructed != 0 {
				return nil, fmt.Errorf("benchjson: %s batch %d constructed %d oracles on a non-fallback batch — state reuse violated",
					c.name, i, constructed)
			}
			dEng, _, err := sessionSpanner(eng)
			if err != nil {
				return nil, err
			}
			dTwin, _, err := sessionSpanner(twin)
			if err != nil {
				return nil, err
			}
			if dEng != dTwin {
				return nil, fmt.Errorf("benchjson: %s batch %d: reuse/scratch spanner digests diverge (%s vs %s)",
					c.name, i, dEng, dTwin)
			}
		}
		digest, kept, err := sessionSpanner(eng)
		if err != nil {
			return nil, err
		}

		// Timed runs: engine setup (the one full greedy build) outside the
		// timer; one op = one applied delta batch.
		br := testing.Benchmark(func(b *testing.B) {
			bench, err := sessionEngine(g, c.scratch)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.ApplyBatch(sessionBatch(i, c.churn, pairs, maxW)); err != nil {
					b.Fatal(err)
				}
			}
		})
		entry := componentBench{
			Name:          c.name,
			NsPerOp:       float64(br.NsPerOp()),
			AllocsPerOp:   br.AllocsPerOp(),
			BytesPerOp:    br.AllocedBytesPerOp(),
			OracleCalls:   queries,
			KeptEdges:     kept,
			SpannerDigest: digest,
		}
		if c.baseline != "" {
			entry.Baseline = c.baseline
			for _, prev := range entries {
				if prev.Name == c.baseline && entry.NsPerOp > 0 {
					entry.SpeedupVsBaseline = prev.NsPerOp / entry.NsPerOp
				}
			}
		}
		entries = append(entries, entry)
		fmt.Fprintf(out, "%-24s %12.0f ns/op %8d allocs/op %10d B/op  queries=%d",
			c.name, entry.NsPerOp, entry.AllocsPerOp, entry.BytesPerOp, queries)
		if c.baseline != "" {
			fmt.Fprintf(out, "  speedup=%.2fx vs %s", entry.SpeedupVsBaseline, c.baseline)
		}
		fmt.Fprintln(out)
	}
	return entries, nil
}
