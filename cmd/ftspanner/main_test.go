package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ftspanner/ftspanner"
)

// writeTestGraph writes a graph file and returns its path.
func writeTestGraph(t *testing.T, g *ftspanner.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.graph")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("no args should fail with usage")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("unknown subcommand should fail")
	}
}

func TestBuildVerifyPipeline(t *testing.T) {
	g := ftspanner.CompleteGraph(10)
	in := writeTestGraph(t, g)
	outPath := filepath.Join(t.TempDir(), "h.graph")

	var buf bytes.Buffer
	err := run([]string{"build", "-in", in, "-out", outPath,
		"-stretch", "3", "-f", "2", "-mode", "vertex"}, &buf)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if !strings.Contains(buf.String(), "built vertex-fault-tolerant") {
		t.Errorf("missing summary: %q", buf.String())
	}

	buf.Reset()
	err = run([]string{"verify", "-graph", in, "-spanner", outPath,
		"-stretch", "3", "-f", "2", "-mode", "vertex", "-check", "exhaustive"}, &buf)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if !strings.Contains(buf.String(), "OK") {
		t.Errorf("verify output: %q", buf.String())
	}

	// Random and adversarial checks also pass.
	for _, check := range []string{"none", "random", "adversarial"} {
		buf.Reset()
		err = run([]string{"verify", "-graph", in, "-spanner", outPath,
			"-stretch", "3", "-f", "2", "-check", check, "-trials", "20"}, &buf)
		if err != nil {
			t.Errorf("verify -check %s: %v", check, err)
		}
	}
}

func TestVerifyCatchesBadSpanner(t *testing.T) {
	// Spanner = spanning star of K6 has stretch 2; claim stretch 3 with
	// f=1: faulting the hub disconnects everything -> must fail.
	g := ftspanner.CompleteGraph(6)
	h := ftspanner.NewGraph(6)
	for v := 1; v < 6; v++ {
		h.MustAddEdge(0, v, 1)
	}
	gPath := writeTestGraph(t, g)
	hPath := writeTestGraph(t, h)
	var buf bytes.Buffer
	err := run([]string{"verify", "-graph", gPath, "-spanner", hPath,
		"-stretch", "3", "-f", "1", "-mode", "vertex", "-check", "exhaustive"}, &buf)
	if err == nil {
		t.Error("hub-fault violation should be detected")
	}
}

func TestVerifyRejectsForeignSpanner(t *testing.T) {
	g := ftspanner.CompleteGraph(5)
	h := ftspanner.NewGraph(5)
	h.MustAddEdge(0, 1, 99) // weight mismatch with G
	gPath := writeTestGraph(t, g)
	hPath := writeTestGraph(t, h)
	var buf bytes.Buffer
	err := run([]string{"verify", "-graph", gPath, "-spanner", hPath}, &buf)
	if err == nil {
		t.Error("weight mismatch should be rejected")
	}

	h2 := ftspanner.NewGraph(5)
	h2.MustAddEdge(0, 1, 1)
	// Remove edge (0,1) from G so the spanner has a foreign edge.
	g2 := ftspanner.NewGraph(5)
	g2.MustAddEdge(2, 3, 1)
	err = run([]string{"verify", "-graph", writeTestGraph(t, g2),
		"-spanner", writeTestGraph(t, h2)}, &buf)
	if err == nil {
		t.Error("foreign spanner edge should be rejected")
	}
}

func TestStats(t *testing.T) {
	g := ftspanner.GridGraph(3, 3)
	in := writeTestGraph(t, g)
	var buf bytes.Buffer
	if err := run([]string{"stats", "-in", in}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"vertices:    9", "edges:       12", "components:  1", "girth:       4"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// Forest reports infinite girth.
	buf.Reset()
	tree := ftspanner.NewGraph(3)
	tree.MustAddEdge(0, 1, 1)
	if err := run([]string{"stats", "-in", writeTestGraph(t, tree), "-girth-limit", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "infinite") {
		t.Errorf("forest girth not reported: %s", buf.String())
	}
	// girth-limit cuts off the exact computation.
	buf.Reset()
	big, _ := ftspanner.RandomGraph(30, 35, 4)
	if err := run([]string{"stats", "-in", writeTestGraph(t, big), "-girth-limit", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "girth:") {
		t.Error("girth line missing")
	}
}

func TestBlockingSubcommand(t *testing.T) {
	g, err := ftspanner.RandomGraph(14, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := writeTestGraph(t, g)
	for _, mode := range []string{"vertex", "edge"} {
		var buf bytes.Buffer
		err := run([]string{"blocking", "-in", in, "-stretch", "3", "-f", "2", "-mode", mode}, &buf)
		if err != nil {
			t.Fatalf("blocking %s: %v", mode, err)
		}
		out := buf.String()
		if !strings.Contains(out, "blocking set:") || !strings.Contains(out, "verified") {
			t.Errorf("blocking %s output:\n%s", mode, out)
		}
	}
}

func TestBuildConservativeAndWitnesses(t *testing.T) {
	g := ftspanner.CompleteGraph(9)
	in := writeTestGraph(t, g)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "h.graph")
	witPath := filepath.Join(dir, "w.json")

	var buf bytes.Buffer
	err := run([]string{"build", "-in", in, "-out", outPath,
		"-stretch", "3", "-f", "2", "-witnesses", witPath}, &buf)
	if err != nil {
		t.Fatalf("build with witnesses: %v", err)
	}
	data, err := os.ReadFile(witPath)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		EdgeID int     `json:"edgeId"`
		U      int     `json:"u"`
		V      int     `json:"v"`
		Weight float64 `json:"weight"`
		Faults []int   `json:"faults"`
	}
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatalf("witness JSON: %v", err)
	}
	if len(records) == 0 {
		t.Error("no witness records written")
	}
	for _, r := range records {
		if r.Faults == nil {
			t.Error("faults must encode as [] not null")
		}
	}

	// Conservative build works, but refuses to fabricate witnesses.
	buf.Reset()
	err = run([]string{"build", "-in", in, "-out", outPath, "-conservative",
		"-stretch", "3", "-f", "2"}, &buf)
	if err != nil {
		t.Fatalf("conservative build: %v", err)
	}
	if !strings.Contains(buf.String(), "(conservative)") {
		t.Errorf("summary should mention the algorithm: %q", buf.String())
	}
	err = run([]string{"build", "-in", in, "-out", outPath, "-conservative",
		"-witnesses", witPath}, &buf)
	if err == nil {
		t.Error("conservative + witnesses should fail")
	}
}

func TestStatsMetrics(t *testing.T) {
	g := ftspanner.GridGraph(3, 3)
	in := writeTestGraph(t, g)
	var buf bytes.Buffer
	if err := run([]string{"stats", "-in", in, "-metrics"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "diameter:    4") || !strings.Contains(out, "radius:      2") {
		t.Errorf("metrics missing or wrong:\n%s", out)
	}
}

func TestParseModeErrors(t *testing.T) {
	if _, err := parseMode("both"); err == nil {
		t.Error("bad mode should error")
	}
	var buf bytes.Buffer
	if err := run([]string{"build", "-mode", "both"}, &buf); err == nil {
		t.Error("build with bad mode should fail")
	}
	if err := run([]string{"verify"}, &buf); err == nil {
		t.Error("verify without files should fail")
	}
	if err := run([]string{"verify", "-graph", "x", "-spanner", "y", "-check", "nope"}, &buf); err == nil {
		t.Error("verify of missing files should fail")
	}
	if err := run([]string{"stats", "-in", "/nonexistent/file"}, &buf); err == nil {
		t.Error("missing input should fail")
	}
}
