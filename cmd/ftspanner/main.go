// Command ftspanner builds, verifies and inspects fault-tolerant spanners
// over graph files in the library's text format.
//
// Usage:
//
//	ftspanner build    -in G.graph -out H.graph -stretch 3 -f 2 -mode vertex
//	ftspanner verify   -graph G.graph -spanner H.graph -stretch 3 -f 2 -mode vertex -check random -trials 200
//	ftspanner stats    -in G.graph
//	ftspanner blocking -in G.graph -stretch 3 -f 2 -mode vertex
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftspanner:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: ftspanner <build|verify|stats|blocking> [flags] (see -h per subcommand)")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:], out)
	case "verify":
		return runVerify(args[1:], out)
	case "stats":
		return runStats(args[1:], out)
	case "blocking":
		return runBlocking(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want build, verify, stats or blocking)", args[0])
	}
}
