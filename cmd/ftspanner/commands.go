package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"github.com/ftspanner/ftspanner"
	"github.com/ftspanner/ftspanner/internal/blocking"
	"github.com/ftspanner/ftspanner/internal/girth"
	"github.com/ftspanner/ftspanner/internal/sssp"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// loadGraph reads a graph file; "-" means stdin.
func loadGraph(path string) (*ftspanner.Graph, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	g, err := ftspanner.DecodeGraph(r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// saveGraph writes a graph file; "-" means stdout.
func saveGraph(g *ftspanner.Graph, path string, out io.Writer) error {
	if path == "-" {
		return g.Encode(out)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseMode(s string) (ftspanner.Mode, error) {
	switch s {
	case "vertex", "vft":
		return ftspanner.VertexFaults, nil
	case "edge", "eft":
		return ftspanner.EdgeFaults, nil
	default:
		return 0, fmt.Errorf("unknown fault mode %q (want vertex or edge)", s)
	}
}

func runBuild(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	var (
		in           = fs.String("in", "-", "input graph file (- for stdin)")
		outPath      = fs.String("out", "-", "output spanner file (- for stdout)")
		stretch      = fs.Float64("stretch", 3, "stretch factor k >= 1")
		faults       = fs.Int("f", 1, "fault tolerance parameter f >= 0")
		mode         = fs.String("mode", "vertex", "fault mode: vertex or edge")
		conservative = fs.Bool("conservative", false, "use the polynomial-time conservative greedy")
		witnessPath  = fs.String("witnesses", "", "write kept-edge witness fault sets to this JSON file (exact greedy only)")
		quiet        = fs.Bool("quiet", false, "suppress the summary line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	opts := ftspanner.Options{Stretch: *stretch, Faults: *faults, Mode: m}
	var res *ftspanner.Result
	if *conservative {
		res, err = ftspanner.BuildConservative(g, opts)
	} else {
		res, err = ftspanner.Build(g, opts)
	}
	if err != nil {
		return err
	}
	if err := saveGraph(res.Spanner, *outPath, out); err != nil {
		return err
	}
	if *witnessPath != "" {
		if err := writeWitnesses(res, *witnessPath); err != nil {
			return err
		}
	}
	if !*quiet {
		algo := "exact"
		if *conservative {
			algo = "conservative"
		}
		fmt.Fprintf(out, "# built %s-fault-tolerant %.3g-spanner (%s): kept %d of %d edges (%.1f%%), %d dijkstras, %s\n",
			m, *stretch, algo, res.Spanner.NumEdges(), g.NumEdges(),
			100*float64(res.Spanner.NumEdges())/float64(max(1, g.NumEdges())),
			res.Stats.Dijkstras, res.Stats.Duration.Round(1e6))
	}
	return nil
}

// witnessRecord is one kept edge plus the fault set that forced it in.
type witnessRecord struct {
	EdgeID int     `json:"edgeId"`
	U      int     `json:"u"`
	V      int     `json:"v"`
	Weight float64 `json:"weight"`
	// Faults are vertex IDs (VFT) or input edge IDs (EFT); empty when the
	// edge was needed even with no faults.
	Faults []int `json:"faults"`
}

func writeWitnesses(res *ftspanner.Result, path string) error {
	if res.Witness == nil {
		return fmt.Errorf("the conservative greedy records no witnesses; drop -witnesses or -conservative")
	}
	records := make([]witnessRecord, 0, len(res.Kept))
	for _, gid := range res.Kept {
		e := res.Input.Edge(gid)
		w := res.Witness[gid]
		if w == nil {
			w = []int{}
		}
		records = append(records, witnessRecord{
			EdgeID: gid, U: e.U, V: e.V, Weight: e.Weight, Faults: w,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(records); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	var (
		graphPath   = fs.String("graph", "", "original graph file (required)")
		spannerPath = fs.String("spanner", "", "candidate spanner file (required)")
		stretch     = fs.Float64("stretch", 3, "stretch factor to verify")
		faults      = fs.Int("f", 1, "fault budget to verify")
		mode        = fs.String("mode", "vertex", "fault mode: vertex or edge")
		check       = fs.String("check", "random", "check kind: none, exhaustive, random, adversarial")
		trials      = fs.Int("trials", 200, "trials for random/adversarial checks")
		seed        = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *graphPath == "" || *spannerPath == "" {
		return fmt.Errorf("verify needs -graph and -spanner")
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphPath)
	if err != nil {
		return err
	}
	h, err := loadGraph(*spannerPath)
	if err != nil {
		return err
	}
	inst, err := instanceFromGraphs(g, h)
	if err != nil {
		return err
	}

	var verr error
	switch *check {
	case "none":
		verr = inst.CheckFaultSet(*stretch, m, nil)
	case "exhaustive":
		verr = inst.ExhaustiveCheck(*stretch, m, *faults)
	case "random":
		verr = inst.RandomCheck(*stretch, m, *faults, *trials, rand.New(rand.NewSource(*seed)))
	case "adversarial":
		verr = inst.AdversarialCheck(*stretch, m, *faults, *trials, rand.New(rand.NewSource(*seed)))
	default:
		return fmt.Errorf("unknown check %q", *check)
	}
	if verr != nil {
		return fmt.Errorf("verification FAILED: %w", verr)
	}
	fmt.Fprintf(out, "OK: spanner passes %s %s-fault check (stretch %.3g, f=%d)\n", *check, m, *stretch, *faults)
	return nil
}

// instanceFromGraphs reconstructs the spanner->graph edge mapping by
// endpoint lookup (spanner files store no IDs; endpoints and weights must
// match an input edge).
func instanceFromGraphs(g, h *ftspanner.Graph) (*verify.Instance, error) {
	mapping := make([]int, h.NumEdges())
	for _, he := range h.Edges() {
		ge, ok := g.EdgeBetween(he.U, he.V)
		if !ok {
			return nil, fmt.Errorf("spanner edge (%d,%d) is not in the graph", he.U, he.V)
		}
		if ge.Weight != he.Weight {
			return nil, fmt.Errorf("spanner edge (%d,%d) weight %v differs from graph weight %v",
				he.U, he.V, he.Weight, ge.Weight)
		}
		mapping[he.ID] = ge.ID
	}
	return verify.NewInstance(g, h, mapping)
}

func runStats(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	var (
		in       = fs.String("in", "-", "input graph file (- for stdin)")
		maxCycle = fs.Int("girth-limit", 12, "report girth only if at most this (0 = exact, may be slow)")
		metrics  = fs.Bool("metrics", false, "also compute weighted diameter and radius (O(n) Dijkstras)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	_, comps := g.ConnectedComponents()
	fmt.Fprintf(out, "vertices:    %d\n", g.NumVertices())
	fmt.Fprintf(out, "edges:       %d\n", g.NumEdges())
	fmt.Fprintf(out, "components:  %d\n", comps)
	fmt.Fprintf(out, "max degree:  %d\n", g.MaxDegree())
	fmt.Fprintf(out, "total weight: %.6g\n", g.TotalWeight())
	switch {
	case *maxCycle == 0:
		fmt.Fprintf(out, "girth:       %s\n", girthString(girth.Girth(g)))
	case girth.HasCycleAtMost(g, *maxCycle):
		fmt.Fprintf(out, "girth:       %s\n", girthString(girth.Girth(g)))
	default:
		fmt.Fprintf(out, "girth:       > %d\n", *maxCycle)
	}
	if *metrics {
		fmt.Fprintf(out, "diameter:    %.6g\n", sssp.Diameter(g))
		fmt.Fprintf(out, "radius:      %.6g\n", sssp.Radius(g))
	}
	return nil
}

func girthString(v int) string {
	if v == girth.Acyclic {
		return "infinite (forest)"
	}
	return fmt.Sprint(v)
}

func runBlocking(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("blocking", flag.ContinueOnError)
	var (
		in      = fs.String("in", "-", "input graph file (- for stdin)")
		stretch = fs.Int("stretch", 3, "integer stretch factor")
		faults  = fs.Int("f", 1, "fault tolerance parameter")
		mode    = fs.String("mode", "vertex", "fault mode: vertex or edge")
		check   = fs.Bool("check", true, "verify the blocking set by cycle enumeration")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	g, err := loadGraph(*in)
	if err != nil {
		return err
	}
	res, err := ftspanner.Build(g, ftspanner.Options{Stretch: float64(*stretch), Faults: *faults, Mode: m})
	if err != nil {
		return err
	}
	budget := *faults * res.Spanner.NumEdges()
	var (
		size     int
		checkErr error
	)
	if m == ftspanner.VertexFaults {
		pairs, err := ftspanner.BlockingSet(res)
		if err != nil {
			return err
		}
		size = len(pairs)
		if *check {
			checkErr = blocking.VerifyVertexBlocking(res.Spanner, pairs, *stretch+1)
		}
	} else {
		pairs, err := ftspanner.EdgeBlockingSet(res)
		if err != nil {
			return err
		}
		size = len(pairs)
		if *check {
			checkErr = blocking.VerifyEdgeBlocking(res.Spanner, pairs, *stretch+1)
		}
	}
	fmt.Fprintf(out, "spanner edges: %d\n", res.Spanner.NumEdges())
	fmt.Fprintf(out, "blocking set:  %d pairs (budget f·|E(H)| = %d)\n", size, budget)
	if *check {
		if checkErr != nil {
			return fmt.Errorf("blocking set INVALID: %w", checkErr)
		}
		fmt.Fprintf(out, "validity:      verified as a %d-blocking set\n", *stretch+1)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
