// Command ftgen generates graphs in the library's text format for use with
// the ftspanner and ftbench tools.
//
// Usage:
//
//	ftgen -type complete -n 50 -out K50.graph
//	ftgen -type gnm -n 200 -m 2000 -seed 7 -weights 1,2 -out G.graph
//	ftgen -type geometric -n 300 -radius 0.12 -out net.graph
//	ftgen -type lowerbound -n 20 -stretch 3 -f 4 -out hard.graph
//
// Types: complete, bipartite, cycle, path, star, grid, hypercube, petersen,
// gnp, gnm, cgnm (connected), geometric, regular, ba (Barabási–Albert,
// -degree = attachments per vertex), ws (Watts–Strogatz, -degree = ring
// degree, -p = rewire probability), highgirth, incidence, lowerbound.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ftgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ftgen", flag.ContinueOnError)
	var (
		typ     = fs.String("type", "gnm", "graph family (see command doc)")
		n       = fs.Int("n", 100, "vertex count (or side/base size, family-specific)")
		m       = fs.Int("m", 0, "edge count (gnm/cgnm; default 4n)")
		n2      = fs.Int("n2", 0, "second size parameter (bipartite right side, grid cols)")
		p       = fs.Float64("p", 0.1, "edge probability (gnp)")
		radius  = fs.Float64("radius", 0.15, "connection radius (geometric)")
		degree  = fs.Int("degree", 3, "degree (regular)")
		q       = fs.Int("q", 5, "prime-power order (incidence)")
		stretch = fs.Int("stretch", 3, "stretch k (highgirth girth bound = k+1, lowerbound)")
		faults  = fs.Int("f", 2, "fault parameter (lowerbound blow-up factor ⌊f/2⌋)")
		seed    = fs.Int64("seed", 1, "random seed")
		weights = fs.String("weights", "", "randomize weights to 'lo,hi' (e.g. 1,2)")
		outPath = fs.String("out", "-", "output file (- for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))

	g, err := build(*typ, buildParams{
		n: *n, m: *m, n2: *n2, p: *p, radius: *radius, degree: *degree,
		q: *q, stretch: *stretch, faults: *faults,
	}, rng)
	if err != nil {
		return err
	}
	if *weights != "" {
		lo, hi, err := parseRange(*weights)
		if err != nil {
			return err
		}
		g, err = gen.RandomizeWeights(g, lo, hi, rng)
		if err != nil {
			return err
		}
	}

	w := stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return g.Encode(w)
}

type buildParams struct {
	n, m, n2, degree, q, stretch, faults int
	p, radius                            float64
}

func build(typ string, bp buildParams, rng *rand.Rand) (*graph.Graph, error) {
	n2 := bp.n2
	if n2 == 0 {
		n2 = bp.n
	}
	m := bp.m
	if m == 0 {
		m = 4 * bp.n
	}
	switch typ {
	case "complete":
		return gen.Complete(bp.n), nil
	case "bipartite":
		return gen.CompleteBipartite(bp.n, n2), nil
	case "cycle":
		return gen.Cycle(bp.n)
	case "path":
		return gen.Path(bp.n), nil
	case "star":
		return gen.Star(bp.n), nil
	case "grid":
		return gen.Grid(bp.n, n2), nil
	case "hypercube":
		return gen.Hypercube(bp.n)
	case "petersen":
		return gen.Petersen(), nil
	case "gnp":
		return gen.GNP(bp.n, bp.p, rng), nil
	case "gnm":
		return gen.GNM(bp.n, m, rng)
	case "cgnm":
		return gen.ConnectedGNM(bp.n, m, rng)
	case "geometric":
		g, _ := gen.RandomGeometric(bp.n, bp.radius, rng)
		return g, nil
	case "ba":
		return gen.BarabasiAlbert(bp.n, bp.degree, rng)
	case "ws":
		return gen.WattsStrogatz(bp.n, bp.degree, bp.p, rng)
	case "regular":
		return gen.RandomRegular(bp.n, bp.degree, rng)
	case "highgirth":
		return gen.HighGirth(bp.n, bp.stretch+1, bp.m, rng), nil
	case "incidence":
		return gen.IncidenceBipartite(bp.q)
	case "lowerbound":
		return gen.BDPWLowerBound(bp.n, bp.stretch, bp.faults, rng), nil
	default:
		return nil, fmt.Errorf("unknown graph type %q", typ)
	}
}

func parseRange(s string) (lo, hi float64, err error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("weights must be 'lo,hi', got %q", s)
	}
	lo, err = strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad weight lower bound: %w", err)
	}
	hi, err = strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad weight upper bound: %w", err)
	}
	return lo, hi, nil
}
