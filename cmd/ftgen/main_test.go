package main

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ftspanner/ftspanner/internal/graph"
)

func TestRunGeneratesAllTypes(t *testing.T) {
	types := []struct {
		args []string
	}{
		{args: []string{"-type", "complete", "-n", "6"}},
		{args: []string{"-type", "bipartite", "-n", "3", "-n2", "4"}},
		{args: []string{"-type", "cycle", "-n", "5"}},
		{args: []string{"-type", "path", "-n", "5"}},
		{args: []string{"-type", "star", "-n", "5"}},
		{args: []string{"-type", "grid", "-n", "3", "-n2", "4"}},
		{args: []string{"-type", "hypercube", "-n", "3"}},
		{args: []string{"-type", "petersen"}},
		{args: []string{"-type", "gnp", "-n", "20", "-p", "0.3"}},
		{args: []string{"-type", "gnm", "-n", "20", "-m", "40"}},
		{args: []string{"-type", "cgnm", "-n", "20", "-m", "40"}},
		{args: []string{"-type", "geometric", "-n", "25", "-radius", "0.4"}},
		{args: []string{"-type", "regular", "-n", "12", "-degree", "3"}},
		{args: []string{"-type", "ba", "-n", "30", "-degree", "2"}},
		{args: []string{"-type", "ws", "-n", "30", "-degree", "4", "-p", "0.2"}},
		{args: []string{"-type", "highgirth", "-n", "20", "-stretch", "3"}},
		{args: []string{"-type", "incidence", "-q", "3"}},
		{args: []string{"-type", "lowerbound", "-n", "8", "-stretch", "3", "-f", "4"}},
	}
	for _, tt := range types {
		name := strings.Join(tt.args, " ")
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tt.args, &buf); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
			g, err := graph.Decode(&buf)
			if err != nil {
				t.Fatalf("output does not decode: %v", err)
			}
			if g.NumVertices() == 0 {
				t.Error("empty graph generated")
			}
		})
	}
}

func TestRunWeights(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-type", "complete", "-n", "5", "-weights", "2,3"}, &buf); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if e.Weight < 2 || e.Weight >= 3 {
			t.Errorf("weight %v outside [2,3)", e.Weight)
		}
	}
}

func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.graph")
	var buf bytes.Buffer
	if err := run([]string{"-type", "cycle", "-n", "4", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("file output should not write to stdout")
	}
}

func TestRunErrors(t *testing.T) {
	tests := [][]string{
		{"-type", "nope"},
		{"-type", "cycle", "-n", "2"},
		{"-type", "incidence", "-q", "6"},
		{"-type", "complete", "-n", "4", "-weights", "bad"},
		{"-type", "complete", "-n", "4", "-weights", "1"},
		{"-type", "complete", "-n", "4", "-weights", "x,2"},
		{"-type", "complete", "-n", "4", "-weights", "1,y"},
		{"-type", "gnm", "-n", "4", "-m", "99"},
	}
	for _, args := range tests {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	gen := func() string {
		var buf bytes.Buffer
		if err := run([]string{"-type", "cgnm", "-n", "15", "-m", "30", "-seed", "9"}, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if gen() != gen() {
		t.Error("same seed must generate the same graph")
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange(" 1.5 , 2.5 ")
	if err != nil || lo != 1.5 || hi != 2.5 {
		t.Errorf("parseRange = %v,%v,%v", lo, hi, err)
	}
}

func TestBuildDefaultM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := build("cgnm", buildParams{n: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 40 {
		t.Errorf("default m should be 4n=40, got %d", g.NumEdges())
	}
}
