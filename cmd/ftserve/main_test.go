package main

import "testing"

func TestParseArgsDefaults(t *testing.T) {
	opts, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":8437" {
		t.Errorf("default addr %q", opts.addr)
	}
	if opts.cfg.Workers != 4 || opts.cfg.QueueDepth != 64 || opts.cfg.CacheEntries != 128 || opts.cfg.MaxBodyBytes != 8<<20 {
		t.Errorf("default config %+v", opts.cfg)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opts, err := parseArgs([]string{"-addr", "127.0.0.1:9000", "-workers", "8", "-queue", "2", "-cache", "16", "-max-body", "1024"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != "127.0.0.1:9000" || opts.cfg.Workers != 8 || opts.cfg.QueueDepth != 2 ||
		opts.cfg.CacheEntries != 16 || opts.cfg.MaxBodyBytes != 1024 {
		t.Errorf("parsed %+v", opts)
	}
}

func TestParseArgsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-cache", "0"},
		{"-max-body", "0"},
		{"stray"},
		{"-no-such-flag"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted invalid input", args)
		}
	}
}
