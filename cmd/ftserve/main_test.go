package main

import (
	"strings"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/service"
)

func TestParseArgsDefaults(t *testing.T) {
	opts, err := parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != ":8437" {
		t.Errorf("default addr %q", opts.addr)
	}
	if opts.cfg.Workers != 4 || opts.cfg.QueueDepth != 64 || opts.cfg.CacheEntries != 128 || opts.cfg.MaxBodyBytes != 8<<20 {
		t.Errorf("default config %+v", opts.cfg)
	}
	if opts.cfg.TraceRetention != 0 || opts.cfg.WaitBudget != 0 || opts.cfg.PipelineCap != 8 {
		t.Errorf("default observability config %+v", opts.cfg)
	}
	if opts.drainTimeout != 30*time.Second {
		t.Errorf("default drain timeout %v, want 30s", opts.drainTimeout)
	}
	if !strings.HasPrefix(opts.cfg.Version, version) {
		t.Errorf("version stamp %q does not start with %q", opts.cfg.Version, version)
	}
}

func TestParseArgsObservabilityFlags(t *testing.T) {
	opts, err := parseArgs([]string{
		"-trace-retention", "5m", "-wait-budget", "250ms", "-pipeline-cap", "16", "-drain-timeout", "90s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.TraceRetention != 5*time.Minute || opts.cfg.WaitBudget != 250*time.Millisecond || opts.cfg.PipelineCap != 16 {
		t.Errorf("parsed observability config %+v", opts.cfg)
	}
	if opts.drainTimeout != 90*time.Second {
		t.Errorf("parsed drain timeout %v, want 90s", opts.drainTimeout)
	}
}

func TestParseArgsSessionFlags(t *testing.T) {
	opts, err := parseArgs([]string{"-session-retention", "5m", "-max-sessions", "8"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.SessionRetention != 5*time.Minute || opts.cfg.MaxSessions != 8 {
		t.Errorf("parsed session config %+v", opts.cfg)
	}
	// Zero values defer to the service defaults; negatives mean
	// keep-forever / unlimited and must parse.
	opts, err = parseArgs([]string{"-session-retention", "-1s", "-max-sessions", "-1"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.SessionRetention >= 0 || opts.cfg.MaxSessions != -1 {
		t.Errorf("parsed negative session config %+v", opts.cfg)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	opts, err := parseArgs([]string{"-addr", "127.0.0.1:9000", "-workers", "8", "-queue", "2", "-cache", "16", "-max-body", "1024"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.addr != "127.0.0.1:9000" || opts.cfg.Workers != 8 || opts.cfg.QueueDepth != 2 ||
		opts.cfg.CacheEntries != 16 || opts.cfg.MaxBodyBytes != 1024 {
		t.Errorf("parsed %+v", opts)
	}
}

func TestParseArgsStoreAndQueueCaps(t *testing.T) {
	opts, err := parseArgs([]string{
		"-store-dir", "/tmp/ftstore", "-store-max-bytes", "1048576",
		"-queue-caps", "high=32, normal=48,low=16",
	})
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.StoreDir != "/tmp/ftstore" || opts.cfg.StoreMaxBytes != 1<<20 {
		t.Errorf("store config %+v", opts.cfg)
	}
	want := map[service.Priority]int{
		service.PriorityHigh:   32,
		service.PriorityNormal: 48,
		service.PriorityLow:    16,
	}
	if len(opts.cfg.QueueCaps) != len(want) {
		t.Fatalf("queue caps %+v, want %+v", opts.cfg.QueueCaps, want)
	}
	for p, n := range want {
		if opts.cfg.QueueCaps[p] != n {
			t.Errorf("queue cap %s=%d, want %d", p, opts.cfg.QueueCaps[p], n)
		}
	}

	// Partial caps leave the other classes unset (they default to the
	// global queue depth inside the service).
	opts, err = parseArgs([]string{"-queue-caps", "low=4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.cfg.QueueCaps) != 1 || opts.cfg.QueueCaps[service.PriorityLow] != 4 {
		t.Errorf("partial queue caps %+v, want just low=4", opts.cfg.QueueCaps)
	}

	// Unset flag means nil caps.
	opts, err = parseArgs(nil)
	if err != nil {
		t.Fatal(err)
	}
	if opts.cfg.QueueCaps != nil {
		t.Errorf("default queue caps %+v, want nil", opts.cfg.QueueCaps)
	}
}

func TestParseArgsRejectsBadValues(t *testing.T) {
	for _, args := range [][]string{
		{"-workers", "0"},
		{"-queue", "-1"},
		{"-cache", "0"},
		{"-max-body", "0"},
		{"-store-max-bytes", "0"},
		{"-queue-caps", "high"},
		{"-queue-caps", "urgent=3"},
		{"-queue-caps", "low=0"},
		{"-queue-caps", "low=x"},
		{"-queue-caps", "normal=64"},             // not below the default -queue 64
		{"-queue", "8", "-queue-caps", "high=9"}, // above an explicit depth
		{"-pipeline-cap", "0"},
		{"-wait-budget", "-1s"},
		{"-drain-timeout", "0s"},
		{"-drain-timeout", "-5s"},
		{"stray"},
		{"-no-such-flag"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted invalid input", args)
		}
	}
}

// TestHardenedServerTimeouts pins the slowloris fix: the public (and
// pprof/cluster) listeners must bound header reads and idle keep-alives,
// while WriteTimeout stays zero so long-lived NDJSON event streams are
// never severed. The old code built http.Server{Addr, Handler} with every
// timeout zero.
func TestHardenedServerTimeouts(t *testing.T) {
	srv := hardenedServer(":0", nil)
	if srv.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout = %v, want > 0 (slowloris guard)", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v, want > 0", srv.IdleTimeout)
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, want 0 (event streams are long-lived)", srv.WriteTimeout)
	}
}

func TestParseArgsFleetFlags(t *testing.T) {
	opts, err := parseArgs([]string{
		"-addr", "10.0.0.1:8437",
		"-peers", "10.0.0.1:8437, 10.0.0.2:8437,10.0.0.3:8437",
		"-cluster-poll", "250ms", "-sync-interval", "10s",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.peers) != 3 || opts.peers[1] != "10.0.0.2:8437" {
		t.Errorf("parsed peers %v", opts.peers)
	}
	if opts.self != "10.0.0.1:8437" {
		t.Errorf("self defaulted to %q, want the -addr value", opts.self)
	}
	if opts.clusterPoll != 250*time.Millisecond || opts.syncInterval != 10*time.Second {
		t.Errorf("cluster intervals %v / %v", opts.clusterPoll, opts.syncInterval)
	}

	opts, err = parseArgs([]string{"-peers", "a:1,b:2", "-self", "c:3"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.self != "c:3" {
		t.Errorf("explicit -self %q", opts.self)
	}

	// No -peers leaves the fleet disabled regardless of the other flags.
	opts, err = parseArgs([]string{"-self", "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.peers) != 0 {
		t.Errorf("peers %v without -peers flag", opts.peers)
	}

	for _, args := range [][]string{
		{"-peers", "a:1,,b:2"},
		{"-peers", "a:1", "-cluster-poll", "0s"},
		{"-peers", "a:1", "-sync-interval", "-1s"},
	} {
		if _, err := parseArgs(args); err == nil {
			t.Errorf("parseArgs(%v) accepted invalid fleet config", args)
		}
	}
}
