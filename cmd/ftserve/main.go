// Command ftserve runs the fault-tolerant spanner build service: an
// HTTP/JSON API that queues build jobs onto weighted priority queues
// drained by a bounded worker pool, serves repeated requests from an
// in-memory LRU result cache, and (with -store-dir) persists results to a
// durable content-addressed store so restarts come up warm.
//
// Usage:
//
//	ftserve [-addr :8437] [-workers 4] [-queue 64] [-queue-caps high=32,normal=48,low=16]
//	        [-cache 128] [-store-dir DIR] [-store-max-bytes 268435456]
//	        [-max-body 8388608] [-retention 15m] [-trace-retention 0]
//	        [-session-retention 30m] [-max-sessions 64]
//	        [-wait-budget 0] [-pipeline-cap 8] [-drain-timeout 30s] [-pprof addr]
//	        [-peers host:port,...] [-self host:port] [-cluster-poll 1s] [-sync-interval 30s]
//
// With -peers the process joins a digest-affinity replica fleet: a
// consistent-hash ring over graph digests routes every job to its owning
// replica, so caches, dedup, and the durable store stay shard-local. When
// -self (default -addr) appears in -peers the process is a combined
// router+worker; otherwise it is a pure router.
//
// On SIGINT/SIGTERM the server drains: new submissions get 503 with a
// Retry-After estimate, queued jobs are cancelled, and running builds get
// up to -drain-timeout to finish and persist before the process exits. A
// second signal cancels the remaining builds immediately.
//
// See the repository README for the endpoint reference, curl examples, and
// the profiling workflow behind the -pprof flag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ftspanner/ftspanner/internal/cluster"
	"github.com/ftspanner/ftspanner/internal/service"
)

// version is the build stamp reported in /metrics and /healthz; module
// build info (commit, dirty flag) is appended when the toolchain embeds it.
const version = "ftserve/0.6"

// buildVersion renders the full stamp.
func buildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return version + "+" + s.Value[:12]
			}
		}
	}
	return version
}

// options is the parsed command line.
type options struct {
	addr         string
	pprofAddr    string
	drainTimeout time.Duration
	peers        []string
	self         string
	clusterPoll  time.Duration
	syncInterval time.Duration
	cfg          service.Config
}

// parseQueueCaps parses the -queue-caps value: comma-separated
// class=depth pairs, e.g. "high=32,normal=48,low=16". Omitted classes keep
// the default (the global queue depth).
func parseQueueCaps(s string) (map[service.Priority]int, error) {
	if s == "" {
		return nil, nil
	}
	caps := make(map[service.Priority]int)
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("queue-caps: %q is not class=depth", part)
		}
		p := service.Priority(name)
		switch p {
		case service.PriorityHigh, service.PriorityNormal, service.PriorityLow:
		default:
			return nil, fmt.Errorf("queue-caps: unknown class %q (want high, normal, or low)", name)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("queue-caps: %q needs a positive depth, got %q", name, val)
		}
		caps[p] = n
	}
	return caps, nil
}

// parseArgs parses argv (without the program name) into options.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("ftserve", flag.ContinueOnError)
	var opts options
	var queueCaps string
	fs.StringVar(&opts.addr, "addr", ":8437", "listen address")
	fs.IntVar(&opts.cfg.Workers, "workers", 4, "build worker pool size")
	fs.IntVar(&opts.cfg.QueueDepth, "queue", 64, "total job queue capacity; submissions beyond it get 503")
	fs.StringVar(&queueCaps, "queue-caps", "",
		"per-priority queue caps as class=depth pairs (e.g. high=32,normal=48,low=16); a full class answers 429 with Retry-After")
	fs.IntVar(&opts.cfg.CacheEntries, "cache", 128, "result LRU cache entries")
	fs.StringVar(&opts.cfg.StoreDir, "store-dir", "",
		"directory of the durable content-addressed result store; empty disables persistence")
	fs.Int64Var(&opts.cfg.StoreMaxBytes, "store-max-bytes", 256<<20,
		"on-disk byte bound of the result store (LRU-evicted in the background); negative for unbounded")
	fs.Int64Var(&opts.cfg.MaxBodyBytes, "max-body", 8<<20, "request body size limit in bytes")
	fs.DurationVar(&opts.cfg.JobRetention, "retention", 15*time.Minute,
		"how long finished jobs stay addressable before eviction (0 for the default, negative to keep forever)")
	fs.DurationVar(&opts.cfg.TraceRetention, "trace-retention", 0,
		"how long finished jobs' lifecycle traces stay readable at /v1/jobs/{id}/trace (0 matches -retention, negative never drops early)")
	fs.DurationVar(&opts.cfg.SessionRetention, "session-retention", 0,
		"how long an idle live session stays open before eviction (0 for the 30m default, negative to keep forever)")
	fs.IntVar(&opts.cfg.MaxSessions, "max-sessions", 0,
		"ceiling of concurrently open live sessions; creations beyond it get 429 (0 for the default of 64, negative for unlimited)")
	fs.DurationVar(&opts.cfg.WaitBudget, "wait-budget", 0,
		"queue-wait budget per priority class: when a class's recent p90 wait (or head-of-line age) exceeds it, submissions get 429 (0 disables shedding)")
	fs.IntVar(&opts.cfg.PipelineCap, "pipeline-cap", 8,
		"ceiling of the adaptive pipeline depth chosen for jobs with parallelism > 1 and pipeline unset")
	fs.DurationVar(&opts.drainTimeout, "drain-timeout", 30*time.Second,
		"how long a graceful shutdown (SIGINT/SIGTERM) waits for running builds to finish before cancelling them")
	fs.StringVar(&opts.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	var peers string
	fs.StringVar(&peers, "peers", "",
		"comma-separated fleet peer list (host:port,...); enables digest-affinity routing across the replicas")
	fs.StringVar(&opts.self, "self", "",
		"this replica's advertised host:port within -peers (default -addr); absent from -peers means pure-router mode")
	fs.DurationVar(&opts.clusterPoll, "cluster-poll", time.Second,
		"peer health/queue summary poll interval behind fleet backpressure and drain-aware routing")
	fs.DurationVar(&opts.syncInterval, "sync-interval", 30*time.Second,
		"anti-entropy sweep interval: how often this replica pulls store records it is missing from peers (0 disables)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() != 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opts.cfg.Workers < 1 || opts.cfg.QueueDepth < 1 || opts.cfg.CacheEntries < 1 || opts.cfg.MaxBodyBytes < 1 {
		return options{}, fmt.Errorf("workers, queue, cache, and max-body must all be positive")
	}
	if opts.cfg.StoreMaxBytes == 0 {
		return options{}, fmt.Errorf("store-max-bytes must be positive (or negative for unbounded)")
	}
	if opts.cfg.PipelineCap < 1 {
		return options{}, fmt.Errorf("pipeline-cap must be positive, got %d", opts.cfg.PipelineCap)
	}
	if opts.cfg.WaitBudget < 0 {
		return options{}, fmt.Errorf("wait-budget must be non-negative, got %v", opts.cfg.WaitBudget)
	}
	if opts.drainTimeout <= 0 {
		return options{}, fmt.Errorf("drain-timeout must be positive, got %v", opts.drainTimeout)
	}
	caps, err := parseQueueCaps(queueCaps)
	if err != nil {
		return options{}, err
	}
	// The global -queue bound is checked before any class cap, so a cap at
	// or above it would silently never produce its documented 429; reject
	// the misconfiguration instead of surprising the operator.
	for p, n := range caps {
		if n >= opts.cfg.QueueDepth {
			return options{}, fmt.Errorf("queue-caps: %s=%d is not below the global queue depth %d, so it would never apply", p, n, opts.cfg.QueueDepth)
		}
	}
	opts.cfg.QueueCaps = caps
	if peers != "" {
		for _, p := range strings.Split(peers, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				return options{}, fmt.Errorf("peers: empty entry in %q", peers)
			}
			opts.peers = append(opts.peers, p)
		}
		if opts.clusterPoll <= 0 {
			return options{}, fmt.Errorf("cluster-poll must be positive, got %v", opts.clusterPoll)
		}
		if opts.syncInterval < 0 {
			return options{}, fmt.Errorf("sync-interval must be non-negative, got %v", opts.syncInterval)
		}
		if opts.self == "" {
			opts.self = opts.addr
		}
	}
	opts.cfg.Version = buildVersion()
	return opts, nil
}

// hardenedServer builds an http.Server that a slow-header client cannot
// pin forever (slowloris): connections must deliver their headers and turn
// over idle keep-alives within a bound. WriteTimeout stays zero on purpose
// — NDJSON event streams are long-lived and an overall write deadline
// would sever them mid-job.
func hardenedServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// pprofMux returns a mux serving exactly the net/http/pprof handlers,
// avoiding the package's DefaultServeMux side-effect registration.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Printf("ftserve: %v", err)
		os.Exit(2)
	}
	os.Exit(run(opts))
}

// run starts the service and the HTTP listener and blocks until shutdown.
// It is the single exit path of the command: the service is always closed
// before returning, so a listener error can no longer strand the worker
// pool or leave the durable store open mid-write.
func run(opts options) int {
	svc, err := service.New(opts.cfg)
	if err != nil {
		log.Printf("ftserve: %v", err)
		return 1
	}
	defer svc.Close()

	// With -peers the public listener fronts the fleet node, which routes
	// by graph digest and serves the local ring segment through svc.
	var handler http.Handler = svc
	if len(opts.peers) > 0 {
		node, err := cluster.New(cluster.Config{
			Self:         opts.self,
			Peers:        opts.peers,
			Local:        svc,
			PollInterval: opts.clusterPoll,
			SyncInterval: opts.syncInterval,
			MaxBodyBytes: opts.cfg.MaxBodyBytes,
		})
		if err != nil {
			log.Printf("ftserve: %v", err)
			return 1
		}
		defer node.Close()
		handler = node
		mode := "router+worker"
		if node.Ring().Index(opts.self) < 0 {
			mode = "pure router"
		}
		log.Printf("ftserve: fleet of %d peers, self=%s (%s)", len(node.Ring().Peers()), opts.self, mode)
	}

	httpSrv := hardenedServer(opts.addr, handler)

	// Profiling is opt-in and served on its own listener so the debug
	// surface never shares a port with the public job API. It gets the
	// same hardened timeouts as the public listener.
	if opts.pprofAddr != "" {
		go func() {
			log.Printf("ftserve: pprof on http://%s/debug/pprof/", opts.pprofAddr)
			if err := hardenedServer(opts.pprofAddr, pprofMux()).ListenAndServe(); err != nil {
				log.Printf("ftserve: pprof server: %v", err)
			}
		}()
	}

	if opts.cfg.StoreDir != "" {
		log.Printf("ftserve: durable result store at %s (max %d bytes)", opts.cfg.StoreDir, opts.cfg.StoreMaxBytes)
	}
	log.Printf("ftserve: listening on %s (workers=%d queue=%d cache=%d)",
		opts.addr, opts.cfg.Workers, opts.cfg.QueueDepth, opts.cfg.CacheEntries)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	// Buffered for two deliveries: the first signal starts the drain, the
	// second cancels it.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("ftserve: %v", err)
			return 1
		}
		return 0
	case s := <-sig:
		log.Printf("ftserve: %v: draining (up to %v; signal again to cancel running builds)", s, opts.drainTimeout)
	}

	// Graceful drain: refuse new submissions (503 + Retry-After), cancel
	// queued jobs, and give running builds until the timeout to finish and
	// persist. A second signal force-cancels whatever is still running; the
	// deferred Close still waits for those builds to record their terminal
	// states before the store shuts.
	drainCtx, cancelDrain := context.WithTimeout(context.Background(), opts.drainTimeout)
	defer cancelDrain()
	go func() {
		s := <-sig
		log.Printf("ftserve: %v: cancelling in-flight builds", s)
		cancelDrain()
	}()

	// The HTTP listener stays open for the whole drain window: submissions
	// answer 503 + Retry-After from the service layer, /healthz reports
	// "draining" so load balancers route elsewhere, and status polls and
	// event streams keep working until their jobs reach a terminal state.
	svc.StartDrain()
	if err := svc.Drain(drainCtx); err != nil {
		log.Printf("ftserve: drain: %v", err)
	} else {
		log.Printf("ftserve: drained cleanly")
	}

	// Every job is terminal now, so open responses flush quickly; cut any
	// connection that lingers past the grace rather than wait forever.
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	return 0
}
