// Command ftserve runs the fault-tolerant spanner build service: an
// HTTP/JSON API that queues build jobs onto a bounded worker pool and
// serves repeated requests from an LRU result cache.
//
// Usage:
//
//	ftserve [-addr :8437] [-workers 4] [-queue 64] [-cache 128] [-max-body 8388608]
//
// See the repository README for the endpoint reference and curl examples.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ftspanner/ftspanner/internal/service"
)

// options is the parsed command line.
type options struct {
	addr string
	cfg  service.Config
}

// parseArgs parses argv (without the program name) into options.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("ftserve", flag.ContinueOnError)
	var opts options
	fs.StringVar(&opts.addr, "addr", ":8437", "listen address")
	fs.IntVar(&opts.cfg.Workers, "workers", 4, "build worker pool size")
	fs.IntVar(&opts.cfg.QueueDepth, "queue", 64, "job queue capacity; submissions beyond it get 503")
	fs.IntVar(&opts.cfg.CacheEntries, "cache", 128, "result LRU cache entries")
	fs.Int64Var(&opts.cfg.MaxBodyBytes, "max-body", 8<<20, "request body size limit in bytes")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() != 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opts.cfg.Workers < 1 || opts.cfg.QueueDepth < 1 || opts.cfg.CacheEntries < 1 || opts.cfg.MaxBodyBytes < 1 {
		return options{}, fmt.Errorf("workers, queue, cache, and max-body must all be positive")
	}
	return opts, nil
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatalf("ftserve: %v", err)
	}

	svc := service.New(opts.cfg)
	httpSrv := &http.Server{Addr: opts.addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("ftserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("ftserve: listening on %s (workers=%d queue=%d cache=%d)",
		opts.addr, opts.cfg.Workers, opts.cfg.QueueDepth, opts.cfg.CacheEntries)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ftserve: %v", err)
	}
	svc.Close()
}
