// Command ftserve runs the fault-tolerant spanner build service: an
// HTTP/JSON API that queues build jobs onto a bounded worker pool and
// serves repeated requests from an LRU result cache.
//
// Usage:
//
//	ftserve [-addr :8437] [-workers 4] [-queue 64] [-cache 128] [-max-body 8388608]
//	        [-retention 15m] [-pprof addr]
//
// See the repository README for the endpoint reference, curl examples, and
// the profiling workflow behind the -pprof flag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/ftspanner/ftspanner/internal/service"
)

// options is the parsed command line.
type options struct {
	addr      string
	pprofAddr string
	cfg       service.Config
}

// parseArgs parses argv (without the program name) into options.
func parseArgs(args []string) (options, error) {
	fs := flag.NewFlagSet("ftserve", flag.ContinueOnError)
	var opts options
	fs.StringVar(&opts.addr, "addr", ":8437", "listen address")
	fs.IntVar(&opts.cfg.Workers, "workers", 4, "build worker pool size")
	fs.IntVar(&opts.cfg.QueueDepth, "queue", 64, "job queue capacity; submissions beyond it get 503")
	fs.IntVar(&opts.cfg.CacheEntries, "cache", 128, "result LRU cache entries")
	fs.Int64Var(&opts.cfg.MaxBodyBytes, "max-body", 8<<20, "request body size limit in bytes")
	fs.DurationVar(&opts.cfg.JobRetention, "retention", 15*time.Minute,
		"how long finished jobs stay addressable before eviction (0 for the default, negative to keep forever)")
	fs.StringVar(&opts.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	if fs.NArg() != 0 {
		return options{}, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opts.cfg.Workers < 1 || opts.cfg.QueueDepth < 1 || opts.cfg.CacheEntries < 1 || opts.cfg.MaxBodyBytes < 1 {
		return options{}, fmt.Errorf("workers, queue, cache, and max-body must all be positive")
	}
	return opts, nil
}

// pprofMux returns a mux serving exactly the net/http/pprof handlers,
// avoiding the package's DefaultServeMux side-effect registration.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	opts, err := parseArgs(os.Args[1:])
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		log.Fatalf("ftserve: %v", err)
	}

	svc := service.New(opts.cfg)
	httpSrv := &http.Server{Addr: opts.addr, Handler: svc}

	// Profiling is opt-in and served on its own listener so the debug
	// surface never shares a port with the public job API.
	if opts.pprofAddr != "" {
		go func() {
			log.Printf("ftserve: pprof on http://%s/debug/pprof/", opts.pprofAddr)
			if err := http.ListenAndServe(opts.pprofAddr, pprofMux()); err != nil {
				log.Printf("ftserve: pprof server: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("ftserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("ftserve: listening on %s (workers=%d queue=%d cache=%d)",
		opts.addr, opts.cfg.Workers, opts.cfg.QueueDepth, opts.cfg.CacheEntries)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ftserve: %v", err)
	}
	svc.Close()
}
