// Benchmarks, one per reproduction experiment (see DESIGN.md §4): each
// BenchmarkE<n> regenerates the corresponding "table" of the evaluation in
// Quick mode, so `go test -bench=.` exercises the full pipeline end to end.
// The cmd/ftbench binary runs the same experiments with the full grids and
// prints the tables EXPERIMENTS.md records.
//
// The Ablation benchmarks measure the oracle design choices DESIGN.md calls
// out (disjoint-path pruning and fault-set memoization).
package ftspanner_test

import (
	"testing"

	"github.com/ftspanner/ftspanner"
	"github.com/ftspanner/ftspanner/internal/experiment"
	"github.com/ftspanner/ftspanner/internal/fault"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := exp.Run(experiment.Config{Seed: 42, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Pass {
			b.Fatalf("%s failed: %v", id, rep.Findings)
		}
	}
}

func BenchmarkE1SizeVsF(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2SizeVsN(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3Baselines(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4BlockingSet(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5Subsample(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkE6LowerBound(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7RuntimeVsF(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8Verify(b *testing.B)        { benchExperiment(b, "E8") }
func BenchmarkE9EdgeBlocking(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10Moore(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Conservative(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12EFTGap(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Degradation(b *testing.B)  { benchExperiment(b, "E13") }

// Component benchmarks: the two builders on a fixed mid-size workload.

func benchBuild(b *testing.B, mode ftspanner.Mode, faults int) {
	b.Helper()
	g, err := ftspanner.RandomGraph(80, 800, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftspanner.Build(g, ftspanner.Options{
			Stretch: 3, Faults: faults, Mode: mode,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildVFTf1(b *testing.B) { benchBuild(b, ftspanner.VertexFaults, 1) }
func BenchmarkBuildVFTf3(b *testing.B) { benchBuild(b, ftspanner.VertexFaults, 3) }
func BenchmarkBuildEFTf1(b *testing.B) { benchBuild(b, ftspanner.EdgeFaults, 1) }
func BenchmarkBuildEFTf3(b *testing.B) { benchBuild(b, ftspanner.EdgeFaults, 3) }

// Parallel-build benchmarks on the large quantized-weight fixture (the
// -benchjson Large* cases): same workload at increasing worker counts and
// pipeline depths. The kept-edge set is identical at every setting;
// wall-clock gains need runnable CPUs.

func benchBuildParallel(b *testing.B, parallelism, pipeline int) {
	b.Helper()
	g, err := ftspanner.RandomGraph(150, 2000, 7)
	if err != nil {
		b.Fatal(err)
	}
	if g, err = ftspanner.QuantizeWeights(g, 12, 7); err != nil {
		b.Fatal(err)
	}
	opts := ftspanner.Options{
		Stretch: 3, Faults: 2, Mode: ftspanner.VertexFaults,
		Parallelism: parallelism, Pipeline: pipeline,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftspanner.Build(g, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildLargeSeq(b *testing.B)  { benchBuildParallel(b, 0, 0) }
func BenchmarkBuildLargeP2(b *testing.B)   { benchBuildParallel(b, 2, 1) }
func BenchmarkBuildLargeP4(b *testing.B)   { benchBuildParallel(b, 4, 1) }
func BenchmarkBuildLargeP4D2(b *testing.B) { benchBuildParallel(b, 4, 2) }
func BenchmarkBuildLargeP4D4(b *testing.B) { benchBuildParallel(b, 4, 4) }

// Ablation benchmarks: oracle accelerations on and off (identical outputs,
// different work — E7 records the full curves).

func benchAblation(b *testing.B, oracle ftspanner.OracleOptions) {
	b.Helper()
	g := ftspanner.CompleteGraph(36)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ftspanner.Build(g, ftspanner.Options{
			Stretch: 3, Faults: 4, Mode: ftspanner.VertexFaults, Oracle: oracle,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFull(b *testing.B) { benchAblation(b, ftspanner.OracleOptions{}) }
func BenchmarkAblationNoPrune(b *testing.B) {
	benchAblation(b, ftspanner.OracleOptions{DisablePruning: true})
}
func BenchmarkAblationNoMemo(b *testing.B) {
	benchAblation(b, ftspanner.OracleOptions{DisableMemo: true})
}
func BenchmarkAblationNaive(b *testing.B) {
	benchAblation(b, ftspanner.OracleOptions{DisablePruning: true, DisableMemo: true})
}

// Fault-oracle micro-benchmark (the hot path of everything above).
func BenchmarkOracleQuery(b *testing.B) {
	g, err := ftspanner.RandomGraph(120, 1200, 2)
	if err != nil {
		b.Fatal(err)
	}
	res, err := ftspanner.BuildVFT(g, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	oracle, err := fault.NewOracle(res.Spanner, fault.Vertices, fault.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := g.Edge(i % g.NumEdges())
		if _, _, err := oracle.FindFaultSet(e.U, e.V, 3*e.Weight, 2); err != nil {
			b.Fatal(err)
		}
	}
}
