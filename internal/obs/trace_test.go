package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceSpanTree(t *testing.T) {
	tr := NewTrace("j1", "job")
	root := tr.Root()
	q := root.StartSpan("queue-wait")
	time.Sleep(time.Millisecond)
	q.End()
	b := root.StartSpan("build")
	b.SetAttr("edges", 800)
	b.SetAttr("edges", 900) // overwrite, not duplicate
	b.Event("batch-commit", Attr{Key: "batch", Value: 1}, Attr{Key: "kept", Value: 12})
	b.Event("respec-round", Attr{Key: "pending", Value: 3})
	b.End()
	p := root.StartSpan("persist")
	p.End()
	root.End()

	snap := tr.Snapshot()
	if snap.ID != "j1" || snap.Root.Name != "job" {
		t.Fatalf("snapshot root = %q/%q", snap.ID, snap.Root.Name)
	}
	if len(snap.Root.Children) != 3 {
		t.Fatalf("root has %d children, want 3", len(snap.Root.Children))
	}
	names := []string{snap.Root.Children[0].Name, snap.Root.Children[1].Name, snap.Root.Children[2].Name}
	if names[0] != "queue-wait" || names[1] != "build" || names[2] != "persist" {
		t.Fatalf("children order = %v", names)
	}
	build := snap.Root.Children[1]
	if len(build.Attrs) != 1 || build.Attrs[0] != (Attr{Key: "edges", Value: 900}) {
		t.Fatalf("build attrs = %v", build.Attrs)
	}
	if len(build.Events) != 2 || build.Events[0].Name != "batch-commit" {
		t.Fatalf("build events = %v", build.Events)
	}
	if snap.Root.Open {
		t.Fatal("root should be closed")
	}
	// Root covers its children: duration >= each child's offset+duration.
	for _, c := range snap.Root.Children {
		if end := c.StartOffsetMS + c.DurationMS; end > snap.Root.StartOffsetMS+snap.Root.DurationMS+0.5 {
			t.Fatalf("child %s ends at %v ms, beyond root end", c.Name, end)
		}
	}
	// The snapshot must be JSON-encodable (it is the HTTP response body).
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"batch-commit"`) {
		t.Fatalf("JSON lost events: %s", raw)
	}
}

// TestTraceBounded locks the memory contract: span and event counts stay
// within MaxSpans/MaxEventsPerSpan however long the build runs, with drops
// counted, and overflowed span handles degrade to harmless no-ops.
func TestTraceBounded(t *testing.T) {
	tr := NewTrace("j2", "job")
	root := tr.Root()
	var last Span
	for i := 0; i < MaxSpans+50; i++ {
		last = root.StartSpan("child")
	}
	// The overflowed handle must be inert.
	last.SetAttr("x", 1)
	last.Event("y")
	last.End()
	if sub := last.StartSpan("z"); sub.t != nil {
		t.Fatal("overflowed span spawned a live child")
	}

	build := tr.Root() // root still live; flood its events
	for i := 0; i < MaxEventsPerSpan+100; i++ {
		build.Event("tick", Attr{Key: "i", Value: int64(i)})
	}
	snap := tr.Snapshot()
	total := 1 + len(snap.Root.Children)
	if total > MaxSpans {
		t.Fatalf("%d spans recorded, over bound %d", total, MaxSpans)
	}
	if snap.DroppedSpans != 51 {
		t.Fatalf("dropped spans = %d, want 51", snap.DroppedSpans)
	}
	if len(snap.Root.Events) != MaxEventsPerSpan {
		t.Fatalf("%d events recorded, want bound %d", len(snap.Root.Events), MaxEventsPerSpan)
	}
	if snap.Root.DroppedEvents != 100 {
		t.Fatalf("dropped events = %d, want 100", snap.Root.DroppedEvents)
	}
}

// TestTraceConcurrentSnapshot reads snapshots while spans and events are
// still being written (the HTTP handler vs worker interleaving; run under
// -race in CI).
func TestTraceConcurrentSnapshot(t *testing.T) {
	tr := NewTrace("j3", "job")
	root := tr.Root()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sp := root.StartSpan("work")
			sp.Event("e", Attr{Key: "i", Value: int64(i)})
			sp.End()
		}
	}()
	for i := 0; i < 200; i++ {
		snap := tr.Snapshot()
		if !snap.Root.Open {
			t.Error("root closed early")
			break
		}
	}
	close(stop)
	wg.Wait()
	root.End()
	if snap := tr.Snapshot(); snap.Root.Open {
		t.Fatal("root still open after End")
	}
}
