package obs

import (
	"sync"
	"time"
)

// Bounds on a trace's memory: a runaway build (thousands of speculative
// batches, millions of progress ticks) must not grow a job's trace without
// limit. Overflow is counted, never silently lost.
const (
	// MaxSpans bounds the spans per trace, root included.
	MaxSpans = 64
	// MaxEventsPerSpan bounds the point events attached to one span.
	MaxEventsPerSpan = 256
)

// Attr is one key/value annotation on a span or event. Values are int64 —
// every attribute this system records is a count, an ID, or a duration, and
// a closed type keeps snapshots allocation-cheap and JSON stable.
type Attr struct {
	Key   string `json:"key"`
	Value int64  `json:"value"`
}

// Trace records one job's lifecycle as a tree of spans. A Trace is written
// by at most a couple of goroutines (submitter, worker) and read by HTTP
// handlers, so one mutex covers all state. The zero value is not ready; use
// NewTrace.
type Trace struct {
	mu           sync.Mutex
	id           string
	start        time.Time
	spans        []span
	droppedSpans int
}

// span is a trace's internal span record; indexes into Trace.spans are the
// span identities (parent pointers survive slice growth).
type span struct {
	name          string
	parent        int // index into spans; -1 for the root
	start         time.Time
	end           time.Time // zero while the span is open
	attrs         []Attr
	events        []spanEvent
	droppedEvents int
}

type spanEvent struct {
	name  string
	at    time.Time
	attrs []Attr
}

// Span is a handle onto one span of a trace. The zero Span is a valid no-op
// (every method nil-checks), which is how span-count overflow degrades:
// callers keep annotating, nothing records.
type Span struct {
	t   *Trace
	idx int
}

// NewTrace starts a trace whose root span has the given name; the root opens
// immediately.
func NewTrace(id, rootName string) *Trace {
	now := time.Now()
	return &Trace{
		id:    id,
		start: now,
		spans: []span{{name: rootName, parent: -1, start: now}},
	}
}

// Root returns the root span's handle.
func (t *Trace) Root() Span { return Span{t: t, idx: 0} }

// StartSpan opens a child span under s. When the trace is at MaxSpans the
// drop is counted and a no-op handle returned.
func (s Span) StartSpan(name string) Span {
	if s.t == nil {
		return Span{}
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= MaxSpans {
		t.droppedSpans++
		return Span{}
	}
	t.spans = append(t.spans, span{name: name, parent: s.idx, start: time.Now()})
	return Span{t: t, idx: len(t.spans) - 1}
}

// End closes the span. Double-End keeps the first end time.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	sp := &s.t.spans[s.idx]
	if sp.end.IsZero() {
		sp.end = time.Now()
	}
}

// SetAttr sets a key on the span, overwriting an existing value.
func (s Span) SetAttr(key string, value int64) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	sp := &s.t.spans[s.idx]
	for i := range sp.attrs {
		if sp.attrs[i].Key == key {
			sp.attrs[i].Value = value
			return
		}
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// Event appends a point-in-time event to the span. Beyond MaxEventsPerSpan
// the drop is counted and the event discarded — bounded traces are the
// contract that lets one live per job.
func (s Span) Event(name string, attrs ...Attr) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	sp := &s.t.spans[s.idx]
	if len(sp.events) >= MaxEventsPerSpan {
		sp.droppedEvents++
		return
	}
	var copied []Attr
	if len(attrs) > 0 {
		copied = append(copied, attrs...)
	}
	sp.events = append(sp.events, spanEvent{name: name, at: time.Now(), attrs: copied})
}

// EventSnapshot is one span event in a trace snapshot.
type EventSnapshot struct {
	Name string `json:"name"`
	// OffsetMS is the event time relative to the trace start.
	OffsetMS float64 `json:"offset_ms"`
	Attrs    []Attr  `json:"attrs,omitempty"`
}

// SpanSnapshot is one span (and its subtree) in a trace snapshot.
type SpanSnapshot struct {
	Name string `json:"name"`
	// StartOffsetMS is the span start relative to the trace start.
	StartOffsetMS float64 `json:"start_offset_ms"`
	// DurationMS is end-start; for a still-open span it is the duration so
	// far and Open is true.
	DurationMS    float64         `json:"duration_ms"`
	Open          bool            `json:"open,omitempty"`
	Attrs         []Attr          `json:"attrs,omitempty"`
	Events        []EventSnapshot `json:"events,omitempty"`
	DroppedEvents int             `json:"dropped_events,omitempty"`
	Children      []SpanSnapshot  `json:"children,omitempty"`
}

// TraceSnapshot is a trace's point-in-time JSON form: the span tree rooted
// at the job span. It is what GET /v1/jobs/{id}/trace returns.
type TraceSnapshot struct {
	ID           string       `json:"id"`
	Start        time.Time    `json:"start"`
	DroppedSpans int          `json:"dropped_spans,omitempty"`
	Root         SpanSnapshot `json:"root"`
}

// Snapshot renders the trace as a span tree. Safe to call while the trace is
// still being written; open spans report their duration so far.
func (t *Trace) Snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := time.Now()
	const ms = float64(time.Millisecond)

	// Children in index order: spans are appended in start order, so each
	// child list comes out chronological.
	nodes := make([]SpanSnapshot, len(t.spans))
	for i, sp := range t.spans {
		end, open := sp.end, false
		if end.IsZero() {
			end, open = now, true
		}
		node := SpanSnapshot{
			Name:          sp.name,
			StartOffsetMS: float64(sp.start.Sub(t.start)) / ms,
			DurationMS:    float64(end.Sub(sp.start)) / ms,
			Open:          open,
			DroppedEvents: sp.droppedEvents,
		}
		if len(sp.attrs) > 0 {
			node.Attrs = append([]Attr(nil), sp.attrs...)
		}
		for _, ev := range sp.events {
			node.Events = append(node.Events, EventSnapshot{
				Name:     ev.name,
				OffsetMS: float64(ev.at.Sub(t.start)) / ms,
				Attrs:    ev.attrs,
			})
		}
		nodes[i] = node
	}
	// Attach children bottom-up: every span's parent has a smaller index, so
	// a reverse walk sees each subtree completed before linking it upward.
	for i := len(nodes) - 1; i >= 1; i-- {
		p := t.spans[i].parent
		nodes[p].Children = append([]SpanSnapshot{nodes[i]}, nodes[p].Children...)
	}
	return TraceSnapshot{ID: t.id, Start: t.start, DroppedSpans: t.droppedSpans, Root: nodes[0]}
}
