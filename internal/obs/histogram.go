// Package obs is ftserve's zero-dependency observability toolkit: a
// log-bucketed latency histogram with quantile estimation (histogram.go) and
// a bounded per-job span recorder (trace.go), modeled on the tracer/profiler
// split of production tracing libraries but small enough to live in-process
// with no wire protocol. The service threads one Trace through each job's
// lifecycle and aggregates durations into Histograms surfaced by /metrics;
// ftbench reuses the same Summary schema so recorded benchmarks and the live
// endpoint speak one language.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: HDR-style log buckets with subCount linear
// sub-buckets per octave. Values (nanoseconds) below subCount are recorded
// exactly; above, a value v with 2^k <= v < 2^(k+1) lands in the sub-bucket
// holding its top subBits+1 significand bits, so every bucket's width is at
// most 1/subCount of its lower bound. That makes any upper-bound quantile
// estimate overshoot the true sample by strictly less than a factor of
// 1 + 1/subCount (12.5% relative error at subBits = 3... we use 5 → 3.125%),
// which the tests pin.
const (
	subBits  = 5
	subCount = 1 << subBits // exact range and per-octave resolution

	// numBuckets covers every non-negative int64: the largest index is
	// reached at v = 2^63-1, whose octave is k = 62.
	numBuckets = (62 - subBits + 2) * subCount
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // 2^k <= v < 2^(k+1), k >= subBits
	m := v >> uint(k-subBits)      // top significand bits: subCount <= m < 2*subCount
	return (k-subBits)*subCount + int(m)
}

// bucketUpper returns the largest value mapped to bucket idx — the
// histogram's quantile estimate for ranks landing in it.
func bucketUpper(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	shift := uint(idx/subCount - 1)
	m := int64(subCount + idx%subCount)
	return (m+1)<<shift - 1
}

// Histogram is a concurrent log-bucketed latency histogram. Record is a few
// atomic adds with no locks, safe from any number of goroutines (build
// workers, oracle pools, HTTP handlers); quantile reads take a point-in-time
// copy of the buckets. The zero value is NOT ready; use NewHistogram.
type Histogram struct {
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Int64, numBuckets)}
}

// Record adds one duration sample. Negative durations clamp to zero.
func (h *Histogram) Record(d time.Duration) { h.RecordNS(int64(d)) }

// RecordNS adds one sample in nanoseconds.
func (h *Histogram) RecordNS(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// QuantileNS returns the estimated q-quantile (0 <= q <= 1) in nanoseconds:
// the upper bound of the bucket holding the rank-⌈q·count⌉ sample, so the
// estimate never undershoots the true sample and overshoots by less than a
// factor of 1 + 1/32. Returns 0 on an empty histogram.
func (h *Histogram) QuantileNS(q float64) int64 {
	var buckets [numBuckets]int64
	total := h.snapshotInto(&buckets)
	return clampToMax(quantileOf(&buckets, total, q), h.max.Load())
}

// clampToMax caps a bucket-upper-bound estimate at the exactly tracked
// maximum sample: the top-ranked bucket's upper bound would otherwise
// overshoot the true max (and report p99 > max in summaries).
func clampToMax(est, max int64) int64 {
	if est > max {
		return max
	}
	return est
}

// snapshotInto copies the bucket counts and returns their sum — the
// self-consistent total for rank arithmetic (h.count may be momentarily
// ahead of a concurrent Record's bucket add).
func (h *Histogram) snapshotInto(buckets *[numBuckets]int64) int64 {
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		buckets[i] = c
		total += c
	}
	return total
}

func quantileOf(buckets *[numBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range buckets {
		seen += buckets[i]
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(numBuckets - 1)
}

// Summary is a histogram's wire form: sample count plus quantile estimates
// in milliseconds. It is the one latency schema shared by GET /metrics and
// the ftbench -benchjson trajectory (BENCH_PR<n>.json).
type Summary struct {
	Count int64 `json:"count"`
	// P50/P90/P99 are upper-bound quantile estimates (relative error below
	// 1/32, see Histogram).
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// MeanMS is the exact mean of all samples (sum/count, not bucketed).
	MeanMS float64 `json:"mean_ms"`
}

// Summarize returns the histogram's current Summary. All three quantiles
// come from one bucket snapshot, so they are mutually consistent.
func (h *Histogram) Summarize() Summary {
	var buckets [numBuckets]int64
	total := h.snapshotInto(&buckets)
	s := Summary{Count: total}
	if total == 0 {
		return s
	}
	const ms = float64(time.Millisecond)
	mx := h.max.Load()
	s.P50MS = float64(clampToMax(quantileOf(&buckets, total, 0.50), mx)) / ms
	s.P90MS = float64(clampToMax(quantileOf(&buckets, total, 0.90), mx)) / ms
	s.P99MS = float64(clampToMax(quantileOf(&buckets, total, 0.99), mx)) / ms
	s.MaxMS = float64(mx) / ms
	s.MeanMS = float64(h.sum.Load()) / float64(total) / ms
	return s
}
