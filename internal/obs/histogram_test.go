package obs

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket layout: exact buckets below subCount,
// then log buckets whose width never exceeds 1/subCount of their lower
// bound, with every value mapping into a bucket whose range contains it.
func TestBucketBoundaries(t *testing.T) {
	// Exact range: each value is its own bucket.
	for v := int64(0); v < subCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if up := bucketUpper(int(v)); up != v {
			t.Fatalf("bucketUpper(%d) = %d, want %d", v, up, v)
		}
	}
	// Log range: spot-check structured values plus a sweep.
	values := []int64{subCount, subCount + 1, 2*subCount - 1, 2 * subCount, 1000,
		1 << 20, (1 << 20) + 12345, 1<<62 + 987654321, 1<<63 - 1}
	for v := int64(subCount); v < 1<<14; v += 7 {
		values = append(values, v)
	}
	for _, v := range values {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if v > up {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, idx, up)
		}
		if idx > 0 {
			if lowerNeighbor := bucketUpper(idx - 1); v <= lowerNeighbor {
				t.Fatalf("value %d should be in bucket %d or below (upper %d), got bucket %d",
					v, idx-1, lowerNeighbor, idx)
			}
		}
		// Width bound: (upper - lower + 1) / lower <= 1/subCount.
		lower := bucketUpper(idx-1) + 1
		if width := up - lower + 1; width*subCount > lower {
			t.Fatalf("bucket %d [%d,%d] wider than lower/%d", idx, lower, up, subCount)
		}
	}
	// Indexes are monotone and within numBuckets.
	if got := bucketIndex(1<<63 - 1); got >= numBuckets {
		t.Fatalf("max value bucket %d out of range %d", got, numBuckets)
	}
}

// TestQuantileErrorBound draws random samples, compares every estimated
// quantile against the true order statistic, and checks the documented
// guarantee: estimate >= true sample, and estimate < true*(1 + 1/subCount)
// (exactly equal below subCount).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Mix scales: sub-µs to ~100ms, the range real latencies span.
		v := int64(rng.ExpFloat64() * float64(uint64(1)<<uint(10+rng.Intn(18))))
		samples = append(samples, v)
		h.RecordNS(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 1} {
		rank := int(q*float64(len(samples)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		truth := samples[rank-1]
		got := h.QuantileNS(q)
		if got < truth {
			t.Errorf("q=%.2f: estimate %d undershoots true sample %d", q, got, truth)
		}
		// Upper bound: strictly inside the next 1/subCount step (+1 covers
		// the integer grid at tiny values).
		if limit := truth + truth/subCount + 1; got > limit {
			t.Errorf("q=%.2f: estimate %d exceeds error bound %d (true %d)", q, got, limit, truth)
		}
	}
}

func TestHistogramEmptyAndSummary(t *testing.T) {
	h := NewHistogram()
	if got := h.QuantileNS(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	if s := h.Summarize(); s.Count != 0 || s.P99MS != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	h.Record(2 * time.Millisecond)
	h.Record(4 * time.Millisecond)
	h.Record(-time.Second) // clamps to 0
	s := h.Summarize()
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3", s.Count)
	}
	if s.P50MS < 1.9 || s.P50MS > 2.2 {
		t.Fatalf("p50 = %v ms, want ~2", s.P50MS)
	}
	if s.MaxMS < 3.9 || s.MaxMS > 4.1 {
		t.Fatalf("max = %v ms, want ~4", s.MaxMS)
	}
	if s.MeanMS <= 0 || s.MeanMS > 2.1 {
		t.Fatalf("mean = %v ms, want in (0, 2.1]", s.MeanMS)
	}
}

// TestHistogramConcurrentRecord hammers one histogram from many goroutines
// (run under -race in CI) and checks no sample is lost.
func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perG; i++ {
				h.RecordNS(rng.Int63n(1 << 30))
				if i%64 == 0 {
					_ = h.Summarize() // concurrent reads race-checked too
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	s := h.Summarize()
	if s.Count != goroutines*perG {
		t.Fatalf("summary count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.P50MS > s.P90MS || s.P90MS > s.P99MS || s.P99MS > s.MaxMS {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}
