// Package bitset provides a compact, allocation-friendly set of small
// non-negative integers. It is used throughout the library for vertex and
// edge fault masks, where the same set is mutated and rolled back many times
// inside tight search loops.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset over the universe [0, Cap()).
// The zero value is an empty set of capacity zero; use New to size it.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set able to hold elements in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
	}
}

// FromSlice returns a set of capacity n containing the given elements.
// Elements outside [0, n) are ignored.
func FromSlice(n int, elems []int) *Set {
	s := New(n)
	for _, e := range elems {
		if e >= 0 && e < n {
			s.Add(e)
		}
	}
	return s
}

// Cap returns the capacity (universe size) of the set.
func (s *Set) Cap() int {
	if s == nil {
		return 0
	}
	return s.n
}

// Add inserts i into the set. It panics if i is out of range, since that
// always indicates a programming error in this codebase.
func (s *Set) Add(i int) {
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether i is in the set. A nil set contains nothing, which
// lets callers pass nil for "no forbidden elements".
func (s *Set) Contains(i int) bool {
	if s == nil {
		return false
	}
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Count returns the number of elements in the set.
func (s *Set) Count() int {
	if s == nil {
		return 0
	}
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	if s == nil {
		return true
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, keeping capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy of the set. Cloning nil yields nil.
func (s *Set) Clone() *Set {
	if s == nil {
		return nil
	}
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the receiver with the contents of other, which must
// have the same capacity.
func (s *Set) CopyFrom(other *Set) {
	if other == nil {
		s.Clear()
		return
	}
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: CopyFrom capacity mismatch %d != %d", s.n, other.n))
	}
	copy(s.words, other.words)
}

// UnionWith adds every element of other to the receiver. Capacities must
// match; a nil other is a no-op.
func (s *Set) UnionWith(other *Set) {
	if other == nil {
		return
	}
	if s.n != other.n {
		panic(fmt.Sprintf("bitset: UnionWith capacity mismatch %d != %d", s.n, other.n))
	}
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// IntersectsWith reports whether the receiver and other share an element.
func (s *Set) IntersectsWith(other *Set) bool {
	if s == nil || other == nil {
		return false
	}
	n := len(s.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// Words exposes the set's backing words (64 elements per word, lowest bit
// first). It exists for hot loops that fuse membership tests directly into
// their inner iteration — e.g. the Dijkstra relax loop — avoiding a method
// call per test. The slice is owned by the set: callers may read it but must
// not modify or retain it across mutations. A nil set yields nil.
func (s *Set) Words() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// Elems appends the elements of the set, in increasing order, to dst and
// returns the extended slice.
func (s *Set) Elems(dst []int) []int {
	if s == nil {
		return dst
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, wi*wordBits+b)
			w &= w - 1
		}
	}
	return dst
}

// String renders the set as "{a, b, c}" for debugging.
func (s *Set) String() string {
	elems := s.Elems(nil)
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = fmt.Sprint(e)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
