package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if got := s.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if !s.Empty() {
		t.Error("Empty() = false, want true")
	}
	if s.Cap() != 100 {
		t.Errorf("Cap() = %d, want 100", s.Cap())
	}
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130) // spans three words
	elems := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, e := range elems {
		s.Add(e)
	}
	for _, e := range elems {
		if !s.Contains(e) {
			t.Errorf("Contains(%d) = false after Add", e)
		}
	}
	if got := s.Count(); got != len(elems) {
		t.Errorf("Count() = %d, want %d", got, len(elems))
	}
	s.Remove(64)
	if s.Contains(64) {
		t.Error("Contains(64) = true after Remove")
	}
	if got := s.Count(); got != len(elems)-1 {
		t.Errorf("Count() = %d, want %d", got, len(elems)-1)
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Errorf("Count() after double Add = %d, want 1", got)
	}
}

func TestNilSet(t *testing.T) {
	var s *Set
	if s.Contains(5) {
		t.Error("nil set Contains(5) = true, want false")
	}
	if s.Count() != 0 {
		t.Error("nil set Count() != 0")
	}
	if !s.Empty() {
		t.Error("nil set Empty() = false")
	}
	if s.Clone() != nil {
		t.Error("nil set Clone() != nil")
	}
	if got := s.Elems(nil); len(got) != 0 {
		t.Errorf("nil set Elems = %v, want empty", got)
	}
	if s.Cap() != 0 {
		t.Error("nil set Cap() != 0")
	}
}

func TestClear(t *testing.T) {
	s := FromSlice(50, []int{1, 2, 3, 49})
	s.Clear()
	if !s.Empty() {
		t.Error("Empty() = false after Clear")
	}
	if s.Cap() != 50 {
		t.Errorf("Cap() = %d after Clear, want 50", s.Cap())
	}
}

func TestCloneIndependent(t *testing.T) {
	s := FromSlice(20, []int{4, 5})
	c := s.Clone()
	c.Add(6)
	if s.Contains(6) {
		t.Error("mutating clone affected original")
	}
	s.Remove(4)
	if !c.Contains(4) {
		t.Error("mutating original affected clone")
	}
}

func TestCopyFrom(t *testing.T) {
	s := FromSlice(20, []int{1, 2})
	d := New(20)
	d.Add(19)
	d.CopyFrom(s)
	if !d.Contains(1) || !d.Contains(2) || d.Contains(19) {
		t.Errorf("CopyFrom mismatch: got %v", d)
	}
	d.CopyFrom(nil)
	if !d.Empty() {
		t.Error("CopyFrom(nil) should clear")
	}
}

func TestUnionWith(t *testing.T) {
	a := FromSlice(70, []int{1, 65})
	b := FromSlice(70, []int{2, 65})
	a.UnionWith(b)
	want := []int{1, 2, 65}
	got := a.Elems(nil)
	if len(got) != len(want) {
		t.Fatalf("union = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union = %v, want %v", got, want)
		}
	}
	a.UnionWith(nil) // no-op
	if a.Count() != 3 {
		t.Error("UnionWith(nil) changed the set")
	}
}

func TestIntersectsWith(t *testing.T) {
	a := FromSlice(100, []int{3, 99})
	b := FromSlice(100, []int{99})
	c := FromSlice(100, []int{4})
	if !a.IntersectsWith(b) {
		t.Error("a and b should intersect")
	}
	if a.IntersectsWith(c) {
		t.Error("a and c should not intersect")
	}
	if a.IntersectsWith(nil) {
		t.Error("intersect with nil should be false")
	}
}

func TestElemsSorted(t *testing.T) {
	s := FromSlice(200, []int{150, 3, 77, 63, 64})
	got := s.Elems(nil)
	want := []int{3, 63, 64, 77, 150}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
}

func TestFromSliceIgnoresOutOfRange(t *testing.T) {
	s := FromSlice(10, []int{-1, 5, 10, 11})
	if s.Count() != 1 || !s.Contains(5) {
		t.Errorf("FromSlice out-of-range handling wrong: %v", s)
	}
}

func TestString(t *testing.T) {
	s := FromSlice(10, []int{1, 3})
	if got := s.String(); got != "{1, 3}" {
		t.Errorf("String() = %q, want {1, 3}", got)
	}
}

// TestQuickMatchesMap cross-checks the bitset against a map-based set under a
// random operation sequence.
func TestQuickMatchesMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 300
		s := New(n)
		ref := make(map[int]bool)
		for op := 0; op < 500; op++ {
			x := rng.Intn(n)
			switch rng.Intn(3) {
			case 0:
				s.Add(x)
				ref[x] = true
			case 1:
				s.Remove(x)
				delete(ref, x)
			default:
				if s.Contains(x) != ref[x] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		for _, e := range s.Elems(nil) {
			if !ref[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
