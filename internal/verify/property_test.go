package verify

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
)

func randomConnected(rng *rand.Rand, n, extra int, unit bool) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	w := func() float64 {
		if unit {
			return 1
		}
		return 1 + 2*rng.Float64()
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(perm[i], perm[rng.Intn(i)], w())
	}
	for tries := 0; tries < 4*extra; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, w())
		}
	}
	return g
}

// TestGreedySpannerPropertyExhaustive is the paper's Definition 2 as a
// property test: for random small instances, the greedy's output must
// survive EVERY fault set of size at most f — checked exhaustively, for
// both fault modes, and for both the sequential and the parallel builder.
func TestGreedySpannerPropertyExhaustive(t *testing.T) {
	instances := 40
	if testing.Short() {
		instances = 8
	}
	rng := rand.New(rand.NewSource(161616))
	for inst := 0; inst < instances; inst++ {
		n := 5 + rng.Intn(5) // exhaustive C(n+m, f) blows up fast
		g := randomConnected(rng, n, rng.Intn(2*n), inst%3 == 0)
		stretch := []float64{2, 3, 5}[rng.Intn(3)]
		faults := 1 + rng.Intn(2)
		mode := fault.Vertices
		if inst%2 == 1 {
			mode = fault.Edges
		}
		parallelism := []int{0, 4}[inst%2] // alternate builders across instances

		res, err := core.Greedy(g, core.Options{
			Stretch: stretch, Faults: faults, Mode: mode, Parallelism: parallelism,
		})
		if err != nil {
			t.Fatal(err)
		}
		inst2, err := NewInstance(res.Input, res.Spanner, res.Kept)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst2.ExhaustiveCheck(stretch, mode, faults); err != nil {
			t.Fatalf("instance %d (n=%d m=%d k=%v f=%d mode=%v P=%d): %v",
				inst, n, g.NumEdges(), stretch, faults, mode, parallelism, err)
		}
	}
}

// TestGreedySpannerSizeTrend checks the headline size claim: built VFT
// spanners stay within a fixed constant of the f^(1-1/k)·n^(1+1/k)
// envelope as n and f grow. Complete graphs with unit weights are the
// natural worst-case family (every pair is an edge candidate); the constant
// 4 holds with ample slack for the greedy (observed ratios stay below 0.72
// on this grid, and shrink as n grows) while still failing loudly if a
// regression inflated output sizes toward the trivial f·n^2.
func TestGreedySpannerSizeTrend(t *testing.T) {
	if testing.Short() {
		t.Skip("size-trend grid is slow")
	}
	const slack = 4.0
	for _, k := range []int{2, 3} { // stretch 3 and 5
		stretch := float64(2*k - 1)
		for _, n := range []int{16, 24, 32} {
			for _, f := range []int{0, 1, 2} {
				g := gen.Complete(n)
				res, err := core.Greedy(g, core.Options{
					Stretch: stretch, Faults: f, Mode: fault.Vertices, Parallelism: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				bound := slack * SizeBound(n, f, k)
				if got := float64(res.Spanner.NumEdges()); got > bound {
					t.Errorf("n=%d f=%d k=%d: spanner has %v edges, over %v·envelope = %v",
						n, f, k, got, slack, bound)
				}
			}
		}
	}
}

// TestSizeBound pins the envelope arithmetic itself.
func TestSizeBound(t *testing.T) {
	cases := []struct {
		n, f, k int
		want    float64
	}{
		{100, 1, 2, 1000},   // n^{3/2}
		{100, 4, 2, 2000},   // sqrt(4)·n^{3/2}
		{100, 0, 2, 1000},   // f=0 degenerates to the classic bound
		{1000, 8, 3, 40000}, // 8^{2/3}=4, 1000^{4/3}=10000
		{0, 3, 2, 0},        // degenerate n
		{10, 3, 0, 0},       // degenerate k
	}
	for _, c := range cases {
		if got := SizeBound(c.n, c.f, c.k); got < c.want*(1-1e-12) || got > c.want*(1+1e-12) {
			t.Errorf("SizeBound(%d,%d,%d) = %v, want %v", c.n, c.f, c.k, got, c.want)
		}
	}
}
