// Package verify checks fault-tolerant spanner properties (Definition 2 of
// the paper): for an instance (G, H ⊆ G) and a fault set F, is H \ F a
// k-spanner of G \ F? It offers exact per-fault-set checks, exhaustive
// enumeration over all small fault sets, randomized sampling, and a greedy
// adversarial search for larger instances — the domain's failure injection.
//
// All checks use the per-edge certificate: H\F is a k-spanner of G\F iff
// every surviving edge (u,v) of G\F satisfies dist_{H\F}(u,v) <= k·w(u,v),
// because shortest paths decompose into edges. The lemma itself is
// unit-tested against the all-pairs definition.
package verify

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// Instance couples an input graph G with a candidate spanner H on the same
// vertex set. HEdgeToG maps each H edge ID to the G edge ID it copies, which
// is how edge fault sets (given as G edge IDs) are applied to H.
type Instance struct {
	G        *graph.Graph
	H        *graph.Graph
	HEdgeToG []int
}

// NewInstance validates and builds an Instance.
func NewInstance(g, h *graph.Graph, hEdgeToG []int) (*Instance, error) {
	if g == nil || h == nil {
		return nil, fmt.Errorf("verify: nil graph")
	}
	if g.NumVertices() != h.NumVertices() {
		return nil, fmt.Errorf("verify: vertex counts differ: G has %d, H has %d", g.NumVertices(), h.NumVertices())
	}
	if len(hEdgeToG) != h.NumEdges() {
		return nil, fmt.Errorf("verify: mapping covers %d of %d H edges", len(hEdgeToG), h.NumEdges())
	}
	for hid, gid := range hEdgeToG {
		if gid < 0 || gid >= g.NumEdges() {
			return nil, fmt.Errorf("verify: H edge %d maps to invalid G edge %d", hid, gid)
		}
		he, ge := h.Edge(hid), g.Edge(gid)
		hu, hv := he.Endpoints()
		gu, gv := ge.Endpoints()
		if hu != gu || hv != gv || he.Weight != ge.Weight {
			return nil, fmt.Errorf("verify: H edge %d (%d,%d,w=%v) does not match G edge %d (%d,%d,w=%v)",
				hid, hu, hv, he.Weight, gid, gu, gv, ge.Weight)
		}
	}
	return &Instance{G: g, H: h, HEdgeToG: hEdgeToG}, nil
}

// Violation describes a broken spanner guarantee: under fault set F the
// surviving G edge (U,V) has dist_{H\F}(U,V) = Dist > Stretch·Weight.
type Violation struct {
	F       []int
	U, V    int
	Weight  float64
	Dist    float64
	Stretch float64
}

// Error renders the violation; Violation is also usable as a plain value.
func (v *Violation) Error() string {
	return fmt.Sprintf("verify: fault set %v: edge (%d,%d) w=%v has detour %v > stretch %v",
		v.F, v.U, v.V, v.Weight, v.Dist, v.Stretch)
}

// maskScratch holds the reusable fault-mask bitsets behind masks, so
// enumeration loops (exhaustive, random, adversarial, parallel workers)
// allocate them once rather than per fault set. Contents are valid until
// the next masks call on the same scratch.
type maskScratch struct {
	fv *bitset.Set // faulted vertices (Vertices mode)
	fg *bitset.Set // faulted G edges (Edges mode)
	fh *bitset.Set // same faults as H edge IDs (Edges mode)
}

func (inst *Instance) newMaskScratch() *maskScratch {
	return &maskScratch{
		fv: bitset.New(inst.G.NumVertices()),
		fg: bitset.New(inst.G.NumEdges()),
		fh: bitset.New(inst.H.NumEdges()),
	}
}

// masks translates a fault set in the given mode into Dijkstra masks for H
// and a survivor predicate for G edges, loading them into sc.
func (inst *Instance) masks(sc *maskScratch, mode fault.Mode, faults []int) (hOpts sssp.Options, gEdgeSurvives func(graph.Edge) bool, err error) {
	switch mode {
	case fault.Vertices:
		sc.fv.Clear()
		for _, x := range faults {
			if x < 0 || x >= inst.G.NumVertices() {
				return sssp.Options{}, nil, fmt.Errorf("verify: fault vertex %d out of range", x)
			}
			sc.fv.Add(x)
		}
		return sssp.Options{ForbiddenVertices: sc.fv},
			func(e graph.Edge) bool { return !sc.fv.Contains(e.U) && !sc.fv.Contains(e.V) },
			nil
	case fault.Edges:
		sc.fg.Clear()
		sc.fh.Clear()
		for _, x := range faults {
			if x < 0 || x >= inst.G.NumEdges() {
				return sssp.Options{}, nil, fmt.Errorf("verify: fault edge %d out of range", x)
			}
			sc.fg.Add(x)
		}
		for hid, gid := range inst.HEdgeToG {
			if sc.fg.Contains(gid) {
				sc.fh.Add(hid)
			}
		}
		return sssp.Options{ForbiddenEdges: sc.fh},
			func(e graph.Edge) bool { return !sc.fg.Contains(e.ID) },
			nil
	default:
		return sssp.Options{}, nil, fmt.Errorf("verify: invalid mode %d", int(mode))
	}
}

// CheckFaultSet verifies that H\F is a stretch-spanner of G\F for one
// specific fault set. It returns nil if the property holds, a *Violation if
// it fails, or another error for invalid input.
func (inst *Instance) CheckFaultSet(stretch float64, mode fault.Mode, faults []int) error {
	solver := sssp.BorrowSolver(inst.G.NumVertices())
	defer sssp.ReturnSolver(solver)
	return inst.checkFaultSet(solver, inst.newMaskScratch(), stretch, mode, faults)
}

// checkFaultSet is CheckFaultSet on a caller-owned solver and mask scratch,
// so enumeration loops (exhaustive, random, adversarial) reuse one set of
// allocations across thousands of fault sets instead of building a fresh
// heap and fresh bitsets per set.
func (inst *Instance) checkFaultSet(solver *sssp.Solver, sc *maskScratch, stretch float64, mode fault.Mode, faults []int) error {
	if stretch < 1 {
		return fmt.Errorf("verify: stretch must be >= 1, got %v", stretch)
	}
	hOpts, survives, err := inst.masks(sc, mode, faults)
	if err != nil {
		return err
	}
	for _, e := range inst.G.Edges() {
		if !survives(e) {
			continue
		}
		opts := hOpts
		opts.Bound = stretch * e.Weight
		if err := solver.RunTarget(inst.H, e.U, e.V, opts); err != nil {
			return err
		}
		if !solver.Reached(e.V) {
			// Compute the exact detour (or +Inf) for the report.
			unbounded := hOpts
			if err := solver.RunTarget(inst.H, e.U, e.V, unbounded); err != nil {
				return err
			}
			return &Violation{
				F:       append([]int(nil), faults...),
				U:       e.U,
				V:       e.V,
				Weight:  e.Weight,
				Dist:    solver.Dist(e.V),
				Stretch: stretch,
			}
		}
	}
	return nil
}

// WorstEdgeStretch returns the maximum over surviving G edges (u,v) of
// dist_{H\F}(u,v)/w(u,v) (+Inf if some surviving edge is disconnected in
// H\F), which by the certificate lemma is the exact stretch of H\F for G\F.
// A graph with no surviving edges has stretch 1 by convention.
func (inst *Instance) WorstEdgeStretch(mode fault.Mode, faults []int) (float64, error) {
	hOpts, survives, err := inst.masks(inst.newMaskScratch(), mode, faults)
	if err != nil {
		return 0, err
	}
	solver := sssp.BorrowSolver(inst.G.NumVertices())
	defer sssp.ReturnSolver(solver)
	worst := 1.0
	for u := 0; u < inst.G.NumVertices(); u++ {
		if mode == fault.Vertices && hOpts.ForbiddenVertices.Contains(u) {
			continue
		}
		ran := false
		for _, arc := range inst.G.Neighbors(u) {
			if arc.To < u {
				continue // each edge once
			}
			e := inst.G.Edge(arc.ID)
			if !survives(e) {
				continue
			}
			if !ran {
				if err := solver.Run(inst.H, u, hOpts); err != nil {
					return 0, err
				}
				ran = true
			}
			d := solver.Dist(arc.To)
			if math.IsInf(d, 1) {
				return math.Inf(1), nil
			}
			if s := d / e.Weight; s > worst {
				worst = s
			}
		}
	}
	return worst, nil
}

// ExhaustiveCheck verifies the spanner property under every fault set of
// size at most f. The universe is all vertices (Vertices mode) or all G
// edges (Edges mode); feasible only for small instances — C(universe, f)
// grows fast. It returns nil, or the first *Violation found.
func (inst *Instance) ExhaustiveCheck(stretch float64, mode fault.Mode, f int) error {
	universe := inst.G.NumVertices()
	if mode == fault.Edges {
		universe = inst.G.NumEdges()
	}
	solver := sssp.BorrowSolver(inst.G.NumVertices())
	defer sssp.ReturnSolver(solver)
	sc := inst.newMaskScratch()
	var firstErr error
	for size := 0; size <= f && firstErr == nil; size++ {
		combinations(universe, size, func(faults []int) bool {
			if err := inst.checkFaultSet(solver, sc, stretch, mode, faults); err != nil {
				firstErr = err
				return false
			}
			return true
		})
	}
	return firstErr
}

// RandomCheck verifies the spanner property under `trials` uniformly random
// fault sets with sizes drawn uniformly from [0, f].
func (inst *Instance) RandomCheck(stretch float64, mode fault.Mode, f, trials int, rng *rand.Rand) error {
	universe := inst.G.NumVertices()
	if mode == fault.Edges {
		universe = inst.G.NumEdges()
	}
	solver := sssp.BorrowSolver(inst.G.NumVertices())
	defer sssp.ReturnSolver(solver)
	sc := inst.newMaskScratch()
	for t := 0; t < trials; t++ {
		size := rng.Intn(f + 1)
		if size > universe {
			size = universe
		}
		faults := rng.Perm(universe)[:size]
		if err := inst.checkFaultSet(solver, sc, stretch, mode, faults); err != nil {
			return err
		}
	}
	return nil
}

// AdversarialCheck tries to break the spanner with a greedy adversary: for
// random surviving target edges it repeatedly adds the single fault that
// maximizes the detour, then checks the full property under the resulting
// fault set. Much better than random sampling at finding weak cuts.
func (inst *Instance) AdversarialCheck(stretch float64, mode fault.Mode, f, trials int, rng *rand.Rand) error {
	if inst.G.NumEdges() == 0 {
		return nil
	}
	solver := sssp.BorrowSolver(inst.G.NumVertices())
	defer sssp.ReturnSolver(solver)
	sc := inst.newMaskScratch()
	for t := 0; t < trials; t++ {
		target := inst.G.Edge(rng.Intn(inst.G.NumEdges()))
		faults := inst.greedyAdversary(solver, target, mode, f)
		if err := inst.checkFaultSet(solver, sc, stretch, mode, faults); err != nil {
			return err
		}
	}
	return nil
}

// greedyAdversary picks up to f faults that successively maximize
// dist_{H\F}(u,v) for the target edge (u,v), following shortest paths.
func (inst *Instance) greedyAdversary(solver *sssp.Solver, target graph.Edge, mode fault.Mode, f int) []int {
	var (
		faults []int
		fv     = bitset.New(inst.H.NumVertices())
		fh     = bitset.New(inst.H.NumEdges())
	)
	hToG := inst.HEdgeToG
	for len(faults) < f {
		opts := sssp.Options{ForbiddenVertices: fv, ForbiddenEdges: fh}
		if err := solver.RunTarget(inst.H, target.U, target.V, opts); err != nil {
			break
		}
		if !solver.Reached(target.V) {
			break // already disconnected: the fault set is as strong as it gets
		}
		if mode == fault.Vertices {
			verts := solver.PathTo(inst.H, target.V)
			if len(verts) <= 2 {
				break // direct edge cannot be vertex-faulted
			}
			best, bestDist := -1, -1.0
			for _, x := range verts[1 : len(verts)-1] {
				fv.Add(x)
				if err := solver.RunTarget(inst.H, target.U, target.V, opts); err == nil {
					d := solver.Dist(target.V)
					if math.IsInf(d, 1) {
						d = math.MaxFloat64
					}
					if d > bestDist {
						best, bestDist = x, d
					}
				}
				fv.Remove(x)
			}
			if best < 0 {
				break
			}
			fv.Add(best)
			faults = append(faults, best)
		} else {
			edges := solver.PathEdgesTo(inst.H, target.V)
			if len(edges) == 0 {
				break
			}
			best, bestDist := -1, -1.0
			for _, hid := range edges {
				fh.Add(hid)
				if err := solver.RunTarget(inst.H, target.U, target.V, opts); err == nil {
					d := solver.Dist(target.V)
					if math.IsInf(d, 1) {
						d = math.MaxFloat64
					}
					if d > bestDist {
						best, bestDist = hid, d
					}
				}
				fh.Remove(hid)
			}
			if best < 0 {
				break
			}
			fh.Add(best)
			faults = append(faults, hToG[best])
		}
	}
	return faults
}

// combinations visits every size-k subset of [0,n) in lexicographic order,
// passing a reused slice; visit returns false to stop early.
func combinations(n, k int, visit func([]int) bool) {
	if k > n || k < 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !visit(idx) {
			return
		}
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
