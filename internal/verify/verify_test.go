package verify

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// subInstance builds an Instance from g and a list of kept edge IDs.
func subInstance(t *testing.T, g *graph.Graph, kept []int) *Instance {
	t.Helper()
	h := graph.New(g.NumVertices())
	for _, gid := range kept {
		e := g.Edge(gid)
		h.MustAddEdge(e.U, e.V, e.Weight)
	}
	inst, err := NewInstance(g, h, kept)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	return inst
}

func TestNewInstanceValidation(t *testing.T) {
	g := gen.Complete(4)
	h := graph.New(4)
	h.MustAddEdge(0, 1, 1)

	if _, err := NewInstance(nil, h, []int{0}); err == nil {
		t.Error("nil G should error")
	}
	if _, err := NewInstance(g, nil, []int{0}); err == nil {
		t.Error("nil H should error")
	}
	if _, err := NewInstance(g, h, nil); err == nil {
		t.Error("short mapping should error")
	}
	if _, err := NewInstance(g, h, []int{99}); err == nil {
		t.Error("out-of-range mapping should error")
	}
	// Mismatched endpoints: map H's (0,1) to G's (0,2) edge.
	gid := -1
	for _, e := range g.Edges() {
		if (e.U == 0 && e.V == 2) || (e.U == 2 && e.V == 0) {
			gid = e.ID
		}
	}
	if _, err := NewInstance(g, h, []int{gid}); err == nil {
		t.Error("endpoint mismatch should error")
	}
	small := graph.New(3)
	if _, err := NewInstance(g, small, nil); err == nil {
		t.Error("vertex count mismatch should error")
	}
}

func TestCheckFaultSetNoFaults(t *testing.T) {
	// C4: keeping 3 of 4 edges is a 3-spanner (detour of length 3).
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	inst := subInstance(t, g, []int{0, 1, 2})
	if err := inst.CheckFaultSet(3, fault.Vertices, nil); err != nil {
		t.Errorf("3-edge path should 3-span C4: %v", err)
	}
	err = inst.CheckFaultSet(2, fault.Vertices, nil)
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("stretch 2 should fail with a Violation, got %v", err)
	}
	if viol.Dist != 3 {
		t.Errorf("violation dist = %v, want 3", viol.Dist)
	}
	if viol.Error() == "" {
		t.Error("violation message empty")
	}
}

func TestCheckFaultSetVertexFault(t *testing.T) {
	// Diamond: G has paths 0-1-3 (w2) and 0-2-3 (w4) plus direct 0-3 (w2.5).
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)   // 0
	g.MustAddEdge(1, 3, 1)   // 1
	g.MustAddEdge(0, 2, 2)   // 2
	g.MustAddEdge(2, 3, 2)   // 3
	g.MustAddEdge(0, 3, 2.5) // 4

	// H = both indirect paths, no direct edge.
	inst := subInstance(t, g, []int{0, 1, 2, 3})
	// No faults: edge (0,3) w=2.5 has detour 2 via 0-1-3: stretch 0.8. Fine.
	if err := inst.CheckFaultSet(1.2, fault.Vertices, nil); err != nil {
		t.Errorf("no-fault check failed: %v", err)
	}
	// Fault vertex 1: detour for (0,3) becomes 4: needs stretch >= 4/2.5.
	if err := inst.CheckFaultSet(1.2, fault.Vertices, []int{1}); err == nil {
		t.Error("faulting vertex 1 should violate stretch 1.2")
	}
	if err := inst.CheckFaultSet(1.7, fault.Vertices, []int{1}); err != nil {
		t.Errorf("stretch 1.7 should survive vertex 1 fault: %v", err)
	}
	// Fault both internal vertices: edge (0,3) survives, H\F disconnects it.
	if err := inst.CheckFaultSet(100, fault.Vertices, []int{1, 2}); err == nil {
		t.Error("disconnecting faults should be caught")
	}
}

func TestCheckFaultSetEdgeFault(t *testing.T) {
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	// H = path 0-1-2-3 (edges 0,1,2); the cycle edge 3 = (3,0) is dropped.
	inst := subInstance(t, g, []int{0, 1, 2})
	// No faults: (3,0) has detour 3 through the path.
	if err := inst.CheckFaultSet(3, fault.Edges, nil); err != nil {
		t.Errorf("path should 3-span C4: %v", err)
	}
	if err := inst.CheckFaultSet(2, fault.Edges, nil); err == nil {
		t.Error("stretch 2 should fail with no faults")
	}
	// Faulting the dropped edge itself removes it from the requirement:
	// everything else is present in H, so even stretch 1 holds.
	if err := inst.CheckFaultSet(1, fault.Edges, []int{3}); err != nil {
		t.Errorf("faulting the missing edge should make the check trivial: %v", err)
	}
	// Faulting a middle path edge disconnects the surviving edge (3,0).
	if err := inst.CheckFaultSet(100, fault.Edges, []int{1}); err == nil {
		t.Error("cutting the only detour must be caught")
	}
}

func TestCheckFaultSetInputErrors(t *testing.T) {
	g := gen.Complete(4)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept)
	if err := inst.CheckFaultSet(0.5, fault.Vertices, nil); err == nil {
		t.Error("stretch < 1 should error")
	}
	if err := inst.CheckFaultSet(2, fault.Vertices, []int{-1}); err == nil {
		t.Error("negative fault vertex should error")
	}
	if err := inst.CheckFaultSet(2, fault.Edges, []int{999}); err == nil {
		t.Error("out-of-range fault edge should error")
	}
	if err := inst.CheckFaultSet(2, fault.Mode(0), nil); err == nil {
		t.Error("invalid mode should error")
	}
}

func TestWorstEdgeStretch(t *testing.T) {
	g, err := gen.Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	inst := subInstance(t, g, []int{0, 1, 2, 3}) // drop one edge: detour 4
	got, err := inst.WorstEdgeStretch(fault.Vertices, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Errorf("WorstEdgeStretch = %v, want 4", got)
	}
	// Fault an internal vertex of the detour: survivors get disconnected.
	got, err = inst.WorstEdgeStretch(fault.Vertices, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("WorstEdgeStretch with cut = %v, want +Inf", got)
	}
}

func TestWorstEdgeStretchPerfect(t *testing.T) {
	g := gen.Complete(5)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept)
	got, err := inst.WorstEdgeStretch(fault.Edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("identity spanner stretch = %v, want 1", got)
	}
}

func TestExhaustiveCheckFindsPlantedViolation(t *testing.T) {
	// Star: H misses one leaf edge; with f=0 that's immediately violated...
	// make it subtler: H = star minus nothing, but G has an extra edge
	// (1,2) that H lacks; faulting center 0 leaves (1,2) with no detour.
	g := gen.Star(4) // edges (0,1),(0,2),(0,3)
	extra := g.MustAddEdge(1, 2, 1)
	_ = extra
	inst := subInstance(t, g, []int{0, 1, 2}) // star only
	if err := inst.ExhaustiveCheck(3, fault.Vertices, 0); err != nil {
		t.Errorf("no faults: star 3-spans G? should hold: %v", err)
	}
	err := inst.ExhaustiveCheck(3, fault.Vertices, 1)
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("want a Violation under one fault, got %v", err)
	}
	if len(viol.F) != 1 || viol.F[0] != 0 {
		t.Errorf("violating fault set = %v, want [0]", viol.F)
	}
}

func TestRandomAndAdversarialChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := gen.Complete(7)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept) // H = G: tolerates anything
	if err := inst.RandomCheck(3, fault.Vertices, 2, 50, rng); err != nil {
		t.Errorf("identity spanner failed random check: %v", err)
	}
	if err := inst.AdversarialCheck(3, fault.Edges, 2, 20, rng); err != nil {
		t.Errorf("identity spanner failed adversarial check: %v", err)
	}

	// A fragile spanner: C6 as H for G = C6 + chords.
	g2, err := gen.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	g2.MustAddEdge(0, 3, 1)
	inst2 := subInstance(t, g2, []int{0, 1, 2, 3, 4, 5})
	// The chord (0,3) has detour 3 in H; fault any cycle vertex on that arc
	// and the detour becomes 3 the other way; fault one vertex per side and
	// it disconnects. Adversarial search should find a violation at
	// stretch 3 with f=2.
	if err := inst2.AdversarialCheck(3, fault.Vertices, 2, 200, rng); err == nil {
		t.Error("adversarial check should break the fragile spanner")
	}
}

// TestCertificateLemma validates the per-edge certificate against the
// all-pairs definition of a spanner on random instances with random faults.
func TestCertificateLemma(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		maxM := n * (n - 1) / 2
		m := (n - 1) + rng.Intn(maxM-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 3, rng)
		if err != nil {
			return false
		}
		// Random subgraph H of G (keep each edge with prob 0.7).
		var kept []int
		for _, e := range g.Edges() {
			if rng.Float64() < 0.7 {
				kept = append(kept, e.ID)
			}
		}
		h := graph.New(n)
		for _, gid := range kept {
			e := g.Edge(gid)
			h.MustAddEdge(e.U, e.V, e.Weight)
		}
		inst, err := NewInstance(g, h, kept)
		if err != nil {
			return false
		}
		mode := fault.Vertices
		if rng.Intn(2) == 0 {
			mode = fault.Edges
		}
		universe := n
		if mode == fault.Edges {
			universe = g.NumEdges()
		}
		faults := rng.Perm(universe)[:rng.Intn(3)]
		stretch := 1 + 3*rng.Float64()

		perEdge := inst.CheckFaultSet(stretch, mode, faults) == nil
		allPairs := allPairsSpanner(g, h, kept, stretch, mode, faults)
		return perEdge == allPairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// allPairsSpanner checks Definition 1 for H\F vs G\F literally over all
// vertex pairs.
func allPairsSpanner(g, h *graph.Graph, hEdgeToG []int, stretch float64, mode fault.Mode, faults []int) bool {
	n := g.NumVertices()
	gOpts := sssp.Options{}
	hOpts := sssp.Options{}
	switch mode {
	case fault.Vertices:
		fv := bitset.FromSlice(n, faults)
		gOpts.ForbiddenVertices = fv
		hOpts.ForbiddenVertices = fv
	case fault.Edges:
		fg := bitset.FromSlice(g.NumEdges(), faults)
		gOpts.ForbiddenEdges = fg
		fh := bitset.New(h.NumEdges())
		for hid, gid := range hEdgeToG {
			if fg.Contains(gid) {
				fh.Add(hid)
			}
		}
		hOpts.ForbiddenEdges = fh
	}
	inF := func(v int) bool {
		return mode == fault.Vertices && gOpts.ForbiddenVertices.Contains(v)
	}
	for s := 0; s < n; s++ {
		if inF(s) {
			continue
		}
		dg, err := sssp.AllDists(g, s, gOpts)
		if err != nil {
			return false
		}
		dh, err := sssp.AllDists(h, s, hOpts)
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if v == s || inF(v) || math.IsInf(dg[v], 1) {
				continue
			}
			if dh[v] > stretch*dg[v]+1e-9 {
				return false
			}
		}
	}
	return true
}

func TestCombinationsEnumeration(t *testing.T) {
	var got [][]int
	combinations(4, 2, func(c []int) bool {
		got = append(got, append([]int(nil), c...))
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	combinations(5, 2, func([]int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop visited %d, want 3", count)
	}
	// Degenerate cases.
	count = 0
	combinations(3, 0, func(c []int) bool {
		count++
		return len(c) == 0
	})
	if count != 1 {
		t.Errorf("k=0 should visit the empty set once, visited %d", count)
	}
	combinations(2, 5, func([]int) bool {
		t.Error("k > n should visit nothing")
		return false
	})
}
