package verify

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
)

func TestParallelRandomCheckPasses(t *testing.T) {
	g := gen.Complete(10)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept) // H = G tolerates everything
	for _, workers := range []int{0, 1, 4, 64} {
		rng := rand.New(rand.NewSource(1))
		if err := inst.ParallelRandomCheck(3, fault.Vertices, 3, 100, workers, rng); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

func TestParallelRandomCheckFindsViolations(t *testing.T) {
	// Fragile instance: G = C6 + chord, H = C6 only; faults break it.
	g, err := gen.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(0, 3, 1)
	inst := subInstance(t, g, []int{0, 1, 2, 3, 4, 5})
	rng := rand.New(rand.NewSource(2))
	err = inst.ParallelRandomCheck(3, fault.Vertices, 2, 400, 8, rng)
	if err == nil {
		t.Fatal("fragile spanner should be caught")
	}
	var viol *Violation
	if !errors.As(err, &viol) {
		t.Fatalf("want *Violation, got %T", err)
	}
}

func TestParallelRandomCheckDeterministic(t *testing.T) {
	g, err := gen.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	g.MustAddEdge(0, 3, 1)
	inst := subInstance(t, g, []int{0, 1, 2, 3, 4, 5})
	report := func(workers int) string {
		rng := rand.New(rand.NewSource(7))
		err := inst.ParallelRandomCheck(3, fault.Vertices, 2, 300, workers, rng)
		if err == nil {
			return ""
		}
		return err.Error()
	}
	first := report(1)
	if first == "" {
		t.Fatal("expected a violation")
	}
	for _, workers := range []int{2, 8, 16} {
		if got := report(workers); got != first {
			t.Errorf("workers=%d reported %q, workers=1 reported %q", workers, got, first)
		}
	}
}

func TestParallelRandomCheckZeroTrials(t *testing.T) {
	g := gen.Complete(4)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept)
	if err := inst.ParallelRandomCheck(3, fault.Vertices, 2, 0, 4, rand.New(rand.NewSource(1))); err != nil {
		t.Errorf("zero trials should pass: %v", err)
	}
}

func TestParallelExhaustivePasses(t *testing.T) {
	g := gen.Complete(7)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept)
	for _, workers := range []int{0, 1, 3, 16} {
		if err := inst.ParallelExhaustiveCheck(3, fault.Vertices, 2, workers); err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
	}
}

func TestParallelExhaustiveMatchesSequentialViolation(t *testing.T) {
	// Star spanner of K6: faulting the hub breaks it; the parallel check
	// must report the same earliest violation as the sequential one.
	g := gen.Complete(6)
	var kept []int
	for _, e := range g.Edges() {
		if e.U == 0 || e.V == 0 {
			kept = append(kept, e.ID)
		}
	}
	inst := subInstance(t, g, kept)
	seq := inst.ExhaustiveCheck(3, fault.Vertices, 1)
	if seq == nil {
		t.Fatal("sequential check should fail")
	}
	for _, workers := range []int{1, 4, 12} {
		par := inst.ParallelExhaustiveCheck(3, fault.Vertices, 1, workers)
		if par == nil {
			t.Fatalf("workers=%d: parallel check should fail", workers)
		}
		if par.Error() != seq.Error() {
			t.Errorf("workers=%d: %q != sequential %q", workers, par.Error(), seq.Error())
		}
	}
}

func TestParallelExhaustiveEdgeMode(t *testing.T) {
	g := gen.Complete(6)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept)
	if err := inst.ParallelExhaustiveCheck(3, fault.Edges, 2, 4); err != nil {
		t.Errorf("identity spanner must pass: %v", err)
	}
}

func TestParallelMatchesSequentialVerdict(t *testing.T) {
	// On a correct FT spanner both must pass with any seeds.
	g := gen.Complete(9)
	kept := make([]int, g.NumEdges())
	for i := range kept {
		kept[i] = i
	}
	inst := subInstance(t, g, kept)
	for seed := int64(0); seed < 5; seed++ {
		seq := inst.RandomCheck(3, fault.Edges, 2, 50, rand.New(rand.NewSource(seed)))
		par := inst.ParallelRandomCheck(3, fault.Edges, 2, 50, 4, rand.New(rand.NewSource(seed)))
		if (seq == nil) != (par == nil) {
			t.Errorf("seed %d: sequential %v vs parallel %v", seed, seq, par)
		}
	}
}
