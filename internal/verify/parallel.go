package verify

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// ParallelExhaustiveCheck is ExhaustiveCheck spread over a worker pool:
// every fault set of size at most f is verified, batched across `workers`
// goroutines (GOMAXPROCS if workers < 1). On failure the violation earliest
// in enumeration order is returned, matching the sequential check. Workers
// stop early once a violation is found; all goroutines exit before return.
func (inst *Instance) ParallelExhaustiveCheck(stretch float64, mode fault.Mode, f, workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	universe := inst.G.NumVertices()
	if mode == fault.Edges {
		universe = inst.G.NumEdges()
	}

	type batch struct {
		start int // global index of the first set in the batch
		sets  [][]int
	}
	const batchSize = 64
	var (
		jobs     = make(chan batch)
		mu       sync.Mutex
		bestIdx  = -1
		bestErr  error
		violated atomic.Bool
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := sssp.BorrowSolver(inst.G.NumVertices())
			defer sssp.ReturnSolver(solver)
			sc := inst.newMaskScratch()
			for b := range jobs {
				for i, faults := range b.sets {
					idx := b.start + i
					if violated.Load() {
						mu.Lock()
						skip := bestIdx >= 0 && idx > bestIdx
						mu.Unlock()
						if skip {
							continue
						}
					}
					if err := inst.checkFaultSet(solver, sc, stretch, mode, faults); err != nil {
						violated.Store(true)
						mu.Lock()
						if bestIdx < 0 || idx < bestIdx {
							bestIdx, bestErr = idx, err
						}
						mu.Unlock()
					}
				}
			}
		}()
	}

	// Produce batches in enumeration order; stop early on violation.
	next := 0
	cur := batch{start: 0}
	flush := func() {
		if len(cur.sets) > 0 {
			jobs <- cur
			cur = batch{start: next}
		}
	}
	for size := 0; size <= f && !violated.Load(); size++ {
		combinations(universe, size, func(faults []int) bool {
			cur.sets = append(cur.sets, append([]int(nil), faults...))
			next++
			if len(cur.sets) == batchSize {
				flush()
			}
			return !violated.Load()
		})
	}
	flush()
	close(jobs)
	wg.Wait()
	return bestErr
}

// ParallelRandomCheck is RandomCheck spread over a worker pool: `trials`
// random fault sets (sizes uniform in [0, f]) are verified concurrently by
// `workers` goroutines (GOMAXPROCS if workers < 1). The fault sets are
// pre-drawn from rng on the calling goroutine, and on failure the violation
// with the smallest trial index is returned, so results are deterministic
// for a given seed regardless of scheduling. Every goroutine exits before
// the function returns.
func (inst *Instance) ParallelRandomCheck(stretch float64, mode fault.Mode, f, trials, workers int, rng *rand.Rand) error {
	if trials <= 0 {
		return nil
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > trials {
		workers = trials
	}
	universe := inst.G.NumVertices()
	if mode == fault.Edges {
		universe = inst.G.NumEdges()
	}
	jobs := make([][]int, trials)
	for i := range jobs {
		size := rng.Intn(f + 1)
		if size > universe {
			size = universe
		}
		jobs[i] = rng.Perm(universe)[:size]
	}

	var (
		next     atomic.Int64
		mu       sync.Mutex
		bestIdx  = -1
		bestErr  error
		violated atomic.Bool
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			solver := sssp.BorrowSolver(inst.G.NumVertices())
			defer sssp.ReturnSolver(solver)
			sc := inst.newMaskScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= trials {
					return
				}
				if violated.Load() {
					// A violation exists; only earlier indices still matter.
					mu.Lock()
					stop := bestIdx >= 0 && i > bestIdx
					mu.Unlock()
					if stop {
						continue // drain cheaply; later trials can't win
					}
				}
				if err := inst.checkFaultSet(solver, sc, stretch, mode, jobs[i]); err != nil {
					violated.Store(true)
					mu.Lock()
					if bestIdx < 0 || i < bestIdx {
						bestIdx, bestErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return bestErr
}
