package verify

import "math"

// SizeBound returns the paper's size envelope for fault-tolerant greedy
// spanners: f^(1-1/k) · n^(1+1/k), the existentially optimal edge count
// (up to a constant factor) of an f-vertex-fault-tolerant (2k-1)-spanner on
// n vertices (Bodwin–Patel, Theorem 1). f = 0 degenerates to the classic
// non-faulty greedy bound n^(1+1/k).
//
// The function reports the envelope WITHOUT its constant: property tests
// compare built spanner sizes against C·SizeBound for a fixed small C,
// which pins the growth trend — the paper's headline claim — rather than
// any particular constant.
func SizeBound(n, f, k int) float64 {
	if n < 1 || k < 1 {
		return 0
	}
	ff := float64(f)
	if f < 1 {
		ff = 1
	}
	return math.Pow(ff, 1-1/float64(k)) * math.Pow(float64(n), 1+1/float64(k))
}
