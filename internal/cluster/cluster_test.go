package cluster

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/service"
)

// ---- fleet harness ---------------------------------------------------
//
// An in-process fleet: N httptest listeners, each fronting one Node that
// wraps one service.Server. The listeners must exist before the nodes
// (nodes need the full peer address list), so each listener delegates
// through an atomic handler pointer that is swapped in once the node is
// built.

type replica struct {
	addr    string
	svc     *service.Server
	node    *Node
	ts      *httptest.Server
	handler atomic.Pointer[http.Handler]
	dir     string
}

type fleet struct {
	t        *testing.T
	replicas []*replica
}

func (f *fleet) peers() []string {
	out := make([]string, len(f.replicas))
	for i, r := range f.replicas {
		out[i] = r.addr
	}
	return out
}

// startFleet brings up n combined router+worker replicas, each with a
// durable store, short poll intervals, and no background sync (tests sweep
// explicitly for determinism).
func startFleet(t *testing.T, n int, cfg service.Config) *fleet {
	t.Helper()
	f := &fleet{t: t}
	for i := 0; i < n; i++ {
		rep := &replica{}
		rep.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if h := rep.handler.Load(); h != nil {
				(*h).ServeHTTP(w, r)
				return
			}
			http.Error(w, "replica still starting", http.StatusServiceUnavailable)
		}))
		u, err := url.Parse(rep.ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		rep.addr = u.Host
		f.replicas = append(f.replicas, rep)
	}
	peers := f.peers()
	for i, rep := range f.replicas {
		c := cfg
		if c.Workers == 0 {
			c.Workers = 2
		}
		if c.StoreDir == "" || i > 0 {
			rep.dir = t.TempDir()
			c.StoreDir = rep.dir
		} else {
			rep.dir = c.StoreDir
		}
		c.JobRetention = time.Minute
		svc, err := service.New(c)
		if err != nil {
			t.Fatal(err)
		}
		rep.svc = svc
		node, err := New(Config{
			Self:         rep.addr,
			Peers:        peers,
			Local:        svc,
			PollInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.node = node
		var h http.Handler = node
		rep.handler.Store(&h)
	}
	t.Cleanup(func() {
		for _, rep := range f.replicas {
			rep.node.Close()
			rep.ts.Close()
			rep.svc.Close()
		}
	})
	return f
}

// pollAll forces a synchronous summary refresh on every node.
func (f *fleet) pollAll() {
	for _, rep := range f.replicas {
		rep.node.PollNow()
	}
}

// byRing maps a ring index to its replica: the ring sorts peers by
// address string, so ring order and creation order differ.
func (f *fleet) byRing(idx int) *replica {
	addr := f.replicas[0].node.Ring().Peers()[idx]
	for _, rep := range f.replicas {
		if rep.addr == addr {
			return rep
		}
	}
	f.t.Fatalf("no replica at ring index %d (%s)", idx, addr)
	return nil
}

// specBody builds a deterministic small-graph job body for seed.
func specBody(seed int64) []byte {
	return []byte(fmt.Sprintf(`{"algorithm":"greedy","stretch":3,"faults":1,"mode":"vertex",`+
		`"generator":{"name":"random","n":40,"m":100,"seed":%d}}`, seed))
}

// slowBody builds a body whose build takes long enough to observe queued
// and running states.
func slowBody(seed int64) []byte {
	return []byte(fmt.Sprintf(`{"algorithm":"greedy","stretch":3,"faults":1,"mode":"vertex",`+
		`"generator":{"name":"random","n":300,"m":9000,"seed":%d}}`, seed))
}

// seedOwnedBy scans seeds until specBody(seed)'s digest is owned by ring
// index want, so tests can aim traffic at a chosen replica.
func seedOwnedBy(t *testing.T, r *Ring, want int, slow bool) (int64, []byte) {
	t.Helper()
	for seed := int64(1); seed < 500; seed++ {
		body := specBody(seed)
		if slow {
			body = slowBody(seed)
		}
		digest, err := service.SpecDigest(body)
		if err != nil {
			t.Fatal(err)
		}
		if r.Owner(digest) == want {
			return seed, body
		}
	}
	t.Fatal("no seed found owned by target replica")
	return 0, nil
}

// postJob submits body through the replica at entry and decodes the reply.
func postJob(t *testing.T, entry *replica, body []byte) (map[string]any, *http.Response) {
	t.Helper()
	resp, err := http.Post(entry.ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode submit reply (status %d): %v", resp.StatusCode, err)
	}
	return m, resp
}

// getJSON fetches path through entry and decodes the JSON reply.
func getJSON(t *testing.T, entry *replica, path string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(entry.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode %s (status %d): %v", path, resp.StatusCode, err)
	}
	return m, resp.StatusCode
}

// waitDone polls a job through entry until it reaches a terminal state.
func waitDone(t *testing.T, entry *replica, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, code := getJSON(t, entry, "/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("status %s: http %d (%v)", id, code, st)
		}
		switch st["state"] {
		case "done":
			return st
		case "failed", "cancelled", "deadline":
			t.Fatalf("job %s terminal state %v: %v", id, st["state"], st["error"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return nil
}

// spannerDigest fetches a job's spanner through entry and hashes it.
func spannerDigest(t *testing.T, entry *replica, id string) string {
	t.Helper()
	m, code := getJSON(t, entry, "/v1/jobs/"+id+"/spanner")
	if code != http.StatusOK {
		t.Fatalf("spanner %s via %s: http %d (%v)", id, entry.addr, code, m)
	}
	text, _ := m["spanner"].(string)
	if text == "" {
		t.Fatalf("empty spanner for %s via %s", id, entry.addr)
	}
	sum := sha256.Sum256([]byte(text))
	return hex.EncodeToString(sum[:])
}

// ---- e2e: digest-stable routing and byte-identical results -----------

// TestFleetDigestAffinity is the acceptance e2e: the same graph submitted
// through each of three replicas routes to one owner (cache hit on the
// second and third entry points), and the spanner bytes are identical from
// every entry point.
func TestFleetDigestAffinity(t *testing.T) {
	f := startFleet(t, 3, service.Config{})
	body := specBody(7)
	digest, err := service.SpecDigest(body)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.replicas[0].node.Ring().Owner(digest)

	first, resp := postJob(t, f.replicas[0], body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via replica 0: http %d (%v)", resp.StatusCode, first)
	}
	id, _ := first["id"].(string)
	wantPrefix := fmt.Sprintf("p%d~", owner)
	if !strings.HasPrefix(id, wantPrefix) {
		t.Fatalf("job id %q not scoped to owner %d", id, owner)
	}
	waitDone(t, f.replicas[1], id)

	// Entry through the other two replicas must route to the same owner
	// and be answered from its result cache (or dedup) — no second build.
	for _, entry := range f.replicas[1:] {
		m, _ := postJob(t, entry, body)
		mid, _ := m["id"].(string)
		if !strings.HasPrefix(mid, wantPrefix) {
			t.Fatalf("resubmission via %s got id %q, want owner prefix %q", entry.addr, mid, wantPrefix)
		}
		if m["cached"] != true && m["deduplicated"] != true {
			t.Fatalf("resubmission via %s rebuilt instead of hitting the owner cache: %v", entry.addr, m)
		}
	}

	// Byte-identical spanners from every entry point.
	want := spannerDigest(t, f.replicas[0], id)
	for _, entry := range f.replicas[1:] {
		if got := spannerDigest(t, entry, id); got != want {
			t.Fatalf("spanner digest differs via %s: %s != %s", entry.addr, got, want)
		}
	}

	// Routing metrics: the owner served locally; at least one non-owner
	// proxied. (Entry 0 may or may not be the owner.)
	if local := f.byRing(owner).node.Metrics().RoutedLocalTotal; local == 0 {
		t.Error("owner served no local traffic")
	}
	remote := int64(0)
	for _, rep := range f.replicas {
		if rep != f.byRing(owner) {
			remote += rep.node.Metrics().RoutedRemoteTotal
		}
	}
	if remote == 0 {
		t.Error("no request was proxied to the owner")
	}
}

// TestFleetVerifyRoutesByPrefix checks POST /v1/verify reaches the owning
// replica from any entry point and scopes job_id back.
func TestFleetVerifyRoutesByPrefix(t *testing.T) {
	f := startFleet(t, 3, service.Config{})
	first, _ := postJob(t, f.replicas[0], specBody(7))
	id, _ := first["id"].(string)
	waitDone(t, f.replicas[0], id)
	for _, entry := range f.replicas {
		req := fmt.Sprintf(`{"job_id":%q,"trials":8,"seed":1}`, id)
		resp, err := http.Post(entry.ts.URL+"/v1/verify", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || m["ok"] != true {
			t.Fatalf("verify via %s: http %d %v", entry.addr, resp.StatusCode, m)
		}
		if m["job_id"] != id {
			t.Fatalf("verify via %s returned job_id %v, want %q", entry.addr, m["job_id"], id)
		}
	}
}

// ---- e2e: failover ---------------------------------------------------

// TestFleetKilledOwnerFailsOver is the failover acceptance e2e: with the
// owning replica dead, a resubmission through a surviving replica succeeds
// via the ring successor, and the cluster_* metrics record the retry,
// peer error, and hedge.
func TestFleetKilledOwnerFailsOver(t *testing.T) {
	f := startFleet(t, 3, service.Config{})
	ring := f.replicas[0].node.Ring()

	// Aim at a digest owned by a replica that is NOT our entry, so the
	// entry must route remotely and then hedge.
	entry := f.replicas[0]
	entryIdx := ring.Index(entry.addr)
	ownerIdx := (entryIdx + 1) % 3
	_, body := seedOwnedBy(t, ring, ownerIdx, false)
	digest, _ := service.SpecDigest(body)
	succIdx := ring.Successors(digest, 2)[1]

	// Kill the owner.
	f.byRing(ownerIdx).ts.Close()

	m, resp := postJob(t, entry, body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("failover submit: http %d (%v)", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if !strings.HasPrefix(id, fmt.Sprintf("p%d~", succIdx)) {
		t.Fatalf("failover job id %q, want successor prefix p%d~", id, succIdx)
	}
	waitDone(t, entry, id)
	if spannerDigest(t, entry, id) == "" {
		t.Fatal("no spanner after failover")
	}

	cm := entry.node.Metrics()
	if cm.HedgedTotal == 0 {
		t.Errorf("cluster_hedged_total = 0 after failover, want > 0")
	}
	if cm.RetriesTotal == 0 {
		t.Errorf("cluster_retries_total = 0 after failover, want > 0")
	}
	if cm.PeerErrorsTotal == 0 {
		t.Errorf("cluster_peer_errors_total = 0 after failover, want > 0")
	}

	// The merged /metrics document exposes the same counters.
	mm, _ := getJSON(t, entry, "/metrics")
	if v, ok := mm["cluster_hedged_total"].(float64); !ok || v == 0 {
		t.Errorf("merged /metrics cluster_hedged_total = %v, want > 0", mm["cluster_hedged_total"])
	}
}

// TestFleetDrainingOwnerHedges checks the drain-aware handshake: a
// draining owner is skipped via its polled summary, before any forward.
func TestFleetDrainingOwnerHedges(t *testing.T) {
	f := startFleet(t, 3, service.Config{})
	ring := f.replicas[0].node.Ring()
	entry := f.replicas[0]
	entryIdx := ring.Index(entry.addr)
	ownerIdx := (entryIdx + 1) % 3
	_, body := seedOwnedBy(t, ring, ownerIdx, false)
	digest, _ := service.SpecDigest(body)
	succIdx := ring.Successors(digest, 2)[1]

	f.byRing(ownerIdx).svc.StartDrain()
	f.pollAll()

	m, resp := postJob(t, entry, body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit with draining owner: http %d (%v)", resp.StatusCode, m)
	}
	id, _ := m["id"].(string)
	if !strings.HasPrefix(id, fmt.Sprintf("p%d~", succIdx)) {
		t.Fatalf("drain-hedged job id %q, want successor prefix p%d~", id, succIdx)
	}
	if entry.node.Metrics().HedgedTotal == 0 {
		t.Error("cluster_hedged_total = 0 after drain hedge, want > 0")
	}
	// The hedge never touched the draining owner.
	if f.byRing(ownerIdx).node.Metrics().RoutedLocalTotal != 0 {
		t.Error("draining owner still served a routed submit")
	}
}

// ---- e2e: fleet-aware backpressure -----------------------------------

// TestFleetBackpressureRelay checks the router answers for a queue-full
// owner with the owner's own Retry-After instead of forwarding (or blindly
// fanning out to a replica that does not own the digest).
func TestFleetBackpressureRelay(t *testing.T) {
	// The owner's single worker is parked on the chaos gate, so its one
	// queue slot fills deterministically — no reliance on build duration.
	gate := make(chan struct{})
	var block atomic.Bool
	f := startFleet(t, 3, service.Config{
		Workers:    1,
		QueueDepth: 1,
		Chaos: func(string) {
			if block.Load() {
				<-gate
			}
		},
	})
	t.Cleanup(func() { close(gate) }) // registered after startFleet: runs first
	ring := f.replicas[0].node.Ring()
	entry := f.replicas[0]
	entryIdx := ring.Index(entry.addr)
	ownerIdx := (entryIdx + 1) % 3
	owner := f.byRing(ownerIdx)

	// Three distinct digests owned by the same replica: one to occupy the
	// worker, one to fill the queue, one to bounce off the backpressure.
	var bodies [][]byte
	for seed := int64(1); len(bodies) < 3 && seed < 2000; seed++ {
		body := specBody(seed)
		if d, err := service.SpecDigest(body); err == nil && ring.Owner(d) == ownerIdx {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) < 3 {
		t.Fatal("not enough seeds owned by target replica")
	}

	block.Store(true)
	if _, resp := postJob(t, entry, bodies[0]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: http %d", resp.StatusCode)
	}
	waitQueueFull(t, owner.svc)
	if _, resp := postJob(t, entry, bodies[1]); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: http %d", resp.StatusCode)
	}
	f.pollAll()

	m, resp := postJob(t, entry, bodies[2])
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit to full owner: http %d (%v), want 503", resp.StatusCode, m)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("backpressure reply missing Retry-After")
	}
	if entry.node.Metrics().BackpressureRejects == 0 {
		t.Error("cluster_backpressure_rejects_total = 0, want > 0")
	}
	// No blind fan-out: the reject never reached a replica that does not
	// own the digest.
	for _, rep := range f.replicas {
		if rep != owner && rep.node.Metrics().RoutedLocalTotal > 0 {
			t.Errorf("replica %s served work it does not own", rep.addr)
		}
	}
	block.Store(false)
}

// waitQueueFull waits until the slow build has been dequeued (worker busy,
// queue empty) so the next submission lands in the queue slot.
func waitQueueFull(t *testing.T, svc *service.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if svc.Metrics().BuildsInFlight > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("slow build never started")
}

// ---- e2e: anti-entropy -----------------------------------------------

// TestFleetAntiEntropyWarm checks a replica pulls records it is missing
// from its peers, imports them through the verifying codec, and rejects
// corrupted pulls.
func TestFleetAntiEntropyWarm(t *testing.T) {
	f := startFleet(t, 3, service.Config{})
	ring := f.replicas[0].node.Ring()

	first, _ := postJob(t, f.replicas[0], specBody(7))
	id, _ := first["id"].(string)
	waitDone(t, f.replicas[0], id)
	digest, _ := service.SpecDigest(specBody(7))
	ownerIdx := ring.Owner(digest)

	// Pick a replica that does not hold the record and sweep.
	other := f.byRing((ownerIdx + 1) % 3)
	if got := len(other.svc.Store().List()); got != 0 {
		t.Fatalf("non-owner already holds %d records", got)
	}
	res, err := other.node.SweepOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Pulled != 1 {
		t.Fatalf("sweep pulled %d records, want 1 (result %+v)", res.Pulled, res)
	}
	if got := len(other.svc.Store().List()); got != 1 {
		t.Fatalf("store holds %d records after sweep, want 1", got)
	}
	// A second sweep is a no-op: nothing missing.
	res, err = other.node.SweepOnce(context.Background())
	if err != nil || res.Pulled != 0 {
		t.Fatalf("re-sweep pulled %d (err %v), want 0", res.Pulled, err)
	}
	if m := other.node.Metrics(); m.SyncSweepsTotal != 2 || m.SyncPulledTotal != 1 {
		t.Errorf("sync metrics = %+v, want 2 sweeps / 1 pulled", m)
	}

	// Corrupt the owner's record on disk: the third replica's sweep must
	// reject the pull through the codec and import nothing.
	ownerDir := f.byRing(ownerIdx).dir
	names, err := filepath.Glob(filepath.Join(ownerDir, "*"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no record file in owner store dir: %v", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	third := f.byRing((ownerIdx + 2) % 3)
	res, _ = third.node.SweepOnce(context.Background())
	// The corrupted record is rejected wherever it is pulled from; the
	// clean copy `other` now holds may satisfy the pull instead, so accept
	// either a rejection or a clean import — but never a quiet corrupt one.
	if res.Rejected == 0 && res.Pulled == 0 {
		t.Fatalf("third replica neither pulled nor rejected: %+v", res)
	}
	for _, info := range third.svc.Store().List() {
		raw, ok := third.svc.Store().ExportRaw(info.Name)
		if !ok {
			t.Fatalf("exported record %s vanished", info.Name)
		}
		if _, _, err := third.svc.Store().ImportEncoded(raw); err != nil {
			t.Fatalf("imported record %s does not round-trip: %v", info.Name, err)
		}
	}
}

// ---- e2e: proxied event stream ---------------------------------------

// TestFleetProxiedEventStream checks a proxied NDJSON stream through a
// non-owner replica relays events live up to and including the terminal
// one.
func TestFleetProxiedEventStream(t *testing.T) {
	f := startFleet(t, 3, service.Config{})
	ring := f.replicas[0].node.Ring()
	entry := f.replicas[0]
	entryIdx := ring.Index(entry.addr)
	ownerIdx := (entryIdx + 1) % 3
	_, body := seedOwnedBy(t, ring, ownerIdx, true)

	m, _ := postJob(t, entry, body)
	id, _ := m["id"].(string)
	resp, err := http.Get(entry.ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: http %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sawTerminal := false
	for sc.Scan() {
		var ev struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.State == "done" || ev.State == "failed" {
			sawTerminal = true
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTerminal {
		t.Fatal("proxied stream ended without a terminal event")
	}
}
