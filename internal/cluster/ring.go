// Package cluster shards ftserve into a digest-affinity replica fleet: a
// consistent-hash ring assigns every graph digest an owning replica, a
// router proxies job traffic to the owner (with bounded retry and one
// hedged fallback to the ring successor), and a pull-based anti-entropy
// sweep warms each replica's durable store from its peers.
//
// The design leans entirely on determinism: the Bodwin–Patel construction
// is deterministic and every result is content-addressed by Graph.Digest(),
// so replicas need no consensus — digest affinity alone makes the result
// cache, in-flight dedup, and the durable store shard-local, and any
// replica can serve any record it happens to hold.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per peer: enough that the load
// split stays within a few percent of even for small fleets, cheap enough
// that ring construction is microseconds.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over graph digests. Peers are
// identified by their advertised host:port strings; the ring is a pure
// function of the peer SET — the caller's list order never influences
// ownership, so replicas configured with permuted -peers flags agree on
// every digest's owner.
type Ring struct {
	peers  []string // sorted, deduplicated
	points []point  // vnode hash points, sorted by hash
}

// point maps one virtual node's position to its peer's index in r.peers.
type point struct {
	hash uint64
	peer int
}

// NewRing builds a ring with vnodes virtual nodes per peer (DefaultVNodes
// when vnodes <= 0). Duplicate peers are collapsed. An empty peer list
// yields a ring whose Owner returns -1.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	sort.Strings(uniq)
	r := &Ring{peers: uniq, points: make([]point, 0, len(uniq)*vnodes)}
	for i, p := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", p, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by peer so permuted input
		// still builds the identical ring.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// hash64 is the ring's hash: the first 8 bytes of sha256, which is already
// the digest family Graph.Digest() uses.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the ring's sorted peer list. The returned slice is shared;
// callers must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Index returns the ring index of peer, or -1 when absent.
func (r *Ring) Index(peer string) int {
	i := sort.SearchStrings(r.peers, peer)
	if i < len(r.peers) && r.peers[i] == peer {
		return i
	}
	return -1
}

// Owner returns the index (into Peers) of the replica owning digest, or -1
// on an empty ring.
func (r *Ring) Owner(digest string) int {
	succ := r.Successors(digest, 1)
	if len(succ) == 0 {
		return -1
	}
	return succ[0]
}

// Successors returns up to n distinct peer indexes in ring order starting
// at digest's owner: the owner first, then the fallback replicas a router
// hedges to when the owner is down or draining.
func (r *Ring) Successors(digest string, n int) []int {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.peers) {
		n = len(r.peers)
	}
	h := hash64(digest)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}
