package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestRingStableAcrossReordering pins the property the fleet depends on:
// every permutation of the same -peers list yields identical ownership for
// every digest, so replicas never disagree about who owns a graph.
func TestRingStableAcrossReordering(t *testing.T) {
	peers := []string{"a:1", "b:2", "c:3", "d:4", "e:5"}
	base := NewRing(peers, 32)
	rng := rand.New(rand.NewSource(7))
	digests := make([]string, 200)
	for i := range digests {
		digests[i] = fmt.Sprintf("sha256:%032x", rng.Uint64())
	}
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]string(nil), peers...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		r := NewRing(shuffled, 32)
		for _, d := range digests {
			if got, want := r.Peers()[r.Owner(d)], base.Peers()[base.Owner(d)]; got != want {
				t.Fatalf("owner of %s changed under permutation %v: %s != %s", d, shuffled, got, want)
			}
		}
	}
}

// TestRingDuplicatePeersCollapse checks a doubled peer entry does not get a
// doubled key-space share.
func TestRingDuplicatePeersCollapse(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "a:1"}, 16)
	if got := len(r.Peers()); got != 2 {
		t.Fatalf("peers = %d, want 2", got)
	}
}

// TestRingSuccessorsDistinct checks Successors walks the ring without
// repeating peers and starts at the owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3"}, 16)
	for i := 0; i < 50; i++ {
		d := fmt.Sprintf("digest-%d", i)
		succ := r.Successors(d, 3)
		if len(succ) != 3 {
			t.Fatalf("successors(%q) = %v, want 3 distinct", d, succ)
		}
		if succ[0] != r.Owner(d) {
			t.Fatalf("successors(%q)[0] = %d, owner = %d", d, succ[0], r.Owner(d))
		}
		seen := map[int]bool{}
		for _, p := range succ {
			if seen[p] {
				t.Fatalf("successors(%q) repeats peer %d: %v", d, p, succ)
			}
			seen[p] = true
		}
	}
	if got := r.Successors("x", 10); len(got) != 3 {
		t.Fatalf("successors capped at fleet size: got %v", got)
	}
}

// TestRingBalance sanity-checks the vnode split: with 64 vnodes each of 4
// peers should own a non-trivial share of random digests.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a:1", "b:2", "c:3", "d:4"}, DefaultVNodes)
	counts := make([]int, 4)
	rng := rand.New(rand.NewSource(11))
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sha256:%032x%032x", rng.Uint64(), rng.Uint64()))]++
	}
	for i, c := range counts {
		if c < n/10 {
			t.Errorf("peer %d owns %d/%d digests — ring badly unbalanced: %v", i, c, n, counts)
		}
	}
}

// TestRingEmpty covers the degenerate rings.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Owner("x"); got != -1 {
		t.Fatalf("empty ring owner = %d, want -1", got)
	}
	if got := r.Successors("x", 2); got != nil {
		t.Fatalf("empty ring successors = %v, want nil", got)
	}
	if got := r.Index("a:1"); got != -1 {
		t.Fatalf("Index on empty ring = %d, want -1", got)
	}
}
