package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/ftspanner/ftspanner/internal/store"
)

// Anti-entropy: each replica periodically pulls record files it is missing
// from its peers. The records are CRC-self-verifying (the store codec
// rejects any torn or corrupt transfer), so pulls are blind — no digest
// negotiation, no versioning, no coordination. The sweep is what turns
// "the fleet eventually holds every result somewhere reachable" into "a
// restarted or re-sharded replica warms itself": after a ring change the
// new owner of a segment pulls the old owner's records on the next sweep.

// SweepResult summarizes one anti-entropy pass.
type SweepResult struct {
	// Peers is how many peers answered their record listing.
	Peers int
	// Pulled is how many missing records were fetched and imported.
	Pulled int
	// Rejected is how many fetched records the codec refused (corrupt or
	// torn transfer) — they are re-pulled on the next sweep.
	Rejected int
}

// SweepOnce runs one full anti-entropy pass: list every peer's records,
// pull the ones the local store is missing, import through the verifying
// codec. A node without a local durable store sweeps nothing.
func (n *Node) SweepOnce(ctx context.Context) (SweepResult, error) {
	var res SweepResult
	if n.cfg.Local == nil {
		return res, errors.New("cluster: pure router has no store to sync")
	}
	st := n.cfg.Local.Store()
	if st == nil {
		return res, errors.New("cluster: local service has no durable store")
	}
	var firstErr error
	for idx, peer := range n.ring.Peers() {
		if idx == n.selfIdx {
			continue
		}
		if err := n.sweepPeer(ctx, peer, st, &res); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", peer, err)
			}
			continue
		}
		res.Peers++
	}
	n.syncSweeps.Add(1)
	n.syncPulled.Add(int64(res.Pulled))
	n.syncRejected.Add(int64(res.Rejected))
	return res, firstErr
}

// sweepPeer pulls one peer's missing records into st.
func (n *Node) sweepPeer(ctx context.Context, peer string, st *store.Store, res *SweepResult) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/v1/cluster/records", nil)
	if err != nil {
		return err
	}
	resp, err := n.api.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("record listing: status %d", resp.StatusCode)
	}
	var listing struct {
		Records []store.RecordInfo `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return err
	}
	for _, rec := range listing.Records {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if st.HasFile(rec.Name) {
			continue
		}
		data, err := n.pullRecord(ctx, peer, rec.Name)
		if err != nil {
			return err
		}
		if _, imported, err := st.ImportEncoded(data); err != nil {
			// Corrupt transfer: count it and move on — the record is
			// still on the peer, the next sweep retries.
			res.Rejected++
		} else if imported {
			res.Pulled++
		}
	}
	return nil
}

// pullRecord fetches one record file's raw bytes from peer.
func (n *Node) pullRecord(ctx context.Context, peer, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/v1/cluster/records/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.api.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("pull %s: status %d", name, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// syncLoop runs SweepOnce at SyncInterval until Close.
func (n *Node) syncLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.SyncInterval)
			_, _ = n.SweepOnce(ctx)
			cancel()
		}
	}
}
