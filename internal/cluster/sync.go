package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"github.com/ftspanner/ftspanner/internal/store"
)

// Anti-entropy: each replica periodically pulls record files it is missing
// from its peers. The records are CRC-self-verifying (the store codec
// rejects any torn or corrupt transfer), so pulls are blind — no digest
// negotiation, no versioning, no coordination. The sweep is what turns
// "the fleet eventually holds every result somewhere reachable" into "a
// restarted or re-sharded replica warms itself": after a ring change the
// new owner of a segment pulls the old owner's records on the next sweep.

const (
	// maxListingBytes bounds a peer's record-listing response. A listing
	// entry is ~100 bytes, so 8 MiB covers tens of thousands of records;
	// anything larger is a misbehaving or hostile peer, not a big store.
	maxListingBytes = 8 << 20
	// maxRecordBytes bounds a single pulled record, well above the service
	// layer's own ~1 MiB generated-graph cap times the record overhead. A
	// peer advertising or sending more is refusing to play by the store's
	// rules and must not be able to balloon this replica's memory.
	maxRecordBytes = 64 << 20
)

// SweepResult summarizes one anti-entropy pass.
type SweepResult struct {
	// Peers is how many peers answered their record listing.
	Peers int
	// Pulled is how many missing records were fetched and imported.
	Pulled int
	// Rejected is how many fetched records the codec refused (corrupt or
	// torn transfer) — they are re-pulled on the next sweep.
	Rejected int
	// Errors is how many individual record pulls failed (bad advertised
	// size, transport error, non-200, oversized body). A failed pull skips
	// that record only; the sweep keeps going, so one poisoned or flaky
	// record cannot starve the rest of a peer's store.
	Errors int
}

// SweepOnce runs one full anti-entropy pass: list every peer's records,
// pull the ones the local store is missing, import through the verifying
// codec. A node without a local durable store sweeps nothing.
func (n *Node) SweepOnce(ctx context.Context) (SweepResult, error) {
	var res SweepResult
	if n.cfg.Local == nil {
		return res, errors.New("cluster: pure router has no store to sync")
	}
	st := n.cfg.Local.Store()
	if st == nil {
		return res, errors.New("cluster: local service has no durable store")
	}
	var firstErr error
	for idx, peer := range n.ring.Peers() {
		if idx == n.selfIdx {
			continue
		}
		if err := n.sweepPeer(ctx, peer, st, &res); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", peer, err)
			}
			continue
		}
		res.Peers++
	}
	n.syncSweeps.Add(1)
	n.syncPulled.Add(int64(res.Pulled))
	n.syncRejected.Add(int64(res.Rejected))
	n.syncErrors.Add(int64(res.Errors))
	return res, firstErr
}

// sweepPeer pulls one peer's missing records into st. Individual pull
// failures are counted in res.Errors and skipped — partial progress through
// a peer's listing beats aborting it — but a dead listing or a cancelled
// context still fails the peer as a whole.
func (n *Node) sweepPeer(ctx context.Context, peer string, st *store.Store, res *SweepResult) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+peer+"/v1/cluster/records", nil)
	if err != nil {
		return err
	}
	resp, err := n.api.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("record listing: status %d", resp.StatusCode)
	}
	var listing struct {
		Records []store.RecordInfo `json:"records"`
	}
	// The decoder reads until the JSON value ends, so an unbounded body is
	// an unbounded allocation; a peer cannot be trusted to stay small.
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxListingBytes)).Decode(&listing); err != nil {
		return fmt.Errorf("record listing: %w", err)
	}
	for _, rec := range listing.Records {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if st.HasFile(rec.Name) {
			continue
		}
		data, err := n.pullRecord(ctx, peer, rec)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			res.Errors++
			continue
		}
		if _, imported, err := st.ImportEncoded(data); err != nil {
			// Corrupt transfer: count it and move on — the record is
			// still on the peer, the next sweep retries.
			res.Rejected++
		} else if imported {
			res.Pulled++
		}
	}
	return nil
}

// pullRecord fetches one record file's raw bytes from peer, reading no more
// than the listing advertised. The name is peer-supplied and goes into a
// URL path, so it is escaped — a hostile listing must not be able to steer
// the request at a different endpoint.
func (n *Node) pullRecord(ctx context.Context, peer string, rec store.RecordInfo) ([]byte, error) {
	if rec.Size <= 0 || rec.Size > maxRecordBytes {
		return nil, fmt.Errorf("pull %s: advertised size %d out of range", rec.Name, rec.Size)
	}
	u := "http://" + peer + "/v1/cluster/records/" + url.PathEscape(rec.Name)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.api.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("pull %s: status %d", rec.Name, resp.StatusCode)
	}
	// Read one byte past the advertised size: exactly Size bytes is a
	// faithful transfer, more means the advertisement lied and the body is
	// discarded before it can grow without bound.
	data, err := io.ReadAll(io.LimitReader(resp.Body, rec.Size+1))
	if err != nil {
		return nil, fmt.Errorf("pull %s: %w", rec.Name, err)
	}
	if int64(len(data)) > rec.Size {
		return nil, fmt.Errorf("pull %s: body exceeds advertised size %d", rec.Name, rec.Size)
	}
	return data, nil
}

// syncLoop runs SweepOnce at SyncInterval until Close.
func (n *Node) syncLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.SyncInterval)
			_, _ = n.SweepOnce(ctx)
			cancel()
		}
	}
}
