package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftspanner/ftspanner/internal/service"
)

// Defaults for the node's tunables.
const (
	defaultPollInterval = time.Second
	defaultMaxBody      = 8 << 20
	// submitTries bounds the per-peer forwarding attempts on network
	// errors; the hedge to the ring successor is on top of these.
	submitTries = 2
	// retryPause separates the bounded retries — long enough to ride out a
	// TCP accept-queue blip, short enough that the hedge is not delayed
	// noticeably.
	retryPause = 25 * time.Millisecond
)

// forwardedHeader marks a request one fleet node proxied to another. A
// receiving node serves a forwarded request locally and never re-proxies,
// so no routing loop can form: the sender picked this replica on purpose —
// as the digest's owner, or as the hedge target when the owner is down.
const forwardedHeader = "X-Ftspanner-Forwarded"

// Config assembles a Node.
type Config struct {
	// Self is this node's advertised host:port. When it appears in Peers
	// the node is a combined router+worker (it owns a ring segment); when
	// absent (or empty) the node is a pure router. Local must be non-nil
	// for worker duty.
	Self string
	// Peers is the full fleet list, host:port each. Order does not matter:
	// the ring is a function of the peer set.
	Peers []string
	// Local is the in-process service this node fronts; nil for a pure
	// router with no local build capacity.
	Local *service.Server
	// VNodes is the virtual-node count per peer (DefaultVNodes when <= 0).
	VNodes int
	// PollInterval is the peer health/queue summary poll cadence (default
	// 1s). The poll is what makes backpressure and drain routing
	// fleet-aware without per-request fan-out.
	PollInterval time.Duration
	// SyncInterval enables the background anti-entropy sweep at this
	// cadence; zero leaves sweeps manual (SweepOnce).
	SyncInterval time.Duration
	// MaxBodyBytes bounds submit/verify request bodies (default 8 MiB).
	MaxBodyBytes int64
	// Client overrides the HTTP client for proxied API calls and polls;
	// nil selects a client with a 15s overall timeout.
	Client *http.Client
	// StreamClient overrides the HTTP client for proxied event streams;
	// nil selects a client with header-only timeouts (streams are
	// long-lived by design, an overall timeout would sever them).
	StreamClient *http.Client
}

// Node is the fleet-facing HTTP handler: it owns a ring, routes job
// traffic by graph digest, and (with a Local service) serves its own ring
// segment. Create with New, release with Close.
type Node struct {
	cfg     Config
	ring    *Ring
	selfIdx int // index into ring.Peers(), -1 for a pure router
	mux     *http.ServeMux
	api     *http.Client
	stream  *http.Client

	sumMu sync.Mutex
	sums  map[int]peerStatus

	routedLocal  atomic.Int64
	routedRemote atomic.Int64
	hedged       atomic.Int64
	retries      atomic.Int64
	peerErrors   atomic.Int64
	backpressure atomic.Int64
	syncSweeps   atomic.Int64
	syncPulled   atomic.Int64
	syncRejected atomic.Int64
	syncErrors   atomic.Int64

	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// peerStatus is the latest poll result for one peer.
type peerStatus struct {
	sum service.ClusterSummary
	err error
	at  time.Time
}

// New builds a Node over cfg and starts its background poll (and sync, if
// configured) loops.
func New(cfg Config) (*Node, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = defaultPollInterval
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	n := &Node{
		cfg:    cfg,
		ring:   NewRing(cfg.Peers, cfg.VNodes),
		api:    cfg.Client,
		stream: cfg.StreamClient,
		sums:   make(map[int]peerStatus),
		done:   make(chan struct{}),
	}
	n.selfIdx = n.ring.Index(cfg.Self)
	if n.selfIdx >= 0 && cfg.Local == nil {
		return nil, fmt.Errorf("cluster: self %q is in the peer list but no local service is attached", cfg.Self)
	}
	if n.api == nil {
		n.api = &http.Client{Timeout: 15 * time.Second}
	}
	if n.stream == nil {
		n.stream = &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 15 * time.Second}}
	}
	n.routes()
	n.wg.Add(1)
	go n.pollLoop()
	if cfg.SyncInterval > 0 && cfg.Local != nil && cfg.Local.Store() != nil {
		n.wg.Add(1)
		go n.syncLoop()
	}
	return n, nil
}

// Close stops the background loops. The attached Local service is not
// closed — its lifecycle belongs to the caller.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.wg.Wait()
	})
}

// Ring exposes the node's ring for tests and diagnostics.
func (n *Node) Ring() *Ring { return n.ring }

func (n *Node) routes() {
	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /v1/jobs", n.handleSubmit)
	n.mux.HandleFunc("GET /v1/jobs/{id}", n.byID(false))
	n.mux.HandleFunc("GET /v1/jobs/{id}/spanner", n.byID(false))
	n.mux.HandleFunc("GET /v1/jobs/{id}/trace", n.byID(false))
	n.mux.HandleFunc("DELETE /v1/jobs/{id}", n.byID(false))
	n.mux.HandleFunc("GET /v1/jobs/{id}/events", n.byID(true))
	n.mux.HandleFunc("POST /v1/verify", n.handleVerify)
	n.mux.HandleFunc("GET /metrics", n.handleMetrics)
	n.mux.HandleFunc("GET /healthz", n.handleHealthz)
	n.mux.HandleFunc("GET /v1/cluster/summary", n.local)
	n.mux.HandleFunc("GET /v1/cluster/records", n.local)
	n.mux.HandleFunc("GET /v1/cluster/records/{name}", n.local)
	// Live graph sessions are replica-local state (a session's mutable
	// graph lives in one process), so they bypass digest-affinity routing
	// and bind to this node's own service.
	n.mux.HandleFunc("POST /v1/sessions", n.local)
	n.mux.HandleFunc("GET /v1/sessions/{id}", n.local)
	n.mux.HandleFunc("POST /v1/sessions/{id}/deltas", n.local)
	n.mux.HandleFunc("GET /v1/sessions/{id}/spanner", n.local)
	n.mux.HandleFunc("GET /v1/sessions/{id}/events", n.local)
	n.mux.HandleFunc("DELETE /v1/sessions/{id}", n.local)
}

// ServeHTTP implements http.Handler.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// local passes a request straight to the attached service (the
// peer-facing anti-entropy and summary endpoints must be reachable on the
// fleet listener).
func (n *Node) local(w http.ResponseWriter, r *http.Request) {
	if n.cfg.Local == nil {
		writeErr(w, http.StatusNotFound, "pure router: no local service")
		return
	}
	n.cfg.Local.ServeHTTP(w, r)
}

// ---- job ID prefixing ------------------------------------------------

// idPattern matches the fleet-scoped job ID form p<ringIndex>~<localID>.
// The prefix makes any job readable through any node: the ring index says
// which replica holds it, no lookup table needed.
var idPattern = regexp.MustCompile(`^p(\d+)~(.+)$`)

// parseID splits a fleet job ID into its ring index and the replica-local
// ID. Unprefixed IDs map to (-1, id).
func parseID(id string) (int, string) {
	m := idPattern.FindStringSubmatch(id)
	if m == nil {
		return -1, id
	}
	idx, err := strconv.Atoi(m[1])
	if err != nil {
		return -1, id
	}
	return idx, m[2]
}

// prefixID scopes a replica-local job ID to ring index idx.
func prefixID(idx int, id string) string { return fmt.Sprintf("p%d~%s", idx, id) }

// rewriteIDs maps the named string fields of a JSON object body through
// fn. Non-object bodies and absent fields pass through untouched.
func rewriteIDs(body []byte, fn func(string) string, fields ...string) []byte {
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		return body
	}
	changed := false
	for _, f := range fields {
		if v, ok := m[f].(string); ok {
			m[f] = fn(v)
			changed = true
		}
	}
	if !changed {
		return body
	}
	out, err := json.Marshal(m)
	if err != nil {
		return body
	}
	return out
}

// ---- local dispatch --------------------------------------------------

// capture is a buffering ResponseWriter for dispatching into the local
// service and post-processing the response (job-ID prefixing) before it
// leaves the node.
type capture struct {
	code   int
	header http.Header
	buf    bytes.Buffer
}

func newCapture() *capture                     { return &capture{code: http.StatusOK, header: make(http.Header)} }
func (c *capture) Header() http.Header         { return c.header }
func (c *capture) WriteHeader(code int)        { c.code = code }
func (c *capture) Write(p []byte) (int, error) { return c.buf.Write(p) }

// dispatchLocal serves req on the attached service and relays the
// response with this node's ring prefix applied to the named ID fields.
func (n *Node) dispatchLocal(w http.ResponseWriter, req *http.Request, idFields ...string) {
	c := newCapture()
	n.cfg.Local.ServeHTTP(c, req)
	body := c.buf.Bytes()
	if c.code < 300 && n.selfIdx >= 0 {
		body = rewriteIDs(body, func(id string) string { return prefixID(n.selfIdx, id) }, idFields...)
	}
	relay(w, c.code, c.header, body)
}

// relay writes a buffered upstream response downstream, preserving the
// headers routing clients act on.
func relay(w http.ResponseWriter, code int, header http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "Retry-After"} {
		if v := header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(code)
	_, _ = w.Write(body)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ---- submit routing --------------------------------------------------

func (n *Node) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "read body: %v", err)
		return
	}
	// A forwarded submit is served locally, full stop: the sending node
	// already chose this replica (owner or hedge target), and re-proxying
	// could loop.
	if r.Header.Get(forwardedHeader) != "" {
		if n.cfg.Local == nil {
			writeErr(w, http.StatusBadGateway, "pure router cannot serve forwarded submit")
			return
		}
		n.routedLocal.Add(1)
		n.dispatchLocal(w, cloneWithBody(r, "/v1/jobs", body), "id")
		return
	}
	digest, err := service.SpecDigest(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	cands := n.ring.Successors(digest, 2)
	owner := cands[0]

	// Fleet-aware backpressure: when the owner's polled summary says its
	// queue is full (not draining — that hedges instead), answer with the
	// owner's own Retry-After rather than forwarding a request it would
	// reject. The whole fleet stops accepting the digest's work, instead
	// of blindly fanning a hot shard's overflow onto replicas that would
	// just proxy it back.
	if sum, ok := n.peerSummary(owner); ok && !sum.Accepting && !sum.Draining {
		n.backpressure.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(max(1, sum.RetryAfterSec)))
		writeErr(w, http.StatusServiceUnavailable,
			"owner %s queue full (%d/%d queued)", n.ring.Peers()[owner], sum.QueueLen, sum.QueueCap)
		return
	}

	tries := cands
	if sum, ok := n.peerSummary(owner); ok && sum.Draining && len(cands) > 1 {
		// Drain-aware handshake: a draining owner advertises it via the
		// summary poll, so the hedge happens before any doomed forward.
		n.hedged.Add(1)
		tries = cands[1:]
	}
	for i, target := range tries {
		if i > 0 {
			n.hedged.Add(1)
		}
		if done := n.submitTo(w, target, body); done {
			return
		}
	}
	writeErr(w, http.StatusBadGateway, "no replica available for digest %s", digest)
}

// submitTo forwards one submit to the ring peer at index target. It
// reports true when a response was written downstream; false means the
// peer is unreachable or draining and the caller should hedge.
func (n *Node) submitTo(w http.ResponseWriter, target int, body []byte) bool {
	if target == n.selfIdx && n.cfg.Local != nil {
		c := newCapture()
		n.cfg.Local.ServeHTTP(c, newLocalRequest(http.MethodPost, "/v1/jobs", body))
		if c.code == http.StatusServiceUnavailable && isDraining(c.buf.Bytes()) {
			return false // local drain: let the hedge try a peer
		}
		n.routedLocal.Add(1)
		resp := c.buf.Bytes()
		if c.code < 300 {
			resp = rewriteIDs(resp, func(id string) string { return prefixID(n.selfIdx, id) }, "id")
		}
		relay(w, c.code, c.header, resp)
		return true
	}
	peer := n.ring.Peers()[target]
	for attempt := 0; attempt < submitTries; attempt++ {
		if attempt > 0 {
			n.retries.Add(1)
			time.Sleep(retryPause)
		}
		req, err := http.NewRequest(http.MethodPost, "http://"+peer+"/v1/jobs", bytes.NewReader(body))
		if err != nil {
			return false
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(forwardedHeader, n.cfg.Self)
		resp, err := n.api.Do(req)
		if err != nil {
			continue
		}
		respBody, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable && isDraining(respBody) {
			return false // peer is draining: hedge
		}
		n.routedRemote.Add(1)
		relay(w, resp.StatusCode, resp.Header, respBody)
		return true
	}
	n.peerErrors.Add(1)
	return false
}

// isDraining distinguishes a drain 503 (hedge to the successor) from a
// queue-full 503 (relay: that is backpressure, not failure).
func isDraining(body []byte) bool {
	var e struct {
		Error string `json:"error"`
	}
	return json.Unmarshal(body, &e) == nil && strings.Contains(e.Error, "draining")
}

// ---- reads, cancel, events -------------------------------------------

// byID routes the job-scoped endpoints by the ID's ring prefix. stream
// selects pass-through proxying (NDJSON event streams must flush as they
// go and never buffer to completion).
func (n *Node) byID(stream bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		idx, rawID := parseID(id)
		localPath := strings.Replace(r.URL.Path, "/v1/jobs/"+id, "/v1/jobs/"+rawID, 1)
		forwarded := r.Header.Get(forwardedHeader) != ""
		if idx < 0 || idx == n.selfIdx || forwarded {
			// Unprefixed, own-prefix, or forwarded: serve locally.
			if n.cfg.Local == nil {
				writeErr(w, http.StatusNotFound, "no job %q", id)
				return
			}
			r2 := r.Clone(r.Context())
			r2.URL.Path = localPath
			if stream {
				n.cfg.Local.ServeHTTP(w, r2)
				return
			}
			n.routedLocal.Add(1)
			n.dispatchLocal(w, r2, "id")
			return
		}
		if idx >= len(n.ring.Peers()) {
			writeErr(w, http.StatusNotFound, "no job %q: ring index %d out of range", id, idx)
			return
		}
		n.proxyByID(w, r, idx, localPath, stream)
	}
}

// proxyByID forwards a job-scoped request to the ring peer at idx.
func (n *Node) proxyByID(w http.ResponseWriter, r *http.Request, idx int, path string, stream bool) {
	peer := n.ring.Peers()[idx]
	req, err := http.NewRequestWithContext(r.Context(), r.Method, "http://"+peer+path, nil)
	if err != nil {
		writeErr(w, http.StatusBadGateway, "proxy: %v", err)
		return
	}
	req.Header.Set(forwardedHeader, n.cfg.Self)
	client := n.api
	if stream {
		client = n.stream
	}
	resp, err := client.Do(req)
	if err != nil {
		n.peerErrors.Add(1)
		writeErr(w, http.StatusBadGateway, "peer %s: %v", peer, err)
		return
	}
	defer resp.Body.Close()
	n.routedRemote.Add(1)
	if !stream {
		body, _ := io.ReadAll(resp.Body)
		relay(w, resp.StatusCode, resp.Header, body)
		return
	}
	// Stream relay: copy chunks as they arrive, flushing each one so the
	// client sees events live. The peer prefixed nothing (events carry no
	// job IDs), so bytes pass through untouched.
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		m, err := resp.Body.Read(buf)
		if m > 0 {
			if _, werr := w.Write(buf[:m]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// handleVerify routes POST /v1/verify by the job_id's ring prefix.
func (n *Node) handleVerify(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.cfg.MaxBodyBytes))
	if err != nil {
		writeErr(w, http.StatusRequestEntityTooLarge, "read body: %v", err)
		return
	}
	var req struct {
		JobID string `json:"job_id"`
	}
	_ = json.Unmarshal(body, &req)
	idx, rawID := parseID(req.JobID)
	forwarded := r.Header.Get(forwardedHeader) != ""
	if idx < 0 || idx == n.selfIdx || forwarded {
		if n.cfg.Local == nil {
			writeErr(w, http.StatusNotFound, "no job %q", req.JobID)
			return
		}
		local := rewriteIDs(body, func(string) string { return rawID }, "job_id")
		n.routedLocal.Add(1)
		n.dispatchLocal(w, newLocalRequest(http.MethodPost, "/v1/verify", local), "job_id")
		return
	}
	if idx >= len(n.ring.Peers()) {
		writeErr(w, http.StatusNotFound, "no job %q: ring index %d out of range", req.JobID, idx)
		return
	}
	peer := n.ring.Peers()[idx]
	fwd := rewriteIDs(body, func(string) string { return rawID }, "job_id")
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "http://"+peer+"/v1/verify", bytes.NewReader(fwd))
	if err != nil {
		writeErr(w, http.StatusBadGateway, "proxy: %v", err)
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, n.cfg.Self)
	resp, err := n.api.Do(preq)
	if err != nil {
		n.peerErrors.Add(1)
		writeErr(w, http.StatusBadGateway, "peer %s: %v", peer, err)
		return
	}
	defer resp.Body.Close()
	respBody, _ := io.ReadAll(resp.Body)
	n.routedRemote.Add(1)
	// The serving node already scoped the response job_id with its own
	// ring prefix (forwarded requests are served locally there).
	relay(w, resp.StatusCode, resp.Header, respBody)
}

// ---- health and metrics ----------------------------------------------

func (n *Node) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if n.cfg.Local != nil {
		n.cfg.Local.ServeHTTP(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "mode": "router", "peers": len(n.ring.Peers())})
}

// ClusterMetrics is the fleet block of GET /metrics. Field names carry the
// cluster_ prefix so they land alongside the service counters in one flat
// document.
type ClusterMetrics struct {
	Self                string `json:"cluster_self,omitempty"`
	Peers               int    `json:"cluster_peers"`
	RoutedLocalTotal    int64  `json:"cluster_routed_local_total"`
	RoutedRemoteTotal   int64  `json:"cluster_routed_remote_total"`
	HedgedTotal         int64  `json:"cluster_hedged_total"`
	RetriesTotal        int64  `json:"cluster_retries_total"`
	PeerErrorsTotal     int64  `json:"cluster_peer_errors_total"`
	BackpressureRejects int64  `json:"cluster_backpressure_rejects_total"`
	SyncSweepsTotal     int64  `json:"cluster_sync_sweeps_total"`
	SyncPulledTotal     int64  `json:"cluster_sync_pulled_total"`
	SyncRejectedTotal   int64  `json:"cluster_sync_rejected_total"`
	SyncErrorsTotal     int64  `json:"cluster_sync_errors_total"`
	PeersAccepting      int    `json:"cluster_peers_accepting"`
	PeersDraining       int    `json:"cluster_peers_draining"`
	PeersUnreachable    int    `json:"cluster_peers_unreachable"`
}

// Metrics snapshots the node's fleet counters and the latest poll's view
// of peer availability.
func (n *Node) Metrics() ClusterMetrics {
	m := ClusterMetrics{
		Self:                n.cfg.Self,
		Peers:               len(n.ring.Peers()),
		RoutedLocalTotal:    n.routedLocal.Load(),
		RoutedRemoteTotal:   n.routedRemote.Load(),
		HedgedTotal:         n.hedged.Load(),
		RetriesTotal:        n.retries.Load(),
		PeerErrorsTotal:     n.peerErrors.Load(),
		BackpressureRejects: n.backpressure.Load(),
		SyncSweepsTotal:     n.syncSweeps.Load(),
		SyncPulledTotal:     n.syncPulled.Load(),
		SyncRejectedTotal:   n.syncRejected.Load(),
		SyncErrorsTotal:     n.syncErrors.Load(),
	}
	n.sumMu.Lock()
	for _, st := range n.sums {
		switch {
		case st.err != nil:
			m.PeersUnreachable++
		case st.sum.Draining:
			m.PeersDraining++
		case st.sum.Accepting:
			m.PeersAccepting++
		}
	}
	n.sumMu.Unlock()
	return m
}

// handleMetrics merges the local service counters (when present) with the
// cluster_* block into one flat JSON document.
func (n *Node) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if n.cfg.Local != nil {
		_ = enc.Encode(struct {
			service.MetricsSnapshot
			ClusterMetrics
		}{n.cfg.Local.Metrics(), n.Metrics()})
		return
	}
	_ = enc.Encode(n.Metrics())
}

// ---- peer summary polling --------------------------------------------

// pollLoop keeps n.sums fresh at PollInterval.
func (n *Node) pollLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.PollInterval)
	defer t.Stop()
	n.PollNow()
	for {
		select {
		case <-n.done:
			return
		case <-t.C:
			n.PollNow()
		}
	}
}

// PollNow synchronously refreshes every peer's health/queue summary.
// Exposed so tests (and operators via SIGUSR-style hooks) can force a
// deterministic refresh instead of waiting out the interval.
func (n *Node) PollNow() {
	for idx := range n.ring.Peers() {
		st := peerStatus{at: time.Now()}
		st.sum, st.err = n.fetchSummary(idx)
		n.sumMu.Lock()
		n.sums[idx] = st
		n.sumMu.Unlock()
	}
}

// fetchSummary reads one peer's /v1/cluster/summary — in process for
// self, over HTTP otherwise.
func (n *Node) fetchSummary(idx int) (service.ClusterSummary, error) {
	var sum service.ClusterSummary
	if idx == n.selfIdx && n.cfg.Local != nil {
		c := newCapture()
		n.cfg.Local.ServeHTTP(c, newLocalRequest(http.MethodGet, "/v1/cluster/summary", nil))
		if c.code != http.StatusOK {
			return sum, fmt.Errorf("local summary: status %d", c.code)
		}
		return sum, json.Unmarshal(c.buf.Bytes(), &sum)
	}
	resp, err := n.api.Get("http://" + n.ring.Peers()[idx] + "/v1/cluster/summary")
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sum, fmt.Errorf("summary: status %d", resp.StatusCode)
	}
	return sum, json.NewDecoder(resp.Body).Decode(&sum)
}

// peerSummary returns the latest successful summary for ring index idx.
func (n *Node) peerSummary(idx int) (service.ClusterSummary, bool) {
	n.sumMu.Lock()
	defer n.sumMu.Unlock()
	st, ok := n.sums[idx]
	if !ok || st.err != nil {
		return service.ClusterSummary{}, false
	}
	return st.sum, true
}

// ---- request plumbing ------------------------------------------------

// newLocalRequest builds a request for in-process dispatch to the
// attached service.
func newLocalRequest(method, path string, body []byte) *http.Request {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, _ := http.NewRequest(method, path, rd)
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return req
}

// cloneWithBody rebuilds an incoming request for local dispatch with an
// already-read body.
func cloneWithBody(r *http.Request, path string, body []byte) *http.Request {
	req := newLocalRequest(r.Method, path, body)
	return req
}
