package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/service"
	"github.com/ftspanner/ftspanner/internal/store"
)

// ---- sweep hazard regressions ------------------------------------------
//
// A sweeping replica trusts nothing about a peer: listings and record
// bodies are bounded, peer-supplied names are escaped before they reach a
// URL, and one broken record must not abort the rest of the peer's
// listing. Each test here drives SweepOnce against a scripted hostile peer
// and fails on the pre-hardening sweep code.

// fakePeer is a scripted peer: a listing plus per-record responses, with
// every requested path recorded so tests can assert what the sweep
// actually asked for.
type fakePeer struct {
	ts      *httptest.Server
	mu      sync.Mutex
	paths   []string
	listing []store.RecordInfo
	// serve maps an advertised record name to its response; absent names
	// get 404.
	serve map[string]func(w http.ResponseWriter)
}

func newFakePeer(t *testing.T) *fakePeer {
	t.Helper()
	p := &fakePeer{serve: map[string]func(w http.ResponseWriter){}}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		p.paths = append(p.paths, r.URL.Path)
		p.mu.Unlock()
		switch {
		case r.URL.Path == "/v1/cluster/records":
			p.mu.Lock()
			listing := p.listing
			p.mu.Unlock()
			_ = json.NewEncoder(w).Encode(map[string]any{"records": listing})
		case strings.HasPrefix(r.URL.Path, "/v1/cluster/records/"):
			name := strings.TrimPrefix(r.URL.Path, "/v1/cluster/records/")
			name, _ = url.PathUnescape(name)
			p.mu.Lock()
			h := p.serve[name]
			p.mu.Unlock()
			if h == nil {
				http.Error(w, "no such record", http.StatusNotFound)
				return
			}
			h(w)
		default:
			// Summary polls and anything else a test does not script.
			http.Error(w, "unscripted", http.StatusNotFound)
		}
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func (p *fakePeer) addr() string {
	u, _ := url.Parse(p.ts.URL)
	return u.Host
}

func (p *fakePeer) requestedPaths() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.paths...)
}

// syncNode builds a store-backed node whose only other peer is the fake.
func syncNode(t *testing.T, peer *fakePeer) *Node {
	t.Helper()
	svc, err := service.New(service.Config{Workers: 2, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	self := "127.0.0.1:1" // never contacted: the sweep skips self
	node, err := New(Config{
		Self:         self,
		Peers:        []string{self, peer.addr()},
		Local:        svc,
		PollInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return node
}

// encodedRecord builds valid record bytes with a distinct key.
func encodedRecord(key string) []byte {
	return store.Encode(&store.Record{
		Key:           key,
		NumVertices:   4,
		InputEdges:    3,
		SpannerDigest: "digest-" + key,
		Kept:          []int{0, 1, 2},
	})
}

// recordName mirrors the store's key-to-filename mapping so fake listings
// can advertise realistic names.
func recordName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".ftr"
}

func serveBytes(data []byte) func(w http.ResponseWriter) {
	return func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(data)
	}
}

// TestSweepSkipsFailedPullAndContinues locks partial progress: a peer
// whose listing contains a record that 500s on pull must still yield every
// other record, count the failure, and finish the peer cleanly. The old
// sweep aborted the whole peer on the first failed pull.
func TestSweepSkipsFailedPullAndContinues(t *testing.T) {
	peer := newFakePeer(t)
	recA, recC := encodedRecord("rec-a"), encodedRecord("rec-c")
	nameA, nameB, nameC := recordName("rec-a"), recordName("rec-b"), recordName("rec-c")
	peer.listing = []store.RecordInfo{
		{Name: nameA, Size: int64(len(recA))},
		{Name: nameB, Size: 512}, // pull answers 500
		{Name: nameC, Size: int64(len(recC))},
	}
	peer.serve[nameA] = serveBytes(recA)
	peer.serve[nameB] = func(w http.ResponseWriter) {
		http.Error(w, "disk on fire", http.StatusInternalServerError)
	}
	peer.serve[nameC] = serveBytes(recC)

	node := syncNode(t, peer)
	res, err := node.SweepOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep failed outright on one bad record: %v", err)
	}
	if res.Pulled != 2 || res.Errors != 1 || res.Peers != 1 {
		t.Fatalf("sweep = %+v, want Pulled=2 Errors=1 Peers=1", res)
	}
	st := node.cfg.Local.Store()
	if !st.HasFile(nameA) || !st.HasFile(nameC) {
		t.Fatal("surviving records were not imported")
	}
	if st.HasFile(nameB) {
		t.Fatal("failed record appeared in the store")
	}
	if m := node.Metrics(); m.SyncErrorsTotal != 1 || m.SyncPulledTotal != 2 {
		t.Fatalf("sync metrics = %+v, want 1 error / 2 pulled", m)
	}
}

// TestSweepBoundsRecordBodies locks the read bound: a record whose body
// exceeds its advertised size is refused without importing, as are
// listings advertising absurd or non-positive sizes. The old sweep
// ReadAll'd whatever the peer sent and imported it.
func TestSweepBoundsRecordBodies(t *testing.T) {
	peer := newFakePeer(t)
	rec := encodedRecord("oversized")
	name := recordName("oversized")
	peer.listing = []store.RecordInfo{
		{Name: name, Size: int64(len(rec)) / 2},                // body will exceed this
		{Name: recordName("zero"), Size: 0},                    // refused before fetch
		{Name: recordName("absurd"), Size: maxRecordBytes + 1}, // refused before fetch
	}
	peer.serve[name] = serveBytes(rec) // full valid record, twice the advertised bytes

	node := syncNode(t, peer)
	res, err := node.SweepOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Errors != 3 || res.Pulled != 0 || res.Rejected != 0 {
		t.Fatalf("sweep = %+v, want Errors=3 Pulled=0 Rejected=0", res)
	}
	if got := len(node.cfg.Local.Store().List()); got != 0 {
		t.Fatalf("store holds %d records after refused pulls, want 0", got)
	}
	// The size-refused records must not even have been requested.
	for _, path := range peer.requestedPaths() {
		if strings.Contains(path, recordName("zero")) || strings.Contains(path, recordName("absurd")) {
			t.Fatalf("sweep fetched a record with an out-of-range advertised size: %s", path)
		}
	}
}

// TestSweepBoundsListing locks the listing bound: a peer streaming an
// over-large record listing fails that peer without ballooning memory, and
// without failing the sweep's other peers.
func TestSweepBoundsListing(t *testing.T) {
	peer := newFakePeer(t)
	// The huge peer hand-writes a listing body past maxListingBytes.
	huge := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/cluster/records" {
			http.Error(w, "unscripted", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"records":[`))
		entry := []byte(`{"name":"` + strings.Repeat("a", 60) + `.ftr","size":100},`)
		for written := 0; written < maxListingBytes+1024; written += len(entry) {
			if _, err := w.Write(entry); err != nil {
				return
			}
		}
		_, _ = w.Write([]byte(`{"name":"end.ftr","size":100}]}`))
	}))
	t.Cleanup(huge.Close)
	hugeURL, err := url.Parse(huge.URL)
	if err != nil {
		t.Fatal(err)
	}
	rec := encodedRecord("good")
	peer.listing = []store.RecordInfo{{Name: recordName("good"), Size: int64(len(rec))}}
	peer.serve[recordName("good")] = serveBytes(rec)

	svc, err := service.New(service.Config{Workers: 2, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	self := "127.0.0.1:1"
	node, err := New(Config{
		Self:         self,
		Peers:        []string{self, peer.addr(), hugeURL.Host},
		Local:        svc,
		PollInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)

	res, err := node.SweepOnce(context.Background())
	if err == nil {
		t.Fatal("sweep reported no error for the unbounded listing peer")
	}
	if res.Peers != 1 || res.Pulled != 1 {
		t.Fatalf("sweep = %+v, want the healthy peer swept (Peers=1 Pulled=1)", res)
	}
}

// TestSweepEscapesHostileRecordNames locks URL hygiene: a peer advertising
// a traversal-shaped record name must not steer the pull request outside
// the records endpoint. The old sweep spliced the raw name into the URL,
// so "../.." walked the request to an arbitrary path on the peer.
func TestSweepEscapesHostileRecordNames(t *testing.T) {
	peer := newFakePeer(t)
	rec := encodedRecord("legit")
	hostile := "../../etc/passwd"
	peer.listing = []store.RecordInfo{
		{Name: hostile, Size: 64},
		{Name: recordName("legit"), Size: int64(len(rec))},
	}
	peer.serve[recordName("legit")] = serveBytes(rec)

	node := syncNode(t, peer)
	res, err := node.SweepOnce(context.Background())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if res.Pulled != 1 || res.Errors != 1 {
		t.Fatalf("sweep = %+v, want Pulled=1 Errors=1", res)
	}
	for _, path := range peer.requestedPaths() {
		if !strings.HasPrefix(path, "/v1/cluster/") {
			t.Fatalf("hostile record name steered a request to %q", path)
		}
	}
}

// TestClusterRecordNameValidation locks the server side: the record export
// endpoint refuses names that are not a single safe path component, before
// consulting the store.
func TestClusterRecordNameValidation(t *testing.T) {
	svc, err := service.New(service.Config{Workers: 2, StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	bad := []string{
		"..%2F..%2Fetc%2Fpasswd", // traversal via encoded separators
		"%2E%2E",                 // plain ".." once the mux decodes it
		".hidden",
		"with%20space.ftr",
		"semi;colon.ftr",
		url.PathEscape(strings.Repeat("x", 200)), // over-long
	}
	for _, name := range bad {
		req := httptest.NewRequest("GET", "/v1/cluster/records/"+name, nil)
		w := httptest.NewRecorder()
		svc.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("name %q: code = %d, want 400", name, w.Code)
		}
	}
	// A well-formed but absent name is a 404, not a 400: the validator
	// must not reject legitimate record names.
	req := httptest.NewRequest("GET", "/v1/cluster/records/"+recordName("absent"), nil)
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Errorf("valid absent name: code = %d, want 404", w.Code)
	}
}
