// Package pq implements an indexed 4-ary min-heap keyed by float64
// priorities. It supports decrease-key, which container/heap only offers
// through interface boxing and Fix; the hand-rolled version keeps Dijkstra's
// inner loop allocation-free. The 4-way branching trades slightly more
// comparisons per sift-down level for half the levels and better cache
// behavior, a consistent win for Dijkstra workloads where PopMin dominates.
//
// Items are integers in [0, n). The heap is sized once and reused across
// runs via Reset, which is O(items touched) rather than O(n).
package pq

// arity is the heap branching factor. Children of heap position i occupy
// positions arity*i+1 .. arity*i+arity.
const arity = 4

// Heap is an indexed min-heap over items 0..n-1.
type Heap struct {
	keys []float64 // keys[item] = current priority
	pos  []int     // pos[item] = index in heap, or -1 if absent
	heap []int     // heap[i] = item at heap position i
}

// New returns an empty heap over items [0, n).
func New(n int) *Heap {
	h := &Heap{
		keys: make([]float64, n),
		pos:  make([]int, n),
		heap: make([]int, 0, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Grow raises the item universe to n. Existing contents are preserved; a
// no-op when the heap already covers n items. The heap must be empty or the
// new slots simply start absent, so Grow is safe at any time.
func (h *Heap) Grow(n int) {
	if n <= len(h.pos) {
		return
	}
	keys := make([]float64, n)
	pos := make([]int, n)
	copy(keys, h.keys)
	copy(pos, h.pos)
	for i := len(h.pos); i < n; i++ {
		pos[i] = -1
	}
	h.keys, h.pos = keys, pos
}

// Len returns the number of items currently in the heap.
func (h *Heap) Len() int { return len(h.heap) }

// Cap returns the item universe size.
func (h *Heap) Cap() int { return len(h.pos) }

// Contains reports whether item is currently in the heap.
func (h *Heap) Contains(item int) bool { return h.pos[item] >= 0 }

// Key returns the current key of item. Only meaningful if the item is, or
// was at some point, in the heap since the last Reset.
func (h *Heap) Key(item int) float64 { return h.keys[item] }

// Reset empties the heap in O(current size).
func (h *Heap) Reset() {
	for _, item := range h.heap {
		h.pos[item] = -1
	}
	h.heap = h.heap[:0]
}

// Push inserts item with the given key, or lowers its key if the item is
// already present with a larger key (a no-op if the existing key is smaller
// or equal). This merged push/decrease-key is exactly the relaxation step of
// Dijkstra.
func (h *Heap) Push(item int, key float64) {
	if p := h.pos[item]; p >= 0 {
		if key < h.keys[item] {
			h.keys[item] = key
			h.up(p)
		}
		return
	}
	h.keys[item] = key
	h.pos[item] = len(h.heap)
	h.heap = append(h.heap, item)
	h.up(len(h.heap) - 1)
}

// PeekMin returns the item with the smallest key and that key without
// removing it. It panics on an empty heap; callers check Len first. The
// bidirectional bounded search uses it to alternate frontiers by comparing
// the two heaps' next keys.
func (h *Heap) PeekMin() (item int, key float64) {
	item = h.heap[0]
	return item, h.keys[item]
}

// PopMin removes and returns the item with the smallest key. It panics on an
// empty heap; callers check Len first.
func (h *Heap) PopMin() (item int, key float64) {
	item = h.heap[0]
	key = h.keys[item]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[item] = -1
	if last > 0 {
		h.down(0)
	}
	return item, key
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / arity
		if h.keys[h.heap[parent]] <= h.keys[h.heap[i]] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.heap)
	for {
		first := arity*i + 1
		if first >= n {
			return
		}
		smallest := first
		last := first + arity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.keys[h.heap[c]] < h.keys[h.heap[smallest]] {
				smallest = c
			}
		}
		if h.keys[h.heap[i]] <= h.keys[h.heap[smallest]] {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *Heap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}
