package pq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	h := New(10)
	if h.Len() != 0 {
		t.Errorf("Len() = %d, want 0", h.Len())
	}
	if h.Cap() != 10 {
		t.Errorf("Cap() = %d, want 10", h.Cap())
	}
	if h.Contains(3) {
		t.Error("empty heap Contains(3) = true")
	}
}

func TestPushPopOrdered(t *testing.T) {
	h := New(5)
	keys := []float64{3, 1, 4, 1.5, 0.5}
	for item, k := range keys {
		h.Push(item, k)
	}
	wantOrder := []int{4, 1, 3, 0, 2}
	for _, want := range wantOrder {
		item, key := h.PopMin()
		if item != want {
			t.Fatalf("PopMin() = %d (key %v), want %d", item, key, want)
		}
		if key != keys[want] {
			t.Fatalf("PopMin key = %v, want %v", key, keys[want])
		}
	}
	if h.Len() != 0 {
		t.Error("heap not empty after popping everything")
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.Push(2, 5) // decrease
	if item, key := h.PopMin(); item != 2 || key != 5 {
		t.Fatalf("PopMin() = %d/%v, want 2/5", item, key)
	}
	// Increasing is a no-op.
	h.Push(0, 99)
	if item, key := h.PopMin(); item != 0 || key != 10 {
		t.Fatalf("PopMin() = %d/%v, want 0/10 (increase must be ignored)", item, key)
	}
}

func TestContainsLifecycle(t *testing.T) {
	h := New(4)
	h.Push(2, 1)
	if !h.Contains(2) {
		t.Error("Contains(2) = false after Push")
	}
	h.PopMin()
	if h.Contains(2) {
		t.Error("Contains(2) = true after PopMin")
	}
	h.Push(2, 3)
	if !h.Contains(2) || h.Key(2) != 3 {
		t.Error("re-push after pop failed")
	}
}

func TestReset(t *testing.T) {
	h := New(6)
	for i := 0; i < 6; i++ {
		h.Push(i, float64(10-i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len() = %d after Reset", h.Len())
	}
	for i := 0; i < 6; i++ {
		if h.Contains(i) {
			t.Fatalf("Contains(%d) = true after Reset", i)
		}
	}
	h.Push(3, 1)
	if item, _ := h.PopMin(); item != 3 {
		t.Error("heap unusable after Reset")
	}
}

// TestQuickHeapSort: pushing random keys and popping yields sorted order,
// respecting the final (minimum) key after random decrease-key operations.
func TestQuickHeapSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		h := New(n)
		final := make(map[int]float64)
		// Random pushes including decrease-keys.
		for op := 0; op < 3*n; op++ {
			item := rng.Intn(n)
			key := rng.Float64() * 100
			h.Push(item, key)
			if old, ok := final[item]; !ok || key < old {
				final[item] = key
			}
		}
		type kv struct {
			item int
			key  float64
		}
		want := make([]kv, 0, len(final))
		for item, key := range final {
			want = append(want, kv{item, key})
		}
		sort.Slice(want, func(i, j int) bool { return want[i].key < want[j].key })
		if h.Len() != len(want) {
			return false
		}
		prev := -1.0
		for range want {
			_, key := h.PopMin()
			if key < prev {
				return false
			}
			prev = key
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	const n = 1024
	h := New(n)
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Reset()
		for item, k := range keys {
			h.Push(item, k)
		}
		for h.Len() > 0 {
			h.PopMin()
		}
	}
}
