// Package unionfind implements a disjoint-set forest with union by rank and
// path halving — the substrate for Kruskal's MST and for connectivity
// bookkeeping in the generators.
package unionfind

// Forest is a disjoint-set forest over elements 0..n-1. The zero value is
// unusable; call New.
type Forest struct {
	parent []int
	rank   []byte
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *Forest {
	if n < 0 {
		n = 0
	}
	f := &Forest{
		parent: make([]int, n),
		rank:   make([]byte, n),
		sets:   n,
	}
	for i := range f.parent {
		f.parent[i] = i
	}
	return f
}

// Len returns the number of elements.
func (f *Forest) Len() int { return len(f.parent) }

// Sets returns the current number of disjoint sets.
func (f *Forest) Sets() int { return f.sets }

// Find returns the canonical representative of x's set, compressing paths
// by halving as it walks.
func (f *Forest) Find(x int) int {
	for f.parent[x] != x {
		f.parent[x] = f.parent[f.parent[x]]
		x = f.parent[x]
	}
	return x
}

// Union merges the sets of x and y, returning false if they were already
// the same set.
func (f *Forest) Union(x, y int) bool {
	rx, ry := f.Find(x), f.Find(y)
	if rx == ry {
		return false
	}
	if f.rank[rx] < f.rank[ry] {
		rx, ry = ry, rx
	}
	f.parent[ry] = rx
	if f.rank[rx] == f.rank[ry] {
		f.rank[rx]++
	}
	f.sets--
	return true
}

// Connected reports whether x and y are in the same set.
func (f *Forest) Connected(x, y int) bool { return f.Find(x) == f.Find(y) }
