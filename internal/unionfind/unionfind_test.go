package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingletons(t *testing.T) {
	f := New(5)
	if f.Len() != 5 || f.Sets() != 5 {
		t.Fatalf("Len=%d Sets=%d, want 5, 5", f.Len(), f.Sets())
	}
	for i := 0; i < 5; i++ {
		if f.Find(i) != i {
			t.Errorf("Find(%d) = %d", i, f.Find(i))
		}
	}
	if f.Connected(0, 1) {
		t.Error("singletons should not be connected")
	}
}

func TestUnionBasics(t *testing.T) {
	f := New(4)
	if !f.Union(0, 1) {
		t.Error("first union should merge")
	}
	if f.Union(1, 0) {
		t.Error("repeat union should report false")
	}
	if !f.Connected(0, 1) {
		t.Error("0 and 1 should be connected")
	}
	if f.Sets() != 3 {
		t.Errorf("Sets = %d, want 3", f.Sets())
	}
	f.Union(2, 3)
	f.Union(0, 3)
	if f.Sets() != 1 {
		t.Errorf("Sets = %d, want 1", f.Sets())
	}
	if !f.Connected(1, 2) {
		t.Error("transitive connectivity broken")
	}
}

func TestNewNegative(t *testing.T) {
	if New(-1).Len() != 0 {
		t.Error("negative size should clamp to 0")
	}
}

// TestQuickMatchesNaive compares against a naive label array under random
// union/find sequences.
func TestQuickMatchesNaive(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		f := New(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for op := 0; op < 4*n; op++ {
			x, y := rng.Intn(n), rng.Intn(n)
			if rng.Intn(2) == 0 {
				merged := f.Union(x, y)
				if merged != (labels[x] != labels[y]) {
					return false
				}
				relabel(labels[x], labels[y])
			} else if f.Connected(x, y) != (labels[x] == labels[y]) {
				return false
			}
		}
		// Set count agrees.
		distinct := make(map[int]bool)
		for _, l := range labels {
			distinct[l] = true
		}
		return f.Sets() == len(distinct)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
