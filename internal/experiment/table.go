package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// Table is a rendered result table with aligned plain-text output and CSV
// export. Rows are built with Add; all formatting helpers return strings so
// rows stay homogeneous.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; it panics if the cell count does not match the header,
// which is always a programming error in an experiment runner.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("experiment: row has %d cells for %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV exports the table (header + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Itoa formats an int cell.
func Itoa(v int) string { return strconv.Itoa(v) }

// I64 formats an int64 cell.
func I64(v int64) string { return strconv.FormatInt(v, 10) }

// F formats a float cell with the given number of decimals.
func F(v float64, decimals int) string {
	return strconv.FormatFloat(v, 'f', decimals, 64)
}

// Dur formats a duration cell at millisecond resolution.
func Dur(d time.Duration) string {
	return d.Round(time.Millisecond * 10 / 10).Round(time.Microsecond * 100).String()
}
