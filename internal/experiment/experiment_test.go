package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestAllRegistered(t *testing.T) {
	exps := All()
	if len(exps) != 13 {
		t.Fatalf("registered %d experiments, want 13", len(exps))
	}
	for i, e := range exps {
		want := "E" + Itoa(i+1)
		if e.ID != want {
			t.Errorf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s: incomplete metadata", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E3"); !ok {
		t.Error("E3 should exist")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
	if _, ok := ByID("e3"); ok {
		t.Error("lookup is case-sensitive")
	}
}

// TestQuickRunsAllExperiments executes every experiment in Quick mode and
// requires every invariant-style experiment to pass. This is the
// integration test of the whole reproduction pipeline.
func TestQuickRunsAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := e.Run(Config{Seed: 42, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if !rep.Pass {
				t.Errorf("%s failed: %v", e.ID, rep.Findings)
			}
			if len(rep.Tables) == 0 {
				t.Errorf("%s produced no tables", e.ID)
			}
			if len(rep.Findings) == 0 {
				t.Errorf("%s produced no findings", e.ID)
			}
			var buf bytes.Buffer
			if err := rep.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(buf.String(), e.ID+": PASS") {
				t.Errorf("%s render missing status line:\n%s", e.ID, buf.String())
			}
		})
	}
}

func TestQuickDeterministicUnderSeed(t *testing.T) {
	e, ok := ByID("E3")
	if !ok {
		t.Fatal("E3 missing")
	}
	render := func() string {
		rep, err := e.Run(Config{Seed: 7, Quick: true})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Error("same seed should give identical reports")
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "a", "long-header", "c")
	tab.Add("1", "2", "3")
	tab.Add("100", "2000", "x")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("rendered %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(lines[1], "long-header") {
		t.Errorf("missing header: %q", lines[1])
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tab := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong arity should panic")
		}
	}()
	tab.Add("only-one")
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("x", "a", "b")
	tab.Add("1", "two,with comma")
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"two,with comma\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	// y = 3 x^2 exactly.
	xs := []float64{1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x
	}
	fit, err := FitPowerLaw(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", fit.Exponent)
	}
	if math.Abs(fit.Scale-3) > 1e-9 {
		t.Errorf("scale = %v, want 3", fit.Scale)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitPowerLaw([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitPowerLaw([]float64{0, 2}, []float64{1, 2}); err == nil {
		t.Error("non-positive x should error")
	}
	if _, err := FitPowerLaw([]float64{1, 2}, []float64{-1, 2}); err == nil {
		t.Error("non-positive y should error")
	}
	if _, err := FitPowerLaw([]float64{2, 2}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should error")
	}
}

func TestFormattingHelpers(t *testing.T) {
	if Itoa(42) != "42" || I64(1<<40) == "" {
		t.Error("int helpers broken")
	}
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
}
