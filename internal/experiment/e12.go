package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
)

// e12 probes the paper's open EFT gap: Theorem 1's bound f²·b(n/f, k+1)
// holds for both fault modes, but for edge faults the paper says it is
// "still conceivable to improve the upper bound as far as
// f·b(n/√f, k+1) + nf". We measure EFT greedy sizes against both formulas
// (and against the VFT greedy on the same inputs — edge faults can never
// force more edges than vertex faults on these workloads, since any vertex
// fault set killing a detour induces edge fault sets at most as harmful...
// empirically the EFT output is consistently no larger).
func e12() Experiment {
	return Experiment{
		ID:    "E12",
		Title: "EFT gap: sizes vs the conjectured stronger bound",
		Claim: "Section 1: EFT upper bound might improve to f·b(n/√f, k+1) + nf (open)",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E12", Title: "EFT gap: sizes vs the conjectured stronger bound", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))

			n := 140
			fs := []int{1, 2, 4, 6}
			if cfg.Quick {
				n = 40
				fs = []int{1, 2}
			}
			const k = 2 // stretch 3
			stretch := float64(2*k - 1)
			g := gen.Complete(n)

			table := NewTable(
				fmt.Sprintf("E12: EFT vs VFT greedy on K_%d, stretch %d, against both bound formulas", n, int(stretch)),
				"f", "EFT |E(H)|", "VFT |E(H)|", "EFT/VFT",
				"Thm1: f²·b(n/f)", "conj: f·b(n/√f)+nf", "EFT/conj")
			for _, f := range fs {
				eft, err := core.GreedyEFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				vft, err := core.GreedyVFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				mEFT := eft.Spanner.NumEdges()
				mVFT := vft.Spanner.NumEdges()
				thm1 := float64(f*f) * girth.MooreBound(n/f, int(stretch)+1)
				conj := float64(f)*girth.MooreBound(int(float64(n)/math.Sqrt(float64(f))), int(stretch)+1) + float64(n*f)
				table.Add(Itoa(f), Itoa(mEFT), Itoa(mVFT),
					F(float64(mEFT)/float64(mVFT), 3),
					F(thm1, 0), F(conj, 0), F(float64(mEFT)/conj, 3))
				if float64(mEFT) > thm1 {
					rep.Pass = false
					rep.addFinding("E12 f=%d: EFT size exceeds Theorem 1's bound", f)
				}
				if float64(mEFT) > conj {
					rep.addFinding("E12 f=%d: EFT size %d exceeds the conjectured bound %.0f — evidence against the improvement", f, mEFT, conj)
				}
			}
			rep.Tables = append(rep.Tables, table)

			// On unit-weight complete graphs the two modes coincide (every
			// detour is a 2-hop path, where cutting the middle vertex and
			// cutting one of its two edges are equally powerful). Weighted
			// sparse graphs separate them: detours are longer, and a vertex
			// fault kills all edges at once.
			n2, m2 := 90, 900
			if cfg.Quick {
				n2, m2 = 30, 120
			}
			base, err := gen.ConnectedGNM(n2, m2, rng)
			if err != nil {
				return nil, err
			}
			wg, err := gen.RandomizeWeights(base, 1, 2, rng)
			if err != nil {
				return nil, err
			}
			t2 := NewTable(
				fmt.Sprintf("E12b: EFT vs VFT greedy on weighted G(n=%d,m=%d), stretch 3", n2, m2),
				"f", "EFT |E(H)|", "VFT |E(H)|", "EFT/VFT")
			for _, f := range fs {
				eft, err := core.GreedyEFT(wg, stretch, f)
				if err != nil {
					return nil, err
				}
				vft, err := core.GreedyVFT(wg, stretch, f)
				if err != nil {
					return nil, err
				}
				t2.Add(Itoa(f), Itoa(eft.Spanner.NumEdges()), Itoa(vft.Spanner.NumEdges()),
					F(float64(eft.Spanner.NumEdges())/float64(vft.Spanner.NumEdges()), 3))
				if eft.Spanner.NumEdges() > vft.Spanner.NumEdges() {
					rep.addFinding("E12b f=%d: EFT larger than VFT on this workload (%d vs %d)",
						f, eft.Spanner.NumEdges(), vft.Spanner.NumEdges())
				}
			}
			rep.Tables = append(rep.Tables, t2)
			rep.addFinding("E12: EFT outputs stay within Theorem 1's bound and (at these scales) within the conjectured stronger formula — consistent with the gap being open")
			return rep, nil
		},
	}
}
