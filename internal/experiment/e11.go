package experiment

import (
	"fmt"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// e11 is the repository's extension experiment for the paper's open
// question: a polynomial-time CONSERVATIVE greedy (reject an edge only when
// f+1 pairwise disjoint short detours certify it redundant) versus the
// exact exponential greedy. Measured: output sizes (conservative >= exact,
// ideally close), work in Dijkstra runs (conservative stays ~(f+2)·m), and
// fault-tolerance of the conservative output (verified — correctness is
// unconditional for this variant).
func e11() Experiment {
	return Experiment{
		ID:    "E11",
		Title: "Extension: polynomial-time conservative greedy",
		Claim: "Open question (Section 1): a fast algorithm trading size for runtime",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E11", Title: "Extension: polynomial-time conservative greedy", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))
			n, m := 50, 1000
			fs := []int{1, 2, 3, 4, 5, 6, 7}
			trials := 60
			if cfg.Quick {
				n, m = 16, 60
				fs = []int{1, 2}
				trials = 10
			}
			base, err := gen.ConnectedGNM(n, m, rng)
			if err != nil {
				return nil, err
			}
			g, err := gen.RandomizeWeights(base, 1, 2, rng)
			if err != nil {
				return nil, err
			}
			const stretch = 3.0

			table := NewTable(
				fmt.Sprintf("E11: exact vs conservative VFT greedy, weighted G(n=%d,m=%d), stretch 3", n, m),
				"f", "exact |E(H)|", "conservative |E(H)|", "size ratio",
				"exact dijkstras", "conservative dijkstras", "FT verified")
			for _, f := range fs {
				exact, err := core.GreedyVFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				cons, err := core.ConservativeVFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				if cons.Spanner.NumEdges() < exact.Spanner.NumEdges() {
					rep.Pass = false
					rep.addFinding("E11 f=%d: conservative output smaller than exact — impossible, soundness bug", f)
				}
				inst, err := verify.NewInstance(g, cons.Spanner, cons.Kept)
				if err != nil {
					return nil, err
				}
				verr := inst.RandomCheck(stretch, fault.Vertices, f, trials, rng)
				if verr == nil {
					verr = inst.AdversarialCheck(stretch, fault.Vertices, f, trials/2, rng)
				}
				verified := "yes"
				if verr != nil {
					verified = "NO"
					rep.Pass = false
					rep.addFinding("E11 f=%d: conservative output failed verification: %v", f, verr)
				}
				ratio := float64(cons.Spanner.NumEdges()) / float64(exact.Spanner.NumEdges())
				table.Add(Itoa(f), Itoa(exact.Spanner.NumEdges()), Itoa(cons.Spanner.NumEdges()),
					F(ratio, 3), I64(exact.Stats.Dijkstras), I64(cons.Stats.Dijkstras), verified)
			}
			rep.Tables = append(rep.Tables, table)
			rep.addFinding("E11: conservative variant is always correct and polynomial; the size premium over the exact greedy is the open question's price")
			return rep, nil
		},
	}
}
