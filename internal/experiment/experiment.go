// Package experiment defines the reproduction experiments E1–E10 mapped out
// in DESIGN.md. The paper is pure theory — it has no tables or figures — so
// each experiment turns one quantitative claim (theorem, corollary, lemma or
// remark) into a measurable run whose *shape* (exponents, inequalities, who
// wins) is compared against the paper's prediction. EXPERIMENTS.md records
// the outcomes.
//
// Every experiment is deterministic under Config.Seed and has a Quick mode
// with a reduced grid for smoke tests and benchmarks.
package experiment

import (
	"fmt"
	"io"
	"sort"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; equal seeds give identical reports.
	Seed int64
	// Quick selects a reduced parameter grid (used by tests and benches).
	Quick bool
	// Out receives progress and tables; nil discards them.
	Out io.Writer
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

// Report is the outcome of one experiment.
type Report struct {
	// ID and Title echo the experiment.
	ID, Title string
	// Tables are the paper-shaped result tables.
	Tables []*Table
	// Findings are one-line numeric conclusions ("fitted slope 0.47 vs
	// predicted <= 0.5"), the material EXPERIMENTS.md quotes.
	Findings []string
	// Pass reports whether every checked invariant of the experiment held.
	Pass bool
}

func (r *Report) addFinding(format string, args ...any) {
	r.Findings = append(r.Findings, fmt.Sprintf(format, args...))
}

// Render writes the full report (tables then findings) to w.
func (r *Report) Render(w io.Writer) error {
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, f := range r.Findings {
		if _, err := fmt.Fprintf(w, "  * %s\n", f); err != nil {
			return err
		}
	}
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	_, err := fmt.Fprintf(w, "  => %s: %s\n", r.ID, status)
	return err
}

// Experiment couples an ID with the paper claim it reproduces and a runner.
type Experiment struct {
	// ID is the experiment identifier (E1..E13).
	ID string
	// Title is a short description.
	Title string
	// Claim cites the paper statement being reproduced.
	Claim string
	// Run executes the experiment.
	Run func(cfg Config) (*Report, error)
}

// All returns every registered experiment in ID order.
func All() []Experiment {
	exps := []Experiment{
		e1(), e2(), e3(), e4(), e5(), e6(), e7(), e8(), e9(), e10(), e11(), e12(), e13(),
	}
	sort.Slice(exps, func(i, j int) bool { return idOrder(exps[i].ID) < idOrder(exps[j].ID) })
	return exps
}

// ByID returns the experiment with the given ID (case-sensitive, e.g. "E3").
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func idOrder(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 1 << 30
	}
	return n
}
