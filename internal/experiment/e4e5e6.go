package experiment

import (
	"fmt"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/blocking"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
)

// e4 checks Lemma 3 as an executable invariant: the witness pairs of a VFT
// greedy run form a valid (k+1)-blocking set of size at most f·|E(H)|.
func e4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Lemma 3: blocking sets from greedy runs",
		Claim: "Lemma 3: VFT greedy output has a (k+1)-blocking set of size <= f|E(H)|",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E4", Title: "Lemma 3: blocking sets from greedy runs", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))
			type workload struct {
				name    string
				n, m    int
				stretch int
				f       int
			}
			workloads := []workload{
				{name: "gnm-sparse", n: 70, m: 400, stretch: 3, f: 1},
				{name: "gnm-dense", n: 70, m: 900, stretch: 3, f: 2},
				{name: "gnm-stretch5", n: 50, m: 400, stretch: 5, f: 2},
				{name: "complete", n: 30, m: 435, stretch: 3, f: 3},
			}
			if cfg.Quick {
				workloads = workloads[:1]
			}
			table := NewTable("E4: Lemma 3 blocking sets (VFT greedy)",
				"workload", "k", "f", "|E(H)|", "|B|", "f·|E(H)|", "|B|/(f·|E(H)|)", "valid")
			for _, w := range workloads {
				g, err := gen.ConnectedGNM(w.n, w.m, rng)
				if err != nil {
					return nil, err
				}
				res, err := core.GreedyVFT(g, float64(w.stretch), w.f)
				if err != nil {
					return nil, err
				}
				pairs, err := blocking.FromResult(res)
				if err != nil {
					return nil, err
				}
				budget := w.f * res.Spanner.NumEdges()
				validErr := blocking.VerifyVertexBlocking(res.Spanner, pairs, w.stretch+1)
				valid := "yes"
				if validErr != nil {
					valid = "NO"
					rep.Pass = false
					rep.addFinding("E4 %s: %v", w.name, validErr)
				}
				if len(pairs) > budget {
					rep.Pass = false
					rep.addFinding("E4 %s: |B|=%d exceeds f|E(H)|=%d", w.name, len(pairs), budget)
				}
				ratio := 0.0
				if budget > 0 {
					ratio = float64(len(pairs)) / float64(budget)
				}
				table.Add(w.name, Itoa(w.stretch), Itoa(w.f), Itoa(res.Spanner.NumEdges()),
					Itoa(len(pairs)), Itoa(budget), F(ratio, 3), valid)
			}
			rep.Tables = append(rep.Tables, table)
			rep.addFinding("E4: every run yields a valid (k+1)-blocking set with |B| <= f|E(H)|")
			return rep, nil
		},
	}
}

// e5 runs Lemma 4's random subsample on real greedy outputs: always girth
// > k+1, exactly ceil(n/2f) nodes, and Ω(m/f²) edges on average.
func e5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Lemma 4: random subsampling",
		Claim: "Lemma 4: subsample has O(n/f) nodes, Ω(m/f²) edges, girth > k+1",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E5", Title: "Lemma 4: random subsampling", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))
			n, m, stretch := 240, 2000, 3
			fs := []int{2, 3, 4}
			trials := 40
			if cfg.Quick {
				n, m = 80, 500
				fs = []int{2}
				trials = 10
			}
			g, err := gen.ConnectedGNM(n, m, rng)
			if err != nil {
				return nil, err
			}
			table := NewTable(
				fmt.Sprintf("E5: Lemma 4 subsampling, G(n=%d,m=%d), stretch %d, %d trials",
					n, m, stretch, trials),
				"f", "|E(H)|", "nodes (=⌈n/2f⌉)", "avg edges", "m/(8f²) bound", "min girth", "girth>k+1")
			for _, f := range fs {
				res, err := core.GreedyVFT(g, float64(stretch), f)
				if err != nil {
					return nil, err
				}
				pairs, err := blocking.FromResult(res)
				if err != nil {
					return nil, err
				}
				h := res.Spanner
				mH := float64(h.NumEdges())
				var (
					sumEdges int
					minGirth = girth.Acyclic
					nodes    int
					allHigh  = true
				)
				for trial := 0; trial < trials; trial++ {
					_, stats, err := blocking.Subsample(h, pairs, f, rng)
					if err != nil {
						return nil, err
					}
					nodes = stats.Nodes
					sumEdges += stats.Edges
					if stats.Girth < minGirth {
						minGirth = stats.Girth
					}
					if stats.Girth <= stretch+1 {
						allHigh = false
					}
				}
				avgEdges := float64(sumEdges) / float64(trials)
				bound := mH / float64(8*f*f)
				girthCell := fmt.Sprintf("%d", minGirth)
				if minGirth == girth.Acyclic {
					girthCell = "∞"
				}
				okCell := "yes"
				if !allHigh {
					okCell = "NO"
					rep.Pass = false
					rep.addFinding("E5 f=%d: a subsample had girth <= k+1 — Lemma 4 violated", f)
				}
				if avgEdges < bound/2 {
					rep.Pass = false
					rep.addFinding("E5 f=%d: average edges %.1f fell below half the m/(8f²) bound %.1f",
						f, avgEdges, bound)
				}
				table.Add(Itoa(f), Itoa(h.NumEdges()), Itoa(nodes), F(avgEdges, 1),
					F(bound, 1), girthCell, okCell)
			}
			rep.Tables = append(rep.Tables, table)
			rep.addFinding("E5: girth > k+1 held in every trial; edge counts track the Ω(m/f²) bound")
			return rep, nil
		},
	}
}

// e6 measures the optimality witness: on the BDPW product graph (high-girth
// base □ biclique), the VFT greedy cannot discard more than a vanishing
// fraction of edges — Theorem 1 is tight.
func e6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "BDPW lower bound: greedy keeps the product graph",
		Claim: "Theorem 1 is optimal for VFT (lower bound of [9], Section 1 and 2)",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E6", Title: "BDPW lower bound: greedy keeps the product graph", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))
			type grid struct {
				nBase, f int
			}
			grids := []grid{{nBase: 16, f: 2}, {nBase: 16, f: 4}, {nBase: 24, f: 4}}
			if cfg.Quick {
				grids = []grid{{nBase: 10, f: 2}}
			}
			const stretch = 3
			table := NewTable("E6: VFT greedy on the BDPW product graph (stretch 3)",
				"base n", "f", "product n", "product m", "|E(H)|", "kept fraction")
			for _, gr := range grids {
				g := gen.BDPWLowerBound(gr.nBase, stretch, gr.f, rng)
				res, err := core.GreedyVFT(g, stretch, gr.f)
				if err != nil {
					return nil, err
				}
				frac := float64(res.Spanner.NumEdges()) / float64(g.NumEdges())
				table.Add(Itoa(gr.nBase), Itoa(gr.f), Itoa(g.NumVertices()),
					Itoa(g.NumEdges()), Itoa(res.Spanner.NumEdges()), F(frac, 3))
				if frac < 0.9 {
					rep.Pass = false
					rep.addFinding("E6 nBase=%d f=%d: kept fraction %.3f < 0.9 — lower-bound graph was compressed", gr.nBase, gr.f, frac)
				}
			}
			rep.Tables = append(rep.Tables, table)
			rep.addFinding("E6: the greedy retains (essentially) every edge of the lower-bound graph, matching the optimality claim")
			return rep, nil
		},
	}
}
