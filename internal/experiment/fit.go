package experiment

import (
	"fmt"
	"math"
)

// PowerLawFit is the least-squares fit of y = scale · x^Exponent on log-log
// axes, with the coefficient of determination of the log-space regression.
type PowerLawFit struct {
	Exponent float64
	Scale    float64
	R2       float64
}

// FitPowerLaw fits y ≈ scale·x^e by linear regression of log y on log x.
// All inputs must be positive and the series at least two points long.
// Experiments use it to compare measured growth exponents against the
// paper's predictions (f^{1-1/k}, n^{1+1/k}, Moore bound slopes).
func FitPowerLaw(xs, ys []float64) (PowerLawFit, error) {
	if len(xs) != len(ys) {
		return PowerLawFit{}, fmt.Errorf("experiment: series lengths differ: %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return PowerLawFit{}, fmt.Errorf("experiment: need at least 2 points, got %d", len(xs))
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerLawFit{}, fmt.Errorf("experiment: power-law fit needs positive data, got (%v,%v)", xs[i], ys[i])
		}
		lx, ly := math.Log(xs[i]), math.Log(ys[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
		syy += ly * ly
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return PowerLawFit{}, fmt.Errorf("experiment: degenerate x series (all equal)")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² of the log-space regression.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		ly := math.Log(ys[i])
		pred := intercept + slope*math.Log(xs[i])
		ssRes += (ly - pred) * (ly - pred)
		ssTot += (ly - meanY) * (ly - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return PowerLawFit{Exponent: slope, Scale: math.Exp(intercept), R2: r2}, nil
}
