package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// e13 measures graceful degradation: Definition 2 promises nothing once
// more than f elements fail, but a systems user wants to know how the
// guarantee erodes. We build an f-VFT spanner and inject f' = 0..~3f random
// faults, recording the violation rate and the stretch distribution. Within
// budget the violation rate must be exactly zero (that part is Theorem-
// level and asserted); beyond budget the curves quantify the cliff.
func e13() Experiment {
	return Experiment{
		ID:    "E13",
		Title: "Extension: degradation beyond the fault budget",
		Claim: "Definition 2 boundary: behaviour at |F| > f is unspecified — measured here",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E13", Title: "Extension: degradation beyond the fault budget", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))

			n, radius, f := 120, 0.2, 2
			trials := 120
			overs := []int{0, 1, 2, 3, 4, 6}
			if cfg.Quick {
				n, trials = 50, 25
				overs = []int{0, 2, 3}
			}
			g, _ := gen.RandomGeometric(n, radius, rng)
			const stretch = 3.0
			res, err := core.GreedyVFT(g, stretch, f)
			if err != nil {
				return nil, err
			}
			inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
			if err != nil {
				return nil, err
			}

			table := NewTable(
				fmt.Sprintf("E13: %d-VFT 3-spanner of a geometric network (n=%d, m=%d, |E(H)|=%d) under growing fault counts",
					f, n, g.NumEdges(), res.Spanner.NumEdges()),
				"faults injected", "within budget", "violation rate", "mean stretch (finite)", "disconnect rate")
			for _, over := range overs {
				injected := f + over // start exactly at the budget, then exceed it
				violations, disconnects := 0, 0
				var stretchSum float64
				var stretchCnt int
				for trial := 0; trial < trials; trial++ {
					faults := rng.Perm(n)[:injected]
					worst, err := inst.WorstEdgeStretch(fault.Vertices, faults)
					if err != nil {
						return nil, err
					}
					switch {
					case math.IsInf(worst, 1):
						violations++
						disconnects++
					case worst > stretch+1e-9:
						violations++
						stretchSum += worst
						stretchCnt++
					default:
						stretchSum += worst
						stretchCnt++
					}
				}
				within := "no"
				if injected <= f {
					within = "yes"
					if violations > 0 {
						rep.Pass = false
						rep.addFinding("E13: %d violations within the fault budget — guarantee broken", violations)
					}
				}
				mean := 0.0
				if stretchCnt > 0 {
					mean = stretchSum / float64(stretchCnt)
				}
				table.Add(Itoa(injected), within,
					F(float64(violations)/float64(trials), 3),
					F(mean, 3),
					F(float64(disconnects)/float64(trials), 3))
			}
			rep.Tables = append(rep.Tables, table)
			rep.addFinding("E13: zero violations at |F| <= f (the theorem); beyond the budget the violation rate climbs gradually rather than falling off a cliff")
			return rep, nil
		},
	}
}
