package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/ftspanner/ftspanner/internal/baseline"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// e7 measures the paper's closing open question: the naive FT greedy oracle
// is exponential in f, while sampling-style constructions (Dinitz–
// Krauthgamer [16]) are polynomial. We report shortest-path computations
// (the honest work unit) and wall time across f, for the naive oracle, the
// accelerated oracle (pruning+memo ablation), and the sampling baseline.
func e7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Runtime vs f: exponential greedy, polynomial sampling",
		Claim: "Open question: naive FT greedy is exponential in f; [16] is polynomial",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E7", Title: "Runtime vs f", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))
			// Weighted graphs are the hard case: with weights in [1,2) a
			// detour within stretch 3 can take up to 5 edges, so the
			// branching oracle faces up to 4 internal vertices per level
			// (unit-weight graphs cap the branch factor at stretch-1).
			n, m := 50, 1000
			fs := []int{0, 1, 2, 3, 4, 5, 6, 7}
			if cfg.Quick {
				n, m = 16, 60
				fs = []int{0, 1, 2}
			}
			base, err := gen.ConnectedGNM(n, m, rng)
			if err != nil {
				return nil, err
			}
			g, err := gen.RandomizeWeights(base, 1, 2, rng)
			if err != nil {
				return nil, err
			}
			const stretch = 3.0

			table := NewTable(
				fmt.Sprintf("E7: work vs f on weighted G(n=%d,m=%d), stretch 3 (Dijkstra runs and wall time)", n, m),
				"f", "naive dijkstras", "naive time", "accel dijkstras", "accel time", "sampling time")
			var naive, accel []float64
			for _, f := range fs {
				resNaive, err := core.Greedy(g, core.Options{
					Stretch: stretch, Faults: f, Mode: fault.Vertices,
					Oracle: fault.Options{DisablePruning: true, DisableMemo: true},
				})
				if err != nil {
					return nil, err
				}
				resAccel, err := core.Greedy(g, core.Options{
					Stretch: stretch, Faults: f, Mode: fault.Vertices,
				})
				if err != nil {
					return nil, err
				}
				if resNaive.Spanner.NumEdges() != resAccel.Spanner.NumEdges() {
					rep.Pass = false
					rep.addFinding("E7 f=%d: ablation changed the output size (%d vs %d)",
						f, resNaive.Spanner.NumEdges(), resAccel.Spanner.NumEdges())
				}
				start := time.Now()
				if _, err := baseline.SamplingVFT(g, 2, f, baseline.SamplingVFTOptions{}, rng); err != nil {
					return nil, err
				}
				sampTime := time.Since(start)

				table.Add(Itoa(f),
					I64(resNaive.Stats.Dijkstras), Dur(resNaive.Stats.Duration),
					I64(resAccel.Stats.Dijkstras), Dur(resAccel.Stats.Duration),
					Dur(sampTime))
				if f >= 1 {
					naive = append(naive, float64(resNaive.Stats.Dijkstras))
					accel = append(accel, float64(resAccel.Stats.Dijkstras))
				}
			}
			rep.Tables = append(rep.Tables, table)
			if len(naive) >= 2 {
				growthN := naive[len(naive)-1] / naive[0]
				growthA := accel[len(accel)-1] / accel[0]
				fRatio := float64(fs[len(fs)-1]) / 1.0
				rep.addFinding("E7: naive oracle work grew %.1fx from f=1 to f=%d (superlinear: f grew %.0fx); accelerated oracle %.1fx; sampling stays polynomial",
					growthN, fs[len(fs)-1], fRatio, growthA)
				if !cfg.Quick && growthN < 2*fRatio {
					rep.Pass = false
					rep.addFinding("E7: naive work grew only %.1fx — expected clearly superlinear growth in f", growthN)
				}
			}
			return rep, nil
		},
	}
}

// e8 is the correctness experiment: Definition 2 holds for greedy outputs,
// checked exhaustively on small instances and by randomized plus greedy-
// adversarial fault injection on larger ones.
func e8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "Fault-tolerance verification of greedy outputs",
		Claim: "Definition 2 / Algorithm 1 correctness ('correctness is again obvious')",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E8", Title: "Fault-tolerance verification", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))
			table := NewTable("E8: verification of FT greedy outputs",
				"instance", "mode", "k", "f", "|E(G)|", "|E(H)|", "check", "result")

			// Exhaustive block (small instances).
			small := []struct {
				name string
				n    int
				mode fault.Mode
				f    int
			}{
				{name: "K7-vft", n: 7, mode: fault.Vertices, f: 2},
				{name: "K7-eft", n: 7, mode: fault.Edges, f: 2},
			}
			if cfg.Quick {
				small = small[:1]
			}
			for _, s := range small {
				g := gen.Complete(s.n)
				res, err := core.Greedy(g, core.Options{Stretch: 3, Faults: s.f, Mode: s.mode})
				if err != nil {
					return nil, err
				}
				inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
				if err != nil {
					return nil, err
				}
				verr := inst.ExhaustiveCheck(3, s.mode, s.f)
				result := "PASS"
				if verr != nil {
					result = "FAIL"
					rep.Pass = false
					rep.addFinding("E8 %s: %v", s.name, verr)
				}
				table.Add(s.name, s.mode.String(), "3", Itoa(s.f),
					Itoa(g.NumEdges()), Itoa(res.Spanner.NumEdges()), "exhaustive", result)
			}

			// Randomized + adversarial block (medium instances).
			if !cfg.Quick {
				medium := []struct {
					name string
					mode fault.Mode
					f    int
				}{
					{name: "geo-150", mode: fault.Vertices, f: 3},
					{name: "geo-150", mode: fault.Edges, f: 3},
				}
				geo, _ := gen.RandomGeometric(150, 0.18, rng)
				for _, s := range medium {
					res, err := core.Greedy(geo, core.Options{Stretch: 3, Faults: s.f, Mode: s.mode})
					if err != nil {
						return nil, err
					}
					inst, err := verify.NewInstance(geo, res.Spanner, res.Kept)
					if err != nil {
						return nil, err
					}
					verr := inst.RandomCheck(3, s.mode, s.f, 150, rng)
					if verr == nil {
						verr = inst.AdversarialCheck(3, s.mode, s.f, 60, rng)
					}
					result := "PASS"
					if verr != nil {
						result = "FAIL"
						rep.Pass = false
						rep.addFinding("E8 %s/%s: %v", s.name, s.mode, verr)
					}
					table.Add(s.name, s.mode.String(), "3", Itoa(s.f),
						Itoa(geo.NumEdges()), Itoa(res.Spanner.NumEdges()),
						"random+adversarial", result)
				}
			}
			rep.Tables = append(rep.Tables, table)
			rep.addFinding("E8: no fault set within budget ever broke the stretch guarantee")
			return rep, nil
		},
	}
}
