package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/baseline"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
)

// e1 reproduces Theorem 1 / Corollary 2's dependence on f: on a fixed
// worst-case-style input (a complete graph), the VFT greedy output must stay
// below Theorem 1's bound f²·b(n/f, k+1), instantiated with the explicit
// Moore form b(m, k+1) = m^{1+1/k} + m and constant 1. The pure f^{1-1/k}
// slope of Corollary 2 only emerges when the Moore term dominates the
// additive Θ(n·f) degree term (n >> f^k); at laptop scale both terms are
// visible, so the pass criterion is the inequality, and both the measured
// and the model's own fitted exponents are reported for shape comparison.
func e1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "VFT greedy size vs f",
		Claim: "Theorem 1 / Corollary 2: |E(H)| = O(f²·b(n/f, k+1)) = O(n^{1+1/k}·f^{1-1/k}) — growth in f",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E1", Title: "VFT greedy size vs f", Pass: true}
			type grid struct {
				k  int // stretch 2k-1
				n  int
				fs []int
			}
			grids := []grid{
				{k: 2, n: 160, fs: []int{1, 2, 3, 4, 6, 8}},
				{k: 3, n: 120, fs: []int{1, 2, 3, 4, 5}},
			}
			if cfg.Quick {
				grids = []grid{{k: 2, n: 40, fs: []int{1, 2, 3}}}
			}
			for _, gr := range grids {
				stretch := 2*gr.k - 1
				table := NewTable(
					fmt.Sprintf("E1: |E(H)| vs f on K_%d, stretch %d (VFT greedy)", gr.n, stretch),
					"f", "|E(H)|", "f²·b(n/f,k+1) bound", "measured/bound")
				g := gen.Complete(gr.n)
				var xs, ys, models []float64
				worstRatio := 0.0
				for _, f := range gr.fs {
					res, err := core.GreedyVFT(g, float64(stretch), f)
					if err != nil {
						return nil, err
					}
					m := res.Spanner.NumEdges()
					bound := float64(f*f) * girth.MooreBound(gr.n/f, stretch+1)
					ratio := float64(m) / bound
					if ratio > worstRatio {
						worstRatio = ratio
					}
					table.Add(Itoa(f), Itoa(m), F(bound, 0), F(ratio, 3))
					xs = append(xs, float64(f))
					ys = append(ys, float64(m))
					models = append(models, bound)
				}
				rep.Tables = append(rep.Tables, table)
				fit, err := FitPowerLaw(xs, ys)
				if err != nil {
					return nil, err
				}
				modelFit, err := FitPowerLaw(xs, models)
				if err != nil {
					return nil, err
				}
				rep.addFinding("E1 stretch %d: measured f-exponent %.3f vs model's %.3f at this scale (asymptotic %.3f); worst measured/bound ratio %.3f",
					stretch, fit.Exponent, modelFit.Exponent, 1-1/float64(gr.k), worstRatio)
				if worstRatio > 1 {
					rep.Pass = false
					rep.addFinding("E1 stretch %d: Theorem 1 bound exceeded (ratio %.3f > 1)", stretch, worstRatio)
				}
			}
			return rep, nil
		},
	}
}

// e2 reproduces Corollary 2's dependence on n at fixed f: output should grow
// as n^{1+1/k} on complete inputs.
func e2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "VFT greedy size vs n",
		Claim: "Corollary 2: |E(H)| = O(n^{1+1/k} · f^{1-1/k}) — growth in n",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E2", Title: "VFT greedy size vs n", Pass: true}
			type grid struct {
				k  int
				f  int
				ns []int
			}
			grids := []grid{
				{k: 2, f: 2, ns: []int{60, 100, 160, 260}},
				{k: 3, f: 2, ns: []int{60, 100, 160}},
			}
			if cfg.Quick {
				grids = []grid{{k: 2, f: 1, ns: []int{30, 50}}}
			}
			for _, gr := range grids {
				stretch := 2*gr.k - 1
				predicted := 1 + 1/float64(gr.k)
				table := NewTable(
					fmt.Sprintf("E2: |E(H)| vs n on K_n, stretch %d, f=%d (VFT greedy)", stretch, gr.f),
					"n", "|E(G)|", "|E(H)|", "n^(1+1/k) model")
				var xs, ys []float64
				var scale float64
				for _, n := range gr.ns {
					g := gen.Complete(n)
					res, err := core.GreedyVFT(g, float64(stretch), gr.f)
					if err != nil {
						return nil, err
					}
					m := res.Spanner.NumEdges()
					if scale == 0 {
						scale = float64(m) / math.Pow(float64(n), predicted)
					}
					table.Add(Itoa(n), Itoa(g.NumEdges()), Itoa(m),
						F(scale*math.Pow(float64(n), predicted), 0))
					xs = append(xs, float64(n))
					ys = append(ys, float64(m))
				}
				rep.Tables = append(rep.Tables, table)
				fit, err := FitPowerLaw(xs, ys)
				if err != nil {
					return nil, err
				}
				rep.addFinding("E2 stretch %d: fitted n-exponent %.3f (paper predicts <= %.3f, R²=%.3f)",
					stretch, fit.Exponent, predicted, fit.R2)
				if fit.Exponent > predicted+0.2 {
					rep.Pass = false
					rep.addFinding("E2 stretch %d: exponent exceeds prediction beyond tolerance", stretch)
				}
			}
			return rep, nil
		},
	}
}

// e3 compares the greedy against its baselines at equal guarantees: the
// paper's result improves on all prior constructions, so the greedy must be
// (usually much) smaller than the DK-style sampling VFT spanner and the
// union EFT spanner, with H=G as the trivial anchor.
func e3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Greedy vs baseline constructions",
		Claim: "Theorem 1 improves on all previous constructions (intro)",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E3", Title: "Greedy vs baseline constructions", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))

			n, m := 120, 2400
			fs := []int{1, 2, 4}
			if cfg.Quick {
				n, m = 40, 300
				fs = []int{1, 2}
			}
			g, err := gen.ConnectedGNM(n, m, rng)
			if err != nil {
				return nil, err
			}
			const k = 2 // stretch 3
			stretch := float64(2*k - 1)

			vft := NewTable(
				fmt.Sprintf("E3a: f-VFT 3-spanner sizes, G(n=%d, m=%d)", n, m),
				"f", "greedy VFT", "DK-style sampling", "trivial H=G", "sampling/greedy")
			for _, f := range fs {
				res, err := core.GreedyVFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				samp, err := baseline.SamplingVFT(g, k, f, baseline.SamplingVFTOptions{}, rng)
				if err != nil {
					return nil, err
				}
				ratio := float64(samp.Spanner.NumEdges()) / float64(res.Spanner.NumEdges())
				vft.Add(Itoa(f), Itoa(res.Spanner.NumEdges()), Itoa(samp.Spanner.NumEdges()),
					Itoa(g.NumEdges()), F(ratio, 2))
				if res.Spanner.NumEdges() > samp.Spanner.NumEdges() {
					rep.Pass = false
					rep.addFinding("E3a f=%d: greedy larger than sampling baseline", f)
				}
			}
			rep.Tables = append(rep.Tables, vft)

			eft := NewTable(
				fmt.Sprintf("E3b: f-EFT 3-spanner sizes, G(n=%d, m=%d)", n, m),
				"f", "greedy EFT", "union of f+1 spanners", "trivial H=G", "union/greedy")
			for _, f := range fs {
				res, err := core.GreedyEFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				uni, err := baseline.UnionEFT(g, stretch, f)
				if err != nil {
					return nil, err
				}
				ratio := float64(uni.Spanner.NumEdges()) / float64(res.Spanner.NumEdges())
				eft.Add(Itoa(f), Itoa(res.Spanner.NumEdges()), Itoa(uni.Spanner.NumEdges()),
					Itoa(g.NumEdges()), F(ratio, 2))
				if res.Spanner.NumEdges() > uni.Spanner.NumEdges() {
					rep.Pass = false
					rep.addFinding("E3b f=%d: greedy larger than union baseline", f)
				}
			}
			rep.Tables = append(rep.Tables, eft)
			rep.addFinding("E3: greedy is the smallest construction at every f (see ratio columns)")
			return rep, nil
		},
	}
}
