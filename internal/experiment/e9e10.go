package experiment

import (
	"fmt"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/blocking"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
)

// e9 reproduces the concluding EFT remark: (a) the EFT greedy admits an
// edge (k+1)-blocking set of size <= f|E(H)| (the Lemma 3 analog), and (b)
// the BDPW lower-bound graph itself carries a small edge blocking set — the
// reason Lemma 3 alone cannot improve the EFT upper bound.
func e9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "EFT remark: edge blocking sets",
		Claim: "Section 2 remark: edge (k+1)-blocking sets of size <= f|E(H)| exist for the EFT greedy AND for the lower-bound graph",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E9", Title: "EFT remark: edge blocking sets", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))

			// (a) EFT greedy runs.
			runs := []struct {
				name    string
				n, m    int
				stretch int
				f       int
			}{
				{name: "gnm-60", n: 60, m: 500, stretch: 3, f: 1},
				{name: "gnm-60", n: 60, m: 500, stretch: 3, f: 2},
				{name: "gnm-40", n: 40, m: 300, stretch: 5, f: 2},
			}
			if cfg.Quick {
				runs = runs[:1]
			}
			ta := NewTable("E9a: edge blocking sets from EFT greedy runs",
				"workload", "k", "f", "|E(H)|", "|B|", "f·|E(H)|", "valid")
			for _, w := range runs {
				g, err := gen.ConnectedGNM(w.n, w.m, rng)
				if err != nil {
					return nil, err
				}
				res, err := core.GreedyEFT(g, float64(w.stretch), w.f)
				if err != nil {
					return nil, err
				}
				pairs, err := blocking.EdgePairsFromResult(res)
				if err != nil {
					return nil, err
				}
				budget := w.f * res.Spanner.NumEdges()
				verr := blocking.VerifyEdgeBlocking(res.Spanner, pairs, w.stretch+1)
				valid := "yes"
				if verr != nil {
					valid = "NO"
					rep.Pass = false
					rep.addFinding("E9a %s f=%d: %v", w.name, w.f, verr)
				}
				if len(pairs) > budget {
					rep.Pass = false
					rep.addFinding("E9a %s f=%d: |B|=%d > f|E(H)|=%d", w.name, w.f, len(pairs), budget)
				}
				ta.Add(w.name, Itoa(w.stretch), Itoa(w.f), Itoa(res.Spanner.NumEdges()),
					Itoa(len(pairs)), Itoa(budget), valid)
			}
			rep.Tables = append(rep.Tables, ta)

			// (b) The explicit blocking set on the BDPW blow-up.
			tb := NewTable("E9b: explicit edge blocking set on the BDPW blow-up (k=3 girth bound)",
				"base n", "t (=⌊f/2⌋)", "f", "blow-up m", "|B|", "f·|E|", "valid (cycles ≤ 4)")
			blows := []struct {
				nBase, t int
			}{{nBase: 14, t: 1}, {nBase: 14, t: 2}, {nBase: 12, t: 3}}
			if cfg.Quick {
				blows = blows[:2]
			}
			for _, bw := range blows {
				base := gen.HighGirth(bw.nBase, 4, 0, rng)
				blowup, pairs, err := blocking.BlowupEdgeBlocking(base, bw.t)
				if err != nil {
					return nil, err
				}
				f := 2 * bw.t
				verr := blocking.VerifyEdgeBlocking(blowup, pairs, 4)
				valid := "yes"
				if verr != nil {
					valid = "NO"
					rep.Pass = false
					rep.addFinding("E9b t=%d: %v", bw.t, verr)
				}
				if len(pairs) > f*blowup.NumEdges() {
					rep.Pass = false
					rep.addFinding("E9b t=%d: |B| over budget", bw.t)
				}
				tb.Add(Itoa(bw.nBase), Itoa(bw.t), Itoa(f), Itoa(blowup.NumEdges()),
					Itoa(len(pairs)), Itoa(f*blowup.NumEdges()), valid)
			}
			rep.Tables = append(rep.Tables, tb)
			rep.addFinding("E9: both halves of the remark verify — small edge blocking sets exist, including on the incompressible graph")
			return rep, nil
		},
	}
}

// e10 calibrates the b(n,k) substrate: maximal high-girth graphs and
// projective-plane incidence graphs against the Moore bound curve.
func e10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Moore bound substrate: b(n,k) witnesses",
		Claim: "b(n,k) = O(n^{1+1/⌊k/2⌋}) (folklore Moore bound, Section 1)",
		Run: func(cfg Config) (*Report, error) {
			rep := &Report{ID: "E10", Title: "Moore bound substrate", Pass: true}
			rng := rand.New(rand.NewSource(cfg.Seed))

			girths := []int{3, 4, 5, 6}
			ns := []int{60, 120, 240, 480}
			if cfg.Quick {
				girths = []int{3, 4}
				ns = []int{40, 80}
			}
			for _, gAbove := range girths {
				table := NewTable(
					fmt.Sprintf("E10: maximal girth>%d graphs vs Moore bound", gAbove),
					"n", "edges", "Moore bound", "edges/bound")
				var xs, ys []float64
				for _, n := range ns {
					g := gen.HighGirth(n, gAbove, 0, rng)
					if girth.Girth(g) <= gAbove {
						rep.Pass = false
						rep.addFinding("E10: generator violated its girth contract (n=%d, g=%d)", n, gAbove)
					}
					bound := girth.MooreBound(n, gAbove)
					if float64(g.NumEdges()) > bound {
						rep.Pass = false
						rep.addFinding("E10: graph exceeded the Moore bound (n=%d, g=%d)", n, gAbove)
					}
					table.Add(Itoa(n), Itoa(g.NumEdges()), F(bound, 0),
						F(float64(g.NumEdges())/bound, 3))
					xs = append(xs, float64(n))
					ys = append(ys, float64(g.NumEdges()))
				}
				rep.Tables = append(rep.Tables, table)
				fit, err := FitPowerLaw(xs, ys)
				if err != nil {
					return nil, err
				}
				rep.addFinding("E10 girth>%d: fitted exponent %.3f vs Moore exponent %.3f (R²=%.3f)",
					gAbove, fit.Exponent, girth.MooreExponent(gAbove), fit.R2)
			}

			// Incidence graphs: exact-girth-6 witnesses, (q+1)-regular, for
			// prime AND prime-power orders (GF(p^k) arithmetic).
			qs := []int{3, 4, 5, 7, 8, 9, 11, 13}
			if cfg.Quick {
				qs = []int{3, 4}
			}
			ti := NewTable("E10b: projective-plane incidence graphs (girth 6 witnesses for b(n,5))",
				"q", "n", "edges", "girth", "Moore bound b(n,5)", "edges/bound")
			for _, q := range qs {
				g, err := gen.IncidenceBipartite(q)
				if err != nil {
					return nil, err
				}
				gg := girth.Girth(g)
				if gg != 6 {
					rep.Pass = false
					rep.addFinding("E10b q=%d: girth %d, want 6", q, gg)
				}
				bound := girth.MooreBound(g.NumVertices(), 5)
				ti.Add(Itoa(q), Itoa(g.NumVertices()), Itoa(g.NumEdges()), Itoa(gg),
					F(bound, 0), F(float64(g.NumEdges())/bound, 3))
			}
			rep.Tables = append(rep.Tables, ti)
			rep.addFinding("E10: all witnesses respect the Moore bound; incidence graphs sit within a constant of it")
			return rep, nil
		},
	}
}
