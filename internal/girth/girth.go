// Package girth computes the (unweighted) girth of graphs — the minimum
// number of edges on any cycle — and provides the Moore bound reference
// curve b(n,k) used throughout the paper's size statements.
//
// Cycles are always measured in edge count, matching the paper's definition
// of blocking sets and of b(n,k) (weights play no role in girth).
package girth

import (
	"math"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// Acyclic is returned by Girth for forests (no cycle at all). It compares
// greater than any real girth, so `Girth(g) > k` reads naturally.
const Acyclic = math.MaxInt

// Girth returns the length (edge count) of a shortest cycle in g, or Acyclic
// if g is a forest.
//
// The algorithm is the standard one: a BFS from every vertex; every non-tree
// edge (x,y) with both endpoints reached witnesses a closed walk of length
// hops(x)+hops(y)+1 through the source, which always contains a cycle at
// most that long, and for a source on a shortest cycle the estimate is
// exact. O(n·m) total, with BFS depth capped as the best estimate improves.
func Girth(g *graph.Graph) int {
	return girthBounded(g, Acyclic)
}

// HasCycleAtMost reports whether g contains a cycle with at most maxLen
// edges (i.e. whether Girth(g) <= maxLen). The depth of each BFS is capped
// by maxLen, so this is cheaper than a full Girth call on high-girth graphs.
func HasCycleAtMost(g *graph.Graph, maxLen int) bool {
	if maxLen < 3 {
		return false
	}
	return girthBounded(g, maxLen) <= maxLen
}

// girthBounded returns the exact girth if it is <= limit, and otherwise any
// value > limit (Acyclic if no cycle was seen at all within the depth caps).
func girthBounded(g *graph.Graph, limit int) int {
	n := g.NumVertices()
	best := Acyclic
	hops := make([]int, n)
	parentEdge := make([]int, n)
	queue := make([]int, 0, n)
	for i := range hops {
		hops[i] = -1
	}
	touched := make([]int, 0, n)

	for src := 0; src < n; src++ {
		if best == 3 {
			return best // girth can never be smaller
		}
		// Cycles shorter than best must close within this depth of src;
		// when only cycles up to limit matter, cap the depth further.
		maxDepth := (best - 1) / 2
		if lim := (limit + 1) / 2; limit < best-1 && lim < maxDepth {
			maxDepth = lim
		}

		for _, v := range touched {
			hops[v] = -1
		}
		touched = touched[:0]
		queue = queue[:0]

		hops[src] = 0
		parentEdge[src] = -1
		touched = append(touched, src)
		queue = append(queue, src)
		for head := 0; head < len(queue); head++ {
			x := queue[head]
			for _, arc := range g.Neighbors(x) {
				y := arc.To
				if hops[y] == -1 {
					if hops[x] >= maxDepth {
						continue
					}
					hops[y] = hops[x] + 1
					parentEdge[y] = arc.ID
					touched = append(touched, y)
					queue = append(queue, y)
					continue
				}
				// Non-tree edge between two reached vertices: closed walk.
				if parentEdge[x] == arc.ID || parentEdge[y] == arc.ID {
					continue
				}
				if c := hops[x] + hops[y] + 1; c < best {
					best = c
				}
			}
		}
	}
	return best
}

// MooreBound returns the folklore Moore bound on b(n,k): the maximum number
// of edges of an n-vertex graph with girth > k is O(n^{1+1/⌊k/2⌋}). The
// returned value is the expression n^{1+1/⌊k/2⌋} + n (a valid upper bound up
// to the constant the paper's O(·) hides); experiments use it as the
// reference curve for exponent fits.
func MooreBound(n, k int) float64 {
	if n <= 0 {
		return 0
	}
	if k < 2 {
		// Girth > 1 excludes nothing in a simple graph.
		return float64(n) * float64(n-1) / 2
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	return math.Pow(float64(n), 1+1/float64(half)) + float64(n)
}

// MooreExponent returns the exponent 1 + 1/⌊k/2⌋ of the Moore bound, the
// slope experiments E2/E10 compare against on a log-log plot.
func MooreExponent(k int) float64 {
	half := k / 2
	if half < 1 {
		half = 1
	}
	return 1 + 1/float64(half)
}
