package girth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/graph"
)

func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	return g
}

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

func petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5, 1)     // outer C5
		g.MustAddEdge(5+i, 5+(i+2)%5, 1) // inner pentagram
		g.MustAddEdge(i, 5+i, 1)         // spokes
	}
	return g
}

func TestGirthKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{name: "triangle", g: cycleGraph(3), want: 3},
		{name: "C4", g: cycleGraph(4), want: 4},
		{name: "C5", g: cycleGraph(5), want: 5},
		{name: "C17", g: cycleGraph(17), want: 17},
		{name: "K4", g: completeGraph(4), want: 3},
		{name: "K7", g: completeGraph(7), want: 3},
		{name: "petersen", g: petersen(), want: 5},
		{name: "empty", g: graph.New(5), want: Acyclic},
		{name: "single edge", g: pathGraph(2), want: Acyclic},
		{name: "path", g: pathGraph(8), want: Acyclic},
		{name: "K33", g: completeBipartite(3, 3), want: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Girth(tt.g); got != tt.want {
				t.Errorf("Girth = %d, want %d", got, tt.want)
			}
		})
	}
}

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

func completeBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.MustAddEdge(i, a+j, 1)
		}
	}
	return g
}

func TestGirthTwoDisjointCycles(t *testing.T) {
	// C7 plus a disjoint C4: girth is 4.
	g := graph.New(11)
	for i := 0; i < 7; i++ {
		g.MustAddEdge(i, (i+1)%7, 1)
	}
	for i := 0; i < 4; i++ {
		g.MustAddEdge(7+i, 7+(i+1)%4, 1)
	}
	if got := Girth(g); got != 4 {
		t.Errorf("Girth = %d, want 4", got)
	}
}

func TestGirthIgnoresWeights(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 0.001)
	g.MustAddEdge(0, 2, 5)
	if got := Girth(g); got != 3 {
		t.Errorf("Girth = %d, want 3 (weights must not matter)", got)
	}
}

func TestHasCycleAtMost(t *testing.T) {
	c6 := cycleGraph(6)
	if HasCycleAtMost(c6, 5) {
		t.Error("C6 has no cycle of length <= 5")
	}
	if !HasCycleAtMost(c6, 6) {
		t.Error("C6 has a cycle of length 6")
	}
	if !HasCycleAtMost(c6, 100) {
		t.Error("C6 has a cycle of length <= 100")
	}
	if HasCycleAtMost(c6, 2) {
		t.Error("maxLen < 3 can never hold")
	}
	if HasCycleAtMost(pathGraph(5), 10) {
		t.Error("paths have no cycles")
	}
}

// bruteGirth enumerates all simple cycles by DFS (exponential; tiny graphs
// only) and returns the minimum length.
func bruteGirth(g *graph.Graph) int {
	n := g.NumVertices()
	best := Acyclic
	onPath := make([]bool, n)
	var path []int
	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		for _, arc := range g.Neighbors(cur) {
			next := arc.To
			if next == start && len(path) >= 3 {
				if len(path) < best {
					best = len(path)
				}
				continue
			}
			if next <= start || onPath[next] {
				continue
			}
			onPath[next] = true
			path = append(path, next)
			dfs(start, next)
			path = path[:len(path)-1]
			onPath[next] = false
		}
	}
	for s := 0; s < n; s++ {
		onPath[s] = true
		path = append(path[:0], s)
		dfs(s, s)
		onPath[s] = false
	}
	return best
}

func TestQuickGirthMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(u, v, 1)
				}
			}
		}
		return Girth(g) == bruteGirth(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMooreBound(t *testing.T) {
	// k=2,3 -> exponent 2; k=4,5 -> 1.5; k=6,7 -> 4/3.
	tests := []struct {
		k    int
		want float64
	}{
		{2, 2}, {3, 2}, {4, 1.5}, {5, 1.5}, {6, 4.0 / 3}, {7, 4.0 / 3},
	}
	for _, tt := range tests {
		if got := MooreExponent(tt.k); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("MooreExponent(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
	if got := MooreBound(100, 3); got != math.Pow(100, 2)+100 {
		t.Errorf("MooreBound(100,3) = %v", got)
	}
	if got := MooreBound(10, 1); got != 45 {
		t.Errorf("MooreBound(10,1) = %v, want 45 (=K10 edges)", got)
	}
	if got := MooreBound(0, 5); got != 0 {
		t.Errorf("MooreBound(0,5) = %v, want 0", got)
	}
	// The bound must actually dominate the densest girth>k graphs we can
	// name: C5 has girth 5 > 4, so b(5,4) >= 5.
	if MooreBound(5, 4) < 5 {
		t.Error("MooreBound(5,4) too small")
	}
}

func BenchmarkGirthPetersenLike(b *testing.B) {
	g := petersen()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Girth(g) != 5 {
			b.Fatal("wrong girth")
		}
	}
}
