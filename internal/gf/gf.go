// Package gf implements arithmetic in small finite fields GF(p^k), used by
// the generator of projective-plane incidence graphs (the extremal
// girth-six witnesses of experiment E10). Elements are represented as
// polynomials over GF(p) reduced modulo a monic irreducible polynomial of
// degree k, found by exhaustive search — entirely adequate for the field
// sizes graph generation needs (q up to a few hundred).
package gf

import (
	"fmt"
)

// Field is a finite field GF(p^k). Elements are integers in [0, p^k) whose
// base-p digits are the polynomial coefficients (least significant digit =
// constant term).
type Field struct {
	p, k  int
	q     int   // p^k
	irred []int // monic irreducible polynomial, len k+1, coefficients mod p
}

// New constructs GF(q) for a prime power q = p^k. It returns an error if q
// is not a prime power (or is too large for the generator's needs).
func New(q int) (*Field, error) {
	if q < 2 || q > 1<<16 {
		return nil, fmt.Errorf("gf: order %d out of supported range [2, 65536]", q)
	}
	p, k, ok := primePower(q)
	if !ok {
		return nil, fmt.Errorf("gf: %d is not a prime power", q)
	}
	f := &Field{p: p, k: k, q: q}
	if k > 1 {
		irred, err := findIrreducible(p, k)
		if err != nil {
			return nil, err
		}
		f.irred = irred
	}
	return f, nil
}

// Order returns q = p^k.
func (f *Field) Order() int { return f.q }

// Char returns the characteristic p.
func (f *Field) Char() int { return f.p }

// Add returns a+b in the field.
func (f *Field) Add(a, b int) int {
	if f.k == 1 {
		return (a + b) % f.p
	}
	res := 0
	for pow := 1; a > 0 || b > 0; pow *= f.p {
		da, db := a%f.p, b%f.p
		res += ((da + db) % f.p) * pow
		a /= f.p
		b /= f.p
	}
	return res
}

// Neg returns -a in the field.
func (f *Field) Neg(a int) int {
	if f.k == 1 {
		return (f.p - a%f.p) % f.p
	}
	res := 0
	for pow := 1; a > 0; pow *= f.p {
		da := a % f.p
		res += ((f.p - da) % f.p) * pow
		a /= f.p
	}
	return res
}

// Sub returns a-b in the field.
func (f *Field) Sub(a, b int) int { return f.Add(a, f.Neg(b)) }

// Mul returns a·b in the field.
func (f *Field) Mul(a, b int) int {
	if f.k == 1 {
		return (a * b) % f.p
	}
	// Polynomial multiplication followed by reduction mod irred.
	da, db := f.digits(a), f.digits(b)
	prod := make([]int, len(da)+len(db)-1)
	for i, ca := range da {
		if ca == 0 {
			continue
		}
		for j, cb := range db {
			prod[i+j] = (prod[i+j] + ca*cb) % f.p
		}
	}
	return f.fromDigits(f.reduce(prod))
}

// Inv returns the multiplicative inverse of a != 0. It panics on zero,
// which is always a caller bug in this codebase.
func (f *Field) Inv(a int) int {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	// Lagrange: a^(q-2) = a^{-1} in GF(q).
	return f.Pow(a, f.q-2)
}

// Pow returns a^e (e >= 0) in the field.
func (f *Field) Pow(a, e int) int {
	result := 1
	base := a
	for e > 0 {
		if e&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return result
}

// digits returns the base-p digit expansion of a (little-endian).
func (f *Field) digits(a int) []int {
	out := make([]int, f.k)
	for i := 0; i < f.k; i++ {
		out[i] = a % f.p
		a /= f.p
	}
	return out
}

func (f *Field) fromDigits(d []int) int {
	res := 0
	for i := len(d) - 1; i >= 0; i-- {
		res = res*f.p + d[i]%f.p
	}
	return res
}

// reduce reduces a little-endian coefficient slice modulo the irreducible
// polynomial, returning k coefficients.
func (f *Field) reduce(poly []int) []int {
	for deg := len(poly) - 1; deg >= f.k; deg-- {
		c := poly[deg] % f.p
		if c == 0 {
			continue
		}
		// poly -= c * x^(deg-k) * irred
		for i, ic := range f.irred {
			idx := deg - f.k + i
			poly[idx] = ((poly[idx]-c*ic)%f.p + f.p*f.p) % f.p
		}
	}
	out := make([]int, f.k)
	copy(out, poly[:min(f.k, len(poly))])
	for i := range out {
		out[i] %= f.p
	}
	return out
}

// primePower factors q as p^k for prime p, if possible.
func primePower(q int) (p, k int, ok bool) {
	for p = 2; p*p <= q; p++ {
		if q%p != 0 {
			continue
		}
		k = 0
		for rest := q; rest > 1; rest /= p {
			if rest%p != 0 {
				return 0, 0, false
			}
			k++
		}
		return p, k, true
	}
	return q, 1, true // q itself is prime
}

// findIrreducible searches for a monic irreducible polynomial of degree k
// over GF(p) by trial division against all monic polynomials of degree
// <= k/2.
func findIrreducible(p, k int) ([]int, error) {
	total := pow(p, k)
	for tail := 0; tail < total; tail++ {
		// Candidate: x^k + (digits of tail), monic.
		cand := make([]int, k+1)
		t := tail
		for i := 0; i < k; i++ {
			cand[i] = t % p
			t /= p
		}
		cand[k] = 1
		if cand[0] == 0 {
			continue // divisible by x
		}
		if isIrreducible(cand, p) {
			return cand, nil
		}
	}
	return nil, fmt.Errorf("gf: no irreducible polynomial of degree %d over GF(%d)", k, p)
}

// isIrreducible tests a monic polynomial (little-endian, degree =
// len(poly)-1) for irreducibility over GF(p) by trial division.
func isIrreducible(poly []int, p int) bool {
	k := len(poly) - 1
	for d := 1; 2*d <= k; d++ {
		// All monic divisor candidates of degree d.
		for tail := 0; tail < pow(p, d); tail++ {
			div := make([]int, d+1)
			t := tail
			for i := 0; i < d; i++ {
				div[i] = t % p
				t /= p
			}
			div[d] = 1
			if polyDivides(div, poly, p) {
				return false
			}
		}
	}
	return true
}

// polyDivides reports whether monic divisor div divides poly over GF(p).
func polyDivides(div, poly []int, p int) bool {
	rem := make([]int, len(poly))
	copy(rem, poly)
	dd := len(div) - 1
	for deg := len(rem) - 1; deg >= dd; deg-- {
		c := rem[deg] % p
		if c == 0 {
			continue
		}
		for i, dc := range div {
			idx := deg - dd + i
			rem[idx] = ((rem[idx]-c*dc)%p + p*p) % p
		}
	}
	for _, c := range rem[:dd] {
		if c%p != 0 {
			return false
		}
	}
	return true
}

func pow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
