package gf

import (
	"testing"
	"testing/quick"
)

func TestNewValidOrders(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 7, 8, 9, 11, 16, 25, 27, 49} {
		f, err := New(q)
		if err != nil {
			t.Errorf("New(%d): %v", q, err)
			continue
		}
		if f.Order() != q {
			t.Errorf("Order = %d, want %d", f.Order(), q)
		}
	}
}

func TestNewInvalidOrders(t *testing.T) {
	for _, q := range []int{0, 1, 6, 10, 12, 15, 100, 1 << 20} {
		if _, err := New(q); err == nil {
			t.Errorf("New(%d) should fail", q)
		}
	}
}

func TestPrimeFieldArithmetic(t *testing.T) {
	f, err := New(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Add(5, 4); got != 2 {
		t.Errorf("5+4 = %d mod 7, want 2", got)
	}
	if got := f.Mul(3, 5); got != 1 {
		t.Errorf("3*5 = %d mod 7, want 1", got)
	}
	if got := f.Inv(3); got != 5 {
		t.Errorf("inv(3) = %d mod 7, want 5", got)
	}
	if got := f.Neg(2); got != 5 {
		t.Errorf("-2 = %d mod 7, want 5", got)
	}
	if got := f.Sub(1, 3); got != 5 {
		t.Errorf("1-3 = %d mod 7, want 5", got)
	}
	if got := f.Pow(3, 6); got != 1 { // Fermat
		t.Errorf("3^6 = %d mod 7, want 1", got)
	}
}

// fieldAxioms checks the field axioms exhaustively for small orders.
func fieldAxioms(t *testing.T, q int) {
	t.Helper()
	f, err := New(q)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < q; a++ {
		if got := f.Add(a, 0); got != a {
			t.Fatalf("q=%d: a+0 = %d, want %d", q, got, a)
		}
		if got := f.Mul(a, 1); got != a {
			t.Fatalf("q=%d: a*1 = %d, want %d", q, got, a)
		}
		if got := f.Add(a, f.Neg(a)); got != 0 {
			t.Fatalf("q=%d: a+(-a) = %d, want 0", q, got)
		}
		if a != 0 {
			if got := f.Mul(a, f.Inv(a)); got != 1 {
				t.Fatalf("q=%d: a*inv(a) = %d for a=%d, want 1", q, got, a)
			}
		}
		for b := 0; b < q; b++ {
			if f.Add(a, b) != f.Add(b, a) || f.Mul(a, b) != f.Mul(b, a) {
				t.Fatalf("q=%d: commutativity broken at (%d,%d)", q, a, b)
			}
			for c := 0; c < q; c++ {
				if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
					t.Fatalf("q=%d: distributivity broken at (%d,%d,%d)", q, a, b, c)
				}
				if f.Mul(a, f.Mul(b, c)) != f.Mul(f.Mul(a, b), c) {
					t.Fatalf("q=%d: associativity broken at (%d,%d,%d)", q, a, b, c)
				}
			}
		}
	}
	// Multiplicative group has order q-1: no zero divisors.
	for a := 1; a < q; a++ {
		for b := 1; b < q; b++ {
			if f.Mul(a, b) == 0 {
				t.Fatalf("q=%d: zero divisor %d*%d", q, a, b)
			}
		}
	}
}

func TestFieldAxiomsGF4(t *testing.T)  { fieldAxioms(t, 4) }
func TestFieldAxiomsGF8(t *testing.T)  { fieldAxioms(t, 8) }
func TestFieldAxiomsGF9(t *testing.T)  { fieldAxioms(t, 9) }
func TestFieldAxiomsGF16(t *testing.T) { fieldAxioms(t, 16) }
func TestFieldAxiomsGF25(t *testing.T) { fieldAxioms(t, 25) }
func TestFieldAxiomsGF27(t *testing.T) { fieldAxioms(t, 27) }

func TestPrimePower(t *testing.T) {
	tests := []struct {
		q, p, k int
		ok      bool
	}{
		{2, 2, 1, true}, {4, 2, 2, true}, {8, 2, 3, true}, {9, 3, 2, true},
		{27, 3, 3, true}, {49, 7, 2, true}, {121, 11, 2, true},
		{6, 0, 0, false}, {12, 0, 0, false}, {36, 0, 0, false},
		{97, 97, 1, true},
	}
	for _, tt := range tests {
		p, k, ok := primePower(tt.q)
		if ok != tt.ok {
			t.Errorf("primePower(%d) ok = %v, want %v", tt.q, ok, tt.ok)
			continue
		}
		if ok && (p != tt.p || k != tt.k) {
			t.Errorf("primePower(%d) = %d^%d, want %d^%d", tt.q, p, k, tt.p, tt.k)
		}
	}
}

func TestQuickPowMatchesRepeatedMul(t *testing.T) {
	f, err := New(27)
	if err != nil {
		t.Fatal(err)
	}
	check := func(a, e uint8) bool {
		av := int(a) % 27
		ev := int(e) % 40
		want := 1
		for i := 0; i < ev; i++ {
			want = f.Mul(want, av)
		}
		return f.Pow(av, ev) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
