package gen

import (
	"fmt"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// BarabasiAlbert returns a scale-free graph via preferential attachment:
// starting from a star on m0+1 vertices, each new vertex attaches to
// attach distinct existing vertices chosen with probability proportional to
// their current degree (implemented with the standard repeated-endpoint
// urn). Degree distributions follow a power law, giving the hub-heavy
// topologies real networks exhibit — the hardest case for vertex fault
// tolerance, since hubs concentrate many detours.
func BarabasiAlbert(n, attach int, rng *rand.Rand) (*graph.Graph, error) {
	if attach < 1 {
		return nil, fmt.Errorf("gen: barabasi-albert needs attach >= 1, got %d", attach)
	}
	if n < attach+1 {
		return nil, fmt.Errorf("gen: barabasi-albert needs n >= attach+1 = %d, got %d", attach+1, n)
	}
	g := graph.New(n)
	// Urn of endpoints: each edge contributes both endpoints, so a vertex
	// appears deg(v) times.
	urn := make([]int, 0, 2*attach*n)
	// Seed: a star on vertices 0..attach (vertex 0 is the hub).
	for v := 1; v <= attach; v++ {
		g.MustAddEdge(0, v, 1)
		urn = append(urn, 0, v)
	}
	// chosen is an order-preserving small set: targets must be attached in
	// the order they were drawn, NOT in map iteration order — the urn grows
	// with each attachment, so iteration order would feed the runtime's map
	// randomization back into later draws and make the whole topology
	// nondeterministic under a fixed seed (the source of a long-standing
	// integration-test flake).
	chosen := make([]int, 0, attach)
	for v := attach + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < attach {
			target := urn[rng.Intn(len(urn))]
			if target == v {
				continue
			}
			dup := false
			for _, c := range chosen {
				if c == target {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, target)
			}
		}
		for _, target := range chosen {
			g.MustAddEdge(v, target, 1)
			urn = append(urn, v, target)
		}
	}
	return g, nil
}

// WattsStrogatz returns a small-world graph: a ring lattice where every
// vertex connects to its k/2 nearest neighbors on each side, with each
// lattice edge rewired to a uniformly random endpoint with probability
// beta. beta = 0 keeps the lattice, beta = 1 approaches G(n, m). k must be
// even, 2 <= k < n.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) (*graph.Graph, error) {
	if k < 2 || k%2 != 0 || k >= n {
		return nil, fmt.Errorf("gen: watts-strogatz needs even k in [2, n), got k=%d n=%d", k, n)
	}
	if beta < 0 || beta > 1 {
		return nil, fmt.Errorf("gen: watts-strogatz needs beta in [0,1], got %v", beta)
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for d := 1; d <= k/2; d++ {
			u := (v + d) % n
			if rng.Float64() < beta {
				// Rewire: pick a random new endpoint avoiding loops and
				// parallels; keep the lattice edge if the vertex is
				// saturated.
				rewired := false
				for tries := 0; tries < 2*n; tries++ {
					w := rng.Intn(n)
					if w != v && !g.HasEdge(v, w) {
						g.MustAddEdge(v, w, 1)
						rewired = true
						break
					}
				}
				if rewired {
					continue
				}
			}
			if !g.HasEdge(v, u) {
				g.MustAddEdge(v, u, 1)
			}
		}
	}
	return g, nil
}
