package gen

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/girth"
	"github.com/ftspanner/ftspanner/internal/graph"
)

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.NumVertices() != 6 || g.NumEdges() != 15 {
		t.Fatalf("K6: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Errorf("K6 degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(2, 3)
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("K23: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if g.HasEdge(0, 1) {
		t.Error("left side should be independent")
	}
	if g.HasEdge(2, 4) {
		t.Error("right side should be independent")
	}
	if !g.HasEdge(0, 2) || !g.HasEdge(1, 4) {
		t.Error("cross edges missing")
	}
	if got := girth.Girth(CompleteBipartite(3, 3)); got != 4 {
		t.Errorf("K33 girth = %d, want 4", got)
	}
}

func TestCycle(t *testing.T) {
	g, err := Cycle(7)
	if err != nil {
		t.Fatalf("Cycle: %v", err)
	}
	if g.NumEdges() != 7 || girth.Girth(g) != 7 {
		t.Errorf("C7 wrong: m=%d girth=%d", g.NumEdges(), girth.Girth(g))
	}
	if _, err := Cycle(2); err == nil {
		t.Error("Cycle(2) should error")
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(5)
	if p.NumEdges() != 4 || girth.Girth(p) != girth.Acyclic {
		t.Error("P5 wrong")
	}
	s := Star(5)
	if s.NumEdges() != 4 || s.Degree(0) != 4 {
		t.Error("star wrong")
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("grid n = %d", g.NumVertices())
	}
	// 3*(4-1) horizontal + 4*(3-1) vertical = 9 + 8 = 17.
	if g.NumEdges() != 17 {
		t.Fatalf("grid m = %d, want 17", g.NumEdges())
	}
	if girth.Girth(g) != 4 {
		t.Errorf("grid girth = %d, want 4", girth.Girth(g))
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatalf("Hypercube: %v", err)
	}
	if g.NumVertices() != 16 || g.NumEdges() != 32 {
		t.Fatalf("Q4: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if girth.Girth(g) != 4 {
		t.Errorf("Q4 girth = %d, want 4", girth.Girth(g))
	}
	if _, err := Hypercube(-1); err == nil {
		t.Error("negative dimension should error")
	}
}

func TestPetersen(t *testing.T) {
	g := Petersen()
	if g.NumVertices() != 10 || g.NumEdges() != 15 {
		t.Fatal("petersen counts wrong")
	}
	if girth.Girth(g) != 5 {
		t.Errorf("petersen girth = %d, want 5", girth.Girth(g))
	}
	for v := 0; v < 10; v++ {
		if g.Degree(v) != 3 {
			t.Errorf("petersen degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestGNP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNP(50, 0, rng)
	if g.NumEdges() != 0 {
		t.Error("G(n,0) must be empty")
	}
	g = GNP(50, 1, rng)
	if g.NumEdges() != 50*49/2 {
		t.Error("G(n,1) must be complete")
	}
	g = GNP(100, 0.1, rng)
	want := 0.1 * 100 * 99 / 2
	if float64(g.NumEdges()) < want/2 || float64(g.NumEdges()) > want*2 {
		t.Errorf("G(100,0.1) m = %d, expected around %v", g.NumEdges(), want)
	}
}

func TestGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := GNM(20, 50, rng)
	if err != nil {
		t.Fatalf("GNM: %v", err)
	}
	if g.NumVertices() != 20 || g.NumEdges() != 50 {
		t.Errorf("GNM sizes: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if _, err := GNM(5, 11, rng); err == nil {
		t.Error("GNM beyond complete should error")
	}
	if _, err := GNM(5, -1, rng); err == nil {
		t.Error("negative m should error")
	}
}

func TestConnectedGNM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ConnectedGNM(40, 60, rng)
	if err != nil {
		t.Fatalf("ConnectedGNM: %v", err)
	}
	if g.NumEdges() != 60 {
		t.Errorf("m = %d, want 60", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("ConnectedGNM output must be connected")
	}
	if _, err := ConnectedGNM(10, 8, rng); err == nil {
		t.Error("too few edges should error")
	}
	if _, err := ConnectedGNM(4, 7, rng); err == nil {
		t.Error("too many edges should error")
	}
	// Tree case m = n-1.
	tree, err := ConnectedGNM(15, 14, rng)
	if err != nil || !tree.IsConnected() || girth.Girth(tree) != girth.Acyclic {
		t.Error("spanning tree case broken")
	}
}

func TestRandomGeometric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, pts := RandomGeometric(80, 0.3, rng)
	if len(pts) != 80 || g.NumVertices() != 80 {
		t.Fatal("size mismatch")
	}
	for _, e := range g.Edges() {
		d := pts[e.U].Dist(pts[e.V])
		if d > 0.3 {
			t.Errorf("edge (%d,%d) longer than radius: %v", e.U, e.V, d)
		}
		if e.Weight != d {
			t.Errorf("edge weight %v != distance %v", e.Weight, d)
		}
	}
	// Radius sqrt(2) connects everything.
	full, _ := RandomGeometric(10, 1.5, rng)
	if full.NumEdges() != 45 {
		t.Errorf("radius 1.5 should give K10, got m=%d", full.NumEdges())
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := RandomRegular(30, 4, rng)
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	for v := 0; v < 30; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d should error")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Error("d >= n should error")
	}
}

func TestRandomizeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := Grid(4, 4)
	w, err := RandomizeWeights(g, 1, 2, rng)
	if err != nil {
		t.Fatalf("RandomizeWeights: %v", err)
	}
	if w.NumEdges() != g.NumEdges() {
		t.Fatal("topology changed")
	}
	for i := 0; i < g.NumEdges(); i++ {
		a, b := g.Edge(i), w.Edge(i)
		if a.U != b.U || a.V != b.V {
			t.Fatal("edge IDs not preserved")
		}
		if b.Weight < 1 || b.Weight >= 2 {
			t.Errorf("weight %v outside [1,2)", b.Weight)
		}
	}
	if _, err := RandomizeWeights(g, 0, 1, rng); err == nil {
		t.Error("lo=0 should error")
	}
	if _, err := RandomizeWeights(g, 2, 2, rng); err == nil {
		t.Error("empty range should error")
	}
}

func TestHighGirth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, above := range []int{3, 4, 5, 7} {
		g := HighGirth(60, above, 0, rng)
		if got := girth.Girth(g); got <= above {
			t.Errorf("HighGirth(60,%d) girth = %d, want > %d", above, got, above)
		}
		if g.NumEdges() < 59 {
			// A maximal girth>g graph on a connected budget is connected and
			// has at least a spanning tree.
			t.Errorf("HighGirth(60,%d) suspiciously sparse: m=%d", above, g.NumEdges())
		}
	}
}

func TestHighGirthMaximal(t *testing.T) {
	// Maximality: no admissible pair remains, i.e. every non-edge has hop
	// distance < girthAbove.
	rng := rand.New(rand.NewSource(8))
	const n, above = 25, 4
	g := HighGirth(n, above, 0, rng)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				continue
			}
			h := g.Clone()
			h.MustAddEdge(u, v, 1)
			if !girth.HasCycleAtMost(h, above) {
				t.Fatalf("pair (%d,%d) could still be added: not maximal", u, v)
			}
		}
	}
}

func TestHighGirthMaxEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := HighGirth(40, 3, 10, rng)
	if g.NumEdges() != 10 {
		t.Errorf("maxEdges cap not respected: m=%d", g.NumEdges())
	}
}

func TestHighGirthTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	if g := HighGirth(0, 3, 0, rng); g.NumVertices() != 0 {
		t.Error("n=0 should yield empty graph")
	}
	if g := HighGirth(1, 3, 0, rng); g.NumEdges() != 0 {
		t.Error("n=1 has no edges")
	}
	if g := HighGirth(2, 5, 0, rng); g.NumEdges() != 1 {
		t.Error("n=2 should connect the only pair")
	}
}

func TestIncidenceBipartite(t *testing.T) {
	for _, q := range []int{2, 3, 4, 5, 8, 9} {
		g, err := IncidenceBipartite(q)
		if err != nil {
			t.Fatalf("IncidenceBipartite(%d): %v", q, err)
		}
		n := q*q + q + 1
		if g.NumVertices() != 2*n {
			t.Fatalf("q=%d: n=%d, want %d", q, g.NumVertices(), 2*n)
		}
		if g.NumEdges() != n*(q+1) {
			t.Fatalf("q=%d: m=%d, want %d", q, g.NumEdges(), n*(q+1))
		}
		for v := 0; v < g.NumVertices(); v++ {
			if g.Degree(v) != q+1 {
				t.Fatalf("q=%d: degree(%d)=%d, want %d", q, v, g.Degree(v), q+1)
			}
		}
		if got := girth.Girth(g); got != 6 {
			t.Errorf("q=%d: girth=%d, want 6", q, got)
		}
	}
	if _, err := IncidenceBipartite(6); err == nil {
		t.Error("non-prime-power order should error")
	}
	if _, err := IncidenceBipartite(1); err == nil {
		t.Error("order 1 should error")
	}
}

func TestBDPWLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const nBase, k, f = 12, 3, 4
	base := HighGirth(nBase, k+1, 0, rand.New(rand.NewSource(11)))
	g := BDPWLowerBound(nBase, k, f, rng)
	const copies = f / 2
	if g.NumVertices() != nBase*copies {
		t.Fatalf("blow-up n = %d, want %d", g.NumVertices(), nBase*copies)
	}
	if g.NumEdges() != base.NumEdges()*copies*copies {
		t.Fatalf("blow-up m = %d, want %d", g.NumEdges(), base.NumEdges()*copies*copies)
	}
	if !g.IsConnected() {
		t.Error("BDPW graph should be connected")
	}
	// f=1 degenerates to the base graph itself (t=1).
	tiny := BDPWLowerBound(8, 3, 1, rand.New(rand.NewSource(12)))
	if tiny.NumVertices() != 8 {
		t.Errorf("f=1 blow-up n = %d, want 8", tiny.NumVertices())
	}
}

func TestGeneratorsDeterministicUnderSeed(t *testing.T) {
	a := HighGirth(30, 4, 0, rand.New(rand.NewSource(42)))
	b := HighGirth(30, 4, 0, rand.New(rand.NewSource(42)))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("HighGirth not deterministic under fixed seed")
	}
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatal("HighGirth edge streams differ under fixed seed")
		}
	}
	c, _ := ConnectedGNM(30, 60, rand.New(rand.NewSource(42)))
	d, _ := ConnectedGNM(30, 60, rand.New(rand.NewSource(42)))
	for i := 0; i < c.NumEdges(); i++ {
		if c.Edge(i) != d.Edge(i) {
			t.Fatal("ConnectedGNM not deterministic under fixed seed")
		}
	}
}

var sinkGraph *graph.Graph

func BenchmarkHighGirth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(1))
		sinkGraph = HighGirth(100, 5, 0, rng)
	}
}
