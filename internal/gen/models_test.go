package gen

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBarabasiAlbertBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, attach = 200, 3
	g, err := BarabasiAlbert(n, attach, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Fatalf("n = %d, want %d", g.NumVertices(), n)
	}
	// attach seed edges + attach per additional vertex.
	wantM := attach + (n-attach-1)*attach
	if g.NumEdges() != wantM {
		t.Fatalf("m = %d, want %d", g.NumEdges(), wantM)
	}
	if !g.IsConnected() {
		t.Error("preferential attachment must stay connected")
	}
	// Scale-free shape: the max degree should dwarf the median degree.
	degs := make([]int, n)
	for v := 0; v < n; v++ {
		degs[v] = g.Degree(v)
	}
	sort.Ints(degs)
	if degs[n-1] < 4*degs[n/2] {
		t.Errorf("hubs missing: max degree %d vs median %d", degs[n-1], degs[n/2])
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("attach=0 should error")
	}
	if _, err := BarabasiAlbert(3, 3, rng); err == nil {
		t.Error("n <= attach should error")
	}
}

func TestWattsStrogatzLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// beta=0: pure ring lattice, k-regular with nk/2 edges.
	g, err := WattsStrogatz(20, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 40 {
		t.Fatalf("lattice m = %d, want 40", g.NumEdges())
	}
	for v := 0; v < 20; v++ {
		if g.Degree(v) != 4 {
			t.Errorf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestWattsStrogatzRewired(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := WattsStrogatz(60, 6, 0.3, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 60 {
		t.Fatal("vertex count wrong")
	}
	// Rewiring keeps roughly nk/2 = 180 edges; a rewire target can collide
	// with a not-yet-processed lattice edge, dropping a handful.
	if m := g.NumEdges(); m < 170 || m > 180 {
		t.Errorf("m = %d, want within [170, 180]", m)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		n, k int
		beta float64
	}{
		{10, 3, 0.1},  // odd k
		{10, 0, 0.1},  // k too small
		{10, 10, 0.1}, // k >= n
		{10, 4, -0.1}, // beta out of range
		{10, 4, 1.1},  // beta out of range
	}
	for _, c := range cases {
		if _, err := WattsStrogatz(c.n, c.k, c.beta, rng); err == nil {
			t.Errorf("WattsStrogatz(%d,%d,%v) should error", c.n, c.k, c.beta)
		}
	}
}

func TestQuickModelsAreSimpleGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ba, err := BarabasiAlbert(20+rng.Intn(40), 1+rng.Intn(4), rng)
		if err != nil || !ba.IsConnected() {
			return false
		}
		n := 12 + rng.Intn(40)
		k := 2 * (1 + rng.Intn(3))
		if k >= n {
			k = 2
		}
		ws, err := WattsStrogatz(n, k, rng.Float64(), rng)
		if err != nil {
			return false
		}
		// Degree sums must equal twice the edge count (simple-graph sanity;
		// AddEdge already rejects loops/parallels, so this is structural).
		sum := 0
		for v := 0; v < ws.NumVertices(); v++ {
			sum += ws.Degree(v)
		}
		return sum == 2*ws.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
