package gen

import (
	"fmt"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/gf"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// HighGirth returns a graph on n vertices with girth strictly greater than
// girthAbove, built greedily: candidate pairs are visited in random order
// and an edge (u,v) is added iff the current hop distance between u and v is
// at least girthAbove (so the shortest cycle the new edge can close has
// girthAbove+1 or more edges).
//
// Because adding edges only ever shrinks distances, a pair rejected once
// stays inadmissible, so a single full pass yields a maximal girth>girthAbove
// graph — a constructive lower-bound witness for b(n, girthAbove). If
// maxEdges > 0, generation stops early at that many edges.
func HighGirth(n, girthAbove, maxEdges int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	if n < 2 {
		return g
	}
	pairs := make([][2]int, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })

	// BFS depth girthAbove-1 decides "hop distance >= girthAbove".
	for _, p := range pairs {
		if maxEdges > 0 && g.NumEdges() >= maxEdges {
			break
		}
		u, v := p[0], p[1]
		res, err := sssp.BFS(g, u, girthAbove-1, sssp.Options{})
		if err != nil {
			// Unreachable: u is always a valid, unforbidden source.
			panic(err)
		}
		if res.Hops[v] == -1 { // farther than girthAbove-1 hops (or disconnected)
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// IncidenceBipartite returns the point–line incidence graph of the
// projective plane PG(2,q) for a prime power q: a bipartite, (q+1)-regular
// graph on 2(q²+q+1) vertices with girth exactly 6. These graphs meet the
// Moore bound for girth > 5 up to constants and serve as exact witnesses in
// the b(n,k) experiments (E10).
//
// Points are vertices 0..q²+q, lines are q²+q+1..2(q²+q+1)-1; point P lies
// on line L iff their homogeneous coordinates are orthogonal over GF(q).
func IncidenceBipartite(q int) (*graph.Graph, error) {
	field, err := gf.New(q)
	if err != nil {
		return nil, fmt.Errorf("gen: incidence construction needs a prime-power order: %w", err)
	}
	coords := projectivePoints(q)
	n := len(coords) // q^2+q+1
	g := graph.New(2 * n)
	for p := 0; p < n; p++ {
		for l := 0; l < n; l++ {
			dot := 0
			for i := 0; i < 3; i++ {
				dot = field.Add(dot, field.Mul(coords[p][i], coords[l][i]))
			}
			if dot == 0 {
				g.MustAddEdge(p, n+l, 1)
			}
		}
	}
	return g, nil
}

// projectivePoints enumerates the normalized homogeneous coordinates of
// PG(2,q): (1,y,z), (0,1,z), (0,0,1), with y,z ranging over field elements.
func projectivePoints(q int) [][3]int {
	pts := make([][3]int, 0, q*q+q+1)
	for y := 0; y < q; y++ {
		for z := 0; z < q; z++ {
			pts = append(pts, [3]int{1, y, z})
		}
	}
	for z := 0; z < q; z++ {
		pts = append(pts, [3]int{0, 1, z})
	}
	pts = append(pts, [3]int{0, 0, 1})
	return pts
}

// BDPWLowerBound builds the vertex-fault-tolerance lower-bound graph of
// Bodwin–Dinitz–Parter–Williams (SODA'18), referenced throughout the paper:
// the balanced blow-up of a girth > k+1 graph on nBase vertices with
// t = max(1, ⌊f/2⌋) copies per vertex — each base edge becomes a biclique
// between the copy groups (the paper describes this as the "product with a
// biclique on ⌊f/2⌋ nodes"). It has Θ(f²·b(n/f, k+1)) edges, and EVERY edge
// is forced into any f-VFT k-spanner: faulting the 2(t-1) <= f other copies
// of an edge's endpoints leaves no within-stretch detour, because a detour
// would project to a short u-v walk in the base graph, which by girth > k+1
// must traverse the base edge (u,v) itself — available only as the faulted
// edge's own copy. Experiment E6 measures exactly this incompressibility.
func BDPWLowerBound(nBase, k, f int, rng *rand.Rand) *graph.Graph {
	base := HighGirth(nBase, k+1, 0, rng)
	t := f / 2
	if t < 1 {
		t = 1
	}
	return graph.Blowup(base, t)
}
