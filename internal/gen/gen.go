// Package gen constructs the graph families used by the examples, tests and
// experiments: classical deterministic families, random models, high-girth
// graphs (constructive witnesses for b(n,k)), and the BDPW lower-bound
// product graph that certifies the optimality of the paper's Theorem 1.
//
// Every randomized generator takes an explicit *rand.Rand so experiments are
// reproducible under a fixed seed. All edges default to weight 1; use
// RandomizeWeights to perturb weights (e.g. to make greedy tie-breaking
// non-trivial).
package gen

import (
	"fmt"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// CompleteBipartite returns the biclique K_{a,b}: vertices 0..a-1 on the
// left, a..a+b-1 on the right.
func CompleteBipartite(a, b int) *graph.Graph {
	g := graph.New(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.MustAddEdge(i, a+j, 1)
		}
	}
	return g
}

// Cycle returns the cycle C_n. It returns an error for n < 3, which cannot
// form a simple cycle.
func Cycle(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: cycle needs n >= 3, got %d", n)
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	return g, nil
}

// Path returns the path P_n on n vertices (n-1 edges).
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// Star returns the star K_{1,n-1} with center 0.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i, 1)
	}
	return g
}

// Grid returns the rows x cols grid graph. Vertex (r,c) has ID r*cols+c.
func Grid(rows, cols int) *graph.Graph {
	g := graph.New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.MustAddEdge(v, v+1, 1)
			}
			if r+1 < rows {
				g.MustAddEdge(v, v+cols, 1)
			}
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d vertices.
func Hypercube(d int) (*graph.Graph, error) {
	if d < 0 || d > 24 {
		return nil, fmt.Errorf("gen: hypercube dimension %d out of [0,24]", d)
	}
	n := 1 << uint(d)
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << uint(b))
			if v < w {
				g.MustAddEdge(v, w, 1)
			}
		}
	}
	return g, nil
}

// Petersen returns the Petersen graph (10 vertices, 15 edges, girth 5).
func Petersen() *graph.Graph {
	g := graph.New(10)
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, (i+1)%5, 1)     // outer cycle
		g.MustAddEdge(5+i, 5+(i+2)%5, 1) // inner pentagram
		g.MustAddEdge(i, 5+i, 1)         // spokes
	}
	return g
}
