package gen

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// GNP returns an Erdős–Rényi graph G(n,p): each of the n·(n-1)/2 possible
// edges is present independently with probability p.
func GNP(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v, 1)
			}
		}
	}
	return g
}

// GNM returns a uniform random graph with exactly n vertices and m edges.
func GNM(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	maxM := n * (n - 1) / 2
	if m < 0 || m > maxM {
		return nil, fmt.Errorf("gen: G(n,m) with n=%d admits 0..%d edges, got %d", n, maxM, m)
	}
	g := graph.New(n)
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	return g, nil
}

// ConnectedGNM returns a connected random graph with n vertices and exactly
// m edges: a uniform random spanning tree skeleton (random attachment) plus
// m-(n-1) uniformly random extra edges. m must be at least n-1.
func ConnectedGNM(n, m int, rng *rand.Rand) (*graph.Graph, error) {
	if n > 0 && m < n-1 {
		return nil, fmt.Errorf("gen: connected graph on %d vertices needs >= %d edges, got %d", n, n-1, m)
	}
	maxM := n * (n - 1) / 2
	if m > maxM {
		return nil, fmt.Errorf("gen: n=%d admits at most %d edges, got %d", n, maxM, m)
	}
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(perm[i], perm[rng.Intn(i)], 1)
	}
	for g.NumEdges() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	return g, nil
}

// Point is a position in the unit square, reported by RandomGeometric.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between two points.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// RandomGeometric places n points uniformly in the unit square and connects
// every pair at Euclidean distance <= radius, weighting each edge by that
// distance. It returns the graph and the coordinates (index = vertex ID).
// This is the "sensor network" workload of the examples.
func RandomGeometric(n int, radius float64, rng *rand.Rand) (*graph.Graph, []Point) {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if d := pts[u].Dist(pts[v]); d <= radius && d > 0 {
				g.MustAddEdge(u, v, d)
			}
		}
	}
	return g, pts
}

// RandomRegular returns a random d-regular graph on n vertices via the
// configuration (pairing) model, rejecting pairings with self-loops or
// parallel edges. n·d must be even and d < n. It retries internally and
// fails only if no simple pairing is found after many attempts (vanishingly
// unlikely for d << n).
func RandomRegular(n, d int, rng *rand.Rand) (*graph.Graph, error) {
	if d < 0 || d >= n {
		return nil, fmt.Errorf("gen: regular degree %d out of [0,%d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: n*d must be even, got n=%d d=%d", n, d)
	}
	const maxAttempts = 500
	stubs := make([]int, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = i / d
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		g := graph.New(n)
		ok := true
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v || g.HasEdge(u, v) {
				ok = false
				break
			}
			g.MustAddEdge(u, v, 1)
		}
		if ok {
			return g, nil
		}
	}
	return nil, fmt.Errorf("gen: no simple %d-regular pairing on %d vertices after %d attempts", d, n, maxAttempts)
}

// RandomizeWeights returns a copy of g whose edge weights are drawn
// uniformly from [lo, hi), preserving topology and edge IDs. It is the
// standard way to make greedy weight-ordering non-trivial on unit-weight
// families. lo must be positive and less than hi.
func RandomizeWeights(g *graph.Graph, lo, hi float64, rng *rand.Rand) (*graph.Graph, error) {
	if lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("gen: weight range [%v,%v) invalid", lo, hi)
	}
	out := graph.New(g.NumVertices())
	for _, e := range g.Edges() {
		out.MustAddEdge(e.U, e.V, lo+(hi-lo)*rng.Float64())
	}
	return out, nil
}

// QuantizeWeights returns a copy of g whose edge weights are drawn
// uniformly from the integer levels {1, 2, ..., levels}, preserving
// topology and edge IDs. Quantized weights produce long runs of equal
// weight in the greedy's scan order — the batch structure the speculative
// parallel builder feeds on (roughly m/levels edges per batch) — which
// continuous random weights almost never do.
func QuantizeWeights(g *graph.Graph, levels int, rng *rand.Rand) (*graph.Graph, error) {
	if levels < 1 {
		return nil, fmt.Errorf("gen: weight levels must be >= 1, got %d", levels)
	}
	out := graph.New(g.NumVertices())
	for _, e := range g.Edges() {
		out.MustAddEdge(e.U, e.V, float64(1+rng.Intn(levels)))
	}
	return out, nil
}
