package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// This file implements incremental maintenance of the fault-tolerant greedy
// spanner over a long-lived mutable graph: apply a batch of edge
// inserts/deletes, repair only the affected weight suffix, and end up with a
// kept set digest-identical to a from-scratch greedy rebuild of the current
// graph.
//
// Why a suffix repair is exact. The greedy scans edges by (weight, edge ID)
// and each keep/drop decision depends only on the kept prefix H built so
// far. Define the session's canonical scan order as (weight, underlying
// edge ID) over the live edges — insertion order breaks weight ties, which
// Mutable.Materialize preserves, so this IS the order a from-scratch rebuild
// of the materialized graph uses. A batch's earliest dirty position p is the
// first scan position whose view of H can differ from before: the smallest
// position among the inserted edges and the would-be positions of deleted
// KEPT edges (deleting a dropped edge changes no prefix H, so it is free).
// Every decision before p carries over verbatim; the suffix from p is
// re-scanned against the prefix's kept set.
//
// Monotonicity shortcuts make the re-scan cheap. Walking the suffix in
// order, maintain two flags comparing the new H-prefix to the old run's
// H-prefix at the same point in the merged (live + just-deleted-kept) order:
// superset (new H ⊇ old H) and subset (new H ⊆ old H). While superset
// holds, an edge the old run dropped stays dropped — the oracle found no
// breaking fault set against a subgraph of today's H, and adding edges only
// shortens fault-free distances (in EFT mode, any new fault set F' maps to
// F = F' ∩ oldH with oldH\F ⊆ newH\F', so "no fault set" is preserved
// too). Symmetrically, while subset holds, an edge the old run kept stays
// kept. Both shortcuts skip the oracle query entirely; the flags flip the
// first time a decision or a deletion makes the prefixes diverge, after
// which the affected direction falls back to real queries. Flag updates:
// passing a deleted kept edge clears superset; a kept inserted edge or an
// old-dropped edge flipping to kept clears subset; an old-kept edge
// flipping to dropped clears superset.

// IncrementalOptions configures an Incremental engine. Stretch, Faults and
// Mode have Options semantics and are fixed for the engine's lifetime (they
// are part of what the kept set means).
type IncrementalOptions struct {
	// Stretch is the spanner parameter k >= 1.
	Stretch float64
	// Faults is the fault-tolerance parameter f >= 0.
	Faults int
	// Mode selects vertex faults (VFT) or edge faults (EFT).
	Mode fault.Mode
	// Oracle tunes the fault-set search; EdgeCapacity is managed internally.
	Oracle fault.Options
	// RebuildThreshold is the dirty fraction (suffix length over live edge
	// count) above which ApplyBatch abandons the suffix repair and rebuilds
	// from scratch with Greedy — a huge suffix repairs slower sequentially
	// than a (possibly parallel) full rebuild. 0 selects the default (0.6);
	// values >= 1 never rebuild; negative values always rebuild.
	RebuildThreshold float64
	// Parallelism and Pipeline are handed to full rebuilds (Greedy); the
	// suffix repair itself is sequential.
	Parallelism int
	Pipeline    int
	// Progress, if non-nil, fires once per re-examined edge during suffix
	// repairs and passes through to Greedy during full rebuilds, with the
	// same abort semantics as Options.Progress. An aborted batch leaves the
	// engine needing repair (NeedsRepair); the graph mutations stay applied
	// and the next ApplyBatch or Repair call finishes the re-scan.
	Progress func(scanned, kept int) error
	// DisableStateReuse turns off carrying the kept-prefix graph and fault
	// oracle across batches: every suffix repair rebuilds both from scratch,
	// restoring the per-batch O(|E| + oracle build) behavior. This is the
	// ablation baseline (mirroring fault.Options.DisableWitnessReuse); the
	// kept set is digest-identical either way.
	DisableStateReuse bool
}

// defaultRebuildThreshold is the dirty fraction above which a full rebuild
// replaces the suffix repair when IncrementalOptions.RebuildThreshold is 0.
const defaultRebuildThreshold = 0.6

// DeltaOp is the kind of one Delta.
type DeltaOp int

const (
	// DeltaInsert adds the live edge (U, V) with Weight.
	DeltaInsert DeltaOp = iota
	// DeltaDelete removes the live edge joining U and V.
	DeltaDelete
	// DeltaFaultVertex removes every live edge incident to Vertex — a
	// permanent vertex-fault event. (Transient what-if faults are the
	// oracle's department; a fault event in a delta stream means the node
	// is gone.)
	DeltaFaultVertex
)

// Delta is one graph mutation in a Batch. Unused fields are ignored.
type Delta struct {
	Op     DeltaOp
	U, V   int
	Weight float64
	Vertex int
}

// Batch is one atomic group of mutations: AddVertices new isolated vertices
// first (existing IDs never change), then the Deltas in order. The whole
// batch is validated before any mutation is applied, so a bad delta rejects
// the batch without side effects.
type Batch struct {
	AddVertices int
	Deltas      []Delta
}

// DeltaError reports the first invalid delta of a rejected batch.
type DeltaError struct {
	// Index is the offending delta's position in Batch.Deltas, or -1 when
	// Batch.AddVertices itself is invalid.
	Index int
	Err   error
}

func (e *DeltaError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("core: bad batch: %v", e.Err)
	}
	return fmt.Sprintf("core: bad delta %d: %v", e.Index, e.Err)
}

func (e *DeltaError) Unwrap() error { return e.Err }

// BatchStats instruments one ApplyBatch call.
type BatchStats struct {
	// Inserted and Deleted count applied mutations (a fault-vertex delta
	// counts one Deleted per removed incident edge).
	Inserted int
	Deleted  int
	// SuffixLen is how many live edges the repair re-examined (the whole
	// graph for a full rebuild).
	SuffixLen int
	// OracleQueries counts suffix decisions that ran a live fault-set
	// search; ShortcutKeeps/ShortcutDrops count decisions carried over by
	// the monotonicity flags without a query.
	OracleQueries int64
	ShortcutKeeps int
	ShortcutDrops int
	// FullRebuild is true when the dirty fraction crossed the threshold and
	// the batch was resolved by a from-scratch Greedy run.
	FullRebuild bool
	// OracleReused marks a suffix repair that rewound the retained prefix
	// graph and fault oracle to the divergence point instead of rebuilding
	// them; OracleBuilt marks a suffix repair that constructed them from
	// scratch (first batch, reuse disabled, or a prior fallback invalidated
	// the retained state). Both are false when the batch left every decision
	// intact or was resolved by a full rebuild.
	OracleReused bool
	OracleBuilt  bool
	// DirtyFraction is suffix length over live edge count at decision time.
	DirtyFraction float64
	Duration      time.Duration
}

// BatchResult is the output of one ApplyBatch call: the kept-set delta plus
// instrumentation. Edge values carry endpoints and weights; their IDs are
// underlying session IDs, stable only until the engine's next compaction.
type BatchResult struct {
	// KeptAdded and KeptRemoved are the spanner membership changes, in scan
	// order (removals of deleted edges first).
	KeptAdded   []graph.Edge
	KeptRemoved []graph.Edge
	// Kept and LiveEdges are the totals after the batch.
	Kept      int
	LiveEdges int
	Stats     BatchStats
}

// IncrementalStats accumulates engine instrumentation across batches.
type IncrementalStats struct {
	Batches       int
	FullRebuilds  int
	Inserted      int
	Deleted       int
	SuffixEdges   int64
	OracleQueries int64
	ShortcutKeeps int64
	ShortcutDrops int64
	Compactions   int
	// OracleReuses counts suffix repairs that rewound the retained prefix
	// graph and oracle; OracleRebuilds counts suffix repairs that built them
	// from scratch. Full Greedy rebuilds show up in FullRebuilds, not here.
	OracleReuses   int64
	OracleRebuilds int64
}

// scanKey orders edges the way the greedy scans them: weight ascending,
// underlying ID breaking ties.
type scanKey struct {
	w  float64
	id int
}

func keyLess(a, b scanKey) bool {
	if a.w != b.w {
		return a.w < b.w
	}
	return a.id < b.id
}

func keyOf(e graph.Edge) scanKey { return scanKey{w: e.Weight, id: e.ID} }

// Incremental maintains a fault-tolerant greedy spanner over a mutable
// graph. After every successful ApplyBatch the kept set is digest-identical
// to Greedy run from scratch on the materialized current graph. Witness
// fault sets are not maintained incrementally — sessions trade them for
// cheap deltas; run Greedy on Current's graph when witnesses are needed.
//
// Incremental is not safe for concurrent use.
type Incremental struct {
	opts  IncrementalOptions
	m     *graph.Mutable
	kept  []bool // by underlying edge ID
	keptN int

	// order is the live edge list in greedy scan order (weight, underlying
	// ID), maintained incrementally: each batch rewrites only the tail from
	// the earliest affected scan position — deletions filter out, insertions
	// merge in — so order upkeep is O(affected suffix), not O(|E|), and no
	// per-batch re-sort runs. orderBuf is the tail-copy merge scratch (never
	// aliased with order).
	order    []graph.Edge
	orderBuf []graph.Edge

	// Retained repair state carried across batches. h is the kept spanner
	// with edges appended in scan order, hKeys[i] the scan key of h's edge i
	// (ascending — the scan-position → arena-watermark map), and oracle
	// stays bound to h with its memo and witness cache warm. A suffix repair
	// at divergence key k truncates h back to the watermark before k and
	// Rewinds the oracle instead of rebuilding both, making a small delta
	// cost O(dirty suffix). All three are nil after an invalidation —
	// compaction, full rebuild, or aborted repair — and the next suffix
	// repair then rebuilds them from scratch (and retains the result).
	h      *graph.Graph
	hKeys  []scanKey
	oracle *fault.Oracle

	// pending, when non-nil, marks decisions at scan keys >= *pending as
	// stale: a previous repair aborted (Progress error or oracle failure)
	// after the graph mutations were applied. The next repair re-decides
	// that suffix with full queries — the interrupted walk's flag state is
	// gone, so the shortcuts stay off for safety.
	pending *scanKey

	stats IncrementalStats
}

// NewIncremental builds an engine over a deep copy of initial (nil means an
// empty graph) and runs the initial greedy build. Parallelism and Pipeline
// apply to this build like any full rebuild.
func NewIncremental(initial *graph.Graph, opts IncrementalOptions) (*Incremental, error) {
	inc, err := newIncrementalShell(initial, opts)
	if err != nil {
		return nil, err
	}
	if err := inc.rebuild(); err != nil {
		return nil, err
	}
	return inc, nil
}

// NewIncrementalSeeded is NewIncremental with the initial build skipped: kept
// lists initial's kept edge IDs from a previous greedy run over the exact
// same graph (e.g. a digest-keyed cache hit). The engine trusts the list —
// seeding with anything but the true greedy kept set breaks the
// digest-identity guarantee from the first batch on.
func NewIncrementalSeeded(initial *graph.Graph, kept []int, opts IncrementalOptions) (*Incremental, error) {
	inc, err := newIncrementalShell(initial, opts)
	if err != nil {
		return nil, err
	}
	for _, id := range kept {
		if id < 0 || id >= inc.m.NumEdges() {
			return nil, fmt.Errorf("core: seeded kept edge ID %d out of range [0,%d)", id, inc.m.NumEdges())
		}
		if inc.kept[id] {
			return nil, fmt.Errorf("core: seeded kept edge ID %d duplicated", id)
		}
		inc.kept[id] = true
	}
	inc.keptN = len(kept)
	return inc, nil
}

func newIncrementalShell(initial *graph.Graph, opts IncrementalOptions) (*Incremental, error) {
	if opts.Stretch < 1 || math.IsInf(opts.Stretch, 0) || math.IsNaN(opts.Stretch) {
		return nil, fmt.Errorf("core: stretch must be a finite number >= 1, got %v", opts.Stretch)
	}
	if opts.Faults < 0 {
		return nil, fmt.Errorf("core: faults must be >= 0, got %d", opts.Faults)
	}
	if opts.Mode != fault.Vertices && opts.Mode != fault.Edges {
		return nil, fmt.Errorf("core: invalid fault mode %d", int(opts.Mode))
	}
	if math.IsNaN(opts.RebuildThreshold) {
		return nil, fmt.Errorf("core: rebuild threshold must not be NaN")
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("core: parallelism must be >= 0, got %d", opts.Parallelism)
	}
	if opts.Pipeline < 0 || opts.Pipeline > MaxPipeline {
		return nil, fmt.Errorf("core: pipeline must be in [0,%d], got %d", MaxPipeline, opts.Pipeline)
	}
	var m *graph.Mutable
	if initial == nil {
		m = graph.NewMutable(0)
	} else {
		m = graph.NewMutableFrom(initial)
	}
	inc := &Incremental{opts: opts, m: m, kept: make([]bool, m.NumEdges())}
	// The one full sort of the engine's lifetime: LiveEdges is ID-ascending,
	// so the stable weight sort yields (weight, ID) order; every batch after
	// this maintains it by merging.
	inc.order = m.LiveEdges()
	sort.SliceStable(inc.order, func(i, j int) bool {
		return inc.order[i].Weight < inc.order[j].Weight
	})
	return inc, nil
}

// NumVertices returns the session graph's vertex count.
func (inc *Incremental) NumVertices() int { return inc.m.NumVertices() }

// NumLiveEdges returns the session graph's live edge count.
func (inc *Incremental) NumLiveEdges() int { return inc.m.NumLiveEdges() }

// KeptCount returns the current spanner size in edges.
func (inc *Incremental) KeptCount() int { return inc.keptN }

// Stats returns the engine's cumulative instrumentation.
func (inc *Incremental) Stats() IncrementalStats { return inc.stats }

// NeedsRepair reports whether a previous batch aborted mid-repair, leaving
// stale suffix decisions. ApplyBatch and Repair both clear it.
func (inc *Incremental) NeedsRepair() bool { return inc.pending != nil }

// Graph exposes the underlying mutable graph for read access (enumerating
// live edges, checking membership). Callers must not mutate it directly —
// all mutations go through ApplyBatch so the kept set stays maintained.
func (inc *Incremental) Graph() *graph.Mutable { return inc.m }

// Current returns the materialized current graph and the kept edge list as
// materialized edge IDs in scan order — exactly Result.Input and Result.Kept
// of a from-scratch Greedy run. It fails while NeedsRepair.
func (inc *Incremental) Current() (*graph.Graph, []int, error) {
	if inc.pending != nil {
		return nil, nil, fmt.Errorf("core: incremental state needs repair after an aborted batch; call Repair")
	}
	mat, ids := inc.m.Materialize()
	kept := make([]int, 0, inc.keptN)
	for matID, underID := range ids {
		if inc.kept[underID] {
			kept = append(kept, matID)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		ei, ej := mat.Edge(kept[i]), mat.Edge(kept[j])
		return keyLess(scanKey{ei.Weight, ei.ID}, scanKey{ej.Weight, ej.ID})
	})
	return mat, kept, nil
}

// Repair finishes the suffix re-scan of an aborted batch. A no-op on a
// consistent engine.
func (inc *Incremental) Repair() error {
	_, err := inc.ApplyBatch(Batch{})
	return err
}

// ApplyBatch validates and applies one mutation batch, then repairs the kept
// set: decisions before the batch's earliest dirty scan position carry over,
// the suffix is re-decided against the prefix (with monotonicity shortcuts),
// and a dirty fraction above RebuildThreshold falls back to a from-scratch
// Greedy rebuild. On success the kept set is digest-identical to rebuilding
// the current graph from scratch.
//
// A *DeltaError means the batch was rejected wholesale — nothing changed.
// Any other error means the mutations are applied but the repair aborted
// (Progress hook or oracle failure): the engine reports NeedsRepair and the
// next ApplyBatch or Repair completes the re-scan.
func (inc *Incremental) ApplyBatch(b Batch) (*BatchResult, error) {
	start := time.Now()
	if err := inc.validateBatch(b); err != nil {
		return nil, err
	}

	for i := 0; i < b.AddVertices; i++ {
		inc.m.AddVertex()
	}

	// Mutation pass. Validation guarantees every delta applies cleanly. The
	// deleted KEPT edges are not collected here — the order merge below
	// recovers them in scan order for free.
	res := &BatchResult{}
	inserted := make(map[int]bool)
	var deleted []graph.Edge // deletions present in the maintained order
	deleteOne := func(u, v int) error {
		e, err := inc.m.Delete(u, v)
		if err != nil {
			return err
		}
		res.Stats.Deleted++
		if inserted[e.ID] {
			delete(inserted, e.ID) // born and died within this batch
		} else {
			deleted = append(deleted, e)
		}
		return nil
	}
	for i, d := range b.Deltas {
		switch d.Op {
		case DeltaInsert:
			id, err := inc.m.Insert(d.U, d.V, d.Weight)
			if err != nil {
				return nil, fmt.Errorf("core: delta %d: %w", i, err)
			}
			inserted[id] = true
			res.Stats.Inserted++
		case DeltaDelete:
			if err := deleteOne(d.U, d.V); err != nil {
				return nil, fmt.Errorf("core: delta %d: %w", i, err)
			}
		case DeltaFaultVertex:
			for _, e := range inc.m.LiveIncident(d.Vertex) {
				if err := deleteOne(e.U, e.V); err != nil {
					return nil, fmt.Errorf("core: delta %d: %w", i, err)
				}
			}
		}
	}
	inc.stats.Inserted += res.Stats.Inserted
	inc.stats.Deleted += res.Stats.Deleted

	// Grow the decision table to cover the batch's fresh IDs, then fold the
	// mutations into the maintained scan order. The merge hands back the
	// deleted KEPT edges already in scan order — their old slots are what
	// the suffix repair re-decides around.
	for len(inc.kept) < inc.m.NumEdges() {
		inc.kept = append(inc.kept, false)
	}
	deletedKept := inc.mergeOrder(inserted, deleted)

	// Earliest dirty scan key: inserted edges, deleted kept edges, and any
	// stale suffix left by an aborted predecessor.
	var minKey *scanKey
	noteKey := func(k scanKey) {
		if minKey == nil || keyLess(k, *minKey) {
			minKey = &k
		}
	}
	for id := range inserted {
		if inc.m.Live(id) {
			noteKey(keyOf(inc.m.Edge(id)))
		}
	}
	if len(deletedKept) > 0 {
		noteKey(keyOf(deletedKept[0])) // scan order: the first is the minimum
	}
	resumed := inc.pending != nil
	if resumed {
		noteKey(*inc.pending)
	}

	// Retire the deleted kept edges from the bookkeeping. Their scan keys
	// are all >= minKey, so the retained prefix graph sheds them during the
	// rewind's truncation.
	for _, e := range deletedKept {
		inc.kept[e.ID] = false
		res.KeptRemoved = append(res.KeptRemoved, e)
	}

	inc.stats.Batches++
	if minKey == nil {
		// Deletes of dropped edges (or a pure vertex add) leave every
		// decision intact: the dropped edge's scan step was a no-op against
		// H, so the rebuild's decisions are unchanged verbatim — and the
		// retained prefix graph and oracle stay valid, untouched.
		inc.finishBatch(res, start)
		return res, nil
	}

	p := sort.Search(len(inc.order), func(i int) bool {
		return !keyLess(keyOf(inc.order[i]), *minKey)
	})
	res.Stats.SuffixLen = len(inc.order) - p
	if len(inc.order) > 0 {
		res.Stats.DirtyFraction = float64(res.Stats.SuffixLen) / float64(len(inc.order))
	}
	threshold := inc.opts.RebuildThreshold
	if threshold == 0 {
		threshold = defaultRebuildThreshold
	}

	if res.Stats.DirtyFraction > threshold {
		// Full rebuild: snapshot the pre-repair decisions for the delta
		// report. (The suffix path computes its delta during the walk and
		// skips this O(|E|) copy.)
		res.Stats.FullRebuild = true
		oldKept := append([]bool(nil), inc.kept...)
		if err := inc.rebuild(); err != nil {
			inc.pending = minKey
			inc.invalidateRetained()
			return nil, err
		}
		inc.invalidateRetained()
		for _, e := range inc.order {
			was := e.ID < len(oldKept) && oldKept[e.ID]
			if inc.kept[e.ID] && !was {
				res.KeptAdded = append(res.KeptAdded, e)
			} else if !inc.kept[e.ID] && was {
				res.KeptRemoved = append(res.KeptRemoved, e)
			}
		}
	} else if err := inc.repairSuffix(p, *minKey, inserted, deletedKept, resumed, res); err != nil {
		inc.invalidateRetained()
		return nil, err
	}
	inc.pending = nil
	inc.maybeCompact()
	inc.finishBatch(res, start)
	return res, nil
}

// finishBatch fills the result totals and folds the batch stats into the
// engine's cumulative counters.
func (inc *Incremental) finishBatch(res *BatchResult, start time.Time) {
	res.Kept = inc.keptN
	res.LiveEdges = inc.m.NumLiveEdges()
	res.Stats.Duration = time.Since(start)
	inc.stats.SuffixEdges += int64(res.Stats.SuffixLen)
	inc.stats.OracleQueries += res.Stats.OracleQueries
	inc.stats.ShortcutKeeps += int64(res.Stats.ShortcutKeeps)
	inc.stats.ShortcutDrops += int64(res.Stats.ShortcutDrops)
}

// mergeOrder folds the batch's mutations into the maintained scan order,
// rewriting only the tail from the earliest affected scan position: every
// tombstoned and inserted edge of this batch has a key at or past that
// position (one binary search on the minimum key), so the prefix is left in
// place and the tail is copied out once and merged back — deletions filter
// out, surviving insertions merge in at their scan keys. The deleted KEPT
// edges fall out of the same pass already in scan order, so no per-batch
// sort over deletedKept; only the insertions get sorted. deleted holds the
// batch's tombstoned edges as they were in the order (born-and-died edges of
// this batch excluded — they never entered it).
func (inc *Incremental) mergeOrder(inserted map[int]bool, deleted []graph.Edge) (deletedKept []graph.Edge) {
	ins := make([]graph.Edge, 0, len(inserted))
	for id := range inserted {
		if inc.m.Live(id) {
			ins = append(ins, inc.m.Edge(id))
		}
	}
	if len(ins) == 0 && len(deleted) == 0 {
		return nil
	}
	sort.Slice(ins, func(i, j int) bool { return keyLess(keyOf(ins[i]), keyOf(ins[j])) })

	var minKey *scanKey
	note := func(k scanKey) {
		if minKey == nil || keyLess(k, *minKey) {
			minKey = &k
		}
	}
	if len(ins) > 0 {
		note(keyOf(ins[0]))
	}
	for _, e := range deleted {
		note(keyOf(e))
	}
	pos := sort.Search(len(inc.order), func(i int) bool {
		return !keyLess(keyOf(inc.order[i]), *minKey)
	})

	// Copy the affected tail aside, then merge it back over itself. orderBuf
	// is a standalone scratch (it only ever holds this copy), so the merge
	// reads from stable memory while appending into order's array.
	tail := append(inc.orderBuf[:0], inc.order[pos:]...)
	inc.orderBuf = tail
	out := inc.order[:pos]
	ii := 0
	for _, e := range tail {
		for ii < len(ins) && keyLess(keyOf(ins[ii]), keyOf(e)) {
			out = append(out, ins[ii])
			ii++
		}
		if !inc.m.Live(e.ID) {
			if e.ID < len(inc.kept) && inc.kept[e.ID] {
				deletedKept = append(deletedKept, e)
			}
			continue
		}
		out = append(out, e)
	}
	out = append(out, ins[ii:]...)
	inc.order = out
	return deletedKept
}

// invalidateRetained drops the cross-batch repair state. The next suffix
// repair rebuilds the prefix graph and oracle from scratch (and retains the
// fresh pair again). Called on compaction, full rebuild, and aborted repair
// — the fallbacks where the retained arena's watermarks stop describing the
// engine's decisions.
func (inc *Incremental) invalidateRetained() {
	inc.h = nil
	inc.hKeys = nil
	inc.oracle = nil
}

// repairSuffix re-decides order[p:] against the kept prefix order[:p]. The
// prefix graph h and the fault oracle persist across batches: when the
// retained pair is valid, the repair truncates h's CSR arena back to the
// kept watermark at the divergence key (hKeys is the scan-position →
// watermark map; the just-deleted kept edges all sit at keys >= minKey, so
// the truncation sheds them too) and re-aims the oracle with Rewind, keeping
// its memo and scored witness cache warm. Otherwise — first repair, reuse
// disabled, or a fallback invalidated the state — both are built from
// scratch exactly as a cold engine would, then retained for the next batch.
// The deleted kept edges merge into the walk at their old scan slots to keep
// the superset flag honest; resumed repairs run with both shortcut flags off
// (see Incremental.pending).
func (inc *Incremental) repairSuffix(p int, minKey scanKey, inserted map[int]bool, deletedKept []graph.Edge, resumed bool, res *BatchResult) error {
	order := inc.order
	bs := &res.Stats
	if inc.h != nil && !resumed && !inc.opts.DisableStateReuse {
		cut := sort.Search(len(inc.hKeys), func(i int) bool {
			return !keyLess(inc.hKeys[i], minKey)
		})
		inc.h.Truncate(cut)
		inc.hKeys = inc.hKeys[:cut]
		for inc.h.NumVertices() < inc.m.NumVertices() {
			inc.h.AddVertex()
		}
		if err := inc.oracle.Rewind(inc.h, len(order)); err != nil {
			return err
		}
		bs.OracleReused = true
		inc.stats.OracleReuses++
	} else {
		h := graph.New(inc.m.NumVertices())
		hKeys := make([]scanKey, 0, inc.keptN)
		for _, e := range order[:p] {
			if inc.kept[e.ID] {
				h.MustAddEdge(e.U, e.V, e.Weight)
				hKeys = append(hKeys, keyOf(e))
			}
		}
		oracleOpts := inc.opts.Oracle
		oracleOpts.EdgeCapacity = len(order)
		oracle, err := fault.NewOracle(h, inc.opts.Mode, oracleOpts)
		if err != nil {
			return err
		}
		inc.h, inc.hKeys, inc.oracle = h, hKeys, oracle
		bs.OracleBuilt = true
		inc.stats.OracleRebuilds++
	}

	superset, subset := !resumed, !resumed
	di := 0
	processed := 0
	for _, e := range order[p:] {
		for di < len(deletedKept) && keyLess(keyOf(deletedKept[di]), keyOf(e)) {
			superset = false // old H had this edge here; new H never will
			di++
		}
		if inc.opts.Progress != nil {
			if err := inc.opts.Progress(processed, inc.h.NumEdges()); err != nil {
				k := keyOf(e)
				inc.pending = &k
				return err
			}
		}
		processed++
		isIns := inserted[e.ID]
		// The pre-walk flag doubles as the old decision (each edge is
		// visited once, deleted kept edges were already cleared, and fresh
		// IDs start false), so the membership delta falls out of the walk
		// without an O(|E|) pre-batch snapshot.
		prevKept := !isIns && inc.kept[e.ID]
		var keep bool
		switch {
		case !isIns && !prevKept && superset:
			keep = false
			bs.ShortcutDrops++
		case prevKept && subset:
			keep = true
			bs.ShortcutKeeps++
		default:
			_, found, err := inc.oracle.FindFaultSet(e.U, e.V, inc.opts.Stretch*e.Weight, inc.opts.Faults)
			if err != nil {
				k := keyOf(e)
				inc.pending = &k
				return fmt.Errorf("core: incremental repair at edge (%d,%d): %w", e.U, e.V, err)
			}
			bs.OracleQueries++
			keep = found
		}
		inc.kept[e.ID] = keep
		if keep {
			inc.h.MustAddEdge(e.U, e.V, e.Weight)
			inc.hKeys = append(inc.hKeys, keyOf(e))
		}
		if keep && !prevKept {
			res.KeptAdded = append(res.KeptAdded, e)
		} else if !keep && prevKept {
			res.KeptRemoved = append(res.KeptRemoved, e)
		}
		switch {
		case isIns && keep:
			subset = false // new H gained an edge old H never had
		case prevKept && !keep:
			superset = false // old H had it from here on, new H does not
		case !isIns && !prevKept && keep:
			subset = false
		}
	}
	inc.keptN = inc.h.NumEdges()
	return nil
}

// rebuild replaces every decision with a from-scratch Greedy run over the
// materialized current graph.
func (inc *Incremental) rebuild() error {
	mat, ids := inc.m.Materialize()
	res, err := Greedy(mat, Options{
		Stretch:     inc.opts.Stretch,
		Faults:      inc.opts.Faults,
		Mode:        inc.opts.Mode,
		Oracle:      inc.opts.Oracle,
		Progress:    inc.opts.Progress,
		Parallelism: inc.opts.Parallelism,
		Pipeline:    inc.opts.Pipeline,
	})
	if err != nil {
		return err
	}
	for i := range inc.kept {
		inc.kept[i] = false
	}
	for _, matID := range res.Kept {
		inc.kept[ids[matID]] = true
	}
	inc.keptN = len(res.Kept)
	inc.stats.FullRebuilds++
	return nil
}

// maybeCompact reclaims tombstones once they dominate the underlying edge
// list, remapping the decision table to the fresh dense IDs. Only called on
// the success path (pending is nil), so no stale scan key can dangle across
// the renumbering.
func (inc *Incremental) maybeCompact() {
	if inc.m.NumEdges() < 64 || inc.m.Waste() <= 0.5 {
		return
	}
	remap := inc.m.Compact()
	fresh := make([]bool, inc.m.NumEdges())
	for oldID, newID := range remap {
		if newID >= 0 {
			fresh[newID] = inc.kept[oldID]
		}
	}
	inc.kept = fresh
	// Compaction renumbers the underlying IDs (monotonically on survivors,
	// so relative scan order is unchanged): rewrite the maintained order in
	// place, and drop the retained repair state — its scan-key watermarks
	// name the old IDs. The next suffix repair rebuilds it from scratch.
	for i := range inc.order {
		inc.order[i].ID = remap[inc.order[i].ID]
	}
	inc.invalidateRetained()
	inc.stats.Compactions++
}

// validateBatch dry-runs b against an overlay of the live-pair state so the
// mutation pass cannot fail halfway: a rejected batch changes nothing.
func (inc *Incremental) validateBatch(b Batch) error {
	if b.AddVertices < 0 {
		return &DeltaError{Index: -1, Err: fmt.Errorf("add_vertices must be >= 0, got %d", b.AddVertices)}
	}
	n := inc.m.NumVertices() + b.AddVertices
	// overlay: +1 live, -1 dead; absent pairs defer to the base graph.
	overlay := make(map[[2]int]int8)
	norm := func(u, v int) [2]int {
		if u <= v {
			return [2]int{u, v}
		}
		return [2]int{v, u}
	}
	liveAt := func(u, v int) bool {
		if st, ok := overlay[norm(u, v)]; ok {
			return st > 0
		}
		_, ok := inc.m.LiveBetween(u, v)
		return ok
	}
	checkPair := func(u, v int) error {
		if u < 0 || u >= n || v < 0 || v >= n {
			return fmt.Errorf("endpoints (%d,%d) out of range with %d vertices", u, v, n)
		}
		if u == v {
			return fmt.Errorf("self-loop at vertex %d", u)
		}
		return nil
	}
	for i, d := range b.Deltas {
		switch d.Op {
		case DeltaInsert:
			if err := checkPair(d.U, d.V); err != nil {
				return &DeltaError{Index: i, Err: err}
			}
			if d.Weight <= 0 || math.IsInf(d.Weight, 0) || math.IsNaN(d.Weight) {
				return &DeltaError{Index: i, Err: fmt.Errorf("weight must be positive and finite, got %v", d.Weight)}
			}
			if liveAt(d.U, d.V) {
				return &DeltaError{Index: i, Err: fmt.Errorf("edge (%d,%d) already live", d.U, d.V)}
			}
			overlay[norm(d.U, d.V)] = 1
		case DeltaDelete:
			if err := checkPair(d.U, d.V); err != nil {
				return &DeltaError{Index: i, Err: err}
			}
			if !liveAt(d.U, d.V) {
				return &DeltaError{Index: i, Err: fmt.Errorf("no live edge (%d,%d)", d.U, d.V)}
			}
			overlay[norm(d.U, d.V)] = -1
		case DeltaFaultVertex:
			if d.Vertex < 0 || d.Vertex >= n {
				return &DeltaError{Index: i, Err: fmt.Errorf("vertex %d out of range with %d vertices", d.Vertex, n)}
			}
			if d.Vertex < inc.m.NumVertices() {
				for _, e := range inc.m.LiveIncident(d.Vertex) {
					if _, ok := overlay[norm(e.U, e.V)]; !ok {
						overlay[norm(e.U, e.V)] = -1
					}
				}
			}
			for pair, st := range overlay {
				if st > 0 && (pair[0] == d.Vertex || pair[1] == d.Vertex) {
					overlay[pair] = -1
				}
			}
		default:
			return &DeltaError{Index: i, Err: fmt.Errorf("unknown delta op %d", int(d.Op))}
		}
	}
	return nil
}
