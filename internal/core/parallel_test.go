package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// weightKind selects the tie structure of a random test instance; ties are
// exactly what the speculative batches feed on, so the suite sweeps from
// "no batches at all" to "one batch spanning the whole scan".
type weightKind int

const (
	weightsMixed weightKind = iota // random floats with occasional ties
	weightsAllEqual
	weightsAllDistinct
	weightsQuantized // a handful of levels -> large batches
)

func (k weightKind) String() string {
	return [...]string{"mixed", "all-equal", "all-distinct", "quantized"}[k]
}

// randomInstance builds a connected random graph with the given tie
// structure.
func randomInstance(rng *rand.Rand, n, extra int, k weightKind) *graph.Graph {
	weight := func() float64 {
		switch k {
		case weightsAllEqual:
			return 1
		case weightsQuantized:
			return float64(1 + rng.Intn(4))
		default:
			return 1 + 2*rng.Float64()
		}
	}
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(perm[i], perm[rng.Intn(i)], weight())
	}
	for tries := 0; tries < 4*extra; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, weight())
		}
	}
	if k == weightsAllDistinct {
		d, err := reweightDistinct(g, rng)
		if err != nil {
			panic(err)
		}
		return d
	}
	return g
}

// reweightDistinct clones g with strictly distinct weights.
func reweightDistinct(g *graph.Graph, rng *rand.Rand) (*graph.Graph, error) {
	perm := rng.Perm(g.NumEdges())
	out := graph.New(g.NumVertices())
	for _, e := range g.Edges() {
		w := 1 + float64(perm[e.ID])/float64(g.NumEdges())
		if _, err := out.AddEdge(e.U, e.V, w); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TestGreedyParallelDifferential is the tentpole acceptance suite: across
// hundreds of random instances, both fault modes, and every tie structure,
// the pipelined builder at every (P, pipeline depth) in {2,4,8} x {1,2,4}
// must produce a kept-edge set — and a spanner digest — byte-identical to
// the sequential builder's, with conserved work counters.
func TestGreedyParallelDifferential(t *testing.T) {
	instances := 75 // x4 weight kinds = 300 instances
	if testing.Short() {
		instances = 12
	}
	rng := rand.New(rand.NewSource(33033))
	kinds := []weightKind{weightsMixed, weightsAllEqual, weightsAllDistinct, weightsQuantized}
	for inst := 0; inst < instances; inst++ {
		for _, kind := range kinds {
			n := 8 + rng.Intn(10)
			g := randomInstance(rng, n, rng.Intn(3*n), kind)
			stretch := []float64{1.5, 2, 3, 5}[rng.Intn(4)]
			faults := rng.Intn(4)
			mode := fault.Vertices
			if inst%2 == 1 {
				mode = fault.Edges
			}
			opts := Options{Stretch: stretch, Faults: faults, Mode: mode}

			seqRes, err := Greedy(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			seqDigest := seqRes.Spanner.Digest()
			for _, p := range []int{2, 4, 8} {
				for _, depth := range []int{1, 2, 4} {
					popts := opts
					popts.Parallelism = p
					popts.Pipeline = depth
					parRes, err := Greedy(g, popts)
					if err != nil {
						t.Fatal(err)
					}
					tag := fmt.Sprintf("inst %d (%s mode=%v n=%d m=%d k=%v f=%d P=%d D=%d)",
						inst, kind, mode, n, g.NumEdges(), stretch, faults, p, depth)
					if len(parRes.Kept) != len(seqRes.Kept) {
						t.Fatalf("%s: parallel kept %d edges, sequential kept %d",
							tag, len(parRes.Kept), len(seqRes.Kept))
					}
					for i := range parRes.Kept {
						if parRes.Kept[i] != seqRes.Kept[i] {
							t.Fatalf("%s: kept sets diverge at position %d: %d != %d",
								tag, i, parRes.Kept[i], seqRes.Kept[i])
						}
					}
					if d := parRes.Spanner.Digest(); d != seqDigest {
						t.Fatalf("%s: spanner digest %s != sequential %s", tag, d, seqDigest)
					}
					// Every recorded witness must be a genuine fault set for
					// its edge (witness CONTENT may legitimately differ from
					// the sequential run's).
					if err := checkWitnesses(parRes); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
					// A distinct-weight scan has no batch of length >= 2, so
					// it must never speculate; every other kind on these
					// sizes has ties, so at least one batch must have formed.
					if kind == weightsAllDistinct && parRes.Stats.SpecBatches != 0 {
						t.Fatalf("%s: distinct weights speculated %d batches", tag, parRes.Stats.SpecBatches)
					}
					if kind == weightsAllEqual && parRes.Stats.SpecBatches != 1 {
						t.Fatalf("%s: all-equal weights formed %d batches, want 1", tag, parRes.Stats.SpecBatches)
					}
					if err := checkCounterConservation(parRes); err != nil {
						t.Fatalf("%s: %v", tag, err)
					}
				}
			}
			if seqRes.Stats.SpecBatches != 0 || seqRes.Stats.SpecQueries != 0 {
				t.Fatalf("sequential run reported speculation stats %+v", seqRes.Stats)
			}
		}
	}
}

// checkCounterConservation audits the speculation counters of a parallel
// result, which are merged from per-worker and per-round oracles: no lost
// updates and no double counting, including when batches are re-speculated.
//
//   - Every speculative query's answer is spent exactly once: used for the
//     edge's final decision (SpecHits) or discarded into a re-speculation
//     round (SpecWaste), so hits + waste == queries.
//   - Every edge is decided by exactly one mechanism: the live oracle's
//     sequential queries (short batches and straggler re-queries) or a
//     speculative hit. The live oracle's calls are OracleCalls minus the
//     speculative ones, giving hits + sequential == total - speculative,
//     i.e. OracleCalls + SpecHits == EdgesScanned + SpecQueries.
func checkCounterConservation(res *Result) error {
	s := res.Stats
	if s.SpecHits+s.SpecWaste != s.SpecQueries {
		return fmt.Errorf("spec accounting leak: hits %d + waste %d != queries %d",
			s.SpecHits, s.SpecWaste, s.SpecQueries)
	}
	if s.OracleCalls+s.SpecHits != int64(s.EdgesScanned)+s.SpecQueries {
		return fmt.Errorf("oracle-call conservation broken: calls %d + hits %d != scanned %d + queries %d",
			s.OracleCalls, s.SpecHits, int64(s.EdgesScanned), s.SpecQueries)
	}
	if s.SpecRequeries < 0 || s.SpecRounds < 0 || s.SpecWaste < 0 {
		return fmt.Errorf("negative counter in %+v", s)
	}
	if s.SpecRounds == 0 && s.SpecRequeries == 0 && s.SpecWaste != 0 {
		return fmt.Errorf("%d wasted answers but no round or re-query resolved them", s.SpecWaste)
	}
	return nil
}

// checkWitnesses revalidates every recorded witness of a result against the
// final spanner's own edges: forbidding the witness must stretch the kept
// edge beyond bound IN THE SPANNER AS OF THAT EDGE'S COMMIT. Rebuilding each
// prefix is quadratic, so it samples when the spanner is large.
func checkWitnesses(res *Result) error {
	prefix := graph.New(res.Input.NumVertices())
	var prefixIDs []int
	for i, gid := range res.Kept {
		e := res.Input.Edge(gid)
		w, ok := res.Witness[gid]
		if !ok {
			return fmt.Errorf("kept edge %d has no witness entry", gid)
		}
		if len(w) > res.Faults {
			return fmt.Errorf("kept edge %d witness %v exceeds budget %d", gid, w, res.Faults)
		}
		// Validate against the spanner built so far (before adding e).
		oracle, err := fault.NewOracle(prefix, res.Mode, fault.Options{EdgeCapacity: res.Input.NumEdges() + 1})
		if err != nil {
			return err
		}
		ww := w
		if res.Mode == fault.Edges {
			// Witnesses are stored as input edge IDs; translate back to the
			// prefix-spanner IDs they index.
			ww = make([]int, len(w))
			for j, inputID := range w {
				hid := -1
				for k, got := range prefixIDs {
					if got == inputID {
						hid = k
						break
					}
				}
				if hid < 0 {
					return fmt.Errorf("kept edge %d witness references input edge %d not in the spanner prefix", gid, inputID)
				}
				ww[j] = hid
			}
		}
		ok, err = oracle.ValidateWitness(e.U, e.V, res.Stretch*e.Weight, ww)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("kept edge %d (#%d): recorded witness %v does not stretch it", gid, i, w)
		}
		prefix.MustAddEdge(e.U, e.V, e.Weight)
		prefixIDs = append(prefixIDs, gid)
	}
	return nil
}

// TestGreedyParallelMatchesAblations runs the parallel builder against
// sequential builds under every oracle ablation: the kept set must be the
// same regardless of which accelerations either side uses.
func TestGreedyParallelMatchesAblations(t *testing.T) {
	rng := rand.New(rand.NewSource(77077))
	ablations := []fault.Options{
		{DisablePruning: true, DisableMemo: true, DisableWitnessReuse: true, DisableBidi: true}, // fully naive
		{DisableWitnessReuse: true},
		{DisableBidi: true},
		{DisablePruning: true},
		{BlindWitnessCache: true},                      // PR3-era recency LRU
		{BlindWitnessCache: true, WitnessCacheSize: 1}, // degenerate capacity
		{WitnessCacheSize: 16},
	}
	instances := 10
	if testing.Short() {
		instances = 3
	}
	for inst := 0; inst < instances; inst++ {
		n := 8 + rng.Intn(8)
		g := randomInstance(rng, n, rng.Intn(2*n), weightsQuantized)
		mode := fault.Vertices
		if inst%2 == 1 {
			mode = fault.Edges
		}
		base := Options{Stretch: 3, Faults: 2, Mode: mode}
		want, err := Greedy(g, base)
		if err != nil {
			t.Fatal(err)
		}
		for ai, abl := range ablations {
			opts := base
			opts.Oracle = abl
			opts.Parallelism = 4
			got, err := Greedy(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Kept) != len(want.Kept) {
				t.Fatalf("inst %d ablation %d: kept %d vs %d", inst, ai, len(got.Kept), len(want.Kept))
			}
			for i := range got.Kept {
				if got.Kept[i] != want.Kept[i] {
					t.Fatalf("inst %d ablation %d: kept sets diverge at %d", inst, ai, i)
				}
			}
		}
	}
}

// TestGreedyParallelProgress checks the Progress contract under
// Parallelism: one call per edge in scan order, and abort-on-error.
func TestGreedyParallelProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	g := randomInstance(rng, 14, 30, weightsQuantized)
	var calls []int
	_, err := Greedy(g, Options{
		Stretch: 3, Faults: 1, Mode: fault.Vertices, Parallelism: 4,
		Progress: func(scanned, kept int) error {
			calls = append(calls, scanned)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != g.NumEdges() {
		t.Fatalf("progress fired %d times for %d edges", len(calls), g.NumEdges())
	}
	for i, s := range calls {
		if s != i {
			t.Fatalf("progress call %d reported scanned=%d", i, s)
		}
	}

	sentinel := errors.New("stop here")
	stopAt := g.NumEdges() / 2
	_, err = Greedy(g, Options{
		Stretch: 3, Faults: 1, Mode: fault.Vertices, Parallelism: 4,
		Progress: func(scanned, kept int) error {
			if scanned == stopAt {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("parallel build did not propagate the progress error: %v", err)
	}
}

// TestGreedyParallelValidation pins option validation and that P=1 is the
// sequential path.
func TestGreedyParallelValidation(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	if _, err := Greedy(g, Options{Stretch: 3, Mode: fault.Vertices, Parallelism: -1}); err == nil {
		t.Fatal("negative parallelism must be rejected")
	}
	if _, err := Greedy(g, Options{Stretch: 3, Mode: fault.Vertices, Parallelism: 2, Pipeline: -1}); err == nil {
		t.Fatal("negative pipeline must be rejected")
	}
	if _, err := Greedy(g, Options{Stretch: 3, Mode: fault.Vertices, Parallelism: 2, Pipeline: MaxPipeline + 1}); err == nil {
		t.Fatalf("pipeline over %d must be rejected", MaxPipeline)
	}
	res, err := Greedy(g, Options{Stretch: 3, Mode: fault.Vertices, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpecBatches != 0 {
		t.Fatal("parallelism 1 must not speculate")
	}
	if res.Stats.PipelineDepth != 0 {
		t.Fatal("sequential run must report pipeline depth 0")
	}
}

// TestGreedyPipelineDepthReported pins that parallel runs report the
// effective depth (default applied for 0) and that deep pipelines on tied
// weights actually overlap — multiple batches are dispatched before the
// first commit finishes, which the dispatch-ahead counters witness
// indirectly through conserved stats and identical output (the differential
// suite) plus the depth echo here.
func TestGreedyPipelineDepthReported(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	g := randomInstance(rng, 14, 30, weightsQuantized)
	for _, tc := range []struct{ in, want int }{{0, defaultPipelineDepth}, {1, 1}, {4, 4}} {
		res, err := Greedy(g, Options{Stretch: 3, Faults: 1, Mode: fault.Vertices, Parallelism: 3, Pipeline: tc.in})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.PipelineDepth != tc.want {
			t.Fatalf("Pipeline=%d reported depth %d, want %d", tc.in, res.Stats.PipelineDepth, tc.want)
		}
		if res.Stats.SpecBatches == 0 {
			t.Fatalf("Pipeline=%d: quantized weights did not speculate", tc.in)
		}
	}
}

// TestGreedyReSpeculationRounds forces the all-equal-weight worst case — a
// single batch spanning the whole scan on a dense graph where most edges are
// kept, so commits invalidate nearly every later speculative witness — and
// checks it resolves through parallel re-speculation rounds, not a
// sequential fallback: every invalidated edge is accounted to a round or to
// a sole-straggler re-query, and the counters conserve.
func TestGreedyReSpeculationRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	g := randomInstance(rng, 12, 60, weightsAllEqual)
	seqRes, err := Greedy(g, Options{Stretch: 2, Faults: 2, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(g, Options{Stretch: 2, Faults: 2, Mode: fault.Vertices, Parallelism: 4, Pipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SpecBatches != 1 {
		t.Fatalf("all-equal weights formed %d batches, want 1", res.Stats.SpecBatches)
	}
	if res.Stats.SpecWaste == 0 {
		t.Fatal("dense all-equal instance produced no invalidated speculation; worst case not exercised")
	}
	if res.Stats.SpecRounds == 0 {
		t.Fatal("invalidated speculation resolved without any re-speculation round")
	}
	if err := checkCounterConservation(res); err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != len(seqRes.Kept) {
		t.Fatalf("kept %d, sequential kept %d", len(res.Kept), len(seqRes.Kept))
	}
	for i := range res.Kept {
		if res.Kept[i] != seqRes.Kept[i] {
			t.Fatalf("kept sets diverge at %d", i)
		}
	}
	t.Logf("worst case: %d queries, %d hits, %d waste, %d rounds, %d re-queries",
		res.Stats.SpecQueries, res.Stats.SpecHits, res.Stats.SpecWaste,
		res.Stats.SpecRounds, res.Stats.SpecRequeries)
}

// TestGreedyParallelConcurrentBuilds runs several parallel builds at once to
// give the race detector cross-build interleavings (solver pools, snapshot
// reads).
func TestGreedyParallelConcurrentBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	g := randomInstance(rng, 16, 40, weightsQuantized)
	want, err := Greedy(g, Options{Stretch: 3, Faults: 2, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Greedy(g, Options{Stretch: 3, Faults: 2, Mode: fault.Vertices, Parallelism: 2 + i%3})
			if err != nil {
				errs[i] = err
				return
			}
			if len(res.Kept) != len(want.Kept) {
				errs[i] = fmt.Errorf("kept %d edges, want %d", len(res.Kept), len(want.Kept))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("build %d: %v", i, err)
		}
	}
}
