package core

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
)

// FuzzPipelinedGreedyDifferential hammers the pipelined engine's commit and
// re-speculation logic: for fuzzer-chosen instance shape, weight structure,
// fault mode, and (parallelism, pipeline depth), the kept-edge sequence and
// spanner digest must be byte-identical to the sequential scan's, and the
// speculation counters must conserve. The seed corpus pins the regimes the
// engine special-cases — all-equal weights (one batch spanning the scan,
// everything resolved through rounds), all-distinct (no speculation at
// all), quantized ties, and both fault modes at depths 1 through 4.
func FuzzPipelinedGreedyDifferential(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(12), uint8(1), uint8(0), uint8(2), uint8(2), uint8(2))
	f.Add(int64(2), uint8(14), uint8(30), uint8(3), uint8(1), uint8(1), uint8(4), uint8(1))
	f.Add(int64(3), uint8(9), uint8(20), uint8(2), uint8(0), uint8(3), uint8(3), uint8(4))
	f.Add(int64(4), uint8(16), uint8(8), uint8(0), uint8(1), uint8(0), uint8(8), uint8(3))
	f.Add(int64(5), uint8(8), uint8(40), uint8(1), uint8(0), uint8(2), uint8(2), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, n, extra, kindSel, modeSel, faults, p, depth uint8) {
		nv := 4 + int(n%16)
		kind := weightKind(kindSel % 4)
		mode := fault.Vertices
		if modeSel%2 == 1 {
			mode = fault.Edges
		}
		parallelism := 2 + int(p%7)
		pipeline := 1 + int(depth%4)
		rng := rand.New(rand.NewSource(seed))
		g := randomInstance(rng, nv, int(extra)%(3*nv), kind)
		opts := Options{
			Stretch: []float64{1.5, 2, 3, 5}[seed&3],
			Faults:  int(faults % 4),
			Mode:    mode,
		}
		seqRes, err := Greedy(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		popts := opts
		popts.Parallelism = parallelism
		popts.Pipeline = pipeline
		parRes, err := Greedy(g, popts)
		if err != nil {
			t.Fatal(err)
		}
		if len(parRes.Kept) != len(seqRes.Kept) {
			t.Fatalf("P=%d D=%d kept %d edges, sequential kept %d",
				parallelism, pipeline, len(parRes.Kept), len(seqRes.Kept))
		}
		for i := range parRes.Kept {
			if parRes.Kept[i] != seqRes.Kept[i] {
				t.Fatalf("P=%d D=%d kept sets diverge at %d: %d != %d",
					parallelism, pipeline, i, parRes.Kept[i], seqRes.Kept[i])
			}
		}
		if sd, pd := seqRes.Spanner.Digest(), parRes.Spanner.Digest(); sd != pd {
			t.Fatalf("P=%d D=%d spanner digest %s != sequential %s", parallelism, pipeline, pd, sd)
		}
		if err := checkCounterConservation(parRes); err != nil {
			t.Fatalf("P=%d D=%d: %v", parallelism, pipeline, err)
		}
	})
}
