// Package core implements the paper's primary contribution: the vertex- and
// edge-fault-tolerant greedy spanner algorithm (Algorithm 1 of Bodwin–Patel,
// PODC 2019).
//
// The algorithm scans edges by increasing weight and keeps edge (u,v) iff
// some fault set F with |F| <= f makes dist_{H\F}(u,v) > k·w(u,v) in the
// spanner H built so far. Correctness of the output as an f-fault-tolerant
// k-spanner is immediate (if an edge is not kept, every fault set leaves a
// within-stretch detour); the paper's contribution is the size analysis,
// which this repository verifies empirically in experiments E1–E6.
//
// Each kept edge's witness fault set F_e is recorded: Lemma 3 turns the
// collection {(x, e) : x ∈ F_e} directly into a (k+1)-blocking set, which
// package blocking consumes.
package core

import (
	"fmt"
	"time"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// Options configures a greedy run.
type Options struct {
	// Stretch is the spanner parameter k >= 1 of Definition 1.
	Stretch float64
	// Faults is the fault-tolerance parameter f >= 0 of Definition 2.
	Faults int
	// Mode selects vertex faults (VFT) or edge faults (EFT).
	Mode fault.Mode
	// Oracle tunes the fault-set search (pruning/memoization ablations).
	// Oracle.EdgeCapacity is set internally.
	Oracle fault.Options
	// Progress, if non-nil, is invoked before each edge scan with the
	// number of edges scanned and kept so far. Returning a non-nil error
	// aborts the build and the greedy returns that error unchanged — the
	// hook is how long-running builds report progress and honor context
	// cancellation without the core depending on context directly.
	Progress func(scanned, kept int) error
}

// Stats captures instrumentation of a run.
type Stats struct {
	// EdgesScanned is the number of input edges processed (all of them).
	EdgesScanned int
	// OracleCalls is the number of fault-set searches (one per edge).
	OracleCalls int64
	// Dijkstras is the total number of shortest-path computations inside
	// the oracle — the honest work unit for runtime experiments (E7).
	Dijkstras int64
	// WitnessHits counts oracle queries answered by revalidating a cached
	// witness fault set instead of running the exponential branching.
	WitnessHits int64
	// WitnessMisses counts oracle queries where the witness cache was
	// consulted but branching still ran. Queries the cache never applies to
	// (no short detour, zero budget, or refuted by the packing bound) count
	// neither way, so hits/(hits+misses) is the cache's true success rate.
	WitnessMisses int64
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// WitnessHitRate returns WitnessHits/(WitnessHits+WitnessMisses), or 0 when
// the witness cache was never consulted.
func (s Stats) WitnessHitRate() float64 {
	if total := s.WitnessHits + s.WitnessMisses; total > 0 {
		return float64(s.WitnessHits) / float64(total)
	}
	return 0
}

// Result is the output of a fault-tolerant greedy run.
type Result struct {
	// Input is the graph the spanner was built from.
	Input *graph.Graph
	// Spanner is H, on the same vertex set; its edge i corresponds to input
	// edge Kept[i].
	Spanner *graph.Graph
	// Kept lists input edge IDs retained, in spanner edge-ID order.
	Kept []int
	// KeptSet is membership over input edge IDs.
	KeptSet *bitset.Set
	// Witness maps each kept input edge ID to the fault set F_e found when
	// the edge was added: vertex IDs in VFT mode; input edge IDs in EFT
	// mode. An empty set means the edge was needed even with no faults.
	Witness map[int][]int
	// Mode, Stretch and Faults echo the options of the run.
	Mode    fault.Mode
	Stretch float64
	Faults  int
	// Stats holds instrumentation counters.
	Stats Stats
}

// Greedy runs the fault-tolerant greedy algorithm on g.
func Greedy(g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if opts.Stretch < 1 {
		return nil, fmt.Errorf("core: stretch must be >= 1, got %v", opts.Stretch)
	}
	if opts.Faults < 0 {
		return nil, fmt.Errorf("core: faults must be >= 0, got %d", opts.Faults)
	}
	if opts.Mode != fault.Vertices && opts.Mode != fault.Edges {
		return nil, fmt.Errorf("core: invalid fault mode %d", int(opts.Mode))
	}

	start := time.Now()
	h := graph.New(g.NumVertices())
	oracleOpts := opts.Oracle
	oracleOpts.EdgeCapacity = g.NumEdges()
	oracle, err := fault.NewOracle(h, opts.Mode, oracleOpts)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Input:   g,
		Spanner: h,
		KeptSet: bitset.New(g.NumEdges()),
		Witness: make(map[int][]int),
		Mode:    opts.Mode,
		Stretch: opts.Stretch,
		Faults:  opts.Faults,
	}
	hToInput := make([]int, 0, g.NumEdges()) // spanner edge ID -> input edge ID

	for _, e := range g.EdgesByWeight() {
		if opts.Progress != nil {
			if err := opts.Progress(res.Stats.EdgesScanned, len(res.Kept)); err != nil {
				return nil, err
			}
		}
		res.Stats.EdgesScanned++
		witness, found, err := oracle.FindFaultSet(e.U, e.V, opts.Stretch*e.Weight, opts.Faults)
		if err != nil {
			return nil, fmt.Errorf("core: edge %d: %w", e.ID, err)
		}
		if !found {
			continue
		}
		h.MustAddEdge(e.U, e.V, e.Weight)
		hToInput = append(hToInput, e.ID)
		res.Kept = append(res.Kept, e.ID)
		res.KeptSet.Add(e.ID)
		if opts.Mode == fault.Edges {
			// The oracle speaks spanner edge IDs; translate to input IDs.
			for i, hid := range witness {
				witness[i] = hToInput[hid]
			}
		}
		res.Witness[e.ID] = witness
	}

	res.Stats.OracleCalls = oracle.Calls()
	res.Stats.Dijkstras = oracle.Dijkstras()
	res.Stats.WitnessHits = oracle.WitnessHits()
	res.Stats.WitnessMisses = oracle.WitnessMisses()
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// GreedyVFT is Greedy with vertex faults (the paper's headline setting).
func GreedyVFT(g *graph.Graph, stretch float64, faults int) (*Result, error) {
	return Greedy(g, Options{Stretch: stretch, Faults: faults, Mode: fault.Vertices})
}

// GreedyEFT is Greedy with edge faults.
func GreedyEFT(g *graph.Graph, stretch float64, faults int) (*Result, error) {
	return Greedy(g, Options{Stretch: stretch, Faults: faults, Mode: fault.Edges})
}
