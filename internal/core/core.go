// Package core implements the paper's primary contribution: the vertex- and
// edge-fault-tolerant greedy spanner algorithm (Algorithm 1 of Bodwin–Patel,
// PODC 2019).
//
// The algorithm scans edges by increasing weight and keeps edge (u,v) iff
// some fault set F with |F| <= f makes dist_{H\F}(u,v) > k·w(u,v) in the
// spanner H built so far. Correctness of the output as an f-fault-tolerant
// k-spanner is immediate (if an edge is not kept, every fault set leaves a
// within-stretch detour); the paper's contribution is the size analysis,
// which this repository verifies empirically in experiments E1–E6.
//
// Each kept edge's witness fault set F_e is recorded: Lemma 3 turns the
// collection {(x, e) : x ∈ F_e} directly into a (k+1)-blocking set, which
// package blocking consumes.
package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// Options configures a greedy run.
type Options struct {
	// Stretch is the spanner parameter k >= 1 of Definition 1.
	Stretch float64
	// Faults is the fault-tolerance parameter f >= 0 of Definition 2.
	Faults int
	// Mode selects vertex faults (VFT) or edge faults (EFT).
	Mode fault.Mode
	// Oracle tunes the fault-set search (pruning/memoization ablations).
	// Oracle.EdgeCapacity is set internally.
	Oracle fault.Options
	// Progress, if non-nil, is invoked before each edge scan with the
	// number of edges scanned and kept so far. Returning a non-nil error
	// aborts the build and the greedy returns that error unchanged — the
	// hook is how long-running builds report progress and honor context
	// cancellation without the core depending on context directly. Under
	// Parallelism the hook still fires once per edge, in scan order, from
	// the commit goroutine; a batch's speculative oracle queries may run
	// before its edges' hooks, so cancellation latency is one batch.
	Progress func(scanned, kept int) error
	// Parallelism enables speculative edge-batch parallelism: consecutive
	// same-weight edges are oracle-queried concurrently by this many workers
	// against an immutable snapshot of the spanner so far, then validated
	// and committed sequentially (see parallel.go). 0 and 1 mean the plain
	// sequential scan. The kept-edge set is identical at every setting; only
	// Stats (work counters, witnesses found) may differ. GreedyConservative
	// ignores this field.
	Parallelism int
	// Pipeline bounds how many speculative batches may be in flight at once
	// (Parallelism > 1 only): while the scan goroutine validates and commits
	// batch i, the workers already speculate on batches i+1..i+Pipeline-1
	// against their own snapshots. 0 selects the default depth
	// (defaultPipelineDepth); 1 disables the overlap — each batch fully
	// speculates, then commits, before the next one starts. The kept-edge
	// set is identical at every depth; deeper pipelines trade staler
	// snapshots (more revalidation, more SpecWaste) for less commit-stall.
	Pipeline int
	// Phase, if non-nil, receives build-phase boundary events from the
	// speculative engine: a batch dispatched to the workers, a batch's
	// commit walk finished, a re-speculation round resolved. Always called
	// from the scan goroutine (never concurrently), in event order, and only
	// under Parallelism > 1 — the sequential scan has no internal phases.
	// The hook is observational: it cannot abort the build (that is
	// Progress's job), and the greedy's decisions are identical with and
	// without it.
	Phase func(PhaseInfo)
	// Chaos, if non-nil, is invoked at fault-injection sites with the site
	// name: "oracle-query" (inside every fault-oracle search, any
	// goroutine), "pipeline-worker" (once per speculative batch per
	// worker), and "respec-round" (once per re-speculation goroutine). A
	// test hook panicking here exercises the engine's panic containment:
	// speculation goroutines recover into a *PanicError on the affected
	// edge's result slot, so the build fails cleanly instead of killing
	// the process. Nil in production.
	Chaos func(site string)
}

// Chaos site names passed to Options.Chaos.
const (
	ChaosSiteOracle = "oracle-query"
	ChaosSiteWorker = "pipeline-worker"
	ChaosSiteRespec = "respec-round"
)

// PanicError is a panic recovered inside one of the greedy's speculation
// goroutines, surfaced as the build error: the panic value and stack are
// preserved so the caller can report them without the process dying.
type PanicError struct {
	// Site is the chaos-site name of the goroutine that panicked.
	Site string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Site, e.Value)
}

// chaos fires the Options.Chaos hook, if any, for site.
func (b *builder) chaos(site string) {
	if b.opts.Chaos != nil {
		b.opts.Chaos(site)
	}
}

// Phase names delivered in PhaseInfo.Phase.
const (
	// PhaseBatchSpeculate fires when a same-weight batch is snapshot and
	// fanned out to the speculation workers.
	PhaseBatchSpeculate = "batch-speculate"
	// PhaseBatchCommit fires when a batch's commit walk (including its
	// re-speculation rounds) completes.
	PhaseBatchCommit = "batch-commit"
	// PhaseRespecRound fires after each parallel re-speculation round over a
	// batch's invalidated edges.
	PhaseRespecRound = "respec-round"
)

// PhaseInfo describes one build-phase boundary, delivered to Options.Phase.
// Unused fields are zero for a given phase.
type PhaseInfo struct {
	// Phase is one of the Phase* constants.
	Phase string
	// Batch is the speculative batch ordinal, in dispatch order for
	// PhaseBatchSpeculate and commit order for the other phases (the
	// pipeline dispatches ahead of commits, so the two orders interleave).
	Batch int
	// Edges is the batch length (batch phases) or the number of edges
	// re-queried (PhaseRespecRound).
	Edges int
	// Kept is the total kept-edge count when the event fired.
	Kept int
	// Pending is the still-unresolved edge count after a re-speculation
	// round (PhaseRespecRound only).
	Pending int
	// WitnessHits is the live oracle's cumulative witness-cache hit count —
	// the "witness-cache episode" marker: a trace can read cache warmth off
	// consecutive events' deltas.
	WitnessHits int64
}

// Stats captures instrumentation of a run.
type Stats struct {
	// EdgesScanned is the number of input edges processed (all of them).
	EdgesScanned int
	// OracleCalls is the number of fault-set searches: one per edge for a
	// sequential build; under Parallelism > 1 it also counts speculative
	// batch queries and re-queries of invalidated speculation, so it exceeds
	// EdgesScanned by roughly SpecWaste.
	OracleCalls int64
	// Dijkstras is the total number of shortest-path computations inside
	// the oracle — the honest work unit for runtime experiments (E7).
	Dijkstras int64
	// WitnessHits counts oracle queries answered by revalidating a cached
	// witness fault set instead of running the exponential branching.
	WitnessHits int64
	// WitnessMisses counts oracle queries where the witness cache was
	// consulted but branching still ran. Queries the cache never applies to
	// (no short detour, zero budget, or refuted by the packing bound) count
	// neither way, so hits/(hits+misses) is the cache's true success rate.
	WitnessMisses int64
	// SpecBatches counts same-weight edge batches that were speculated on
	// concurrently (Parallelism > 1 only).
	SpecBatches int64
	// SpecQueries counts speculative oracle queries issued against spanner
	// snapshots by the batch workers.
	SpecQueries int64
	// SpecHits counts batch edges whose speculative answer was committed
	// without re-running the full oracle query: exact drops, commits against
	// an unchanged snapshot, and witnesses salvaged by one-Dijkstra
	// revalidation.
	SpecHits int64
	// SpecWaste counts speculative answers that were invalidated by an
	// earlier commit and discarded — each such edge re-enters a
	// re-speculation round (or a live re-query when it is the round's sole
	// straggler). The price of speculation: SpecHits + SpecWaste ==
	// SpecQueries always.
	SpecWaste int64
	// SpecRounds counts re-speculation rounds: parallel re-query passes over
	// a batch's invalidated edges against a fresh snapshot (the all-equal-
	// weight worst case resolves through these instead of a sequential
	// fallback).
	SpecRounds int64
	// SpecRequeries counts invalidated edges resolved by a single live
	// sequential re-query because they were the only straggler left — a
	// snapshot plus worker dispatch would cost more than the one query.
	SpecRequeries int64
	// PipelineDepth is the effective Options.Pipeline the run used (0 for
	// sequential scans).
	PipelineDepth int
	// WitnessSeedTries/WitnessSeedHits count the oracle's structural seed
	// trials (singleton fault candidates read off the current path's
	// structure) and the queries they answered; seed hits are a subset of
	// WitnessHits.
	WitnessSeedTries int64
	WitnessSeedHits  int64
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// SpecHitRate returns the fraction of speculative-path edges whose final
// decision came from a speculative (snapshot) answer rather than a live
// sequential re-query: SpecHits/(SpecHits+SpecRequeries), or 0 when no
// edges went through the speculative path. Since every speculative-path
// edge is decided exactly once, this is the parallelizable fraction of the
// scan — the number that turns into wall-clock speedup on multi-core hosts.
// Per-QUERY efficiency (answers used vs discarded across re-speculation
// rounds) is SpecHits/SpecQueries, reconstructible from the counters.
func (s Stats) SpecHitRate() float64 {
	if total := s.SpecHits + s.SpecRequeries; total > 0 {
		return float64(s.SpecHits) / float64(total)
	}
	return 0
}

// WitnessHitRate returns WitnessHits/(WitnessHits+WitnessMisses), or 0 when
// the witness cache was never consulted.
func (s Stats) WitnessHitRate() float64 {
	if total := s.WitnessHits + s.WitnessMisses; total > 0 {
		return float64(s.WitnessHits) / float64(total)
	}
	return 0
}

// Result is the output of a fault-tolerant greedy run.
type Result struct {
	// Input is the graph the spanner was built from.
	Input *graph.Graph
	// Spanner is H, on the same vertex set; its edge i corresponds to input
	// edge Kept[i].
	Spanner *graph.Graph
	// Kept lists input edge IDs retained, in spanner edge-ID order.
	Kept []int
	// KeptSet is membership over input edge IDs.
	KeptSet *bitset.Set
	// Witness maps each kept input edge ID to the fault set F_e found when
	// the edge was added: vertex IDs in VFT mode; input edge IDs in EFT
	// mode. An empty set means the edge was needed even with no faults.
	Witness map[int][]int
	// Mode, Stretch and Faults echo the options of the run.
	Mode    fault.Mode
	Stretch float64
	Faults  int
	// Stats holds instrumentation counters.
	Stats Stats
}

// Greedy runs the fault-tolerant greedy algorithm on g. With
// Options.Parallelism > 1 the edge scan speculates over same-weight batches
// on a worker pool; the kept-edge set is guaranteed identical to the
// sequential scan's (see parallel.go for the argument).
func Greedy(g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if opts.Stretch < 1 {
		return nil, fmt.Errorf("core: stretch must be >= 1, got %v", opts.Stretch)
	}
	if opts.Faults < 0 {
		return nil, fmt.Errorf("core: faults must be >= 0, got %d", opts.Faults)
	}
	if opts.Mode != fault.Vertices && opts.Mode != fault.Edges {
		return nil, fmt.Errorf("core: invalid fault mode %d", int(opts.Mode))
	}
	if opts.Parallelism < 0 {
		return nil, fmt.Errorf("core: parallelism must be >= 0, got %d", opts.Parallelism)
	}
	if opts.Pipeline < 0 || opts.Pipeline > MaxPipeline {
		return nil, fmt.Errorf("core: pipeline must be in [0,%d], got %d", MaxPipeline, opts.Pipeline)
	}

	start := time.Now()
	h := graph.New(g.NumVertices())
	oracleOpts := opts.Oracle
	oracleOpts.EdgeCapacity = g.NumEdges()
	if opts.Chaos != nil {
		chaos := opts.Chaos
		oracleOpts.Chaos = func() { chaos(ChaosSiteOracle) }
	}
	oracle, err := fault.NewOracle(h, opts.Mode, oracleOpts)
	if err != nil {
		return nil, err
	}

	b := &builder{
		g:          g,
		h:          h,
		opts:       opts,
		oracleOpts: oracleOpts,
		live:       oracle,
		res: &Result{
			Input:   g,
			Spanner: h,
			KeptSet: bitset.New(g.NumEdges()),
			Witness: make(map[int][]int),
			Mode:    opts.Mode,
			Stretch: opts.Stretch,
			Faults:  opts.Faults,
		},
		hToInput: make([]int, 0, g.NumEdges()),
	}

	edges := g.EdgesByWeight()
	if opts.Parallelism > 1 {
		err = b.scanParallel(edges)
	} else {
		err = b.scanSequential(edges)
	}
	if err != nil {
		return nil, err
	}

	// Fold the per-goroutine oracle counters into the run's Stats. The scan
	// has fully torn down its worker pool and re-speculation rounds by now
	// (scanParallel joins every goroutine before returning, on success and
	// error alike), so every counter below is quiescent: each oracle is read
	// exactly once, after its last query — no lost updates, no double
	// counting of re-speculated batches.
	res := b.res
	for _, o := range append(append([]*fault.Oracle{b.live}, b.workers...), b.rounders...) {
		res.Stats.OracleCalls += o.Calls()
		res.Stats.Dijkstras += o.Dijkstras()
		res.Stats.WitnessHits += o.WitnessHits()
		res.Stats.WitnessMisses += o.WitnessMisses()
		res.Stats.WitnessSeedTries += o.WitnessSeedTries()
		res.Stats.WitnessSeedHits += o.WitnessSeedHits()
	}
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// builder carries one greedy run's mutable state: the growing spanner, the
// live oracle bound to it, and the result being assembled. The sequential
// and parallel scans share its bookkeeping so they cannot diverge on
// anything but scheduling.
type builder struct {
	g          *graph.Graph
	h          *graph.Graph
	opts       Options
	oracleOpts fault.Options
	live       *fault.Oracle
	res        *Result
	hToInput   []int // spanner edge ID -> input edge ID

	// workers are the per-goroutine speculation oracles (Parallelism > 1),
	// one per pipeline worker, re-aimed at each batch's snapshot; rounders
	// are their re-speculation-round counterparts, kept separate because
	// rounds run while the pipeline workers are busy with future batches.
	// Both sets' counters fold into Stats at the end of the run.
	workers  []*fault.Oracle
	rounders []*fault.Oracle

	// Pipeline plumbing (see parallel.go): per-worker dispatch channels, an
	// abort flag that drains queued batches fast on error, and free lists
	// recycling snapshots, in-flight descriptors, and round scratch.
	specChans  []chan *inflight
	specAbort  atomic.Bool
	freeSnaps  []*graph.Graph
	freeFl     []*inflight
	pendingBuf []int
	roundRes   []specResult

	// committedBatches numbers PhaseBatchCommit/PhaseRespecRound events; it
	// trails Stats.SpecBatches by the pipeline's in-flight count.
	committedBatches int
}

// emitPhase delivers one phase-boundary event to the Options.Phase hook.
// Only ever called from the scan goroutine.
func (b *builder) emitPhase(info PhaseInfo) {
	if b.opts.Phase != nil {
		b.opts.Phase(info)
	}
}

func (b *builder) scanSequential(edges []graph.Edge) error {
	for _, e := range edges {
		if err := b.step(); err != nil {
			return err
		}
		if err := b.scanOne(e); err != nil {
			return err
		}
	}
	return nil
}

// step fires the Progress hook and counts the edge about to be decided.
func (b *builder) step() error {
	if b.opts.Progress != nil {
		if err := b.opts.Progress(b.res.Stats.EdgesScanned, len(b.res.Kept)); err != nil {
			return err
		}
	}
	b.res.Stats.EdgesScanned++
	return nil
}

// scanOne decides one edge exactly with the live oracle against the current
// spanner — the sequential hot path, and the parallel path's fallback for
// invalidated speculation.
func (b *builder) scanOne(e graph.Edge) error {
	witness, found, err := b.live.FindFaultSet(e.U, e.V, b.opts.Stretch*e.Weight, b.opts.Faults)
	if err != nil {
		return fmt.Errorf("core: edge %d: %w", e.ID, err)
	}
	if found {
		b.commit(e, witness)
	}
	return nil
}

// commit keeps edge e with the given witness fault set (spanner IDs in edge
// mode; translated to input IDs here). The witness slice is owned by the
// builder after this call.
func (b *builder) commit(e graph.Edge, witness []int) {
	b.h.MustAddEdge(e.U, e.V, e.Weight)
	b.hToInput = append(b.hToInput, e.ID)
	b.res.Kept = append(b.res.Kept, e.ID)
	b.res.KeptSet.Add(e.ID)
	if b.opts.Mode == fault.Edges {
		// The oracle speaks spanner edge IDs; translate to input IDs.
		for i, hid := range witness {
			witness[i] = b.hToInput[hid]
		}
	}
	b.res.Witness[e.ID] = witness
}

// GreedyVFT is Greedy with vertex faults (the paper's headline setting).
func GreedyVFT(g *graph.Graph, stretch float64, faults int) (*Result, error) {
	return Greedy(g, Options{Stretch: stretch, Faults: faults, Mode: fault.Vertices})
}

// GreedyEFT is Greedy with edge faults.
func GreedyEFT(g *graph.Graph, stretch float64, faults int) (*Result, error) {
	return Greedy(g, Options{Stretch: stretch, Faults: faults, Mode: fault.Edges})
}
