package core

import (
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
)

// The chaos tests use all-equal-weight instances: one giant batch, so every
// build exercises the speculative worker pool (and usually re-speculation
// rounds too).

// TestChaosPanicInWorkerContained injects a single panic into one pipeline
// worker. The panic fires before the worker claims any result slot, so the
// surviving workers absorb the batch: the build must either succeed with a
// result byte-identical to the chaos-free one (full absorption) or fail
// with a clean contained error — never crash the process.
func TestChaosPanicInWorkerContained(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := randomInstance(rng, 60, 240, weightsAllEqual)
	opts := Options{Stretch: 3, Faults: 2, Mode: fault.Vertices, Parallelism: 4}
	base, err := Greedy(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Bool
	chaosOpts := opts
	chaosOpts.Chaos = func(site string) {
		if site == ChaosSiteWorker && fired.CompareAndSwap(false, true) {
			panic("injected worker panic")
		}
	}
	res, err := Greedy(g, chaosOpts)
	if !fired.Load() {
		t.Fatal("chaos hook never fired on the worker site")
	}
	switch {
	case err == nil:
		if res.Spanner.Digest() != base.Spanner.Digest() {
			t.Errorf("surviving workers produced a different spanner: %s vs %s",
				res.Spanner.Digest(), base.Spanner.Digest())
		}
	default:
		var pe *PanicError
		if errors.As(err, &pe) {
			if pe.Site != ChaosSiteWorker {
				t.Errorf("panic site %q, want %q", pe.Site, ChaosSiteWorker)
			}
			if len(pe.Stack) == 0 {
				t.Error("panic error carries no stack")
			}
		} else if !strings.Contains(err.Error(), "lost batch to panics") {
			t.Fatalf("error %v is neither a PanicError nor a lost-batch report", err)
		}
	}
}

// TestChaosAllWorkersPanic breaks every worker: the batch can never be
// claimed to completion, and the cursor check must turn that into an error
// rather than committing unclaimed zero-value answers as silent drops.
func TestChaosAllWorkersPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomInstance(rng, 60, 240, weightsAllEqual)
	_, err := Greedy(g, Options{
		Stretch:     3,
		Faults:      2,
		Mode:        fault.Vertices,
		Parallelism: 4,
		Chaos: func(site string) {
			if site == ChaosSiteWorker {
				panic("injected: all workers")
			}
		},
	})
	if err == nil {
		t.Fatal("Greedy succeeded with every speculation worker panicking")
	}
	var pe *PanicError
	if !errors.As(err, &pe) && !strings.Contains(err.Error(), "lost") {
		t.Fatalf("unexpected containment error: %v", err)
	}
}

// TestChaosPanicInOracleContained detonates inside an oracle query on a
// speculation worker; the worker-recovery path must contain it like any
// other worker panic.
func TestChaosPanicInOracleContained(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := randomInstance(rng, 60, 240, weightsAllEqual)
	var fired atomic.Bool
	_, err := Greedy(g, Options{
		Stretch:     3,
		Faults:      2,
		Mode:        fault.Vertices,
		Parallelism: 4,
		Chaos: func(site string) {
			if site == ChaosSiteOracle && fired.CompareAndSwap(false, true) {
				panic("injected oracle panic")
			}
		},
	})
	// The panic fires inside FindFaultSet. If a speculation worker ran the
	// query, containment yields an error; if the live (sequential-path)
	// oracle ran it first, the panic escapes core by design and the service
	// layer contains it — so tolerate only a contained error here by making
	// the graph all-equal-weight (one giant speculative batch, no inline
	// path before the first dispatch).
	if err == nil {
		t.Fatal("Greedy succeeded despite an injected oracle panic")
	}
	var pe *PanicError
	if !errors.As(err, &pe) && !strings.Contains(err.Error(), "lost") {
		t.Fatalf("unexpected containment error: %v", err)
	}
}

// TestChaosRespecPanicContained panics in a re-speculation round goroutine.
// Forcing rounds: equal weights plus enough faults that many speculative
// "found" answers invalidate and re-enter rounds.
func TestChaosRespecPanicContained(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := randomInstance(rng, 60, 240, weightsAllEqual)
	var sawRound atomic.Bool
	_, err := Greedy(g, Options{
		Stretch:     3,
		Faults:      2,
		Mode:        fault.Vertices,
		Parallelism: 4,
		Chaos: func(site string) {
			if site == ChaosSiteRespec {
				sawRound.Store(true)
				panic("injected respec panic")
			}
		},
	})
	if !sawRound.Load() {
		t.Skip("instance produced no re-speculation round; nothing to contain")
	}
	if err == nil {
		t.Fatal("Greedy succeeded despite an injected re-speculation panic")
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		if pe.Site != ChaosSiteRespec {
			t.Errorf("panic site %q, want %q", pe.Site, ChaosSiteRespec)
		}
	} else if !strings.Contains(err.Error(), "lost") {
		t.Fatalf("unexpected containment error: %v", err)
	}
}

// TestChaosNilHookIsFree pins that a nil Chaos hook changes nothing: same
// kept set as a chaos-free build.
func TestChaosNilHookIsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := randomInstance(rng, 40, 120, weightsQuantized)
	base, err := Greedy(g, Options{Stretch: 3, Faults: 1, Mode: fault.Vertices, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	withHook, err := Greedy(g, Options{
		Stretch: 3, Faults: 1, Mode: fault.Vertices, Parallelism: 3,
		Chaos: func(string) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Spanner.Digest() != withHook.Spanner.Digest() {
		t.Errorf("benign chaos hook changed the result: %s vs %s",
			base.Spanner.Digest(), withHook.Spanner.Digest())
	}
}
