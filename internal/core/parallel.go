// Pipelined speculative edge-batch parallelism for the fault-tolerant
// greedy.
//
// The greedy scans edges by increasing weight and asks the fault oracle one
// exact question per edge against the spanner H built so far. The scan looks
// inherently sequential — each answer may change H for the next question —
// but speculation makes most of it parallel, resting on one monotonicity
// fact (the "monotone lift"): adding edges to H only shrinks the set of
// valid fault sets, because any F that stretches (u,v) in H' ⊇ H also does
// so in H — forbid F ∩ H and the H-distance can only be larger. Hence an
// oracle answer computed against ANY earlier snapshot S ⊆ H stays exact in
// one direction: "no fault set against S" implies "none against H". Only
// "found witness" answers need re-checking, and exhibiting the witness
// against the live H (one bounded Dijkstra via Oracle.ValidateWitness) is a
// complete re-check — the existence question is answered by the exhibit, no
// search needed.
//
// The engine built on that fact has three layers:
//
//  1. Speculation (PR 3): each maximal run of >= minSpeculativeBatch
//     same-weight edges is snapshot, fanned out over Parallelism workers
//     (each owning a private oracle re-aimed via Rebind), and then validated
//     and committed sequentially in exact scan order.
//
//  2. Pipelining (this PR): the scan goroutine no longer stalls between
//     "speculation done" and "commit done". Up to Options.Pipeline batches
//     are in flight at once: their snapshots are taken eagerly (snapshots
//     are valid however stale — see the lift above) and pushed down
//     per-worker channels, so while the scan goroutine walks batch i's
//     answers the workers are already querying batch i+1. Commits stay
//     strictly in scan order; graph.Snapshot explicitly permits concurrent
//     snapshot reads while the parent gains edges, which is what makes the
//     overlap sound. Short batches (below minSpeculativeBatch, in
//     particular the all-distinct-weight regime) flow through the same
//     in-order commit cursor but are decided inline against the live
//     oracle, with zero snapshot or dispatch overhead.
//
//  3. Re-speculation rounds (this PR): an invalidated "found witness"
//     answer used to fall back to a sequential live re-query — which made
//     the all-equal-weight worst case (one batch spanning the whole scan,
//     nearly every edge kept) effectively sequential. Instead, a batch's
//     invalidated edges are collected and re-run as a second (then third,
//     ...) parallel round against a fresh snapshot. Each round resolves all
//     its "no fault set" answers (monotone lift) plus at least its first
//     "found" answer (the round snapshot is exact until the round's first
//     commit), so rounds strictly shrink and the loop terminates. A round
//     with a single straggler short-circuits to one live re-query
//     (Stats.SpecRequeries): a snapshot plus dispatch would cost more than
//     the query itself.
//
// Commit-order invariants that keep the kept-edge set byte-identical to the
// sequential scan at every (Parallelism, Pipeline) setting:
//
//   - batches commit in scan order; within a batch, edges are DECIDED in
//     scan order except that a deferred (invalidated) edge suspends every
//     later "found" decision in that batch — a later keep may not be
//     committed while an earlier edge is unresolved, since resolving it
//     could add an edge that invalidates the later witness. Drops are never
//     suspended: the monotone lift makes them exact regardless of how the
//     pending edges resolve.
//   - a speculative "found" answer is committed as-is only when H has
//     gained no edge since the answer's snapshot (tracked by edge count —
//     H only ever appends); otherwise its witness must survive
//     ValidateWitness against the live H.
//
// Together these reproduce, for every edge, exactly the sequential
// algorithm's decision state: when edge e is decided, H equals the
// sequential prefix-spanner for e. The differential suite in
// parallel_test.go pins kept-set and spanner-digest identity across the
// full (weight structure × mode × Parallelism × Pipeline) matrix, and the
// fuzz target in fuzz_test.go hammers the re-speculation commit logic.
//
// Work accounting is conservation-checked: every speculative query ends as
// exactly one of SpecHits (its answer produced the edge's final decision)
// or SpecWaste (discarded, the edge re-entered a round), so SpecHits +
// SpecWaste == SpecQueries; and every edge that entered the speculative
// path is decided exactly once, by a speculative answer or by a live
// straggler re-query, so batch edges == SpecHits + SpecRequeries.
package core

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// minSpeculativeBatch is the smallest same-weight run worth a snapshot and
// worker dispatch; shorter runs (in particular all singletons, the
// distinct-weight regime) take the inline sequential path with zero
// overhead.
const minSpeculativeBatch = 2

// defaultPipelineDepth is the Options.Pipeline value selected by 0: one
// batch committing while one speculates. Deeper pipelines only pay off when
// commit passes are long relative to speculation (many revalidations), and
// every extra slot costs snapshot staleness.
const defaultPipelineDepth = 2

// MaxPipeline bounds Options.Pipeline: each in-flight slot pins a snapshot
// and a results buffer, so an unbounded depth would be a memory lever with
// no latency left to hide. Exported so spec-validating callers (the
// service) reject over-limit values at submission instead of at build time.
const MaxPipeline = 64

// respecChunkPerWorker sizes a re-speculation round's query chunk as a
// multiple of the worker count: enough slack that the round's committable
// prefix rarely ends inside the chunk's first wave, small enough that a
// validation failure early in the chunk does not waste a backlog-sized
// sweep (see respeculate).
const respecChunkPerWorker = 4

// specResult is one worker's speculative answer for one batch edge.
type specResult struct {
	witness []int
	found   bool
	err     error
}

// inflight is one speculative batch moving through the pipeline: the edges,
// the snapshot they were queried against, and the per-edge answers. Workers
// claim edge indexes through next and announce completion through wg; the
// scan goroutine waits on wg before walking results. Descriptors are
// recycled across batches (see builder.getInflight).
type inflight struct {
	edges     []graph.Edge
	snap      *graph.Graph
	snapEdges int // spanner edge count at snapshot time
	results   []specResult
	next      atomic.Int64
	wg        sync.WaitGroup
}

// scanParallel is the Parallelism > 1 edge scan: a bounded pipeline of
// speculative batches with strictly in-order commits.
func (b *builder) scanParallel(edges []graph.Edge) error {
	depth := b.opts.Pipeline
	if depth == 0 {
		depth = defaultPipelineDepth
	}
	b.res.Stats.PipelineDepth = depth
	workers := b.opts.Parallelism

	// Split the scan into maximal same-weight batches once, so the dispatch
	// lookahead below can run ahead of the commit cursor.
	var batches [][]graph.Edge
	for start := 0; start < len(edges); {
		end := start + 1
		for end < len(edges) && edges[end].Weight == edges[start].Weight {
			end++
		}
		batches = append(batches, edges[start:end])
		start = end
	}

	// Persistent worker pool: one goroutine + one private oracle per worker,
	// fed by a per-worker channel with room for the whole pipeline. Every
	// speculative batch is fanned out to every worker; workers claim edge
	// indexes from the batch's shared cursor, so a batch smaller than the
	// pool simply leaves the surplus workers to move on.
	for len(b.workers) < workers {
		o, err := fault.NewOracle(b.h, b.opts.Mode, b.oracleOpts)
		if err != nil {
			return err
		}
		b.workers = append(b.workers, o)
	}
	b.specChans = make([]chan *inflight, workers)
	for w := range b.specChans {
		b.specChans[w] = make(chan *inflight, depth)
	}
	var pool sync.WaitGroup
	for w := 0; w < workers; w++ {
		pool.Add(1)
		go func(w int) {
			defer pool.Done()
			b.specWorker(b.workers[w], b.specChans[w])
		}(w)
	}
	// Teardown runs on success and error alike: the abort flag makes
	// workers drain still-queued batches without querying, and the join
	// guarantees Greedy reads quiescent oracle counters.
	defer func() {
		b.specAbort.Store(true)
		for _, ch := range b.specChans {
			close(ch)
		}
		pool.Wait()
		b.specChans = nil
		b.specAbort.Store(false)
	}()

	// In-order commit cursor with a dispatch lookahead: at most depth
	// speculative batches are in flight (snapshot taken, queued to the
	// workers) at any time. Short batches neither snapshot nor count
	// against the depth.
	inFlight := 0
	spec := make(map[int]*inflight, depth)
	nextDispatch := 0
	for i, batch := range batches {
		// The fill loop always runs past index i before the decision below
		// (inFlight counts only batches in [i, nextDispatch), so a stalled
		// dispatcher implies a free slot), so a spec-sized batch is always
		// dispatched by its commit turn.
		for inFlight < depth && nextDispatch < len(batches) {
			if len(batches[nextDispatch]) >= minSpeculativeBatch {
				spec[nextDispatch] = b.dispatch(batches[nextDispatch])
				inFlight++
			}
			nextDispatch++
		}
		fl, ok := spec[i]
		if !ok {
			// Short batch: decide inline against the live oracle, exactly
			// like the sequential scan.
			for _, e := range batch {
				if err := b.step(); err != nil {
					return err
				}
				if err := b.scanOne(e); err != nil {
					return err
				}
			}
			continue
		}
		delete(spec, i)
		err := b.commitInflight(fl)
		inFlight--
		b.putInflight(fl)
		if err != nil {
			return err
		}
	}
	return nil
}

// specWorker serves one pipeline worker: re-aim the private oracle at each
// arriving batch's snapshot, then claim and answer edges until the batch is
// exhausted. Every result slot is written by exactly one worker before that
// worker's wg.Done, so the scan goroutine's wg.Wait orders all writes
// before its reads. A panic inside a batch (the oracle, or the injected
// Chaos hook) is contained by specBatch; the worker then stops querying —
// its oracle state is suspect — but keeps draining arrivals so the pipeline
// never deadlocks on a missing wg.Done.
func (b *builder) specWorker(o *fault.Oracle, ch <-chan *inflight) {
	broken := false
	for fl := range ch {
		if broken || b.specAbort.Load() {
			fl.wg.Done()
			continue
		}
		broken = b.specBatch(o, fl)
	}
}

// specBatch answers one batch's share of edges, recovering any panic into a
// *PanicError on the claimed slot so the commit walk surfaces it as a clean
// build error. Claims advance a shared cursor, so the claimed slots of all
// workers form a contiguous prefix: an error slot is always reached by the
// commit walk before any slot that was never written (and the walk also
// cursor-checks for the all-workers-broken case, see commitInflight).
// Returns whether the worker broke.
func (b *builder) specBatch(o *fault.Oracle, fl *inflight) (broken bool) {
	claimed := -1
	defer fl.wg.Done()
	defer func() {
		if v := recover(); v != nil {
			broken = true
			if claimed >= 0 {
				fl.results[claimed] = specResult{err: &PanicError{
					Site: ChaosSiteWorker, Value: v, Stack: debug.Stack(),
				}}
			}
		}
	}()
	b.chaos(ChaosSiteWorker)
	rebindErr := o.Rebind(fl.snap)
	for {
		i := int(fl.next.Add(1)) - 1
		if i >= len(fl.edges) {
			return false
		}
		claimed = i
		if rebindErr != nil {
			fl.results[i] = specResult{err: rebindErr}
			continue
		}
		e := fl.edges[i]
		wit, found, err := o.FindFaultSet(e.U, e.V, b.opts.Stretch*e.Weight, b.opts.Faults)
		fl.results[i] = specResult{witness: wit, found: found, err: err}
	}
}

// dispatch snapshots the live spanner for one speculative batch and fans it
// out to every pipeline worker.
func (b *builder) dispatch(batch []graph.Edge) *inflight {
	fl := b.getInflight(len(batch))
	fl.edges = batch
	fl.snap = b.h.SnapshotInto(fl.snap)
	fl.snapEdges = b.h.NumEdges()
	fl.wg.Add(len(b.specChans))
	for _, ch := range b.specChans {
		ch <- fl
	}
	b.res.Stats.SpecBatches++
	b.res.Stats.SpecQueries += int64(len(batch))
	b.emitPhase(PhaseInfo{
		Phase:       PhaseBatchSpeculate,
		Batch:       int(b.res.Stats.SpecBatches) - 1,
		Edges:       len(batch),
		Kept:        len(b.res.Kept),
		WitnessHits: b.live.WitnessHits(),
	})
	return fl
}

// getInflight returns a recycled (or fresh) in-flight descriptor with a
// results buffer for n edges. Its snap field may hold a recyclable snapshot
// view for SnapshotInto.
func (b *builder) getInflight(n int) *inflight {
	var fl *inflight
	if k := len(b.freeFl); k > 0 {
		fl, b.freeFl = b.freeFl[k-1], b.freeFl[:k-1]
	} else {
		fl = &inflight{}
	}
	if cap(fl.results) < n {
		fl.results = make([]specResult, n)
	}
	fl.results = fl.results[:n]
	fl.next.Store(0)
	return fl
}

// putInflight recycles a committed batch's descriptor. Safe because
// commitInflight has waited out every worker touching it, and the workers'
// oracles do not read their snapshot again until the next Rebind.
func (b *builder) putInflight(fl *inflight) {
	fl.edges = nil
	b.freeFl = append(b.freeFl, fl)
}

// commitInflight turns one batch's speculative answers into exact commit
// decisions: a scan-order walk applying the monotone-lift and
// witness-revalidation rules, then re-speculation rounds over whatever the
// walk had to defer.
func (b *builder) commitInflight(fl *inflight) error {
	fl.wg.Wait()
	// Claims form a contiguous prefix of the cursor; if every worker broke
	// (panicked) before the batch was exhausted, the tail slots were never
	// written and their zero value would silently read as "drop". The
	// prefix's own error slots are caught by the walk below.
	if int(fl.next.Load()) < len(fl.edges) {
		return fmt.Errorf("core: speculation pool lost batch to panics (%d/%d edges unclaimed)",
			len(fl.edges)-int(fl.next.Load()), len(fl.edges))
	}
	pending := b.pendingBuf[:0]
	for i := range fl.edges {
		e := fl.edges[i]
		if err := b.step(); err != nil {
			b.pendingBuf = pending[:0]
			return err
		}
		r := fl.results[i]
		if r.err != nil {
			b.pendingBuf = pending[:0]
			return fmt.Errorf("core: edge %d: %w", e.ID, r.err)
		}
		if !r.found {
			// Monotone lift: exact whatever happened since the snapshot —
			// earlier commits, earlier pipelined batches, pending edges.
			b.res.Stats.SpecHits++
			continue
		}
		if len(pending) == 0 {
			if b.h.NumEdges() == fl.snapEdges {
				// H has not changed since the snapshot; the speculative
				// witness is exact as-is.
				b.res.Stats.SpecHits++
				b.live.NoteWitness(r.witness)
				b.commit(e, r.witness)
				continue
			}
			ok, err := b.live.ValidateWitness(e.U, e.V, b.opts.Stretch*e.Weight, r.witness)
			if err != nil {
				b.pendingBuf = pending[:0]
				return fmt.Errorf("core: edge %d: %w", e.ID, err)
			}
			if ok {
				// The stale witness survived revalidation against the live
				// spanner: the edge must be kept, one Dijkstra total.
				b.res.Stats.SpecHits++
				b.live.NoteWitness(r.witness)
				b.commit(e, r.witness)
				continue
			}
			// A witness refuted against the live H stays refuted against
			// every later H (the lift again): it is useless as a hint.
			fl.results[i].witness = nil
		}
		// Invalidated — or unresolvable until the pending edges before it
		// are: defer to a re-speculation round, keeping any still-plausible
		// witness as that round's hint. This speculative answer is spent
		// either way.
		b.res.Stats.SpecWaste++
		pending = append(pending, i)
	}

	var err error
	for len(pending) > 0 && err == nil {
		if len(pending) == 1 {
			// A single straggler: one (hinted) live re-query beats a
			// snapshot plus worker dispatch.
			b.res.Stats.SpecRequeries++
			i := pending[0]
			e := fl.edges[i]
			wit, found, qerr := b.live.FindFaultSetHinted(
				e.U, e.V, b.opts.Stretch*e.Weight, b.opts.Faults, fl.results[i].witness)
			if qerr != nil {
				err = fmt.Errorf("core: edge %d: %w", e.ID, qerr)
			} else if found {
				b.commit(e, wit)
			}
			pending = pending[:0]
			break
		}
		pending, err = b.respeculate(fl, pending)
	}
	b.pendingBuf = pending[:0]
	if err == nil {
		b.emitPhase(PhaseInfo{
			Phase:       PhaseBatchCommit,
			Batch:       b.committedBatches,
			Edges:       len(fl.edges),
			Kept:        len(b.res.Kept),
			WitnessHits: b.live.WitnessHits(),
		})
		b.committedBatches++
	}
	return err
}

// respeculate runs one re-speculation round: re-query the HEAD of the
// pending list in parallel against a fresh snapshot of the live spanner,
// then walk the answers with the same scan-order commit rules. It returns
// the edges that are still unresolved (strictly fewer than it was given:
// the round's drops are exact, and its first "found" answer commits as-is
// because the round snapshot is fresh until the round's own first commit).
//
// Only a bounded chunk of the backlog is queried per round. Commits must
// stay in scan order, so a round can never resolve past its first
// still-invalid answer — querying the whole backlog would spend
// |pending| queries to resolve only the committable prefix, turning a
// keep-dense all-equal-weight scan quadratic. Chunking bounds each round's
// work by the worker pool instead, and the untouched tail re-enters later
// rounds against even fresher snapshots (when most speculative keeps are
// destined to flip to drops, fresher is cheaper).
//
// Rounds use their own oracle pool: the pipeline workers are, by design,
// busy speculating on future batches while rounds run.
func (b *builder) respeculate(fl *inflight, pending []int) ([]int, error) {
	b.res.Stats.SpecRounds++
	chunk := respecChunkPerWorker * b.opts.Parallelism
	head, tail := pending, []int(nil)
	if len(pending) > chunk {
		head, tail = pending[:chunk], pending[chunk:]
	}
	workers := b.opts.Parallelism
	if workers > len(head) {
		workers = len(head)
	}
	for len(b.rounders) < workers {
		o, err := fault.NewOracle(b.h, b.opts.Mode, b.oracleOpts)
		if err != nil {
			return nil, err
		}
		b.rounders = append(b.rounders, o)
	}
	var snapSpare *graph.Graph
	if k := len(b.freeSnaps); k > 0 {
		snapSpare, b.freeSnaps = b.freeSnaps[k-1], b.freeSnaps[:k-1]
	}
	snap := b.h.SnapshotInto(snapSpare)
	snapEdges := b.h.NumEdges()
	for _, o := range b.rounders[:workers] {
		if err := o.Rebind(snap); err != nil {
			return nil, err
		}
	}
	if cap(b.roundRes) < len(head) {
		b.roundRes = make([]specResult, len(head))
	}
	results := b.roundRes[:len(head)]

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(o *fault.Oracle) {
			defer wg.Done()
			claimed := -1
			defer func() {
				// Same containment as specBatch: a panic becomes an error on
				// the claimed slot, and the goroutine stops (its remaining
				// claims fall to the surviving workers or the cursor check).
				if v := recover(); v != nil && claimed >= 0 {
					results[claimed] = specResult{err: &PanicError{
						Site: ChaosSiteRespec, Value: v, Stack: debug.Stack(),
					}}
				}
			}()
			b.chaos(ChaosSiteRespec)
			for {
				j := int(next.Add(1)) - 1
				if j >= len(head) {
					return
				}
				claimed = j
				e := fl.edges[head[j]]
				// The edge's last witness rides along as a hint: a witness
				// that was merely blocked behind an unresolved earlier edge
				// revalidates in one Dijkstra instead of a fresh search.
				wit, found, err := o.FindFaultSetHinted(
					e.U, e.V, b.opts.Stretch*e.Weight, b.opts.Faults, fl.results[head[j]].witness)
				results[j] = specResult{witness: wit, found: found, err: err}
			}
		}(b.rounders[w])
	}
	wg.Wait()
	b.res.Stats.SpecQueries += int64(len(head))
	b.freeSnaps = append(b.freeSnaps, snap)
	if int(next.Load()) < len(head) {
		return nil, fmt.Errorf("core: re-speculation round lost %d/%d edges to panics",
			len(head)-int(next.Load()), len(head))
	}

	out := pending[:0]
	for j, i := range head {
		e := fl.edges[i]
		r := results[j]
		if r.err != nil {
			return nil, fmt.Errorf("core: edge %d: %w", e.ID, r.err)
		}
		if !r.found {
			b.res.Stats.SpecHits++
			continue
		}
		if len(out) == 0 {
			if b.h.NumEdges() == snapEdges {
				b.res.Stats.SpecHits++
				b.live.NoteWitness(r.witness)
				b.commit(e, r.witness)
				continue
			}
			ok, err := b.live.ValidateWitness(e.U, e.V, b.opts.Stretch*e.Weight, r.witness)
			if err != nil {
				return nil, fmt.Errorf("core: edge %d: %w", e.ID, err)
			}
			if ok {
				b.res.Stats.SpecHits++
				b.live.NoteWitness(r.witness)
				b.commit(e, r.witness)
				continue
			}
			r.witness = nil // refuted against live H: dead as a hint too
		}
		// Deferred again: carry this round's (possibly nil) witness as the
		// next round's hint.
		b.res.Stats.SpecWaste++
		fl.results[i] = r
		out = append(out, i)
	}
	// The unqueried tail stays pending as-is (append on the shared backing
	// array only ever copies forward, so the in-place filter above is safe).
	out = append(out, tail...)
	b.emitPhase(PhaseInfo{
		Phase:       PhaseRespecRound,
		Batch:       b.committedBatches,
		Edges:       len(head),
		Kept:        len(b.res.Kept),
		Pending:     len(out),
		WitnessHits: b.live.WitnessHits(),
	})
	return out, nil
}
