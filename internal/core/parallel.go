// Speculative edge-batch parallelism for the fault-tolerant greedy.
//
// The greedy scans edges by increasing weight and asks the fault oracle one
// exact question per edge against the spanner H built so far. The scan looks
// inherently sequential — each answer may change H for the next question —
// but batches of EQUAL-weight edges leave room to speculate: while deciding
// a batch, H can only gain edges of that same weight, so most answers
// computed against a frozen snapshot of H remain exact, and the rest are
// cheap to repair. Concretely, for each maximal run of same-weight edges:
//
//  1. snapshot H (graph.Snapshot: O(n), immutable, safe for concurrent
//     reads while the scan goroutine later mutates H);
//  2. fan the batch out over Parallelism workers, each owning a private
//     oracle (solver, memo, witness cache) re-aimed at the snapshot via
//     Rebind; every edge gets a full speculative oracle query;
//  3. validate and commit sequentially, in the exact scan order:
//     - "no fault set" answers are committed as drops even after earlier
//     commits in the batch: H only gained edges since the snapshot, and
//     adding edges only shrinks the set of valid fault sets (any F that
//     stretches (u,v) in H' ⊇ H does so in H — forbid F∩H and the
//     H-distance can only be larger), so "none against the snapshot"
//     implies "none now" — the monotone lift;
//     - the first "found witness" before any commit is exact as-is: H
//     still equals the snapshot;
//     - later "found witness" answers are suspect: the witness F was valid
//     for the snapshot but an earlier commit may have opened a fresh
//     detour. One bounded Dijkstra (Oracle.ValidateWitness) re-checks F
//     against the live H; if F still works the edge is kept — the
//     existence question is answered by exhibiting F, no search needed;
//     - only when revalidation fails does the edge fall back to a full
//     sequential re-query against the live H (counted as SpecWaste).
//
// Every commit decision is therefore made, in scan order, with an answer
// that is exact for the live spanner at that moment — which is precisely
// the sequential algorithm's invariant. The kept-edge set is consequently
// IDENTICAL to the sequential scan's at any Parallelism (the differential
// suite in parallel_test.go pins this across both fault modes); witnesses
// and work counters may differ, since several valid witnesses can exist.
//
// Speculation wastes work when commits are frequent within a batch — the
// worst case is a large all-equal-weight batch over a young, sparse H,
// where almost every edge is kept and each commit invalidates its
// successors. Stats.SpecHits/SpecWaste expose the balance; waste degrades
// toward the sequential cost plus the (cheap, early-exiting) speculative
// queries, it never changes the output.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// minSpeculativeBatch is the smallest same-weight run worth a snapshot and
// worker dispatch; shorter runs (in particular all singletons, the
// distinct-weight regime) take the sequential path with zero overhead.
const minSpeculativeBatch = 2

// specResult is one worker's speculative answer for one batch edge.
type specResult struct {
	witness []int
	found   bool
	err     error
}

// scanParallel is the Parallelism > 1 edge scan: sequential decisions over
// speculative batch answers.
func (b *builder) scanParallel(edges []graph.Edge) error {
	var results []specResult
	for start := 0; start < len(edges); {
		end := start + 1
		for end < len(edges) && edges[end].Weight == edges[start].Weight {
			end++
		}
		batch := edges[start:end]
		start = end
		if len(batch) < minSpeculativeBatch {
			for _, e := range batch {
				if err := b.step(); err != nil {
					return err
				}
				if err := b.scanOne(e); err != nil {
					return err
				}
			}
			continue
		}
		var err error
		if results, err = b.speculate(batch, results); err != nil {
			return err
		}
		if err := b.commitBatch(batch, results); err != nil {
			return err
		}
	}
	return nil
}

// speculate answers every batch edge concurrently against a fresh snapshot
// of the spanner, reusing the results buffer across batches.
func (b *builder) speculate(batch []graph.Edge, results []specResult) ([]specResult, error) {
	snap := b.h.Snapshot()
	workers := b.opts.Parallelism
	if workers > len(batch) {
		workers = len(batch)
	}
	for len(b.workers) < workers {
		o, err := fault.NewOracle(snap, b.opts.Mode, b.oracleOpts)
		if err != nil {
			return nil, err
		}
		b.workers = append(b.workers, o)
	}
	for _, o := range b.workers[:workers] {
		if err := o.Rebind(snap); err != nil {
			return nil, err
		}
	}
	if cap(results) < len(batch) {
		results = make([]specResult, len(batch))
	} else {
		results = results[:len(batch)]
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(o *fault.Oracle) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				e := batch[i]
				wit, found, err := o.FindFaultSet(e.U, e.V, b.opts.Stretch*e.Weight, b.opts.Faults)
				results[i] = specResult{witness: wit, found: found, err: err}
			}
		}(b.workers[w])
	}
	wg.Wait()
	b.res.Stats.SpecBatches++
	b.res.Stats.SpecQueries += int64(len(batch))
	return results, nil
}

// commitBatch walks one batch in scan order, turning speculative answers
// into exact commit decisions as described in the package comment.
func (b *builder) commitBatch(batch []graph.Edge, results []specResult) error {
	committed := false
	for i, e := range batch {
		if err := b.step(); err != nil {
			return err
		}
		r := results[i]
		if r.err != nil {
			return fmt.Errorf("core: edge %d: %w", e.ID, r.err)
		}
		if !r.found {
			// Monotone lift: exact even after earlier commits in the batch.
			b.res.Stats.SpecHits++
			continue
		}
		if !committed {
			// H still equals the snapshot; the speculative witness is exact.
			b.res.Stats.SpecHits++
			b.live.NoteWitness(r.witness)
			b.commit(e, r.witness)
			committed = true
			continue
		}
		ok, err := b.live.ValidateWitness(e.U, e.V, b.opts.Stretch*e.Weight, r.witness)
		if err != nil {
			return fmt.Errorf("core: edge %d: %w", e.ID, err)
		}
		if ok {
			// The stale witness survived revalidation against the live
			// spanner: the edge must be kept, one Dijkstra total.
			b.res.Stats.SpecHits++
			b.live.NoteWitness(r.witness)
			b.commit(e, r.witness)
			continue
		}
		// Invalidated by an earlier commit: decide exactly against live H.
		b.res.Stats.SpecWaste++
		if err := b.scanOne(e); err != nil {
			return err
		}
	}
	return nil
}
