package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/verify"
)

func TestConservativeOptionValidation(t *testing.T) {
	g := gen.Complete(4)
	bad := []core.Options{
		{Stretch: 0.5, Faults: 1, Mode: fault.Vertices},
		{Stretch: 3, Faults: -1, Mode: fault.Vertices},
		{Stretch: 3, Faults: 1},
	}
	for _, opts := range bad {
		if _, err := core.GreedyConservative(g, opts); err == nil {
			t.Errorf("options %+v should error", opts)
		}
	}
	if _, err := core.GreedyConservative(nil, core.Options{Stretch: 3, Faults: 1, Mode: fault.Vertices}); err == nil {
		t.Error("nil graph should error")
	}
}

func TestConservativeNeverSparserThanExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(30, 250, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f <= 3; f++ {
		exact, err := core.GreedyVFT(g, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		cons, err := core.ConservativeVFT(g, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		if cons.Spanner.NumEdges() < exact.Spanner.NumEdges() {
			t.Errorf("f=%d: conservative %d < exact %d — soundness bug",
				f, cons.Spanner.NumEdges(), exact.Spanner.NumEdges())
		}
	}
}

func TestConservativeWorkIsPolynomial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base, err := gen.ConnectedGNM(40, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{1, 4, 8} {
		res, err := core.ConservativeVFT(g, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		// At most f+2 Dijkstras per edge (f+1 packing runs + slack).
		if limit := int64((f + 2) * g.NumEdges()); res.Stats.Dijkstras > limit {
			t.Errorf("f=%d: %d dijkstras exceed the polynomial budget %d",
				f, res.Stats.Dijkstras, limit)
		}
	}
}

func TestConservativeHasNoWitnesses(t *testing.T) {
	g := gen.Complete(8)
	res, err := core.ConservativeVFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Witness != nil {
		t.Error("conservative results must not fabricate witnesses")
	}
}

func TestConservativeZeroFaults(t *testing.T) {
	// f=0: reject iff one detour exists — identical condition to the exact
	// greedy, so outputs coincide edge for edge.
	rng := rand.New(rand.NewSource(3))
	base, err := gen.ConnectedGNM(25, 150, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.GreedyVFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	cons, err := core.ConservativeVFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Kept) != len(cons.Kept) {
		t.Fatalf("f=0 outputs differ in size: %d vs %d", len(exact.Kept), len(cons.Kept))
	}
	for i := range exact.Kept {
		if exact.Kept[i] != cons.Kept[i] {
			t.Fatalf("f=0 outputs differ at position %d", i)
		}
	}
}

// TestQuickConservativeIsFaultTolerant: the headline soundness property,
// verified exhaustively on small random instances for both modes.
func TestQuickConservativeIsFaultTolerant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		maxM := n * (n - 1) / 2
		m := (n - 1) + rng.Intn(maxM-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 2, rng)
		if err != nil {
			return false
		}
		mode := fault.Vertices
		if rng.Intn(2) == 0 {
			mode = fault.Edges
		}
		stretch := []float64{1.5, 2, 3}[rng.Intn(3)]
		faults := rng.Intn(3)
		res, err := core.GreedyConservative(g, core.Options{Stretch: stretch, Faults: faults, Mode: mode})
		if err != nil {
			return false
		}
		inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
		if err != nil {
			return false
		}
		return inst.ExhaustiveCheck(stretch, mode, faults) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkConservativeVFTF4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(80, 1200, rng)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ConservativeVFT(g, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}
