package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// checkIncrementalDifferential is the correctness lock from the issue: the
// engine's current kept set must be digest-identical to a from-scratch
// greedy rebuild of the materialized current graph.
func checkIncrementalDifferential(t *testing.T, eng *Incremental, label string) {
	t.Helper()
	mat, kept, err := eng.Current()
	if err != nil {
		t.Fatalf("%s: Current: %v", label, err)
	}
	ref, err := Greedy(mat, Options{
		Stretch: eng.opts.Stretch,
		Faults:  eng.opts.Faults,
		Mode:    eng.opts.Mode,
	})
	if err != nil {
		t.Fatalf("%s: reference Greedy: %v", label, err)
	}
	if len(kept) != len(ref.Kept) {
		t.Fatalf("%s: incremental kept %d edges, rebuild kept %d", label, len(kept), len(ref.Kept))
	}
	for i := range kept {
		if kept[i] != ref.Kept[i] {
			t.Fatalf("%s: kept sets diverge at %d: incremental %d != rebuild %d",
				label, i, kept[i], ref.Kept[i])
		}
	}
	sp := graph.New(mat.NumVertices())
	for _, id := range kept {
		e := mat.Edge(id)
		sp.MustAddEdge(e.U, e.V, e.Weight)
	}
	if id, rd := sp.Digest(), ref.Spanner.Digest(); id != rd {
		t.Fatalf("%s: spanner digest %s != rebuild digest %s", label, id, rd)
	}
	if eng.KeptCount() != len(ref.Kept) {
		t.Fatalf("%s: KeptCount = %d, want %d", label, eng.KeptCount(), len(ref.Kept))
	}
}

// checkAblationAgree locks the state-reuse axis: the reuse engine and its
// DisableStateReuse twin, fed identical batches, must agree on the
// materialized graph, the kept edge list, and the spanner digest.
func checkAblationAgree(t *testing.T, reuse, scratch *Incremental, label string) {
	t.Helper()
	matA, keptA, err := reuse.Current()
	if err != nil {
		t.Fatalf("%s: reuse Current: %v", label, err)
	}
	matB, keptB, err := scratch.Current()
	if err != nil {
		t.Fatalf("%s: scratch Current: %v", label, err)
	}
	if matA.Digest() != matB.Digest() {
		t.Fatalf("%s: engines diverged on the graph itself: %s != %s",
			label, matA.Digest(), matB.Digest())
	}
	if len(keptA) != len(keptB) {
		t.Fatalf("%s: reuse kept %d edges, scratch kept %d", label, len(keptA), len(keptB))
	}
	for i := range keptA {
		if keptA[i] != keptB[i] {
			t.Fatalf("%s: kept sets diverge at %d: reuse %d != scratch %d",
				label, i, keptA[i], keptB[i])
		}
	}
	spA, spB := graph.New(matA.NumVertices()), graph.New(matB.NumVertices())
	for i := range keptA {
		ea, eb := matA.Edge(keptA[i]), matB.Edge(keptB[i])
		spA.MustAddEdge(ea.U, ea.V, ea.Weight)
		spB.MustAddEdge(eb.U, eb.V, eb.Weight)
	}
	if spA.Digest() != spB.Digest() {
		t.Fatalf("%s: spanner digest %s (reuse) != %s (scratch)", label, spA.Digest(), spB.Digest())
	}
}

func pairKey(u, v int) [2]int {
	if u <= v {
		return [2]int{u, v}
	}
	return [2]int{v, u}
}

// randomBatch generates a valid delta batch against the engine's current
// live-pair state, mixing inserts (with occasional weight ties), deletes,
// and the odd vertex-fault event. Live pairs are tracked in a mirror so
// intra-batch sequencing stays valid; keys are sorted before sampling so the
// same rng seed always yields the same batch.
func randomBatch(rng *rand.Rand, eng *Incremental, maxOps int) Batch {
	n := eng.NumVertices()
	live := map[[2]int]bool{}
	for _, e := range eng.Graph().LiveEdges() {
		live[pairKey(e.U, e.V)] = true
	}
	sortedLive := func() [][2]int {
		keys := make([][2]int, 0, len(live))
		for k := range live {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		return keys
	}
	var b Batch
	if n < 4 || rng.Intn(8) == 0 {
		b.AddVertices = 1 + rng.Intn(2)
	}
	n += b.AddVertices
	ops := 1 + rng.Intn(maxOps)
	for i := 0; i < ops; i++ {
		r := rng.Intn(10)
		switch {
		case r < 5 || len(live) == 0:
			for tries := 0; tries < 20; tries++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || live[pairKey(u, v)] {
					continue
				}
				w := 1 + 2*rng.Float64()
				if rng.Intn(3) == 0 {
					w = float64(1 + rng.Intn(3)) // force weight ties
				}
				b.Deltas = append(b.Deltas, Delta{Op: DeltaInsert, U: u, V: v, Weight: w})
				live[pairKey(u, v)] = true
				break
			}
		case r < 9:
			keys := sortedLive()
			k := keys[rng.Intn(len(keys))]
			b.Deltas = append(b.Deltas, Delta{Op: DeltaDelete, U: k[0], V: k[1]})
			delete(live, k)
		default:
			v := rng.Intn(n)
			b.Deltas = append(b.Deltas, Delta{Op: DeltaFaultVertex, Vertex: v})
			for _, k := range sortedLive() {
				if k[0] == v || k[1] == v {
					delete(live, k)
				}
			}
		}
	}
	return b
}

// TestIncrementalDifferential is the tentpole acceptance suite: >= 100
// random insert/delete/fault sequences split across both fault modes, with
// the digest-identity check after every applied batch. Every sequence runs
// through two engines — state reuse on (the default) and the
// DisableStateReuse ablation — fed identical batches, locking the two paths
// to each other and both to a from-scratch greedy.
func TestIncrementalDifferential(t *testing.T) {
	const seqPerMode = 52 // 104 sequences total
	for _, mode := range []fault.Mode{fault.Vertices, fault.Edges} {
		mode := mode
		t.Run(map[fault.Mode]string{fault.Vertices: "vft", fault.Edges: "eft"}[mode], func(t *testing.T) {
			for seq := 0; seq < seqPerMode; seq++ {
				rng := rand.New(rand.NewSource(int64(1000*int(mode) + seq)))
				n := 6 + rng.Intn(5)
				g := randomInstance(rng, n, n, weightKind(seq%4))
				opts := IncrementalOptions{
					Stretch: []float64{1.5, 2, 3}[seq%3],
					Faults:  seq % 3,
					Mode:    mode,
				}
				eng, err := NewIncremental(g, opts)
				if err != nil {
					t.Fatalf("seq %d: NewIncremental: %v", seq, err)
				}
				ablOpts := opts
				ablOpts.DisableStateReuse = true
				abl, err := NewIncremental(g, ablOpts)
				if err != nil {
					t.Fatalf("seq %d: NewIncremental (ablation): %v", seq, err)
				}
				checkIncrementalDifferential(t, eng, fmt.Sprintf("seq %d initial", seq))
				for batch := 0; batch < 4; batch++ {
					b := randomBatch(rng, eng, 6)
					if _, err := eng.ApplyBatch(b); err != nil {
						t.Fatalf("seq %d batch %d: ApplyBatch: %v", seq, batch, err)
					}
					if _, err := abl.ApplyBatch(b); err != nil {
						t.Fatalf("seq %d batch %d: ApplyBatch (ablation): %v", seq, batch, err)
					}
					checkIncrementalDifferential(t, eng, fmt.Sprintf("seq %d batch %d", seq, batch))
					checkAblationAgree(t, eng, abl, fmt.Sprintf("seq %d batch %d", seq, batch))
				}
				if abl.Stats().OracleReuses != 0 {
					t.Fatalf("seq %d: ablation engine reused state %d times", seq, abl.Stats().OracleReuses)
				}
			}
		})
	}
}

// TestIncrementalEmptyStart grows a session from nothing: vertices and edges
// all arrive as deltas.
func TestIncrementalEmptyStart(t *testing.T) {
	eng, err := NewIncremental(nil, IncrementalOptions{Stretch: 3, Faults: 1, Mode: fault.Vertices})
	if err != nil {
		t.Fatalf("NewIncremental(nil): %v", err)
	}
	if eng.NumVertices() != 0 || eng.KeptCount() != 0 {
		t.Fatalf("empty engine: %d vertices, %d kept", eng.NumVertices(), eng.KeptCount())
	}
	res, err := eng.ApplyBatch(Batch{
		AddVertices: 4,
		Deltas: []Delta{
			{Op: DeltaInsert, U: 0, V: 1, Weight: 1},
			{Op: DeltaInsert, U: 1, V: 2, Weight: 1},
			{Op: DeltaInsert, U: 2, V: 3, Weight: 1},
			{Op: DeltaInsert, U: 3, V: 0, Weight: 1},
		},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if res.LiveEdges != 4 {
		t.Fatalf("LiveEdges = %d, want 4", res.LiveEdges)
	}
	checkIncrementalDifferential(t, eng, "empty start")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5; i++ {
		if _, err := eng.ApplyBatch(randomBatch(rng, eng, 5)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		checkIncrementalDifferential(t, eng, fmt.Sprintf("grown batch %d", i))
	}
}

// TestIncrementalDeleteDroppedIsFree verifies the analysis shortcut: deleting
// an edge the greedy dropped re-examines nothing and changes nothing.
func TestIncrementalDeleteDroppedIsFree(t *testing.T) {
	// Triangle with one heavy edge: at stretch 3 / f=0 the heavy edge is
	// dropped (the two light edges give a 2-hop path within stretch).
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 2.5)
	eng, err := NewIncremental(g, IncrementalOptions{Stretch: 3, Faults: 0, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}
	if eng.KeptCount() != 2 {
		t.Fatalf("triangle kept %d edges, want 2", eng.KeptCount())
	}
	res, err := eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaDelete, U: 0, V: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SuffixLen != 0 || res.Stats.OracleQueries != 0 {
		t.Fatalf("dropped-edge delete re-examined %d edges with %d queries, want 0/0",
			res.Stats.SuffixLen, res.Stats.OracleQueries)
	}
	if len(res.KeptAdded) != 0 || len(res.KeptRemoved) != 0 {
		t.Fatalf("dropped-edge delete changed membership: +%d -%d",
			len(res.KeptAdded), len(res.KeptRemoved))
	}
	checkIncrementalDifferential(t, eng, "after dropped delete")
}

// TestIncrementalSuffixScope verifies the repair touches only the weight
// suffix and that shortcut decisions plus oracle queries account for every
// re-examined edge.
func TestIncrementalSuffixScope(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := randomInstance(rng, 10, 12, weightsMixed)
	eng, err := NewIncremental(g, IncrementalOptions{Stretch: 2, Faults: 1, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}

	// Insert an edge heavier than everything live: the suffix is exactly
	// that one edge and needs exactly one oracle query.
	maxW := 0.0
	for _, e := range eng.Graph().LiveEdges() {
		if e.Weight > maxW {
			maxW = e.Weight
		}
	}
	u, v := -1, -1
	n := eng.NumVertices()
	for a := 0; a < n && u < 0; a++ {
		for b := a + 1; b < n; b++ {
			if _, ok := eng.Graph().LiveBetween(a, b); !ok {
				u, v = a, b
				break
			}
		}
	}
	if u < 0 {
		t.Skip("instance is complete; no free pair")
	}
	res, err := eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaInsert, U: u, V: v, Weight: maxW + 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SuffixLen != 1 || res.Stats.OracleQueries != 1 {
		t.Fatalf("heaviest insert: suffix %d, queries %d, want 1/1",
			res.Stats.SuffixLen, res.Stats.OracleQueries)
	}
	checkIncrementalDifferential(t, eng, "heaviest insert")

	// A mid-weight mutation: every re-examined edge is decided exactly once,
	// by shortcut or by query.
	res, err = eng.ApplyBatch(randomBatch(rng, eng, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FullRebuild {
		decided := int(res.Stats.OracleQueries) + res.Stats.ShortcutKeeps + res.Stats.ShortcutDrops
		if decided != res.Stats.SuffixLen {
			t.Fatalf("decisions %d != suffix length %d", decided, res.Stats.SuffixLen)
		}
	}
	checkIncrementalDifferential(t, eng, "mixed batch")
}

// TestIncrementalRebuildFallback pins the threshold semantics: a tiny
// positive threshold forces full rebuilds, >= 1 forbids them, and digests
// stay identical either way.
func TestIncrementalRebuildFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomInstance(rng, 8, 8, weightsMixed)

	for _, tc := range []struct {
		name      string
		threshold float64
		want      bool
	}{
		{"always", -1, true},
		{"tiny", 1e-9, true},
		{"never", 1.0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := NewIncremental(g, IncrementalOptions{
				Stretch: 3, Faults: 1, Mode: fault.Edges, RebuildThreshold: tc.threshold,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Delete a kept edge so the repair has a dirty suffix.
			mat, kept, err := eng.Current()
			if err != nil {
				t.Fatal(err)
			}
			if len(kept) == 0 {
				t.Fatal("nothing kept")
			}
			ke := mat.Edge(kept[0])
			res, err := eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaDelete, U: ke.U, V: ke.V}}})
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.FullRebuild != tc.want {
				t.Fatalf("threshold %v: FullRebuild = %v, want %v", tc.threshold, res.Stats.FullRebuild, tc.want)
			}
			checkIncrementalDifferential(t, eng, tc.name)
		})
	}
}

// TestIncrementalSeeded seeds the engine from a prior Greedy run (the cache
// hit path) and checks batches behave identically to a cold engine.
func TestIncrementalSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := randomInstance(rng, 9, 10, weightsQuantized)
	opts := IncrementalOptions{Stretch: 2, Faults: 1, Mode: fault.Vertices}
	ref, err := Greedy(g, Options{Stretch: opts.Stretch, Faults: opts.Faults, Mode: opts.Mode})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewIncrementalSeeded(g, ref.Kept, opts)
	if err != nil {
		t.Fatal(err)
	}
	if eng.KeptCount() != len(ref.Kept) {
		t.Fatalf("seeded KeptCount = %d, want %d", eng.KeptCount(), len(ref.Kept))
	}
	checkIncrementalDifferential(t, eng, "seeded initial")
	for i := 0; i < 4; i++ {
		if _, err := eng.ApplyBatch(randomBatch(rng, eng, 5)); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		checkIncrementalDifferential(t, eng, fmt.Sprintf("seeded batch %d", i))
	}

	// Bad seeds are rejected up front.
	if _, err := NewIncrementalSeeded(g, []int{g.NumEdges()}, opts); err == nil {
		t.Fatal("out-of-range seed ID accepted")
	}
	if _, err := NewIncrementalSeeded(g, []int{0, 0}, opts); err == nil {
		t.Fatal("duplicate seed ID accepted")
	}
}

// TestIncrementalBatchValidation checks batches are rejected atomically with
// a typed per-delta error and no engine mutation.
func TestIncrementalBatchValidation(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	eng, err := NewIncremental(g, IncrementalOptions{Stretch: 3, Faults: 0, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}
	before := eng.KeptCount()

	cases := []struct {
		name  string
		batch Batch
		index int
	}{
		{"negative add_vertices", Batch{AddVertices: -1}, -1},
		{"self loop", Batch{Deltas: []Delta{{Op: DeltaInsert, U: 1, V: 1, Weight: 1}}}, 0},
		{"bad weight", Batch{Deltas: []Delta{{Op: DeltaInsert, U: 0, V: 2, Weight: -3}}}, 0},
		{"duplicate insert", Batch{Deltas: []Delta{{Op: DeltaInsert, U: 0, V: 1, Weight: 2}}}, 0},
		{"intra-batch duplicate", Batch{Deltas: []Delta{
			{Op: DeltaInsert, U: 0, V: 2, Weight: 1},
			{Op: DeltaInsert, U: 2, V: 0, Weight: 1},
		}}, 1},
		{"delete missing", Batch{Deltas: []Delta{{Op: DeltaDelete, U: 0, V: 2}}}, 0},
		{"delete after fault", Batch{Deltas: []Delta{
			{Op: DeltaFaultVertex, Vertex: 1},
			{Op: DeltaDelete, U: 0, V: 1},
		}}, 1},
		{"vertex out of range", Batch{Deltas: []Delta{{Op: DeltaFaultVertex, Vertex: 9}}}, 0},
		{"endpoint out of range", Batch{Deltas: []Delta{{Op: DeltaInsert, U: 0, V: 5, Weight: 1}}}, 0},
		{"unknown op", Batch{Deltas: []Delta{{Op: DeltaOp(99)}}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := eng.ApplyBatch(tc.batch)
			var de *DeltaError
			if !errors.As(err, &de) {
				t.Fatalf("err = %v, want *DeltaError", err)
			}
			if de.Index != tc.index {
				t.Fatalf("DeltaError.Index = %d, want %d", de.Index, tc.index)
			}
		})
	}
	if eng.KeptCount() != before || eng.NumLiveEdges() != 2 || eng.NeedsRepair() {
		t.Fatalf("rejected batches mutated the engine: kept %d live %d repair %v",
			eng.KeptCount(), eng.NumLiveEdges(), eng.NeedsRepair())
	}

	// A delete may cancel a same-batch insert; re-deleting the original edge
	// in the same batch is then valid.
	res, err := eng.ApplyBatch(Batch{Deltas: []Delta{
		{Op: DeltaInsert, U: 0, V: 2, Weight: 1},
		{Op: DeltaDelete, U: 0, V: 2},
	}})
	if err != nil {
		t.Fatalf("insert+delete batch: %v", err)
	}
	if res.LiveEdges != 2 {
		t.Fatalf("insert+delete batch: LiveEdges = %d, want 2", res.LiveEdges)
	}
	checkIncrementalDifferential(t, eng, "insert+delete")
}

// TestIncrementalAbortAndRepair aborts a repair mid-suffix through the
// Progress hook, then checks the engine refuses reads until Repair finishes
// the re-scan — and that the repaired state is digest-identical again.
func TestIncrementalAbortAndRepair(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := randomInstance(rng, 9, 10, weightsMixed)
	boom := errors.New("boom")
	calls, armed := 0, false
	opts := IncrementalOptions{
		Stretch: 2, Faults: 1, Mode: fault.Vertices,
		RebuildThreshold: 1, // force the suffix path so Progress fires per edge
		Progress: func(scanned, kept int) error {
			if !armed {
				return nil // initial build runs the hook too
			}
			calls++
			if calls > 2 {
				return boom
			}
			return nil
		},
	}
	eng, err := NewIncremental(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	armed = true // only abort the repair walk

	// Delete the lightest kept edge: a long dirty suffix, so the hook
	// definitely fires more than twice.
	mat, kept, err := eng.Current()
	if err != nil {
		t.Fatal(err)
	}
	ke := mat.Edge(kept[0])
	_, err = eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaDelete, U: ke.U, V: ke.V}}})
	if !errors.Is(err, boom) {
		t.Fatalf("ApplyBatch err = %v, want boom", err)
	}
	if !eng.NeedsRepair() {
		t.Fatal("aborted batch did not flag NeedsRepair")
	}
	if _, _, err := eng.Current(); err == nil {
		t.Fatal("Current succeeded while NeedsRepair")
	}

	// The mutation stuck even though the repair aborted.
	if _, ok := eng.Graph().LiveBetween(ke.U, ke.V); ok {
		t.Fatal("aborted batch rolled back the graph mutation")
	}

	eng.opts.Progress = nil
	if err := eng.Repair(); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if eng.NeedsRepair() {
		t.Fatal("Repair left NeedsRepair set")
	}
	checkIncrementalDifferential(t, eng, "after repair")
}

// TestIncrementalNoOpBatchReuse is the PR 10 regression lock: a batch that
// changes no decision (deleting a dropped edge) must construct zero oracles
// and run zero oracle queries, and a batch that does repair a suffix must
// rewind the retained oracle instead of constructing a fresh one.
func TestIncrementalNoOpBatchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := randomInstance(rng, 10, 14, weightsMixed)
	eng, err := NewIncremental(g, IncrementalOptions{Stretch: 2, Faults: 1, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}

	// First repair establishes the retained state (one construction allowed).
	mat, kept, err := eng.Current()
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) == len(mat.Edges()) {
		t.Skip("everything kept; no dropped edge to exercise")
	}
	ke := mat.Edge(kept[len(kept)-1])
	res, err := eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaDelete, U: ke.U, V: ke.V}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FullRebuild {
		t.Fatalf("kept-edge delete fell back to a full rebuild (dirty %v)", res.Stats.DirtyFraction)
	}
	if !res.Stats.OracleBuilt || res.Stats.OracleReused {
		t.Fatalf("first repair: OracleBuilt=%v OracleReused=%v, want true/false",
			res.Stats.OracleBuilt, res.Stats.OracleReused)
	}

	// No-op batch: delete a dropped edge. Zero constructions, zero queries,
	// zero suffix — the retained state is not even touched.
	dropped := graph.Edge{ID: -1}
	keptSet := map[int]bool{}
	_, kept, err = eng.Current()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range kept {
		keptSet[id] = true
	}
	mat, _, _ = eng.Current()
	for _, e := range mat.Edges() {
		if !keptSet[e.ID] {
			dropped = e
			break
		}
	}
	if dropped.ID < 0 {
		t.Skip("no dropped edge left")
	}
	c0 := fault.Constructions()
	res, err = eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaDelete, U: dropped.U, V: dropped.V}}})
	if err != nil {
		t.Fatal(err)
	}
	if d := fault.Constructions() - c0; d != 0 {
		t.Fatalf("no-op batch constructed %d oracles, want 0", d)
	}
	if res.Stats.OracleQueries != 0 || res.Stats.SuffixLen != 0 ||
		res.Stats.OracleBuilt || res.Stats.OracleReused {
		t.Fatalf("no-op batch stats: queries=%d suffix=%d built=%v reused=%v, want all zero",
			res.Stats.OracleQueries, res.Stats.SuffixLen, res.Stats.OracleBuilt, res.Stats.OracleReused)
	}

	// A real suffix repair after the warm-up: still zero constructions — the
	// retained oracle is rewound, not rebuilt.
	n := eng.NumVertices()
	u, v := -1, -1
	for a := 0; a < n && u < 0; a++ {
		for b := a + 1; b < n; b++ {
			if _, ok := eng.Graph().LiveBetween(a, b); !ok {
				u, v = a, b
				break
			}
		}
	}
	if u < 0 {
		t.Skip("graph complete; no free pair")
	}
	c0 = fault.Constructions()
	res, err = eng.ApplyBatch(Batch{Deltas: []Delta{{Op: DeltaInsert, U: u, V: v, Weight: 1.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FullRebuild {
		t.Skipf("insert fell back to a full rebuild (dirty %v)", res.Stats.DirtyFraction)
	}
	if d := fault.Constructions() - c0; d != 0 {
		t.Fatalf("non-fallback repair constructed %d oracles, want 0", d)
	}
	if !res.Stats.OracleReused || res.Stats.OracleBuilt {
		t.Fatalf("non-fallback repair: OracleReused=%v OracleBuilt=%v, want true/false",
			res.Stats.OracleReused, res.Stats.OracleBuilt)
	}
	if eng.Stats().OracleReuses == 0 {
		t.Fatal("cumulative OracleReuses stayed 0")
	}
	checkIncrementalDifferential(t, eng, "after reuse batch")
}

// TestIncrementalRewindAcrossCompaction drives delete churn through the
// automatic compaction with state reuse on: compaction must invalidate the
// retained prefix (its watermarks name the old IDs), the next repair
// rebuilds from scratch, and the one after that rewinds again — with the
// differential lock holding throughout.
func TestIncrementalRewindAcrossCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomInstance(rng, 12, 60, weightsMixed)
	eng, err := NewIncremental(g, IncrementalOptions{Stretch: 3, Faults: 0, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}
	for eng.Graph().NumEdges() >= 64 && eng.Graph().Waste() <= 0.55 {
		live := eng.Graph().LiveEdges()
		if len(live) <= 12 {
			break
		}
		var deltas []Delta
		for i := 0; i < 6 && i < len(live); i++ {
			e := live[rng.Intn(len(live))]
			dup := false
			for _, d := range deltas {
				if pairKey(d.U, d.V) == pairKey(e.U, e.V) {
					dup = true
					break
				}
			}
			if !dup {
				deltas = append(deltas, Delta{Op: DeltaDelete, U: e.U, V: e.V})
			}
		}
		if _, err := eng.ApplyBatch(Batch{Deltas: deltas}); err != nil {
			t.Fatal(err)
		}
		checkIncrementalDifferential(t, eng, "churn batch")
	}
	if eng.Stats().Compactions == 0 {
		t.Fatalf("churn never compacted: %d underlying edges, waste %v",
			eng.Graph().NumEdges(), eng.Graph().Waste())
	}

	// The batch right after a compaction must rebuild (the retained arena
	// died with the renumbering)...
	var firstAfter *BatchResult
	for firstAfter == nil {
		b := randomBatch(rng, eng, 3)
		res, err := eng.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		checkIncrementalDifferential(t, eng, "post-compact batch")
		if res.Stats.SuffixLen > 0 && !res.Stats.FullRebuild {
			firstAfter = res
		}
	}
	if !firstAfter.Stats.OracleBuilt || firstAfter.Stats.OracleReused {
		t.Fatalf("first repair after compaction: OracleBuilt=%v OracleReused=%v, want true/false",
			firstAfter.Stats.OracleBuilt, firstAfter.Stats.OracleReused)
	}
	// ...and the repair after that rewinds the fresh retained state again.
	for {
		b := randomBatch(rng, eng, 3)
		res, err := eng.ApplyBatch(b)
		if err != nil {
			t.Fatal(err)
		}
		checkIncrementalDifferential(t, eng, "post-compact reuse batch")
		if res.Stats.FullRebuild || eng.Stats().Compactions > 1 {
			t.Skip("another fallback before a reuse batch; covered elsewhere")
		}
		if res.Stats.SuffixLen == 0 {
			continue
		}
		if !res.Stats.OracleReused || res.Stats.OracleBuilt {
			t.Fatalf("second repair after compaction: OracleReused=%v OracleBuilt=%v, want true/false",
				res.Stats.OracleReused, res.Stats.OracleBuilt)
		}
		break
	}
}

// TestIncrementalCompaction drives enough delete churn to trigger the
// automatic compaction and checks the decision table survives the
// renumbering.
func TestIncrementalCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomInstance(rng, 12, 60, weightsMixed)
	eng, err := NewIncremental(g, IncrementalOptions{Stretch: 3, Faults: 0, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}
	// Delete well past half the underlying edges, a few per batch.
	for eng.Graph().NumEdges() >= 64 && eng.Graph().Waste() <= 0.55 {
		live := eng.Graph().LiveEdges()
		if len(live) <= 12 {
			break
		}
		var deltas []Delta
		for i := 0; i < 6 && i < len(live); i++ {
			e := live[rng.Intn(len(live))]
			dup := false
			for _, d := range deltas {
				if pairKey(d.U, d.V) == pairKey(e.U, e.V) {
					dup = true
					break
				}
			}
			if !dup {
				deltas = append(deltas, Delta{Op: DeltaDelete, U: e.U, V: e.V})
			}
		}
		if _, err := eng.ApplyBatch(Batch{Deltas: deltas}); err != nil {
			t.Fatal(err)
		}
		checkIncrementalDifferential(t, eng, "churn batch")
	}
	if eng.Stats().Compactions == 0 {
		t.Fatalf("churn never compacted: %d underlying edges, waste %v",
			eng.Graph().NumEdges(), eng.Graph().Waste())
	}
	// Keep mutating after the renumbering.
	for i := 0; i < 3; i++ {
		if _, err := eng.ApplyBatch(randomBatch(rng, eng, 5)); err != nil {
			t.Fatal(err)
		}
		checkIncrementalDifferential(t, eng, fmt.Sprintf("post-compact batch %d", i))
	}
}

// FuzzIncrementalDifferential feeds fuzzer-chosen instance shapes and delta
// sequences through the engine with the digest-identity check after every
// batch, running every sequence through both the state-reuse engine and its
// DisableStateReuse ablation twin and locking the two paths to each other.
// The seed corpus pins both fault modes, weight-tie regimes, fault events,
// the empty-start path, and a long churny delete-heavy run.
func FuzzIncrementalDifferential(f *testing.F) {
	f.Add(int64(1), uint64(8), uint64(10), uint64(0), uint64(1), uint64(3))
	f.Add(int64(2), uint64(10), uint64(6), uint64(1), uint64(2), uint64(4))
	f.Add(int64(3), uint64(6), uint64(14), uint64(0), uint64(0), uint64(2))
	f.Add(int64(4), uint64(0), uint64(0), uint64(1), uint64(1), uint64(5))
	f.Add(int64(5), uint64(9), uint64(9), uint64(0), uint64(2), uint64(3))
	f.Add(int64(6), uint64(11), uint64(15), uint64(1), uint64(0), uint64(9))
	f.Fuzz(func(t *testing.T, seed int64, n, extra, modeSel, faults, batches uint64) {
		rng := rand.New(rand.NewSource(seed))
		mode := fault.Vertices
		if modeSel%2 == 1 {
			mode = fault.Edges
		}
		opts := IncrementalOptions{
			Stretch: []float64{1.5, 2, 3}[seed&7%3],
			Faults:  int(faults % 3),
			Mode:    mode,
		}
		ablOpts := opts
		ablOpts.DisableStateReuse = true
		var eng, abl *Incremental
		var err error
		if n%12 == 0 {
			eng, err = NewIncremental(nil, opts)
			if err == nil {
				abl, err = NewIncremental(nil, ablOpts)
			}
		} else {
			nv := 4 + int(n%8)
			g := randomInstance(rng, nv, int(extra%16), weightKind(extra%4))
			eng, err = NewIncremental(g, opts)
			if err == nil {
				abl, err = NewIncremental(g, ablOpts)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		checkIncrementalDifferential(t, eng, "initial")
		nb := 1 + int(batches%5)
		for i := 0; i < nb; i++ {
			b := randomBatch(rng, eng, 6)
			if _, err := eng.ApplyBatch(b); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
			if _, err := abl.ApplyBatch(b); err != nil {
				t.Fatalf("batch %d (ablation): %v", i, err)
			}
			checkIncrementalDifferential(t, eng, fmt.Sprintf("batch %d", i))
			checkAblationAgree(t, eng, abl, fmt.Sprintf("batch %d", i))
		}
	})
}
