package core

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// naiveOracle strips every oracle acceleration, leaving the plain
// exponential hitting-set branching as the reference implementation.
var naiveOracle = fault.Options{DisablePruning: true, DisableMemo: true, DisableWitnessReuse: true}

func randomConnected(rng *rand.Rand, n, extra int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(perm[i], perm[rng.Intn(i)], 1+2*rng.Float64())
	}
	for tries := 0; tries < 4*extra; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+2*rng.Float64())
		}
	}
	return g
}

// TestGreedyDifferentialOptimizedVsNaive is the build-level acceptance
// criterion of the oracle overhaul: the full greedy with the optimized
// oracle and with the ablated naive oracle must produce IDENTICAL kept-edge
// sets on randomized instances in both fault modes. (Witnesses may differ —
// several valid ones can exist — but the kept set is determined by the
// oracle's exact yes/no answers alone.)
func TestGreedyDifferentialOptimizedVsNaive(t *testing.T) {
	instances := 120
	if testing.Short() {
		instances = 24
	}
	rng := rand.New(rand.NewSource(424242))
	for inst := 0; inst < instances; inst++ {
		n := 8 + rng.Intn(10)
		g := randomConnected(rng, n, rng.Intn(3*n))
		stretch := []float64{1.5, 2, 3, 5}[rng.Intn(4)]
		faults := rng.Intn(4)
		mode := fault.Vertices
		if inst%2 == 1 {
			mode = fault.Edges
		}

		optRes, err := Greedy(g, Options{Stretch: stretch, Faults: faults, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		naiveRes, err := Greedy(g, Options{Stretch: stretch, Faults: faults, Mode: mode, Oracle: naiveOracle})
		if err != nil {
			t.Fatal(err)
		}

		if len(optRes.Kept) != len(naiveRes.Kept) {
			t.Fatalf("instance %d (mode=%v n=%d m=%d k=%v f=%d): optimized kept %d edges, naive kept %d",
				inst, mode, n, g.NumEdges(), stretch, faults, len(optRes.Kept), len(naiveRes.Kept))
		}
		for i := range optRes.Kept {
			if optRes.Kept[i] != naiveRes.Kept[i] {
				t.Fatalf("instance %d (mode=%v k=%v f=%d): kept sets diverge at position %d: %d != %d",
					inst, mode, stretch, faults, i, optRes.Kept[i], naiveRes.Kept[i])
			}
		}
		// Sanity on the witness instrumentation: only the optimized run may
		// touch the witness cache.
		if naiveRes.Stats.WitnessHits != 0 || naiveRes.Stats.WitnessMisses != 0 {
			t.Fatalf("instance %d: naive build reported witness cache traffic %+v", inst, naiveRes.Stats)
		}
	}
}
