package core

import (
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
	"math/rand"
)

// phaseFixture builds a quantized-weight random graph with same-weight
// batches big enough to exercise the speculative path.
func phaseFixture(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.ConnectedGNM(60, 500, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	q := graph.New(g.NumVertices())
	for i := 0; i < g.NumEdges(); i++ {
		e := g.Edge(i)
		q.MustAddEdge(e.U, e.V, float64(1+i%6))
	}
	return q
}

// TestPhaseHookEvents checks the Options.Phase contract: one
// batch-speculate and one batch-commit event per speculative batch, one
// respec-round event per re-speculation round, counts consistent with
// Stats, and the hook does not change the build's output.
func TestPhaseHookEvents(t *testing.T) {
	g := phaseFixture(t)
	base, err := Greedy(g, Options{Stretch: 3, Faults: 1, Mode: fault.Vertices})
	if err != nil {
		t.Fatal(err)
	}

	var speculated, committed, rounds int
	var lastCommitKept int
	orderOK := true
	prevSpecBatch, prevCommitBatch := -1, -1
	opts := Options{
		Stretch: 3, Faults: 1, Mode: fault.Vertices,
		Parallelism: 4, Pipeline: 3,
		Phase: func(info PhaseInfo) {
			switch info.Phase {
			case PhaseBatchSpeculate:
				if info.Batch != prevSpecBatch+1 {
					orderOK = false
				}
				prevSpecBatch = info.Batch
				speculated++
			case PhaseBatchCommit:
				if info.Batch != prevCommitBatch+1 || info.Batch > prevSpecBatch {
					orderOK = false
				}
				prevCommitBatch = info.Batch
				committed++
				lastCommitKept = info.Kept
			case PhaseRespecRound:
				if info.Edges <= 0 {
					orderOK = false
				}
				rounds++
			default:
				t.Errorf("unknown phase %q", info.Phase)
			}
		},
	}
	res, err := Greedy(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !orderOK {
		t.Error("phase events arrived out of order")
	}
	if int64(speculated) != res.Stats.SpecBatches {
		t.Errorf("batch-speculate events = %d, Stats.SpecBatches = %d", speculated, res.Stats.SpecBatches)
	}
	if int64(committed) != res.Stats.SpecBatches {
		t.Errorf("batch-commit events = %d, Stats.SpecBatches = %d", committed, res.Stats.SpecBatches)
	}
	if int64(rounds) != res.Stats.SpecRounds {
		t.Errorf("respec-round events = %d, Stats.SpecRounds = %d", rounds, res.Stats.SpecRounds)
	}
	if speculated == 0 {
		t.Fatal("fixture produced no speculative batches; phases untested")
	}
	if lastCommitKept != len(res.Kept) {
		t.Errorf("final batch-commit Kept = %d, want %d", lastCommitKept, len(res.Kept))
	}
	// The hook is observational: identical output with and without it.
	if got, want := res.Spanner.Digest(), base.Spanner.Digest(); got != want {
		t.Errorf("phase hook changed the spanner: %s != %s", got, want)
	}
}

// TestPhaseHookSequentialSilent pins that sequential scans emit no phase
// events (they have no internal phases).
func TestPhaseHookSequentialSilent(t *testing.T) {
	g := phaseFixture(t)
	fired := 0
	_, err := Greedy(g, Options{
		Stretch: 3, Faults: 1, Mode: fault.Vertices,
		Phase: func(PhaseInfo) { fired++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("sequential scan fired %d phase events, want 0", fired)
	}
}
