package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
	"github.com/ftspanner/ftspanner/internal/verify"
)

func TestGreedyOptionValidation(t *testing.T) {
	g := gen.Complete(4)
	tests := []struct {
		name string
		opts core.Options
	}{
		{name: "stretch < 1", opts: core.Options{Stretch: 0.5, Faults: 1, Mode: fault.Vertices}},
		{name: "negative faults", opts: core.Options{Stretch: 3, Faults: -1, Mode: fault.Vertices}},
		{name: "bad mode", opts: core.Options{Stretch: 3, Faults: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := core.Greedy(g, tt.opts); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, err := core.Greedy(nil, core.Options{Stretch: 3, Faults: 1, Mode: fault.Vertices}); err == nil {
		t.Error("nil graph should error")
	}
}

func TestGreedyZeroFaultsMatchesPlainGreedy(t *testing.T) {
	// With f=0 the FT greedy keeps an edge iff the empty fault set works,
	// which is exactly the classical greedy condition.
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(30, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.GreedyVFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.CheckFaultSet(3, fault.Vertices, nil); err != nil {
		t.Errorf("f=0 output is not a 3-spanner: %v", err)
	}
	// All witnesses must be empty.
	for gid, w := range res.Witness {
		if len(w) != 0 {
			t.Errorf("edge %d has non-empty witness %v at f=0", gid, w)
		}
	}
}

func TestGreedyVFTOnK8Exhaustive(t *testing.T) {
	// Small enough to verify Definition 2 exhaustively for f=2.
	g := gen.Complete(8)
	res, err := core.GreedyVFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ExhaustiveCheck(3, fault.Vertices, 2); err != nil {
		t.Errorf("VFT output fails exhaustive verification: %v", err)
	}
	// K8 minus nothing: at f=2 the spanner must be denser than at f=0.
	res0, err := core.GreedyVFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.NumEdges() <= res0.Spanner.NumEdges() {
		t.Errorf("f=2 spanner (%d edges) not larger than f=0 (%d edges)",
			res.Spanner.NumEdges(), res0.Spanner.NumEdges())
	}
}

func TestGreedyEFTOnK7Exhaustive(t *testing.T) {
	g := gen.Complete(7)
	res, err := core.GreedyEFT(g, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ExhaustiveCheck(3, fault.Edges, 2); err != nil {
		t.Errorf("EFT output fails exhaustive verification: %v", err)
	}
}

func TestGreedyWitnessesAreValid(t *testing.T) {
	// Each recorded witness F_e must actually block edge e at its insertion
	// time; at the end of the run it must still satisfy the weaker property
	// dist_{H\F_e}(u,v) can only have decreased... so we check the defining
	// property on the final spanner minus the edge itself: removing e and
	// F_e leaves distance > k*w (true at insertion; later edges are heavier
	// but may create shortcuts — so we check at minimum that |F_e| <= f and
	// endpoints are excluded).
	g := gen.Complete(9)
	const f = 2
	res, err := core.GreedyVFT(g, 3, f)
	if err != nil {
		t.Fatal(err)
	}
	for gid, w := range res.Witness {
		if len(w) > f {
			t.Errorf("edge %d witness %v larger than f", gid, w)
		}
		e := g.Edge(gid)
		for _, x := range w {
			if x == e.U || x == e.V {
				t.Errorf("edge %d witness %v contains an endpoint", gid, w)
			}
			if x < 0 || x >= g.NumVertices() {
				t.Errorf("edge %d witness vertex %d out of range", gid, x)
			}
		}
	}
	if len(res.Witness) != res.Spanner.NumEdges() {
		t.Errorf("witness count %d != kept edges %d", len(res.Witness), res.Spanner.NumEdges())
	}
}

func TestGreedyKeptBookkeeping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base, err := gen.ConnectedGNM(20, 80, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.GreedyVFT(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != res.Spanner.NumEdges() {
		t.Fatalf("Kept length %d != spanner edges %d", len(res.Kept), res.Spanner.NumEdges())
	}
	if res.KeptSet.Count() != len(res.Kept) {
		t.Error("KeptSet disagrees with Kept")
	}
	for hid, gid := range res.Kept {
		if !res.KeptSet.Contains(gid) {
			t.Errorf("kept edge %d missing from KeptSet", gid)
		}
		he, ge := res.Spanner.Edge(hid), g.Edge(gid)
		hu, hv := he.Endpoints()
		gu, gv := ge.Endpoints()
		if hu != gu || hv != gv || he.Weight != ge.Weight {
			t.Errorf("mapping mismatch: H %v vs G %v", he, ge)
		}
	}
	if res.Stats.EdgesScanned != g.NumEdges() {
		t.Errorf("EdgesScanned = %d, want %d", res.Stats.EdgesScanned, g.NumEdges())
	}
	if res.Stats.OracleCalls != int64(g.NumEdges()) {
		t.Errorf("OracleCalls = %d, want %d", res.Stats.OracleCalls, g.NumEdges())
	}
	if res.Stats.Dijkstras < res.Stats.OracleCalls {
		t.Error("Dijkstras should be at least one per oracle call")
	}
	if res.Stretch != 2 || res.Faults != 1 || res.Mode != fault.Vertices {
		t.Error("result echo fields wrong")
	}
}

func TestGreedyVFTSpannersGrowWithF(t *testing.T) {
	// Monotonicity in f is not a theorem edge-by-edge, but on a fixed
	// complete graph the total size must be non-decreasing... the greedy
	// keeps any edge a smaller-f greedy keeps (a witness for budget f is a
	// witness for budget f+1) as long as the partial spanners coincide; we
	// only assert the overall sizes are non-decreasing, which holds by
	// induction on the identical scan order.
	g := gen.Complete(10)
	prev := -1
	for f := 0; f <= 3; f++ {
		res, err := core.GreedyVFT(g, 3, f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Spanner.NumEdges() < prev {
			t.Errorf("f=%d spanner smaller than f=%d", f, f-1)
		}
		prev = res.Spanner.NumEdges()
	}
}

func TestGreedyGirthOfQuotient(t *testing.T) {
	// For f=0 and integer stretch k, greedy output has girth > k+1 — the
	// size analysis of the paper generalizes this via blocking sets.
	g := gen.Complete(16)
	res, err := core.GreedyVFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gg := girth.Girth(res.Spanner); gg <= 4 {
		t.Errorf("f=0 stretch-3 spanner girth = %d, want > 4", gg)
	}
}

func TestGreedyOracleAblationsAgree(t *testing.T) {
	g := gen.Complete(9)
	var sizes []int
	for _, oopts := range []fault.Options{
		{},
		{DisablePruning: true},
		{DisableMemo: true},
		{DisablePruning: true, DisableMemo: true},
	} {
		res, err := core.Greedy(g, core.Options{Stretch: 3, Faults: 2, Mode: fault.Vertices, Oracle: oopts})
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, res.Spanner.NumEdges())
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != sizes[0] {
			t.Fatalf("oracle ablations disagree on spanner size: %v", sizes)
		}
	}
}

// TestQuickGreedyOutputsAreFaultTolerant is the headline property test:
// random graphs, random parameters, exhaustive fault verification.
func TestQuickGreedyOutputsAreFaultTolerant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		maxM := n * (n - 1) / 2
		m := (n - 1) + rng.Intn(maxM-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 2, rng)
		if err != nil {
			return false
		}
		mode := fault.Vertices
		if rng.Intn(2) == 0 {
			mode = fault.Edges
		}
		stretch := []float64{1.5, 2, 3}[rng.Intn(3)]
		faults := rng.Intn(3)
		res, err := core.Greedy(g, core.Options{Stretch: stretch, Faults: faults, Mode: mode})
		if err != nil {
			return false
		}
		inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
		if err != nil {
			return false
		}
		return inst.ExhaustiveCheck(stretch, mode, faults) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGreedyVFTK20F2(b *testing.B) {
	g := gen.Complete(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyVFT(g, 3, 2); err != nil {
			b.Fatal(err)
		}
	}
}
