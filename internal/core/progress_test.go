package core

import (
	"errors"
	"testing"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
)

func TestProgressCalledPerEdge(t *testing.T) {
	g := gen.Complete(8)
	for _, run := range []struct {
		name  string
		build func(opts Options) (*Result, error)
	}{
		{"greedy", func(opts Options) (*Result, error) { return Greedy(g, opts) }},
		{"conservative", func(opts Options) (*Result, error) { return GreedyConservative(g, opts) }},
	} {
		t.Run(run.name, func(t *testing.T) {
			var calls int
			lastScanned := -1
			res, err := run.build(Options{
				Stretch: 3, Faults: 1, Mode: fault.Vertices,
				Progress: func(scanned, kept int) error {
					if scanned != lastScanned+1 {
						t.Errorf("scanned jumped from %d to %d", lastScanned, scanned)
					}
					if kept < 0 || kept > scanned {
						t.Errorf("kept=%d out of range for scanned=%d", kept, scanned)
					}
					lastScanned = scanned
					calls++
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if calls != g.NumEdges() {
				t.Errorf("progress called %d times, want %d", calls, g.NumEdges())
			}
			if res.Stats.EdgesScanned != g.NumEdges() {
				t.Errorf("scanned %d edges, want %d", res.Stats.EdgesScanned, g.NumEdges())
			}
		})
	}
}

func TestProgressErrorAbortsBuild(t *testing.T) {
	g := gen.Complete(8)
	abort := errors.New("abort requested")
	for _, run := range []struct {
		name  string
		build func(opts Options) (*Result, error)
	}{
		{"greedy", func(opts Options) (*Result, error) { return Greedy(g, opts) }},
		{"conservative", func(opts Options) (*Result, error) { return GreedyConservative(g, opts) }},
	} {
		t.Run(run.name, func(t *testing.T) {
			var calls int
			res, err := run.build(Options{
				Stretch: 3, Faults: 1, Mode: fault.Vertices,
				Progress: func(scanned, kept int) error {
					calls++
					if scanned >= 3 {
						return abort
					}
					return nil
				},
			})
			if !errors.Is(err, abort) {
				t.Fatalf("got err %v, want the hook's abort error", err)
			}
			if res != nil {
				t.Fatal("aborted build returned a result")
			}
			if calls != 4 {
				t.Errorf("progress called %d times before abort, want 4", calls)
			}
		})
	}
}
