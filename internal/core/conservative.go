package core

import (
	"fmt"
	"time"

	"github.com/ftspanner/ftspanner/internal/bitset"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// GreedyConservative is a polynomial-time variant of the fault-tolerant
// greedy, addressing the paper's closing open question ("it would be
// interesting to improve this dependence, or perhaps to find a different
// fast algorithm").
//
// Instead of deciding exactly whether some fault set F (|F| <= f) stretches
// the edge — which is exponential in f — it greedily packs pairwise
// disjoint detours of weight <= k·w(u,v) in the spanner so far and REJECTS
// the edge only when it finds f+1 of them. Rejection is sound: any fault
// set of size <= f misses one of the f+1 disjoint detours, so the edge
// stays within stretch under every fault set (this is the same packing
// bound the exact oracle uses for pruning). When fewer disjoint detours
// exist the edge is kept, possibly unnecessarily.
//
// Consequently the output is ALWAYS a valid f-fault-tolerant k-spanner,
// typically (not provably — the two scans evolve different intermediate
// spanners, and a denser conservative prefix can pack detours the exact
// greedy's sparser prefix lacks) no sparser than the exact greedy's, and
// each edge costs at most f+2 bounded Dijkstra runs — polynomial in f.
// Experiment E11 measures the size/time trade-off against the exact
// algorithm.
//
// The result's Witness map is nil: conservative keeps carry no fault-set
// witnesses, so Lemma 3 blocking-set extraction does not apply.
func GreedyConservative(g *graph.Graph, opts Options) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if opts.Stretch < 1 {
		return nil, fmt.Errorf("core: stretch must be >= 1, got %v", opts.Stretch)
	}
	if opts.Faults < 0 {
		return nil, fmt.Errorf("core: faults must be >= 0, got %d", opts.Faults)
	}
	if opts.Mode != fault.Vertices && opts.Mode != fault.Edges {
		return nil, fmt.Errorf("core: invalid fault mode %d", int(opts.Mode))
	}

	start := time.Now()
	h := graph.New(g.NumVertices())
	oracleOpts := opts.Oracle
	oracleOpts.EdgeCapacity = g.NumEdges()
	oracle, err := fault.NewOracle(h, opts.Mode, oracleOpts)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Input:   g,
		Spanner: h,
		KeptSet: bitset.New(g.NumEdges()),
		Mode:    opts.Mode,
		Stretch: opts.Stretch,
		Faults:  opts.Faults,
	}
	for _, e := range g.EdgesByWeight() {
		if opts.Progress != nil {
			if err := opts.Progress(res.Stats.EdgesScanned, len(res.Kept)); err != nil {
				return nil, err
			}
		}
		res.Stats.EdgesScanned++
		count, err := oracle.CountDisjointShortPaths(e.U, e.V, opts.Stretch*e.Weight, opts.Faults+1)
		if err != nil {
			return nil, fmt.Errorf("core: edge %d: %w", e.ID, err)
		}
		if count > opts.Faults {
			continue // f+1 disjoint detours: provably safe to drop
		}
		h.MustAddEdge(e.U, e.V, e.Weight)
		res.Kept = append(res.Kept, e.ID)
		res.KeptSet.Add(e.ID)
	}
	res.Stats.OracleCalls = int64(res.Stats.EdgesScanned)
	res.Stats.Dijkstras = oracle.Dijkstras()
	res.Stats.Duration = time.Since(start)
	return res, nil
}

// ConservativeVFT is GreedyConservative with vertex faults.
func ConservativeVFT(g *graph.Graph, stretch float64, faults int) (*Result, error) {
	return GreedyConservative(g, Options{Stretch: stretch, Faults: faults, Mode: fault.Vertices})
}

// ConservativeEFT is GreedyConservative with edge faults.
func ConservativeEFT(g *graph.Graph, stretch float64, faults int) (*Result, error) {
	return GreedyConservative(g, Options{Stretch: stretch, Faults: faults, Mode: fault.Edges})
}
