// Package service implements ftserve, the HTTP/JSON spanner-build service:
// clients submit build jobs (input graph inline or by named generator), a
// bounded worker pool drains weighted priority queues, per-job contexts make
// running builds cancellable mid-scan, and completed results are served from
// a two-tier result cache keyed by (graph digest, stretch, faults, mode,
// algorithm): an in-memory LRU in front of an optional durable on-disk store
// that survives restarts.
//
// Endpoints:
//
//	POST   /v1/jobs               submit a build job
//	GET    /v1/jobs/{id}          job status and instrumentation
//	GET    /v1/jobs/{id}/spanner  the built spanner and kept-edge IDs
//	GET    /v1/jobs/{id}/events   NDJSON progress stream
//	DELETE /v1/jobs/{id}          cancel a queued or running job
//	POST   /v1/verify             random-fault check of a completed job
//	POST   /v1/sessions           create a live graph session
//	GET    /v1/sessions/{id}         session status
//	POST   /v1/sessions/{id}/deltas  apply edge inserts/deletes/faults
//	GET    /v1/sessions/{id}/spanner the session's current spanner
//	GET    /v1/sessions/{id}/events  NDJSON kept-edge delta stream
//	DELETE /v1/sessions/{id}         close a session
//	GET    /metrics               queue, cache, store, and build counters
//
// The package is the architectural seam for scaling the repository into a
// serving system: sharding, batching, and alternative backends all plug in
// behind the same job API.
package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/store"
)

// Config sizes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the size of the build worker pool (default 4).
	Workers int
	// QueueDepth bounds the total queued jobs across every priority class;
	// submissions beyond it are rejected with 503 (default 64).
	QueueDepth int
	// QueueCaps bounds each priority class's share of the queue separately;
	// a submission to a full class is rejected with 429 and a Retry-After
	// header (backpressure the client can act on, unlike the global 503).
	// Classes absent or <= 0 default to QueueDepth, i.e. no extra bound.
	// The global QueueDepth check runs first, so a cap only produces 429s
	// when it is BELOW QueueDepth — a cap at or above it is effectively
	// unlimited (ftserve rejects such flag values up front).
	QueueCaps map[Priority]int
	// CacheEntries bounds the in-memory result LRU cache (default 128).
	CacheEntries int
	// StoreDir enables the durable result store: one content-addressed file
	// per (graph digest, parameters) under this directory, consulted on
	// in-memory cache misses and written on every completed build, so a
	// restarted server over the same directory is warm. Empty disables
	// persistence.
	StoreDir string
	// StoreMaxBytes LRU-bounds the store's total on-disk bytes; a background
	// evictor deletes least-recently-used records over the bound. Zero
	// selects the default of 256 MiB; negative disables the bound.
	StoreMaxBytes int64
	// MaxBodyBytes bounds request bodies, which contain inline graphs
	// (default 8 MiB).
	MaxBodyBytes int64
	// JobRetention bounds how long terminal jobs (done, failed, cancelled)
	// stay addressable after finishing; a background janitor evicts older
	// ones, and evicted job IDs answer 404. Without it the in-memory job map
	// grows forever under sustained traffic. Zero selects the default of 15
	// minutes; negative disables eviction. Results outlive their jobs in the
	// result cache, so an evicted job's spanner is still one resubmission
	// away.
	JobRetention time.Duration
	// TraceRetention bounds how long a terminal job's lifecycle trace stays
	// readable at GET /v1/jobs/{id}/trace. Traces are the largest per-job
	// in-memory artifact, so they may be dropped before the job itself: the
	// janitor frees traces past this age while the job (status, stats)
	// remains addressable until JobRetention lapses. Zero selects
	// JobRetention (trace lives exactly as long as its job); negative
	// disables early dropping.
	TraceRetention time.Duration
	// WaitBudget enables latency-based load shedding: when a priority
	// class's recent p90 queue wait — or its current head-of-line age —
	// exceeds this budget, new submissions to the class are refused with
	// 429 and Retry-After instead of joining a queue they would only age
	// in. Zero disables shedding (the per-class depth caps still apply).
	WaitBudget time.Duration
	// PipelineCap bounds the adaptive pipeline depth chosen for greedy jobs
	// that ask for Parallelism > 1 but leave Pipeline unset: the server
	// tunes the depth from observed speculation waste, never exceeding this
	// cap (default 8, clamped to the engine maximum). Jobs that set
	// Pipeline explicitly are never tuned.
	PipelineCap int
	// Version is an opaque build stamp reported in /metrics and /healthz.
	Version string
	// Chaos, if non-nil, is handed to every greedy build as the core
	// engine's fault-injection hook (core.Options.Chaos): it is invoked at
	// named sites inside oracle queries, pipeline workers, and
	// re-speculation rounds, and may panic to exercise the server's panic
	// containment. Test-only; nil in production.
	Chaos func(site string)
	// StoreFS overrides the durable store's filesystem seam (store.FS) so
	// tests can inject I/O faults; nil selects the real OS filesystem.
	StoreFS store.FS
	// StoreProbeInterval overrides how often a degraded store re-probes the
	// disk (store.Config.ProbeInterval); zero selects the store default.
	// Test-only: short intervals make breaker re-arm observable quickly.
	StoreProbeInterval time.Duration
	// StoreRetrySeed seeds the store's retry-jitter randomness
	// (store.Config.JitterSeed) so chaos runs replay deterministically under
	// CHAOS_SEED; zero lets the store pick a time-based seed.
	StoreRetrySeed int64
	// SessionRetention bounds how long an idle graph session stays alive:
	// the janitor closes and evicts sessions untouched for this long (their
	// event streams see a terminal "closed" event). Zero selects the default
	// of 30 minutes; negative disables eviction.
	SessionRetention time.Duration
	// MaxSessions caps concurrently live graph sessions; creations beyond it
	// are refused with 429. Zero selects the default of 64; negative removes
	// the cap.
	MaxSessions int
}

const (
	defaultJobRetention  = 15 * time.Minute
	defaultStoreMaxBytes = 256 << 20
	defaultPipelineCap   = 8
)

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 128
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.JobRetention == 0 {
		c.JobRetention = defaultJobRetention
	}
	if c.StoreMaxBytes == 0 {
		c.StoreMaxBytes = defaultStoreMaxBytes
	}
	if c.TraceRetention == 0 {
		c.TraceRetention = c.JobRetention
	}
	if c.PipelineCap <= 0 {
		c.PipelineCap = defaultPipelineCap
	}
	if c.SessionRetention == 0 {
		c.SessionRetention = defaultSessionRetention
	}
	if c.PipelineCap > maxPipeline {
		c.PipelineCap = maxPipeline
	}
	caps := make(map[Priority]int, numClasses)
	for p := range classes {
		if n := c.QueueCaps[p]; n > 0 {
			caps[p] = n
		} else {
			caps[p] = c.QueueDepth
		}
	}
	c.QueueCaps = caps
}

// Server is the ftserve HTTP handler plus its worker pool. Create one with
// New and release it with Close.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *lruCache
	store *store.Store // nil when persistence is disabled
	met   metrics

	// Observability and adaptive control (this package's obs.go and
	// adaptive.go): latency histograms for /metrics, the pipeline-depth
	// tuner, the queue-wait load shedder, and the start time behind
	// uptime_seconds.
	lat     *latencies
	tuner   *pipeTuner
	shedder *waitShedder
	started time.Time

	// wake carries one token per enqueued job so idle workers notice new
	// work; spurious tokens (for jobs cancelled while queued) just make a
	// worker re-check an empty queue.
	wake chan struct{}

	mu     sync.Mutex
	queues jobQueues // pending jobs, one FIFO per priority class
	jobs   map[string]*Job
	active map[CacheKey]*Job // queued or running, for in-flight dedup
	nextID int64

	// Live graph sessions (session.go). Lock order: sessMu before any
	// individual session's mu.
	sessMu   sync.Mutex
	sessions map[string]*Session
	nextSess int64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// draining refuses new submissions (503 + Retry-After) while running
	// builds finish; set by StartDrain and by Close. inflight counts
	// dequeued jobs from dequeue (under s.mu) to the end of run, so Drain
	// can wait for exactly the builds that hold worker slots: StartDrain
	// empties the queues under the same s.mu, after which no new Add can
	// race the Wait. closeOnce makes Close idempotent.
	draining  atomic.Bool
	inflight  sync.WaitGroup
	closeOnce sync.Once
}

// New returns a Server with cfg's worker pool already running. With
// Config.StoreDir set it opens (creating if needed) the durable result
// store first and fails if the directory is unusable.
func New(cfg Config) (*Server, error) {
	cfg.applyDefaults()
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		st, err = store.OpenConfig(store.Config{
			Dir:           cfg.StoreDir,
			MaxBytes:      cfg.StoreMaxBytes,
			FS:            cfg.StoreFS,
			ProbeInterval: cfg.StoreProbeInterval,
			JitterSeed:    cfg.StoreRetrySeed,
		})
		if err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		wake:     make(chan struct{}, cfg.QueueDepth),
		cache:    newLRU(cfg.CacheEntries),
		store:    st,
		jobs:     make(map[string]*Job),
		active:   make(map[CacheKey]*Job),
		sessions: make(map[string]*Session),
		lat:      newLatencies(),
		tuner:    newPipeTuner(cfg.PipelineCap),
		shedder:  newWaitShedder(cfg.WaitBudget),
		started:  time.Now(),
		ctx:      ctx,
		cancel:   cancel,
	}
	if st != nil {
		st.SetObserver(s.lat.storeObserver)
	}
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if cfg.JobRetention > 0 || cfg.TraceRetention > 0 || cfg.SessionRetention > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// janitor periodically evicts terminal jobs older than JobRetention, drops
// traces older than TraceRetention, and closes graph sessions idle past
// SessionRetention.
func (s *Server) janitor() {
	defer s.wg.Done()
	ret := s.cfg.JobRetention
	if s.cfg.TraceRetention > 0 && (ret <= 0 || s.cfg.TraceRetention < ret) {
		ret = s.cfg.TraceRetention
	}
	if s.cfg.SessionRetention > 0 && (ret <= 0 || s.cfg.SessionRetention < ret) {
		ret = s.cfg.SessionRetention
	}
	interval := ret / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			now := time.Now()
			s.sweepExpired(now)
			s.sweepSessions(now)
		}
	}
}

// sweepExpired removes terminal jobs whose retention lapsed before now and
// returns how many were evicted. Queued and running jobs are never touched.
// Traces age out separately: a terminal job older than TraceRetention loses
// its trace (the bulkiest per-job artifact) while the job itself stays
// addressable until JobRetention lapses.
func (s *Server) sweepExpired(now time.Time) int {
	cutoff := now.Add(-s.cfg.JobRetention)
	traceCutoff := now.Add(-s.cfg.TraceRetention)
	evicted := 0
	var dropTraces []*Job
	s.mu.Lock()
	for id, j := range s.jobs {
		j.mu.Lock()
		terminal := j.state.Terminal() && !j.doneAt.IsZero()
		expired := s.cfg.JobRetention > 0 && terminal && j.doneAt.Before(cutoff)
		stale := s.cfg.TraceRetention > 0 && terminal && j.trace != nil && j.doneAt.Before(traceCutoff)
		j.mu.Unlock()
		if expired {
			delete(s.jobs, id)
			evicted++
		} else if stale {
			dropTraces = append(dropTraces, j)
		}
	}
	s.mu.Unlock()
	for _, j := range dropTraces {
		j.dropTrace()
	}
	if evicted > 0 {
		s.met.jobsEvicted.Add(int64(evicted))
	}
	return evicted
}

// Close cancels every in-flight build, waits for the workers to exit, and
// releases the durable store. Persisted results stay on disk for the next
// Server over the same directory. Close is idempotent, and safe against
// concurrent submissions: admissions stop first, then the pool drains, then
// any job that slipped into the queue is cancelled so no client waits on it
// forever.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.cancel()
		s.wg.Wait()
		s.cancelQueued("server closed")
		if s.store != nil {
			s.store.Close()
		}
	})
}

// StartDrain flips the server into draining mode: new submissions are
// refused with 503 + Retry-After (estimated from the running builds'
// progress), queued jobs that no worker has picked up are cancelled, and
// running builds keep their worker slots. Idempotent; follow with Drain to
// wait for the in-flight builds.
func (s *Server) StartDrain() {
	if !s.draining.CompareAndSwap(false, true) {
		return
	}
	s.cancelQueued("server draining")
}

// cancelQueued empties every priority queue, cancelling the jobs it finds.
// With draining already set no new job can join behind it.
func (s *Server) cancelQueued(reason string) {
	s.mu.Lock()
	var queued []*Job
	for {
		job := s.queues.pop()
		if job == nil {
			break
		}
		queued = append(queued, job)
	}
	s.mu.Unlock()
	for _, job := range queued {
		job.mu.Lock()
		if job.state != StateQueued { // cancelled by the client already
			job.mu.Unlock()
			continue
		}
		job.setStateLocked(StateCancelled, Event{Error: reason})
		job.queueSpan.End()
		tr := job.trace
		job.mu.Unlock()
		if tr != nil {
			root := tr.Root()
			root.SetAttr("cancelled", 1)
			root.End()
		}
		s.dropActive(job)
		s.met.jobsCancelled.Add(1)
	}
}

// Drain waits for every in-flight build to finish (and persist) or for ctx
// to expire, whichever is first. On expiry the running builds are cancelled
// and Drain still waits for the workers to record their terminal states —
// the forced path loses results, never invariants. Call StartDrain first;
// Drain on a non-draining server just waits for the momentary in-flight
// set.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // cancels every running build's context
		<-done
		return ctx.Err()
	}
}

// DrainAndClose is the graceful shutdown path: stop admissions, let running
// builds finish within ctx, then release everything with Close. Returns
// ctx's error when the drain had to force-cancel builds.
func (s *Server) DrainAndClose(ctx context.Context) error {
	s.StartDrain()
	err := s.Drain(ctx)
	s.Close()
	return err
}

// Draining reports whether the server is refusing new submissions while it
// shuts down.
func (s *Server) Draining() bool { return s.draining.Load() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		if job := s.dequeue(); job != nil {
			s.run(job)
			s.inflight.Done()
			continue
		}
		select {
		case <-s.ctx.Done():
			return
		case <-s.wake:
		}
	}
}

// dequeue pops the next pending job under the weighted-fair schedule, or
// nil when every queue is empty. A popped job joins the in-flight count
// under the same s.mu hold, so Drain (which empties the queues under s.mu
// before waiting) can never miss one.
func (s *Server) dequeue() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	job := s.queues.pop()
	if job != nil {
		s.met.dequeued[job.class].Add(1)
		s.inflight.Add(1)
	}
	return job
}

// run executes one dequeued job. The worker slot is held only until the
// job's context is cancelled or the build returns, whichever is first: a
// cancelled greedy build aborts at the next edge scan via the Progress
// hook, and the baseline algorithms (which have no hook) are abandoned to
// finish in the background with their result discarded.
func (s *Server) run(job *Job) {
	// A job deadline becomes a real context deadline covering the rest of
	// the build; the queue wait already spent against it is inherent in
	// the absolute deadline computed at submission.
	var ctx context.Context
	var cancel context.CancelFunc
	if job.deadline.IsZero() {
		ctx, cancel = context.WithCancel(s.ctx)
	} else {
		ctx, cancel = context.WithDeadline(s.ctx, job.deadline)
	}
	defer cancel()

	job.mu.Lock()
	if job.state != StateQueued { // cancelled while waiting in the queue
		job.mu.Unlock()
		return
	}
	job.cancel = cancel
	job.setStateLocked(StateRunning, Event{})
	job.queueSpan.End()
	wait := time.Since(job.enqueuedAt)
	job.queueWait = wait
	job.startedAt = time.Now()
	job.buildSpan = job.trace.Root().StartSpan("build")
	job.mu.Unlock()
	s.lat.queueWait[job.class].Record(wait)
	s.shedder.observe(job.class, wait)
	s.met.buildsRun.Add(1)
	s.met.buildStarted()
	defer s.met.buildFinished()

	type outcome struct {
		res *buildResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		// Contain build panics (a bug in an algorithm, or the injected
		// chaos hook) to this job: the panic becomes a failed-job error
		// carrying the value and stack, and the worker slot survives.
		defer func() {
			if v := recover(); v != nil {
				ch <- outcome{nil, &core.PanicError{
					Site: "build", Value: v, Stack: debug.Stack(),
				}}
			}
		}()
		res, err := s.build(ctx, job)
		ch <- outcome{res, err}
	}()
	select {
	case <-ctx.Done():
		// ctx.Err distinguishes shutdown/cancel (Canceled) from a missed
		// job deadline (DeadlineExceeded); finish maps them to distinct
		// terminal states.
		s.finish(job, nil, ctx.Err())
	case out := <-ch:
		s.finish(job, out.res, out.err)
	}
}

// finish moves a running job to its terminal state, updates the metrics,
// and caches successful results in both tiers. Late calls (a build result
// arriving after cancellation already finished the job) are no-ops.
func (s *Server) finish(job *Job, res *buildResult, err error) {
	job.mu.Lock()
	if job.state != StateRunning {
		job.mu.Unlock()
		return
	}
	job.buildSpan.End()
	tr := job.trace
	var buildDur time.Duration
	if !job.startedAt.IsZero() {
		buildDur = time.Since(job.startedAt)
		job.buildDur = buildDur
	}
	var pe *core.PanicError
	switch {
	case err == nil:
		job.result = res
		job.setStateLocked(StateDone, Event{Scanned: res.stats.EdgesScanned, Kept: len(res.kept)})
	case errors.Is(err, context.DeadlineExceeded):
		job.err = fmt.Errorf("deadline of %dms exceeded", job.spec.DeadlineMs)
		job.setStateLocked(StateDeadline, Event{Error: job.err.Error()})
	case errors.Is(err, context.Canceled):
		job.setStateLocked(StateCancelled, Event{})
	case errors.As(err, &pe):
		// The job error keeps the panic value AND stack; the stream event
		// stays compact with just the value.
		job.err = fmt.Errorf("%v\n%s", pe, pe.Stack)
		job.setStateLocked(StateFailed, Event{Error: pe.Error()})
	default:
		job.err = err
		job.setStateLocked(StateFailed, Event{Error: err.Error()})
	}
	job.mu.Unlock()

	// Cache the result BEFORE releasing the dedup key: a duplicate
	// submission racing this finish must find either the active job or the
	// cached result, never a gap that triggers a full rebuild. The durable
	// write rides the same window, so once the key is free the result is
	// also on disk for any future process.
	switch {
	case err == nil:
		s.met.jobsDone.Add(1)
		s.met.dijkstras.Add(res.stats.Dijkstras)
		s.met.witnessHits.Add(res.stats.WitnessHits)
		s.met.witnessMisses.Add(res.stats.WitnessMisses)
		s.met.witnessSeeds.Add(res.stats.WitnessSeedTries)
		s.met.witnessSeedOK.Add(res.stats.WitnessSeedHits)
		s.met.specBatches.Add(res.stats.SpecBatches)
		s.met.specQueries.Add(res.stats.SpecQueries)
		s.met.specHits.Add(res.stats.SpecHits)
		s.met.specWaste.Add(res.stats.SpecWaste)
		s.met.specRounds.Add(res.stats.SpecRounds)
		s.met.specRequeries.Add(res.stats.SpecRequeries)
		s.met.notePipelineDepth(res.stats.PipelineDepth)
		s.lat.build.Record(buildDur)
		s.tuner.observe(res.stats)
		s.cache.Put(job.key, res)
		pstart := time.Now()
		ps := tr.Root().StartSpan("persist")
		s.storePut(job.key, res)
		ps.End()
		if s.store != nil {
			pd := time.Since(pstart)
			s.lat.persist.Record(pd)
			job.mu.Lock()
			job.persistDur = pd
			job.mu.Unlock()
		}
	case errors.Is(err, context.DeadlineExceeded):
		s.met.jobsDeadline.Add(1)
	case errors.Is(err, context.Canceled):
		s.met.jobsCancelled.Add(1)
	default:
		s.met.jobsFailed.Add(1)
		if pe != nil {
			s.met.panics.Add(1)
			if tr != nil {
				// Attr values are int64-only, so the panic text rides in the
				// event name.
				tr.Root().Event(pe.Error())
			}
		}
	}
	tr.Root().End()
	s.dropActive(job)
}

// dropActive removes the job from the in-flight dedup index if it still
// owns its key.
func (s *Server) dropActive(job *Job) {
	s.mu.Lock()
	if s.active[job.key] == job {
		delete(s.active, job.key)
	}
	s.mu.Unlock()
}

// unqueue removes a cancelled job from its pending queue so it stops
// holding a queue slot. A no-op when a worker dequeued it first (the
// worker's state check skips it).
func (s *Server) unqueue(job *Job) {
	s.mu.Lock()
	s.queues.remove(job)
	s.mu.Unlock()
}

// submitError is a client-visible submission failure with an HTTP status.
type submitError struct {
	status int
	msg    string
	// retryAfter > 0 adds a Retry-After header with that many seconds —
	// set on per-class 429 backpressure.
	retryAfter int
}

func (e *submitError) Error() string { return e.msg }

// submit registers a job for the normalized spec: an in-flight duplicate is
// returned as-is (dedup true), a result found in either cache tier produces
// a job born done, and anything else is enqueued onto its priority class
// for the worker pool.
func (s *Server) submit(spec JobSpec) (job *Job, dedup bool, err error) {
	if s.draining.Load() {
		return nil, false, s.drainError()
	}
	g, err := materialize(&spec)
	if err != nil {
		return nil, false, &submitError{status: http.StatusBadRequest, msg: err.Error()}
	}
	key := cacheKeyFor(spec, g)

	s.mu.Lock()
	defer s.mu.Unlock()
	if dup := s.active[key]; dup != nil {
		s.met.jobsSubmitted.Add(1)
		s.met.dedups.Add(1)
		return dup, true, nil
	}
	res, hit := s.cache.Get(key)
	fromStore := false
	if !hit && s.store != nil {
		// Disk tier. The read does file I/O plus a spanner reconstruction
		// and digest check, so s.mu is released for its duration (handlers,
		// other submits, and worker dequeues must not stall behind disk);
		// on re-acquire the dedup index and memory cache are re-checked, so
		// a racing identical submission still never triggers a double build.
		s.mu.Unlock()
		stored := s.storeGet(key, g)
		s.mu.Lock()
		if dup := s.active[key]; dup != nil {
			s.met.jobsSubmitted.Add(1)
			s.met.dedups.Add(1)
			return dup, true, nil
		}
		res, hit = s.cache.Get(key)
		if !hit && stored != nil {
			s.cache.Put(key, stored)
			res, hit, fromStore = stored, true, true
		}
	}
	id := fmt.Sprintf("j%d", s.nextID+1)
	if hit {
		job := newJob(id, key, spec, res.input)
		job.startTrace(true, fromStore)
		job.mu.Lock()
		job.result = res
		job.cached = true
		job.fromStore = fromStore
		job.setStateLocked(StateDone, Event{Scanned: res.stats.EdgesScanned, Kept: len(res.kept)})
		job.mu.Unlock()
		s.nextID++
		s.jobs[id] = job
		s.met.jobsSubmitted.Add(1)
		if !fromStore {
			// Disk-tier hits are counted by the store itself; cache_hits
			// stays "submissions answered from the in-memory LRU".
			s.met.cacheHits.Add(1)
		}
		return job, false, nil
	}
	// Re-checked under s.mu: StartDrain empties the queues under this same
	// lock, so a submission past the lock-free check above must not slip a
	// job into a queue no worker will ever drain.
	if s.draining.Load() {
		return nil, false, s.drainErrorLocked()
	}
	if s.queues.totalLen() >= s.cfg.QueueDepth {
		return nil, false, &submitError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("job queue full (%d queued)", s.queues.totalLen())}
	}
	cls := classOf(spec.Priority)
	if cap := s.cfg.QueueCaps[cls.Priority()]; len(s.queues.q[cls]) >= cap {
		s.met.rejected[cls].Add(1)
		return nil, false, &submitError{
			status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("priority %q queue full (%d queued, cap %d)",
				cls.Priority(), len(s.queues.q[cls]), cap),
			retryAfter: s.retryAfterLocked(cls),
		}
	}
	// Latency-based shedding fires before the queue would: joining a class
	// whose recent p90 wait (or live head-of-line age) already blows the
	// budget just manufactures another late job, so refuse it now while the
	// client can still back off.
	if s.shedder.shouldShed(cls, s.queues.oldestAge(cls, time.Now())) {
		s.met.shed[cls].Add(1)
		return nil, false, &submitError{
			status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("priority %q shedding load: recent queue wait exceeds budget %s",
				cls.Priority(), s.cfg.WaitBudget),
			retryAfter: s.retryAfterLocked(cls),
		}
	}
	// Deadline feasibility: a job whose whole deadline would be eaten by
	// the class's recent p90 queue wait is doomed before any build starts,
	// so refuse it while the client can still retry elsewhere. This runs
	// regardless of WaitBudget — the shedder records waits even with
	// budget shedding disabled.
	if spec.DeadlineMs > 0 {
		if p90, ok := s.shedder.p90(cls); ok && time.Duration(spec.DeadlineMs)*time.Millisecond <= p90 {
			s.met.deadlineRejected[cls].Add(1)
			return nil, false, &submitError{
				status: http.StatusTooManyRequests,
				msg: fmt.Sprintf("deadline %dms cannot be met: priority %q p90 queue wait is %s",
					spec.DeadlineMs, cls.Priority(), p90.Round(time.Millisecond)),
				retryAfter: s.retryAfterLocked(cls),
			}
		}
	}
	job = newJob(id, key, spec, g)
	job.startTrace(false, false)
	s.queues.push(job)
	s.nextID++
	s.jobs[id] = job
	s.active[key] = job
	s.met.jobsSubmitted.Add(1)
	s.met.cacheMisses.Add(1)
	select {
	case s.wake <- struct{}{}:
	default: // wake already saturated; an awake worker will re-check
	}
	return job, false, nil
}

// drainError builds the 503 a draining server answers submissions with,
// acquiring s.mu for the progress scan.
func (s *Server) drainError() *submitError {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainErrorLocked()
}

// drainErrorLocked is drainError with s.mu already held.
func (s *Server) drainErrorLocked() *submitError {
	return &submitError{
		status:     http.StatusServiceUnavailable,
		msg:        "server draining",
		retryAfter: s.drainRetryAfterLocked(),
	}
}

// drainRetryAfterLocked estimates the seconds until the drain finishes from
// the running builds' own progress: for each in-flight job, the elapsed
// build time scaled by the fraction of edges still unscanned, taking the
// slowest job's estimate, clamped to [1, 60]. A build that has reported no
// progress yet is assumed to need as long again as it has already run.
// Caller holds s.mu.
func (s *Server) drainRetryAfterLocked() int {
	now := time.Now()
	var worst time.Duration
	for _, j := range s.jobs {
		j.mu.Lock()
		running := j.state == StateRunning
		started := j.startedAt
		j.mu.Unlock()
		if !running || started.IsZero() {
			continue
		}
		elapsed := now.Sub(started)
		total := int64(j.graph.NumEdges())
		scanned := j.scanned.Load()
		var rem time.Duration
		if scanned <= 0 || scanned >= total {
			rem = elapsed
		} else {
			rem = time.Duration(float64(elapsed) * float64(total-scanned) / float64(scanned))
		}
		if rem > worst {
			worst = rem
		}
	}
	sec := int(worst/time.Second) + 1
	if sec > 60 {
		sec = 60
	}
	return sec
}

// retryAfterLocked estimates how long a rejected client should wait before
// resubmitting to class c: roughly the time for the class's backlog to
// drain through its weighted share of the pool, clamped to [1s, 60s].
// Caller holds s.mu.
func (s *Server) retryAfterLocked(c class) int {
	share := s.cfg.Workers * classWeights[c] / weightSum
	if share < 1 {
		share = 1
	}
	sec := 1 + len(s.queues.q[c])/share
	if sec > 60 {
		sec = 60
	}
	return sec
}

// job looks a job up by ID.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job; terminal jobs are left alone.
// A queued job turns cancelled immediately and its queue slot frees right
// away; a running job's context is cancelled and the worker records the
// terminal state.
func (s *Server) cancelJob(job *Job) State {
	job.mu.Lock()
	switch job.state {
	case StateQueued:
		job.setStateLocked(StateCancelled, Event{})
		job.queueSpan.End()
		tr := job.trace
		job.mu.Unlock()
		if tr != nil {
			root := tr.Root()
			root.SetAttr("cancelled", 1)
			root.End()
		}
		s.unqueue(job)
		s.dropActive(job)
		s.met.jobsCancelled.Add(1)
		return StateCancelled
	case StateRunning:
		cancel := job.cancel
		job.mu.Unlock()
		cancel()
		return StateRunning
	default:
		st := job.state
		job.mu.Unlock()
		return st
	}
}
