package service

import (
	"fmt"
	"time"
)

// Priority is a job's scheduling class. Higher classes get proportionally
// more worker dequeues when the pool is saturated, but no class starves:
// the weighted-fair scheduler serves every backlogged class at least once
// per weight-sum dequeues.
type Priority string

// Scheduling classes, highest first. The zero value selects normal.
const (
	PriorityHigh   Priority = "high"
	PriorityNormal Priority = "normal"
	PriorityLow    Priority = "low"
)

// class is a Priority's queue index; iteration order is highest first.
type class int

const (
	classHigh class = iota
	classNormal
	classLow
	numClasses
)

// classWeights are the weighted-fair dequeue shares: with every class
// backlogged, workers drain high:normal:low at 4:2:1, and any job at the
// head of its queue waits at most weightSum dequeues (the starvation
// bound locked by TestLowPriorityStarvationBound).
var classWeights = [numClasses]int{4, 2, 1}

// weightSum is the scheduling cycle length: a backlogged class is served at
// least once per this many dequeues.
const weightSum = 7

// classes maps Priority strings to queue indexes.
var classes = map[Priority]class{
	PriorityHigh:   classHigh,
	PriorityNormal: classNormal,
	PriorityLow:    classLow,
}

// classOf maps a Priority to its queue index, defaulting anything
// unrecognized (notably the zero value) to normal — specs reach the queue
// normalized, this is belt and braces.
func classOf(p Priority) class {
	if c, ok := classes[p]; ok {
		return c
	}
	return classNormal
}

// Priority returns the class's Priority name.
func (c class) Priority() Priority {
	switch c {
	case classHigh:
		return PriorityHigh
	case classLow:
		return PriorityLow
	default:
		return PriorityNormal
	}
}

// normalizePriority validates spec.Priority in place, defaulting empty to
// normal.
func normalizePriority(spec *JobSpec) error {
	if spec.Priority == "" {
		spec.Priority = PriorityNormal
	}
	if _, ok := classes[spec.Priority]; !ok {
		return fmt.Errorf("unknown priority %q (want %q, %q, or %q)",
			spec.Priority, PriorityHigh, PriorityNormal, PriorityLow)
	}
	return nil
}

// jobQueues is the server's pending-job structure: one FIFO per priority
// class plus the smooth-weighted-round-robin state that picks the next
// class to drain. All methods are called with Server.mu held.
type jobQueues struct {
	q  [numClasses][]*Job
	cw [numClasses]int // smooth WRR current weights
}

// totalLen is the number of queued jobs across every class.
func (jq *jobQueues) totalLen() int {
	n := 0
	for c := range jq.q {
		n += len(jq.q[c])
	}
	return n
}

// push appends the job to its class's FIFO.
func (jq *jobQueues) push(job *Job) {
	jq.q[job.class] = append(jq.q[job.class], job)
}

// pop removes and returns the next job under smooth weighted round-robin
// (the nginx algorithm): every non-empty class gains its weight, the
// largest current weight wins and pays back the round's total. Empty
// classes neither gain nor block, so a lone low-priority backlog drains at
// full speed, while under contention class c receives a weight[c]/weightSum
// share of dequeues.
func (jq *jobQueues) pop() *Job {
	best := class(-1)
	total := 0
	for c := range jq.q {
		if len(jq.q[c]) == 0 {
			continue
		}
		jq.cw[c] += classWeights[c]
		total += classWeights[c]
		if best < 0 || jq.cw[c] > jq.cw[best] {
			best = class(c)
		}
	}
	if best < 0 {
		return nil
	}
	jq.cw[best] -= total
	job := jq.q[best][0]
	jq.q[best] = jq.q[best][1:]
	return job
}

// remove deletes the job from its class's FIFO in place; a no-op when a
// worker popped it first.
func (jq *jobQueues) remove(job *Job) {
	q := jq.q[job.class]
	for i, p := range q {
		if p == job {
			jq.q[job.class] = append(q[:i], q[i+1:]...)
			return
		}
	}
}

// oldestAge returns how long the head of class c has been queued (zero when
// the class is empty).
func (jq *jobQueues) oldestAge(c class, now time.Time) time.Duration {
	if len(jq.q[c]) == 0 {
		return 0
	}
	return now.Sub(jq.q[c][0].enqueuedAt)
}
