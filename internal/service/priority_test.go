package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// mkJob returns a bare queued job of the given class for unit-level queue
// tests (no spec or graph needed below the HTTP layer).
func mkJob(c class) *Job { return &Job{class: c} }

// TestWeightedFairPopShares: with every class backlogged, each consecutive
// window of weightSum pops hands out exactly the configured 4:2:1 shares.
func TestWeightedFairPopShares(t *testing.T) {
	var jq jobQueues
	for i := 0; i < 12; i++ {
		jq.push(mkJob(classHigh))
		jq.push(mkJob(classNormal))
		jq.push(mkJob(classLow))
	}
	for window := 0; window < 3; window++ {
		var got [numClasses]int
		for i := 0; i < weightSum; i++ {
			job := jq.pop()
			if job == nil {
				t.Fatalf("window %d pop %d: empty pop with backlog remaining", window, i)
			}
			got[job.class]++
		}
		if got != classWeights {
			t.Fatalf("window %d shares %v, want %v", window, got, classWeights)
		}
	}
}

// TestPopIsFIFOWithinClass: scheduling reorders classes, never jobs within
// a class.
func TestPopIsFIFOWithinClass(t *testing.T) {
	var jq jobQueues
	jobs := make([]*Job, 20)
	for i := range jobs {
		jobs[i] = mkJob(classLow)
		jq.push(jobs[i])
	}
	for i := range jobs {
		if got := jq.pop(); got != jobs[i] {
			t.Fatalf("pop %d returned out of order", i)
		}
	}
	if jq.pop() != nil {
		t.Fatal("pop from drained queues returned a job")
	}
}

// TestSoleClassDrainsAtFullSpeed: an empty class neither gains credit nor
// blocks; a lone backlog (any class) is served on every pop.
func TestSoleClassDrainsAtFullSpeed(t *testing.T) {
	for c := class(0); c < numClasses; c++ {
		var jq jobQueues
		for i := 0; i < 5; i++ {
			jq.push(mkJob(c))
		}
		for i := 0; i < 5; i++ {
			if job := jq.pop(); job == nil || job.class != c {
				t.Fatalf("class %v pop %d: got %+v", c, i, job)
			}
		}
	}
}

// TestStarvationBoundUnit is the scheduler's liveness guarantee: whatever
// the competing backlog, a job at the head of ANY class is popped within
// weightSum dequeues.
func TestStarvationBoundUnit(t *testing.T) {
	backlogs := [][]class{
		{classHigh},
		{classNormal},
		{classHigh, classNormal},
		{classHigh, classHigh, classNormal}, // duplicates just deepen the backlog
	}
	for target := class(0); target < numClasses; target++ {
		for _, others := range backlogs {
			var jq jobQueues
			for _, c := range others {
				if c == target {
					continue
				}
				for i := 0; i < 100; i++ {
					jq.push(mkJob(c))
				}
			}
			want := mkJob(target)
			jq.push(want)
			found := -1
			for i := 0; i < weightSum; i++ {
				if jq.pop() == want {
					found = i
					break
				}
			}
			if found < 0 {
				t.Fatalf("class %v job starved past %d pops against backlog %v", target, weightSum, others)
			}
		}
	}
}

// doneAtOf reads a terminal job's completion instant.
func doneAtOf(t *testing.T, srv *Server, id string) time.Time {
	t.Helper()
	job, ok := srv.job(id)
	if !ok {
		t.Fatalf("no job %s", id)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if !job.state.Terminal() {
		t.Fatalf("job %s is %s, not terminal", id, job.state)
	}
	return job.doneAt
}

// prioritySpec is smallSpec with a distinct seed and a priority class.
func prioritySpec(seed int64, p Priority) JobSpec {
	spec := smallSpec(seed)
	spec.Priority = p
	return spec
}

// blockerSpec is a build heavy enough (seconds) to hold the lone worker
// while a test submits its whole queue — slowSpec is too quick once ~20
// HTTP submissions contend for the same CPU.
func blockerSpec() JobSpec {
	return JobSpec{
		Generator: &GeneratorSpec{Name: "random", N: 450, M: 27000, Seed: 999},
		Stretch:   3,
		Faults:    3,
	}
}

// submitBlocked starts a one-worker server with a long build occupying the
// worker, so every job submitted afterwards queues behind it and the
// dequeue order is decided by the scheduler alone.
func submitBlocked(t *testing.T, cfg Config) (*Server, *httptest.Server, submitResponse) {
	t.Helper()
	cfg.Workers = 1
	srv, ts := newTestServer(t, cfg)
	blocker := submitJob(t, ts, blockerSpec())
	waitState(t, ts, blocker.ID, StateRunning)
	return srv, ts, blocker
}

// assertBlockerHeld fails the test if the blocker finished before the
// queued submissions were all in — the scheduling observation would be
// meaningless. slowSpec runs hundreds of milliseconds against ~1ms of
// submissions, so tripping this means the workload model broke.
func assertBlockerHeld(t *testing.T, ts *httptest.Server, blockerID string) {
	t.Helper()
	var st statusResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+blockerID, nil, &st); code != http.StatusOK {
		t.Fatalf("blocker status returned %d", code)
	}
	if st.State != StateRunning {
		t.Fatalf("blocker already %s before submissions finished; queue order not observable", st.State)
	}
}

// TestPriorityOrderingUnderSaturatedPool locks the end-to-end weighted-fair
// dequeue order: with one worker busy and 4 high + 2 normal + 1 low queued,
// completion order must follow the smooth-WRR cycle H N H L H N H (FIFO
// within each class).
func TestPriorityOrderingUnderSaturatedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-build scheduling soak skipped in -short mode")
	}
	srv, ts, blocker := submitBlocked(t, Config{QueueDepth: 32})

	wantOrder := []Priority{
		PriorityHigh, PriorityNormal, PriorityHigh, PriorityLow,
		PriorityHigh, PriorityNormal, PriorityHigh,
	}
	// Submission order groups classes so FIFO-within-class is also visible:
	// seeds are distinct, so every job is a real build.
	var ids []string
	var want []Priority
	seed := int64(100)
	for _, p := range []Priority{PriorityHigh, PriorityHigh, PriorityHigh, PriorityHigh,
		PriorityNormal, PriorityNormal, PriorityLow} {
		seed++
		sub := submitJob(t, ts, prioritySpec(seed, p))
		if sub.Cached || sub.Deduplicated {
			t.Fatalf("queued submission unexpectedly %+v", sub)
		}
		ids = append(ids, sub.ID)
		want = append(want, p)
	}
	assertBlockerHeld(t, ts, blocker.ID)

	for _, id := range ids {
		waitState(t, ts, id, StateDone)
	}
	// Completion order == dequeue order (one worker, serial builds).
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	done := make([]time.Time, len(ids))
	for i, id := range ids {
		done[i] = doneAtOf(t, srv, id)
	}
	sort.Slice(order, func(a, b int) bool { return done[order[a]].Before(done[order[b]]) })
	var got []Priority
	for _, i := range order {
		got = append(got, want[i])
	}
	for i := range wantOrder {
		if got[i] != wantOrder[i] {
			t.Fatalf("completion class order %v, want %v", got, wantOrder)
		}
	}
	// FIFO within class: the four high jobs finished in submission order.
	var highDone []time.Time
	for i, p := range want {
		if p == PriorityHigh {
			highDone = append(highDone, done[i])
		}
	}
	for i := 1; i < len(highDone); i++ {
		if highDone[i].Before(highDone[i-1]) {
			t.Fatalf("high-priority jobs completed out of submission order")
		}
	}
	m := getMetrics(t, ts)
	if q := m.Queues[PriorityHigh]; q.Dequeued != 4 || q.Weight != classWeights[classHigh] {
		t.Errorf("high class snapshot %+v, want 4 dequeued at weight %d", q, classWeights[classHigh])
	}
	if q := m.Queues[PriorityLow]; q.Dequeued != 1 {
		t.Errorf("low class snapshot %+v, want 1 dequeued", q)
	}
}

// TestLowPriorityStarvationBound is the satellite bound end to end: a low
// job admitted BEFORE a pile of high jobs completes within weightSum
// dequeues, however deep the high backlog.
func TestLowPriorityStarvationBound(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-build scheduling soak skipped in -short mode")
	}
	const highJobs = 20
	srv, ts, blocker := submitBlocked(t, Config{QueueDepth: 64})

	low := submitJob(t, ts, prioritySpec(200, PriorityLow))
	highIDs := make([]string, highJobs)
	for i := range highIDs {
		highIDs[i] = submitJob(t, ts, prioritySpec(300+int64(i), PriorityHigh)).ID
	}
	assertBlockerHeld(t, ts, blocker.ID)

	waitState(t, ts, low.ID, StateDone)
	for _, id := range highIDs {
		waitState(t, ts, id, StateDone)
	}
	lowDone := doneAtOf(t, srv, low.ID)
	before := 0
	for _, id := range highIDs {
		if doneAtOf(t, srv, id).Before(lowDone) {
			before++
		}
	}
	// The low job is dequeued within weightSum pops, i.e. at most
	// weightSum-1 high jobs may beat it (the exact smooth-WRR trace with
	// only high+low backlogged dequeues it third).
	if before >= weightSum {
		t.Fatalf("%d high-priority jobs completed before the earlier-admitted low job (bound %d)",
			before, weightSum-1)
	}
}

// rawSubmit posts spec and returns the raw response for header inspection.
func rawSubmit(t *testing.T, ts *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestPerClassBackpressure429: a full priority class rejects with 429 and a
// positive Retry-After, counts the rejection, and leaves the other classes'
// admission untouched (the global queue answers 503 as before).
func TestPerClassBackpressure429(t *testing.T) {
	_, ts, blocker := submitBlocked(t, Config{
		QueueDepth: 100,
		QueueCaps:  map[Priority]int{PriorityLow: 1},
	})

	first := submitJob(t, ts, prioritySpec(400, PriorityLow))
	if first.Cached || first.Deduplicated {
		t.Fatalf("first low job unexpectedly %+v", first)
	}
	assertBlockerHeld(t, ts, blocker.ID)

	resp := rawSubmit(t, ts, prioritySpec(401, PriorityLow))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap low submission returned %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, `"low"`) {
		t.Errorf("429 body %q does not name the full class", eb.Error)
	}

	// Other classes are unaffected by low's cap.
	normal := submitJob(t, ts, prioritySpec(402, PriorityNormal))
	if normal.Cached || normal.Deduplicated {
		t.Fatalf("normal job unexpectedly %+v", normal)
	}

	m := getMetrics(t, ts)
	if q := m.Queues[PriorityLow]; q.Rejected != 1 || q.Depth != 1 || q.Cap != 1 {
		t.Fatalf("low class snapshot %+v, want rejected=1 depth=1 cap=1", q)
	}
	if q := m.Queues[PriorityNormal]; q.Rejected != 0 || q.Depth != 1 {
		t.Fatalf("normal class snapshot %+v, want rejected=0 depth=1", q)
	}
	if m.Queues[PriorityLow].OldestAgeMS <= 0 {
		t.Errorf("oldest_age_ms=%v for a queued low job, want > 0", m.Queues[PriorityLow].OldestAgeMS)
	}
}

// TestPriorityValidation: unknown classes are rejected up front, the empty
// class defaults to normal, and priority never enters the cache key (a
// high resubmission of a normal-built result is a cache hit).
func TestPriorityValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	bad := smallSpec(500)
	bad.Priority = "urgent"
	resp := rawSubmit(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority returned %d, want 400", resp.StatusCode)
	}

	built := submitJob(t, ts, smallSpec(501)) // empty priority -> normal
	waitState(t, ts, built.ID, StateDone)
	var st statusResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+built.ID, nil, &st)
	if st.Priority != PriorityNormal {
		t.Fatalf("defaulted priority %q, want %q", st.Priority, PriorityNormal)
	}

	rehit := submitJob(t, ts, prioritySpec(501, PriorityHigh))
	if !rehit.Cached {
		t.Fatal("same spec at a different priority missed the cache; priority must not enter the key")
	}
}
