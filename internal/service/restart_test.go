package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/store"
)

// spannerDigestOf fetches a done job's spanner and returns its content
// digest plus the raw encoded text.
func spannerDigestOf(t *testing.T, ts *httptest.Server, id string) (digest, encoded string, kept []int) {
	t.Helper()
	var sp spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/spanner", nil, &sp); code != http.StatusOK {
		t.Fatalf("spanner fetch returned %d", code)
	}
	h, err := graph.Decode(strings.NewReader(sp.Spanner))
	if err != nil {
		t.Fatalf("spanner does not decode: %v", err)
	}
	return h.Digest(), sp.Spanner, sp.Kept
}

// waitStoreWrites polls /metrics until the store reports at least n writes
// (the durable write trails the job's done state by design).
func waitStoreWrites(t *testing.T, ts *httptest.Server, n int64) MetricsSnapshot {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		m := getMetrics(t, ts)
		if !m.StoreEnabled {
			t.Fatalf("store not enabled: %+v", m)
		}
		if m.StoreWrites >= n {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("store writes stuck at %d, want %d", m.StoreWrites, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// storeFiles lists the live record files under dir.
func storeFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+suffix))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestRestartWarmFromStore is the crash/restart e2e: build over HTTP, tear
// the server down (a new Server over the same store directory is the
// SIGKILL-equivalent — nothing in-process survives, only what was already
// durable), and assert the second process serves the identical result from
// disk without building.
func TestRestartWarmFromStore(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, StoreDir: dir}
	spec := smallSpec(5)

	srv1, ts1 := newTestServer(t, cfg)
	first := submitJob(t, ts1, spec)
	waitState(t, ts1, first.ID, StateDone)
	digest1, enc1, kept1 := spannerDigestOf(t, ts1, first.ID)
	// The job turns done before the worker's durable write lands (status
	// visibility does not wait on disk; only the dedup-key release does), so
	// poll for the write instead of asserting instantly.
	waitStoreWrites(t, ts1, 1)
	if files := storeFiles(t, dir, ".ftr"); len(files) != 1 {
		t.Fatalf("store dir holds %v, want one record", files)
	}
	// Abrupt teardown: the record went durable at build-finish time, so no
	// shutdown flush is involved in what the next process sees.
	ts1.Close()
	srv1.Close()

	srv2, ts2 := newTestServer(t, cfg)
	second := submitJob(t, ts2, spec)
	if !second.Cached || !second.FromStore || second.State != StateDone {
		t.Fatalf("restart resubmission got %+v, want a done from_store cache hit", second)
	}
	digest2, enc2, kept2 := spannerDigestOf(t, ts2, second.ID)
	if digest2 != digest1 || enc2 != enc1 {
		t.Fatalf("restart-warm spanner differs from the original build:\n first  %s\n second %s", digest1, digest2)
	}
	if len(kept2) != len(kept1) {
		t.Fatalf("kept lists differ: %v vs %v", kept1, kept2)
	}
	for i := range kept1 {
		if kept1[i] != kept2[i] {
			t.Fatalf("kept lists differ at %d: %v vs %v", i, kept1, kept2)
		}
	}
	m := getMetrics(t, ts2)
	if m.BuildsTotal != 0 {
		t.Fatalf("builds_total=%d after a restart-warm hit, want 0 (no build may run)", m.BuildsTotal)
	}
	if m.StoreHits != 1 || m.StoreCorruptTotal != 0 {
		t.Fatalf("store_hits=%d store_corrupt_total=%d, want 1 and 0", m.StoreHits, m.StoreCorruptTotal)
	}
	if m.CacheHits != 0 {
		t.Fatalf("cache_hits=%d for a disk-tier hit, want 0 (it missed the memory LRU)", m.CacheHits)
	}

	// The disk hit warmed the memory LRU: a third submission is a plain
	// memory hit, not another disk read.
	third := submitJob(t, ts2, spec)
	if !third.Cached || third.FromStore {
		t.Fatalf("third submission got %+v, want a memory-tier hit", third)
	}
	m = getMetrics(t, ts2)
	if m.CacheHits != 1 || m.StoreHits != 1 || m.BuildsTotal != 0 {
		t.Fatalf("after memory-tier hit: cache_hits=%d store_hits=%d builds_total=%d, want 1/1/0",
			m.CacheHits, m.StoreHits, m.BuildsTotal)
	}
	ts2.Close()
	srv2.Close()
}

// TestRestartWarmAllAlgorithms: every algorithm's result — greedy,
// conservative, and both baselines (whose kept sets also index the input
// graph) — survives the restart round trip with an identical spanner.
func TestRestartWarmAllAlgorithms(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, StoreDir: dir}
	specs := []JobSpec{
		{Generator: &GeneratorSpec{Name: "random", N: 24, M: 60, Seed: 3}, Stretch: 3, Faults: 1},
		{Generator: &GeneratorSpec{Name: "random", N: 24, M: 60, Seed: 3}, Stretch: 3, Faults: 1, Algorithm: AlgoConservative},
		{Generator: &GeneratorSpec{Name: "random", N: 24, M: 60, Seed: 3}, Stretch: 3, Faults: 1, Mode: "edge", Algorithm: AlgoUnionEFT},
		{Generator: &GeneratorSpec{Name: "random", N: 24, M: 60, Seed: 3}, Stretch: 3, Faults: 1, Algorithm: AlgoSamplingVFT, Seed: 11},
	}

	srv1, ts1 := newTestServer(t, cfg)
	digests := make([]string, len(specs))
	for i, spec := range specs {
		sub := submitJob(t, ts1, spec)
		waitState(t, ts1, sub.ID, StateDone)
		digests[i], _, _ = spannerDigestOf(t, ts1, sub.ID)
	}
	ts1.Close()
	srv1.Close()

	srv2, ts2 := newTestServer(t, cfg)
	for i, spec := range specs {
		sub := submitJob(t, ts2, spec)
		if !sub.FromStore {
			t.Fatalf("spec %d (%s) not served from store after restart", i, spec.Algorithm)
		}
		if d, _, _ := spannerDigestOf(t, ts2, sub.ID); d != digests[i] {
			t.Fatalf("spec %d (%s): restart digest %s != original %s", i, spec.Algorithm, d, digests[i])
		}
	}
	if m := getMetrics(t, ts2); m.BuildsTotal != 0 || m.StoreHits != int64(len(specs)) {
		t.Fatalf("metrics %+v, want zero builds and %d store hits", m, len(specs))
	}
	ts2.Close()
	srv2.Close()
}

// TestCorruptStoreFilesQuarantinedAndRebuilt plants each corruption shape
// in the store directory between two server generations: the second server
// must quarantine the file (rename to .corrupt, count it in
// store_corrupt_total), rebuild from scratch, and re-persist — corrupt
// bytes are never served.
func TestCorruptStoreFilesQuarantinedAndRebuilt(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(data []byte) []byte
	}{
		{"truncated", func(data []byte) []byte { return data[:len(data)/2] }},
		{"flipped CRC byte", func(data []byte) []byte { data[12] ^= 0xFF; return data }},
		{"wrong codec version", func(data []byte) []byte { data[4], data[5] = 0xFE, 0xCA; return data }},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := Config{Workers: 1, StoreDir: dir}
			spec := smallSpec(9)

			srv1, ts1 := newTestServer(t, cfg)
			first := submitJob(t, ts1, spec)
			waitState(t, ts1, first.ID, StateDone)
			digest1, _, _ := spannerDigestOf(t, ts1, first.ID)
			ts1.Close()
			srv1.Close()

			files := storeFiles(t, dir, ".ftr")
			if len(files) != 1 {
				t.Fatalf("store dir holds %v, want one record", files)
			}
			data, err := os.ReadFile(files[0])
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(files[0], tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}

			srv2, ts2 := newTestServer(t, cfg)
			sub := submitJob(t, ts2, spec)
			if sub.Cached || sub.FromStore {
				t.Fatalf("corrupt record was served: %+v", sub)
			}
			waitState(t, ts2, sub.ID, StateDone)
			digest2, _, _ := spannerDigestOf(t, ts2, sub.ID)
			if digest2 != digest1 {
				t.Fatalf("rebuild digest %s != original %s", digest2, digest1)
			}
			m := waitStoreWrites(t, ts2, 1) // re-persist trails the done state
			if m.StoreCorruptTotal != 1 {
				t.Fatalf("store_corrupt_total=%d, want 1", m.StoreCorruptTotal)
			}
			if m.BuildsTotal != 1 || m.StoreWrites != 1 {
				t.Fatalf("builds_total=%d store_writes=%d, want 1 and 1 (rebuild + re-persist)", m.BuildsTotal, m.StoreWrites)
			}
			if got := storeFiles(t, dir, ".corrupt"); len(got) != 1 {
				t.Fatalf("quarantined files %v, want exactly one", got)
			}
			ts2.Close()
			srv2.Close()

			// The rebuild re-persisted: a third generation is warm again.
			srv3, ts3 := newTestServer(t, cfg)
			again := submitJob(t, ts3, spec)
			if !again.FromStore {
				t.Fatalf("third generation not served from the rebuilt record: %+v", again)
			}
			ts3.Close()
			srv3.Close()
		})
	}
}

// TestTamperedRecordDigestMismatchQuarantined covers the integrity check
// ABOVE the codec: a record with a valid CRC whose kept-edge list no longer
// reproduces the recorded spanner digest (tampered content, intact
// envelope) must be quarantined by the service, not served.
func TestTamperedRecordDigestMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 1, StoreDir: dir}
	spec := smallSpec(13)

	srv1, ts1 := newTestServer(t, cfg)
	first := submitJob(t, ts1, spec)
	waitState(t, ts1, first.ID, StateDone)
	ts1.Close()
	srv1.Close()

	// Rewrite the record through the codec itself: drop a kept edge but
	// keep the old spanner digest. CRC and structure stay valid.
	st, err := store.Open(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	files := storeFiles(t, dir, ".ftr")
	if len(files) != 1 {
		t.Fatalf("store dir holds %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	rec, err := store.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Kept) == 0 {
		t.Fatal("record kept no edges; cannot tamper")
	}
	rec.Kept = rec.Kept[:len(rec.Kept)-1]
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	st.Close()

	srv2, ts2 := newTestServer(t, cfg)
	sub := submitJob(t, ts2, spec)
	if sub.Cached || sub.FromStore {
		t.Fatalf("digest-mismatched record was served: %+v", sub)
	}
	waitState(t, ts2, sub.ID, StateDone)
	if m := getMetrics(t, ts2); m.StoreCorruptTotal != 1 || m.BuildsTotal != 1 {
		t.Fatalf("store_corrupt_total=%d builds_total=%d, want 1 and 1", m.StoreCorruptTotal, m.BuildsTotal)
	}
	if got := storeFiles(t, dir, ".corrupt"); len(got) != 1 {
		t.Fatalf("quarantined files %v, want exactly one", got)
	}
	ts2.Close()
	srv2.Close()
}
