package service

import (
	"sync/atomic"
	"time"
)

// metrics holds the server's monotonic counters. Gauges (queue depths, jobs
// by state, cache entries, store bytes) are computed at snapshot time from
// live state.
type metrics struct {
	jobsSubmitted atomic.Int64 // accepted submissions (incl. cache hits and dedups)
	buildsRun     atomic.Int64 // builds actually dispatched to a worker
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	cacheHits     atomic.Int64 // submissions answered from the in-memory LRU
	cacheMisses   atomic.Int64 // submissions that had to queue a build
	dedups        atomic.Int64 // submissions coalesced onto an in-flight job
	dijkstras     atomic.Int64 // total shortest-path runs across completed builds
	witnessHits   atomic.Int64 // oracle queries answered by a cached witness (completed builds)
	witnessMisses atomic.Int64 // oracle queries that consulted the witness cache and branched anyway
	specBatches   atomic.Int64 // same-weight edge batches speculated on (parallel builds)
	specQueries   atomic.Int64 // speculative oracle queries issued against snapshots
	specHits      atomic.Int64 // batch edges committed straight from speculation
	specWaste     atomic.Int64 // speculative answers invalidated and re-speculated
	specRounds    atomic.Int64 // parallel re-speculation rounds over invalidated edges
	specRequeries atomic.Int64 // invalidated edges resolved by a single live re-query
	witnessSeeds  atomic.Int64 // structural witness seed trials across completed builds
	witnessSeedOK atomic.Int64 // seed trials that answered their query
	jobsEvicted   atomic.Int64 // terminal jobs removed by the retention janitor
	panics        atomic.Int64 // build panics recovered into failed jobs
	jobsDeadline  atomic.Int64 // jobs that missed their DeadlineMs

	// Graph-session counters (session.go).
	sessionsCreated       atomic.Int64 // sessions created
	sessionsClosed        atomic.Int64 // sessions closed by DELETE
	sessionsEvicted       atomic.Int64 // idle sessions closed by the retention janitor
	sessionsSeeded        atomic.Int64 // sessions whose engine seeded from the result cache
	sessionDeltaBatches   atomic.Int64 // applied delta batches
	sessionDeltaOps       atomic.Int64 // individual delta operations applied
	sessionFullRebuilds   atomic.Int64 // batches resolved by a from-scratch rebuild
	sessionOracleQueries  atomic.Int64 // live oracle queries during suffix repairs
	sessionShortcuts      atomic.Int64 // suffix decisions carried over without a query
	sessionCachePuts      atomic.Int64 // session results published into the cache tiers
	sessionOracleReuses   atomic.Int64 // suffix repairs that rewound the retained prefix graph + oracle
	sessionOracleRebuilds atomic.Int64 // suffix repairs that built them from scratch (fallback or first batch)

	maxPipeline atomic.Int64 // deepest effective pipeline any completed build ran

	// Per-priority-class scheduling counters, indexed by class.
	dequeued         [numClasses]atomic.Int64 // jobs handed to a worker from this class
	rejected         [numClasses]atomic.Int64 // submissions refused with 429 (class cap)
	shed             [numClasses]atomic.Int64 // submissions refused with 429 (wait budget)
	deadlineRejected [numClasses]atomic.Int64 // submissions refused with 429 (deadline infeasible)

	buildsInFlight atomic.Int64 // builds currently occupying a worker slot
	maxInFlight    atomic.Int64 // high-water mark of buildsInFlight
}

// buildStarted records a worker slot going busy and maintains the
// concurrency high-water mark.
func (m *metrics) buildStarted() {
	n := m.buildsInFlight.Add(1)
	for {
		hw := m.maxInFlight.Load()
		if n <= hw || m.maxInFlight.CompareAndSwap(hw, n) {
			return
		}
	}
}

func (m *metrics) buildFinished() { m.buildsInFlight.Add(-1) }

// notePipelineDepth maintains the deepest-pipeline gauge.
func (m *metrics) notePipelineDepth(d int) {
	n := int64(d)
	for {
		hw := m.maxPipeline.Load()
		if n <= hw || m.maxPipeline.CompareAndSwap(hw, n) {
			return
		}
	}
}

// QueueClassSnapshot reports one priority class's queue in GET /metrics.
type QueueClassSnapshot struct {
	// Depth and Cap are the class's current backlog and admission cap
	// (submissions over it get 429 with Retry-After).
	Depth int `json:"depth"`
	Cap   int `json:"cap"`
	// OldestAgeMS is how long the class's head job has been queued.
	OldestAgeMS float64 `json:"oldest_age_ms"`
	// Weight is the class's weighted-fair dequeue share.
	Weight int `json:"weight"`
	// Dequeued and Rejected count jobs handed to workers from this class and
	// submissions bounced off its cap.
	Dequeued int64 `json:"dequeued"`
	Rejected int64 `json:"rejected"`
	// Shed counts submissions refused by the wait-budget load shedder (a
	// 429 issued on observed latency, before the depth cap would fire).
	Shed int64 `json:"shed"`
	// DeadlineRejected counts submissions refused because their DeadlineMs
	// was infeasible against this class's recent p90 queue wait.
	DeadlineRejected int64 `json:"deadline_rejected"`
}

// MetricsSnapshot is the GET /metrics response.
type MetricsSnapshot struct {
	// Version is the server's build stamp (Config.Version); UptimeSeconds
	// is time since New.
	Version       string  `json:"version,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	JobsSubmitted int64   `json:"jobs_submitted"`
	// JobsDone/Failed/Cancelled are monotonic terminal-outcome counters —
	// unlike the jobs_by_state gauge they survive janitor eviction, so
	// rates computed from successive scrapes are meaningful.
	JobsDone      int64 `json:"jobs_done"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	// JobsDeadlineExceeded counts jobs that hit the deadline_exceeded
	// terminal state; PanicsTotal counts build panics recovered into failed
	// jobs (the worker slot survives every one).
	JobsDeadlineExceeded int64 `json:"jobs_deadline_exceeded"`
	PanicsTotal          int64 `json:"panics_total"`
	// Draining is true once graceful shutdown has begun: submissions get
	// 503 while the running builds finish.
	Draining bool `json:"draining"`
	// BuildsTotal counts builds actually dispatched to a worker — cache and
	// store hits do not increment it, which is how the restart-warm tests
	// prove no recomputation happened.
	BuildsTotal   int64         `json:"builds_total"`
	JobsByState   map[State]int `json:"jobs_by_state"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	// Queues breaks the backlog down by priority class.
	Queues        map[Priority]QueueClassSnapshot `json:"queues"`
	Workers       int                             `json:"workers"`
	CacheHits     int64                           `json:"cache_hits"`
	CacheMisses   int64                           `json:"cache_misses"`
	CacheHitRatio float64                         `json:"cache_hit_ratio"`
	CacheEntries  int                             `json:"cache_entries"`
	// Store* report the durable disk tier: submissions answered from disk
	// (store_hits), lookups that went to disk and found nothing
	// (store_misses), records written, files quarantined as corrupt
	// (store_corrupt_total), LRU evictions, and the current on-disk
	// footprint. All zero with StoreEnabled false.
	StoreEnabled      bool  `json:"store_enabled"`
	StoreHits         int64 `json:"store_hits"`
	StoreMisses       int64 `json:"store_misses"`
	StoreWrites       int64 `json:"store_writes"`
	StoreWriteErrors  int64 `json:"store_write_errors"`
	StoreCorruptTotal int64 `json:"store_corrupt_total"`
	StoreEvictions    int64 `json:"store_evictions"`
	StoreEntries      int   `json:"store_entries"`
	StoreBytes        int64 `json:"store_bytes"`
	StoreMaxBytes     int64 `json:"store_max_bytes"`
	// StoreDegraded is true while the store's circuit breaker is open
	// (memory-only mode: Gets miss, Puts drop, jobs keep completing);
	// StoreRetriesTotal counts transient I/O retries, StoreBreakerTrips
	// counts open transitions, and StoreQuarantined gauges the .corrupt
	// files currently retained for inspection.
	StoreDegraded     bool  `json:"store_degraded"`
	StoreRetriesTotal int64 `json:"store_retries_total"`
	StoreBreakerTrips int64 `json:"store_breaker_trips"`
	StoreQuarantined  int   `json:"store_quarantined"`
	Deduplicated      int64 `json:"deduplicated"`
	Dijkstras         int64 `json:"dijkstras_total"`
	// WitnessCacheHits/Misses aggregate the build oracle's witness-reuse
	// counters across completed builds; the ratio is hits/(hits+misses).
	WitnessCacheHits     int64   `json:"witness_cache_hits"`
	WitnessCacheMisses   int64   `json:"witness_cache_misses"`
	WitnessCacheHitRatio float64 `json:"witness_cache_hit_ratio"`
	// WitnessSeedTries/Hits count the structure-aware cache's seed trials
	// (singleton fault candidates read off path structure) and the queries
	// they answered; seed hits are included in witness_cache_hits.
	WitnessSeedTries int64 `json:"witness_seed_tries"`
	WitnessSeedHits  int64 `json:"witness_seed_hits"`
	// Spec* aggregate the pipelined parallel greedy's speculation counters
	// across completed builds: batches speculated, speculative queries
	// issued (initial batches plus re-speculation rounds), answers
	// committed straight from speculation, answers invalidated by an
	// earlier commit (spec_hits + spec_waste == spec_queries), parallel
	// re-speculation rounds run, and invalidated edges resolved by a single
	// live re-query.
	SpecBatches   int64   `json:"spec_batches"`
	SpecQueries   int64   `json:"spec_queries"`
	SpecHits      int64   `json:"spec_hits"`
	SpecWaste     int64   `json:"spec_waste"`
	SpecRounds    int64   `json:"spec_rounds"`
	SpecRequeries int64   `json:"spec_requeries"`
	SpecHitRatio  float64 `json:"spec_hit_ratio"`
	// MaxPipelineDepth is the deepest effective pipeline any completed
	// build ran with (0 until a parallel build completes).
	MaxPipelineDepth int64 `json:"max_pipeline_depth"`
	// JobsEvicted counts terminal jobs removed by the retention janitor;
	// their IDs answer 404 afterwards.
	JobsEvicted int64 `json:"jobs_evicted"`
	// Sessions* report the live-graph-session subsystem: the current live
	// count (gauge), lifetime creations, client closes, idle evictions, and
	// engines seeded from the result cache instead of a cold greedy build.
	SessionsActive       int   `json:"sessions_active"`
	SessionsCreatedTotal int64 `json:"sessions_created_total"`
	SessionsClosedTotal  int64 `json:"sessions_closed_total"`
	SessionsEvictedTotal int64 `json:"sessions_evicted_total"`
	SessionsSeededTotal  int64 `json:"sessions_seeded_total"`
	// SessionDelta* instrument incremental maintenance: applied batches and
	// operations, batches that fell back to a full rebuild, live oracle
	// queries spent in suffix repairs, decisions carried over by the
	// monotonicity shortcuts without a query, and results published into
	// the cache tiers under evolving digests.
	SessionDeltaBatchesTotal  int64 `json:"session_delta_batches_total"`
	SessionDeltaOpsTotal      int64 `json:"session_delta_ops_total"`
	SessionFullRebuildsTotal  int64 `json:"session_full_rebuilds_total"`
	SessionOracleQueriesTotal int64 `json:"session_oracle_queries_total"`
	SessionShortcutsTotal     int64 `json:"session_shortcut_decisions_total"`
	SessionCachePutsTotal     int64 `json:"session_cache_puts_total"`
	// SessionOracleReuses counts suffix repairs that rewound the engine's
	// retained prefix graph and oracle to the divergence point;
	// SessionOracleRebuilds counts repairs that constructed them from
	// scratch (first batch after create/fallback, or reuse disabled). Their
	// ratio is the reuse efficacy of the persistent incremental engine.
	SessionOracleReusesTotal   int64 `json:"session_oracle_reuses_total"`
	SessionOracleRebuildsTotal int64 `json:"session_oracle_rebuilds_total"`
	// BuildsInFlight and MaxConcurrentBuilds gauge worker-pool usage: how
	// many builds hold a slot right now and the most that ever did at once.
	BuildsInFlight      int64 `json:"builds_in_flight"`
	MaxConcurrentBuilds int64 `json:"max_concurrent_builds"`
	// Latency carries p50/p90/p99/max/mean summaries of the server's
	// log-bucketed histograms: queue wait per priority class, build and
	// persist durations, store get/put, and sampled oracle queries.
	Latency LatencySnapshot `json:"latency"`
	// AdaptivePipelineDepth is the depth the tuner would hand the next
	// adaptive build (jobs with parallelism > 1 and pipeline unset);
	// AdaptivePipelineCap is its configured ceiling.
	AdaptivePipelineDepth int `json:"adaptive_pipeline_depth"`
	AdaptivePipelineCap   int `json:"adaptive_pipeline_cap"`
	// WaitBudgetMS is the load-shedding latency budget (0 = shedding off).
	WaitBudgetMS float64 `json:"wait_budget_ms"`
}

// Metrics returns a consistent point-in-time snapshot of the server's
// counters and gauges.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		Version:              s.cfg.Version,
		UptimeSeconds:        time.Since(s.started).Seconds(),
		JobsSubmitted:        s.met.jobsSubmitted.Load(),
		JobsDone:             s.met.jobsDone.Load(),
		JobsFailed:           s.met.jobsFailed.Load(),
		JobsCancelled:        s.met.jobsCancelled.Load(),
		JobsDeadlineExceeded: s.met.jobsDeadline.Load(),
		PanicsTotal:          s.met.panics.Load(),
		Draining:             s.draining.Load(),
		BuildsTotal:          s.met.buildsRun.Load(),
		JobsByState:          make(map[State]int),
		QueueCapacity:        s.cfg.QueueDepth,
		Queues:               make(map[Priority]QueueClassSnapshot, numClasses),
		Workers:              s.cfg.Workers,
		CacheHits:            s.met.cacheHits.Load(),
		CacheMisses:          s.met.cacheMisses.Load(),
		CacheEntries:         s.cache.Len(),
		Deduplicated:         s.met.dedups.Load(),
		Dijkstras:            s.met.dijkstras.Load(),

		WitnessCacheHits:   s.met.witnessHits.Load(),
		WitnessCacheMisses: s.met.witnessMisses.Load(),
		WitnessSeedTries:   s.met.witnessSeeds.Load(),
		WitnessSeedHits:    s.met.witnessSeedOK.Load(),

		SpecBatches:      s.met.specBatches.Load(),
		SpecQueries:      s.met.specQueries.Load(),
		SpecHits:         s.met.specHits.Load(),
		SpecWaste:        s.met.specWaste.Load(),
		SpecRounds:       s.met.specRounds.Load(),
		SpecRequeries:    s.met.specRequeries.Load(),
		MaxPipelineDepth: s.met.maxPipeline.Load(),
		JobsEvicted:      s.met.jobsEvicted.Load(),

		SessionsCreatedTotal:      s.met.sessionsCreated.Load(),
		SessionsClosedTotal:       s.met.sessionsClosed.Load(),
		SessionsEvictedTotal:      s.met.sessionsEvicted.Load(),
		SessionsSeededTotal:       s.met.sessionsSeeded.Load(),
		SessionDeltaBatchesTotal:  s.met.sessionDeltaBatches.Load(),
		SessionDeltaOpsTotal:      s.met.sessionDeltaOps.Load(),
		SessionFullRebuildsTotal:  s.met.sessionFullRebuilds.Load(),
		SessionOracleQueriesTotal: s.met.sessionOracleQueries.Load(),
		SessionShortcutsTotal:     s.met.sessionShortcuts.Load(),
		SessionCachePutsTotal:     s.met.sessionCachePuts.Load(),

		SessionOracleReusesTotal:   s.met.sessionOracleReuses.Load(),
		SessionOracleRebuildsTotal: s.met.sessionOracleRebuilds.Load(),

		BuildsInFlight:      s.met.buildsInFlight.Load(),
		MaxConcurrentBuilds: s.met.maxInFlight.Load(),

		Latency:               s.lat.snapshot(),
		AdaptivePipelineDepth: s.tuner.depthNow(),
		AdaptivePipelineCap:   s.cfg.PipelineCap,
		WaitBudgetMS:          float64(s.cfg.WaitBudget.Nanoseconds()) / 1e6,
	}
	if total := snap.CacheHits + snap.CacheMisses; total > 0 {
		snap.CacheHitRatio = float64(snap.CacheHits) / float64(total)
	}
	if total := snap.WitnessCacheHits + snap.WitnessCacheMisses; total > 0 {
		snap.WitnessCacheHitRatio = float64(snap.WitnessCacheHits) / float64(total)
	}
	// Like core.Stats.SpecHitRate: the fraction of speculative-path edges
	// decided from a speculative answer rather than a live re-query.
	if total := snap.SpecHits + snap.SpecRequeries; total > 0 {
		snap.SpecHitRatio = float64(snap.SpecHits) / float64(total)
	}
	if s.store != nil {
		st := s.store.Snapshot()
		snap.StoreEnabled = true
		snap.StoreHits = st.Hits
		snap.StoreMisses = st.Misses
		snap.StoreWrites = st.Writes
		snap.StoreWriteErrors = st.WriteErrors
		snap.StoreCorruptTotal = st.CorruptTotal
		snap.StoreEvictions = st.Evictions
		snap.StoreEntries = st.Entries
		snap.StoreBytes = st.Bytes
		snap.StoreMaxBytes = st.MaxBytes
		snap.StoreDegraded = st.Degraded
		snap.StoreRetriesTotal = st.Retries
		snap.StoreBreakerTrips = st.BreakerTrips
		snap.StoreQuarantined = len(st.Quarantined)
	}
	s.sessMu.Lock()
	snap.SessionsActive = len(s.sessions)
	s.sessMu.Unlock()
	now := time.Now()
	s.mu.Lock()
	snap.QueueDepth = s.queues.totalLen()
	for c := class(0); c < numClasses; c++ {
		p := c.Priority()
		snap.Queues[p] = QueueClassSnapshot{
			Depth:            len(s.queues.q[c]),
			Cap:              s.cfg.QueueCaps[p],
			OldestAgeMS:      float64(s.queues.oldestAge(c, now).Microseconds()) / 1000,
			Weight:           classWeights[c],
			Dequeued:         s.met.dequeued[c].Load(),
			Rejected:         s.met.rejected[c].Load(),
			Shed:             s.met.shed[c].Load(),
			DeadlineRejected: s.met.deadlineRejected[c].Load(),
		}
	}
	for _, j := range s.jobs {
		j.mu.Lock()
		snap.JobsByState[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return snap
}
