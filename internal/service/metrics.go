package service

import "sync/atomic"

// metrics holds the server's monotonic counters. Gauges (queue depth, jobs
// by state, cache entries) are computed at snapshot time from live state.
type metrics struct {
	jobsSubmitted atomic.Int64 // accepted submissions (incl. cache hits and dedups)
	buildsRun     atomic.Int64 // builds actually dispatched to a worker
	jobsDone      atomic.Int64
	jobsFailed    atomic.Int64
	jobsCancelled atomic.Int64
	cacheHits     atomic.Int64 // submissions answered from the LRU
	cacheMisses   atomic.Int64 // submissions that had to queue a build
	dedups        atomic.Int64 // submissions coalesced onto an in-flight job
	dijkstras     atomic.Int64 // total shortest-path runs across completed builds
	witnessHits   atomic.Int64 // oracle queries answered by a cached witness (completed builds)
	witnessMisses atomic.Int64 // oracle queries that consulted the witness cache and branched anyway
	specBatches   atomic.Int64 // same-weight edge batches speculated on (parallel builds)
	specQueries   atomic.Int64 // speculative oracle queries issued against snapshots
	specHits      atomic.Int64 // batch edges committed straight from speculation
	specWaste     atomic.Int64 // batch edges invalidated and re-queried sequentially
	jobsEvicted   atomic.Int64 // terminal jobs removed by the retention janitor

	buildsInFlight atomic.Int64 // builds currently occupying a worker slot
	maxInFlight    atomic.Int64 // high-water mark of buildsInFlight
}

// buildStarted records a worker slot going busy and maintains the
// concurrency high-water mark.
func (m *metrics) buildStarted() {
	n := m.buildsInFlight.Add(1)
	for {
		hw := m.maxInFlight.Load()
		if n <= hw || m.maxInFlight.CompareAndSwap(hw, n) {
			return
		}
	}
}

func (m *metrics) buildFinished() { m.buildsInFlight.Add(-1) }

// MetricsSnapshot is the GET /metrics response.
type MetricsSnapshot struct {
	JobsSubmitted int64         `json:"jobs_submitted"`
	BuildsRun     int64         `json:"builds_run"`
	JobsByState   map[State]int `json:"jobs_by_state"`
	QueueDepth    int           `json:"queue_depth"`
	QueueCapacity int           `json:"queue_capacity"`
	Workers       int           `json:"workers"`
	CacheHits     int64         `json:"cache_hits"`
	CacheMisses   int64         `json:"cache_misses"`
	CacheHitRatio float64       `json:"cache_hit_ratio"`
	CacheEntries  int           `json:"cache_entries"`
	Deduplicated  int64         `json:"deduplicated"`
	Dijkstras     int64         `json:"dijkstras_total"`
	// WitnessCacheHits/Misses aggregate the build oracle's witness-reuse
	// counters across completed builds; the ratio is hits/(hits+misses).
	WitnessCacheHits     int64   `json:"witness_cache_hits"`
	WitnessCacheMisses   int64   `json:"witness_cache_misses"`
	WitnessCacheHitRatio float64 `json:"witness_cache_hit_ratio"`
	// Spec* aggregate the parallel greedy's speculation counters across
	// completed builds: batches speculated, speculative queries issued,
	// edges committed straight from a speculative answer, and edges whose
	// speculation was invalidated by an earlier commit and re-queried (the
	// wasted work).
	SpecBatches  int64   `json:"spec_batches"`
	SpecQueries  int64   `json:"spec_queries"`
	SpecHits     int64   `json:"spec_hits"`
	SpecWaste    int64   `json:"spec_waste"`
	SpecHitRatio float64 `json:"spec_hit_ratio"`
	// JobsEvicted counts terminal jobs removed by the retention janitor;
	// their IDs answer 404 afterwards.
	JobsEvicted int64 `json:"jobs_evicted"`
	// BuildsInFlight and MaxConcurrentBuilds gauge worker-pool usage: how
	// many builds hold a slot right now and the most that ever did at once.
	BuildsInFlight      int64 `json:"builds_in_flight"`
	MaxConcurrentBuilds int64 `json:"max_concurrent_builds"`
}

// Metrics returns a consistent point-in-time snapshot of the server's
// counters and gauges.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		JobsSubmitted: s.met.jobsSubmitted.Load(),
		BuildsRun:     s.met.buildsRun.Load(),
		JobsByState:   make(map[State]int),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		CacheHits:     s.met.cacheHits.Load(),
		CacheMisses:   s.met.cacheMisses.Load(),
		CacheEntries:  s.cache.Len(),
		Deduplicated:  s.met.dedups.Load(),
		Dijkstras:     s.met.dijkstras.Load(),

		WitnessCacheHits:   s.met.witnessHits.Load(),
		WitnessCacheMisses: s.met.witnessMisses.Load(),

		SpecBatches: s.met.specBatches.Load(),
		SpecQueries: s.met.specQueries.Load(),
		SpecHits:    s.met.specHits.Load(),
		SpecWaste:   s.met.specWaste.Load(),
		JobsEvicted: s.met.jobsEvicted.Load(),

		BuildsInFlight:      s.met.buildsInFlight.Load(),
		MaxConcurrentBuilds: s.met.maxInFlight.Load(),
	}
	if total := snap.CacheHits + snap.CacheMisses; total > 0 {
		snap.CacheHitRatio = float64(snap.CacheHits) / float64(total)
	}
	if total := snap.WitnessCacheHits + snap.WitnessCacheMisses; total > 0 {
		snap.WitnessCacheHitRatio = float64(snap.WitnessCacheHits) / float64(total)
	}
	if total := snap.SpecHits + snap.SpecWaste; total > 0 {
		snap.SpecHitRatio = float64(snap.SpecHits) / float64(total)
	}
	s.mu.Lock()
	snap.QueueDepth = len(s.pending)
	for _, j := range s.jobs {
		j.mu.Lock()
		snap.JobsByState[j.state]++
		j.mu.Unlock()
	}
	s.mu.Unlock()
	return snap
}
