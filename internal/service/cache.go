package service

import (
	"container/list"
	"sync"
)

// CacheKey identifies a build result: the input graph's content digest plus
// every parameter that changes the output. Seed is zeroed for deterministic
// algorithms so resubmissions hit regardless of the client's seed field.
type CacheKey struct {
	Digest    string
	Stretch   float64
	Faults    int
	Mode      string
	Algorithm string
	Seed      int64
}

// lruCache is a fixed-capacity least-recently-used map from CacheKey to
// completed build results. Safe for concurrent use.
type lruCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; element values are *lruEntry
	m   map[CacheKey]*list.Element
}

type lruEntry struct {
	key CacheKey
	val *buildResult
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[CacheKey]*list.Element, capacity),
	}
}

// Get returns the cached result for k, marking it most recently used.
func (c *lruCache) Get(k CacheKey) (*buildResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes k, evicting the least recently used entry when
// over capacity.
func (c *lruCache) Put(k CacheKey, v *buildResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
