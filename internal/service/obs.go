package service

import (
	"time"

	"github.com/ftspanner/ftspanner/internal/obs"
	"github.com/ftspanner/ftspanner/internal/store"
)

// latencies holds the server's log-bucketed latency histograms, one per
// operation class the tentpole cares about: how long jobs wait per priority
// class, how long builds and persists take, and how long the hot inner
// operations (oracle fault-set queries, store reads/writes) run. All are
// safe for concurrent recording and summarized in GET /metrics.
type latencies struct {
	queueWait    [numClasses]*obs.Histogram
	build        *obs.Histogram
	persist      *obs.Histogram
	storeGet     *obs.Histogram
	storePut     *obs.Histogram
	oracleQuery  *obs.Histogram
	sessionDelta *obs.Histogram
}

func newLatencies() *latencies {
	l := &latencies{
		build:        obs.NewHistogram(),
		persist:      obs.NewHistogram(),
		storeGet:     obs.NewHistogram(),
		storePut:     obs.NewHistogram(),
		oracleQuery:  obs.NewHistogram(),
		sessionDelta: obs.NewHistogram(),
	}
	for c := range l.queueWait {
		l.queueWait[c] = obs.NewHistogram()
	}
	return l
}

// storeObserver is the hook handed to store.SetObserver.
func (l *latencies) storeObserver(op store.Op, d time.Duration) {
	switch op {
	case store.OpGet:
		l.storeGet.Record(d)
	case store.OpPut:
		l.storePut.Record(d)
	}
}

// LatencySnapshot is the latency block of GET /metrics: p50/p90/p99/max/mean
// summaries of every histogram, in milliseconds. The same obs.Summary shape
// is emitted by ftbench -benchjson, so dashboards read one schema.
type LatencySnapshot struct {
	// QueueWait is time from submission to a worker picking the job up,
	// keyed by priority class.
	QueueWait map[Priority]obs.Summary `json:"queue_wait"`
	// Build is successful builds' wall-clock duration.
	Build obs.Summary `json:"build"`
	// Persist is the durable-store write at the end of a successful build
	// (zero-count with the store disabled).
	Persist obs.Summary `json:"persist"`
	// StoreGet and StorePut are the disk tier's per-operation latencies,
	// recorded by the store itself on every call.
	StoreGet obs.Summary `json:"store_get"`
	StorePut obs.Summary `json:"store_put"`
	// OracleQuery is the sampled latency of fault-set oracle queries inside
	// builds (1 in 8 queries is timed to keep overhead negligible).
	OracleQuery obs.Summary `json:"oracle_query"`
	// SessionDelta is the per-batch wall-clock duration of session delta
	// applications (the incremental engine's suffix repair, or its full
	// rebuild fallback).
	SessionDelta obs.Summary `json:"session_delta"`
}

func (l *latencies) snapshot() LatencySnapshot {
	s := LatencySnapshot{
		QueueWait:    make(map[Priority]obs.Summary, numClasses),
		Build:        l.build.Summarize(),
		Persist:      l.persist.Summarize(),
		StoreGet:     l.storeGet.Summarize(),
		StorePut:     l.storePut.Summarize(),
		OracleQuery:  l.oracleQuery.Summarize(),
		SessionDelta: l.sessionDelta.Summarize(),
	}
	for c := class(0); c < numClasses; c++ {
		s.QueueWait[c.Priority()] = l.queueWait[c].Summarize()
	}
	return s
}
