package service

import (
	"net/http"
	"reflect"
	"testing"
)

// parallelSpec is smallSpec with quantized weights implied by the random
// generator's unit weights (one giant same-weight batch) plus a worker
// count, exercising the speculative path end to end.
func parallelSpec(seed int64, p int) JobSpec {
	s := smallSpec(seed)
	s.Parallelism = p
	return s
}

// TestParallelJobEndToEnd submits a parallel build and checks the job
// completes with speculation stats surfaced in both the job status and
// /metrics.
func TestParallelJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	sub := submitJob(t, ts, parallelSpec(5, 4))
	st := waitState(t, ts, sub.ID, StateDone)
	if st.Stats == nil {
		t.Fatal("done job has no stats")
	}
	// The random generator emits unit weights: the whole scan is one batch.
	if st.Stats.SpecBatches < 1 || st.Stats.SpecQueries == 0 {
		t.Fatalf("parallel build reported no speculation: %+v", *st.Stats)
	}
	if st.Stats.SpecHits+st.Stats.SpecWaste != st.Stats.SpecQueries {
		t.Fatalf("spec accounting leak: %+v", *st.Stats)
	}
	m := getMetrics(t, ts)
	if m.SpecBatches < 1 || m.SpecQueries != st.Stats.SpecQueries ||
		m.SpecHits != st.Stats.SpecHits || m.SpecWaste != st.Stats.SpecWaste {
		t.Fatalf("metrics do not aggregate speculation counters: %+v vs %+v", m, *st.Stats)
	}
}

// TestParallelismSharesCacheKey verifies the determinism guarantee is
// exploited by the cache: a result built sequentially answers a parallel
// submission of the same spec (and vice versa) without a rebuild, and the
// spanners are identical.
func TestParallelismSharesCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	seqSub := submitJob(t, ts, parallelSpec(9, 0))
	waitState(t, ts, seqSub.ID, StateDone)
	var seqSpanner spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+seqSub.ID+"/spanner", nil, &seqSpanner); code != http.StatusOK {
		t.Fatalf("spanner returned %d", code)
	}

	parSub := submitJob(t, ts, parallelSpec(9, 8))
	if !parSub.Cached {
		t.Fatalf("parallel submission of an already-built spec did not hit the cache: %+v", parSub)
	}
	var parSpanner spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+parSub.ID+"/spanner", nil, &parSpanner); code != http.StatusOK {
		t.Fatalf("spanner returned %d", code)
	}
	if !reflect.DeepEqual(seqSpanner.Kept, parSpanner.Kept) || seqSpanner.Spanner != parSpanner.Spanner {
		t.Fatal("cached parallel result differs from sequential build")
	}
}

// TestParallelismValidation pins the spec validation: negative or oversized
// worker counts and non-greedy algorithms are rejected.
func TestParallelismValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []JobSpec{
		func() JobSpec { s := smallSpec(1); s.Parallelism = -1; return s }(),
		func() JobSpec { s := smallSpec(1); s.Parallelism = maxParallelism + 1; return s }(),
		func() JobSpec {
			s := smallSpec(1)
			s.Parallelism = 4
			s.Algorithm = AlgoConservative
			return s
		}(),
	}
	for i, spec := range bad {
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, nil); code != http.StatusBadRequest {
			t.Fatalf("bad spec %d accepted with code %d", i, code)
		}
	}
}
