package service

import (
	"net/http"
	"reflect"
	"testing"
)

// parallelSpec is smallSpec with quantized weights implied by the random
// generator's unit weights (one giant same-weight batch) plus a worker
// count, exercising the speculative path end to end.
func parallelSpec(seed int64, p int) JobSpec {
	s := smallSpec(seed)
	s.Parallelism = p
	return s
}

// TestParallelJobEndToEnd submits a parallel build and checks the job
// completes with speculation stats surfaced in both the job status and
// /metrics.
func TestParallelJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	sub := submitJob(t, ts, parallelSpec(5, 4))
	st := waitState(t, ts, sub.ID, StateDone)
	if st.Stats == nil {
		t.Fatal("done job has no stats")
	}
	// The random generator emits unit weights: the whole scan is one batch.
	if st.Stats.SpecBatches < 1 || st.Stats.SpecQueries == 0 {
		t.Fatalf("parallel build reported no speculation: %+v", *st.Stats)
	}
	if st.Stats.SpecHits+st.Stats.SpecWaste != st.Stats.SpecQueries {
		t.Fatalf("spec accounting leak: %+v", *st.Stats)
	}
	m := getMetrics(t, ts)
	if m.SpecBatches < 1 || m.SpecQueries != st.Stats.SpecQueries ||
		m.SpecHits != st.Stats.SpecHits || m.SpecWaste != st.Stats.SpecWaste {
		t.Fatalf("metrics do not aggregate speculation counters: %+v vs %+v", m, *st.Stats)
	}
}

// TestParallelismSharesCacheKey verifies the determinism guarantee is
// exploited by the cache: a result built sequentially answers a parallel
// submission of the same spec (and vice versa) without a rebuild, and the
// spanners are identical.
func TestParallelismSharesCacheKey(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	seqSub := submitJob(t, ts, parallelSpec(9, 0))
	waitState(t, ts, seqSub.ID, StateDone)
	var seqSpanner spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+seqSub.ID+"/spanner", nil, &seqSpanner); code != http.StatusOK {
		t.Fatalf("spanner returned %d", code)
	}

	parSub := submitJob(t, ts, parallelSpec(9, 8))
	if !parSub.Cached {
		t.Fatalf("parallel submission of an already-built spec did not hit the cache: %+v", parSub)
	}
	var parSpanner spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+parSub.ID+"/spanner", nil, &parSpanner); code != http.StatusOK {
		t.Fatalf("spanner returned %d", code)
	}
	if !reflect.DeepEqual(seqSpanner.Kept, parSpanner.Kept) || seqSpanner.Spanner != parSpanner.Spanner {
		t.Fatal("cached parallel result differs from sequential build")
	}
}

// TestParallelismValidation pins the spec validation: negative or oversized
// worker counts and non-greedy algorithms are rejected, as are pipeline
// depths without workers to feed them.
func TestParallelismValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	bad := []JobSpec{
		func() JobSpec { s := smallSpec(1); s.Parallelism = -1; return s }(),
		func() JobSpec { s := smallSpec(1); s.Parallelism = maxParallelism + 1; return s }(),
		func() JobSpec {
			s := smallSpec(1)
			s.Parallelism = 4
			s.Algorithm = AlgoConservative
			return s
		}(),
		func() JobSpec { s := parallelSpec(1, 4); s.Pipeline = -1; return s }(),
		func() JobSpec { s := parallelSpec(1, 4); s.Pipeline = maxPipeline + 1; return s }(),
		func() JobSpec { s := smallSpec(1); s.Pipeline = 2; return s }(), // pipeline without parallelism
	}
	for i, spec := range bad {
		if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, nil); code != http.StatusBadRequest {
			t.Fatalf("bad spec %d accepted with code %d", i, code)
		}
	}
}

// TestPipelineJobEndToEnd submits a pipelined parallel build and checks the
// depth and round counters surface in the job stats and /metrics, and that
// the pipeline depth stays out of the cache key (a deeper resubmission is a
// cache hit).
func TestPipelineJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	spec := parallelSpec(11, 4)
	spec.Pipeline = 4
	sub := submitJob(t, ts, spec)
	st := waitState(t, ts, sub.ID, StateDone)
	if st.Stats == nil {
		t.Fatal("done job has no stats")
	}
	if st.Stats.PipelineDepth != 4 {
		t.Fatalf("job stats report pipeline depth %d, want 4", st.Stats.PipelineDepth)
	}
	if st.Stats.SpecBatches < 1 {
		t.Fatalf("pipelined build reported no speculation: %+v", *st.Stats)
	}
	if st.Stats.SpecHits+st.Stats.SpecWaste != st.Stats.SpecQueries {
		t.Fatalf("spec accounting leak: %+v", *st.Stats)
	}
	if st.Stats.WitnessHits+st.Stats.WitnessMisses > 0 && st.Stats.WitnessHitRate <= 0 {
		t.Fatalf("witness hit rate not surfaced: %+v", *st.Stats)
	}
	m := getMetrics(t, ts)
	if m.MaxPipelineDepth != 4 {
		t.Fatalf("metrics max_pipeline_depth %d, want 4", m.MaxPipelineDepth)
	}
	if m.SpecRounds != st.Stats.SpecRounds || m.SpecRequeries != st.Stats.SpecRequeries {
		t.Fatalf("metrics do not aggregate round counters: %+v vs %+v", m, *st.Stats)
	}
	if m.WitnessSeedTries != st.Stats.WitnessSeedTries || m.WitnessSeedHits != st.Stats.WitnessSeedHits {
		t.Fatalf("metrics do not aggregate seed counters: %+v vs %+v", m, *st.Stats)
	}

	// Same spec at a different depth: determinism-neutral, so a cache hit.
	spec.Pipeline = 1
	again := submitJob(t, ts, spec)
	if !again.Cached {
		t.Fatalf("pipeline depth leaked into the cache key: %+v", again)
	}
}
