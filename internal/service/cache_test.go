package service

import "testing"

func key(d string) CacheKey { return CacheKey{Digest: d, Stretch: 3, Faults: 1} }

func TestLRUGetPut(t *testing.T) {
	c := newLRU(2)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("empty cache returned a hit")
	}
	va, vb := &buildResult{}, &buildResult{}
	c.Put(key("a"), va)
	c.Put(key("b"), vb)
	if got, ok := c.Get(key("a")); !ok || got != va {
		t.Fatal("lost entry a")
	}
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.Put(key("a"), &buildResult{})
	c.Put(key("b"), &buildResult{})
	c.Get(key("a")) // refresh a; b is now oldest
	c.Put(key("c"), &buildResult{})
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
	for _, d := range []string{"a", "c"} {
		if _, ok := c.Get(key(d)); !ok {
			t.Fatalf("%s should have survived", d)
		}
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	v1, v2 := &buildResult{}, &buildResult{}
	c.Put(key("a"), v1)
	c.Put(key("b"), &buildResult{})
	c.Put(key("a"), v2) // refresh, not insert
	if c.Len() != 2 {
		t.Fatalf("len=%d, want 2", c.Len())
	}
	if got, _ := c.Get(key("a")); got != v2 {
		t.Fatal("Put did not replace the value")
	}
	c.Put(key("c"), &buildResult{}) // b is oldest now
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestLRUMinimumCapacity(t *testing.T) {
	c := newLRU(0)
	c.Put(key("a"), &buildResult{})
	c.Put(key("b"), &buildResult{})
	if c.Len() != 1 {
		t.Fatalf("len=%d, want 1", c.Len())
	}
}
