package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// Coverage for the GET /v1/jobs/{id}/events handler's exits: a client
// disconnect mid-stream and a server Close mid-stream must both end the
// handler goroutine (no leak parked on the job's update channel), and the
// shutdown path must still deliver the terminal event. The third exit — a
// proxied stream through the fleet router relaying the terminal event —
// lives in internal/cluster's e2e suite.

// waitGoroutines polls until the process goroutine count settles at or
// below limit, dumping all stacks on timeout.
func waitGoroutines(t *testing.T, limit int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= limit {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine count %d never settled to %d:\n%s", runtime.NumGoroutine(), limit, buf[:n])
}

// TestEventsClientDisconnectEndsHandler cancels a streaming request
// mid-job and checks the handler goroutine (and its connection) unwind
// instead of parking on the job's update channel forever.
func TestEventsClientDisconnectEndsHandler(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	sub := submitJob(t, ts, slowSpec(1))
	waitState(t, ts, sub.ID, StateRunning)

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	resp, err := (&http.Client{Transport: tr}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The stream is live: at least one event arrives before we hang up.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no event before disconnect: %v", sc.Err())
	}
	cancel()

	// The handler and both connection halves must unwind; the build keeps
	// running (streams are observers, not owners).
	waitGoroutines(t, baseline)
	if st := waitState(t, ts, sub.ID, StateDone); st.State != StateDone {
		t.Fatalf("job state %s after disconnect, want done", st.State)
	}
}

// TestEventsServerCloseEndsHandler closes the server under an open stream
// and checks the handler delivers the job's terminal event before ending —
// the documented shutdown race where s.ctx.Done and the final update are
// both ready — and does not leak.
func TestEventsServerCloseEndsHandler(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	sub := submitJob(t, ts, slowSpec(2))
	waitState(t, ts, sub.ID, StateRunning)

	baseline := runtime.NumGoroutine()
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	resp, err := (&http.Client{Transport: tr}).Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no event before close: %v", sc.Err())
	}

	closed := make(chan struct{})
	go func() {
		srv.Close()
		close(closed)
	}()

	// Drain the stream to EOF; the last line must be a terminal state
	// (cancelled: Close cancels the running build's context).
	last := Event{}
	_ = json.Unmarshal(sc.Bytes(), &last)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if !last.State.Terminal() {
		t.Fatalf("stream ended on non-terminal event %+v — shutdown lost the terminal event", last)
	}
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("server Close never returned")
	}
	// Handler plus the server's worker/janitor goroutines are gone; only
	// the test's own connection teardown remains in flight.
	waitGoroutines(t, baseline)
}
