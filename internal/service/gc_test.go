package service

import (
	"net/http"
	"testing"
	"time"
)

// submitNormalized is the HTTP handler's normalize-then-submit sequence for
// tests that drive the Server directly.
func submitNormalized(srv *Server, spec JobSpec) (*Job, error) {
	if err := normalizeSpec(&spec); err != nil {
		return nil, err
	}
	job, _, err := srv.submit(spec)
	return job, err
}

// TestJobRetentionEvictsTerminal checks the terminal-job GC: finished jobs
// vanish from the job map after the retention window (their IDs 404), the
// eviction counter moves, and the result survives in the LRU cache so a
// resubmission is still answered without a rebuild.
func TestJobRetentionEvictsTerminal(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobRetention: 30 * time.Millisecond})

	sub := submitJob(t, ts, smallSpec(1))
	waitState(t, ts, sub.ID, StateDone)

	deadline := time.Now().Add(30 * time.Second)
	for {
		code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, nil, nil)
		if code == http.StatusNotFound {
			break
		}
		if code != http.StatusOK {
			t.Fatalf("status returned %d", code)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still addressable long after retention", sub.ID)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The spanner endpoint of an evicted job 404s too.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/spanner", nil, nil); code != http.StatusNotFound {
		t.Fatalf("spanner of evicted job returned %d, want 404", code)
	}
	if m := getMetrics(t, ts); m.JobsEvicted < 1 {
		t.Fatalf("jobs_evicted = %d, want >= 1", m.JobsEvicted)
	}

	// The RESULT outlived the job: resubmitting is a cache hit, born done.
	resub := submitJob(t, ts, smallSpec(1))
	if !resub.Cached {
		t.Fatalf("resubmission after eviction was not served from cache: %+v", resub)
	}
	if resub.ID == sub.ID {
		t.Fatalf("resubmission reused the evicted job ID %s", sub.ID)
	}
}

// TestJobRetentionSparesLiveJobs pins that the sweep only collects terminal
// jobs: queued and running jobs survive a sweep dated arbitrarily far in
// the future. Driven directly (not via the janitor's clock) so the check
// cannot race the build's actual duration.
func TestJobRetentionSparesLiveJobs(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, JobRetention: time.Millisecond})
	defer srv.Close()

	running, err := submitNormalized(srv, slowSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := submitNormalized(srv, slowSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	// Neither job can be terminal yet (the builds take at least tens of
	// milliseconds and we sweep immediately); both must survive a sweep
	// dated an hour ahead.
	if n := srv.sweepExpired(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("sweep evicted %d live jobs", n)
	}
	for _, j := range []*Job{running, queued} {
		got, ok := srv.job(j.id)
		if !ok || got != j {
			t.Fatalf("live job %s not addressable after sweep", j.id)
		}
	}
	// End the slow builds promptly.
	srv.cancelJob(running)
	srv.cancelJob(queued)
}

// TestSweepExpiredDirect unit-tests the sweep against hand-set clocks,
// covering the never-evict (negative retention handled by config) and
// boundary paths without timing dependence.
func TestSweepExpiredDirect(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, JobRetention: time.Hour})
	defer srv.Close()

	job, err := submitNormalized(srv, smallSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.done:
	case <-time.After(60 * time.Second):
		t.Fatal("build did not finish")
	}
	job.mu.Lock()
	state, buildErr := job.state, job.err
	job.mu.Unlock()
	if state != StateDone {
		t.Fatalf("job ended %s (%v), want done", state, buildErr)
	}
	if n := srv.sweepExpired(time.Now()); n != 0 {
		t.Fatalf("fresh terminal job evicted %d", n)
	}
	if n := srv.sweepExpired(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("expired sweep evicted %d, want 1", n)
	}
	if _, ok := srv.job(job.id); ok {
		t.Fatal("evicted job still addressable")
	}
}
