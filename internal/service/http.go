package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/ftspanner/ftspanner/internal/verify"
)

// maxVerifyTrials bounds one POST /v1/verify request's work.
const maxVerifyTrials = 10000

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/spanner", s.handleSpanner)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/verify", s.handleVerify)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionStatus)
	s.mux.HandleFunc("POST /v1/sessions/{id}/deltas", s.handleSessionDeltas)
	s.mux.HandleFunc("GET /v1/sessions/{id}/spanner", s.handleSessionSpanner)
	s.mux.HandleFunc("GET /v1/sessions/{id}/events", s.handleSessionEvents)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/cluster/summary", s.handleClusterSummary)
	s.mux.HandleFunc("GET /v1/cluster/records", s.handleClusterRecords)
	s.mux.HandleFunc("GET /v1/cluster/records/{name}", s.handleClusterRecord)
}

// errorBody is the JSON shape of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// submitResponse answers POST /v1/jobs.
type submitResponse struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Cached is true when the job was answered from the result cache
	// without queueing a build.
	Cached bool `json:"cached"`
	// FromStore is true when the cache hit was served from the durable
	// on-disk store (e.g. after a restart) rather than the in-memory LRU.
	FromStore bool `json:"from_store,omitempty"`
	// Deduplicated is true when the submission was coalesced onto an
	// identical job already queued or running; ID names that job.
	Deduplicated bool `json:"deduplicated"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := normalizeSpec(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	job, dedup, err := s.submit(spec)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			if se.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(se.retryAfter))
			}
			writeError(w, se.status, "%s", se.msg)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	job.mu.Lock()
	resp := submitResponse{ID: job.id, State: job.state, Cached: job.cached,
		FromStore: job.fromStore, Deduplicated: dedup}
	job.mu.Unlock()
	if resp.State == StateQueued && !dedup {
		writeJSON(w, http.StatusAccepted, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusResponse answers GET /v1/jobs/{id}.
type statusResponse struct {
	ID           string     `json:"id"`
	State        State      `json:"state"`
	Algorithm    string     `json:"algorithm"`
	Mode         string     `json:"mode"`
	Stretch      float64    `json:"stretch"`
	Faults       int        `json:"faults"`
	Priority     Priority   `json:"priority"`
	GraphDigest  string     `json:"graph_digest"`
	Vertices     int        `json:"vertices"`
	InputEdges   int        `json:"input_edges"`
	Cached       bool       `json:"cached"`
	FromStore    bool       `json:"from_store,omitempty"`
	SpannerEdges *int       `json:"spanner_edges,omitempty"`
	Stats        *statsBody `json:"stats,omitempty"`
	Error        string     `json:"error,omitempty"`
}

// statsBody is core.Stats in JSON form.
type statsBody struct {
	EdgesScanned  int   `json:"edges_scanned"`
	OracleCalls   int64 `json:"oracle_calls"`
	Dijkstras     int64 `json:"dijkstras"`
	WitnessHits   int64 `json:"witness_hits"`
	WitnessMisses int64 `json:"witness_misses"`
	// WitnessHitRate is hits/(hits+misses) for this build's oracles; seed
	// hits (witness_seed_hits) are included in witness_hits.
	WitnessHitRate   float64 `json:"witness_hit_rate"`
	WitnessSeedTries int64   `json:"witness_seed_tries,omitempty"`
	WitnessSeedHits  int64   `json:"witness_seed_hits,omitempty"`
	SpecBatches      int64   `json:"spec_batches,omitempty"`
	SpecQueries      int64   `json:"spec_queries,omitempty"`
	SpecHits         int64   `json:"spec_hits,omitempty"`
	SpecWaste        int64   `json:"spec_waste,omitempty"`
	SpecRounds       int64   `json:"spec_rounds,omitempty"`
	SpecRequeries    int64   `json:"spec_requeries,omitempty"`
	SpecHitRate      float64 `json:"spec_hit_rate,omitempty"`
	// PipelineDepth is the effective pipeline depth the build ran with (0
	// for sequential builds).
	PipelineDepth int     `json:"pipeline_depth,omitempty"`
	DurationMS    float64 `json:"duration_ms"`
	// QueueMS/BuildMS/PersistMS are this job's lifecycle-phase durations as
	// this server observed them: submission-to-worker wait, worker
	// wall-clock, and the durable-store write. All zero for cache hits
	// (DurationMS still reports the original build's engine time).
	QueueMS   float64 `json:"queue_ms"`
	BuildMS   float64 `json:"build_ms"`
	PersistMS float64 `json:"persist_ms,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	job.mu.Lock()
	resp := statusResponse{
		ID:          job.id,
		State:       job.state,
		Algorithm:   job.spec.Algorithm,
		Mode:        job.spec.Mode,
		Stretch:     job.spec.Stretch,
		Faults:      job.spec.Faults,
		Priority:    job.spec.Priority,
		GraphDigest: job.key.Digest,
		Vertices:    job.graph.NumVertices(),
		InputEdges:  job.graph.NumEdges(),
		Cached:      job.cached,
		FromStore:   job.fromStore,
	}
	if job.err != nil {
		resp.Error = job.err.Error()
	}
	if job.result != nil {
		m := job.result.spanner.NumEdges()
		resp.SpannerEdges = &m
		st := job.result.stats
		resp.Stats = &statsBody{
			EdgesScanned:     st.EdgesScanned,
			OracleCalls:      st.OracleCalls,
			Dijkstras:        st.Dijkstras,
			WitnessHits:      st.WitnessHits,
			WitnessMisses:    st.WitnessMisses,
			WitnessHitRate:   st.WitnessHitRate(),
			WitnessSeedTries: st.WitnessSeedTries,
			WitnessSeedHits:  st.WitnessSeedHits,
			SpecBatches:      st.SpecBatches,
			SpecQueries:      st.SpecQueries,
			SpecHits:         st.SpecHits,
			SpecWaste:        st.SpecWaste,
			SpecRounds:       st.SpecRounds,
			SpecRequeries:    st.SpecRequeries,
			SpecHitRate:      st.SpecHitRate(),
			PipelineDepth:    st.PipelineDepth,
			DurationMS:       float64(st.Duration.Microseconds()) / 1000,
			QueueMS:          float64(job.queueWait.Microseconds()) / 1000,
			BuildMS:          float64(job.buildDur.Microseconds()) / 1000,
			PersistMS:        float64(job.persistDur.Microseconds()) / 1000,
		}
	}
	job.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// spannerResponse answers GET /v1/jobs/{id}/spanner.
type spannerResponse struct {
	ID string `json:"id"`
	// Spanner is the built subgraph in the Graph.Encode text format.
	Spanner string `json:"spanner"`
	// Kept lists the input edge IDs retained, in spanner edge-ID order.
	Kept []int `json:"kept"`
}

func (s *Server) handleSpanner(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	job.mu.Lock()
	state, res := job.state, job.result
	job.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, "job %s is %s, not done", job.id, state)
		return
	}
	var sb strings.Builder
	if err := res.spanner.Encode(&sb); err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	kept := res.kept
	if kept == nil {
		kept = []int{}
	}
	writeJSON(w, http.StatusOK, spannerResponse{ID: job.id, Spanner: sb.String(), Kept: kept})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		evs, updated, terminal := job.eventsSince(from)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from += len(evs)
		if fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Graceful drain finishes every running job (appending its
			// terminal event) before Close cancels s.ctx, but this select
			// can observe both channels ready and pick shutdown first —
			// deliver whatever raced in so a streaming client always sees
			// the terminal event before the listener closes.
			evs, _, _ := job.eventsSince(from)
			for _, e := range evs {
				if err := enc.Encode(e); err != nil {
					return
				}
			}
			if fl != nil {
				fl.Flush()
			}
			return
		}
	}
}

// cancelResponse answers DELETE /v1/jobs/{id}.
type cancelResponse struct {
	ID string `json:"id"`
	// State is the job's state when the cancel was applied; "queued" jobs
	// turn cancelled immediately, "running" jobs shortly after.
	State State `json:"state"`
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	st := s.cancelJob(job)
	writeJSON(w, http.StatusAccepted, cancelResponse{ID: job.id, State: st})
}

// verifyRequest is the POST /v1/verify body.
type verifyRequest struct {
	// JobID names a completed job to verify.
	JobID string `json:"job_id"`
	// Trials is the number of random fault sets to draw (default 32).
	Trials int `json:"trials,omitempty"`
	// Seed makes the check reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Workers sizes the verification pool (default GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// verifyResponse reports a random-fault check.
type verifyResponse struct {
	JobID  string `json:"job_id"`
	Trials int    `json:"trials"`
	OK     bool   `json:"ok"`
	// Violation describes the broken guarantee when OK is false.
	Violation string `json:"violation,omitempty"`
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req verifyRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad verify request: %v", err)
		return
	}
	if req.Trials <= 0 {
		req.Trials = 32
	}
	// Verification runs synchronously on the request goroutine, so bound
	// the client-controlled work instead of letting one request monopolize
	// the host.
	if req.Trials > maxVerifyTrials {
		writeError(w, http.StatusBadRequest, "trials must be at most %d, got %d", maxVerifyTrials, req.Trials)
		return
	}
	if req.Workers > runtime.GOMAXPROCS(0) {
		req.Workers = runtime.GOMAXPROCS(0)
	}
	job, ok := s.job(req.JobID)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", req.JobID)
		return
	}
	job.mu.Lock()
	state, res, spec := job.state, job.result, job.spec
	job.mu.Unlock()
	if res == nil {
		writeError(w, http.StatusConflict, "job %s is %s, not done", job.id, state)
		return
	}
	mode, err := parseMode(spec.Mode)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	inst, err := verify.NewInstance(res.input, res.spanner, res.kept)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "verifier: %v", err)
		return
	}
	resp := verifyResponse{JobID: job.id, Trials: req.Trials, OK: true}
	err = inst.ParallelRandomCheck(spec.Stretch, mode, spec.Faults, req.Trials, req.Workers, newRand(req.Seed))
	if err != nil {
		var v *verify.Violation
		if !errors.As(err, &v) {
			writeError(w, http.StatusInternalServerError, "verify: %v", err)
			return
		}
		resp.OK = false
		resp.Violation = v.Error()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

// handleTrace answers GET /v1/jobs/{id}/trace with the job's lifecycle span
// tree. A job whose trace aged out (TraceRetention < JobRetention) answers
// 404 while its status endpoint still works.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	snap := job.traceSnapshot()
	if snap == nil {
		writeError(w, http.StatusNotFound, "no trace for job %q (expired)", job.id)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// healthResponse answers GET /healthz.
type healthResponse struct {
	Status        string  `json:"status"` // "ok", "degraded", "draining", or "unhealthy"
	Version       string  `json:"version,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Store is "ok", "disabled", "degraded" (circuit breaker open,
	// memory-only mode), or the write-probe error.
	Store string `json:"store"`
	// Workers is the configured pool size; zero-valued Error plus status
	// "ok" means the pool is accepting work.
	Workers int    `json:"workers"`
	Error   string `json:"error,omitempty"`
}

// handleHealthz is the liveness/readiness probe: 200 while the worker pool
// is accepting jobs, 503 when shutting down or the store (if any) fails its
// write probe without the breaker having contained it. A degraded store
// (breaker open, jobs still completing memory-only) reports status
// "degraded" with 200 — the server is serving, just without durability.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthResponse{
		Status:        "ok",
		Version:       s.cfg.Version,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Store:         "disabled",
		Workers:       s.cfg.Workers,
	}
	if s.ctx.Err() != nil {
		resp.Status = "unhealthy"
		resp.Error = "server shutting down"
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if s.draining.Load() {
		resp.Status = "draining"
		resp.Error = "server draining: finishing in-flight builds, not accepting jobs"
		if s.store != nil {
			// In-flight builds still persist during the drain, so the store
			// state stays informative; no write probe — the answer should be
			// cheap while load balancers poll it.
			resp.Store = "ok"
			if s.store.Degraded() {
				resp.Store = "degraded"
			}
		}
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	if s.store != nil {
		switch {
		case s.store.Degraded():
			resp.Status = "degraded"
			resp.Store = "degraded"
		default:
			if err := s.store.Healthy(); err != nil {
				resp.Status = "unhealthy"
				resp.Store = "unwritable"
				resp.Error = err.Error()
				writeJSON(w, http.StatusServiceUnavailable, resp)
				return
			}
			resp.Store = "ok"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
