package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// sessionTestServer returns a Server sized for session tests.
func sessionTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

func decodeBody[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return v
}

// pathGraph returns the encoded n-vertex unit-weight path.
func pathGraph(t *testing.T, n int) string {
	t.Helper()
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i, 1)
	}
	var sb strings.Builder
	if err := g.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSessionLifecycle drives the full create -> deltas -> spanner -> delete
// flow over HTTP and checks the spanner answer matches an equivalent batch
// job's at every step.
func TestSessionLifecycle(t *testing.T) {
	s := sessionTestServer(t, Config{})

	w := postJSON(t, s, "/v1/sessions", map[string]any{
		"graph": pathGraph(t, 5), "stretch": 3, "faults": 1,
	})
	if w.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", w.Code, w.Body.String())
	}
	created := decodeBody[sessionResponse](t, w)
	if created.ID == "" || created.Vertices != 5 || created.LiveEdges != 4 {
		t.Fatalf("create response: %+v", created)
	}
	// A path has no redundancy: every edge is kept.
	if created.Kept != 4 {
		t.Fatalf("path spanner kept %d edges, want 4", created.Kept)
	}

	// Close the cycle: the new edge creates redundancy.
	w = postJSON(t, s, "/v1/sessions/"+created.ID+"/deltas", map[string]any{
		"deltas": []map[string]any{
			{"op": "insert", "u": 4, "v": 0, "weight": 1},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("deltas = %d: %s", w.Code, w.Body.String())
	}
	dr := decodeBody[sessionDeltasResponse](t, w)
	if dr.Batch != 1 || dr.LiveEdges != 5 {
		t.Fatalf("deltas response: %+v", dr)
	}
	if dr.Digest == created.Digest {
		t.Fatal("digest did not evolve after a mutation")
	}

	// The session spanner must be digest-identical to a batch job over the
	// same current graph.
	w = getPath(t, s, "/v1/sessions/"+created.ID+"/spanner")
	if w.Code != http.StatusOK {
		t.Fatalf("spanner = %d: %s", w.Code, w.Body.String())
	}
	sp := decodeBody[sessionSpannerResponse](t, w)

	cur, err := graph.Decode(strings.NewReader(sp.Spanner))
	if err != nil {
		t.Fatalf("decode session spanner: %v", err)
	}
	cyc := graph.New(5)
	for i := 1; i < 5; i++ {
		cyc.MustAddEdge(i-1, i, 1)
	}
	cyc.MustAddEdge(4, 0, 1)
	var sb strings.Builder
	if err := cyc.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	jw := postJSON(t, s, "/v1/jobs", map[string]any{
		"graph": sb.String(), "stretch": 3, "faults": 1,
	})
	job := decodeBody[submitResponse](t, jw)
	waitJobDone(t, s, job.ID)
	jsw := getPath(t, s, "/v1/jobs/"+job.ID+"/spanner")
	jsp := decodeBody[spannerResponse](t, jsw)
	jg, err := graph.Decode(strings.NewReader(jsp.Spanner))
	if err != nil {
		t.Fatalf("decode job spanner: %v", err)
	}
	if cur.Digest() != jg.Digest() {
		t.Fatalf("session spanner digest %s != batch job digest %s", cur.Digest(), jg.Digest())
	}

	// Status agrees, then delete closes.
	w = getPath(t, s, "/v1/sessions/"+created.ID)
	st := decodeBody[sessionResponse](t, w)
	if st.Batches != 1 || st.LiveEdges != 5 {
		t.Fatalf("status: %+v", st)
	}
	req := httptest.NewRequest("DELETE", "/v1/sessions/"+created.ID, nil)
	dw := httptest.NewRecorder()
	s.ServeHTTP(dw, req)
	if dw.Code != http.StatusOK {
		t.Fatalf("delete = %d: %s", dw.Code, dw.Body.String())
	}
	if w := getPath(t, s, "/v1/sessions/"+created.ID); w.Code != http.StatusNotFound {
		t.Fatalf("deleted session answered %d", w.Code)
	}
}

// waitJobDone polls a job to terminal state.
func waitJobDone(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		w := getPath(t, s, "/v1/jobs/"+id)
		st := decodeBody[statusResponse](t, w)
		if st.State.Terminal() {
			if st.State != StateDone {
				t.Fatalf("job %s ended %s: %s", id, st.State, st.Error)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// TestSessionEmptyStartAndFault grows a session from nothing and exercises
// the vertex-fault delta.
func TestSessionEmptyStartAndFault(t *testing.T) {
	s := sessionTestServer(t, Config{})
	w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2, "faults": 0, "mode": "edge"})
	if w.Code != http.StatusCreated {
		t.Fatalf("create = %d: %s", w.Code, w.Body.String())
	}
	id := decodeBody[sessionResponse](t, w).ID

	w = postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"add_vertices": 4,
		"deltas": []map[string]any{
			{"op": "insert", "u": 0, "v": 1, "weight": 1},
			{"op": "insert", "u": 1, "v": 2, "weight": 1},
			{"op": "insert", "u": 2, "v": 3, "weight": 1},
			{"op": "insert", "u": 3, "v": 0, "weight": 1},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("grow = %d: %s", w.Code, w.Body.String())
	}
	if dr := decodeBody[sessionDeltasResponse](t, w); dr.LiveEdges != 4 {
		t.Fatalf("grow response: %+v", dr)
	}

	w = postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "fault", "vertex": 0}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("fault = %d: %s", w.Code, w.Body.String())
	}
	dr := decodeBody[sessionDeltasResponse](t, w)
	if dr.LiveEdges != 2 {
		t.Fatalf("fault left %d live edges, want 2", dr.LiveEdges)
	}
}

// TestSessionDeltaValidation checks bad batches are 400s that leave the
// session untouched, and unknown ops are refused before reaching the engine.
func TestSessionDeltaValidation(t *testing.T) {
	s := sessionTestServer(t, Config{})
	w := postJSON(t, s, "/v1/sessions", map[string]any{
		"graph": pathGraph(t, 3), "stretch": 3, "faults": 0,
	})
	id := decodeBody[sessionResponse](t, w).ID

	cases := []map[string]any{
		{"deltas": []map[string]any{{"op": "insert", "u": 0, "v": 0, "weight": 1}}},
		{"deltas": []map[string]any{{"op": "insert", "u": 0, "v": 1, "weight": 1}}}, // already live
		{"deltas": []map[string]any{{"op": "delete", "u": 0, "v": 2}}},              // not live
		{"deltas": []map[string]any{{"op": "warp", "u": 0, "v": 2}}},                // unknown op
		{"add_vertices": -1},
	}
	for i, body := range cases {
		if w := postJSON(t, s, "/v1/sessions/"+id+"/deltas", body); w.Code != http.StatusBadRequest {
			t.Fatalf("case %d: code = %d: %s", i, w.Code, w.Body.String())
		}
	}
	st := decodeBody[sessionResponse](t, getPath(t, s, "/v1/sessions/"+id))
	if st.Batches != 0 || st.LiveEdges != 2 {
		t.Fatalf("rejected deltas mutated the session: %+v", st)
	}

	// Bad specs at create.
	for i, body := range []map[string]any{
		{"stretch": 0.5},
		{"stretch": 3, "faults": -1},
		{"stretch": 3, "mode": "chaos"},
		{"stretch": 3, "graph": pathGraph(t, 3), "vertices": 4},
		{"stretch": 3, "graph": "not a graph"},
	} {
		if w := postJSON(t, s, "/v1/sessions", body); w.Code != http.StatusBadRequest {
			t.Fatalf("spec case %d: code = %d: %s", i, w.Code, w.Body.String())
		}
	}
}

// TestSessionEventsStream reads the NDJSON stream: created event, one deltas
// event with the kept-set change, then the closed terminal event.
func TestSessionEventsStream(t *testing.T) {
	s := sessionTestServer(t, Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	w := postJSON(t, s, "/v1/sessions", map[string]any{
		"graph": pathGraph(t, 4), "stretch": 3, "faults": 0,
	})
	id := decodeBody[sessionResponse](t, w).ID

	resp, err := http.Get(srv.URL + "/v1/sessions/" + id + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	events := make(chan SessionEvent, 16)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var e SessionEvent
			if json.Unmarshal(sc.Bytes(), &e) == nil {
				events <- e
			}
		}
	}()
	readEvent := func(wantType string) SessionEvent {
		t.Helper()
		select {
		case e, ok := <-events:
			if !ok {
				t.Fatalf("stream closed waiting for %q", wantType)
			}
			if e.Type != wantType {
				t.Fatalf("event type = %q, want %q (%+v)", e.Type, wantType, e)
			}
			return e
		case <-time.After(5 * time.Second):
			t.Fatalf("timeout waiting for %q event", wantType)
		}
		panic("unreachable")
	}

	readEvent("created")

	// The new lightest edge disturbs the whole suffix: kept-set delta events
	// must report the change.
	dw := postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "u": 0, "v": 3, "weight": 0.5}},
	})
	if dw.Code != http.StatusOK {
		t.Fatalf("deltas = %d: %s", dw.Code, dw.Body.String())
	}
	ev := readEvent("deltas")
	if ev.Batch != 1 || len(ev.KeptAdded) == 0 {
		t.Fatalf("deltas event: %+v", ev)
	}

	req, _ := http.NewRequest("DELETE", srv.URL+"/v1/sessions/"+id, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("delete: %v", err)
	}
	closedEv := readEvent("closed")
	if closedEv.Reason != "deleted" {
		t.Fatalf("closed reason = %q", closedEv.Reason)
	}
	// The stream must terminate after the closed event.
	for range events {
	}
}

// TestSessionCacheSeedingAndPublish locks the two-tier integration both
// ways: a batch job's result seeds a session over the same graph, and a
// session's published post-delta result answers a later batch job from
// cache.
func TestSessionCacheSeedingAndPublish(t *testing.T) {
	s := sessionTestServer(t, Config{})
	enc := pathGraph(t, 6)

	// Build once as a batch job.
	jw := postJSON(t, s, "/v1/jobs", map[string]any{"graph": enc, "stretch": 3, "faults": 1})
	job := decodeBody[submitResponse](t, jw)
	waitJobDone(t, s, job.ID)

	// A session over the same graph+params seeds from cache.
	w := postJSON(t, s, "/v1/sessions", map[string]any{"graph": enc, "stretch": 3, "faults": 1})
	created := decodeBody[sessionResponse](t, w)
	if !created.Seeded {
		t.Fatalf("session did not seed from the cached result: %+v", created)
	}
	if got := s.Metrics().SessionsSeededTotal; got != 1 {
		t.Fatalf("sessions_seeded_total = %d, want 1", got)
	}

	// Mutate, then submit a batch job for the session's NEW digest: the
	// published session result must answer it without a build.
	dw := postJSON(t, s, "/v1/sessions/"+created.ID+"/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "u": 5, "v": 0, "weight": 1}},
	})
	if dw.Code != http.StatusOK {
		t.Fatalf("deltas = %d: %s", dw.Code, dw.Body.String())
	}
	builds := s.Metrics().BuildsTotal

	cyc := graph.New(6)
	for i := 1; i < 6; i++ {
		cyc.MustAddEdge(i-1, i, 1)
	}
	cyc.MustAddEdge(5, 0, 1)
	var sb strings.Builder
	if err := cyc.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	jw = postJSON(t, s, "/v1/jobs", map[string]any{"graph": sb.String(), "stretch": 3, "faults": 1})
	job = decodeBody[submitResponse](t, jw)
	if !job.Cached {
		t.Fatalf("batch job over session-published digest was not a cache hit: %+v", job)
	}
	if got := s.Metrics().BuildsTotal; got != builds {
		t.Fatalf("builds_total went %d -> %d; the cache should have answered", builds, got)
	}

	// no_cache sessions neither seed nor publish.
	w = postJSON(t, s, "/v1/sessions", map[string]any{
		"graph": enc, "stretch": 3, "faults": 1, "no_cache": true,
	})
	if nc := decodeBody[sessionResponse](t, w); nc.Seeded {
		t.Fatalf("no_cache session seeded: %+v", nc)
	}
}

// TestSessionLimitAndRetention checks the MaxSessions 429 and the janitor's
// idle-session eviction.
func TestSessionLimitAndRetention(t *testing.T) {
	s := sessionTestServer(t, Config{
		MaxSessions:      2,
		SessionRetention: 30 * time.Millisecond,
		JobRetention:     -1,
		TraceRetention:   -1,
	})
	for i := 0; i < 2; i++ {
		if w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2}); w.Code != http.StatusCreated {
			t.Fatalf("create %d = %d: %s", i, w.Code, w.Body.String())
		}
	}
	w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create = %d, want 429", w.Code)
	}
	if w.Result().Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Idle sessions age out and free capacity.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Metrics().SessionsActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sessions never evicted: %d active", s.Metrics().SessionsActive)
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := s.Metrics()
	if m.SessionsEvictedTotal != 2 {
		t.Fatalf("sessions_evicted_total = %d, want 2", m.SessionsEvictedTotal)
	}
	if w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2}); w.Code != http.StatusCreated {
		t.Fatalf("post-eviction create = %d: %s", w.Code, w.Body.String())
	}
}

// TestSessionMetrics spot-checks the sessions_* counters end to end.
func TestSessionMetrics(t *testing.T) {
	s := sessionTestServer(t, Config{})
	w := postJSON(t, s, "/v1/sessions", map[string]any{"graph": pathGraph(t, 4), "stretch": 3})
	id := decodeBody[sessionResponse](t, w).ID
	postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"deltas": []map[string]any{
			{"op": "insert", "u": 3, "v": 0, "weight": 2},
			{"op": "delete", "u": 0, "v": 1},
		},
	})
	m := s.Metrics()
	if m.SessionsActive != 1 || m.SessionsCreatedTotal != 1 {
		t.Fatalf("session gauges: %+v", m)
	}
	if m.SessionDeltaBatchesTotal != 1 || m.SessionDeltaOpsTotal != 2 {
		t.Fatalf("delta counters: batches=%d ops=%d", m.SessionDeltaBatchesTotal, m.SessionDeltaOpsTotal)
	}
	if m.SessionCachePutsTotal < 2 { // create + batch
		t.Fatalf("session_cache_puts_total = %d, want >= 2", m.SessionCachePutsTotal)
	}
	// The kept-edge delete dirties the whole suffix: the first batch resolves
	// by full rebuild, so no retained oracle exists yet. The delta latency
	// histogram records every batch regardless of path.
	if m.SessionFullRebuildsTotal != 1 || m.SessionOracleRebuildsTotal != 0 || m.SessionOracleReusesTotal != 0 {
		t.Fatalf("after full-rebuild batch: full=%d rebuilds=%d reuses=%d, want 1/0/0",
			m.SessionFullRebuildsTotal, m.SessionOracleRebuildsTotal, m.SessionOracleReusesTotal)
	}
	if m.Latency.SessionDelta.Count != 1 {
		t.Fatalf("session_delta latency count = %d, want 1", m.Latency.SessionDelta.Count)
	}

	// A small suffix repair after the rebuild constructs the retained state
	// from scratch; the next one rewinds it.
	w = postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "u": 0, "v": 2, "weight": 5}},
	})
	dr := decodeBody[sessionDeltasResponse](t, w)
	if dr.FullRebuild || !dr.OracleBuilt || dr.OracleReused {
		t.Fatalf("post-rebuild batch: %+v, want a from-scratch suffix repair", dr)
	}
	w = postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "u": 1, "v": 3, "weight": 6}},
	})
	dr = decodeBody[sessionDeltasResponse](t, w)
	if dr.FullRebuild || !dr.OracleReused || dr.OracleBuilt {
		t.Fatalf("reuse batch: %+v, want a rewound suffix repair", dr)
	}
	m = s.Metrics()
	if m.SessionOracleReusesTotal != 1 || m.SessionOracleRebuildsTotal != 1 {
		t.Fatalf("oracle reuse counters: rebuilds=%d reuses=%d, want 1/1",
			m.SessionOracleRebuildsTotal, m.SessionOracleReusesTotal)
	}
	if m.Latency.SessionDelta.Count != 3 {
		t.Fatalf("session_delta latency count = %d, want 3", m.Latency.SessionDelta.Count)
	}

	req := httptest.NewRequest("DELETE", "/v1/sessions/"+id, nil)
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	m = s.Metrics()
	if m.SessionsActive != 0 || m.SessionsClosedTotal != 1 {
		t.Fatalf("post-delete gauges: active=%d closed=%d", m.SessionsActive, m.SessionsClosedTotal)
	}
}

// TestSessionStateReuseAblation drives the same delta stream through a
// default session and a disable_state_reuse one: digests must stay identical
// while the ablated engine reports oracle_built on every repairing batch.
func TestSessionStateReuseAblation(t *testing.T) {
	s := sessionTestServer(t, Config{})
	mk := func(disable bool) string {
		w := postJSON(t, s, "/v1/sessions", map[string]any{
			"graph": pathGraph(t, 6), "stretch": 3, "faults": 1,
			"disable_state_reuse": disable, "no_cache": true,
		})
		if w.Code != http.StatusCreated {
			t.Fatalf("create(disable=%v) = %d: %s", disable, w.Code, w.Body.String())
		}
		return decodeBody[sessionResponse](t, w).ID
	}
	reuse, ablated := mk(false), mk(true)
	batches := [][]map[string]any{
		{{"op": "insert", "u": 5, "v": 0, "weight": 2}},
		{{"op": "insert", "u": 0, "v": 3, "weight": 3}},
		{{"op": "delete", "u": 5, "v": 0}},
	}
	for i, deltas := range batches {
		wr := postJSON(t, s, "/v1/sessions/"+reuse+"/deltas", map[string]any{"deltas": deltas})
		wa := postJSON(t, s, "/v1/sessions/"+ablated+"/deltas", map[string]any{"deltas": deltas})
		if wr.Code != http.StatusOK || wa.Code != http.StatusOK {
			t.Fatalf("batch %d: reuse=%d ablated=%d", i, wr.Code, wa.Code)
		}
		dr := decodeBody[sessionDeltasResponse](t, wr)
		da := decodeBody[sessionDeltasResponse](t, wa)
		if dr.Digest != da.Digest || dr.Kept != da.Kept {
			t.Fatalf("batch %d: ablation diverged: reuse %s/%d vs ablated %s/%d",
				i, dr.Digest, dr.Kept, da.Digest, da.Kept)
		}
		if da.OracleReused {
			t.Fatalf("batch %d: ablated session reused state", i)
		}
		if da.SuffixLen > 0 && !da.FullRebuild && !da.OracleBuilt {
			t.Fatalf("batch %d: ablated repair did not rebuild the oracle: %+v", i, da)
		}
		if i > 0 && dr.SuffixLen > 0 && !dr.FullRebuild && !dr.OracleReused {
			t.Fatalf("batch %d: reuse session did not rewind: %+v", i, dr)
		}
	}
}

// TestSessionDrainRefuses checks draining servers refuse session creates and
// deltas with 503.
func TestSessionDrainRefuses(t *testing.T) {
	s := sessionTestServer(t, Config{})
	w := postJSON(t, s, "/v1/sessions", map[string]any{"graph": pathGraph(t, 3), "stretch": 3})
	id := decodeBody[sessionResponse](t, w).ID

	s.StartDrain()
	if w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2}); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining create = %d, want 503", w.Code)
	}
	w = postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{
		"deltas": []map[string]any{{"op": "insert", "u": 0, "v": 2, "weight": 1}},
	})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining deltas = %d, want 503", w.Code)
	}
}

// TestSessionDeltaOpCap bounds one request's operation count.
func TestSessionDeltaOpCap(t *testing.T) {
	s := sessionTestServer(t, Config{MaxBodyBytes: 64 << 20})
	w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2, "vertices": 3})
	id := decodeBody[sessionResponse](t, w).ID
	deltas := make([]map[string]any, maxSessionDeltaOps+1)
	for i := range deltas {
		deltas[i] = map[string]any{"op": "insert", "u": 0, "v": 1, "weight": 1}
	}
	if w := postJSON(t, s, "/v1/sessions/"+id+"/deltas", map[string]any{"deltas": deltas}); w.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch = %d, want 400", w.Code)
	}
}

// TestSessionSpannerMatchesRebuildUnderChurn is the service-level
// differential lock: random delta batches over HTTP, and after each one the
// session spanner endpoint must agree with a fresh engine built from the
// session's own reported graph.
func TestSessionSpannerMatchesRebuildUnderChurn(t *testing.T) {
	s := sessionTestServer(t, Config{})
	w := postJSON(t, s, "/v1/sessions", map[string]any{
		"graph": pathGraph(t, 6), "stretch": 3, "faults": 1,
	})
	id := decodeBody[sessionResponse](t, w).ID

	steps := []map[string]any{
		{"deltas": []map[string]any{
			{"op": "insert", "u": 5, "v": 0, "weight": 1},
			{"op": "insert", "u": 0, "v": 3, "weight": 2.5},
		}},
		{"deltas": []map[string]any{
			{"op": "delete", "u": 2, "v": 3},
			{"op": "insert", "u": 1, "v": 4, "weight": 0.5},
		}},
		{"add_vertices": 1, "deltas": []map[string]any{
			{"op": "insert", "u": 6, "v": 0, "weight": 1},
			{"op": "insert", "u": 6, "v": 3, "weight": 1},
		}},
		{"deltas": []map[string]any{{"op": "fault", "vertex": 0}}},
	}
	for i, step := range steps {
		if w := postJSON(t, s, "/v1/sessions/"+id+"/deltas", step); w.Code != http.StatusOK {
			t.Fatalf("step %d = %d: %s", i, w.Code, w.Body.String())
		}
		sp := decodeBody[sessionSpannerResponse](t, getPath(t, s, "/v1/sessions/"+id+"/spanner"))
		sessSpanner, err := graph.Decode(strings.NewReader(sp.Spanner))
		if err != nil {
			t.Fatalf("step %d: decode spanner: %v", i, err)
		}
		// Rebuild from scratch via a fresh no-cache job over the session's
		// current graph (reconstructed from its kept list is not enough — we
		// need the full live graph, so rebuild it from the session edges).
		// The digest in the spanner response identifies the current graph;
		// submit a job with the same parameters and compare digests of the
		// spanners.
		jw := postJSON(t, s, "/v1/jobs", map[string]any{
			"graph": encodeCurrentSessionGraph(t, s, id), "stretch": 3, "faults": 1,
		})
		job := decodeBody[submitResponse](t, jw)
		if !job.Cached {
			waitJobDone(t, s, job.ID)
		}
		jsp := decodeBody[spannerResponse](t, getPath(t, s, "/v1/jobs/"+job.ID+"/spanner"))
		jg, err := graph.Decode(strings.NewReader(jsp.Spanner))
		if err != nil {
			t.Fatalf("step %d: decode job spanner: %v", i, err)
		}
		if sessSpanner.Digest() != jg.Digest() {
			t.Fatalf("step %d: session spanner %s != rebuild %s", i, sessSpanner.Digest(), jg.Digest())
		}
	}
}

// encodeCurrentSessionGraph reconstructs the session's current materialized
// graph through the server's own internals (test-only peek).
func encodeCurrentSessionGraph(t *testing.T, s *Server, id string) string {
	t.Helper()
	sess, ok := s.session(id)
	if !ok {
		t.Fatalf("no session %s", id)
	}
	sess.mu.Lock()
	mat, _, err := sess.eng.Current()
	sess.mu.Unlock()
	if err != nil {
		t.Fatalf("Current: %v", err)
	}
	var sb strings.Builder
	if err := mat.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestSessionEventLogTrim checks the bounded event log trims oldest-first
// and streams resume from the oldest retained event.
func TestSessionEventLogTrim(t *testing.T) {
	s := sessionTestServer(t, Config{})
	w := postJSON(t, s, "/v1/sessions", map[string]any{"stretch": 2, "vertices": 2})
	id := decodeBody[sessionResponse](t, w).ID
	sess, _ := s.session(id)

	// Flood past the bound with alternating insert/delete batches.
	for i := 0; i < maxSessionEvents+20; i++ {
		var body map[string]any
		if i%2 == 0 {
			body = map[string]any{"deltas": []map[string]any{{"op": "insert", "u": 0, "v": 1, "weight": 1}}}
		} else {
			body = map[string]any{"deltas": []map[string]any{{"op": "delete", "u": 0, "v": 1}}}
		}
		if w := postJSON(t, s, "/v1/sessions/"+id+"/deltas", body); w.Code != http.StatusOK {
			t.Fatalf("batch %d = %d: %s", i, w.Code, w.Body.String())
		}
	}
	evs, _, _ := sess.eventsSince(0)
	if len(evs) != maxSessionEvents {
		t.Fatalf("retained %d events, want %d", len(evs), maxSessionEvents)
	}
	if evs[0].Seq == 0 {
		t.Fatal("event log never trimmed")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("event seqs not contiguous at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}
