package service

import (
	"fmt"
	"time"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/store"
)

// storeKeyFor renders a cache key as the durable store's canonical key
// string. The leading "v1" scopes the key space, so a future key-shape
// change misses cleanly instead of aliasing old records.
func storeKeyFor(key CacheKey) string {
	return fmt.Sprintf("v1|%s|%g|%d|%s|%s|%d",
		key.Digest, key.Stretch, key.Faults, key.Mode, key.Algorithm, key.Seed)
}

// recordFor flattens a completed build into its persisted form: kept-edge
// IDs and stats only — the spanner is reconstructed from the input graph on
// read, and its digest is stored so the reconstruction is verifiable.
func recordFor(key CacheKey, res *buildResult) *store.Record {
	st := res.stats
	return &store.Record{
		Key:           storeKeyFor(key),
		NumVertices:   res.input.NumVertices(),
		InputEdges:    res.input.NumEdges(),
		SpannerDigest: res.spanner.Digest(),
		Kept:          res.kept,
		Stats: store.Stats{
			EdgesScanned:     int64(st.EdgesScanned),
			OracleCalls:      st.OracleCalls,
			Dijkstras:        st.Dijkstras,
			WitnessHits:      st.WitnessHits,
			WitnessMisses:    st.WitnessMisses,
			SpecBatches:      st.SpecBatches,
			SpecQueries:      st.SpecQueries,
			SpecHits:         st.SpecHits,
			SpecWaste:        st.SpecWaste,
			SpecRounds:       st.SpecRounds,
			SpecRequeries:    st.SpecRequeries,
			PipelineDepth:    int64(st.PipelineDepth),
			WitnessSeedTries: st.WitnessSeedTries,
			WitnessSeedHits:  st.WitnessSeedHits,
			DurationNS:       int64(st.Duration),
		},
	}
}

// resultFromRecord rebuilds a full buildResult from a stored record and the
// freshly materialized input graph: kept edges are re-added in stored order
// (spanner edge IDs are assigned in keep order, so the reconstruction is
// exact), and the spanner digest must match the one recorded at build time
// byte for byte. Any inconsistency is an error — the caller quarantines the
// record and rebuilds.
func resultFromRecord(g *graph.Graph, rec *store.Record) (*buildResult, error) {
	if rec.NumVertices != g.NumVertices() || rec.InputEdges != g.NumEdges() {
		return nil, fmt.Errorf("record is for a %dv/%de graph, input has %dv/%de",
			rec.NumVertices, rec.InputEdges, g.NumVertices(), g.NumEdges())
	}
	sp := graph.New(g.NumVertices())
	for _, id := range rec.Kept {
		if id < 0 || id >= g.NumEdges() {
			return nil, fmt.Errorf("kept edge ID %d out of range", id)
		}
		e := g.Edge(id)
		if _, err := sp.AddEdge(e.U, e.V, e.Weight); err != nil {
			return nil, fmt.Errorf("kept edge %d: %w", id, err)
		}
	}
	if d := sp.Digest(); d != rec.SpannerDigest {
		return nil, fmt.Errorf("reconstructed spanner digest %s != stored %s", d, rec.SpannerDigest)
	}
	st := rec.Stats
	return &buildResult{
		input:   g,
		spanner: sp,
		kept:    append([]int(nil), rec.Kept...),
		stats: core.Stats{
			EdgesScanned:     int(st.EdgesScanned),
			OracleCalls:      st.OracleCalls,
			Dijkstras:        st.Dijkstras,
			WitnessHits:      st.WitnessHits,
			WitnessMisses:    st.WitnessMisses,
			SpecBatches:      st.SpecBatches,
			SpecQueries:      st.SpecQueries,
			SpecHits:         st.SpecHits,
			SpecWaste:        st.SpecWaste,
			SpecRounds:       st.SpecRounds,
			SpecRequeries:    st.SpecRequeries,
			PipelineDepth:    int(st.PipelineDepth),
			WitnessSeedTries: st.WitnessSeedTries,
			WitnessSeedHits:  st.WitnessSeedHits,
			Duration:         time.Duration(st.DurationNS),
		},
	}, nil
}

// storeGet consults the disk tier for key's result, quarantining records
// that decode but fail the cross-checks against the input graph. It returns
// nil on any miss. Called without Server.mu held — it does disk I/O.
func (s *Server) storeGet(key CacheKey, g *graph.Graph) *buildResult {
	if s.store == nil {
		return nil
	}
	sk := storeKeyFor(key)
	rec, ok := s.store.Get(sk)
	if !ok {
		return nil
	}
	res, err := resultFromRecord(g, rec)
	if err != nil {
		s.store.Quarantine(sk)
		return nil
	}
	return res
}

// storePut persists a completed build to the disk tier; write failures are
// counted by the store and otherwise ignored — durability is best-effort,
// the in-memory result is already committed.
func (s *Server) storePut(key CacheKey, res *buildResult) {
	if s.store == nil {
		return
	}
	_ = s.store.Put(recordFor(key, res))
}
