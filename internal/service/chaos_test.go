// Seeded end-to-end chaos suite: one server run under simultaneous disk
// faults (probabilistic EIO/ENOSPC, torn renames, slow writes), injected
// build panics, and per-job deadlines, followed by clean-room verification
// that nothing the chaos touched was wrong — merely absent.
//
// Pass criteria (the ISSUE's bar):
//   - the process never dies: every submitted job reaches a terminal state;
//   - jobs that succeeded under chaos produced spanners byte-identical (by
//     graph digest) to an uninjected rebuild of the same spec;
//   - the store never serves a corrupt record: a clean server reopening the
//     chaos-era store directory answers every spec with the correct digest;
//   - the breaker trips under a forced failure burst and re-arms after the
//     disk recovers, with persistence demonstrably resumed.
//
// The whole run is driven by one seed (default fixed; override with
// CHAOS_SEED=n) so a failure reproduces exactly; on failure the seed is
// written to chaos_failure_seed.txt for CI to upload as an artifact.
package service

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/injectfs"
)

// chaosDefaultSeed pins the default run; CHAOS_SEED overrides it.
const chaosDefaultSeed = 20260808

// chaosSeed resolves the run seed.
func chaosSeed(t *testing.T) int64 {
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		return n
	}
	return chaosDefaultSeed
}

// chaosPanicker decides, under a seeded mutex-guarded rng, whether a chaos
// site detonates. The rate is per site visit, so it is kept far below the
// I/O fault rates: oracle sites fire thousands of times per build.
type chaosPanicker struct {
	mu   sync.Mutex
	rng  *rand.Rand
	rate float64
	hits int64
}

func (c *chaosPanicker) hook(site string) {
	c.mu.Lock()
	fire := c.rng.Float64() < c.rate
	if fire {
		c.hits++
	}
	c.mu.Unlock()
	if fire {
		panic("chaos: injected panic at " + site)
	}
}

func (c *chaosPanicker) count() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *chaosPanicker) setRate(r float64) {
	c.mu.Lock()
	c.rate = r
	c.mu.Unlock()
}

// chaosSpec derives one deterministic small build spec from the run rng.
func chaosSpec(rng *rand.Rand, i int64) JobSpec {
	n := 20 + rng.Intn(16)
	return JobSpec{
		Generator:   &GeneratorSpec{Name: "random", N: n, M: n * (3 + rng.Intn(2)), Seed: i},
		Stretch:     3,
		Faults:      1 + rng.Intn(2),
		Parallelism: []int{0, 2, 4}[rng.Intn(3)],
	}
}

// specKey canonicalizes a spec for the digest map.
func specKey(t *testing.T, spec JobSpec) string {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitTerminal polls until the job reaches any terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st statusResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status %s returned %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// spannerDigest fetches a done job's spanner and returns its graph digest.
func spannerDigest(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	var sp spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/spanner", nil, &sp); code != http.StatusOK {
		t.Fatalf("spanner %s returned %d", id, code)
	}
	h, err := graph.Decode(strings.NewReader(sp.Spanner))
	if err != nil {
		t.Fatalf("job %s spanner does not decode: %v", id, err)
	}
	return h.Digest()
}

func TestChaosEndToEnd(t *testing.T) {
	seed := chaosSeed(t)
	defer func() {
		if t.Failed() {
			// CI uploads this artifact so the failing run is reproducible
			// with CHAOS_SEED.
			_ = os.WriteFile("chaos_failure_seed.txt",
				[]byte(fmt.Sprintf("CHAOS_SEED=%d\n", seed)), 0o644)
		}
	}()

	// Job budget: >= 200 full, 40 in -short, split 60/20/20 across phases.
	total := int64(200)
	if testing.Short() {
		total = 40
	}
	phase1, phase2 := total*6/10, total*2/10
	phase3 := total - phase1 - phase2

	rng := rand.New(rand.NewSource(seed))
	ifs := injectfs.New(seed + 1)
	panicker := &chaosPanicker{rng: rand.New(rand.NewSource(seed + 2)), rate: 0.0005}
	storeDir := t.TempDir()
	srv, ts := newTestServer(t, Config{
		Workers:            4,
		StoreDir:           storeDir,
		StoreFS:            ifs,
		StoreProbeInterval: 5 * time.Millisecond,
		StoreRetrySeed:     seed + 3,
		Chaos:              panicker.hook,
	})

	// digests records spec -> spanner digest for every job that completed
	// under chaos; the clean-room phases must reproduce each exactly.
	digests := make(map[string]string)
	states := make(map[State]int64)

	// --- Phase 1: probabilistic chaos -----------------------------------
	// Disk faults at >= 10% rates on reads and writes, torn renames, slow
	// writes, a low-rate panic injector underneath every greedy build, and
	// a sprinkle of unmeetable deadlines.
	ifs.SetRates(injectfs.Rates{ReadErr: 0.15, WriteErr: 0.15, TornRename: 0.10, SlowWrite: 0.10})
	for i := int64(0); i < phase1; i++ {
		spec := chaosSpec(rng, i)
		if rng.Intn(10) == 0 {
			// An effectively-zero deadline: deterministic deadline_exceeded
			// unless the result comes from a cache tier (then it is done
			// before the deadline machinery is consulted).
			spec.DeadlineMs = 1
		}
		sub := submitJob(t, ts, spec)
		st := waitTerminal(t, ts, sub.ID)
		states[st.State]++
		switch st.State {
		case StateDone:
			if spec.DeadlineMs == 0 {
				key := specKey(t, spec)
				d := spannerDigest(t, ts, sub.ID)
				if prev, ok := digests[key]; ok && prev != d {
					t.Fatalf("same spec produced two digests under chaos: %s vs %s", prev, d)
				}
				digests[key] = d
			}
		case StateFailed:
			if !strings.Contains(st.Error, "panic") && !strings.Contains(st.Error, "chaos") {
				t.Errorf("job %s failed for a non-injected reason: %q", sub.ID, st.Error)
			}
		case StateDeadline:
			if spec.DeadlineMs == 0 {
				t.Errorf("job %s exceeded a deadline it never had", sub.ID)
			}
		default:
			t.Errorf("job %s ended %s; nothing in this phase cancels jobs", sub.ID, st.State)
		}
	}
	if len(digests) == 0 {
		t.Fatal("phase 1 produced no successful builds to verify")
	}
	t.Logf("phase 1 (seed %d): states=%v, %d unique successful specs, panics=%d",
		seed, states, len(digests), panicker.count())

	// --- Phase 2: forced failure burst -> breaker trip ------------------
	// Unconditional ENOSPC on every write guarantees the trip regardless of
	// what the phase-1 dice consumed. Jobs must keep completing memory-only.
	// Panic injection stops here: phases 2 and 3 assert the store's fate
	// alone, so every job must succeed.
	panicker.setRate(0)
	ifs.Clear()
	ifs.ForceWriteFailures(100000, syscall.ENOSPC)
	tripDeadline := time.Now().Add(60 * time.Second)
	var phase2Jobs int64
	for !srv.store.Degraded() {
		spec := chaosSpec(rng, 1_000_000+phase2Jobs)
		sub := submitJob(t, ts, spec)
		st := waitTerminal(t, ts, sub.ID)
		if st.State != StateDone {
			t.Fatalf("job %s ended %s during the write-failure burst; store faults must never fail jobs", sub.ID, st.State)
		}
		digests[specKey(t, spec)] = spannerDigest(t, ts, sub.ID)
		phase2Jobs++
		if time.Now().After(tripDeadline) {
			t.Fatal("breaker never tripped under unconditional write failures")
		}
	}
	for ; phase2Jobs < phase2; phase2Jobs++ {
		// Degraded mode: submissions still complete, persistence drops.
		spec := chaosSpec(rng, 1_000_000+phase2Jobs)
		sub := submitJob(t, ts, spec)
		if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
			t.Fatalf("job %s ended %s while the store was degraded", sub.ID, st.State)
		} else {
			digests[specKey(t, spec)] = spannerDigest(t, ts, sub.ID)
		}
	}
	m := getMetrics(t, ts)
	if !m.StoreDegraded || m.StoreBreakerTrips < 1 {
		t.Fatalf("after the burst: degraded=%v trips=%d", m.StoreDegraded, m.StoreBreakerTrips)
	}

	// --- Phase 3: recovery -> re-arm, persistence resumes ---------------
	ifs.Clear()
	rearmDeadline := time.Now().Add(60 * time.Second)
	for srv.store.Degraded() {
		if time.Now().After(rearmDeadline) {
			t.Fatal("breaker never re-armed after the disk recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	writesBefore := getMetrics(t, ts).StoreWrites
	for i := int64(0); i < phase3; i++ {
		spec := chaosSpec(rng, 2_000_000+i)
		sub := submitJob(t, ts, spec)
		if st := waitTerminal(t, ts, sub.ID); st.State != StateDone {
			t.Fatalf("job %s ended %s after recovery", sub.ID, st.State)
		}
		digests[specKey(t, spec)] = spannerDigest(t, ts, sub.ID)
	}
	m = getMetrics(t, ts)
	if m.StoreWrites <= writesBefore {
		t.Errorf("persistence did not resume after re-arm: writes %d -> %d", writesBefore, m.StoreWrites)
	}
	if m.PanicsTotal != int64(states[StateFailed]) {
		t.Errorf("panics_total=%d but %d jobs failed; every failure should be an injected panic",
			m.PanicsTotal, states[StateFailed])
	}
	t.Logf("run totals: jobs=%d verified-specs=%d breaker-trips=%d retries=%d panics=%d",
		phase1+phase2Jobs+phase3, len(digests), m.StoreBreakerTrips, m.StoreRetriesTotal, m.PanicsTotal)

	// --- Clean room 1: same store directory, real filesystem ------------
	// A fresh server over the chaos-era store must come up (torn and
	// truncated leftovers quarantined, never served) and answer every spec
	// with the digest recorded under chaos — via the store where records
	// survived, via rebuild where they did not.
	srv.Close()
	warm, warmTS := newTestServer(t, Config{Workers: 4, StoreDir: storeDir})
	for key, want := range digests {
		var spec JobSpec
		if err := json.Unmarshal([]byte(key), &spec); err != nil {
			t.Fatal(err)
		}
		sub := submitJob(t, warmTS, spec)
		st := waitTerminal(t, warmTS, sub.ID)
		if st.State != StateDone {
			t.Fatalf("clean warm rebuild of %s ended %s (%s)", key, st.State, st.Error)
		}
		if got := spannerDigest(t, warmTS, sub.ID); got != want {
			t.Errorf("spec %s: chaos digest %s != warm-store digest %s", key, want, got)
		}
	}
	wm := getMetrics(t, warmTS)
	t.Logf("warm reopen: store_hits=%d store_corrupt=%d rebuilt=%d",
		wm.StoreHits, wm.StoreCorruptTotal, wm.BuildsTotal)
	warm.Close()

	// --- Clean room 2: no store, pure rebuild ---------------------------
	// Byte-identical digests from a fully uninjected rebuild prove the
	// chaos-era successes were correct, not merely internally consistent.
	_, coldTS := newTestServer(t, Config{Workers: 4})
	for key, want := range digests {
		var spec JobSpec
		if err := json.Unmarshal([]byte(key), &spec); err != nil {
			t.Fatal(err)
		}
		sub := submitJob(t, coldTS, spec)
		st := waitTerminal(t, coldTS, sub.ID)
		if st.State != StateDone {
			t.Fatalf("clean cold rebuild of %s ended %s (%s)", key, st.State, st.Error)
		}
		if got := spannerDigest(t, coldTS, sub.ID); got != want {
			t.Errorf("spec %s: chaos digest %s != uninjected rebuild digest %s", key, want, got)
		}
	}
}
