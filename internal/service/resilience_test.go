package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/injectfs"
)

// waitRunning polls until the job leaves the queue and is actually building.
func waitRunning(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st statusResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status %s returned %d", id, code)
		}
		if st.State == StateRunning {
			return
		}
		if st.State.Terminal() {
			t.Fatalf("job %s already terminal (%s) before running", id, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", id)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrainRefusesSubmissionsAndReportsDraining(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	running := submitJob(t, ts, slowSpec(1))
	waitRunning(t, ts, running.ID)

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	// New submissions get 503 with a Retry-After estimated from the running
	// build's progress.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"generator":{"name":"random","n":30,"m":150,"seed":9},"stretch":3,"faults":1}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 carries no Retry-After header")
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "draining") {
		t.Errorf("draining 503 body %q", body.Error)
	}

	// /healthz flips to 503 "draining"; /metrics reports the gauge.
	hreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	hresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz returned %d, want 503", hresp.StatusCode)
	}
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("draining healthz status %q", h.Status)
	}
	if m := getMetrics(t, ts); !m.Draining {
		t.Error("metrics draining gauge false during drain")
	}

	// The running build is unaffected and finishes; the drain then completes.
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitState(t, ts, running.ID, StateDone)
}

func TestDrainCancelsQueuedJobs(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	running := submitJob(t, ts, slowSpec(2))
	waitRunning(t, ts, running.ID)
	queued := submitJob(t, ts, smallSpec(3))

	srv.StartDrain()

	// The queued job is cancelled immediately — nobody waits on a queue no
	// worker will drain — while the running one keeps its slot.
	var st statusResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+queued.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	if st.State != StateCancelled {
		t.Errorf("queued job is %s after StartDrain, want cancelled", st.State)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	waitState(t, ts, running.ID, StateDone)
}

func TestDrainTimeoutForceCancelsRunningBuilds(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	running := submitJob(t, ts, slowSpec(4))
	waitRunning(t, ts, running.ID)

	srv.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := srv.Drain(ctx)
	if err != context.DeadlineExceeded {
		t.Fatalf("Drain on an expired context returned %v, want DeadlineExceeded", err)
	}
	// The forced path cancels the build but still records a clean terminal
	// state before Drain returns.
	var st statusResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+running.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	if st.State != StateCancelled {
		t.Errorf("force-drained job is %s, want cancelled", st.State)
	}
}

func TestCloseIsIdempotentAndSafeDuringSubmissions(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})

	// Hammer submissions from several goroutines while Close runs: every
	// request must resolve (202 accepted before the drain flag, 503 after),
	// and nothing may hang or panic.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for seed := int64(0); ; seed++ {
				select {
				case <-stop:
					return
				default:
				}
				var resp submitResponse
				code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec(100+int64(i)*1000+seed), &resp)
				switch code {
				case http.StatusAccepted, http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
				default:
					t.Errorf("submit during close returned %d", code)
					return
				}
				if code == http.StatusServiceUnavailable {
					return // server is closing; goal reached
				}
			}
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	srv.Close() // idempotent: second call returns immediately
	close(stop)
	wg.Wait()

	// After Close every queued job has a terminal state — no client polls a
	// job forever.
	srv.mu.Lock()
	jobs := make([]*Job, 0, len(srv.jobs))
	for _, j := range srv.jobs {
		jobs = append(jobs, j)
	}
	srv.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		state := j.state
		j.mu.Unlock()
		if !state.Terminal() {
			t.Errorf("job %s left non-terminal (%s) after Close", j.id, state)
		}
	}
}

func TestDrainAndCloseCompletesInFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	sub := submitJob(t, ts, smallSpec(11))
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := srv.DrainAndClose(ctx); err != nil {
		t.Fatalf("DrainAndClose: %v", err)
	}
	var st statusResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, nil, &st); code != http.StatusOK {
		t.Fatalf("status returned %d", code)
	}
	if st.State != StateDone && st.State != StateCancelled {
		t.Errorf("job ended %s after graceful close", st.State)
	}
	if st.State == StateCancelled {
		t.Log("job was still queued at drain start; cancelled is the designed outcome")
	}
}

func TestEventStreamDeliversTerminalEventAcrossDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	sub := submitJob(t, ts, slowSpec(5))
	waitRunning(t, ts, sub.ID)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
		defer cancel()
		done <- srv.DrainAndClose(ctx)
	}()

	// The NDJSON stream must deliver the terminal event even though the
	// server shuts down while the client is subscribed: the graceful drain
	// finishes the build, and the handler's shutdown path flushes the events
	// that raced the listener teardown.
	var last Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("DrainAndClose: %v", err)
	}
	if !last.State.Terminal() {
		t.Fatalf("stream ended on non-terminal event %+v", last)
	}
	if last.State != StateDone {
		t.Errorf("drained build ended %s, want done", last.State)
	}
}

func TestJobDeadlineExceededState(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := slowSpec(6)
	spec.DeadlineMs = 30
	sub := submitJob(t, ts, spec)
	st := waitState(t, ts, sub.ID, StateDeadline)
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("deadline_exceeded job error %q", st.Error)
	}
	m := getMetrics(t, ts)
	if m.JobsDeadlineExceeded != 1 {
		t.Errorf("jobs_deadline_exceeded = %d, want 1", m.JobsDeadlineExceeded)
	}
	if m.JobsByState[StateDeadline] != 1 {
		t.Errorf("jobs_by_state[deadline_exceeded] = %d", m.JobsByState[StateDeadline])
	}

	// The worker slot survived: a normal job still builds.
	ok := submitJob(t, ts, smallSpec(7))
	waitState(t, ts, ok.ID, StateDone)
}

func TestInfeasibleDeadlineRejectedAtSubmit(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})

	// Feed the shedder a recent history of 500ms queue waits; a 100ms
	// deadline is then infeasible before any build starts.
	for i := 0; i < shedMinSamples; i++ {
		srv.shedder.observe(classOf(PriorityNormal), 500*time.Millisecond)
	}
	spec := smallSpec(8)
	spec.DeadlineMs = 100
	req, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(string(req)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("infeasible deadline returned %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("deadline rejection carries no Retry-After")
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "deadline") || !strings.Contains(body.Error, "p90") {
		t.Errorf("rejection body %q", body.Error)
	}
	m := getMetrics(t, ts)
	if m.Queues[PriorityNormal].DeadlineRejected != 1 {
		t.Errorf("deadline_rejected = %d, want 1", m.Queues[PriorityNormal].DeadlineRejected)
	}

	// A feasible deadline (far above the p90) is admitted.
	spec.DeadlineMs = 60_000
	sub := submitJob(t, ts, spec)
	waitState(t, ts, sub.ID, StateDone)
}

func TestBuildPanicBecomesFailedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		Chaos: func(site string) {
			if site == "oracle-query" {
				panic("injected oracle panic")
			}
		},
	})
	// Sequential build: the oracle panic escapes core and must be contained
	// by the worker's build-goroutine recovery.
	sub := submitJob(t, ts, smallSpec(9))
	deadline := time.Now().Add(60 * time.Second)
	var st statusResponse
	for {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, nil, &st); code != http.StatusOK {
			t.Fatalf("status returned %d", code)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("panicking job never reached a terminal state")
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != StateFailed {
		t.Fatalf("panicking job ended %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "panic in build") || !strings.Contains(st.Error, "injected oracle panic") {
		t.Errorf("failed job error does not name the panic: %q", st.Error)
	}
	if !strings.Contains(st.Error, "goroutine") {
		t.Errorf("failed job error carries no stack trace: %.120q", st.Error)
	}
	m := getMetrics(t, ts)
	if m.PanicsTotal != 1 {
		t.Errorf("panics_total = %d, want 1", m.PanicsTotal)
	}
	if m.JobsFailed != 1 {
		t.Errorf("jobs_failed = %d, want 1", m.JobsFailed)
	}
}

func TestStoreDegradedSurfacesInMetricsAndHealthz(t *testing.T) {
	ifs := injectfs.New(1)
	srv, ts := newTestServer(t, Config{
		Workers:            1,
		StoreDir:           t.TempDir(),
		StoreFS:            ifs,
		StoreProbeInterval: 5 * time.Millisecond,
	})

	// Force every write to fail until the breaker trips, then submit builds
	// whose persists hammer the broken disk. Jobs must still complete.
	ifs.ForceWriteFailures(1000, syscall.ENOSPC)
	deadline := time.Now().Add(60 * time.Second)
	for seed := int64(0); !srv.store.Degraded(); seed++ {
		sub := submitJob(t, ts, smallSpec(200+seed))
		waitState(t, ts, sub.ID, StateDone)
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped under forced write failures")
		}
	}

	m := getMetrics(t, ts)
	if !m.StoreDegraded || m.StoreBreakerTrips < 1 {
		t.Errorf("degraded metrics: degraded=%v trips=%d", m.StoreDegraded, m.StoreBreakerTrips)
	}

	// Degraded is NOT unhealthy: healthz stays 200 with status "degraded".
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || h.Status != "degraded" || h.Store != "degraded" {
		t.Errorf("degraded healthz: code=%d status=%q store=%q", hresp.StatusCode, h.Status, h.Store)
	}

	// Disk recovers; the probe re-arms the breaker and healthz returns to ok.
	ifs.Clear()
	for time.Now().Before(deadline) && srv.store.Degraded() {
		time.Sleep(2 * time.Millisecond)
	}
	if srv.store.Degraded() {
		t.Fatal("breaker never re-armed after the disk recovered")
	}
	hresp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp2.Body.Close()
	if err := json.NewDecoder(hresp2.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if hresp2.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Errorf("recovered healthz: code=%d status=%q", hresp2.StatusCode, h.Status)
	}
}

func TestNegativeDeadlineRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := smallSpec(10)
	spec.DeadlineMs = -5
	var body errorBody
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, &body)
	if code != http.StatusBadRequest {
		t.Fatalf("negative deadline returned %d, want 400", code)
	}
	if !strings.Contains(body.Error, "deadline_ms") {
		t.Errorf("rejection body %q", body.Error)
	}
}
