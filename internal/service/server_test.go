package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// mustNew builds a Server, failing the test on a config/store error.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := mustNew(t, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// doJSON performs one request with a JSON body and decodes the JSON reply
// into out (unless nil).
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding reply: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// submitJob submits spec and fails the test on a non-2xx reply.
func submitJob(t *testing.T, ts *httptest.Server, spec JobSpec) submitResponse {
	t.Helper()
	var resp submitResponse
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, &resp)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit returned %d", code)
	}
	return resp
}

// waitState polls the job until it reaches want (fatal on a different
// terminal state or timeout).
func waitState(t *testing.T, ts *httptest.Server, id string, want State) statusResponse {
	t.Helper()
	// Generous: eight ~500ms builds timeshared on one core under -race can
	// near a minute of wall clock.
	deadline := time.Now().Add(120 * time.Second)
	for {
		var st statusResponse
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status %s returned %d", id, code)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s ended %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, ts *httptest.Server) MetricsSnapshot {
	t.Helper()
	var m MetricsSnapshot
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics returned %d", code)
	}
	return m
}

// smallSpec is a fast deterministic build used where the job's content does
// not matter.
func smallSpec(seed int64) JobSpec {
	return JobSpec{
		Generator: &GeneratorSpec{Name: "random", N: 30, M: 150, Seed: seed},
		Stretch:   3,
		Faults:    1,
	}
}

// slowSpec is a build long enough (hundreds of milliseconds) to observe and
// cancel mid-run. Sized up after the PR-2 oracle overhaul made the previous
// workload finish in tens of milliseconds.
func slowSpec(seed int64) JobSpec {
	return JobSpec{
		Generator: &GeneratorSpec{Name: "random", N: 300, M: 12000, Seed: seed},
		Stretch:   3,
		Faults:    3,
	}
}

func TestSubmitPollFetchVerify(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// Inline input: the complete graph K12 in Encode format.
	g := gen.Complete(12)
	var sb strings.Builder
	if err := g.Encode(&sb); err != nil {
		t.Fatal(err)
	}
	sub := submitJob(t, ts, JobSpec{Graph: sb.String(), Stretch: 3, Faults: 1, Mode: "vertex"})
	if sub.Cached || sub.Deduplicated {
		t.Fatalf("fresh submission reported cached=%v deduplicated=%v", sub.Cached, sub.Deduplicated)
	}

	st := waitState(t, ts, sub.ID, StateDone)
	if st.Vertices != 12 || st.InputEdges != g.NumEdges() {
		t.Errorf("status reports %d vertices / %d edges, want 12 / %d", st.Vertices, st.InputEdges, g.NumEdges())
	}
	if st.GraphDigest != g.Digest() {
		t.Errorf("status digest %q != input digest %q", st.GraphDigest, g.Digest())
	}
	if st.Stats == nil || st.Stats.Dijkstras == 0 || st.Stats.EdgesScanned != g.NumEdges() {
		t.Errorf("missing or implausible stats: %+v", st.Stats)
	}

	var sp spannerResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID+"/spanner", nil, &sp); code != http.StatusOK {
		t.Fatalf("spanner fetch returned %d", code)
	}
	h, err := graph.Decode(strings.NewReader(sp.Spanner))
	if err != nil {
		t.Fatalf("returned spanner does not decode: %v", err)
	}
	if h.NumEdges() != len(sp.Kept) || h.NumEdges() != *st.SpannerEdges {
		t.Errorf("spanner has %d edges, kept lists %d, status says %d", h.NumEdges(), len(sp.Kept), *st.SpannerEdges)
	}
	for i, id := range sp.Kept {
		he, ge := h.Edge(i), g.Edge(id)
		hu, hv := he.Endpoints()
		gu, gv := ge.Endpoints()
		if hu != gu || hv != gv || he.Weight != ge.Weight {
			t.Fatalf("spanner edge %d = (%d,%d) does not match input edge %d = (%d,%d)", i, hu, hv, id, gu, gv)
		}
	}

	var vr verifyResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/verify",
		verifyRequest{JobID: sub.ID, Trials: 25, Seed: 7}, &vr); code != http.StatusOK {
		t.Fatalf("verify returned %d", code)
	}
	if !vr.OK || vr.Trials != 25 {
		t.Errorf("verify reply %+v, want ok over 25 trials", vr)
	}

	m := getMetrics(t, ts)
	if m.BuildsTotal != 1 || m.CacheMisses != 1 || m.JobsByState[StateDone] != 1 || m.Dijkstras == 0 {
		t.Errorf("unexpected metrics after one build: %+v", m)
	}
}

func TestCacheHitSkipsRecompute(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	first := submitJob(t, ts, smallSpec(5))
	waitState(t, ts, first.ID, StateDone)

	// Same spec, different (ignored) seed field ordering: must be a cache
	// hit, already done, with no second build.
	second := submitJob(t, ts, smallSpec(5))
	if second.ID == first.ID {
		t.Fatal("cache hit reused the original job ID instead of minting a new job")
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("duplicate submission got cached=%v state=%s, want a done cache hit", second.Cached, second.State)
	}

	var spa, spb spannerResponse
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+first.ID+"/spanner", nil, &spa)
	doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+second.ID+"/spanner", nil, &spb)
	if spa.Spanner != spb.Spanner || fmt.Sprint(spa.Kept) != fmt.Sprint(spb.Kept) {
		t.Error("cached result differs from the original build")
	}

	m := getMetrics(t, ts)
	if m.BuildsTotal != 1 {
		t.Errorf("builds_total=%d after a duplicate submission, want 1", m.BuildsTotal)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.CacheEntries != 1 {
		t.Errorf("cache counters %+v, want one hit, one miss, one entry", m)
	}
	if m.CacheHitRatio != 0.5 {
		t.Errorf("cache_hit_ratio=%v, want 0.5", m.CacheHitRatio)
	}
}

// TestEightConcurrentBuilds demonstrates the acceptance criterion: eight
// distinct jobs simultaneously occupying the slots of an eight-worker
// pool, witnessed by the max_concurrent_builds high-water mark.
func TestEightConcurrentBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second concurrency soak skipped in -short mode")
	}
	const n = 8
	_, ts := newTestServer(t, Config{Workers: n})

	// Distinct seeds make distinct graphs, so no dedup or caching. Each
	// build costs ~500ms of CPU: even on one core, the first job cannot
	// finish before the last is submitted and dequeued, so all eight must
	// overlap regardless of scheduling.
	ids := make([]string, n)
	for i := range ids {
		sub := submitJob(t, ts, JobSpec{
			Generator: &GeneratorSpec{Name: "random", N: 300, M: 12000, Seed: int64(100 + i)},
			Stretch:   3,
			Faults:    3,
		})
		ids[i] = sub.ID
	}
	for _, id := range ids {
		waitState(t, ts, id, StateDone)
	}

	m := getMetrics(t, ts)
	if m.MaxConcurrentBuilds != n {
		t.Errorf("max_concurrent_builds=%d, want %d simultaneous builds", m.MaxConcurrentBuilds, n)
	}
	if m.BuildsTotal != n || m.JobsByState[StateDone] != n || m.BuildsInFlight != 0 {
		t.Errorf("metrics after %d concurrent builds: %+v", n, m)
	}
}

func TestCancelRunningJobFreesWorkerSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	victim := submitJob(t, ts, slowSpec(1))
	waitState(t, ts, victim.ID, StateRunning)

	var cr cancelResponse
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+victim.ID, nil, &cr); code != http.StatusAccepted {
		t.Fatalf("cancel returned %d", code)
	}
	waitState(t, ts, victim.ID, StateCancelled)

	// The single worker slot must be free again: a small follow-up job has
	// to complete, long before the cancelled build would have.
	follower := submitJob(t, ts, smallSpec(2))
	waitState(t, ts, follower.ID, StateDone)

	m := getMetrics(t, ts)
	if m.JobsByState[StateCancelled] != 1 || m.JobsByState[StateDone] != 1 {
		t.Errorf("metrics after cancel+rerun: %+v", m.JobsByState)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	blocker := submitJob(t, ts, slowSpec(3))
	waitState(t, ts, blocker.ID, StateRunning)
	queued := submitJob(t, ts, smallSpec(4))

	var cr cancelResponse
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, &cr)
	if cr.State != StateCancelled {
		t.Fatalf("queued job cancel reported %s, want immediate %s", cr.State, StateCancelled)
	}
	waitState(t, ts, queued.ID, StateCancelled)
	if m := getMetrics(t, ts); m.QueueDepth != 0 {
		t.Errorf("queue_depth=%d after cancelling the only queued job, want 0", m.QueueDepth)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+blocker.ID, nil, nil)
	waitState(t, ts, blocker.ID, StateCancelled)
}

func TestQueueFullRejectsWith503(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	running := submitJob(t, ts, slowSpec(5))
	waitState(t, ts, running.ID, StateRunning)
	queued := submitJob(t, ts, smallSpec(6)) // fills the one queue slot

	var eb errorBody
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", smallSpec(7), &eb); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submission returned %d, want 503", code)
	}
	if !strings.Contains(eb.Error, "queue full") {
		t.Errorf("overflow error %q does not mention the queue", eb.Error)
	}

	// Cancelling the queued job must free its slot immediately: the same
	// overflow submission is now accepted instead of 503.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, nil)
	retry := submitJob(t, ts, smallSpec(7))
	if retry.State != StateQueued {
		t.Errorf("post-cancel resubmission got state %s, want queued", retry.State)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+retry.ID, nil, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil, nil)
}

func TestInFlightDuplicateCoalesces(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	a := submitJob(t, ts, slowSpec(8))
	b := submitJob(t, ts, slowSpec(8))
	if b.ID != a.ID || !b.Deduplicated {
		t.Fatalf("duplicate in-flight submission got id=%s dedup=%v, want coalescing onto %s", b.ID, b.Deduplicated, a.ID)
	}
	m := getMetrics(t, ts)
	if m.Deduplicated != 1 {
		t.Errorf("deduplicated=%d, want 1", m.Deduplicated)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+a.ID, nil, nil)
}

func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	sub := submitJob(t, ts, JobSpec{
		Generator: &GeneratorSpec{Name: "random", N: 100, M: 2000, Seed: 9},
		Stretch:   3,
		Faults:    2,
	})
	resp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type %q", ct)
	}

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) < 3 {
		t.Fatalf("only %d events; want queued, progress, done", len(events))
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
	}
	if events[0].State != StateQueued {
		t.Errorf("first event state %s, want queued", events[0].State)
	}
	last := events[len(events)-1]
	if last.State != StateDone || last.Scanned != 2000 || last.Kept == 0 {
		t.Errorf("final event %+v, want done with full scan counts", last)
	}
	progress := 0
	for _, e := range events[1 : len(events)-1] {
		if e.State == StateRunning && e.Scanned > 0 {
			progress++
		}
	}
	if progress == 0 {
		t.Error("no mid-run progress events with scanned > 0")
	}
}

func TestAllAlgorithmsBuildAndVerify(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	gspec := &GeneratorSpec{Name: "random", N: 24, M: 100, Seed: 11}
	for _, tc := range []struct {
		algo string
		mode string
	}{
		{AlgoGreedy, "vertex"},
		{AlgoConservative, "edge"},
		{AlgoUnionEFT, "edge"},
		{AlgoSamplingVFT, "vertex"},
	} {
		t.Run(tc.algo, func(t *testing.T) {
			sub := submitJob(t, ts, JobSpec{
				Generator: gspec, Stretch: 3, Faults: 1, Mode: tc.mode, Algorithm: tc.algo, Seed: 13,
			})
			waitState(t, ts, sub.ID, StateDone)
			var vr verifyResponse
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/verify",
				verifyRequest{JobID: sub.ID, Trials: 20, Seed: 17}, &vr); code != http.StatusOK {
				t.Fatalf("verify returned %d", code)
			}
			if !vr.OK {
				t.Errorf("%s result failed verification: %s", tc.algo, vr.Violation)
			}
		})
	}
}

func TestGeneratorsAndInlineAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	// grid generator and the same grid submitted inline share a digest, so
	// the second submission is a cache hit across input encodings.
	grid := submitJob(t, ts, JobSpec{
		Generator: &GeneratorSpec{Name: "grid", Rows: 5, Cols: 6}, Stretch: 3, Faults: 1,
	})
	waitState(t, ts, grid.ID, StateDone)

	var sb strings.Builder
	if err := gen.Grid(5, 6).Encode(&sb); err != nil {
		t.Fatal(err)
	}
	inline := submitJob(t, ts, JobSpec{Graph: sb.String(), Stretch: 3, Faults: 1})
	if !inline.Cached {
		t.Error("inline resubmission of a generated graph missed the cache")
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, spec := range map[string]JobSpec{
		"no input":            {Stretch: 3, Faults: 1},
		"two inputs":          {Graph: "p 1 0\n", Generator: &GeneratorSpec{Name: "complete", N: 3}, Stretch: 3},
		"bad stretch":         {Graph: "p 1 0\n", Stretch: 0.5},
		"negative faults":     {Graph: "p 1 0\n", Stretch: 3, Faults: -1},
		"bad mode":            {Graph: "p 1 0\n", Stretch: 3, Mode: "both"},
		"bad algorithm":       {Graph: "p 1 0\n", Stretch: 3, Algorithm: "magic"},
		"union-eft on vertex": {Graph: "p 1 0\n", Stretch: 3, Mode: "vertex", Algorithm: AlgoUnionEFT},
		"sampling even k":     {Graph: "p 1 0\n", Stretch: 4, Mode: "vertex", Algorithm: AlgoSamplingVFT},
		"malformed graph":     {Graph: "p 2 1\ne 0 5 1\n", Stretch: 3},
		"bad generator":       {Generator: &GeneratorSpec{Name: "torus", N: 4}, Stretch: 3},
		"oversized generator": {Generator: &GeneratorSpec{Name: "complete", N: maxGeneratedSize + 1}, Stretch: 3},
	} {
		t.Run(name, func(t *testing.T) {
			var eb errorBody
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, &eb); code != http.StatusBadRequest {
				t.Fatalf("returned %d (%s), want 400", code, eb.Error)
			}
		})
	}

	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job status returned %d", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope/spanner", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job spanner returned %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job cancel returned %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/verify", verifyRequest{JobID: "nope"}, nil); code != http.StatusNotFound {
		t.Errorf("verify of unknown job returned %d", code)
	}
}

func TestSpannerOfUnfinishedJobConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	running := submitJob(t, ts, slowSpec(20))
	waitState(t, ts, running.ID, StateRunning)
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+running.ID+"/spanner", nil, nil); code != http.StatusConflict {
		t.Errorf("spanner of a running job returned %d, want 409", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/verify", verifyRequest{JobID: running.ID}, nil); code != http.StatusConflict {
		t.Errorf("verify of a running job returned %d, want 409", code)
	}
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil, nil)
}

func TestGeneratorOutputSizeCaps(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for name, spec := range map[string]JobSpec{
		// n passes a naive parameter cap but n(n-1)/2 edges would be ~5e11.
		"complete blowup":  {Generator: &GeneratorSpec{Name: "complete", N: 1 << 20}, Stretch: 3},
		"geometric blowup": {Generator: &GeneratorSpec{Name: "geometric", N: 1 << 20, Radius: 2}, Stretch: 3},
		// rows*cols overflows int64? no — but it must not bypass the cap.
		"grid blowup":   {Generator: &GeneratorSpec{Name: "grid", Rows: 3037000600, Cols: 3037000600}, Stretch: 3},
		"random blowup": {Generator: &GeneratorSpec{Name: "random", N: 1 << 21, M: 10}, Stretch: 3},
	} {
		t.Run(name, func(t *testing.T) {
			var eb errorBody
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", spec, &eb); code != http.StatusBadRequest {
				t.Fatalf("returned %d (%s), want 400", code, eb.Error)
			}
		})
	}
}

func TestVerifyTrialsCapped(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	sub := submitJob(t, ts, smallSpec(30))
	waitState(t, ts, sub.ID, StateDone)
	var eb errorBody
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/verify",
		verifyRequest{JobID: sub.ID, Trials: maxVerifyTrials + 1}, &eb); code != http.StatusBadRequest {
		t.Fatalf("oversized trials returned %d (%s), want 400", code, eb.Error)
	}
	var vr verifyResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/verify",
		verifyRequest{JobID: sub.ID, Trials: 10, Workers: 1 << 20}, &vr); code != http.StatusOK || !vr.OK {
		t.Fatalf("verify with huge worker request: code=%d ok=%v", code, vr.OK)
	}
}

// TestWitnessCacheMetricsExposed locks the PR-2 observability criterion:
// after a greedy build completes, the oracle's witness-cache counters must
// be visible both in the job's status stats and aggregated in /metrics.
func TestWitnessCacheMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Dense enough that some kept edges carry non-empty witnesses, which is
	// what generates witness-cache traffic.
	sub := submitJob(t, ts, JobSpec{
		Generator: &GeneratorSpec{Name: "random", N: 60, M: 600, Seed: 77},
		Stretch:   3,
		Faults:    1,
	})
	st := waitState(t, ts, sub.ID, StateDone)
	if st.Stats == nil {
		t.Fatal("done job has no stats")
	}
	if st.Stats.WitnessHits+st.Stats.WitnessMisses == 0 {
		t.Error("job stats report no witness-cache consultations on a branching workload")
	}

	m := getMetrics(t, ts)
	if m.WitnessCacheHits != st.Stats.WitnessHits || m.WitnessCacheMisses != st.Stats.WitnessMisses {
		t.Errorf("/metrics witness counters (%d,%d) disagree with the only job's stats (%d,%d)",
			m.WitnessCacheHits, m.WitnessCacheMisses, st.Stats.WitnessHits, st.Stats.WitnessMisses)
	}
	if total := m.WitnessCacheHits + m.WitnessCacheMisses; total > 0 {
		want := float64(m.WitnessCacheHits) / float64(total)
		if m.WitnessCacheHitRatio != want {
			t.Errorf("witness_cache_hit_ratio = %v, want %v", m.WitnessCacheHitRatio, want)
		}
	}
}
