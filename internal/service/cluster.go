// Peer-facing surface for the replica fleet (internal/cluster): a cheap
// health/queue summary the router polls for backpressure and drain-aware
// routing, and raw record export for pull-based anti-entropy. These
// endpoints carry no job semantics of their own — they expose state the
// server already tracks, in a shape a peer can act on without parsing the
// full /metrics document.
package service

import (
	"bytes"
	"encoding/json"
	"net/http"

	"github.com/ftspanner/ftspanner/internal/store"
)

// ClusterSummary answers GET /v1/cluster/summary. It is the router's view
// of one replica: whether it accepts work right now, how loaded it is, and
// how long a rejected client should wait.
type ClusterSummary struct {
	// Accepting is false while the replica is draining or its global queue
	// is full — the router hedges to the ring successor instead of
	// forwarding.
	Accepting bool `json:"accepting"`
	Draining  bool `json:"draining"`
	QueueLen  int  `json:"queue_len"`
	QueueCap  int  `json:"queue_cap"`
	// RetryAfterSec is the backoff hint a router should relay on 429/503
	// when this replica is the owner and cannot take the job.
	RetryAfterSec int `json:"retry_after_sec"`
	// Store is "disabled", "ok", or "degraded" (breaker open, memory-only).
	Store string `json:"store"`
	// Records is the durable store's entry count, so an anti-entropy sweep
	// can skip peers with nothing to offer.
	Records int    `json:"records"`
	Version string `json:"version,omitempty"`
}

func (s *Server) handleClusterSummary(w http.ResponseWriter, r *http.Request) {
	sum := ClusterSummary{
		Draining: s.draining.Load(),
		QueueCap: s.cfg.QueueDepth,
		Store:    "disabled",
		Version:  s.cfg.Version,
	}
	s.mu.Lock()
	sum.QueueLen = s.queues.totalLen()
	switch {
	case sum.Draining:
		sum.RetryAfterSec = s.drainRetryAfterLocked()
	default:
		sec := 1 + sum.QueueLen/s.cfg.Workers
		if sec > 60 {
			sec = 60
		}
		sum.RetryAfterSec = sec
	}
	s.mu.Unlock()
	sum.Accepting = !sum.Draining && sum.QueueLen < sum.QueueCap
	if s.store != nil {
		sum.Store = "ok"
		if s.store.Degraded() {
			sum.Store = "degraded"
		}
		sum.Records = len(s.store.List())
	}
	writeJSON(w, http.StatusOK, sum)
}

// clusterRecordsResponse answers GET /v1/cluster/records.
type clusterRecordsResponse struct {
	Records []store.RecordInfo `json:"records"`
}

// handleClusterRecords lists the durable store's record files so a peer's
// anti-entropy sweep can diff its own set against ours. A store-less
// replica answers an empty list, not an error: "nothing to pull" is a
// normal sweep outcome.
func (s *Server) handleClusterRecords(w http.ResponseWriter, r *http.Request) {
	resp := clusterRecordsResponse{Records: []store.RecordInfo{}}
	if s.store != nil {
		resp.Records = s.store.List()
	}
	writeJSON(w, http.StatusOK, resp)
}

// validRecordName reports whether a peer-supplied record name is a single
// safe path component. Store record names are hex digests plus a fixed
// extension, so the alphabet is tight; anything with separators, parent
// references, or a leading dot is an attempted traversal, not a record.
func validRecordName(name string) bool {
	if name == "" || len(name) > 128 {
		return false
	}
	if name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// handleClusterRecord streams one record file's raw encoded bytes. The
// encoding is CRC-self-verifying, so the peer imports blindly and lets its
// own codec reject torn or corrupt transfers.
func (s *Server) handleClusterRecord(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validRecordName(name) {
		writeError(w, http.StatusBadRequest, "invalid record name")
		return
	}
	if s.store == nil {
		writeError(w, http.StatusNotFound, "no durable store")
		return
	}
	data, ok := s.store.ExportRaw(name)
	if !ok {
		writeError(w, http.StatusNotFound, "no record %q", name)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// Store exposes the durable store (nil when persistence is disabled) for
// the cluster layer's anti-entropy importer.
func (s *Server) Store() *store.Store { return s.store }

// SpecDigest computes the graph digest a job-spec body routes on, without
// touching server state: the same decode → normalize → materialize path as
// submission, stopping at the digest. The router calls this to pick the
// owning replica; because materialization is deterministic, router and
// owner always agree on the digest.
func SpecDigest(body []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return "", err
	}
	if err := normalizeSpec(&spec); err != nil {
		return "", err
	}
	g, err := materialize(&spec)
	if err != nil {
		return "", err
	}
	return g.Digest(), nil
}
