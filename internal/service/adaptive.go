package service

import (
	"sort"
	"sync"
	"time"

	"github.com/ftspanner/ftspanner/internal/core"
)

// pipeTuner adapts the speculative pipeline depth used for jobs that leave
// Pipeline unset (0) while asking for Parallelism > 1. The engine's static
// default is a fixed compromise; the tuner instead walks the depth between 1
// and the configured cap using the feedback every completed build already
// carries: the speculation waste ratio (spec_waste / spec_queries) and how
// many re-speculation rounds each batch needed. Low waste means snapshots
// are staying fresh and a deeper pipeline would hide more commit stall; high
// waste or heavy re-speculation means depth is buying stale snapshots, so
// back off. Jobs that set Pipeline explicitly bypass the tuner entirely.
type pipeTuner struct {
	mu    sync.Mutex
	depth int
	max   int
}

// Waste-ratio thresholds: below the low-water mark the pipeline deepens,
// above the high-water mark it shallows, in between it holds. The dead band
// keeps the depth from oscillating on every build.
const (
	tunerWasteLow  = 0.05
	tunerWasteHigh = 0.20
	// tunerRoundsHigh is the re-speculation-rounds-per-batch level treated
	// like high waste: even a good hit ratio is not worth depth if every
	// batch needs multiple serial repair rounds.
	tunerRoundsHigh = 1.5
	// tunerStartDepth is where adaptation begins — the engine's own static
	// default, so an untuned server behaves exactly as before until
	// feedback arrives.
	tunerStartDepth = 2
)

func newPipeTuner(max int) *pipeTuner {
	if max < 1 {
		max = 1
	}
	if max > core.MaxPipeline {
		max = core.MaxPipeline
	}
	d := tunerStartDepth
	if d > max {
		d = max
	}
	return &pipeTuner{depth: d, max: max}
}

// depthNow returns the depth the next adaptive build should run with.
func (t *pipeTuner) depthNow() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.depth
}

// observe feeds one completed build's speculation counters back into the
// controller. Builds that never speculated (sequential, or too small to
// batch) carry no signal and leave the depth alone.
func (t *pipeTuner) observe(st core.Stats) {
	if st.SpecQueries == 0 || st.SpecBatches == 0 {
		return
	}
	waste := float64(st.SpecWaste) / float64(st.SpecQueries)
	rounds := float64(st.SpecRounds) / float64(st.SpecBatches)
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case waste > tunerWasteHigh || rounds > tunerRoundsHigh:
		if t.depth > 1 {
			t.depth--
		}
	case waste < tunerWasteLow:
		if t.depth < t.max {
			t.depth++
		}
	}
}

// shedWindow is how many recent per-class queue waits the shedder keeps; the
// p90 over this ring is the admission signal.
const shedWindow = 64

// shedMinSamples is the fewest observed waits before the ring's p90 is
// trusted; below it only the live head-of-line age (which needs no history)
// can shed.
const shedMinSamples = 8

// waitShedder turns observed queue waits into earlier backpressure: when a
// class's recent p90 wait (or its current head-of-line age) exceeds the
// configured budget, new submissions to that class are refused with 429
// before they join a queue they would only age in. A zero budget disables
// shedding. The per-class queue caps still apply; the shedder fires earlier,
// on latency rather than depth.
type waitShedder struct {
	budget time.Duration

	mu    sync.Mutex
	waits [numClasses][]time.Duration // ring, newest overwrites oldest
	next  [numClasses]int
}

func newWaitShedder(budget time.Duration) *waitShedder {
	return &waitShedder{budget: budget}
}

// observe records one dequeued job's queue wait for its class. Waits are
// recorded even with budget shedding disabled: the deadline-feasibility
// check at submission reads the same p90.
func (ws *waitShedder) observe(c class, wait time.Duration) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if len(ws.waits[c]) < shedWindow {
		ws.waits[c] = append(ws.waits[c], wait)
		return
	}
	ws.waits[c][ws.next[c]] = wait
	ws.next[c] = (ws.next[c] + 1) % shedWindow
}

// p90 returns the class's 90th-percentile recent wait and whether enough
// samples back it.
func (ws *waitShedder) p90(c class) (time.Duration, bool) {
	ws.mu.Lock()
	n := len(ws.waits[c])
	buf := append([]time.Duration(nil), ws.waits[c]...)
	ws.mu.Unlock()
	if n < shedMinSamples {
		return 0, false
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[(n*9)/10-1], true
}

// shouldShed reports whether a new submission to class c should be refused,
// given the class's current head-of-line age. Either signal suffices: a p90
// over budget says the recent past was too slow, a head older than the
// budget says the present already is.
func (ws *waitShedder) shouldShed(c class, headAge time.Duration) bool {
	if ws.budget <= 0 {
		return false
	}
	if headAge > ws.budget {
		return true
	}
	if p, ok := ws.p90(c); ok && p > ws.budget {
		return true
	}
	return false
}
