package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// Sessions turn the server's "one build = one job" model into "graph as a
// living resource": POST /v1/sessions creates a long-lived session over an
// initial (possibly empty) graph, POST /v1/sessions/{id}/deltas applies
// batches of edge inserts/deletes and vertex-fault events, and the session's
// spanner is maintained incrementally by core.Incremental — digest-identical
// after every batch to a from-scratch greedy rebuild of the current graph.
// Kept-edge deltas stream over GET /v1/sessions/{id}/events as NDJSON, the
// same machinery job progress uses.
//
// Sessions participate in the two-tier result cache: a session created from
// a graph whose greedy result is already cached (by digest) seeds its engine
// from the cached kept set instead of rebuilding, and after every applied
// batch the session publishes its current result under the evolving digest —
// so a batch job submitted for a graph some session just built answers from
// cache, and a future session over that graph seeds instantly.

// maxSessionDeltaOps bounds one delta request's operation count.
const maxSessionDeltaOps = 4096

// maxSessionEvents bounds the in-memory per-session event log; older events
// are trimmed and a streamer that fell that far behind resumes from the
// oldest retained event.
const maxSessionEvents = 256

const (
	defaultSessionRetention = 30 * time.Minute
	defaultMaxSessions      = 64
)

// SessionSpec is the POST /v1/sessions body. Graph and Vertices are
// mutually exclusive: an inline graph starts the session warm, a bare vertex
// count (or nothing) starts it empty for delta-driven growth.
type SessionSpec struct {
	// Graph is the initial graph inline, in the Graph.Encode text format.
	Graph string `json:"graph,omitempty"`
	// Vertices starts an empty session on this many isolated vertices.
	Vertices int `json:"vertices,omitempty"`
	// Stretch is the spanner parameter k >= 1.
	Stretch float64 `json:"stretch"`
	// Faults is the fault-tolerance parameter f >= 0.
	Faults int `json:"faults"`
	// Mode is "vertex" (default) or "edge".
	Mode string `json:"mode,omitempty"`
	// RebuildThreshold is the dirty fraction above which a delta batch is
	// resolved by a full greedy rebuild instead of the suffix repair
	// (core.IncrementalOptions.RebuildThreshold): 0 selects the engine
	// default, >= 1 never rebuilds, negative always rebuilds.
	RebuildThreshold float64 `json:"rebuild_threshold,omitempty"`
	// NoCache opts the session out of the two-tier result cache: no seeding
	// at create, no publishing after batches.
	NoCache bool `json:"no_cache,omitempty"`
	// DisableStateReuse turns off carrying the engine's prefix graph and
	// fault oracle across delta batches
	// (core.IncrementalOptions.DisableStateReuse): every suffix repair then
	// rebuilds both from scratch. Ablation/measurement knob — results are
	// digest-identical either way, batches are just slower.
	DisableStateReuse bool `json:"disable_state_reuse,omitempty"`
}

// Session delta operation names.
const (
	SessionOpInsert = "insert"
	SessionOpDelete = "delete"
	SessionOpFault  = "fault"
)

// sessionDelta is one mutation in a POST /v1/sessions/{id}/deltas request.
type sessionDelta struct {
	// Op is "insert" (edge U-V with Weight), "delete" (live edge U-V), or
	// "fault" (permanently remove every live edge incident to Vertex).
	Op     string  `json:"op"`
	U      int     `json:"u,omitempty"`
	V      int     `json:"v,omitempty"`
	Weight float64 `json:"weight,omitempty"`
	Vertex int     `json:"vertex,omitempty"`
}

// sessionDeltasRequest is the POST /v1/sessions/{id}/deltas body.
type sessionDeltasRequest struct {
	// AddVertices appends this many isolated vertices before the deltas run.
	AddVertices int            `json:"add_vertices,omitempty"`
	Deltas      []sessionDelta `json:"deltas"`
}

// SessionEdge is one edge in a session response, by endpoints and weight
// (session-internal edge IDs shift under compaction, so responses never
// expose them).
type SessionEdge struct {
	U      int     `json:"u"`
	V      int     `json:"v"`
	Weight float64 `json:"w"`
}

// SessionEvent is one NDJSON record of a session's events stream: the
// kept-set delta of one applied batch, plus lifecycle markers.
type SessionEvent struct {
	Seq int `json:"seq"`
	// Type is "created", "deltas", or "closed".
	Type string `json:"type"`
	// Batch numbers the applied delta batches from 1 ("deltas" only).
	Batch int `json:"batch,omitempty"`
	// LiveEdges and Kept are the totals after the event.
	LiveEdges int `json:"live_edges"`
	Kept      int `json:"kept"`
	// KeptAdded and KeptRemoved are the spanner membership changes, in scan
	// order.
	KeptAdded   []SessionEdge `json:"kept_added,omitempty"`
	KeptRemoved []SessionEdge `json:"kept_removed,omitempty"`
	// Digest is the materialized current graph's content digest.
	Digest string `json:"digest,omitempty"`
	// FullRebuild marks a batch resolved by a from-scratch rebuild rather
	// than the suffix repair.
	FullRebuild bool `json:"full_rebuild,omitempty"`
	// Reason annotates "closed" events ("deleted", "retention expired").
	Reason string `json:"reason,omitempty"`
}

// Session is one live graph session.
type Session struct {
	id        string
	spec      SessionSpec
	createdAt time.Time

	mu      sync.Mutex
	eng     *core.Incremental
	batches int
	digest  string // materialized digest after the last successful batch
	seeded  bool   // engine seeded from the result cache at create
	closed  bool
	// events is the bounded event log; baseSeq is events[0]'s sequence
	// number once trimming starts.
	events  []SessionEvent
	baseSeq int
	updated chan struct{} // closed and replaced on every append
	// lastUsed is the session GC clock, touched by every handler.
	lastUsed time.Time
}

// appendEventLocked stamps and appends e, trims the log to its bound, and
// wakes streamers. Caller holds s.mu.
func (s *Session) appendEventLocked(e SessionEvent) {
	e.Seq = s.baseSeq + len(s.events)
	s.events = append(s.events, e)
	if over := len(s.events) - maxSessionEvents; over > 0 {
		s.events = append(s.events[:0:0], s.events[over:]...)
		s.baseSeq += over
	}
	close(s.updated)
	s.updated = make(chan struct{})
}

// eventsSince returns a copy of the events with sequence >= from (clamped to
// the oldest retained event), a channel closed on the next append, and
// whether the session is closed.
func (s *Session) eventsSince(from int) (evs []SessionEvent, updated <-chan struct{}, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if from < s.baseSeq {
		from = s.baseSeq
	}
	if i := from - s.baseSeq; i < len(s.events) {
		evs = append([]SessionEvent(nil), s.events[i:]...)
	}
	return evs, s.updated, s.closed
}

// closeLocked marks the session closed and emits the terminal event. Caller
// holds s.mu.
func (s *Session) closeLocked(reason string) {
	if s.closed {
		return
	}
	s.closed = true
	s.appendEventLocked(SessionEvent{
		Type:      "closed",
		LiveEdges: s.eng.NumLiveEdges(),
		Kept:      s.eng.KeptCount(),
		Digest:    s.digest,
		Reason:    reason,
	})
}

// sessionEdges converts engine edges to the response shape.
func sessionEdges(in []graph.Edge) []SessionEdge {
	if len(in) == 0 {
		return nil
	}
	out := make([]SessionEdge, len(in))
	for i, e := range in {
		out[i] = SessionEdge{U: e.U, V: e.V, Weight: e.Weight}
	}
	return out
}

// validateSessionSpec fills defaults and rejects invalid specs, mirroring
// normalizeSpec for jobs.
func validateSessionSpec(spec *SessionSpec) error {
	if spec.Mode == "" {
		spec.Mode = fault.Vertices.String()
	}
	if _, err := parseMode(spec.Mode); err != nil {
		return err
	}
	if spec.Stretch < 1 || math.IsInf(spec.Stretch, 0) || math.IsNaN(spec.Stretch) {
		return fmt.Errorf("stretch must be a finite number >= 1, got %v", spec.Stretch)
	}
	if spec.Faults < 0 {
		return fmt.Errorf("faults must be >= 0, got %d", spec.Faults)
	}
	if math.IsNaN(spec.RebuildThreshold) || math.IsInf(spec.RebuildThreshold, 0) {
		return fmt.Errorf("rebuild_threshold must be finite, got %v", spec.RebuildThreshold)
	}
	if spec.Graph != "" && spec.Vertices != 0 {
		return fmt.Errorf("graph and vertices are mutually exclusive")
	}
	if spec.Vertices < 0 || spec.Vertices > maxGeneratedSize {
		return fmt.Errorf("vertices must be in [0,%d], got %d", maxGeneratedSize, spec.Vertices)
	}
	return nil
}

// incrementalOptions translates a validated spec into engine options.
func (s *Server) incrementalOptions(spec SessionSpec) core.IncrementalOptions {
	mode, _ := parseMode(spec.Mode) // validated already
	return core.IncrementalOptions{
		Stretch:           spec.Stretch,
		Faults:            spec.Faults,
		Mode:              mode,
		RebuildThreshold:  spec.RebuildThreshold,
		DisableStateReuse: spec.DisableStateReuse,
		Oracle: fault.Options{
			ObserveQuery: func(d time.Duration) { s.lat.oracleQuery.Record(d) },
		},
		Progress: func(scanned, kept int) error { return s.ctx.Err() },
	}
}

// sessionCacheKey is the two-tier cache key of the session's current
// materialized graph: exactly the key a greedy batch job over that graph
// would use, so sessions and jobs share results in both directions.
func sessionCacheKey(spec SessionSpec, digest string) CacheKey {
	return CacheKey{
		Digest:    digest,
		Stretch:   spec.Stretch,
		Faults:    spec.Faults,
		Mode:      spec.Mode,
		Algorithm: AlgoGreedy,
	}
}

// publishSession pushes the session's current result into both cache tiers
// under its evolving digest and returns that digest. Caller holds sess.mu.
// Skipped for NoCache sessions.
func (s *Server) publishSession(sess *Session) (string, error) {
	mat, kept, err := sess.eng.Current()
	if err != nil {
		return "", err
	}
	digest := mat.Digest()
	if sess.spec.NoCache {
		return digest, nil
	}
	spanner := graph.New(mat.NumVertices())
	for _, id := range kept {
		e := mat.Edge(id)
		spanner.MustAddEdge(e.U, e.V, e.Weight)
	}
	res := &buildResult{input: mat, spanner: spanner, kept: kept}
	res.stats.EdgesScanned = mat.NumEdges()
	key := sessionCacheKey(sess.spec, digest)
	s.cache.Put(key, res)
	s.storePut(key, res)
	s.met.sessionCachePuts.Add(1)
	return digest, nil
}

// createSession builds the engine (seeding from the result cache when the
// initial graph's greedy result is already known) and registers the session.
func (s *Server) createSession(spec SessionSpec) (*Session, error) {
	var initial *graph.Graph
	if spec.Graph != "" {
		g, err := graph.Decode(strings.NewReader(spec.Graph))
		if err != nil {
			return nil, &submitError{status: http.StatusBadRequest, msg: fmt.Sprintf("inline graph: %v", err)}
		}
		initial = g
	} else if spec.Vertices > 0 {
		initial = graph.New(spec.Vertices)
	}

	opts := s.incrementalOptions(spec)
	var eng *core.Incremental
	seeded := false
	if initial != nil && initial.NumEdges() > 0 && !spec.NoCache {
		key := sessionCacheKey(spec, initial.Digest())
		res, hit := s.cache.Get(key)
		if !hit && s.store != nil {
			if stored := s.storeGet(key, initial); stored != nil {
				s.cache.Put(key, stored)
				res, hit = stored, true
			}
		}
		if hit {
			if e, err := core.NewIncrementalSeeded(initial, res.kept, opts); err == nil {
				eng, seeded = e, true
				s.met.sessionsSeeded.Add(1)
			}
			// A seed failure falls through to the cold build: the cache is
			// an accelerator, never a correctness dependency.
		}
	}
	if eng == nil {
		var err error
		eng, err = core.NewIncremental(initial, opts)
		if err != nil {
			return nil, &submitError{status: http.StatusBadRequest, msg: err.Error()}
		}
	}

	sess := &Session{
		spec:      spec,
		createdAt: time.Now(),
		eng:       eng,
		seeded:    seeded,
		updated:   make(chan struct{}),
		lastUsed:  time.Now(),
	}

	s.sessMu.Lock()
	if max := s.maxSessions(); max > 0 && len(s.sessions) >= max {
		s.sessMu.Unlock()
		return nil, &submitError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("session limit reached (%d active, cap %d)", max, max),
			retryAfter: 1,
		}
	}
	s.nextSess++
	sess.id = fmt.Sprintf("s%d", s.nextSess)
	s.sessions[sess.id] = sess
	s.sessMu.Unlock()
	s.met.sessionsCreated.Add(1)

	sess.mu.Lock()
	digest, err := s.publishSession(sess)
	if err == nil {
		sess.digest = digest
	}
	sess.appendEventLocked(SessionEvent{
		Type:      "created",
		LiveEdges: sess.eng.NumLiveEdges(),
		Kept:      sess.eng.KeptCount(),
		Digest:    sess.digest,
	})
	sess.mu.Unlock()
	return sess, nil
}

// maxSessions resolves the configured session cap (<= -1 unlimited).
func (s *Server) maxSessions() int {
	if s.cfg.MaxSessions < 0 {
		return 0
	}
	if s.cfg.MaxSessions == 0 {
		return defaultMaxSessions
	}
	return s.cfg.MaxSessions
}

// session looks a session up by ID and touches its GC clock.
func (s *Server) session(id string) (*Session, bool) {
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	s.sessMu.Unlock()
	if ok {
		sess.mu.Lock()
		sess.lastUsed = time.Now()
		sess.mu.Unlock()
	}
	return sess, ok
}

// sweepSessions evicts sessions idle past SessionRetention, closing their
// event streams with a "retention expired" terminal event. Returns how many
// were evicted.
func (s *Server) sweepSessions(now time.Time) int {
	if s.cfg.SessionRetention <= 0 {
		return 0
	}
	cutoff := now.Add(-s.cfg.SessionRetention)
	var expired []*Session
	s.sessMu.Lock()
	for id, sess := range s.sessions {
		sess.mu.Lock()
		idle := sess.lastUsed.Before(cutoff)
		sess.mu.Unlock()
		if idle {
			delete(s.sessions, id)
			expired = append(expired, sess)
		}
	}
	s.sessMu.Unlock()
	for _, sess := range expired {
		sess.mu.Lock()
		sess.closeLocked("retention expired")
		sess.mu.Unlock()
	}
	if n := len(expired); n > 0 {
		s.met.sessionsEvicted.Add(int64(n))
		return n
	}
	return 0
}

// sessionResponse answers session create/status requests.
type sessionResponse struct {
	ID        string  `json:"id"`
	Stretch   float64 `json:"stretch"`
	Faults    int     `json:"faults"`
	Mode      string  `json:"mode"`
	Vertices  int     `json:"vertices"`
	LiveEdges int     `json:"live_edges"`
	Kept      int     `json:"kept"`
	// Digest is the materialized current graph's content digest — the
	// session's evolving cache identity.
	Digest string `json:"digest"`
	// Seeded is true when the engine skipped its initial build because the
	// initial graph's greedy result was already in the result cache.
	Seeded bool `json:"seeded,omitempty"`
	// Batches counts the delta batches applied so far.
	Batches int `json:"batches"`
	// NeedsRepair is true when the last batch aborted mid-repair; the next
	// deltas or spanner request completes the re-scan.
	NeedsRepair bool `json:"needs_repair,omitempty"`
}

func (s *Server) sessionResponseLocked(sess *Session) sessionResponse {
	return sessionResponse{
		ID:          sess.id,
		Stretch:     sess.spec.Stretch,
		Faults:      sess.spec.Faults,
		Mode:        sess.spec.Mode,
		Vertices:    sess.eng.NumVertices(),
		LiveEdges:   sess.eng.NumLiveEdges(),
		Kept:        sess.eng.KeptCount(),
		Digest:      sess.digest,
		Seeded:      sess.seeded,
		Batches:     sess.batches,
		NeedsRepair: sess.eng.NeedsRepair(),
	}
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		se := s.drainError()
		w.Header().Set("Retry-After", fmt.Sprint(se.retryAfter))
		writeError(w, se.status, "%s", se.msg)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec SessionSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad session spec: %v", err)
		return
	}
	if err := validateSessionSpec(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad session spec: %v", err)
		return
	}
	sess, err := s.createSession(spec)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			if se.retryAfter > 0 {
				w.Header().Set("Retry-After", fmt.Sprint(se.retryAfter))
			}
			writeError(w, se.status, "%s", se.msg)
		} else {
			writeError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	sess.mu.Lock()
	resp := s.sessionResponseLocked(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	resp := s.sessionResponseLocked(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

// sessionDeltasResponse answers POST /v1/sessions/{id}/deltas.
type sessionDeltasResponse struct {
	ID          string        `json:"id"`
	Batch       int           `json:"batch"`
	LiveEdges   int           `json:"live_edges"`
	Kept        int           `json:"kept"`
	KeptAdded   []SessionEdge `json:"kept_added,omitempty"`
	KeptRemoved []SessionEdge `json:"kept_removed,omitempty"`
	Digest      string        `json:"digest"`
	// Repair instrumentation for the batch.
	SuffixLen     int     `json:"suffix_len"`
	OracleQueries int64   `json:"oracle_queries"`
	ShortcutKeeps int     `json:"shortcut_keeps"`
	ShortcutDrops int     `json:"shortcut_drops"`
	FullRebuild   bool    `json:"full_rebuild,omitempty"`
	OracleReused  bool    `json:"oracle_reused,omitempty"`
	OracleBuilt   bool    `json:"oracle_built,omitempty"`
	DirtyFraction float64 `json:"dirty_fraction"`
	DurationMS    float64 `json:"duration_ms"`
}

func (s *Server) handleSessionDeltas(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		se := s.drainError()
		w.Header().Set("Retry-After", fmt.Sprint(se.retryAfter))
		writeError(w, se.status, "%s", se.msg)
		return
	}
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req sessionDeltasRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad deltas request: %v", err)
		return
	}
	if len(req.Deltas) > maxSessionDeltaOps {
		writeError(w, http.StatusBadRequest, "at most %d deltas per batch, got %d", maxSessionDeltaOps, len(req.Deltas))
		return
	}
	batch := core.Batch{AddVertices: req.AddVertices}
	for i, d := range req.Deltas {
		switch d.Op {
		case SessionOpInsert:
			batch.Deltas = append(batch.Deltas, core.Delta{Op: core.DeltaInsert, U: d.U, V: d.V, Weight: d.Weight})
		case SessionOpDelete:
			batch.Deltas = append(batch.Deltas, core.Delta{Op: core.DeltaDelete, U: d.U, V: d.V})
		case SessionOpFault:
			batch.Deltas = append(batch.Deltas, core.Delta{Op: core.DeltaFaultVertex, Vertex: d.Vertex})
		default:
			writeError(w, http.StatusBadRequest, "delta %d: unknown op %q (want %s, %s, or %s)",
				i, d.Op, SessionOpInsert, SessionOpDelete, SessionOpFault)
			return
		}
	}

	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		writeError(w, http.StatusConflict, "session %s is closed", sess.id)
		return
	}
	res, err := sess.eng.ApplyBatch(batch)
	if err != nil {
		needsRepair := sess.eng.NeedsRepair()
		sess.mu.Unlock()
		var de *core.DeltaError
		if errors.As(err, &de) {
			writeError(w, http.StatusBadRequest, "%v", de)
			return
		}
		if needsRepair {
			writeError(w, http.StatusInternalServerError,
				"batch applied but repair aborted (%v); retry or read the spanner to finish the repair", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sess.batches++
	batchNo := sess.batches
	digest, perr := s.publishSession(sess)
	if perr == nil {
		sess.digest = digest
	}
	ev := SessionEvent{
		Type:        "deltas",
		Batch:       batchNo,
		LiveEdges:   res.LiveEdges,
		Kept:        res.Kept,
		KeptAdded:   sessionEdges(res.KeptAdded),
		KeptRemoved: sessionEdges(res.KeptRemoved),
		Digest:      sess.digest,
		FullRebuild: res.Stats.FullRebuild,
	}
	sess.appendEventLocked(ev)
	resp := sessionDeltasResponse{
		ID:            sess.id,
		Batch:         batchNo,
		LiveEdges:     res.LiveEdges,
		Kept:          res.Kept,
		KeptAdded:     ev.KeptAdded,
		KeptRemoved:   ev.KeptRemoved,
		Digest:        sess.digest,
		SuffixLen:     res.Stats.SuffixLen,
		OracleQueries: res.Stats.OracleQueries,
		ShortcutKeeps: res.Stats.ShortcutKeeps,
		ShortcutDrops: res.Stats.ShortcutDrops,
		FullRebuild:   res.Stats.FullRebuild,
		OracleReused:  res.Stats.OracleReused,
		OracleBuilt:   res.Stats.OracleBuilt,
		DirtyFraction: res.Stats.DirtyFraction,
		DurationMS:    float64(res.Stats.Duration.Microseconds()) / 1000,
	}
	sess.mu.Unlock()

	s.met.sessionDeltaBatches.Add(1)
	s.met.sessionDeltaOps.Add(int64(len(req.Deltas)))
	s.met.sessionOracleQueries.Add(res.Stats.OracleQueries)
	s.met.sessionShortcuts.Add(int64(res.Stats.ShortcutKeeps + res.Stats.ShortcutDrops))
	s.lat.sessionDelta.Record(res.Stats.Duration)
	if res.Stats.FullRebuild {
		s.met.sessionFullRebuilds.Add(1)
	}
	if res.Stats.OracleReused {
		s.met.sessionOracleReuses.Add(1)
	}
	if res.Stats.OracleBuilt {
		s.met.sessionOracleRebuilds.Add(1)
	}
	writeJSON(w, http.StatusOK, resp)
}

// sessionSpannerResponse answers GET /v1/sessions/{id}/spanner.
type sessionSpannerResponse struct {
	ID     string `json:"id"`
	Digest string `json:"digest"`
	// Spanner is the current spanner in the Graph.Encode text format; Kept
	// lists the same edges by endpoints and weight in scan order.
	Spanner string        `json:"spanner"`
	Kept    []SessionEdge `json:"kept"`
}

func (s *Server) handleSessionSpanner(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.eng.NeedsRepair() {
		// The documented recovery path: finish the aborted re-scan before
		// answering reads.
		if err := sess.eng.Repair(); err != nil {
			writeError(w, http.StatusInternalServerError, "repair: %v", err)
			return
		}
		if digest, err := s.publishSession(sess); err == nil {
			sess.digest = digest
		}
	}
	mat, kept, err := sess.eng.Current()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	spanner := graph.New(mat.NumVertices())
	edges := make([]SessionEdge, 0, len(kept))
	for _, id := range kept {
		e := mat.Edge(id)
		spanner.MustAddEdge(e.U, e.V, e.Weight)
		edges = append(edges, SessionEdge{U: e.U, V: e.V, Weight: e.Weight})
	}
	var sb strings.Builder
	if err := spanner.Encode(&sb); err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, sessionSpannerResponse{
		ID: sess.id, Digest: mat.Digest(), Spanner: sb.String(), Kept: edges,
	})
}

func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		evs, updated, closed := sess.eventsSince(from)
		for _, e := range evs {
			if err := enc.Encode(e); err != nil {
				return
			}
			from = e.Seq + 1
		}
		if fl != nil {
			fl.Flush()
		}
		if closed {
			return
		}
		select {
		case <-updated:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			// Deliver whatever raced in with the shutdown before closing the
			// stream, mirroring the job events endpoint.
			evs, _, _ := sess.eventsSince(from)
			for _, e := range evs {
				if err := enc.Encode(e); err != nil {
					return
				}
			}
			if fl != nil {
				fl.Flush()
			}
			return
		}
	}
}

// sessionDeleteResponse answers DELETE /v1/sessions/{id}.
type sessionDeleteResponse struct {
	ID     string `json:"id"`
	Closed bool   `json:"closed"`
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sessMu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.sessMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	sess.mu.Lock()
	sess.closeLocked("deleted")
	sess.mu.Unlock()
	s.met.sessionsClosed.Add(1)
	writeJSON(w, http.StatusOK, sessionDeleteResponse{ID: id, Closed: true})
}
