package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/store"
)

// TestClusterSummaryShape covers the peer-facing summary across the
// accepting, draining, and store-less states.
func TestClusterSummaryShape(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, StoreDir: t.TempDir()})
	var sum ClusterSummary
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/summary", nil, &sum); code != http.StatusOK {
		t.Fatalf("summary: http %d", code)
	}
	if !sum.Accepting || sum.Draining || sum.QueueCap != 4 || sum.Store != "ok" {
		t.Fatalf("idle summary %+v", sum)
	}
	if sum.RetryAfterSec < 1 {
		t.Errorf("retry-after hint %d, want >= 1", sum.RetryAfterSec)
	}

	srv.StartDrain()
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/summary", nil, &sum); code != http.StatusOK {
		t.Fatalf("summary while draining: http %d", code)
	}
	if sum.Accepting || !sum.Draining {
		t.Fatalf("draining summary %+v", sum)
	}

	_, storeless := newTestServer(t, Config{Workers: 1})
	if code := doJSON(t, http.MethodGet, storeless.URL+"/v1/cluster/summary", nil, &sum); code != http.StatusOK {
		t.Fatalf("store-less summary: http %d", code)
	}
	if sum.Store != "disabled" || sum.Records != 0 {
		t.Fatalf("store-less summary %+v", sum)
	}
}

// TestClusterRecordsExport covers the anti-entropy listing and raw export:
// a completed job's record is listed, its bytes round-trip through the
// store codec, and unknown names answer 404.
func TestClusterRecordsExport(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})
	sub := submitJob(t, ts, smallSpec(3))
	waitState(t, ts, sub.ID, StateDone)

	// The job turns "done" before the durable write lands, so poll briefly
	// for the record to appear.
	var listing struct {
		Records []store.RecordInfo `json:"records"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/cluster/records", nil, &listing); code != http.StatusOK {
			t.Fatalf("records: http %d", code)
		}
		if len(listing.Records) == 1 && listing.Records[0].Size > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("records listing %+v, want one sized entry", listing.Records)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/cluster/records/" + listing.Records[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || int64(len(data)) != listing.Records[0].Size {
		t.Fatalf("export: http %d, %d bytes, want %d", resp.StatusCode, len(data), listing.Records[0].Size)
	}

	resp, err = http.Get(ts.URL + "/v1/cluster/records/no-such-record")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing record: http %d, want 404", resp.StatusCode)
	}
}

// TestSpecDigestMatchesSubmission pins the router's routing contract: the
// digest SpecDigest computes for a body equals the graph digest the owning
// server reports for the same submission.
func TestSpecDigestMatchesSubmission(t *testing.T) {
	body := []byte(`{"algorithm":"greedy","stretch":3,"faults":1,"generator":{"name":"random","n":30,"m":60,"seed":5}}`)
	digest, err := SpecDigest(body)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st := waitState(t, ts, sub.ID, StateDone)
	if st.GraphDigest != digest {
		t.Fatalf("SpecDigest %s != submitted job's graph digest %s", digest, st.GraphDigest)
	}

	if _, err := SpecDigest([]byte(`{"stretch":0}`)); err == nil {
		t.Error("SpecDigest accepted an invalid spec")
	}
}
