package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/obs"
)

// State is the lifecycle state of a job.
type State string

// Job lifecycle states. A job moves queued -> running -> one of the four
// terminal states; cache hits are born done.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
	// StateDeadline marks a job whose JobSpec.DeadlineMs expired before the
	// build finished — distinct from cancelled (client's choice) and failed
	// (build error) so deadline misses are observable as their own outcome.
	StateDeadline State = "deadline_exceeded"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled || s == StateDeadline
}

// Algorithm names accepted in JobSpec.Algorithm.
const (
	AlgoGreedy       = "greedy"       // exact fault-tolerant greedy (the paper's Algorithm 1)
	AlgoConservative = "conservative" // polynomial-time conservative greedy
	AlgoUnionEFT     = "union-eft"    // union-of-spanners EFT baseline
	AlgoSamplingVFT  = "sampling-vft" // Dinitz–Krauthgamer-style sampling VFT baseline
)

// JobSpec is the client-visible description of one spanner-build job, as
// submitted to POST /v1/jobs. Exactly one of Graph and Generator must be
// set.
type JobSpec struct {
	// Graph is the input graph inline, in the Graph.Encode text format.
	Graph string `json:"graph,omitempty"`
	// Generator names a server-side graph generator instead.
	Generator *GeneratorSpec `json:"generator,omitempty"`
	// Stretch is the spanner parameter k >= 1.
	Stretch float64 `json:"stretch"`
	// Faults is the fault-tolerance parameter f >= 0.
	Faults int `json:"faults"`
	// Mode is "vertex" (default) or "edge".
	Mode string `json:"mode,omitempty"`
	// Algorithm selects the construction; default "greedy".
	Algorithm string `json:"algorithm,omitempty"`
	// Seed drives randomized algorithms (sampling-vft). Deterministic
	// algorithms ignore it, and it does not affect their cache key.
	Seed int64 `json:"seed,omitempty"`
	// Parallelism sets the greedy's speculative edge-batch worker count
	// (core.Options.Parallelism); 0 and 1 select the sequential scan. The
	// kept-edge set is identical at every setting, so it does not affect the
	// cache key: a result built at any parallelism serves them all.
	Parallelism int `json:"parallelism,omitempty"`
	// Pipeline bounds how many speculative batches the greedy keeps in
	// flight at once (core.Options.Pipeline): while batch i commits, batches
	// i+1..i+Pipeline-1 already speculate against their own snapshots.
	// Requires Parallelism > 1; 0 selects the engine default, 1 disables the
	// overlap. Like Parallelism it is determinism-neutral — the kept-edge
	// set is identical at every depth — so it is excluded from the cache
	// key.
	Pipeline int `json:"pipeline,omitempty"`
	// Priority is the scheduling class: "high", "normal" (the default), or
	// "low". It orders a saturated pool's dequeues and selects the per-class
	// queue cap; the result is identical at every priority, so it does not
	// affect the cache key (and a duplicate submission coalesces onto the
	// in-flight job whatever either priority says).
	Priority Priority `json:"priority,omitempty"`
	// DeadlineMs is the job's end-to-end deadline in milliseconds from
	// submission, covering queue wait plus build. Zero means no deadline.
	// The deadline propagates as a context deadline through the build, a
	// job that exceeds it lands in the "deadline_exceeded" terminal state,
	// and submissions whose deadline is already infeasible given the
	// class's recent p90 queue wait are refused up front with 429. Like
	// Priority it never affects the cache key.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
}

// GeneratorSpec names a server-side graph generator and its parameters.
type GeneratorSpec struct {
	// Name is one of "complete", "grid", "random", "geometric".
	Name string `json:"name"`
	// N is the vertex count (complete, random, geometric).
	N int `json:"n,omitempty"`
	// M is the edge count (random).
	M int `json:"m,omitempty"`
	// Rows and Cols size the grid generator.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Radius is the connection radius (geometric).
	Radius float64 `json:"radius,omitempty"`
	// Seed drives the randomized generators (random, geometric).
	Seed int64 `json:"seed,omitempty"`
}

// Event is one NDJSON record of a job's GET /v1/jobs/{id}/events stream.
type Event struct {
	Seq     int    `json:"seq"`
	State   State  `json:"state"`
	Scanned int    `json:"scanned"`
	Kept    int    `json:"kept"`
	Error   string `json:"error,omitempty"`
}

// buildResult is the normalized output of any algorithm: enough to encode
// the spanner, report instrumentation, and re-verify the result later.
type buildResult struct {
	input   *graph.Graph
	spanner *graph.Graph
	kept    []int
	stats   core.Stats
}

// Job is one submitted build with its full lifecycle: queue position,
// cancellation handle, event log for streaming, and final result.
type Job struct {
	id    string
	key   CacheKey
	spec  JobSpec
	graph *graph.Graph
	// class is the scheduling class derived from spec.Priority; enqueuedAt
	// feeds the per-class queue-age gauge.
	class      class
	enqueuedAt time.Time
	// deadline is the absolute deadline derived from spec.DeadlineMs at
	// submission (zero = none). Immutable after newJob.
	deadline time.Time

	// scanned mirrors the build's latest progress-hook edge count without
	// taking j.mu — the drain Retry-After estimate reads it from the
	// submit path while the build is writing events.
	scanned atomic.Int64

	// progressEvery throttles running-state events to one per this many
	// scanned edges.
	progressEvery int

	mu      sync.Mutex
	state   State
	events  []Event
	updated chan struct{} // closed and replaced on every event append
	cancel  context.CancelFunc
	result  *buildResult
	err     error
	cached  bool
	// fromStore marks a cache hit served from the durable disk tier rather
	// than the in-memory LRU.
	fromStore bool
	doneAt    time.Time     // when the job entered a terminal state; GC clock
	done      chan struct{} // closed on entering a terminal state

	// trace is the job's lifecycle trace (submit → queue-wait → build →
	// persist). Nil after the janitor drops it (trace retention can be
	// shorter than job retention) — handlers must tolerate that. The Trace
	// has its own lock; the span handles below are written under j.mu.
	trace     *obs.Trace
	queueSpan obs.Span
	buildSpan obs.Span
	// Phase durations for the status endpoint, recorded as each lifecycle
	// stage completes.
	queueWait  time.Duration
	buildDur   time.Duration
	persistDur time.Duration
	startedAt  time.Time // when a worker began the build
}

// startTrace opens the job's lifecycle trace. For queued jobs the queue-wait
// span opens immediately; born-done cache hits get a closed root annotated
// with the hit instead (there is no queue or build to trace). Called before
// the job is published, so no lock is needed.
func (j *Job) startTrace(cached, fromStore bool) {
	j.trace = obs.NewTrace(j.id, "job")
	root := j.trace.Root()
	if !cached {
		j.queueSpan = root.StartSpan("queue-wait")
		return
	}
	root.SetAttr("cached", 1)
	if fromStore {
		root.SetAttr("from_store", 1)
	}
	root.End()
}

// traceSnapshot returns the job's trace, or nil when it was never started or
// already dropped by the janitor.
func (j *Job) traceSnapshot() *obs.TraceSnapshot {
	j.mu.Lock()
	tr := j.trace
	j.mu.Unlock()
	if tr == nil {
		return nil
	}
	snap := tr.Snapshot()
	return &snap
}

// dropTrace releases the job's trace (retention sweep).
func (j *Job) dropTrace() {
	j.mu.Lock()
	j.trace = nil
	j.queueSpan, j.buildSpan = obs.Span{}, obs.Span{}
	j.mu.Unlock()
}

func newJob(id string, key CacheKey, spec JobSpec, g *graph.Graph) *Job {
	every := 1
	if g != nil {
		if every = g.NumEdges() / 16; every < 1 {
			every = 1
		}
	}
	j := &Job{
		id:            id,
		key:           key,
		spec:          spec,
		graph:         g,
		class:         classOf(spec.Priority),
		enqueuedAt:    time.Now(),
		progressEvery: every,
		state:         StateQueued,
		updated:       make(chan struct{}),
		done:          make(chan struct{}),
	}
	if spec.DeadlineMs > 0 {
		j.deadline = j.enqueuedAt.Add(time.Duration(spec.DeadlineMs) * time.Millisecond)
	}
	j.appendEventLocked(Event{State: StateQueued})
	return j
}

// appendEventLocked stamps and appends e and wakes event streamers. The
// caller holds j.mu (or, in newJob, exclusive ownership).
func (j *Job) appendEventLocked(e Event) {
	e.Seq = len(j.events)
	j.events = append(j.events, e)
	close(j.updated)
	j.updated = make(chan struct{})
}

// setStateLocked transitions the job and records the transition as an
// event. The caller holds j.mu.
func (j *Job) setStateLocked(s State, e Event) {
	j.state = s
	e.State = s
	j.appendEventLocked(e)
	if s.Terminal() {
		j.doneAt = time.Now()
		close(j.done)
	}
}

// progress records a throttled running-state event; it is the core.Options
// Progress hook's reporting half.
func (j *Job) progress(scanned, kept int) {
	j.scanned.Store(int64(scanned))
	if scanned%j.progressEvery != 0 {
		return
	}
	j.mu.Lock()
	if j.state == StateRunning {
		j.appendEventLocked(Event{State: StateRunning, Scanned: scanned, Kept: kept})
	}
	j.mu.Unlock()
}

// eventsSince returns a copy of the events from index from on, a channel
// that is closed when more arrive, and whether the job is terminal.
func (j *Job) eventsSince(from int) (evs []Event, updated <-chan struct{}, terminal bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		evs = append([]Event(nil), j.events[from:]...)
	}
	return evs, j.updated, j.state.Terminal()
}
