package service

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/ftspanner/ftspanner/internal/baseline"
	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/obs"
)

// maxGeneratedSize caps generator parameters so a single request cannot ask
// the server to materialize an absurdly large graph.
const maxGeneratedSize = 1 << 20

// maxParallelism caps the per-job speculative worker count: each worker
// owns a full oracle (solver, memo table, bitsets), so an unbounded client
// value would be a memory amplification lever.
const maxParallelism = 64

// maxPipeline caps the per-job pipeline depth at the core engine's own
// bound, so every accepted spec validates there too (and an over-limit
// value is a 400 at submission, never a failed job at build time).
const maxPipeline = core.MaxPipeline

// newRand is the service's deterministic RNG constructor: same seed, same
// randomized build or verification outcome.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// normalizeSpec fills defaults and rejects invalid parameter combinations.
// It mutates spec in place.
func normalizeSpec(spec *JobSpec) error {
	if spec.Mode == "" {
		spec.Mode = fault.Vertices.String()
	}
	if spec.Algorithm == "" {
		spec.Algorithm = AlgoGreedy
	}
	if _, err := parseMode(spec.Mode); err != nil {
		return err
	}
	if err := normalizePriority(spec); err != nil {
		return err
	}
	if spec.Stretch < 1 || math.IsInf(spec.Stretch, 0) || math.IsNaN(spec.Stretch) {
		return fmt.Errorf("stretch must be a finite number >= 1, got %v", spec.Stretch)
	}
	if spec.Faults < 0 {
		return fmt.Errorf("faults must be >= 0, got %d", spec.Faults)
	}
	if spec.Parallelism < 0 || spec.Parallelism > maxParallelism {
		return fmt.Errorf("parallelism must be in [0,%d], got %d", maxParallelism, spec.Parallelism)
	}
	if spec.Parallelism > 1 && spec.Algorithm != AlgoGreedy {
		return fmt.Errorf("parallelism applies to algorithm %q only, got %q", AlgoGreedy, spec.Algorithm)
	}
	if spec.Pipeline < 0 || spec.Pipeline > maxPipeline {
		return fmt.Errorf("pipeline must be in [0,%d], got %d", maxPipeline, spec.Pipeline)
	}
	if spec.Pipeline > 0 && spec.Parallelism <= 1 {
		return fmt.Errorf("pipeline requires parallelism > 1, got parallelism %d", spec.Parallelism)
	}
	if spec.DeadlineMs < 0 {
		return fmt.Errorf("deadline_ms must be >= 0, got %d", spec.DeadlineMs)
	}
	switch spec.Algorithm {
	case AlgoGreedy, AlgoConservative:
	case AlgoUnionEFT:
		if spec.Mode != fault.Edges.String() {
			return fmt.Errorf("algorithm %q is edge-fault only; set mode to %q", AlgoUnionEFT, fault.Edges)
		}
	case AlgoSamplingVFT:
		if spec.Mode != fault.Vertices.String() {
			return fmt.Errorf("algorithm %q is vertex-fault only; set mode to %q", AlgoSamplingVFT, fault.Vertices)
		}
		if k := samplingK(spec.Stretch); k < 1 {
			return fmt.Errorf("algorithm %q needs stretch = 2k-1 for integer k >= 1, got %v", AlgoSamplingVFT, spec.Stretch)
		}
	default:
		return fmt.Errorf("unknown algorithm %q (want %s)", spec.Algorithm,
			strings.Join([]string{AlgoGreedy, AlgoConservative, AlgoUnionEFT, AlgoSamplingVFT}, ", "))
	}
	if (spec.Graph == "") == (spec.Generator == nil) {
		return fmt.Errorf("exactly one of graph and generator must be set")
	}
	return nil
}

// samplingK inverts stretch = 2k-1; it returns 0 when stretch is not an odd
// integer >= 1.
func samplingK(stretch float64) int {
	k := (stretch + 1) / 2
	if k != math.Trunc(k) {
		return 0
	}
	return int(k)
}

func parseMode(s string) (fault.Mode, error) {
	switch s {
	case fault.Vertices.String():
		return fault.Vertices, nil
	case fault.Edges.String():
		return fault.Edges, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want %q or %q)", s, fault.Vertices, fault.Edges)
	}
}

// materialize produces the input graph of a normalized spec: either by
// decoding the inline text or by running the named generator.
func materialize(spec *JobSpec) (*graph.Graph, error) {
	if spec.Graph != "" {
		g, err := graph.Decode(strings.NewReader(spec.Graph))
		if err != nil {
			return nil, fmt.Errorf("inline graph: %w", err)
		}
		return g, nil
	}
	gs := spec.Generator
	if gs.N < 0 || gs.M < 0 || gs.Rows < 0 || gs.Cols < 0 {
		return nil, fmt.Errorf("generator parameters must be non-negative")
	}
	// Individual parameters are bounded first so the int64 products below
	// cannot overflow (maxGeneratedSize² fits comfortably in 63 bits); then
	// the OUTPUT size is bounded, because complete and geometric graphs
	// have up to n(n-1)/2 edges — a modest n already means a huge graph.
	if gs.N > maxGeneratedSize || gs.M > maxGeneratedSize || gs.Rows > maxGeneratedSize || gs.Cols > maxGeneratedSize {
		return nil, fmt.Errorf("generator parameters must be at most %d", int64(maxGeneratedSize))
	}
	switch gs.Name {
	case "complete":
		if pairs := int64(gs.N) * int64(gs.N-1) / 2; pairs > maxGeneratedSize {
			return nil, fmt.Errorf("generator complete: n=%d means %d edges, over the cap of %d", gs.N, pairs, int64(maxGeneratedSize))
		}
		return gen.Complete(gs.N), nil
	case "grid":
		if cells := int64(gs.Rows) * int64(gs.Cols); cells > maxGeneratedSize {
			return nil, fmt.Errorf("generator grid: %dx%d means %d vertices, over the cap of %d", gs.Rows, gs.Cols, cells, int64(maxGeneratedSize))
		}
		return gen.Grid(gs.Rows, gs.Cols), nil
	case "random":
		g, err := gen.ConnectedGNM(gs.N, gs.M, newRand(gs.Seed))
		if err != nil {
			return nil, fmt.Errorf("generator random: %w", err)
		}
		return g, nil
	case "geometric":
		if gs.Radius <= 0 || math.IsInf(gs.Radius, 0) || math.IsNaN(gs.Radius) {
			return nil, fmt.Errorf("generator geometric: radius must be positive and finite, got %v", gs.Radius)
		}
		if pairs := int64(gs.N) * int64(gs.N-1) / 2; pairs > maxGeneratedSize {
			return nil, fmt.Errorf("generator geometric: n=%d means up to %d edges, over the cap of %d", gs.N, pairs, int64(maxGeneratedSize))
		}
		g, _ := gen.RandomGeometric(gs.N, gs.Radius, newRand(gs.Seed))
		return g, nil
	default:
		return nil, fmt.Errorf("unknown generator %q (want complete, grid, random, geometric)", gs.Name)
	}
}

// cacheKeyFor derives the result cache key of a normalized spec and its
// materialized graph. Only sampling-vft output depends on the seed, so the
// seed is zeroed for every other algorithm. Parallelism and Pipeline never
// enter the key: the pipelined parallel greedy's kept-edge set is provably
// identical to the sequential one's at every (worker count, depth), so one
// cached result serves every setting (and in-flight dedup coalesces a P=4
// submission onto a running P=0 build).
func cacheKeyFor(spec JobSpec, g *graph.Graph) CacheKey {
	key := CacheKey{
		Digest:    g.Digest(),
		Stretch:   spec.Stretch,
		Faults:    spec.Faults,
		Mode:      spec.Mode,
		Algorithm: spec.Algorithm,
	}
	if spec.Algorithm == AlgoSamplingVFT {
		key.Seed = spec.Seed
	}
	return key
}

// build runs the job's algorithm to completion, reporting progress and
// honoring ctx through the core Progress hook where the algorithm supports
// it. It is called on a worker goroutine. Observability rides along: oracle
// query latencies feed the sampled histogram, build-phase boundaries become
// events on the job's build span, and greedy jobs that asked for
// parallelism without pinning a pipeline depth get the tuner's current one.
func (s *Server) build(ctx context.Context, job *Job) (*buildResult, error) {
	spec := job.spec
	mode, err := parseMode(spec.Mode)
	if err != nil {
		return nil, err
	}
	hook := func(scanned, kept int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		job.progress(scanned, kept)
		return nil
	}
	switch spec.Algorithm {
	case AlgoGreedy, AlgoConservative:
		job.mu.Lock()
		span := job.buildSpan
		job.mu.Unlock()
		pipeline := spec.Pipeline
		if spec.Pipeline == 0 && spec.Parallelism > 1 && spec.Algorithm == AlgoGreedy {
			// Adaptive mode: an unset depth means "server's choice", and the
			// server's choice is whatever the waste-feedback tuner currently
			// recommends. Determinism is unaffected — the kept-edge set is
			// identical at every depth.
			pipeline = s.tuner.depthNow()
			span.SetAttr("adaptive_pipeline", int64(pipeline))
		}
		opts := core.Options{
			Stretch:     spec.Stretch,
			Faults:      spec.Faults,
			Mode:        mode,
			Progress:    hook,
			Parallelism: spec.Parallelism,
			Pipeline:    pipeline,
			Chaos:       s.cfg.Chaos,
			Oracle: fault.Options{
				ObserveQuery: func(d time.Duration) { s.lat.oracleQuery.Record(d) },
			},
			Phase: func(info core.PhaseInfo) {
				switch info.Phase {
				case core.PhaseBatchSpeculate:
					span.Event(info.Phase,
						obs.Attr{Key: "batch", Value: int64(info.Batch)},
						obs.Attr{Key: "edges", Value: int64(info.Edges)})
				case core.PhaseBatchCommit:
					span.Event(info.Phase,
						obs.Attr{Key: "batch", Value: int64(info.Batch)},
						obs.Attr{Key: "kept", Value: int64(info.Kept)},
						obs.Attr{Key: "witness_hits", Value: info.WitnessHits})
				case core.PhaseRespecRound:
					span.Event(info.Phase,
						obs.Attr{Key: "edges", Value: int64(info.Edges)},
						obs.Attr{Key: "pending", Value: int64(info.Pending)})
				}
			},
		}
		var res *core.Result
		if spec.Algorithm == AlgoGreedy {
			res, err = core.Greedy(job.graph, opts)
		} else {
			res, err = core.GreedyConservative(job.graph, opts)
		}
		if err != nil {
			return nil, err
		}
		return &buildResult{input: res.Input, spanner: res.Spanner, kept: res.Kept, stats: res.Stats}, nil
	case AlgoUnionEFT:
		res, err := baseline.UnionEFT(job.graph, spec.Stretch, spec.Faults)
		if err != nil {
			return nil, err
		}
		return &buildResult{input: job.graph, spanner: res.Spanner, kept: res.Kept}, nil
	case AlgoSamplingVFT:
		res, err := baseline.SamplingVFT(job.graph, samplingK(spec.Stretch), spec.Faults,
			baseline.SamplingVFTOptions{}, newRand(spec.Seed))
		if err != nil {
			return nil, err
		}
		return &buildResult{input: job.graph, spanner: res.Spanner, kept: res.Kept}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", spec.Algorithm)
	}
}
