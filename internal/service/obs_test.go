package service

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/obs"
)

func getTrace(t *testing.T, ts *httptest.Server, id string) (obs.TraceSnapshot, int) {
	t.Helper()
	var snap obs.TraceSnapshot
	code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/trace", nil, &snap)
	return snap, code
}

// childNamed returns the first direct child span with the given name.
func childNamed(root obs.SpanSnapshot, name string) *obs.SpanSnapshot {
	for i := range root.Children {
		if root.Children[i].Name == name {
			return &root.Children[i]
		}
	}
	return nil
}

// TestTraceEndpointSpanTree drives a pipelined parallel build with the
// durable store enabled and checks the whole trace contract: a closed root
// named "job" whose children are queue-wait, build, and persist in
// chronological order, build-phase events on the build span, and phase
// durations that add up to (at most) the root.
func TestTraceEndpointSpanTree(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StoreDir: t.TempDir()})

	sub := submitJob(t, ts, parallelSpec(21, 4))
	st := waitState(t, ts, sub.ID, StateDone)

	// The job turns done before its persist span and root close (the state
	// flips under the job lock, the trace is sealed just after), so poll
	// briefly for the sealed trace.
	var snap obs.TraceSnapshot
	deadline := time.Now().Add(10 * time.Second)
	for {
		var code int
		snap, code = getTrace(t, ts, sub.ID)
		if code != http.StatusOK {
			t.Fatalf("trace returned %d", code)
		}
		if !snap.Root.Open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("root span never closed on a done job")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if snap.ID != sub.ID || snap.Root.Name != "job" {
		t.Fatalf("trace id %q root %q, want %q and \"job\"", snap.ID, snap.Root.Name, sub.ID)
	}
	var names []string
	for _, c := range snap.Root.Children {
		names = append(names, c.Name)
	}
	if got := strings.Join(names, ","); got != "queue-wait,build,persist" {
		t.Fatalf("root children %q, want queue-wait,build,persist", got)
	}
	build := childNamed(snap.Root, "build")
	commits := 0
	for _, ev := range build.Events {
		if ev.Name == core.PhaseBatchCommit {
			commits++
		}
	}
	if commits == 0 {
		t.Fatalf("build span has no batch-commit events (events: %d)", len(build.Events))
	}
	// Adaptive depth: pipeline unset + parallelism > 1 means the tuner
	// chose, and the choice is stamped on the span and the job stats.
	if a := attrValue(build.Attrs, "adaptive_pipeline"); a != int64(st.Stats.PipelineDepth) {
		t.Fatalf("build span adaptive_pipeline=%d, job stats pipeline_depth=%d", a, st.Stats.PipelineDepth)
	}
	// The lifecycle phases partition the root: non-overlapping children
	// cannot sum past their parent.
	var sum float64
	for _, c := range snap.Root.Children {
		if c.Open {
			t.Fatalf("child %s still open on a done job", c.Name)
		}
		if c.DurationMS > snap.Root.DurationMS+0.5 {
			t.Fatalf("child %s (%.3fms) outlasts root (%.3fms)", c.Name, c.DurationMS, snap.Root.DurationMS)
		}
		sum += c.DurationMS
	}
	if sum > snap.Root.DurationMS+0.5 {
		t.Fatalf("children sum to %.3fms, root is %.3fms", sum, snap.Root.DurationMS)
	}
	// Job stats report the same phase durations.
	if st.Stats.BuildMS <= 0 || st.Stats.QueueMS < 0 {
		t.Fatalf("job stats missing phase durations: %+v", *st.Stats)
	}

	// The histograms saw the same lifecycle: one queue wait in the job's
	// class, one build, one persist, and some store/oracle operations.
	m := getMetrics(t, ts)
	if n := m.Latency.QueueWait[PriorityNormal].Count; n != 1 {
		t.Fatalf("queue-wait histogram count %d, want 1", n)
	}
	if m.Latency.Build.Count != 1 || m.Latency.Persist.Count != 1 {
		t.Fatalf("build/persist histogram counts %d/%d, want 1/1",
			m.Latency.Build.Count, m.Latency.Persist.Count)
	}
	if m.Latency.StorePut.Count == 0 {
		t.Fatal("store put histogram empty with the store enabled")
	}
	if m.Latency.Build.P50MS <= 0 || m.Latency.Build.MaxMS < m.Latency.Build.P50MS {
		t.Fatalf("implausible build summary: %+v", m.Latency.Build)
	}
}

func attrValue(attrs []obs.Attr, key string) int64 {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return -1
}

// TestTraceCachedJob checks a cache-hit job's trace: a closed root marked
// cached, with no queue or build spans (nothing was queued or built).
func TestTraceCachedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	first := submitJob(t, ts, smallSpec(31))
	waitState(t, ts, first.ID, StateDone)
	again := submitJob(t, ts, smallSpec(31))
	if !again.Cached {
		t.Fatalf("resubmission not cached: %+v", again)
	}
	snap, code := getTrace(t, ts, again.ID)
	if code != http.StatusOK {
		t.Fatalf("trace returned %d", code)
	}
	if snap.Root.Open || len(snap.Root.Children) != 0 {
		t.Fatalf("cached job trace should be a closed leaf root: open=%v children=%d",
			snap.Root.Open, len(snap.Root.Children))
	}
	if attrValue(snap.Root.Attrs, "cached") != 1 {
		t.Fatalf("cached job root not marked cached: %+v", snap.Root.Attrs)
	}
}

// TestTraceRetention checks traces age out independently of their jobs: with
// TraceRetention far below JobRetention, a sweep drops the trace (404) while
// the job status stays addressable.
func TestTraceRetention(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Workers:        1,
		JobRetention:   24 * time.Hour,
		TraceRetention: time.Millisecond,
	})
	sub := submitJob(t, ts, smallSpec(41))
	waitState(t, ts, sub.ID, StateDone)
	if _, code := getTrace(t, ts, sub.ID); code != http.StatusOK {
		t.Fatalf("fresh trace returned %d", code)
	}

	// One hour from now: trace retention (1ms) has lapsed, job retention
	// (24h) has not.
	if n := srv.sweepExpired(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("sweep evicted %d jobs, want 0", n)
	}
	if _, code := getTrace(t, ts, sub.ID); code != http.StatusNotFound {
		t.Fatalf("trace after retention returned %d, want 404", code)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+sub.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("job status after trace drop returned %d, want 200", code)
	}
}

// TestPipeTunerFeedback pins the controller's walk: low waste deepens up to
// the cap, high waste (or heavy re-speculation) shallows down to 1, and the
// dead band holds.
func TestPipeTunerFeedback(t *testing.T) {
	tu := newPipeTuner(4)
	if d := tu.depthNow(); d != tunerStartDepth {
		t.Fatalf("start depth %d, want %d", d, tunerStartDepth)
	}
	lowWaste := core.Stats{SpecBatches: 10, SpecQueries: 100, SpecWaste: 1}
	for i := 0; i < 10; i++ {
		tu.observe(lowWaste)
	}
	if d := tu.depthNow(); d != 4 {
		t.Fatalf("depth after sustained low waste = %d, want cap 4", d)
	}
	highWaste := core.Stats{SpecBatches: 10, SpecQueries: 100, SpecWaste: 50}
	for i := 0; i < 10; i++ {
		tu.observe(highWaste)
	}
	if d := tu.depthNow(); d != 1 {
		t.Fatalf("depth after sustained high waste = %d, want floor 1", d)
	}
	midWaste := core.Stats{SpecBatches: 10, SpecQueries: 100, SpecWaste: 10}
	tu.observe(midWaste)
	if d := tu.depthNow(); d != 1 {
		t.Fatalf("dead band moved the depth to %d", d)
	}
	// Heavy re-speculation counts as waste even with a good hit ratio.
	tu = newPipeTuner(4)
	tu.observe(core.Stats{SpecBatches: 10, SpecQueries: 100, SpecWaste: 1, SpecRounds: 20})
	if d := tu.depthNow(); d != 1 {
		t.Fatalf("depth after round-heavy build = %d, want 1", d)
	}
	// No-speculation builds carry no signal.
	tu.observe(core.Stats{})
	if d := tu.depthNow(); d != 1 {
		t.Fatalf("empty stats moved the depth to %d", d)
	}
	if got := newPipeTuner(1000).max; got != core.MaxPipeline {
		t.Fatalf("tuner cap %d not clamped to engine max %d", got, core.MaxPipeline)
	}
}

// TestAdaptivePipelineDifferential is the determinism check behind adaptive
// mode: a build whose depth the tuner chose produces a byte-identical
// spanner and kept set to the sequential build of the same spec.
func TestAdaptivePipelineDifferential(t *testing.T) {
	_, seqTS := newTestServer(t, Config{Workers: 1})
	_, adTS := newTestServer(t, Config{Workers: 2, PipelineCap: 3})

	seqSub := submitJob(t, seqTS, parallelSpec(51, 0))
	waitState(t, seqTS, seqSub.ID, StateDone)
	var seq spannerResponse
	if code := doJSON(t, http.MethodGet, seqTS.URL+"/v1/jobs/"+seqSub.ID+"/spanner", nil, &seq); code != http.StatusOK {
		t.Fatalf("spanner returned %d", code)
	}

	adSub := submitJob(t, adTS, parallelSpec(51, 4)) // pipeline unset: adaptive
	adSt := waitState(t, adTS, adSub.ID, StateDone)
	if d := adSt.Stats.PipelineDepth; d < 1 || d > 3 {
		t.Fatalf("adaptive build ran at depth %d, want within [1,3]", d)
	}
	var ad spannerResponse
	if code := doJSON(t, http.MethodGet, adTS.URL+"/v1/jobs/"+adSub.ID+"/spanner", nil, &ad); code != http.StatusOK {
		t.Fatalf("spanner returned %d", code)
	}
	if !reflect.DeepEqual(seq.Kept, ad.Kept) || seq.Spanner != ad.Spanner {
		t.Fatal("adaptive pipelined build differs from sequential build")
	}
	m := getMetrics(t, adTS)
	if m.AdaptivePipelineDepth < 1 || m.AdaptivePipelineDepth > 3 || m.AdaptivePipelineCap != 3 {
		t.Fatalf("metrics adaptive depth/cap = %d/%d, want within [1,3]/3",
			m.AdaptivePipelineDepth, m.AdaptivePipelineCap)
	}
}

// TestWaitShedder pins the shedder's two signals: a head-of-line age over
// budget sheds immediately, a p90 over budget sheds once enough samples
// back it, and a zero budget never sheds.
func TestWaitShedder(t *testing.T) {
	off := newWaitShedder(0)
	off.observe(classNormal, time.Hour)
	if off.shouldShed(classNormal, time.Hour) {
		t.Fatal("zero budget shed")
	}

	ws := newWaitShedder(50 * time.Millisecond)
	if ws.shouldShed(classNormal, 10*time.Millisecond) {
		t.Fatal("shed with no history and head under budget")
	}
	if !ws.shouldShed(classNormal, 60*time.Millisecond) {
		t.Fatal("head-of-line age over budget did not shed")
	}
	for i := 0; i < shedMinSamples-1; i++ {
		ws.observe(classNormal, 100*time.Millisecond)
	}
	if ws.shouldShed(classNormal, 0) {
		t.Fatalf("shed on %d samples, below the minimum %d", shedMinSamples-1, shedMinSamples)
	}
	ws.observe(classNormal, 100*time.Millisecond)
	if !ws.shouldShed(classNormal, 0) {
		t.Fatal("p90 over budget did not shed")
	}
	// Classes are independent.
	if ws.shouldShed(classHigh, 0) {
		t.Fatal("another class's waits shed this one")
	}
	// A recovered class (fast recent waits) stops shedding.
	for i := 0; i < shedWindow; i++ {
		ws.observe(classNormal, time.Millisecond)
	}
	if ws.shouldShed(classNormal, 0) {
		t.Fatal("still shedding after the window refilled with fast waits")
	}
}

// TestShedEndToEnd checks the HTTP face of load shedding: with a head-of-
// line job already over the (tiny) budget, the next submission gets 429 and
// the per-class shed counter moves.
func TestShedEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, WaitBudget: time.Nanosecond})

	// Occupy the lone worker, then queue one job so the class has an aging
	// head.
	running := submitJob(t, ts, slowSpec(61))
	waitState(t, ts, running.ID, StateRunning)
	queued := submitJob(t, ts, slowSpec(62))
	_ = queued

	var errResp errorBody
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", slowSpec(63), &errResp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("submission over budget returned %d, want 429", code)
	}
	if !strings.Contains(errResp.Error, "shedding") {
		t.Fatalf("shed error %q does not name shedding", errResp.Error)
	}
	m := getMetrics(t, ts)
	if m.Queues[PriorityNormal].Shed != 1 {
		t.Fatalf("shed counter %d, want 1", m.Queues[PriorityNormal].Shed)
	}
	if m.WaitBudgetMS <= 0 {
		t.Fatalf("wait budget %f not surfaced", m.WaitBudgetMS)
	}
	// Unblock the pool so Cleanup is fast.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, nil)
	doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+running.ID, nil, nil)
}

// TestHealthzAndVersion checks the liveness probe and the build-stamp /
// uptime / terminal-counter satellites in /metrics.
func TestHealthzAndVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, StoreDir: t.TempDir(), Version: "test-v1"})

	var h healthResponse
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz returned %d", code)
	}
	if h.Status != "ok" || h.Store != "ok" || h.Version != "test-v1" || h.UptimeSeconds < 0 {
		t.Fatalf("unexpected health: %+v", h)
	}

	sub := submitJob(t, ts, smallSpec(71))
	waitState(t, ts, sub.ID, StateDone)
	m := getMetrics(t, ts)
	if m.JobsDone != 1 || m.JobsFailed != 0 || m.JobsCancelled != 0 {
		t.Fatalf("terminal counters done/failed/cancelled = %d/%d/%d, want 1/0/0",
			m.JobsDone, m.JobsFailed, m.JobsCancelled)
	}
	if m.Version != "test-v1" || m.UptimeSeconds < 0 {
		t.Fatalf("version/uptime not surfaced: %q / %f", m.Version, m.UptimeSeconds)
	}
}
