// Degraded-mode machinery: I/O error classification, capped jittered retry
// for transient failures, and a circuit breaker that trips the store into
// memory-only operation when the disk keeps failing.
//
// The design goal is that a bad disk turns the durable tier from a feature
// into a no-op, never into a job-failing liability: while the breaker is
// open every Get misses and every Put is dropped without touching the disk,
// jobs keep completing from the in-memory tiers, and a background probe
// re-arms the breaker the moment the disk recovers.
package store

import (
	"errors"
	"os"
	"syscall"
	"time"
)

// errClass buckets a store I/O failure by what acting on it can achieve.
type errClass int

const (
	// errTransient failures (EINTR, EAGAIN, EBUSY, ETIMEDOUT, EIO) are worth
	// retrying in place with backoff: flaky disks and overloaded kernels
	// often succeed on the next attempt.
	errTransient errClass = iota
	// errDiskFull (ENOSPC, EDQUOT) will not be fixed by retrying in
	// milliseconds; it skips the retry loop and counts straight against the
	// breaker.
	errDiskFull
	// errPermanent is everything else (EROFS, EACCES, pathologies): retrying
	// is pointless, the breaker decides whether the store stays up.
	errPermanent
)

// classifyIOErr buckets err. It unwraps through fmt-wrapped and *os.PathError
// chains via errors.Is.
func classifyIOErr(err error) errClass {
	switch {
	case errors.Is(err, syscall.ENOSPC), errors.Is(err, syscall.EDQUOT):
		return errDiskFull
	case errors.Is(err, syscall.EINTR), errors.Is(err, syscall.EAGAIN),
		errors.Is(err, syscall.EBUSY), errors.Is(err, syscall.ETIMEDOUT),
		errors.Is(err, syscall.EIO):
		return errTransient
	default:
		return errPermanent
	}
}

// Retry and breaker tuning.
const (
	// retryAttempts bounds the total tries per retryable operation; the
	// first attempt is free, so at most retryAttempts-1 sleeps happen.
	retryAttempts = 3
	// retryBaseDelay..retryMaxDelay is the jittered exponential backoff
	// range: short enough that a Put on the build path stalls for at most a
	// few tens of milliseconds even when every attempt fails.
	retryBaseDelay = 2 * time.Millisecond
	retryMaxDelay  = 20 * time.Millisecond

	// defaultFailureThreshold is how many consecutive failed operations
	// (after their retries) trip the breaker into memory-only mode.
	defaultFailureThreshold = 3
	// defaultProbeInterval is how often the background probe re-tests a
	// degraded disk.
	defaultProbeInterval = 2 * time.Second
)

// ErrDegraded is returned by Put while the breaker is open: the store is in
// memory-only mode and did not touch the disk. Callers already treating
// persistence as best-effort need no special handling.
var ErrDegraded = errors.New("store: degraded (memory-only mode)")

// withRetry runs op, retrying transient failures with capped jittered
// exponential backoff. Non-transient failures and exhaustion return the last
// error unchanged.
func (s *Store) withRetry(op func() error) error {
	delay := s.retryBase
	for attempt := 1; ; attempt++ {
		err := op()
		if err == nil || os.IsNotExist(err) {
			return err
		}
		if classifyIOErr(err) != errTransient || attempt >= retryAttempts {
			return err
		}
		s.retries.Add(1)
		// Jitter in [delay/2, delay): concurrent retries against a stressed
		// disk should not re-collide in lockstep. A sub-2ns configured base
		// delay has no jitter range at all — rand.Int63n would panic on a
		// non-positive bound — so the guard sleeps the bare half-delay. The
		// source is the store's own seeded rng, not the global one, so chaos
		// runs replay byte-identically under CHAOS_SEED.
		sleep := delay / 2
		if half := int64(delay) / 2; half > 0 {
			s.jitterMu.Lock()
			sleep += time.Duration(s.jitter.Int63n(half))
			s.jitterMu.Unlock()
		}
		time.Sleep(sleep)
		if delay *= 2; delay > retryMaxDelay {
			delay = retryMaxDelay
		}
	}
}

// opFailed records one failed disk operation (after its retries) and trips
// the breaker at the failure threshold.
func (s *Store) opFailed() {
	s.breakerMu.Lock()
	s.consecFails++
	trip := s.consecFails >= s.failureThreshold && !s.degraded.Load()
	if trip {
		s.degraded.Store(true)
		s.breakerTrips.Add(1)
	}
	s.breakerMu.Unlock()
	if trip {
		select {
		case s.probeKick <- struct{}{}:
		default:
		}
	}
}

// opSucceeded resets the consecutive-failure count.
func (s *Store) opSucceeded() {
	s.breakerMu.Lock()
	s.consecFails = 0
	s.breakerMu.Unlock()
}

// Degraded reports whether the breaker is open (memory-only mode).
func (s *Store) Degraded() bool { return s.degraded.Load() }

// rearm closes the breaker after a successful probe.
func (s *Store) rearm() {
	s.breakerMu.Lock()
	s.consecFails = 0
	s.degraded.Store(false)
	s.breakerMu.Unlock()
}

// prober is the background goroutine that re-arms a tripped breaker: while
// the store is degraded it runs the write probe every probeInterval and
// closes the breaker on the first success. Between trips it parks on the
// kick channel.
func (s *Store) prober() {
	defer s.wg.Done()
	t := time.NewTicker(s.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-s.probeKick:
		case <-t.C:
		}
		if !s.degraded.Load() {
			continue
		}
		if s.Healthy() == nil {
			s.rearm()
		}
	}
}
