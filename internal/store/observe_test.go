package store

import (
	"sync"
	"testing"
	"time"
)

// TestObserverSeesGetAndPut checks the latency observer contract: one
// callback per Get (hit or miss) and per Put, with non-negative durations,
// and that clearing the observer stops the callbacks.
func TestObserverSeesGetAndPut(t *testing.T) {
	s := mustOpen(t, t.TempDir(), -1)
	var mu sync.Mutex
	counts := map[Op]int{}
	s.SetObserver(func(op Op, d time.Duration) {
		if d < 0 {
			t.Errorf("%s latency negative: %v", op, d)
		}
		mu.Lock()
		counts[op]++
		mu.Unlock()
	})

	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(rec.Key); !ok {
		t.Fatal("stored record missed")
	}
	if _, ok := s.Get("no-such-key"); ok {
		t.Fatal("made-up key hit")
	}
	mu.Lock()
	gets, puts := counts[OpGet], counts[OpPut]
	mu.Unlock()
	if puts != 1 || gets != 2 {
		t.Fatalf("observer saw put=%d get=%d, want 1 and 2 (miss counts too)", puts, gets)
	}

	s.SetObserver(nil)
	if _, ok := s.Get(rec.Key); !ok {
		t.Fatal("record vanished")
	}
	mu.Lock()
	after := counts[OpGet]
	mu.Unlock()
	if after != gets {
		t.Fatalf("observer still firing after SetObserver(nil): get=%d", after)
	}
}

// TestHealthy checks the write probe succeeds on a live store and leaves no
// residue behind.
func TestHealthy(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	if err := s.Healthy(); err != nil {
		t.Fatalf("healthy store reported unhealthy: %v", err)
	}
	if files := dirFiles(t, dir, ""); len(files) != 0 {
		t.Fatalf("health probe left residue: %v", files)
	}
}
