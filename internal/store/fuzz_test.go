package store

import (
	"errors"
	"testing"
)

// FuzzStoreCodec hammers Decode with arbitrary bytes and pins the two codec
// invariants: (1) decoding garbage returns an error wrapping ErrCorrupt and
// never panics; (2) whatever decodes cleanly survives an encode→decode
// round trip unchanged (byte-identity is NOT required: varints have
// non-minimal spellings, so two byte strings may name the same record —
// record-level identity is the contract). The checked-in seed corpus lives
// in testdata/fuzz/FuzzStoreCodec.
func FuzzStoreCodec(f *testing.F) {
	f.Add(Encode(sampleRecord()))
	f.Add(Encode(&Record{Key: "k", NumVertices: 1, InputEdges: 1, SpannerDigest: "d", Kept: []int{0}}))
	f.Add(Encode(&Record{})) // fully zero record
	f.Add([]byte{})
	f.Add([]byte(magic))
	trunc := Encode(sampleRecord())
	f.Add(trunc[:len(trunc)-3])
	flipped := Encode(sampleRecord())
	flipped[12] ^= 0xFF // CRC byte
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		rec2, err := Decode(Encode(rec))
		if err != nil {
			t.Fatalf("re-decoding a re-encoded record failed: %v", err)
		}
		if !recordsEqual(rec, rec2) {
			t.Fatalf("decode∘encode∘decode changed the record:\n in  %+v\n out %+v", rec, rec2)
		}
	})
}
