package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// dirFiles lists the base names in dir with the given suffix.
func dirFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), suffix) {
			out = append(out, e.Name())
		}
	}
	return out
}

// recordPath returns the single live record file for key.
func recordPath(t *testing.T, dir, key string) string {
	t.Helper()
	p := filepath.Join(dir, fileName(key))
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("record file for %q: %v", key, err)
	}
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(rec.Key)
	if !ok {
		t.Fatal("stored record missed")
	}
	if !recordsEqual(rec, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", rec, got)
	}
	// The write was atomic: exactly one live file, no temp residue.
	if tmps := dirFiles(t, dir, ""); len(tmps) != 1 {
		t.Fatalf("directory holds %v, want exactly one record file", tmps)
	}
	if m := s.Snapshot(); m.Writes != 1 || m.Hits != 1 || m.Entries != 1 || m.Bytes <= 0 {
		t.Fatalf("metrics %+v after one put+get", m)
	}
	if _, ok := s.Get("no-such-key"); ok {
		t.Fatal("made-up key hit")
	}
	if m := s.Snapshot(); m.Misses != 1 {
		t.Fatalf("misses=%d after a made-up key, want 1", m.Misses)
	}
}

func TestPutReplacesExisting(t *testing.T) {
	s := mustOpen(t, t.TempDir(), -1)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	rec2 := sampleRecord()
	rec2.Kept = []int{1, 2}
	rec2.SpannerDigest = "other"
	if err := s.Put(rec2); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(rec.Key)
	if !ok || !recordsEqual(rec2, got) {
		t.Fatalf("after overwrite got %+v ok=%v, want the second record", got, ok)
	}
	if m := s.Snapshot(); m.Entries != 1 {
		t.Fatalf("entries=%d after overwriting the same key, want 1", m.Entries)
	}
}

// TestReopenWarm is the store-level restart property: a second Store over
// the same directory serves the first one's writes.
func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	rec := sampleRecord()
	s1 := mustOpen(t, dir, -1)
	if err := s1.Put(rec); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	s2 := mustOpen(t, dir, -1)
	if m := s2.Snapshot(); m.Entries != 1 || m.Bytes <= 0 {
		t.Fatalf("reopened store sees %+v, want the persisted entry", m)
	}
	got, ok := s2.Get(rec.Key)
	if !ok || !recordsEqual(rec, got) {
		t.Fatalf("reopened store got %+v ok=%v", got, ok)
	}
}

// TestOpenCleansInterruptedWrites: a crash between CreateTemp and rename
// leaves a .tmp file; Open must delete it and not index it.
func TestOpenCleansInterruptedWrites(t *testing.T) {
	dir := t.TempDir()
	leftover := filepath.Join(dir, fileName("k")+tmpExt+"123456")
	if err := os.WriteFile(leftover, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir, -1)
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatalf("interrupted temp file survived Open (stat err %v)", err)
	}
	if m := s.Snapshot(); m.Entries != 0 {
		t.Fatalf("temp file was indexed: %+v", m)
	}
}

// corruptionCase mutates a valid on-disk record into one specific corrupt
// shape.
type corruptionCase struct {
	name   string
	mutate func(t *testing.T, path string)
}

func corruptionCases() []corruptionCase {
	return []corruptionCase{
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped CRC byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[12] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"wrong codec version", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[4], data[5] = 0xFE, 0xCA
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"flipped payload byte", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
}

// TestCorruptRecordsQuarantined: every corruption shape must be detected on
// Get, renamed to .corrupt (never served, preserved for inspection),
// counted, and replaceable by a fresh Put.
func TestCorruptRecordsQuarantined(t *testing.T) {
	for _, tc := range corruptionCases() {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, -1)
			rec := sampleRecord()
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			tc.mutate(t, recordPath(t, dir, rec.Key))

			if _, ok := s.Get(rec.Key); ok {
				t.Fatal("corrupt record was served")
			}
			if m := s.Snapshot(); m.CorruptTotal != 1 || m.Entries != 0 {
				t.Fatalf("metrics %+v after corrupt get, want corrupt_total=1 entries=0", m)
			}
			if got := dirFiles(t, dir, corruptExt); len(got) != 1 {
				t.Fatalf("quarantined files %v, want exactly one %s", got, corruptExt)
			}
			if got := dirFiles(t, dir, fileExt); len(got) != 0 {
				t.Fatalf("live files %v remain after quarantine", got)
			}
			// The slot is rebuildable: a fresh Put serves again.
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(rec.Key); !ok || !recordsEqual(rec, got) {
				t.Fatalf("rebuilt record got %+v ok=%v", got, ok)
			}
		})
	}
}

// TestCorruptRecordsQuarantinedAcrossReopen: corruption planted while the
// store is closed (the restart scenario) is caught by the next process.
func TestCorruptRecordsQuarantinedAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	rec := sampleRecord()
	s1 := mustOpen(t, dir, -1)
	if err := s1.Put(rec); err != nil {
		t.Fatal(err)
	}
	s1.Close()
	corruptionCases()[0].mutate(t, recordPath(t, dir, rec.Key))

	s2 := mustOpen(t, dir, -1)
	if _, ok := s2.Get(rec.Key); ok {
		t.Fatal("corrupt record served after reopen")
	}
	if m := s2.Snapshot(); m.CorruptTotal != 1 {
		t.Fatalf("corrupt_total=%d, want 1", m.CorruptTotal)
	}
}

// TestKeyMismatchQuarantined: a file whose embedded key differs from the
// one its name hashes to (misplaced or maliciously copied) is never served.
func TestKeyMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Copy the valid record into the slot of a different key.
	data, err := os.ReadFile(recordPath(t, dir, rec.Key))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fileName("other-key")), data, 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir, -1)
	if _, ok := s2.Get("other-key"); ok {
		t.Fatal("record with mismatched embedded key was served")
	}
	if m := s2.Snapshot(); m.CorruptTotal != 1 {
		t.Fatalf("corrupt_total=%d, want 1", m.CorruptTotal)
	}
	// The original key is untouched.
	if _, ok := s2.Get(rec.Key); !ok {
		t.Fatal("original record lost")
	}
}

// TestQuarantineReclassifiesHit: when the caller rejects a cleanly decoded
// record (service-level digest mismatch), Quarantine must both remove the
// file and un-count the Get's hit — the submission was not served from
// disk.
func TestQuarantineReclassifiesHit(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(rec.Key); !ok {
		t.Fatal("stored record missed")
	}
	s.Quarantine(rec.Key)
	m := s.Snapshot()
	if m.Hits != 0 || m.Misses != 1 || m.CorruptTotal != 1 || m.Entries != 0 {
		t.Fatalf("metrics %+v after caller-side quarantine, want hits=0 misses=1 corrupt=1 entries=0", m)
	}
	if got := dirFiles(t, dir, corruptExt); len(got) != 1 {
		t.Fatalf("quarantined files %v, want one", got)
	}
}

// TestCorruptRetentionCap: quarantined files are preserved for inspection
// only up to maxCorruptFiles; persistent corruption across many keys must
// not grow the directory unbounded.
func TestCorruptRetentionCap(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	total := maxCorruptFiles + 8
	for i := 0; i < total; i++ {
		rec := sampleRecord()
		rec.Key = fmt.Sprintf("k%d", i)
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		p := recordPath(t, dir, rec.Key)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[12] ^= 0xFF
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(rec.Key); ok {
			t.Fatalf("corrupt record %d served", i)
		}
	}
	if m := s.Snapshot(); m.CorruptTotal != int64(total) {
		t.Fatalf("corrupt_total=%d, want %d", m.CorruptTotal, total)
	}
	if got := dirFiles(t, dir, corruptExt); len(got) != maxCorruptFiles {
		t.Fatalf("%d quarantined files on disk, want the cap of %d", len(got), maxCorruptFiles)
	}
	s.Close()

	// The retention window carries across a restart: pre-existing .corrupt
	// files are indexed (and stay trimmed) by the next Open.
	s2 := mustOpen(t, dir, -1)
	rec := sampleRecord()
	rec.Key = "fresh"
	if err := s2.Put(rec); err != nil {
		t.Fatal(err)
	}
	p := recordPath(t, dir, rec.Key)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	data[12] ^= 0xFF
	if err := os.WriteFile(p, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2.Get(rec.Key)
	if got := dirFiles(t, dir, corruptExt); len(got) != maxCorruptFiles {
		t.Fatalf("%d quarantined files after reopen+quarantine, want still %d", len(got), maxCorruptFiles)
	}
}

// waitCondition polls until cond() or the deadline.
func waitCondition(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestByteBoundEvictsLRU: the background evictor trims least-recently-used
// records once writes push the total over the bound, sparing recently
// used ones.
func TestByteBoundEvictsLRU(t *testing.T) {
	dir := t.TempDir()
	one := Encode(sampleRecord())
	// Room for about three records.
	s := mustOpen(t, dir, int64(len(one))*3+int64(len(one))/2)

	keys := []string{"a", "b", "c", "d", "e"}
	for _, k := range keys {
		rec := sampleRecord()
		rec.Key = k
		if err := s.Put(rec); err != nil {
			t.Fatal(err)
		}
		// Touch "a" after every write so it stays most-recently-used.
		if k != "a" {
			if _, ok := s.Get("a"); !ok && k < "d" {
				t.Fatalf("%q evicted while under the bound", "a")
			}
		}
	}
	waitCondition(t, "evictor to trim under the byte bound", func() bool {
		m := s.Snapshot()
		return m.Bytes <= m.MaxBytes
	})
	m := s.Snapshot()
	if m.Evictions == 0 || m.EvictedBytes == 0 {
		t.Fatalf("metrics %+v, want evictions after exceeding the bound", m)
	}
	if _, ok := s.Get("a"); !ok {
		t.Error("most-recently-used record evicted")
	}
	if _, ok := s.Get("e"); !ok {
		t.Error("newest record evicted")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("least-recently-used record survived past the bound")
	}
}

// TestLRUOrderSurvivesRestart: eviction order is derived from file mtimes
// at Open, so the on-disk LRU is meaningful across restarts.
func TestLRUOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	one := Encode(sampleRecord())
	s1 := mustOpen(t, dir, -1)
	for _, k := range []string{"old", "mid", "new"} {
		rec := sampleRecord()
		rec.Key = k
		if err := s1.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()
	// Distinct mtimes a minute apart encode the access order under test.
	base := time.Now().Add(-time.Hour)
	for i, k := range []string{"old", "mid", "new"} {
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, fileName(k)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	// Capacity for one record: the two stale ones must go, newest stays.
	s2 := mustOpen(t, dir, int64(len(one))+2)
	waitCondition(t, "reopened evictor to trim the backlog", func() bool {
		return s2.Snapshot().Entries == 1
	})
	if _, ok := s2.Get("new"); !ok {
		t.Error("most recent record evicted on reopen")
	}
	if _, ok := s2.Get("old"); ok {
		t.Error("stalest record survived the reopen trim")
	}
}

// TestConcurrentPutGet shakes the store under parallel access; run with
// -race this doubles as the locking check.
func TestConcurrentPutGet(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 1<<20)
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				rec := sampleRecord()
				rec.Key = string(rune('a' + (i+w)%7))
				if err := s.Put(rec); err != nil {
					t.Error(err)
					return
				}
				s.Get(rec.Key)
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if m := s.Snapshot(); m.Writes != 200 || m.CorruptTotal != 0 {
		t.Fatalf("metrics %+v after concurrent traffic", m)
	}
}

// reverseDirFS feeds Open a directory listing in reverse name order: with
// every mtime equal, the reopen scan's sort gets no signal from mtimes, so
// any order it produces comes from the tie-break (or, before the fix, from
// whatever the unstable sort preserved of this adversarial input order).
type reverseDirFS struct {
	OSFS
}

func (r reverseDirFS) ReadDir(name string) ([]os.DirEntry, error) {
	entries, err := r.OSFS.ReadDir(name)
	for i, j := 0, len(entries)-1; i < j; i, j = i+1, j-1 {
		entries[i], entries[j] = entries[j], entries[i]
	}
	return entries, err
}

// TestReopenOrderDeterministicOnEqualMtimes: records written within one
// clock tick (anti-entropy bulk imports make that the common case) must
// reopen in a deterministic LRU order — the name tie-break — regardless of
// directory enumeration order.
func TestReopenOrderDeterministicOnEqualMtimes(t *testing.T) {
	dir := t.TempDir()
	s1 := mustOpen(t, dir, -1)
	keys := []string{"a", "b", "c", "d", "e", "f"}
	names := make([]string, len(keys))
	for i, k := range keys {
		rec := sampleRecord()
		rec.Key = k
		if err := s1.Put(rec); err != nil {
			t.Fatal(err)
		}
		names[i] = fileName(k)
	}
	s1.Close()
	// One shared mtime: the coarse-clock / same-tick scenario.
	mt := time.Now().Add(-time.Hour)
	for _, n := range names {
		if err := os.Chtimes(filepath.Join(dir, n), mt, mt); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := OpenConfig(Config{Dir: dir, MaxBytes: -1, FS: reverseDirFS{}})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.List()
	if len(got) != len(names) {
		t.Fatalf("reopened with %d records, want %d", len(got), len(names))
	}
	// Ascending-name scan order pushes front, so List (MRU first) must be
	// descending by name.
	sorted := append([]string(nil), names...)
	sort.Sort(sort.Reverse(sort.StringSlice(sorted)))
	for i, info := range got {
		if info.Name != sorted[i] {
			t.Fatalf("reopen order position %d is %s, want %s (full order %v)", i, info.Name, sorted[i], got)
		}
	}
}

// TestListExportImportRoundTrip drives the anti-entropy surface: a record
// listed and exported from one store imports into an empty peer store and
// round-trips byte-identically, re-imports are skipped, and corrupt pulls
// are rejected before touching the disk.
func TestListExportImportRoundTrip(t *testing.T) {
	src := mustOpen(t, t.TempDir(), -1)
	rec := sampleRecord()
	if err := src.Put(rec); err != nil {
		t.Fatal(err)
	}
	infos := src.List()
	if len(infos) != 1 || infos[0].Name != fileName(rec.Key) || infos[0].Size <= 0 {
		t.Fatalf("List = %+v", infos)
	}
	data, ok := src.ExportRaw(infos[0].Name)
	if !ok {
		t.Fatal("ExportRaw missed a live record")
	}
	if _, ok := src.ExportRaw("nope" + fileExt); ok {
		t.Fatal("ExportRaw served an unindexed name")
	}

	dst := mustOpen(t, t.TempDir(), -1)
	key, imported, err := dst.ImportEncoded(data)
	if err != nil || !imported || key != rec.Key {
		t.Fatalf("ImportEncoded = (%q, %v, %v)", key, imported, err)
	}
	got, ok := dst.Get(rec.Key)
	if !ok || !recordsEqual(rec, got) {
		t.Fatalf("imported record round trip: ok=%v got=%+v", ok, got)
	}
	if _, imported, err := dst.ImportEncoded(data); err != nil || imported {
		t.Fatalf("re-import = (%v, %v), want skip", imported, err)
	}

	// A flipped payload byte must be caught by the codec CRC, not written.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40
	if _, _, err := dst.ImportEncoded(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt import error = %v, want ErrCorrupt", err)
	}
	if n := dst.Snapshot().Entries; n != 1 {
		t.Fatalf("store has %d entries after corrupt import, want 1", n)
	}
}
