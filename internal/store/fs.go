package store

import (
	"io"
	"os"
	"time"
)

// FS is the store's filesystem seam: every disk operation the store performs
// goes through it, so resilience tests can substitute an error-injecting
// implementation (internal/injectfs) that scripts ENOSPC, EIO, torn renames,
// and slow writes deterministically. Production stores use OSFS. All methods
// must be safe for concurrent use (the os package's are).
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
	Rename(oldpath, newpath string) error
	Chtimes(name string, atime, mtime time.Time) error
	// CreateTemp creates a new temporary file in dir, opened for writing,
	// with a name built from pattern as in os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// SyncDir fsyncs the directory itself so a completed rename survives
	// power loss, not just process death.
	SyncDir(name string) error
}

// File is the writable-file half of the seam, as returned by FS.CreateTemp.
type File interface {
	io.Writer
	io.StringWriter
	Name() string
	Sync() error
	Close() error
}

// OSFS is the production FS: a thin veneer over package os.
type OSFS struct{}

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (OSFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Chtimes(name string, a, m time.Time) error    { return os.Chtimes(name, a, m) }
func (OSFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
