// Package store persists completed spanner-build results on disk,
// content-addressed by build key: because every algorithm the service
// exposes is deterministic for a fixed input (the sampling baseline keys on
// its seed), a result is fully determined by the input graph's digest plus
// the build parameters, so it is safe to share across processes and
// restarts. Each record is one file holding the kept-edge IDs and build
// stats — not the graphs themselves — so stored results stay small (the
// paper's O(f^(1-1/k) n^(1+1/k)) size bound is the ceiling) and the spanner
// is reconstructed from the resubmitted input on read.
//
// The on-disk format is a versioned binary codec with a CRC-32 over the
// payload; writes are atomic (temp file + rename) and unreadable files are
// quarantined, never served.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// File layout, all integers little-endian:
//
//	offset 0  magic   "FTSR" (4 bytes)
//	       4  version uint16
//	       6  flags   uint16 (must be zero in version 1)
//	       8  paylen  uint32 (payload byte count)
//	      12  crc     uint32 (CRC-32/IEEE of the payload)
//	      16  payload
//
// The version-2 payload is a sequence of varint-coded fields (strings are
// uvarint length + bytes):
//
//	key, numVertices, inputEdges, spannerDigest,
//	len(kept), kept[0..], then the fifteen Stats counters.
//
// Version 1 carried ten counters; readers reject it like any other unknown
// version, so pre-existing records are quarantined and rebuilt once (the
// store is a cache — rebuild-on-upgrade is the documented, self-healing
// path) rather than silently decoding with the new counters zeroed, which
// would misreport restored jobs' stats (e.g. a spec hit rate of a false
// 1.0).
const (
	magic      = "FTSR"
	Version    = 2
	headerSize = 16

	// maxPayload rejects absurd length fields before any allocation; real
	// records are a few bytes per kept edge.
	maxPayload = 1 << 30
	// maxCount bounds decoded vertex/edge counts so hostile input cannot
	// smuggle overflowing values through the uvarint decoder.
	maxCount = 1 << 40
)

// ErrCorrupt tags every decode failure: truncated data, bad magic, an
// unknown codec version, a CRC mismatch, or a payload that does not parse.
// Callers quarantine the backing file and rebuild.
var ErrCorrupt = errors.New("store: corrupt record")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// Stats mirrors the build instrumentation counters worth persisting
// alongside a result (core.Stats, flattened to fixed integer fields so the
// codec does not depend on the core package).
type Stats struct {
	EdgesScanned     int64
	OracleCalls      int64
	Dijkstras        int64
	WitnessHits      int64
	WitnessMisses    int64
	SpecBatches      int64
	SpecQueries      int64
	SpecHits         int64
	SpecWaste        int64
	SpecRounds       int64
	SpecRequeries    int64
	PipelineDepth    int64
	WitnessSeedTries int64
	WitnessSeedHits  int64
	DurationNS       int64
}

// Record is one persisted build result. Key is the caller's canonical build
// key (digest + parameters); NumVertices/InputEdges pin the input graph the
// kept-edge IDs index into; SpannerDigest lets the reader verify the
// reconstructed spanner byte-for-byte.
type Record struct {
	Key           string
	NumVertices   int
	InputEdges    int
	SpannerDigest string
	Kept          []int
	Stats         Stats
}

// Encode serializes rec into the versioned on-disk format.
func Encode(rec *Record) []byte {
	payload := appendString(nil, rec.Key)
	payload = binary.AppendUvarint(payload, uint64(rec.NumVertices))
	payload = binary.AppendUvarint(payload, uint64(rec.InputEdges))
	payload = appendString(payload, rec.SpannerDigest)
	payload = binary.AppendUvarint(payload, uint64(len(rec.Kept)))
	for _, id := range rec.Kept {
		payload = binary.AppendUvarint(payload, uint64(id))
	}
	for _, c := range rec.Stats.counters() {
		payload = binary.AppendVarint(payload, c)
	}

	buf := make([]byte, headerSize, headerSize+len(payload))
	copy(buf, magic)
	binary.LittleEndian.PutUint16(buf[4:], Version)
	binary.LittleEndian.PutUint16(buf[6:], 0)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// counters lists the stats fields in codec order.
func (s *Stats) counters() [15]int64 {
	return [15]int64{
		s.EdgesScanned, s.OracleCalls, s.Dijkstras,
		s.WitnessHits, s.WitnessMisses,
		s.SpecBatches, s.SpecQueries, s.SpecHits, s.SpecWaste,
		s.SpecRounds, s.SpecRequeries, s.PipelineDepth,
		s.WitnessSeedTries, s.WitnessSeedHits,
		s.DurationNS,
	}
}

func (s *Stats) setCounters(c [15]int64) {
	s.EdgesScanned, s.OracleCalls, s.Dijkstras = c[0], c[1], c[2]
	s.WitnessHits, s.WitnessMisses = c[3], c[4]
	s.SpecBatches, s.SpecQueries, s.SpecHits, s.SpecWaste = c[5], c[6], c[7], c[8]
	s.SpecRounds, s.SpecRequeries, s.PipelineDepth = c[9], c[10], c[11]
	s.WitnessSeedTries, s.WitnessSeedHits = c[12], c[13]
	s.DurationNS = c[14]
}

// Decode parses a record written by Encode. Any deviation — truncation,
// trailing bytes, flipped bits, an unknown version — returns an error
// wrapping ErrCorrupt; it never panics on garbage.
func Decode(data []byte) (*Record, error) {
	if len(data) < headerSize {
		return nil, corruptf("short header: %d bytes", len(data))
	}
	if string(data[:4]) != magic {
		return nil, corruptf("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != Version {
		return nil, corruptf("unknown codec version %d (want %d)", v, Version)
	}
	if f := binary.LittleEndian.Uint16(data[6:]); f != 0 {
		return nil, corruptf("unknown flags %#x", f)
	}
	paylen := binary.LittleEndian.Uint32(data[8:])
	if uint64(paylen) > maxPayload {
		return nil, corruptf("payload length %d over cap", paylen)
	}
	payload := data[headerSize:]
	if uint32(len(payload)) != paylen {
		return nil, corruptf("truncated: header promises %d payload bytes, have %d", paylen, len(payload))
	}
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[12:]) {
		return nil, corruptf("CRC mismatch")
	}

	d := decoder{buf: payload}
	rec := &Record{}
	rec.Key = d.string("key")
	rec.NumVertices = d.count("vertices")
	rec.InputEdges = d.count("input edges")
	rec.SpannerDigest = d.string("spanner digest")
	nKept := d.count("kept count")
	// Each kept ID costs at least one payload byte, so this bound rejects
	// hostile counts before allocating.
	if d.err == nil && nKept > len(d.buf)-d.off {
		d.fail("kept count %d exceeds remaining %d bytes", nKept, len(d.buf)-d.off)
	}
	if d.err == nil {
		rec.Kept = make([]int, 0, nKept)
		for i := 0; i < nKept && d.err == nil; i++ {
			id := d.count("kept id")
			if d.err == nil && id >= rec.InputEdges {
				d.fail("kept id %d out of range (input has %d edges)", id, rec.InputEdges)
			}
			rec.Kept = append(rec.Kept, id)
		}
	}
	var c [15]int64
	for i := range c {
		c[i] = d.varint("stats counter")
	}
	rec.Stats.setCounters(c)
	if d.err == nil && d.off != len(d.buf) {
		d.fail("%d trailing payload bytes", len(d.buf)-d.off)
	}
	if d.err != nil {
		return nil, d.err
	}
	return rec, nil
}

// decoder is a bounds-checked cursor over the payload; the first failure
// sticks and every later read returns zero values.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corruptf(format, args...)
	}
}

func (d *decoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad %s uvarint", what)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad %s varint", what)
		return 0
	}
	d.off += n
	return v
}

// count decodes a non-negative integer bounded by maxCount, so it always
// fits an int — including on 32-bit platforms, where int(v) alone could
// wrap negative and bypass the downstream allocation guards.
func (d *decoder) count(what string) int {
	v := d.uvarint(what)
	if d.err == nil && (v > maxCount || uint64(int(v)) != v || int(v) < 0) {
		d.fail("%s %d over cap", what, v)
		return 0
	}
	return int(v)
}

func (d *decoder) string(what string) string {
	n := d.count(what + " length")
	if d.err != nil {
		return ""
	}
	if n > len(d.buf)-d.off {
		d.fail("%s length %d exceeds remaining %d bytes", what, n, len(d.buf)-d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}
