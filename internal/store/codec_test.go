package store

import (
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

// sampleRecord is a representative fully-populated record.
func sampleRecord() *Record {
	return &Record{
		Key:           "v1|0123abcd|3|2|vertex|greedy|0",
		NumVertices:   30,
		InputEdges:    150,
		SpannerDigest: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
		Kept:          []int{0, 5, 3, 149, 7, 7},
		Stats: Stats{
			EdgesScanned:     150,
			OracleCalls:      150,
			Dijkstras:        4321,
			WitnessHits:      10,
			WitnessMisses:    90,
			SpecBatches:      3,
			SpecQueries:      12,
			SpecHits:         11,
			SpecWaste:        1,
			SpecRounds:       2,
			SpecRequeries:    1,
			PipelineDepth:    4,
			WitnessSeedTries: 8,
			WitnessSeedHits:  5,
			DurationNS:       1_234_567_890,
		},
	}
}

// randomRecord draws a structurally valid record from rng.
func randomRecord(rng *rand.Rand) *Record {
	letters := func(n int) string {
		b := make([]byte, rng.Intn(n))
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	m := 1 + rng.Intn(500)
	kept := make([]int, rng.Intn(m))
	for i := range kept {
		kept[i] = rng.Intn(m)
	}
	return &Record{
		Key:           letters(80),
		NumVertices:   rng.Intn(1000),
		InputEdges:    m,
		SpannerDigest: letters(65),
		Kept:          kept,
		Stats: Stats{
			EdgesScanned:     int64(rng.Intn(1 << 20)),
			OracleCalls:      rng.Int63n(1 << 40),
			Dijkstras:        rng.Int63n(1 << 40),
			WitnessHits:      rng.Int63n(1 << 30),
			WitnessMisses:    rng.Int63n(1 << 30),
			SpecBatches:      rng.Int63n(1 << 30),
			SpecQueries:      rng.Int63n(1 << 30),
			SpecHits:         rng.Int63n(1 << 30),
			SpecWaste:        rng.Int63n(1 << 30),
			SpecRounds:       rng.Int63n(1 << 30),
			SpecRequeries:    rng.Int63n(1 << 30),
			PipelineDepth:    rng.Int63n(64),
			WitnessSeedTries: rng.Int63n(1 << 30),
			WitnessSeedHits:  rng.Int63n(1 << 30),
			DurationNS:       rng.Int63n(1 << 50),
		},
	}
}

// recordsEqual compares records treating nil and empty Kept as equal (an
// empty keep list round-trips as empty, not nil-vs-empty sensitive).
func recordsEqual(a, b *Record) bool {
	if len(a.Kept) == 0 && len(b.Kept) == 0 {
		a2, b2 := *a, *b
		a2.Kept, b2.Kept = nil, nil
		return reflect.DeepEqual(&a2, &b2)
	}
	return reflect.DeepEqual(a, b)
}

func TestCodecRoundTrip(t *testing.T) {
	rec := sampleRecord()
	got, err := Decode(Encode(rec))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !recordsEqual(rec, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", rec, got)
	}
}

func TestCodecRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		rec := randomRecord(rng)
		got, err := Decode(Encode(rec))
		if err != nil {
			t.Fatalf("record %d: decode: %v (record %+v)", i, err, rec)
		}
		if !recordsEqual(rec, got) {
			t.Fatalf("record %d round trip mismatch:\n in  %+v\n out %+v", i, rec, got)
		}
	}
}

func TestCodecEmptyKept(t *testing.T) {
	rec := &Record{Key: "k", NumVertices: 5, InputEdges: 4, SpannerDigest: "d"}
	got, err := Decode(Encode(rec))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Kept) != 0 {
		t.Fatalf("empty keep list decoded to %v", got.Kept)
	}
}

// TestCodecEveryByteFlipDetected is the CRC/header integrity property: the
// payload is CRC-covered and every header field is validated, so flipping
// ANY single byte of a valid encoding must fail decoding — no silent
// acceptance of corrupt data.
func TestCodecEveryByteFlipDetected(t *testing.T) {
	data := Encode(sampleRecord())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		if _, err := Decode(mut); err == nil {
			t.Errorf("flipping byte %d of %d went undetected", i, len(data))
		} else if !errors.Is(err, ErrCorrupt) {
			t.Errorf("flipping byte %d: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

// TestCodecEveryTruncationDetected: every strict prefix must be rejected.
func TestCodecEveryTruncationDetected(t *testing.T) {
	data := Encode(sampleRecord())
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d of %d bytes: got err %v, want ErrCorrupt", n, len(data), err)
		}
	}
	// ...and so must trailing garbage.
	if _, err := Decode(append(append([]byte(nil), data...), 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("one appended byte: got err %v, want ErrCorrupt", err)
	}
}

func TestCodecWrongVersionRejected(t *testing.T) {
	data := Encode(sampleRecord())
	data[4], data[5] = 0xFF, 0x7F // version 0x7FFF
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future codec version: got err %v, want ErrCorrupt", err)
	}
}

func TestCodecGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(256))
		rng.Read(buf)
		if rng.Intn(2) == 0 && len(buf) >= 4 {
			copy(buf, magic) // let some inputs get past the magic check
		}
		_, _ = Decode(buf) // must not panic; error is expected and fine
	}
}

// TestCodecHostileCounts pins the allocation guards: a forged payload
// claiming a huge kept count (with a valid CRC) must be rejected by the
// remaining-bytes bound, not trusted into a giant allocation.
func TestCodecHostileCounts(t *testing.T) {
	rec := sampleRecord()
	rec.Kept = nil
	data := Encode(rec)
	// Locate the kept-count byte by re-encoding with one kept edge and
	// diffing lengths is fragile; instead craft a payload directly.
	payload := appendString(nil, "k")
	payload = append(payload, 0, 0) // vertices=0, edges=0
	payload = appendString(payload, "")
	payload = append(payload, 0xFF, 0xFF, 0xFF, 0x7F) // kept count ~ 2^28
	data = make([]byte, headerSize, headerSize+len(payload))
	copy(data, magic)
	data[4] = Version
	data[8] = byte(len(payload))
	// CRC over payload, little-endian at offset 12.
	crc := crc32.ChecksumIEEE(payload)
	data[12], data[13], data[14], data[15] = byte(crc), byte(crc>>8), byte(crc>>16), byte(crc>>24)
	data = append(data, payload...)
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("hostile kept count: got err %v, want ErrCorrupt", err)
	}
}
