package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"syscall"
	"testing"
	"time"
)

func TestClassifyIOErr(t *testing.T) {
	cases := []struct {
		err  error
		want errClass
	}{
		{syscall.ENOSPC, errDiskFull},
		{syscall.EDQUOT, errDiskFull},
		{syscall.EIO, errTransient},
		{syscall.EINTR, errTransient},
		{syscall.EAGAIN, errTransient},
		{syscall.EBUSY, errTransient},
		{syscall.ETIMEDOUT, errTransient},
		{syscall.EROFS, errPermanent},
		{syscall.EACCES, errPermanent},
		{errors.New("opaque"), errPermanent},
		// Classification must see through PathError and fmt wrapping.
		{&os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}, errDiskFull},
		{fmt.Errorf("store: %w", &os.PathError{Op: "read", Path: "x", Err: syscall.EIO}), errTransient},
	}
	for _, c := range cases {
		if got := classifyIOErr(c.err); got != c.want {
			t.Errorf("classifyIOErr(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// faultFS is a minimal scriptable FS for store-level tests: it delegates to
// OSFS but fails CreateTemp and/or ReadFile with a scripted error for the
// next N calls. Mutex-guarded because the store's prober goroutine probes
// concurrently with the test's own operations. (The richer probabilistic
// injector lives in internal/injectfs; it cannot be used here without an
// import cycle.)
type faultFS struct {
	OSFS
	mu          sync.Mutex
	failCreates int
	createErr   error
	failReads   int
	readErr     error
}

func (f *faultFS) pendingCreates() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failCreates
}

func (f *faultFS) setFailReads(n int) {
	f.mu.Lock()
	f.failReads = n
	f.mu.Unlock()
}

func (f *faultFS) CreateTemp(dir, pattern string) (File, error) {
	f.mu.Lock()
	fail := f.failCreates > 0
	if fail {
		f.failCreates--
	}
	err := f.createErr
	f.mu.Unlock()
	if fail {
		return nil, &os.PathError{Op: "createtemp", Path: dir, Err: err}
	}
	return f.OSFS.CreateTemp(dir, pattern)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	fail := f.failReads > 0
	if fail {
		f.failReads--
	}
	err := f.readErr
	f.mu.Unlock()
	if fail {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return f.OSFS.ReadFile(name)
}

func openFaulty(t *testing.T, fs FS, probe time.Duration) *Store {
	t.Helper()
	s, err := OpenConfig(Config{Dir: t.TempDir(), MaxBytes: -1, FS: fs, ProbeInterval: probe})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestTransientWriteFailureRetriesInPlace(t *testing.T) {
	fs := &faultFS{failCreates: 1, createErr: syscall.EIO}
	s := openFaulty(t, fs, time.Hour)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatalf("Put with one transient failure: %v", err)
	}
	m := s.Snapshot()
	if m.Retries < 1 {
		t.Errorf("retries = %d, want >= 1", m.Retries)
	}
	if m.Degraded || m.BreakerTrips != 0 {
		t.Errorf("one retried failure tripped the breaker: %+v", m)
	}
	if got, ok := s.Get(rec.Key); !ok || got.SpannerDigest != rec.SpannerDigest {
		t.Error("record not readable after retried Put")
	}
}

func TestDiskFullSkipsRetryAndTripsBreaker(t *testing.T) {
	fs := &faultFS{failCreates: 1000, createErr: syscall.ENOSPC}
	s := openFaulty(t, fs, time.Hour)
	rec := sampleRecord()
	for i := 0; i < defaultFailureThreshold; i++ {
		if err := s.Put(rec); err == nil {
			t.Fatal("Put succeeded on a full disk")
		}
	}
	m := s.Snapshot()
	if !m.Degraded || m.BreakerTrips != 1 {
		t.Fatalf("after %d disk-full failures: degraded=%v trips=%d", defaultFailureThreshold, m.Degraded, m.BreakerTrips)
	}
	if m.Retries != 0 {
		t.Errorf("disk-full failures were retried %d times; ENOSPC should skip the retry loop", m.Retries)
	}

	// Breaker open: Put drops without touching the disk, Get misses.
	before := fs.pendingCreates()
	if err := s.Put(rec); !errors.Is(err, ErrDegraded) {
		t.Errorf("degraded Put returned %v, want ErrDegraded", err)
	}
	if fs.pendingCreates() != before {
		t.Error("degraded Put touched the disk")
	}
	if _, ok := s.Get(rec.Key); ok {
		t.Error("degraded Get returned a hit")
	}
}

func TestProbeRearmsBreakerAfterRecovery(t *testing.T) {
	fs := &faultFS{failCreates: defaultFailureThreshold * retryAttempts, createErr: syscall.ENOSPC}
	s := openFaulty(t, fs, 5*time.Millisecond)
	rec := sampleRecord()
	for i := 0; i < defaultFailureThreshold; i++ {
		_ = s.Put(rec)
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip")
	}
	// The scripted failures are finite, so the probe finds a healthy disk
	// within a few intervals and closes the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("breaker never re-armed after the disk recovered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := s.Put(rec); err != nil {
		t.Fatalf("Put after re-arm: %v", err)
	}
	if _, ok := s.Get(rec.Key); !ok {
		t.Error("Get after re-arm missed")
	}
}

func TestReadErrorDropsWithoutQuarantine(t *testing.T) {
	fs := &faultFS{readErr: syscall.EIO}
	s := openFaulty(t, fs, time.Hour)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Every retry attempt fails: the Get must report a miss and count an
	// operation failure, but the record file is NOT corrupt — it must stay
	// on disk un-quarantined for the post-recovery reopen.
	fs.setFailReads(retryAttempts)
	if _, ok := s.Get(rec.Key); ok {
		t.Fatal("Get served a record through a failing disk")
	}
	if got := dirFiles(t, s.Dir(), corruptExt); len(got) != 0 {
		t.Errorf("read I/O failure quarantined files: %v", got)
	}
	if got := dirFiles(t, s.Dir(), fileExt); len(got) != 1 {
		t.Errorf("record file gone after read failure: %v", got)
	}
	m := s.Snapshot()
	if m.Retries < 1 {
		t.Errorf("transient read failures were not retried: %+v", m)
	}
}

func TestSnapshotListsQuarantinedFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, -1)
	rec := sampleRecord()
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record on disk; the next Get quarantines it.
	path := recordPath(t, dir, rec.Key)
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(rec.Key); ok {
		t.Fatal("Get served a corrupt record")
	}
	m := s.Snapshot()
	if len(m.Quarantined) != 1 {
		t.Fatalf("snapshot quarantined list %v, want one entry", m.Quarantined)
	}
	if m.Quarantined[0] != fileName(rec.Key)+corruptExt {
		t.Errorf("quarantined name %q", m.Quarantined[0])
	}

	// The listing survives a reopen (the .corrupt file is rescanned).
	s.Close()
	s2 := mustOpen(t, dir, -1)
	if m := s2.Snapshot(); len(m.Quarantined) != 1 {
		t.Errorf("quarantined list lost across reopen: %v", m.Quarantined)
	}
}

func TestDegradedStoreStillClosesCleanly(t *testing.T) {
	fs := &faultFS{failCreates: 1000, createErr: syscall.EROFS}
	s, err := OpenConfig(Config{Dir: t.TempDir(), MaxBytes: -1, FS: fs, ProbeInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord()
	for i := 0; i < defaultFailureThreshold; i++ {
		_ = s.Put(rec)
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip")
	}
	// Close while the prober is actively probing a broken disk; double
	// Close checks idempotency.
	s.Close()
	s.Close()
}

// TestRetryTinyBaseDelayNoPanic pins the jitter zero-range guard: a base
// delay under 2ns leaves rand.Int63n with a non-positive bound, which the
// unguarded code panicked on mid-retry.
func TestRetryTinyBaseDelayNoPanic(t *testing.T) {
	fs := &faultFS{failCreates: retryAttempts - 1, createErr: syscall.EIO}
	s, err := OpenConfig(Config{Dir: t.TempDir(), MaxBytes: -1, FS: fs, ProbeInterval: time.Hour, RetryBaseDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(sampleRecord()); err != nil {
		t.Fatalf("Put after transient failures: %v", err)
	}
	if got := s.retries.Load(); got != retryAttempts-1 {
		t.Errorf("retries = %d, want %d", got, retryAttempts-1)
	}
}

// TestRetryJitterLocallySeeded pins that backoff jitter is drawn from the
// store's own seeded source, not the global rand: after a known retry
// sequence the store's rng sits exactly where a reference rng with the same
// seed lands after the same draws, so CHAOS_SEED runs replay byte-identically.
func TestRetryJitterLocallySeeded(t *testing.T) {
	const seed = 991
	fs := &faultFS{failCreates: 2, createErr: syscall.EIO}
	s, err := OpenConfig(Config{Dir: t.TempDir(), MaxBytes: -1, FS: fs, ProbeInterval: time.Hour, JitterSeed: seed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(sampleRecord()); err != nil {
		t.Fatalf("Put after transient failures: %v", err)
	}
	// Two failed attempts → two jitter draws, at the base and doubled delay.
	ref := rand.New(rand.NewSource(seed))
	ref.Int63n(int64(retryBaseDelay) / 2)
	ref.Int63n(int64(2*retryBaseDelay) / 2)
	s.jitterMu.Lock()
	got := s.jitter.Int63()
	s.jitterMu.Unlock()
	if want := ref.Int63(); got != want {
		t.Errorf("store jitter rng out of sync with seeded reference: got %d want %d", got, want)
	}
}
