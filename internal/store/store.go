package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// fileExt marks live record files; anything else in the directory is
	// ignored (quarantined files carry corruptExt, in-progress writes tmpExt).
	fileExt    = ".ftr"
	corruptExt = ".corrupt"
	tmpExt     = ".tmp"

	// maxCorruptFiles bounds how many quarantined files are preserved for
	// inspection; beyond it the oldest are deleted, so persistent corruption
	// (a failing disk, say) cannot grow the directory unbounded outside the
	// live byte accounting.
	maxCorruptFiles = 32
)

// Store is a durable, content-addressed result store: one file per build
// key under a single directory, LRU-bounded in total on-disk bytes by a
// background evictor. Safe for concurrent use; a directory must be owned by
// at most one open Store at a time (ftserve opens exactly one).
//
// The store degrades instead of failing: transient I/O errors are retried
// with capped jittered backoff, and repeated failures trip a circuit
// breaker into memory-only mode (Get misses, Put drops, the disk is left
// alone) until a background probe finds the disk healthy again. See
// degrade.go.
type Store struct {
	dir      string
	maxBytes int64 // <= 0 means unbounded
	fs       FS    // disk seam; OSFS in production, injectfs in chaos tests

	mu    sync.Mutex
	ll    *list.List               // front = most recently used; values are *fileEntry
	files map[string]*list.Element // base filename -> element
	bytes int64                    // sum of live file sizes
	// corruptFiles lists quarantined file names oldest-first, trimmed to
	// maxCorruptFiles.
	corruptFiles []string

	hits         atomic.Int64
	misses       atomic.Int64
	writes       atomic.Int64
	writeErrors  atomic.Int64
	corrupt      atomic.Int64
	evictions    atomic.Int64
	evictedBytes atomic.Int64

	// Degraded-mode state (degrade.go): the breaker trips after
	// failureThreshold consecutive failed operations and is re-armed by the
	// prober goroutine. retryBase seeds the backoff ladder; jitter is the
	// store's own seeded source so retry timing is reproducible under a
	// fixed Config.JitterSeed.
	failureThreshold int
	probeInterval    time.Duration
	retryBase        time.Duration
	jitterMu         sync.Mutex
	jitter           *rand.Rand
	breakerMu        sync.Mutex
	consecFails      int
	degraded         atomic.Bool
	breakerTrips     atomic.Int64
	retries          atomic.Int64
	probeKick        chan struct{}

	kick      chan struct{} // signals the evictor that bytes may exceed maxBytes
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	// observer receives per-operation wall-clock latencies (SetObserver).
	observer atomic.Pointer[func(Op, time.Duration)]
}

// Config parameterizes OpenConfig. Zero values select the documented
// defaults.
type Config struct {
	// Dir is the backing directory (required).
	Dir string
	// MaxBytes LRU-bounds the total on-disk bytes; <= 0 means unbounded.
	MaxBytes int64
	// FS overrides the filesystem seam; nil selects OSFS. Resilience tests
	// inject internal/injectfs here to script disk faults.
	FS FS
	// FailureThreshold is how many consecutive failed operations trip the
	// breaker into memory-only mode (default 3).
	FailureThreshold int
	// ProbeInterval is how often the background probe re-tests a degraded
	// disk (default 2s). Tests shorten it to observe re-arming quickly.
	ProbeInterval time.Duration
	// RetryBaseDelay is the first backoff delay of the transient-I/O retry
	// ladder (default 2ms). Any positive value is accepted — sub-nanosecond
	// jitter ranges are handled, not panicked on.
	RetryBaseDelay time.Duration
	// JitterSeed seeds the retry-jitter randomness so fault-injected runs
	// replay deterministically (chaos suites pass CHAOS_SEED through here).
	// Zero seeds from the clock.
	JitterSeed int64
}

// Op names a store operation for the latency observer.
type Op string

// Observable store operations.
const (
	OpGet Op = "get"
	OpPut Op = "put"
)

// SetObserver installs (or, with nil, removes) a hook receiving the
// wall-clock latency of every Get and Put — disk I/O plus codec time, the
// number an operator needs to see when the disk tier goes slow. The hook
// must be safe for concurrent use; ftserve feeds concurrent histograms.
func (s *Store) SetObserver(f func(op Op, d time.Duration)) {
	if f == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&f)
}

// observe reports one finished operation to the observer, if any. Used as
// `defer s.observe(op, time.Now())`.
func (s *Store) observe(op Op, start time.Time) {
	if p := s.observer.Load(); p != nil {
		(*p)(op, time.Since(start))
	}
}

// Healthy probes the store for liveness: the backing directory must exist
// and accept a (tiny, immediately removed) write. The probe file carries
// tmpExt so a crash mid-probe is cleaned up by the next Open like any
// interrupted write. The probe goes through the FS seam, so injected faults
// fail it like any real disk fault would.
func (s *Store) Healthy() error {
	f, err := s.fs.CreateTemp(s.dir, "healthz"+tmpExt+"*")
	if err != nil {
		return fmt.Errorf("store: health probe: %w", err)
	}
	name := f.Name()
	_, werr := f.WriteString("ok")
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	_ = s.fs.Remove(name)
	if werr != nil {
		return fmt.Errorf("store: health probe: %w", werr)
	}
	return nil
}

type fileEntry struct {
	name string
	size int64
	// gen is bumped on every replacement Put; Get uses it to avoid
	// quarantining a file that was rewritten while it read the old bytes.
	gen int64
}

// Open creates dir if needed, indexes the records already in it (most
// recently modified = most recently used, so LRU order survives restarts),
// deletes temp files left by interrupted writes, and starts the background
// evictor. maxBytes <= 0 disables the byte bound.
func Open(dir string, maxBytes int64) (*Store, error) {
	return OpenConfig(Config{Dir: dir, MaxBytes: maxBytes})
}

// OpenConfig is Open with the full configuration surface: filesystem seam,
// breaker threshold, and probe interval.
func OpenConfig(cfg Config) (*Store, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = defaultFailureThreshold
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.RetryBaseDelay <= 0 {
		cfg.RetryBaseDelay = retryBaseDelay
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = time.Now().UnixNano()
	}
	dir := cfg.Dir
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type scanned struct {
		fileEntry
		mtime time.Time
	}
	var found []scanned
	type corruptScanned struct {
		name  string
		mtime time.Time
	}
	var corruptFound []corruptScanned
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := de.Name()
		if strings.Contains(name, tmpExt) {
			// Leftover from a write interrupted by a crash; the rename never
			// happened, so the record it would have replaced is still intact.
			_ = fsys.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, corruptExt) {
			if info, err := de.Info(); err == nil {
				corruptFound = append(corruptFound, corruptScanned{name, info.ModTime()})
			}
			continue
		}
		if !strings.HasSuffix(name, fileExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		found = append(found, scanned{fileEntry{name: name, size: info.Size()}, info.ModTime()})
	}
	// Mtime orders the reopened LRU, with the file name as a stable
	// tie-break: records written within one clock tick (bulk anti-entropy
	// imports, coarse-mtime filesystems) would otherwise reopen in whatever
	// order the unstable sort left them, making eviction nondeterministic
	// across restarts of the same directory.
	sort.Slice(found, func(i, j int) bool {
		if !found[i].mtime.Equal(found[j].mtime) {
			return found[i].mtime.Before(found[j].mtime)
		}
		return found[i].name < found[j].name
	})
	sort.Slice(corruptFound, func(i, j int) bool {
		if !corruptFound[i].mtime.Equal(corruptFound[j].mtime) {
			return corruptFound[i].mtime.Before(corruptFound[j].mtime)
		}
		return corruptFound[i].name < corruptFound[j].name
	})

	s := &Store{
		dir:              dir,
		maxBytes:         cfg.MaxBytes,
		fs:               fsys,
		failureThreshold: cfg.FailureThreshold,
		probeInterval:    cfg.ProbeInterval,
		retryBase:        cfg.RetryBaseDelay,
		jitter:           rand.New(rand.NewSource(cfg.JitterSeed)),
		probeKick:        make(chan struct{}, 1),
		ll:               list.New(),
		files:            make(map[string]*list.Element, len(found)),
		kick:             make(chan struct{}, 1),
		done:             make(chan struct{}),
	}
	for i := range found {
		e := found[i].fileEntry
		s.files[e.name] = s.ll.PushFront(&e) // ascending mtime: newest ends up at the front
		s.bytes += e.size
	}
	// Earlier quarantines carry over into the retention window (and are
	// trimmed to it right away).
	for _, c := range corruptFound {
		s.noteCorruptLocked(c.name)
	}
	s.wg.Add(2)
	go s.evictor()
	go s.prober()
	s.signalEvictor() // the indexed backlog may already exceed the bound
	return s, nil
}

// Close stops the background evictor; it is idempotent. Records stay on
// disk.
func (s *Store) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

// fileName maps a build key to its record's base filename: the hex SHA-256
// of the key, so arbitrary key strings become safe fixed-length names.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + fileExt
}

// Get returns the stored record for key, or ok=false on a miss. A file that
// fails to decode, or decodes to a different key (hash collision or a
// misplaced file), is quarantined and reported as a miss — corrupt data is
// never served.
//
// The disk read happens outside the store lock so concurrent gets, puts,
// metrics, and eviction do not serialize behind file I/O. A record
// replaced by Put while being read is harmless either way: records are
// fully determined by their key, so any valid bytes under this name
// decode to the same result, and a failed read only quarantines the file
// if it was NOT rewritten in between (generation check).
func (s *Store) Get(key string) (*Record, bool) {
	defer s.observe(OpGet, time.Now())
	if s.degraded.Load() {
		// Breaker open: memory-only mode, the disk is left alone.
		s.misses.Add(1)
		return nil, false
	}
	name := fileName(key)
	path := filepath.Join(s.dir, name)
	s.mu.Lock()
	el, ok := s.files[name]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	gen := el.Value.(*fileEntry).gen
	s.mu.Unlock()

	var data []byte
	readErr := s.withRetry(func() error {
		var err error
		data, err = s.fs.ReadFile(path)
		return err
	})
	err := readErr
	var rec *Record
	if err == nil {
		rec, err = Decode(data)
		if err == nil && rec.Key != key {
			err = corruptf("record key %q does not match requested key", rec.Key)
		}
	}

	s.mu.Lock()
	el, ok = s.files[name]
	if !ok { // evicted or quarantined while we read
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	if err != nil {
		if el.Value.(*fileEntry).gen == gen {
			switch {
			case os.IsNotExist(err):
				// Vanished under us (external deletion): nothing to rename.
				s.dropLocked(name, el)
			case err == readErr:
				// The disk failed before any bytes could be judged: that is
				// an I/O fault for the breaker, not corruption to
				// quarantine — the record may be perfectly fine once the
				// disk recovers.
				s.dropLocked(name, el)
			default:
				s.quarantineLocked(name, el)
			}
		}
		s.mu.Unlock()
		s.misses.Add(1)
		if err == readErr && !os.IsNotExist(err) {
			s.opFailed()
		}
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.mu.Unlock()
	// Best-effort mtime bump so the on-disk LRU order survives a restart.
	now := time.Now()
	_ = s.fs.Chtimes(path, now, now)
	s.opSucceeded()
	s.hits.Add(1)
	return rec, true
}

// Put durably stores rec, replacing any previous record for its key: the
// encoding is written to a temp file in the same directory, synced, and
// renamed over the final name, so readers and crash recovery only ever see
// a complete record or none.
func (s *Store) Put(rec *Record) error {
	defer s.observe(OpPut, time.Now())
	if s.degraded.Load() {
		// Breaker open: drop the write without touching the disk. The
		// caller already treats persistence as best-effort.
		return ErrDegraded
	}
	data := Encode(rec)
	name := fileName(rec.Key)
	final := filepath.Join(s.dir, name)

	// The temp-file phase (create, write, sync, close) happens outside s.mu
	// and is where transient disk errors are worth retrying; each failed
	// attempt removes its temp file so retries never leak files.
	var tmpName string
	err := s.withRetry(func() error {
		tmp, err := s.fs.CreateTemp(s.dir, name+tmpExt+"*")
		if err != nil {
			return err
		}
		if _, err = tmp.Write(data); err == nil {
			err = tmp.Sync()
		} else {
			_ = tmp.Sync()
		}
		if cerr := tmp.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			_ = s.fs.Remove(tmp.Name())
			return err
		}
		tmpName = tmp.Name()
		return nil
	})
	if err != nil {
		s.writeErrors.Add(1)
		s.opFailed()
		return fmt.Errorf("store: %w", err)
	}

	size := int64(len(data))
	s.mu.Lock()
	// The rename happens under s.mu so it is atomic with the index update:
	// otherwise a concurrent evictor or quarantine acting on the stale
	// entry for this name could delete the fresh file before it is
	// re-indexed, silently losing the write. It is deliberately single-try:
	// retrying with backoff while holding s.mu would stall every store
	// operation behind a failing disk.
	if err := s.fs.Rename(tmpName, final); err != nil {
		s.mu.Unlock()
		_ = s.fs.Remove(tmpName)
		s.writeErrors.Add(1)
		s.opFailed()
		return fmt.Errorf("store: %w", err)
	}
	if el, ok := s.files[name]; ok {
		e := el.Value.(*fileEntry)
		s.bytes += size - e.size
		e.size = size
		e.gen++
		s.ll.MoveToFront(el)
	} else {
		s.files[name] = s.ll.PushFront(&fileEntry{name: name, size: size})
		s.bytes += size
	}
	over := s.maxBytes > 0 && s.bytes > s.maxBytes
	s.mu.Unlock()
	// Fsync the directory so the rename itself survives power loss, not
	// just process death — without it the record's directory entry may
	// still be unflushed when Put returns. Best-effort: a failure leaves
	// the record readable in this process and merely weakens crash
	// durability, like every pre-rename state.
	_ = s.fs.SyncDir(s.dir)
	s.opSucceeded()
	s.writes.Add(1)
	if over {
		s.signalEvictor()
	}
	return nil
}

// Quarantine marks key's record as corrupt on the caller's behalf — used
// when an integrity check above the codec (e.g. a reconstructed-spanner
// digest mismatch) rejects a record that decoded cleanly. The preceding
// Get counted a hit for a record that was not actually servable, so the
// hit is reclassified as a miss.
func (s *Store) Quarantine(key string) {
	name := fileName(key)
	s.mu.Lock()
	if el, ok := s.files[name]; ok {
		s.quarantineLocked(name, el)
	}
	s.mu.Unlock()
	s.hits.Add(-1)
	s.misses.Add(1)
}

// quarantineLocked renames the file to name+".corrupt" (preserving it for
// inspection, out of the live set, bounded by maxCorruptFiles) and drops
// it from the index. Caller holds s.mu.
func (s *Store) quarantineLocked(name string, el *list.Element) {
	path := filepath.Join(s.dir, name)
	if err := s.fs.Rename(path, path+corruptExt); err != nil {
		_ = s.fs.Remove(path) // rename failed; at least stop serving it
	} else {
		s.noteCorruptLocked(name + corruptExt)
	}
	s.dropLocked(name, el)
	s.corrupt.Add(1)
}

// noteCorruptLocked records a quarantined file name and deletes the
// oldest quarantined files beyond the retention cap. Caller holds s.mu.
func (s *Store) noteCorruptLocked(name string) {
	for _, existing := range s.corruptFiles {
		if existing == name {
			return // re-quarantine of the same slot overwrote the old file
		}
	}
	s.corruptFiles = append(s.corruptFiles, name)
	for len(s.corruptFiles) > maxCorruptFiles {
		_ = s.fs.Remove(filepath.Join(s.dir, s.corruptFiles[0]))
		s.corruptFiles = s.corruptFiles[1:]
	}
}

// dropLocked removes an index entry without touching the file. Caller holds
// s.mu.
func (s *Store) dropLocked(name string, el *list.Element) {
	s.ll.Remove(el)
	delete(s.files, name)
	s.bytes -= el.Value.(*fileEntry).size
}

func (s *Store) signalEvictor() {
	select {
	case s.kick <- struct{}{}:
	default: // a sweep is already pending
	}
}

// evictor is the background goroutine that trims the store back under
// maxBytes after writes push it over.
func (s *Store) evictor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.evictOnce()
		}
	}
}

// evictOnce removes least-recently-used records until the total is back
// under the byte bound, returning how many files it deleted.
func (s *Store) evictOnce() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for s.maxBytes > 0 && s.bytes > s.maxBytes && s.ll.Len() > 0 {
		el := s.ll.Back()
		e := el.Value.(*fileEntry)
		_ = s.fs.Remove(filepath.Join(s.dir, e.name))
		s.dropLocked(e.name, el)
		s.evictions.Add(1)
		s.evictedBytes.Add(e.size)
		evicted++
	}
	return evicted
}

// RecordInfo describes one live record file, as advertised to fleet peers
// for anti-entropy pulls.
type RecordInfo struct {
	// Name is the record's base file name (hex SHA-256 of its key + ".ftr").
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// List snapshots the live record set, most recently used first. The listing
// is what a replica advertises to peers; pulling is driven from the hot end
// so a budgeted sweep warms the most valuable records first.
func (s *Store) List() []RecordInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]RecordInfo, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*fileEntry)
		infos = append(infos, RecordInfo{Name: e.name, Size: e.size})
	}
	return infos
}

// HasFile reports whether the named record file is in the live index — the
// cheap membership test an anti-entropy sweep runs before pulling bytes.
func (s *Store) HasFile(name string) bool {
	s.mu.Lock()
	_, ok := s.files[name]
	s.mu.Unlock()
	return ok
}

// ExportRaw returns the encoded bytes of a live record by base file name, for
// serving to a fleet peer. The name must be in the live index (which also
// makes it a safe path component — index names are fileName outputs, never
// client-supplied paths). ok=false covers both unknown names and a degraded
// store.
func (s *Store) ExportRaw(name string) (data []byte, ok bool) {
	if s.degraded.Load() {
		return nil, false
	}
	if !s.HasFile(name) {
		return nil, false
	}
	err := s.withRetry(func() error {
		var rerr error
		data, rerr = s.fs.ReadFile(filepath.Join(s.dir, name))
		return rerr
	})
	if err != nil {
		if !os.IsNotExist(err) {
			s.opFailed()
		}
		return nil, false
	}
	s.opSucceeded()
	return data, true
}

// ImportEncoded ingests one encoded record pulled from a peer: the bytes are
// decoded through the same CRC-checked codec every local read uses, so a
// torn or tampered pull is rejected (wrapping ErrCorrupt) before anything
// touches the disk — blind pulls are safe. A record already present is
// skipped (imported=false); otherwise it is written through Put, inheriting
// atomic-rename durability and the byte-bound evictor.
func (s *Store) ImportEncoded(data []byte) (key string, imported bool, err error) {
	rec, err := Decode(data)
	if err != nil {
		return "", false, err
	}
	name := fileName(rec.Key)
	if s.HasFile(name) {
		return rec.Key, false, nil
	}
	if err := s.Put(rec); err != nil {
		return rec.Key, false, err
	}
	return rec.Key, true, nil
}

// Metrics is a point-in-time snapshot of the store's counters and gauges.
type Metrics struct {
	Entries      int   `json:"entries"`
	Bytes        int64 `json:"bytes"`
	MaxBytes     int64 `json:"max_bytes"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Writes       int64 `json:"writes"`
	WriteErrors  int64 `json:"write_errors"`
	CorruptTotal int64 `json:"corrupt_total"`
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	// Degraded-mode state (see degrade.go).
	Degraded     bool  `json:"degraded"`
	Retries      int64 `json:"retries"`
	BreakerTrips int64 `json:"breaker_trips"`
	// Quarantined lists the currently retained .corrupt file names, newest
	// last (capped at maxCorruptFiles).
	Quarantined []string `json:"quarantined,omitempty"`
}

// Snapshot returns the store's current metrics.
func (s *Store) Snapshot() Metrics {
	s.mu.Lock()
	entries, bytes := s.ll.Len(), s.bytes
	quarantined := append([]string(nil), s.corruptFiles...)
	s.mu.Unlock()
	return Metrics{
		Entries:      entries,
		Bytes:        bytes,
		MaxBytes:     s.maxBytes,
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Writes:       s.writes.Load(),
		WriteErrors:  s.writeErrors.Load(),
		CorruptTotal: s.corrupt.Load(),
		Evictions:    s.evictions.Load(),
		EvictedBytes: s.evictedBytes.Load(),
		Degraded:     s.degraded.Load(),
		Retries:      s.retries.Load(),
		BreakerTrips: s.breakerTrips.Load(),
		Quarantined:  quarantined,
	}
}
