package spanner

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// BaswanaSen builds a (2k-1)-spanner with expected size O(k·n^{1+1/k}) using
// the randomized clustering algorithm of Baswana and Sen (2007). It runs in
// near-linear time, which is why the DK-style sampling baseline uses it as
// its black-box spanner on every sampled subgraph.
//
// k must be >= 1; k == 1 returns the whole graph (stretch 1).
func BaswanaSen(g *graph.Graph, k int, rng *rand.Rand) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("spanner: baswana-sen needs k >= 1, got %d", k)
	}
	n := g.NumVertices()
	res := &Result{Spanner: graph.New(n)}
	if k == 1 {
		for _, e := range g.Edges() {
			res.Spanner.MustAddEdge(e.U, e.V, e.Weight)
			res.Kept = append(res.Kept, e.ID)
		}
		return res, nil
	}

	added := make([]bool, g.NumEdges()) // edge already in the spanner
	alive := make([]bool, g.NumEdges()) // edge still under consideration
	cluster := make([]int, n)           // cluster id per vertex, -1 = retired
	sampleP := math.Pow(float64(n), -1.0/float64(k))
	addEdge := func(e graph.Edge) {
		if !added[e.ID] {
			added[e.ID] = true
			res.Spanner.MustAddEdge(e.U, e.V, e.Weight)
			res.Kept = append(res.Kept, e.ID)
		}
	}
	for i := range alive {
		alive[i] = true
	}
	for v := range cluster {
		cluster[v] = v // singleton clusters; cluster id = original center
	}

	// lightest caches, per vertex scan, the lightest alive edge into each
	// neighboring cluster (keyed by the *old* cluster id for the round).
	lightest := make(map[int]graph.Edge, 8)
	clearLightest := func() {
		for c := range lightest {
			delete(lightest, c)
		}
	}
	scanNeighborClusters := func(v int) {
		clearLightest()
		for _, arc := range g.Neighbors(v) {
			if !alive[arc.ID] {
				continue
			}
			c := cluster[arc.To]
			if c < 0 || c == cluster[v] {
				continue
			}
			e := g.Edge(arc.ID)
			if best, ok := lightest[c]; !ok || less(e, best) {
				lightest[c] = e
			}
		}
	}

	// Phase 1: k-1 rounds of cluster sampling.
	for round := 1; round <= k-1; round++ {
		sampled := make(map[int]bool)
		for v := 0; v < n; v++ {
			if c := cluster[v]; c >= 0 {
				if _, decided := sampled[c]; !decided {
					sampled[c] = rng.Float64() < sampleP
				}
			}
		}

		newCluster := make([]int, n)
		copy(newCluster, cluster)
		for v := 0; v < n; v++ {
			if cluster[v] < 0 || sampled[cluster[v]] {
				continue // retired, or cluster survives with v in it
			}
			scanNeighborClusters(v)

			// Lightest edge into a sampled neighbor cluster, if any.
			var (
				bestSampled graph.Edge
				haveSampled bool
			)
			for c, e := range lightest {
				if sampled[c] && (!haveSampled || less(e, bestSampled)) {
					bestSampled, haveSampled = e, true
				}
			}

			if !haveSampled {
				// No sampled neighbor: keep the lightest edge to every
				// neighbor cluster, then retire v with all its edges.
				for _, e := range lightest {
					addEdge(e)
				}
				for _, arc := range g.Neighbors(v) {
					alive[arc.ID] = false
				}
				newCluster[v] = -1
				continue
			}

			// Join the sampled cluster via its lightest edge; also keep the
			// lightest edge to every strictly lighter neighbor cluster, and
			// drop all edges into those clusters and the joined one.
			joined := cluster[bestSampled.Other(v)]
			addEdge(bestSampled)
			newCluster[v] = joined
			for c, e := range lightest {
				if c != joined && less(e, bestSampled) {
					addEdge(e)
				}
			}
			for _, arc := range g.Neighbors(v) {
				if !alive[arc.ID] {
					continue
				}
				c := cluster[arc.To]
				if c < 0 || c == cluster[v] {
					continue
				}
				if c == joined || less(lightest[c], bestSampled) {
					alive[arc.ID] = false
				}
			}
		}
		cluster = newCluster

		// Remove edges that became intra-cluster.
		for _, e := range g.Edges() {
			if alive[e.ID] && cluster[e.U] >= 0 && cluster[e.U] == cluster[e.V] {
				alive[e.ID] = false
			}
		}
	}

	// Phase 2: every vertex keeps its lightest alive edge into each
	// remaining cluster.
	for v := 0; v < n; v++ {
		scanNeighborClusters(v)
		for _, e := range lightest {
			addEdge(e)
		}
	}
	return res, nil
}

// less orders edges by (weight, ID); the deterministic tie-break keeps the
// construction reproducible under a fixed seed.
func less(a, b graph.Edge) bool {
	if a.Weight != b.Weight {
		return a.Weight < b.Weight
	}
	return a.ID < b.ID
}
