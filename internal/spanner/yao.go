package spanner

import (
	"fmt"
	"math"
	"sort"

	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// YaoGraph builds the Yao graph on a point set: around every point the
// plane is split into `cones` equal angular sectors, and the point connects
// to its nearest neighbor inside each sector (edges weighted by Euclidean
// distance). For cones > 6 the result is a geometric t-spanner of the
// complete Euclidean graph with t = 1/(1 - 2·sin(π/cones)).
//
// This is the classical construction behind the geometric fault-tolerant
// spanners the paper cites ([23] Levcopoulos–Narasimhan–Smid, [14]
// Czumaj–Zhao); YaoGraphFT generalizes it to fault tolerance.
func YaoGraph(pts []gen.Point, cones int) (*graph.Graph, error) {
	return YaoGraphFT(pts, cones, 0)
}

// YaoGraphFT is the fault-tolerant Yao construction: every point connects
// to its f+1 nearest neighbors in each cone (Lukovszki's Θ-graph idea:
// after any f vertex failures, each cone still offers a surviving nearest
// neighbor, so the spanner argument goes through on the survivors). The
// repository treats its fault tolerance as an empirically verified
// property — tests check it with the same machinery as the greedy.
func YaoGraphFT(pts []gen.Point, cones, f int) (*graph.Graph, error) {
	if cones < 1 {
		return nil, fmt.Errorf("spanner: yao needs >= 1 cone, got %d", cones)
	}
	if f < 0 {
		return nil, fmt.Errorf("spanner: yao needs f >= 0, got %d", f)
	}
	n := len(pts)
	g := graph.New(n)
	type candidate struct {
		dist float64
		to   int
	}
	sector := make(map[int][]candidate, cones)
	for p := 0; p < n; p++ {
		for c := range sector {
			delete(sector, c)
		}
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			d := pts[p].Dist(pts[q])
			if d == 0 {
				// Coincident points live in every cone conceptually; put
				// them in cone 0 so they still get connected.
				sector[0] = append(sector[0], candidate{dist: 0, to: q})
				continue
			}
			angle := math.Atan2(pts[q].Y-pts[p].Y, pts[q].X-pts[p].X)
			if angle < 0 {
				angle += 2 * math.Pi
			}
			cone := int(angle / (2 * math.Pi / float64(cones)))
			if cone >= cones { // guard against floating-point edge at 2π
				cone = cones - 1
			}
			sector[cone] = append(sector[cone], candidate{dist: d, to: q})
		}
		for _, cands := range sector {
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].dist != cands[j].dist {
					return cands[i].dist < cands[j].dist
				}
				return cands[i].to < cands[j].to
			})
			limit := f + 1
			if limit > len(cands) {
				limit = len(cands)
			}
			for _, cand := range cands[:limit] {
				if !g.HasEdge(p, cand.to) && cand.dist > 0 {
					g.MustAddEdge(p, cand.to, cand.dist)
				}
			}
		}
	}
	return g, nil
}

// YaoStretchBound returns the worst-case stretch guarantee of the Yao graph
// with the given cone count (+Inf when cones <= 6, where no bound holds).
func YaoStretchBound(cones int) float64 {
	if cones <= 6 {
		return math.Inf(1)
	}
	s := 2 * math.Sin(math.Pi/float64(cones))
	return 1 / (1 - s)
}
