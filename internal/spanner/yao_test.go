package spanner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
	"github.com/ftspanner/ftspanner/internal/verify"
)

// completeEuclidean returns the complete graph on pts weighted by distance.
func completeEuclidean(pts []gen.Point) *graph.Graph {
	g := graph.New(len(pts))
	for u := range pts {
		for v := u + 1; v < len(pts); v++ {
			if d := pts[u].Dist(pts[v]); d > 0 {
				g.MustAddEdge(u, v, d)
			}
		}
	}
	return g
}

func randomPoints(n int, rng *rand.Rand) []gen.Point {
	pts := make([]gen.Point, n)
	for i := range pts {
		pts[i] = gen.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func TestYaoArgumentChecks(t *testing.T) {
	pts := randomPoints(5, rand.New(rand.NewSource(1)))
	if _, err := YaoGraph(pts, 0); err == nil {
		t.Error("cones=0 should error")
	}
	if _, err := YaoGraphFT(pts, 8, -1); err == nil {
		t.Error("f<0 should error")
	}
}

func TestYaoStretchBound(t *testing.T) {
	if !math.IsInf(YaoStretchBound(6), 1) {
		t.Error("no bound at 6 cones")
	}
	// 12 cones: 1/(1-2 sin 15°) ≈ 2.074.
	if b := YaoStretchBound(12); math.Abs(b-2.0738) > 0.001 {
		t.Errorf("bound(12) = %v", b)
	}
	// More cones, tighter bound.
	if YaoStretchBound(18) >= YaoStretchBound(12) {
		t.Error("bound should shrink with more cones")
	}
}

func TestYaoGraphIsGeometricSpanner(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randomPoints(80, rng)
	const cones = 12
	y, err := YaoGraph(pts, cones)
	if err != nil {
		t.Fatal(err)
	}
	full := completeEuclidean(pts)
	if y.NumEdges() >= full.NumEdges() {
		t.Error("yao graph failed to sparsify")
	}
	// Per-edge certificate against the complete Euclidean graph.
	bound := YaoStretchBound(cones)
	solver := sssp.NewSolver(full.NumVertices())
	for _, e := range full.Edges() {
		if err := solver.RunTarget(y, e.U, e.V, sssp.Options{}); err != nil {
			t.Fatal(err)
		}
		if d := solver.Dist(e.V); d > bound*e.Weight+1e-9 {
			t.Fatalf("pair (%d,%d): stretch %v > bound %v", e.U, e.V, d/e.Weight, bound)
		}
	}
	// Sparsity: at most cones edges per vertex (each vertex initiates <=
	// one edge per cone; both endpoints may initiate).
	if y.NumEdges() > cones*y.NumVertices() {
		t.Errorf("yao graph too dense: %d edges", y.NumEdges())
	}
}

func TestYaoGraphFTFaultTolerance(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive fault-tolerance check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(60, rng)
	const cones, f = 12, 2
	y, err := YaoGraphFT(pts, cones, f)
	if err != nil {
		t.Fatal(err)
	}
	full := completeEuclidean(pts)
	// Map yao edges onto the complete graph's IDs for verification.
	kept := make([]int, y.NumEdges())
	for _, e := range y.Edges() {
		ge, ok := full.EdgeBetween(e.U, e.V)
		if !ok {
			t.Fatalf("yao edge (%d,%d) missing from complete graph", e.U, e.V)
		}
		kept[e.ID] = ge.ID
	}
	inst, err := verify.NewInstance(full, y, kept)
	if err != nil {
		t.Fatal(err)
	}
	// The FT Yao graph should tolerate f vertex faults at the Yao bound
	// (empirical check: randomized + adversarial).
	bound := YaoStretchBound(cones)
	if err := inst.RandomCheck(bound, fault.Vertices, f, 120, rng); err != nil {
		t.Errorf("random fault check: %v", err)
	}
	if err := inst.AdversarialCheck(bound, fault.Vertices, f, 40, rng); err != nil {
		t.Errorf("adversarial fault check: %v", err)
	}
	// The FT variant must be denser than the plain one.
	plain, err := YaoGraph(pts, cones)
	if err != nil {
		t.Fatal(err)
	}
	if y.NumEdges() <= plain.NumEdges() {
		t.Error("FT yao graph should have more edges")
	}
}

func TestYaoCoincidentPoints(t *testing.T) {
	// Coincident points must not create zero-weight or self edges.
	pts := []gen.Point{{X: 0.5, Y: 0.5}, {X: 0.5, Y: 0.5}, {X: 0.1, Y: 0.1}}
	y, err := YaoGraph(pts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range y.Edges() {
		if e.Weight <= 0 {
			t.Errorf("edge %v has non-positive weight", e)
		}
	}
}

func TestQuickYaoSpannerProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pts := randomPoints(15+rng.Intn(25), rng)
		cones := 8 + rng.Intn(8)
		y, err := YaoGraph(pts, cones)
		if err != nil {
			return false
		}
		full := completeEuclidean(pts)
		bound := YaoStretchBound(cones)
		solver := sssp.NewSolver(full.NumVertices())
		for _, e := range full.Edges() {
			if err := solver.RunTarget(y, e.U, e.V, sssp.Options{}); err != nil {
				return false
			}
			if solver.Dist(e.V) > bound*e.Weight+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
