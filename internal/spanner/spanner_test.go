package spanner

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// maxEdgeStretch returns the maximum over edges (u,v) of G of
// dist_H(u,v)/w(u,v). By the per-edge certificate lemma this equals the
// spanner stretch of H for G.
func maxEdgeStretch(t *testing.T, g, h *graph.Graph) float64 {
	t.Helper()
	solver := sssp.NewSolver(g.NumVertices())
	worst := 0.0
	for _, e := range g.Edges() {
		if err := solver.RunTarget(h, e.U, e.V, sssp.Options{}); err != nil {
			t.Fatalf("solver: %v", err)
		}
		d := solver.Dist(e.V)
		if math.IsInf(d, 1) {
			return math.Inf(1)
		}
		if s := d / e.Weight; s > worst {
			worst = s
		}
	}
	return worst
}

func TestGreedyStretchInvalid(t *testing.T) {
	if _, err := Greedy(gen.Complete(4), 0.5); err == nil {
		t.Error("stretch < 1 should error")
	}
}

func TestGreedyStretchOneKeepsShortestEdges(t *testing.T) {
	// With t=1 the greedy keeps an edge iff no equally-short path already
	// exists; on a unit-weight complete graph it keeps a spanning structure
	// preserving all distances exactly.
	g := gen.Complete(6)
	res, err := Greedy(g, 1)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if got := maxEdgeStretch(t, g, res.Spanner); got > 1 {
		t.Errorf("stretch = %v, want <= 1", got)
	}
	// Unit-weight K6 at stretch 1: every edge is its own unique shortest
	// path, so everything is kept.
	if res.Spanner.NumEdges() != g.NumEdges() {
		t.Errorf("t=1 on K6 kept %d edges, want %d", res.Spanner.NumEdges(), g.NumEdges())
	}
}

func TestGreedyCompleteGraphStretch3(t *testing.T) {
	g := gen.Complete(20)
	res, err := Greedy(g, 3)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if got := maxEdgeStretch(t, g, res.Spanner); got > 3 {
		t.Errorf("stretch = %v, want <= 3", got)
	}
	// Unit-weight K20 at stretch 3: greedy output has girth > 4, so by the
	// Moore bound it is far from complete; and it must be connected.
	if res.Spanner.NumEdges() >= g.NumEdges() {
		t.Error("greedy failed to sparsify K20")
	}
	if !res.Spanner.IsConnected() {
		t.Error("spanner of a connected graph must be connected")
	}
}

func TestGreedyGirthProperty(t *testing.T) {
	// Classical fact: the greedy t-spanner has girth > t+1 (for integer t
	// and any weights): both endpoints of the closing edge of any short
	// cycle would have been within stretch via the rest of the cycle.
	rng := rand.New(rand.NewSource(1))
	g, err := gen.ConnectedGNM(40, 200, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, stretch := range []int{1, 3, 5} {
		res, err := Greedy(g, float64(stretch))
		if err != nil {
			t.Fatalf("Greedy(%d): %v", stretch, err)
		}
		if gg := girth.Girth(res.Spanner); gg <= stretch+1 {
			t.Errorf("stretch %d: spanner girth = %d, want > %d", stretch, gg, stretch+1)
		}
	}
}

func TestGreedyKeptMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base, err := gen.ConnectedGNM(30, 120, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Greedy(g, 2)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	if len(res.Kept) != res.Spanner.NumEdges() {
		t.Fatalf("Kept has %d entries for %d spanner edges", len(res.Kept), res.Spanner.NumEdges())
	}
	for sid, gid := range res.Kept {
		se, ge := res.Spanner.Edge(sid), g.Edge(gid)
		if se.Weight != ge.Weight {
			t.Fatalf("weight mismatch: spanner %v vs input %v", se, ge)
		}
		su, sv := se.Endpoints()
		gu, gv := ge.Endpoints()
		if su != gu || sv != gv {
			t.Fatalf("endpoint mismatch: spanner %v vs input %v", se, ge)
		}
	}
	kb := res.KeptBool(g.NumEdges())
	cnt := 0
	for _, b := range kb {
		if b {
			cnt++
		}
	}
	if cnt != len(res.Kept) {
		t.Error("KeptBool disagrees with Kept")
	}
}

func TestQuickGreedyIsSpanner(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		m := (n - 1) + rng.Intn(n*(n-1)/2-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 3, rng)
		if err != nil {
			return false
		}
		stretch := []float64{1, 1.5, 3, 5}[rng.Intn(4)]
		res, err := Greedy(g, stretch)
		if err != nil {
			return false
		}
		return maxEdgeStretch(t, g, res.Spanner) <= stretch+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBaswanaSenInvalidK(t *testing.T) {
	if _, err := BaswanaSen(gen.Complete(4), 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("k=0 should error")
	}
}

func TestBaswanaSenK1IsIdentity(t *testing.T) {
	g := gen.Complete(7)
	res, err := BaswanaSen(g, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.NumEdges() != g.NumEdges() {
		t.Errorf("k=1 kept %d of %d edges", res.Spanner.NumEdges(), g.NumEdges())
	}
}

func TestBaswanaSenStretchOnCompleteGraph(t *testing.T) {
	g := gen.Complete(40)
	for _, k := range []int{2, 3} {
		res, err := BaswanaSen(g, k, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatalf("BaswanaSen(k=%d): %v", k, err)
		}
		bound := float64(2*k - 1)
		if got := maxEdgeStretch(t, g, res.Spanner); got > bound {
			t.Errorf("k=%d: stretch %v > %v", k, got, bound)
		}
	}
}

func TestBaswanaSenSparsifies(t *testing.T) {
	// On K64 with k=2 the expected size is O(n^{1.5}); complete is n²/2.
	g := gen.Complete(64)
	res, err := BaswanaSen(g, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	nf := float64(g.NumVertices())
	limit := 6 * nf * math.Sqrt(nf) // generous constant over n^{1.5}
	if float64(res.Spanner.NumEdges()) > limit {
		t.Errorf("k=2 spanner of K64 has %d edges, want <= %v", res.Spanner.NumEdges(), limit)
	}
	if res.Spanner.NumEdges() >= g.NumEdges() {
		t.Error("failed to sparsify at all")
	}
}

func TestQuickBaswanaSenIsSpanner(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		m := (n - 1) + rng.Intn(n*(n-1)/2-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 4, rng)
		if err != nil {
			return false
		}
		k := 2 + rng.Intn(2)
		res, err := BaswanaSen(g, k, rng)
		if err != nil {
			return false
		}
		return maxEdgeStretch(t, g, res.Spanner) <= float64(2*k-1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBaswanaSenKeptMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.Complete(25)
	res, err := BaswanaSen(g, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != res.Spanner.NumEdges() {
		t.Fatalf("Kept/%d vs spanner edges/%d", len(res.Kept), res.Spanner.NumEdges())
	}
	seen := make(map[int]bool)
	for sid, gid := range res.Kept {
		if seen[gid] {
			t.Fatalf("input edge %d kept twice", gid)
		}
		seen[gid] = true
		if res.Spanner.Edge(sid).Weight != g.Edge(gid).Weight {
			t.Fatal("weight mismatch in mapping")
		}
	}
}

func BenchmarkGreedyStretch3(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(150, 1200, rng)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Greedy(g, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBaswanaSenK2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(300, 4000, rng)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BaswanaSen(g, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}
