// Package spanner implements classical (non-fault-tolerant) spanner
// constructions. They serve three roles in this repository: the greedy
// algorithm of Althöfer et al. is the f=0 reference point for the paper's
// fault-tolerant greedy; Baswana–Sen is the fast black-box spanner the
// sampling baseline unions together; both are floors in experiment E3.
package spanner

import (
	"fmt"

	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/sssp"
)

// Result is the output of a spanner construction over an input graph.
type Result struct {
	// Spanner is the output subgraph, on the same vertex set as the input.
	// Its edge i corresponds to input edge Kept[i] (same endpoints and
	// weight, possibly different ID).
	Spanner *graph.Graph
	// Kept lists the input edge IDs retained, in spanner edge-ID order.
	Kept []int
}

// KeptBool returns a membership slice over input edge IDs: out[id] reports
// whether the input edge id was kept. numInputEdges is the input edge count.
func (r *Result) KeptBool(numInputEdges int) []bool {
	out := make([]bool, numInputEdges)
	for _, id := range r.Kept {
		out[id] = true
	}
	return out
}

// Greedy runs the greedy t-spanner algorithm of Althöfer et al.: edges are
// scanned in increasing weight (ties by edge ID) and kept iff the spanner
// built so far has no u-v path of weight at most t·w(u,v). The output is a
// t-spanner with girth > t+1 whose size is existentially optimal.
func Greedy(g *graph.Graph, t float64) (*Result, error) {
	if t < 1 {
		return nil, fmt.Errorf("spanner: stretch must be >= 1, got %v", t)
	}
	h := graph.New(g.NumVertices())
	res := &Result{Spanner: h}
	solver := sssp.NewSolver(g.NumVertices())
	for _, e := range g.EdgesByWeight() {
		if err := solver.RunTarget(h, e.U, e.V, sssp.Options{Bound: t * e.Weight}); err != nil {
			return nil, err
		}
		if solver.Reached(e.V) {
			continue // already spanned within stretch
		}
		h.MustAddEdge(e.U, e.V, e.Weight)
		res.Kept = append(res.Kept, e.ID)
	}
	return res, nil
}
