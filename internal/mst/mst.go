// Package mst computes minimum spanning forests via Kruskal's algorithm.
//
// The MSF matters to this repository for a classical invariant: every
// greedy t-spanner (t >= 1, and in particular every fault-tolerant greedy
// output) contains a minimum spanning forest — when the greedy reaches the
// lightest edge across any cut with no prior u-v path, the distance is
// infinite and the edge is kept. Tests use this as a cross-check on the
// core algorithm, and examples use the MSF weight as the sparsity floor.
package mst

import (
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/unionfind"
)

// Kruskal returns the edge IDs of a minimum spanning forest of g, in
// increasing weight order (ties broken by edge ID, matching the greedy
// algorithms' scan order), together with its total weight.
func Kruskal(g *graph.Graph) (edgeIDs []int, totalWeight float64) {
	forest := unionfind.New(g.NumVertices())
	for _, e := range g.EdgesByWeight() {
		if forest.Union(e.U, e.V) {
			edgeIDs = append(edgeIDs, e.ID)
			totalWeight += e.Weight
		}
	}
	return edgeIDs, totalWeight
}

// Weight returns only the total weight of a minimum spanning forest.
func Weight(g *graph.Graph) float64 {
	_, w := Kruskal(g)
	return w
}
