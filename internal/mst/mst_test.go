package mst

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/spanner"
)

func TestKruskalKnown(t *testing.T) {
	// Square with one heavy diagonal: MST = three lightest edges.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)   // 0
	g.MustAddEdge(1, 2, 2)   // 1
	g.MustAddEdge(2, 3, 3)   // 2
	g.MustAddEdge(3, 0, 10)  // 3
	g.MustAddEdge(0, 2, 2.5) // 4

	ids, w := Kruskal(g)
	if len(ids) != 3 {
		t.Fatalf("MST has %d edges, want 3", len(ids))
	}
	if w != 6 {
		t.Errorf("MST weight = %v, want 6", w)
	}
	want := []int{0, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("MST edges = %v, want %v", ids, want)
		}
	}
	if Weight(g) != 6 {
		t.Error("Weight disagrees with Kruskal")
	}
}

func TestKruskalForest(t *testing.T) {
	// Two components: a spanning forest with n - #components edges.
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	g.MustAddEdge(3, 4, 2)
	ids, w := Kruskal(g)
	if len(ids) != 3 {
		t.Fatalf("forest has %d edges, want 3", len(ids))
	}
	if w != 4 {
		t.Errorf("forest weight = %v, want 4", w)
	}
}

func TestKruskalEmptyAndTrivial(t *testing.T) {
	ids, w := Kruskal(graph.New(0))
	if len(ids) != 0 || w != 0 {
		t.Error("empty graph MST should be empty")
	}
	ids, w = Kruskal(graph.New(3))
	if len(ids) != 0 || w != 0 {
		t.Error("edgeless graph MST should be empty")
	}
}

// primWeight is an independent MST implementation for cross-checking.
func primWeight(g *graph.Graph) float64 {
	n := g.NumVertices()
	inTree := make([]bool, n)
	best := make([]float64, n)
	total := 0.0
	for i := range best {
		best[i] = math.Inf(1)
	}
	for comp := 0; comp < n; comp++ {
		if inTree[comp] {
			continue
		}
		best[comp] = 0
		for {
			u, min := -1, math.Inf(1)
			for v := 0; v < n; v++ {
				if !inTree[v] && best[v] < min {
					u, min = v, best[v]
				}
			}
			if u < 0 {
				break
			}
			inTree[u] = true
			total += best[u]
			for _, arc := range g.Neighbors(u) {
				if !inTree[arc.To] && arc.Weight < best[arc.To] {
					best[arc.To] = arc.Weight
				}
			}
		}
	}
	return total
}

func TestQuickKruskalMatchesPrim(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(u, v, 0.1+rng.Float64())
				}
			}
		}
		return math.Abs(Weight(g)-primWeight(g)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGreedySpannersContainMSF: the classical invariant tying the MST
// substrate to the paper's algorithm — every (FT) greedy spanner contains a
// minimum spanning forest.
func TestQuickGreedySpannersContainMSF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		maxM := n * (n - 1) / 2
		m := (n - 1) + rng.Intn(maxM-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 2, rng) // distinct weights whp
		if err != nil {
			return false
		}
		msf, _ := Kruskal(g)

		// Plain greedy.
		plain, err := spanner.Greedy(g, 1+2*rng.Float64())
		if err != nil {
			return false
		}
		kept := plain.KeptBool(g.NumEdges())
		for _, id := range msf {
			if !kept[id] {
				return false
			}
		}
		// FT greedy (either mode).
		res, err := core.GreedyVFT(g, 3, rng.Intn(3))
		if err != nil {
			return false
		}
		for _, id := range msf {
			if !res.KeptSet.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
