package graph

import (
	"errors"
	"testing"
)

func TestMutableInsertDeleteReinsert(t *testing.T) {
	m := NewMutable(4)
	id0, err := m.Insert(0, 1, 2)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	id1, err := m.Insert(1, 2, 3)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id0 != 0 || id1 != 1 {
		t.Fatalf("IDs = %d,%d, want 0,1", id0, id1)
	}
	if m.NumEdges() != 2 || m.NumLiveEdges() != 2 {
		t.Fatalf("counts = %d/%d, want 2/2", m.NumEdges(), m.NumLiveEdges())
	}

	// Parallel live edge is still rejected.
	if _, err := m.Insert(1, 0, 5); !errors.Is(err, ErrParallelEdge) {
		t.Fatalf("parallel Insert err = %v, want ErrParallelEdge", err)
	}

	e, err := m.Delete(1, 0) // endpoint order must not matter
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if e.ID != id0 || e.Weight != 2 {
		t.Fatalf("deleted edge = %+v, want ID %d weight 2", e, id0)
	}
	if m.Live(id0) || !m.Live(id1) {
		t.Fatalf("liveness after delete: Live(%d)=%v Live(%d)=%v", id0, m.Live(id0), id1, m.Live(id1))
	}
	if m.NumEdges() != 2 || m.NumLiveEdges() != 1 {
		t.Fatalf("counts after delete = %d/%d, want 2/1", m.NumEdges(), m.NumLiveEdges())
	}

	// Double delete fails with the typed error.
	if _, err := m.Delete(0, 1); !errors.Is(err, ErrNoLiveEdge) {
		t.Fatalf("double Delete err = %v, want ErrNoLiveEdge", err)
	}

	// The pair is free again; the re-insert gets a fresh ID.
	id2, err := m.Insert(0, 1, 7)
	if err != nil {
		t.Fatalf("re-Insert: %v", err)
	}
	if id2 != 2 {
		t.Fatalf("re-insert ID = %d, want 2", id2)
	}
	if got, ok := m.LiveBetween(1, 0); !ok || got.ID != id2 || got.Weight != 7 {
		t.Fatalf("LiveBetween = %+v,%v, want ID 2 weight 7", got, ok)
	}
}

func TestMutableLiveEnumeration(t *testing.T) {
	m := NewMutable(5)
	for _, e := range [][3]float64{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 4, 4}, {0, 4, 5}} {
		if _, err := m.Insert(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	if _, err := m.Delete(1, 2); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	live := m.LiveEdges()
	wantIDs := []int{0, 2, 3, 4}
	if len(live) != len(wantIDs) {
		t.Fatalf("LiveEdges len = %d, want %d", len(live), len(wantIDs))
	}
	for i, e := range live {
		if e.ID != wantIDs[i] {
			t.Fatalf("LiveEdges[%d].ID = %d, want %d", i, e.ID, wantIDs[i])
		}
	}

	inc := m.LiveIncident(1)
	if len(inc) != 1 || inc[0].ID != 0 {
		t.Fatalf("LiveIncident(1) = %+v, want just edge 0", inc)
	}
	inc4 := m.LiveIncident(4)
	if len(inc4) != 2 {
		t.Fatalf("LiveIncident(4) = %+v, want 2 edges", inc4)
	}
}

func TestMutableMaterialize(t *testing.T) {
	m := NewMutable(4)
	m.Insert(0, 1, 3) // id 0
	m.Insert(1, 2, 1) // id 1
	m.Insert(2, 3, 2) // id 2
	m.Delete(1, 2)
	m.Insert(0, 3, 4) // id 3

	mat, ids := m.Materialize()
	if mat.NumVertices() != 4 || mat.NumEdges() != 3 {
		t.Fatalf("materialized = %d vertices %d edges, want 4/3", mat.NumVertices(), mat.NumEdges())
	}
	wantIDs := []int{0, 2, 3}
	for matID, underID := range ids {
		if underID != wantIDs[matID] {
			t.Fatalf("ids[%d] = %d, want %d", matID, underID, wantIDs[matID])
		}
		want := m.Edge(underID)
		got := mat.Edge(matID)
		if got.U != want.U || got.V != want.V || got.Weight != want.Weight {
			t.Fatalf("materialized edge %d = %+v, want endpoints of %+v", matID, got, want)
		}
	}

	// The materialized graph is independent of the Mutable.
	mat.MustAddEdge(1, 3, 9)
	if m.NumLiveEdges() != 3 {
		t.Fatalf("mutating materialized graph leaked into Mutable")
	}
}

func TestMutableCompact(t *testing.T) {
	m := NewMutable(4)
	m.Insert(0, 1, 1) // id 0
	m.Insert(1, 2, 2) // id 1
	m.Insert(2, 3, 3) // id 2
	m.Delete(0, 1)
	m.Delete(2, 3)

	if got := m.Waste(); got != 2.0/3.0 {
		t.Fatalf("Waste = %v, want 2/3", got)
	}
	remap := m.Compact()
	want := []int{-1, 0, -1}
	for i, r := range remap {
		if r != want[i] {
			t.Fatalf("remap[%d] = %d, want %d", i, r, want[i])
		}
	}
	if m.NumEdges() != 1 || m.NumLiveEdges() != 1 || m.Waste() != 0 {
		t.Fatalf("post-compact counts = %d/%d waste %v", m.NumEdges(), m.NumLiveEdges(), m.Waste())
	}
	if e, ok := m.LiveBetween(1, 2); !ok || e.ID != 0 || e.Weight != 2 {
		t.Fatalf("post-compact LiveBetween(1,2) = %+v,%v", e, ok)
	}
	// Fresh inserts keep working against the compacted arena.
	if id, err := m.Insert(0, 3, 4); err != nil || id != 1 {
		t.Fatalf("post-compact Insert = %d,%v, want 1,nil", id, err)
	}
}

func TestMutableFromGraphAndVertexGrowth(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	m := NewMutableFrom(g)
	if m.NumVertices() != 3 || m.NumLiveEdges() != 2 {
		t.Fatalf("seeded counts = %d vertices %d live", m.NumVertices(), m.NumLiveEdges())
	}

	// Deep copy: deleting in the Mutable leaves the source graph alone.
	if _, err := m.Delete(0, 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatalf("Delete leaked into the source graph")
	}

	v := m.AddVertex()
	if v != 3 || m.NumVertices() != 4 {
		t.Fatalf("AddVertex = %d (n=%d), want 3 (n=4)", v, m.NumVertices())
	}
	if _, err := m.Insert(v, 0, 5); err != nil {
		t.Fatalf("Insert to new vertex: %v", err)
	}
}
