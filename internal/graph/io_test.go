package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(1, 2, 0.25)
	g.MustAddEdge(3, 0, 7)

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.NumVertices() != 4 || got.NumEdges() != 3 {
		t.Fatalf("round trip n=%d m=%d", got.NumVertices(), got.NumEdges())
	}
	for i := 0; i < 3; i++ {
		a, b := g.Edge(i), got.Edge(i)
		if a != b {
			t.Errorf("edge %d: %+v != %+v", i, a, b)
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\np 3 1\n# another\ne 0 2 1.5\n"
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 1 {
		t.Errorf("n=%d m=%d, want 3, 1", g.NumVertices(), g.NumEdges())
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "empty", in: ""},
		{name: "no header", in: "e 0 1 1\n"},
		{name: "double header", in: "p 2 0\np 2 0\n"},
		{name: "short header", in: "p 2\n"},
		{name: "bad vertex count", in: "p x 0\n"},
		{name: "bad edge count", in: "p 2 x\n"},
		{name: "negative counts", in: "p -1 0\n"},
		{name: "short edge", in: "p 2 1\ne 0 1\n"},
		{name: "bad endpoint", in: "p 2 1\ne a 1 1\n"},
		{name: "bad endpoint 2", in: "p 2 1\ne 0 b 1\n"},
		{name: "bad weight", in: "p 2 1\ne 0 1 w\n"},
		{name: "edge out of range", in: "p 2 1\ne 0 5 1\n"},
		{name: "self loop", in: "p 2 1\ne 1 1 1\n"},
		{name: "count mismatch", in: "p 2 2\ne 0 1 1\n"},
		{name: "unknown record", in: "p 2 0\nq 1\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tt.in)); err == nil {
				t.Errorf("Decode(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	var buf bytes.Buffer
	if err := New(0).Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	g, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("empty graph did not round-trip")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(25)
		g := New(n)
		for tries := 0; tries < 3*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, rng.Float64()+0.001)
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(i) != got.Edge(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
