package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSnapshotIsFrozen verifies a view keeps seeing exactly the state at
// snapshot time while the parent keeps growing, including across block
// relocations and arena compaction.
func TestSnapshotIsFrozen(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(30)
	type edge struct {
		u, v int
		w    float64
	}
	var added []edge
	addRandom := func() {
		for {
			u, v := rng.Intn(30), rng.Intn(30)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			w := 1 + rng.Float64()
			g.MustAddEdge(u, v, w)
			added = append(added, edge{u, v, w})
			return
		}
	}
	for i := 0; i < 40; i++ {
		addRandom()
	}

	snap := g.Snapshot()
	wantN, wantM := g.NumVertices(), g.NumEdges()
	wantDigest := snap.Digest()

	// Grow the parent well past the snapshot: enough inserts to force many
	// block relocations and at least one compaction.
	for i := 0; i < 300 && g.NumEdges() < 30*29/2; i++ {
		addRandom()
	}
	g.AddVertex()
	g.Compact()

	if snap.NumVertices() != wantN || snap.NumEdges() != wantM {
		t.Fatalf("snapshot grew: n=%d m=%d, want n=%d m=%d",
			snap.NumVertices(), snap.NumEdges(), wantN, wantM)
	}
	if got := snap.Digest(); got != wantDigest {
		t.Fatalf("snapshot digest changed after parent mutation: %s != %s", got, wantDigest)
	}
	// Adjacency of the view must cover exactly the first wantM edges.
	deg := make([]int, wantN)
	for _, e := range added[:wantM] {
		deg[e.u]++
		deg[e.v]++
	}
	for v := 0; v < wantN; v++ {
		if snap.Degree(v) != deg[v] {
			t.Fatalf("vertex %d: snapshot degree %d, want %d", v, snap.Degree(v), deg[v])
		}
		for _, arc := range snap.Neighbors(v) {
			if arc.ID >= wantM {
				t.Fatalf("vertex %d: snapshot arc references post-snapshot edge %d", v, arc.ID)
			}
			e := snap.Edge(arc.ID)
			if e.Other(v) != arc.To || e.Weight != arc.Weight {
				t.Fatalf("vertex %d: snapshot arc %+v disagrees with edge %+v", v, arc, e)
			}
		}
	}
}

// TestSnapshotRejectsMutation checks the read-only guards.
func TestSnapshotRejectsMutation(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	snap := g.Snapshot()

	if _, err := snap.AddEdge(1, 2, 1); err != ErrReadOnlyView {
		t.Fatalf("AddEdge on view: err=%v, want ErrReadOnlyView", err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on view did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddVertex", func() { snap.AddVertex() })
	mustPanic("Compact", func() { snap.Compact() })
	mustPanic("EdgeBetween", func() { snap.EdgeBetween(0, 1) })
	mustPanic("HasEdge", func() { snap.HasEdge(0, 1) })
}

// TestSnapshotCloneIsMutable verifies Clone rebuilds the endpoint index, so
// a cloned view is a full graph again.
func TestSnapshotCloneIsMutable(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	c := g.Snapshot().Clone()
	if !c.HasEdge(0, 1) || !c.HasEdge(1, 2) {
		t.Fatal("cloned view lost edges from its index")
	}
	if _, err := c.AddEdge(2, 3, 1); err != nil {
		t.Fatalf("cloned view should be mutable: %v", err)
	}
	if _, err := c.AddEdge(0, 1, 1); err == nil {
		t.Fatal("cloned view accepted a parallel edge: index not rebuilt")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("mutating the clone touched the parent: m=%d", g.NumEdges())
	}
}

// TestSnapshotConcurrentReads exercises view reads racing parent inserts;
// run under -race this is the memory-model check the parallel greedy relies
// on (workers query a snapshot of H while the scan goroutine commits edges).
func TestSnapshotConcurrentReads(t *testing.T) {
	g := New(64)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		u, v := rng.Intn(64), rng.Intn(64)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+rng.Float64())
		}
	}
	snap := g.Snapshot()
	m := snap.NumEdges()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				total := 0
				for v := 0; v < snap.NumVertices(); v++ {
					for _, arc := range snap.Neighbors(v) {
						total += arc.ID
						_ = snap.Edge(arc.ID)
					}
				}
				if snap.NumEdges() != m {
					t.Errorf("snapshot edge count changed: %d != %d", snap.NumEdges(), m)
					return
				}
				_ = total
			}
		}()
	}
	for i := 0; i < 500; i++ {
		u, v := rng.Intn(64), rng.Intn(64)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 1+rng.Float64())
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotInto verifies view recycling: a recycled view sees exactly
// the graph's current state, allocates nothing new when its descriptor
// slice is big enough, and a foreign (non-view or undersized) argument
// falls back to a fresh snapshot.
func TestSnapshotInto(t *testing.T) {
	g := New(8)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)

	v1 := g.Snapshot()
	d1 := v1.Digest()

	g.MustAddEdge(2, 3, 3)
	v2 := g.SnapshotInto(v1)
	if v2 != v1 {
		t.Fatal("SnapshotInto did not reuse the recycled view")
	}
	if v2.NumEdges() != 3 {
		t.Fatalf("recycled view sees %d edges, want 3", v2.NumEdges())
	}
	if v2.Digest() != g.Digest() {
		t.Fatal("recycled view digest differs from parent")
	}
	if v2.Digest() == d1 {
		t.Fatal("recycled view still reports the pre-recycle state")
	}

	// nil and non-view fall back to fresh allocation.
	if v := g.SnapshotInto(nil); v == nil || !v.view {
		t.Fatal("nil argument did not produce a fresh view")
	}
	if v := g.SnapshotInto(New(8)); v == nil || !v.view {
		t.Fatal("non-view argument did not produce a fresh view")
	}

	// A view too small for a grown parent is still reused as the container,
	// with a fresh descriptor slice behind it.
	small := New(2)
	small.MustAddEdge(0, 1, 1)
	sv := small.Snapshot()
	big := g.SnapshotInto(sv)
	if big != sv || big.NumVertices() != 8 || big.Digest() != g.Digest() {
		t.Fatalf("undersized view not regrown correctly: n=%d", big.NumVertices())
	}

	// Recycled views keep the snapshot consistency guarantee while the
	// parent mutates.
	g.MustAddEdge(3, 4, 4)
	if v2.NumEdges() != 3 {
		t.Fatal("recycled view leaked a post-snapshot edge")
	}
}
