package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the graph parser: it must never
// panic, and anything it accepts must re-encode and re-parse to an
// identical graph (a full round-trip invariant on the accepted language).
func FuzzDecode(f *testing.F) {
	seeds := []string{
		"p 3 2\ne 0 1 1\ne 1 2 0.5\n",
		"p 0 0\n",
		"# comment\np 2 1\ne 0 1 2\n",
		"p 2 1\ne 0 1 1e300\n",
		"p 2 1\ne 0 1 nan\n",
		"p -1 0\n",
		"e 0 1 1\n",
		"p 2 1\ne 0 0 1\n",
		"p 99999999999999999999 0\n",
		strings.Repeat("p 1 0\n", 3),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			t.Fatalf("accepted graph failed to encode: %v", err)
		}
		g2, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode of own encoding failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g, g2)
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.Edge(i) != g2.Edge(i) {
				t.Fatalf("round trip changed edge %d", i)
			}
		}
	})
}
