// Package graph implements the weighted undirected simple graph that every
// other package in this repository builds on.
//
// Vertices are dense integers 0..NumVertices()-1 and edges carry stable
// integer IDs 0..NumEdges()-1 assigned in insertion order. Stable edge IDs
// matter: fault sets, blocking-set pairs and spanner membership all refer to
// edges by ID, including across the subgraph operations in ops.go (which
// report ID mappings).
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Edge is an undirected weighted edge. U < V is not guaranteed; use
// Endpoints for a normalized pair.
type Edge struct {
	ID     int
	U, V   int
	Weight float64
}

// Endpoints returns the edge's endpoints with the smaller vertex first.
func (e Edge) Endpoints() (int, int) {
	if e.U <= e.V {
		return e.U, e.V
	}
	return e.V, e.U
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint, which always indicates a bug in the caller.
func (e Edge) Other(x int) int {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d=(%d,%d)", x, e.ID, e.U, e.V))
}

// Arc is one direction of an edge as stored in adjacency lists.
type Arc struct {
	To     int     // head vertex
	ID     int     // edge ID
	Weight float64 // edge weight (duplicated from the edge for cache locality)
}

// segment locates one vertex's arc block inside the shared CSR arena: the
// arcs of vertex v live at arcs[off : off+deg], with room to grow in place
// up to arcs[off+cap].
type segment struct {
	off, deg, cap int
}

// Graph is a weighted undirected simple graph. The zero value is an empty
// graph with no vertices; most callers use New.
//
// Adjacency is stored in compressed-sparse-row form: a single flat arc
// arena with one contiguous block per vertex. Unlike classic CSR, blocks
// carry slack capacity and are relocated to the arena's end (with doubling)
// when they fill, so edge insertion stays amortized O(1) and the growing
// spanner H built by the greedy remains CSR-backed throughout. Abandoned
// blocks are reclaimed by compaction once they exceed half the arena.
//
// Graph is not safe for concurrent mutation; concurrent reads are fine. For
// readers that must stay consistent while the owner keeps adding edges, see
// Snapshot.
type Graph struct {
	edges []Edge
	arcs  []Arc          // CSR arena: per-vertex contiguous arc blocks
	seg   []segment      // per-vertex block descriptors; len(seg) == NumVertices()
	dead  int            // arena slots abandoned by block relocations
	index map[[2]int]int // normalized endpoint pair -> edge ID
	view  bool           // read-only Snapshot view; mutators and index queries reject
}

// Errors returned by mutating operations.
var (
	ErrSelfLoop       = errors.New("graph: self-loops are not allowed")
	ErrParallelEdge   = errors.New("graph: parallel edges are not allowed")
	ErrVertexRange    = errors.New("graph: vertex out of range")
	ErrNonPositiveWgt = errors.New("graph: edge weight must be positive and finite")
	ErrReadOnlyView   = errors.New("graph: snapshot views are read-only")
)

// New returns an empty graph on n isolated vertices.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		seg:   make([]segment, n),
		index: make(map[[2]int]int),
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.seg) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddVertex appends a new isolated vertex and returns its ID. It panics on a
// snapshot view.
func (g *Graph) AddVertex() int {
	if g.view {
		panic(ErrReadOnlyView)
	}
	g.seg = append(g.seg, segment{})
	return len(g.seg) - 1
}

// AddEdge inserts the undirected edge (u, v) with weight w and returns its
// ID. Self-loops, parallel edges, out-of-range endpoints and non-positive or
// non-finite weights are rejected.
func (g *Graph) AddEdge(u, v int, w float64) (int, error) {
	if g.view {
		return 0, ErrReadOnlyView
	}
	if u < 0 || u >= len(g.seg) || v < 0 || v >= len(g.seg) {
		return 0, fmt.Errorf("%w: (%d,%d) with %d vertices", ErrVertexRange, u, v, len(g.seg))
	}
	if u == v {
		return 0, fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return 0, fmt.Errorf("%w: %v", ErrNonPositiveWgt, w)
	}
	key := normPair(u, v)
	if _, dup := g.index[key]; dup {
		return 0, fmt.Errorf("%w: (%d,%d)", ErrParallelEdge, u, v)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, Weight: w})
	g.addArc(u, Arc{To: v, ID: id, Weight: w})
	g.addArc(v, Arc{To: u, ID: id, Weight: w})
	g.index[key] = id
	return id, nil
}

// addArc appends one directed arc to v's CSR block, relocating the block to
// the arena's end with doubled capacity when full, and compacting the arena
// when relocation waste exceeds half of it.
func (g *Graph) addArc(v int, a Arc) {
	s := &g.seg[v]
	if s.deg == s.cap {
		newCap := s.cap * 2
		if newCap == 0 {
			newCap = 2
		}
		off := len(g.arcs)
		g.arcs = slices.Grow(g.arcs, newCap)[:off+newCap]
		copy(g.arcs[off:], g.arcs[s.off:s.off+s.deg])
		g.dead += s.cap
		s.off, s.cap = off, newCap
	}
	g.arcs[s.off+s.deg] = a
	s.deg++
	if g.dead > len(g.arcs)/2 && len(g.arcs) > 64 {
		g.Compact()
	}
}

// Compact rewrites the arc arena without the holes left behind by block
// relocations, preserving each vertex's slack capacity. It runs
// automatically when holes exceed half the arena; callers that finished
// building a graph may invoke it explicitly to tighten memory before a
// read-heavy phase. It panics on a snapshot view.
func (g *Graph) Compact() {
	if g.view {
		panic(ErrReadOnlyView)
	}
	total := 0
	for i := range g.seg {
		total += g.seg[i].cap
	}
	out := make([]Arc, 0, total)
	for i := range g.seg {
		s := &g.seg[i]
		off := len(out)
		out = append(out, g.arcs[s.off:s.off+s.deg]...)
		out = out[:off+s.cap]
		s.off = off
	}
	g.arcs = out
	g.dead = 0
}

// Truncate rewinds the graph to its first n edges, undoing every AddEdge
// past that watermark: the later edges leave the edge list, their arcs are
// popped off the tails of their endpoints' CSR blocks, and their endpoint
// pairs become free for re-insertion. Vertices are never removed.
//
// This is what makes the CSR arena checkpointable for append-heavy callers:
// an edge count recorded earlier IS a checkpoint, because arcs are only ever
// appended to block tails in edge-ID order (relocation and compaction both
// preserve within-block order), so rewinding pops exactly the arcs added
// since. Cost is O(edges removed). The incremental spanner engine uses this
// to rewind its kept-prefix graph to a batch's divergence point instead of
// rebuilding it edge by edge.
//
// Truncate breaks the append-only contract that makes Snapshot views safe
// against concurrent parent mutation: views taken before the truncation may
// observe popped arcs being overwritten by later appends. It must not be
// called while any view of the graph is still in use, and panics on a view.
func (g *Graph) Truncate(n int) {
	if g.view {
		panic(ErrReadOnlyView)
	}
	if n < 0 || n > len(g.edges) {
		panic(fmt.Sprintf("graph: Truncate(%d) with %d edges", n, len(g.edges)))
	}
	for id := len(g.edges) - 1; id >= n; id-- {
		e := g.edges[id]
		g.popArc(e.U, id)
		g.popArc(e.V, id)
		delete(g.index, normPair(e.U, e.V))
	}
	g.edges = g.edges[:n]
}

// popArc removes the tail arc of v's CSR block, which must carry the given
// edge ID — the block-order invariant Truncate relies on.
func (g *Graph) popArc(v, id int) {
	s := &g.seg[v]
	if s.deg == 0 || g.arcs[s.off+s.deg-1].ID != id {
		panic(fmt.Sprintf("graph: Truncate: vertex %d block tail is not edge %d", v, id))
	}
	s.deg--
}

// MustAddEdge is AddEdge for construction code where the inputs are known
// valid (generators, tests). It panics on error.
func (g *Graph) MustAddEdge(u, v int, w float64) int {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list, ordered by ID.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgesByWeight returns the edge list sorted by increasing weight, breaking
// ties by edge ID so the order is deterministic. This is the processing
// order of every greedy algorithm in the repository.
func (g *Graph) EdgesByWeight() []Edge {
	out := g.Edges()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight < out[j].Weight
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Neighbors returns the adjacency list of v: a contiguous view into the CSR
// arc arena. The returned slice is owned by the graph and must not be
// modified; it is valid until the next mutation (which may relocate blocks).
func (g *Graph) Neighbors(v int) []Arc {
	s := g.seg[v]
	return g.arcs[s.off : s.off+s.deg : s.off+s.deg]
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return g.seg[v].deg }

// HasEdge reports whether an edge joins u and v.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeBetween(u, v)
	return ok
}

// EdgeBetween returns the edge joining u and v, if any. It panics on a
// snapshot view: views carry no endpoint index (sharing the parent's map
// would race with concurrent inserts), and a silent "no edge" answer would
// be a wrong one.
func (g *Graph) EdgeBetween(u, v int) (Edge, bool) {
	if g.view {
		panic("graph: EdgeBetween is not available on a snapshot view")
	}
	if u < 0 || u >= len(g.seg) || v < 0 || v >= len(g.seg) || u == v {
		return Edge{}, false
	}
	id, ok := g.index[normPair(u, v)]
	if !ok {
		return Edge{}, false
	}
	return g.edges[id], true
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var sum float64
	for _, e := range g.edges {
		sum += e.Weight
	}
	return sum
}

// MaxDegree returns the largest vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for v := range g.seg {
		if g.seg[v].deg > d {
			d = g.seg[v].deg
		}
	}
	return d
}

// Clone returns a deep copy of the graph. The copy's arc arena is compacted:
// relocation holes in the original are not carried over. Cloning a snapshot
// view yields a regular mutable graph (the endpoint index is rebuilt from
// the edge list, not copied).
func (g *Graph) Clone() *Graph {
	c := &Graph{
		edges: make([]Edge, len(g.edges)),
		arcs:  make([]Arc, 0, 2*len(g.edges)),
		seg:   make([]segment, len(g.seg)),
		index: make(map[[2]int]int, len(g.edges)),
	}
	copy(c.edges, g.edges)
	for v := range g.seg {
		s := g.seg[v]
		off := len(c.arcs)
		c.arcs = append(c.arcs, g.arcs[s.off:s.off+s.deg]...)
		c.seg[v] = segment{off: off, deg: s.deg, cap: s.deg}
	}
	for _, e := range c.edges {
		c.index[normPair(e.U, e.V)] = e.ID
	}
	return c
}

// Snapshot returns a read-only view of the graph at its current size. The
// view shares the CSR arena and edge list with the parent, so taking one is
// O(NumVertices) (the per-vertex block descriptors are copied) and touches
// no per-edge state.
//
// The view stays consistent — it keeps seeing exactly the vertices and
// edges present at snapshot time — even while the parent continues to gain
// edges on another goroutine, because the parent only ever appends: new arcs
// land in block slack or freshly grown arena space that no block descriptor
// of the view covers, and compaction replaces the parent's arena wholesale
// while the view retains the old one. This is what lets the parallel greedy
// fan oracle queries out over an immutable picture of the spanner H while
// the scan goroutine keeps committing edges.
//
// Views support the CSR read surface (NumVertices, NumEdges, Edge, Edges,
// EdgesByWeight, Neighbors, Degree, Clone, Digest, ...). Mutators reject
// with ErrReadOnlyView, and the endpoint-index queries HasEdge/EdgeBetween
// panic: the index map cannot be shared with a concurrently mutating parent.
func (g *Graph) Snapshot() *Graph {
	return g.SnapshotInto(nil)
}

// SnapshotInto is Snapshot with view recycling: when view is a *Graph
// previously returned by Snapshot/SnapshotInto (of any graph) that the caller
// no longer reads, its per-vertex descriptor slice is reused instead of
// allocated afresh. The pipelined parallel greedy takes one snapshot per
// speculative batch and per re-speculation round, so recycling turns the
// per-batch O(NumVertices) allocation into a copy over warm memory. A nil or
// non-view argument (or one too small to hold the descriptors) falls back to
// a fresh allocation; the recycled view must not be aliased by any other
// goroutine when it is passed in.
func (g *Graph) SnapshotInto(view *Graph) *Graph {
	var seg []segment
	if view != nil && view.view && cap(view.seg) >= len(g.seg) {
		seg = view.seg[:len(g.seg)]
	} else {
		seg = make([]segment, len(g.seg))
	}
	copy(seg, g.seg)
	if view != nil && view.view {
		view.edges = g.edges[:len(g.edges):len(g.edges)]
		view.arcs = g.arcs[:len(g.arcs):len(g.arcs)]
		view.seg = seg
		return view
	}
	return &Graph{
		edges: g.edges[:len(g.edges):len(g.edges)],
		arcs:  g.arcs[:len(g.arcs):len(g.arcs)],
		seg:   seg,
		view:  true,
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumVertices(), g.NumEdges())
}

func normPair(u, v int) [2]int {
	if u <= v {
		return [2]int{u, v}
	}
	return [2]int{v, u}
}
