package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if g.NumVertices() != 5 {
		t.Errorf("NumVertices() = %d, want 5", g.NumVertices())
	}
	if g.NumEdges() != 0 {
		t.Errorf("NumEdges() = %d, want 0", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestNewNegative(t *testing.T) {
	g := New(-3)
	if g.NumVertices() != 0 {
		t.Errorf("New(-3).NumVertices() = %d, want 0", g.NumVertices())
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	id, err := g.AddEdge(0, 1, 2.5)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Errorf("first edge ID = %d, want 0", id)
	}
	e := g.Edge(id)
	if e.U != 0 || e.V != 1 || e.Weight != 2.5 {
		t.Errorf("Edge(0) = %+v", e)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) = true, want false")
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Error("degrees wrong after one edge")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)

	tests := []struct {
		name    string
		u, v    int
		w       float64
		wantErr error
	}{
		{name: "self loop", u: 1, v: 1, w: 1, wantErr: ErrSelfLoop},
		{name: "parallel", u: 1, v: 0, w: 2, wantErr: ErrParallelEdge},
		{name: "u out of range", u: -1, v: 0, w: 1, wantErr: ErrVertexRange},
		{name: "v out of range", u: 0, v: 3, w: 1, wantErr: ErrVertexRange},
		{name: "zero weight", u: 0, v: 2, w: 0, wantErr: ErrNonPositiveWgt},
		{name: "negative weight", u: 0, v: 2, w: -1, wantErr: ErrNonPositiveWgt},
		{name: "inf weight", u: 0, v: 2, w: math.Inf(1), wantErr: ErrNonPositiveWgt},
		{name: "nan weight", u: 0, v: 2, w: math.NaN(), wantErr: ErrNonPositiveWgt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := g.AddEdge(tt.u, tt.v, tt.w); !errors.Is(err, tt.wantErr) {
				t.Errorf("AddEdge(%d,%d,%v) error = %v, want %v", tt.u, tt.v, tt.w, err, tt.wantErr)
			}
		})
	}
	if g.NumEdges() != 1 {
		t.Errorf("failed inserts mutated the graph: m = %d", g.NumEdges())
	}
}

func TestAddVertex(t *testing.T) {
	g := New(2)
	v := g.AddVertex()
	if v != 2 || g.NumVertices() != 3 {
		t.Errorf("AddVertex() = %d (n=%d), want 2 (n=3)", v, g.NumVertices())
	}
	if _, err := g.AddEdge(0, v, 1); err != nil {
		t.Errorf("edge to new vertex: %v", err)
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{ID: 0, U: 3, V: 7, Weight: 1}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Error("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint should panic")
		}
	}()
	e.Other(5)
}

func TestEndpointsNormalized(t *testing.T) {
	e := Edge{U: 9, V: 2}
	a, b := e.Endpoints()
	if a != 2 || b != 9 {
		t.Errorf("Endpoints() = (%d,%d), want (2,9)", a, b)
	}
}

func TestEdgesByWeight(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 2)
	g.MustAddEdge(0, 3, 1) // tie with edge 1; ID order breaks it
	got := g.EdgesByWeight()
	wantIDs := []int{1, 3, 2, 0}
	for i, e := range got {
		if e.ID != wantIDs[i] {
			t.Fatalf("EdgesByWeight order = %v, want IDs %v", got, wantIDs)
		}
	}
}

func TestEdgesReturnsCopy(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	edges := g.Edges()
	edges[0].Weight = 99
	if g.Edge(0).Weight != 1 {
		t.Error("mutating Edges() result changed the graph")
	}
}

func TestNeighbors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 2)
	arcs := g.Neighbors(0)
	if len(arcs) != 2 {
		t.Fatalf("len(Neighbors(0)) = %d, want 2", len(arcs))
	}
	seen := map[int]float64{}
	for _, a := range arcs {
		seen[a.To] = a.Weight
	}
	if seen[1] != 1 || seen[2] != 2 {
		t.Errorf("Neighbors(0) = %v", arcs)
	}
}

func TestEdgeBetween(t *testing.T) {
	g := New(3)
	id := g.MustAddEdge(2, 0, 5)
	e, ok := g.EdgeBetween(0, 2)
	if !ok || e.ID != id || e.Weight != 5 {
		t.Errorf("EdgeBetween(0,2) = %+v, %v", e, ok)
	}
	if _, ok := g.EdgeBetween(0, 0); ok {
		t.Error("EdgeBetween(v,v) should be false")
	}
	if _, ok := g.EdgeBetween(-1, 2); ok {
		t.Error("EdgeBetween out of range should be false")
	}
}

func TestTotalWeightAndMaxDegree(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(0, 2, 2.5)
	g.MustAddEdge(0, 3, 3)
	if got := g.TotalWeight(); got != 7 {
		t.Errorf("TotalWeight() = %v, want 7", got)
	}
	if got := g.MaxDegree(); got != 3 {
		t.Errorf("MaxDegree() = %d, want 3", got)
	}
	if got := New(0).MaxDegree(); got != 0 {
		t.Errorf("empty MaxDegree() = %d, want 0", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2, 2)
	if g.NumEdges() != 1 {
		t.Error("mutating clone changed original edge count")
	}
	if g.HasEdge(1, 2) {
		t.Error("mutating clone changed original adjacency")
	}
	g.MustAddEdge(0, 2, 3)
	if c.HasEdge(0, 2) {
		t.Error("mutating original changed clone")
	}
}

func TestString(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	if got := g.String(); got != "graph{n=2 m=1}" {
		t.Errorf("String() = %q", got)
	}
}

// TestQuickAdjacencyConsistency checks, on random graphs, that the edge
// list, the adjacency lists and the endpoint index all agree.
func TestQuickAdjacencyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := New(n)
		for tries := 0; tries < 3*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			w := 1 + rng.Float64()
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, w)
		}
		// Each edge appears exactly once in each endpoint's adjacency.
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(v)
			for _, a := range g.Neighbors(v) {
				e := g.Edge(a.ID)
				if e.Other(v) != a.To || e.Weight != a.Weight {
					return false
				}
				got, ok := g.EdgeBetween(v, a.To)
				if !ok || got.ID != a.ID {
					return false
				}
			}
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestTruncate checks the checkpoint/rewind primitive: truncating back to a
// watermark removes exactly the edges appended after it — adjacency blocks,
// endpoint index, and edge list all rewind — and the graph accepts fresh
// appends at the freed IDs afterwards.
func TestTruncate(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(2, 3, 4)

	g.Truncate(4) // no-op at the current watermark
	if g.NumEdges() != 4 {
		t.Fatalf("Truncate(len) changed NumEdges to %d", g.NumEdges())
	}
	g.Truncate(2)
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d after Truncate(2), want 2", g.NumEdges())
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 3) {
		t.Fatal("truncated edges still resolve via HasEdge")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("surviving edges lost by Truncate")
	}
	if g.Degree(2) != 1 || g.Degree(0) != 1 || g.Degree(3) != 0 {
		t.Fatalf("degrees after truncate: %d/%d/%d, want 1/1/0",
			g.Degree(0), g.Degree(2), g.Degree(3))
	}

	// Freed IDs are reused by fresh appends, and a truncated pair may rejoin
	// with a different weight.
	if id := g.MustAddEdge(2, 4, 5); id != 2 {
		t.Fatalf("post-truncate append got ID %d, want 2", id)
	}
	if id := g.MustAddEdge(0, 2, 7); id != 3 {
		t.Fatalf("second post-truncate append got ID %d, want 3", id)
	}
	if e, ok := g.EdgeBetween(0, 2); !ok || e.Weight != 7 {
		t.Fatalf("re-added pair (0,2): %+v ok=%v, want weight 7", e, ok)
	}

	// Rewind-and-replay yields the same digest as building directly.
	direct := New(5)
	direct.MustAddEdge(0, 1, 1)
	direct.MustAddEdge(1, 2, 2)
	direct.MustAddEdge(2, 4, 5)
	direct.MustAddEdge(0, 2, 7)
	if g.Digest() != direct.Digest() {
		t.Fatalf("rewind+replay digest %s != direct build %s", g.Digest(), direct.Digest())
	}

	g.Truncate(0)
	if g.NumEdges() != 0 {
		t.Fatalf("Truncate(0) left %d edges", g.NumEdges())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("Truncate(0) left degree %d at vertex %d", g.Degree(v), v)
		}
	}
}

// TestTruncateRandomReplay is the property form: for a random append
// sequence, truncating to a random watermark and replaying the tail is
// indistinguishable (by digest and adjacency sums) from never rewinding.
func TestTruncateRandomReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		type add struct {
			u, v int
			w    float64
		}
		var seq []add
		ref := New(n)
		for tries := 0; tries < 4*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || ref.HasEdge(u, v) {
				continue
			}
			w := 1 + rng.Float64()
			ref.MustAddEdge(u, v, w)
			seq = append(seq, add{u, v, w})
		}
		g := New(n)
		for _, a := range seq {
			g.MustAddEdge(a.u, a.v, a.w)
		}
		cut := rng.Intn(len(seq) + 1)
		g.Truncate(cut)
		for _, a := range seq[cut:] {
			g.MustAddEdge(a.u, a.v, a.w)
		}
		if g.Digest() != ref.Digest() {
			t.Fatalf("trial %d: digest diverged after Truncate(%d)+replay", trial, cut)
		}
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(v)
		}
		if degSum != 2*g.NumEdges() {
			t.Fatalf("trial %d: degree sum %d != 2*%d edges", trial, degSum, g.NumEdges())
		}
	}
}

// TestTruncatePanics pins the misuse contract: out-of-range watermarks and
// read-only views reject loudly.
func TestTruncatePanics(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("negative watermark", func() { g.Truncate(-1) })
	mustPanic("watermark past end", func() { g.Truncate(2) })
}
