package graph

import (
	"regexp"
	"testing"
)

func digestGraph(t *testing.T, n int, edges [][3]float64) *Graph {
	t.Helper()
	g := New(n)
	for _, e := range edges {
		g.MustAddEdge(int(e[0]), int(e[1]), e[2])
	}
	return g
}

func TestDigestFormat(t *testing.T) {
	d := New(0).Digest()
	if !regexp.MustCompile(`^[0-9a-f]{64}$`).MatchString(d) {
		t.Fatalf("digest %q is not 64 hex chars", d)
	}
}

func TestDigestEqualGraphsAgree(t *testing.T) {
	edges := [][3]float64{{0, 1, 1}, {1, 2, 2.5}, {0, 2, 3}}
	a := digestGraph(t, 3, edges)
	b := digestGraph(t, 3, edges)
	if a.Digest() != b.Digest() {
		t.Fatal("identical graphs produced different digests")
	}
	if a.Digest() != a.Clone().Digest() {
		t.Fatal("clone changed the digest")
	}
}

func TestDigestDistinguishes(t *testing.T) {
	base := digestGraph(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 2}})
	variants := map[string]*Graph{
		"extra vertex":     digestGraph(t, 4, [][3]float64{{0, 1, 1}, {1, 2, 2}}),
		"different weight": digestGraph(t, 3, [][3]float64{{0, 1, 1}, {1, 2, 3}}),
		"different edge":   digestGraph(t, 3, [][3]float64{{0, 1, 1}, {0, 2, 2}}),
		"edge order":       digestGraph(t, 3, [][3]float64{{1, 2, 2}, {0, 1, 1}}),
		"missing edge":     digestGraph(t, 3, [][3]float64{{0, 1, 1}}),
	}
	for name, g := range variants {
		if g.Digest() == base.Digest() {
			t.Errorf("%s: digest collision with base graph", name)
		}
	}
}

func TestDigestStableAcrossCalls(t *testing.T) {
	g := digestGraph(t, 5, [][3]float64{{0, 1, 1}, {1, 2, 1}, {2, 3, 0.5}, {3, 4, 7}})
	if g.Digest() != g.Digest() {
		t.Fatal("digest is not deterministic")
	}
}
