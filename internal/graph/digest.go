package graph

import (
	"crypto/sha256"
	"encoding/hex"
)

// Digest returns a stable 64-hex-character SHA-256 content digest of the
// graph: the vertex count plus every edge's endpoints and weight, in edge-ID
// order. Two graphs share a digest exactly when they are equal up to an
// Encode/Decode round trip; any change to the vertex count, topology,
// weights, or edge numbering changes the digest.
//
// The digest is the canonical cache and persistence key for build results
// keyed by input graph.
func (g *Graph) Digest() string {
	h := sha256.New()
	// Encode writes the canonical "p"/"e" text form; writes to a hash never
	// fail.
	_ = g.Encode(h)
	return hex.EncodeToString(h.Sum(nil))
}
