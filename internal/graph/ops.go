package graph

import (
	"fmt"

	"github.com/ftspanner/ftspanner/internal/bitset"
)

// Mapping relates a derived graph's vertices and edges back to the graph it
// was built from. VertexTo[newV] = oldV and EdgeTo[newE] = oldE.
type Mapping struct {
	VertexTo []int
	EdgeTo   []int
}

// InducedSubgraph returns the subgraph induced on the given vertices (in the
// given order: new vertex i corresponds to vertices[i]) together with the
// mapping back to g. Duplicate or out-of-range vertices are an error.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, *Mapping, error) {
	newID := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if v < 0 || v >= g.NumVertices() {
			return nil, nil, fmt.Errorf("%w: %d", ErrVertexRange, v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in induced subgraph", v)
		}
		newID[v] = i
	}
	sub := New(len(vertices))
	m := &Mapping{VertexTo: append([]int(nil), vertices...)}
	for _, e := range g.edges {
		nu, okU := newID[e.U]
		nv, okV := newID[e.V]
		if !okU || !okV {
			continue
		}
		sub.MustAddEdge(nu, nv, e.Weight)
		m.EdgeTo = append(m.EdgeTo, e.ID)
	}
	return sub, m, nil
}

// FilterEdges returns a graph on the same vertex set containing exactly the
// edges for which keep returns true, with the mapping back to g.
func (g *Graph) FilterEdges(keep func(Edge) bool) (*Graph, *Mapping) {
	out := New(g.NumVertices())
	m := &Mapping{VertexTo: identity(g.NumVertices())}
	for _, e := range g.edges {
		if !keep(e) {
			continue
		}
		out.MustAddEdge(e.U, e.V, e.Weight)
		m.EdgeTo = append(m.EdgeTo, e.ID)
	}
	return out, m
}

// DeleteEdges returns a copy of g without the edges whose IDs are in the
// given set, plus the edge-ID mapping back to g.
func (g *Graph) DeleteEdges(ids *bitset.Set) (*Graph, *Mapping) {
	return g.FilterEdges(func(e Edge) bool { return !ids.Contains(e.ID) })
}

// DeleteVertices returns the subgraph induced on the vertices NOT in the
// given set (renumbered), plus the mapping back to g.
func (g *Graph) DeleteVertices(del *bitset.Set) (*Graph, *Mapping) {
	var keep []int
	for v := 0; v < g.NumVertices(); v++ {
		if !del.Contains(v) {
			keep = append(keep, v)
		}
	}
	sub, m, err := g.InducedSubgraph(keep)
	if err != nil {
		// Unreachable: keep is a subset of valid vertices with no duplicates.
		panic(err)
	}
	return sub, m
}

// Union returns a graph on the same vertex set as a containing every edge of
// a and b, de-duplicated by endpoints (the first occurrence wins; a's edges
// are inserted first). Both graphs must have the same vertex count.
func Union(a, b *Graph) (*Graph, error) {
	if a.NumVertices() != b.NumVertices() {
		return nil, fmt.Errorf("graph: union of graphs with %d and %d vertices", a.NumVertices(), b.NumVertices())
	}
	out := New(a.NumVertices())
	for _, e := range a.edges {
		out.MustAddEdge(e.U, e.V, e.Weight)
	}
	for _, e := range b.edges {
		if !out.HasEdge(e.U, e.V) {
			out.MustAddEdge(e.U, e.V, e.Weight)
		}
	}
	return out, nil
}

// CartesianProduct returns the Cartesian product a □ b: vertices are pairs
// (x, y) numbered x*b.NumVertices()+y; (x,y)-(x',y) is an edge when (x,x') is
// an edge of a (with a's weight), and (x,y)-(x,y') when (y,y') is an edge of
// b (with b's weight). This is the product used by the BDPW lower-bound
// construction.
func CartesianProduct(a, b *Graph) *Graph {
	na, nb := a.NumVertices(), b.NumVertices()
	out := New(na * nb)
	id := func(x, y int) int { return x*nb + y }
	for _, e := range a.edges {
		for y := 0; y < nb; y++ {
			out.MustAddEdge(id(e.U, y), id(e.V, y), e.Weight)
		}
	}
	for _, e := range b.edges {
		for x := 0; x < na; x++ {
			out.MustAddEdge(id(x, e.U), id(x, e.V), e.Weight)
		}
	}
	return out
}

// Blowup returns the balanced blow-up g^(t): every vertex v becomes t
// copies (v,0..t-1), numbered v*t+i, and every edge (u,v) becomes the
// complete bipartite graph between u's copies and v's copies (t² edges,
// each with the original weight). Copies of one vertex are NOT adjacent.
// This is the lower-bound construction of Bodwin–Dinitz–Parter–Williams
// that certifies the optimality of the paper's Theorem 1.
func Blowup(g *Graph, t int) *Graph {
	if t < 1 {
		t = 1
	}
	out := New(g.NumVertices() * t)
	for _, e := range g.edges {
		for i := 0; i < t; i++ {
			for j := 0; j < t; j++ {
				out.MustAddEdge(e.U*t+i, e.V*t+j, e.Weight)
			}
		}
	}
	return out
}

// ConnectedComponents labels each vertex with a component number in
// [0, count) and returns the labels and the component count. Labels are
// assigned in order of the smallest vertex in each component.
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	n := g.NumVertices()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		labels[v] = count
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, arc := range g.Neighbors(x) {
				if labels[arc.To] == -1 {
					labels[arc.To] = count
					stack = append(stack, arc.To)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether the graph has at most one connected component.
func (g *Graph) IsConnected() bool {
	_, c := g.ConnectedComponents()
	return c <= 1
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
