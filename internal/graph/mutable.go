package graph

import (
	"errors"
	"fmt"
)

// ErrNoLiveEdge is returned by Mutable.Delete when no live edge joins the
// given endpoints (it may have been deleted already, or never inserted).
var ErrNoLiveEdge = errors.New("graph: no live edge between endpoints")

// Mutable is a long-lived editable graph for session workloads: edges are
// inserted through the CSR arena's amortized append and deleted by
// tombstoning, so both operations are cheap and underlying edge IDs stay
// stable between compactions. The incremental spanner engine keys its
// decision state by those IDs.
//
// Invariants:
//
//   - Underlying edge IDs 0..NumEdges()-1 are assigned in insertion order
//     and never reused until Compact.
//   - The endpoint index tracks live edges only: deleting (u,v) frees the
//     pair for re-insertion (under a fresh ID).
//   - The live edges, enumerated in ID order, are exactly the session's
//     current graph; Materialize densifies them into a plain Graph whose
//     edge IDs are the live edges' insertion ranks.
//
// Mutable is not safe for concurrent use.
type Mutable struct {
	g     *Graph
	dead  []bool // by underlying edge ID; true = tombstoned
	deadN int
}

// NewMutable returns an empty mutable graph on n isolated vertices.
func NewMutable(n int) *Mutable {
	return &Mutable{g: New(n)}
}

// NewMutableFrom returns a mutable graph seeded with a deep copy of g; every
// edge of g is live under its original ID.
func NewMutableFrom(g *Graph) *Mutable {
	return &Mutable{g: g.Clone(), dead: make([]bool, g.NumEdges())}
}

// NumVertices returns the vertex count.
func (m *Mutable) NumVertices() int { return m.g.NumVertices() }

// NumEdges returns the underlying edge count, tombstones included. It is the
// exclusive upper bound on underlying edge IDs.
func (m *Mutable) NumEdges() int { return m.g.NumEdges() }

// NumLiveEdges returns the number of live (non-tombstoned) edges.
func (m *Mutable) NumLiveEdges() int { return m.g.NumEdges() - m.deadN }

// AddVertex appends a new isolated vertex and returns its ID.
func (m *Mutable) AddVertex() int { return m.g.AddVertex() }

// Live reports whether underlying edge id is live. IDs out of range are not
// live.
func (m *Mutable) Live(id int) bool {
	return id >= 0 && id < len(m.dead) && !m.dead[id]
}

// Edge returns the underlying edge with the given ID, live or tombstoned.
func (m *Mutable) Edge(id int) Edge { return m.g.Edge(id) }

// Insert adds the live edge (u, v) with weight w and returns its underlying
// ID. The same validation as Graph.AddEdge applies; a pair whose previous
// edge was deleted may be re-inserted (the new edge gets a fresh ID).
func (m *Mutable) Insert(u, v int, w float64) (int, error) {
	id, err := m.g.AddEdge(u, v, w)
	if err != nil {
		return 0, err
	}
	m.dead = append(m.dead, false)
	return id, nil
}

// Delete tombstones the live edge joining u and v and returns it. The
// endpoint pair becomes free for re-insertion immediately; the tombstoned
// arcs are reclaimed by the next Compact.
func (m *Mutable) Delete(u, v int) (Edge, error) {
	e, ok := m.g.EdgeBetween(u, v)
	if !ok {
		return Edge{}, fmt.Errorf("%w: (%d,%d)", ErrNoLiveEdge, u, v)
	}
	m.dead[e.ID] = true
	m.deadN++
	delete(m.g.index, normPair(e.U, e.V))
	return e, nil
}

// LiveBetween returns the live edge joining u and v, if any. Out-of-range
// endpoints answer false.
func (m *Mutable) LiveBetween(u, v int) (Edge, bool) {
	return m.g.EdgeBetween(u, v)
}

// LiveEdges returns the live edges in insertion (underlying-ID) order.
func (m *Mutable) LiveEdges() []Edge {
	out := make([]Edge, 0, m.NumLiveEdges())
	for _, e := range m.g.edges {
		if !m.dead[e.ID] {
			out = append(out, e)
		}
	}
	return out
}

// LiveIncident returns v's live incident edges in adjacency order.
func (m *Mutable) LiveIncident(v int) []Edge {
	var out []Edge
	for _, a := range m.g.Neighbors(v) {
		if !m.dead[a.ID] {
			out = append(out, m.g.Edge(a.ID))
		}
	}
	return out
}

// Waste returns the tombstoned fraction of the underlying edge list — the
// signal for when a Compact pays off.
func (m *Mutable) Waste() float64 {
	if m.g.NumEdges() == 0 {
		return 0
	}
	return float64(m.deadN) / float64(m.g.NumEdges())
}

// Materialize densifies the live edges into a fresh plain Graph, adding them
// in insertion order so materialized edge ID i is the i-th live edge. It
// also returns ids, the materialized-ID -> underlying-ID mapping. The
// returned graph is independent of the Mutable.
//
// Because relative insertion order among surviving edges is stable under
// deletes, the materialized graph's (weight, edge ID) scan order is the
// session's canonical greedy scan order: a from-scratch rebuild of the
// materialized graph makes decisions in exactly the order the incremental
// engine maintains them in.
func (m *Mutable) Materialize() (*Graph, []int) {
	out := New(m.g.NumVertices())
	ids := make([]int, 0, m.NumLiveEdges())
	for _, e := range m.g.edges {
		if m.dead[e.ID] {
			continue
		}
		out.MustAddEdge(e.U, e.V, e.Weight)
		ids = append(ids, e.ID)
	}
	return out, ids
}

// Compact rewrites the underlying graph without tombstoned edges, renumbering
// the survivors densely in insertion order, and returns remap, the old
// underlying-ID -> new underlying-ID mapping (-1 for tombstoned IDs).
// Callers keying state by underlying IDs must remap it.
func (m *Mutable) Compact() []int {
	remap := make([]int, m.g.NumEdges())
	fresh := New(m.g.NumVertices())
	for _, e := range m.g.edges {
		if m.dead[e.ID] {
			remap[e.ID] = -1
			continue
		}
		remap[e.ID] = fresh.MustAddEdge(e.U, e.V, e.Weight)
	}
	m.g = fresh
	m.dead = make([]bool, fresh.NumEdges())
	m.deadN = 0
	return remap
}
