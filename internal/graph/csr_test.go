package graph

import (
	"math/rand"
	"testing"
)

// TestCSRIncrementalAppend grows a graph edge by edge — the exact access
// pattern of the greedy's spanner H — and checks the CSR arena stays
// consistent with a straightforward adjacency-map model.
func TestCSRIncrementalAppend(t *testing.T) {
	const n = 60
	rng := rand.New(rand.NewSource(7))
	g := New(n)
	model := make(map[int]map[int]float64, n)
	for v := 0; v < n; v++ {
		model[v] = make(map[int]float64)
	}
	for tries := 0; tries < 2000; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		w := 1 + rng.Float64()
		g.MustAddEdge(u, v, w)
		model[u][v] = w
		model[v][u] = w
	}
	for v := 0; v < n; v++ {
		arcs := g.Neighbors(v)
		if len(arcs) != len(model[v]) {
			t.Fatalf("vertex %d: %d arcs, want %d", v, len(arcs), len(model[v]))
		}
		if g.Degree(v) != len(model[v]) {
			t.Fatalf("vertex %d: Degree %d, want %d", v, g.Degree(v), len(model[v]))
		}
		for _, a := range arcs {
			if w, ok := model[v][a.To]; !ok || w != a.Weight {
				t.Fatalf("vertex %d: unexpected arc %+v", v, a)
			}
			if e := g.Edge(a.ID); e.Other(v) != a.To || e.Weight != a.Weight {
				t.Fatalf("vertex %d: arc %+v disagrees with edge %+v", v, a, e)
			}
		}
	}
}

// TestCSRCompact forces relocation churn (skewed degrees) and verifies
// explicit compaction removes all dead arena slots without changing the
// adjacency.
func TestCSRCompact(t *testing.T) {
	g := New(101)
	// A star centered on 0 relocates vertex 0's block log(n) times.
	for v := 1; v <= 100; v++ {
		g.MustAddEdge(0, v, float64(v))
	}
	before := g.Neighbors(0)
	want := make([]Arc, len(before))
	copy(want, before)

	g.Compact()
	if g.dead != 0 {
		t.Fatalf("dead = %d after Compact, want 0", g.dead)
	}
	after := g.Neighbors(0)
	if len(after) != len(want) {
		t.Fatalf("Neighbors(0) length changed: %d != %d", len(after), len(want))
	}
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("arc %d changed across Compact: %+v != %+v", i, after[i], want[i])
		}
	}
	// The graph must still accept edges after compaction.
	id := g.MustAddEdge(1, 2, 3)
	if e := g.Edge(id); e.U != 1 || e.V != 2 {
		t.Fatalf("post-compact edge mangled: %+v", e)
	}
}

// TestCSRAutoCompactBound checks the automatic compaction keeps relocation
// waste bounded: after any build, dead slots are at most half the arena
// (plus the final pre-compaction overshoot of one block).
func TestCSRAutoCompactBound(t *testing.T) {
	g := New(400)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		u, v := rng.Intn(400), rng.Intn(400)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 1)
	}
	if limit := len(g.arcs); g.dead > limit {
		t.Fatalf("dead %d exceeds arena %d", g.dead, limit)
	}
	if len(g.arcs) > 8*2*g.NumEdges() {
		t.Fatalf("arena %d is unreasonably large for %d edges", len(g.arcs), g.NumEdges())
	}
}

// TestCloneCompactsArena verifies Clone produces a hole-free arena that is
// independent of the original.
func TestCloneCompactsArena(t *testing.T) {
	g := New(50)
	for v := 1; v < 50; v++ {
		g.MustAddEdge(0, v, float64(v))
	}
	c := g.Clone()
	if c.dead != 0 {
		t.Fatalf("clone has %d dead slots, want 0", c.dead)
	}
	if len(c.arcs) != 2*c.NumEdges() {
		t.Fatalf("clone arena %d, want exactly %d", len(c.arcs), 2*c.NumEdges())
	}
	c.MustAddEdge(1, 2, 9)
	if g.HasEdge(1, 2) {
		t.Fatal("mutating clone leaked into original")
	}
	for _, a := range g.Neighbors(0) {
		if e := g.Edge(a.ID); e.Other(0) != a.To {
			t.Fatalf("original corrupted by clone mutation: %+v", a)
		}
	}
}

// TestAddVertexInterleaved interleaves vertex and edge additions, which
// exercises fresh zero-capacity segments amid an already-populated arena.
func TestAddVertexInterleaved(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	for i := 0; i < 20; i++ {
		v := g.AddVertex()
		if got := g.Degree(v); got != 0 {
			t.Fatalf("new vertex %d has degree %d", v, got)
		}
		g.MustAddEdge(v, 0, 1)
		g.MustAddEdge(v, 1, 2)
		if g.Degree(v) != 2 {
			t.Fatalf("vertex %d: degree %d after two edges", v, g.Degree(v))
		}
	}
	if !g.IsConnected() {
		t.Fatal("interleaved graph should be connected")
	}
}
