package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/bitset"
)

// triangle returns K3 with weights 1, 2, 3 on edges (0,1), (1,2), (0,2).
func triangle() *Graph {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 3)
	return g
}

func TestInducedSubgraph(t *testing.T) {
	g := triangle()
	sub, m, err := g.InducedSubgraph([]int{2, 0})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.NumVertices() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("sub = %v, want n=2 m=1", sub)
	}
	// New vertex 0 is old 2, new vertex 1 is old 0; the surviving edge is
	// old edge 2 = (0,2) with weight 3.
	if m.VertexTo[0] != 2 || m.VertexTo[1] != 0 {
		t.Errorf("VertexTo = %v", m.VertexTo)
	}
	if len(m.EdgeTo) != 1 || m.EdgeTo[0] != 2 {
		t.Errorf("EdgeTo = %v, want [2]", m.EdgeTo)
	}
	if sub.Edge(0).Weight != 3 {
		t.Errorf("surviving edge weight = %v, want 3", sub.Edge(0).Weight)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := triangle()
	if _, _, err := g.InducedSubgraph([]int{0, 3}); err == nil {
		t.Error("out-of-range vertex should error")
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate vertex should error")
	}
}

func TestFilterEdges(t *testing.T) {
	g := triangle()
	sub, m := g.FilterEdges(func(e Edge) bool { return e.Weight < 3 })
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("filter result %v, want n=3 m=2", sub)
	}
	if len(m.EdgeTo) != 2 || m.EdgeTo[0] != 0 || m.EdgeTo[1] != 1 {
		t.Errorf("EdgeTo = %v, want [0 1]", m.EdgeTo)
	}
}

func TestDeleteEdges(t *testing.T) {
	g := triangle()
	del := bitset.FromSlice(g.NumEdges(), []int{1})
	sub, m := g.DeleteEdges(del)
	if sub.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2", sub.NumEdges())
	}
	for _, old := range m.EdgeTo {
		if old == 1 {
			t.Error("deleted edge survived")
		}
	}
	// nil set deletes nothing.
	all, _ := g.DeleteEdges(nil)
	if all.NumEdges() != 3 {
		t.Errorf("DeleteEdges(nil) m = %d, want 3", all.NumEdges())
	}
}

func TestDeleteVertices(t *testing.T) {
	g := triangle()
	sub, m := g.DeleteVertices(bitset.FromSlice(3, []int{1}))
	if sub.NumVertices() != 2 || sub.NumEdges() != 1 {
		t.Fatalf("after deleting vertex 1: %v", sub)
	}
	if m.VertexTo[0] != 0 || m.VertexTo[1] != 2 {
		t.Errorf("VertexTo = %v, want [0 2]", m.VertexTo)
	}
	if m.EdgeTo[0] != 2 {
		t.Errorf("EdgeTo = %v, want [2]", m.EdgeTo)
	}
}

func TestUnion(t *testing.T) {
	a := New(3)
	a.MustAddEdge(0, 1, 1)
	b := New(3)
	b.MustAddEdge(1, 0, 9) // duplicate of a's edge, opposite orientation
	b.MustAddEdge(1, 2, 2)
	u, err := Union(a, b)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	if u.NumEdges() != 2 {
		t.Fatalf("union m = %d, want 2", u.NumEdges())
	}
	e, _ := u.EdgeBetween(0, 1)
	if e.Weight != 1 {
		t.Errorf("first-wins weight = %v, want 1", e.Weight)
	}
	if _, err := Union(New(2), New(3)); err == nil {
		t.Error("union with mismatched vertex counts should error")
	}
}

func TestCartesianProductC3K2(t *testing.T) {
	c3 := triangle()
	k2 := New(2)
	k2.MustAddEdge(0, 1, 7)
	p := CartesianProduct(c3, k2)
	// C3 x K2 is the 3-prism: 6 vertices, 3*2 + 3*1 = 9 edges, 3-regular.
	if p.NumVertices() != 6 || p.NumEdges() != 9 {
		t.Fatalf("prism = %v, want n=6 m=9", p)
	}
	for v := 0; v < 6; v++ {
		if p.Degree(v) != 3 {
			t.Errorf("Degree(%d) = %d, want 3", v, p.Degree(v))
		}
	}
	// Weights: copies of C3 edges keep C3 weights; rungs keep K2's weight 7.
	e, ok := p.EdgeBetween(0, 1) // (x=0,y=0)-(x=0,y=1): rung
	if !ok || e.Weight != 7 {
		t.Errorf("rung edge = %+v, %v; want weight 7", e, ok)
	}
	e, ok = p.EdgeBetween(0, 2) // (0,0)-(1,0): copy of C3 edge (0,1) weight 1
	if !ok || e.Weight != 1 {
		t.Errorf("base edge = %+v, %v; want weight 1", e, ok)
	}
}

func TestBlowup(t *testing.T) {
	// Blow up a single weighted edge with t=3: K_{3,3} with that weight.
	g := New(2)
	g.MustAddEdge(0, 1, 2.5)
	b := Blowup(g, 3)
	if b.NumVertices() != 6 || b.NumEdges() != 9 {
		t.Fatalf("blow-up n=%d m=%d, want 6, 9", b.NumVertices(), b.NumEdges())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			e, ok := b.EdgeBetween(i, 3+j)
			if !ok || e.Weight != 2.5 {
				t.Errorf("missing blow-up edge (%d,%d)", i, 3+j)
			}
		}
		// Copies of the same vertex are not adjacent.
		for j := i + 1; j < 3; j++ {
			if b.HasEdge(i, j) || b.HasEdge(3+i, 3+j) {
				t.Error("copies of one vertex must stay independent")
			}
		}
	}
	// t <= 1 is the identity (shape-wise).
	idt := Blowup(triangle(), 1)
	if idt.NumVertices() != 3 || idt.NumEdges() != 3 {
		t.Error("t=1 blow-up should equal the base")
	}
	if got := Blowup(triangle(), 0); got.NumVertices() != 3 {
		t.Error("t<1 should clamp to 1")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(4, 5, 1)
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 should share a component")
	}
	if labels[3] == labels[0] || labels[3] == labels[4] {
		t.Error("3 should be isolated")
	}
	if labels[4] != labels[5] {
		t.Error("4,5 should share a component")
	}
	if g.IsConnected() {
		t.Error("IsConnected() = true, want false")
	}
	if !triangle().IsConnected() {
		t.Error("triangle should be connected")
	}
}

func TestEmptyGraphConnected(t *testing.T) {
	if !New(0).IsConnected() {
		t.Error("empty graph should count as connected")
	}
	if !New(1).IsConnected() {
		t.Error("single vertex should be connected")
	}
}

// TestQuickInducedSubgraphPreservesWeights: edges surviving into a random
// induced subgraph keep their weight and map back to the right original edge.
func TestQuickInducedSubgraphPreservesWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := New(n)
		for tries := 0; tries < 2*n; tries++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || g.HasEdge(u, v) {
				continue
			}
			g.MustAddEdge(u, v, 1+rng.Float64())
		}
		perm := rng.Perm(n)
		k := 1 + rng.Intn(n)
		sub, m, err := g.InducedSubgraph(perm[:k])
		if err != nil {
			return false
		}
		for newID, oldID := range m.EdgeTo {
			ne, oe := sub.Edge(newID), g.Edge(oldID)
			if ne.Weight != oe.Weight {
				return false
			}
			if m.VertexTo[ne.U] != oe.U && m.VertexTo[ne.U] != oe.V {
				return false
			}
		}
		// Edge count matches a direct count of internal edges.
		inSub := make(map[int]bool, k)
		for _, v := range perm[:k] {
			inSub[v] = true
		}
		want := 0
		for _, e := range g.Edges() {
			if inSub[e.U] && inSub[e.V] {
				want++
			}
		}
		return sub.NumEdges() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
