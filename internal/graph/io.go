package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes the graph in a simple line-oriented text format:
//
//	p <numVertices> <numEdges>
//	e <u> <v> <weight>    (one line per edge, in edge-ID order)
//
// Lines starting with '#' are comments. The format round-trips exactly
// through Decode, including edge IDs (which are assigned in line order).
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %s\n", e.U, e.V, strconv.FormatFloat(e.Weight, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses a graph in the format produced by Encode.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		g       *Graph
		lineNum int
		edges   int
	)
	for sc.Scan() {
		lineNum++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", lineNum)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: header needs 2 fields, got %d", lineNum, len(fields)-1)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %w", lineNum, err)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge count: %w", lineNum, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative counts", lineNum)
			}
			g = New(n)
			edges = m
		case "e":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", lineNum)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: edge needs 3 fields, got %d", lineNum, len(fields)-1)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint: %w", lineNum, err)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad endpoint: %w", lineNum, err)
			}
			wgt, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNum, err)
			}
			if _, err := g.AddEdge(u, v, wgt); err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNum, err)
			}
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNum, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	if g.NumEdges() != edges {
		return nil, fmt.Errorf("graph: header promised %d edges, found %d", edges, g.NumEdges())
	}
	return g, nil
}
