// Package blocking implements the paper's proof machinery: blocking sets
// (Definition 3), their extraction from a fault-tolerant greedy run
// (Lemma 3), the random subsampling argument (Lemma 4), and the edge
// blocking sets of the concluding EFT remark. Each construction comes with
// an exact verifier based on bounded cycle enumeration, so the lemmas can be
// checked as executable invariants (experiments E4, E5, E9).
package blocking

import (
	"fmt"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// Pair is a vertex–edge blocking pair (v, e) with v not an endpoint of e.
// EdgeID refers to the edge IDs of the graph the blocking set is for.
type Pair struct {
	Vertex int
	EdgeID int
}

// EdgePair is an edge–edge blocking pair (e1, e2), e1 != e2, for the EFT
// variant from the paper's concluding remark.
type EdgePair struct {
	E1, E2 int
}

// VerifyVertexBlocking checks that pairs form a valid maxCycleLen-blocking
// set for h (Definition 3): every pair has Vertex not an endpoint of EdgeID,
// and every cycle of at most maxCycleLen edges contains some pair entirely
// (its vertex and its edge). It returns nil on success and a descriptive
// error naming an unblocked cycle otherwise.
func VerifyVertexBlocking(h *graph.Graph, pairs []Pair, maxCycleLen int) error {
	// Index pairs by edge for O(cycle length · pairs-per-edge) checks.
	byEdge := make(map[int][]int) // edge ID -> vertices paired with it
	for _, p := range pairs {
		if p.EdgeID < 0 || p.EdgeID >= h.NumEdges() {
			return fmt.Errorf("blocking: pair %+v has invalid edge", p)
		}
		if p.Vertex < 0 || p.Vertex >= h.NumVertices() {
			return fmt.Errorf("blocking: pair %+v has invalid vertex", p)
		}
		e := h.Edge(p.EdgeID)
		if e.U == p.Vertex || e.V == p.Vertex {
			return fmt.Errorf("blocking: pair %+v violates v ∉ e for edge (%d,%d)", p, e.U, e.V)
		}
		byEdge[p.EdgeID] = append(byEdge[p.EdgeID], p.Vertex)
	}

	var bad error
	EnumerateCycles(h, maxCycleLen, func(verts, edges []int) bool {
		onCycle := make(map[int]bool, len(verts))
		for _, v := range verts {
			onCycle[v] = true
		}
		for _, eid := range edges {
			for _, v := range byEdge[eid] {
				if onCycle[v] {
					return true // this cycle is blocked; keep going
				}
			}
		}
		bad = fmt.Errorf("blocking: cycle %v (edges %v) is not blocked", append([]int(nil), verts...), append([]int(nil), edges...))
		return false
	})
	return bad
}

// VerifyEdgeBlocking checks that pairs form a valid edge maxCycleLen-blocking
// set for h: every cycle of at most maxCycleLen edges contains both edges of
// some pair.
func VerifyEdgeBlocking(h *graph.Graph, pairs []EdgePair, maxCycleLen int) error {
	byEdge := make(map[int][]int) // edge -> partner edges
	for _, p := range pairs {
		if p.E1 == p.E2 {
			return fmt.Errorf("blocking: edge pair %+v is not distinct", p)
		}
		for _, e := range []int{p.E1, p.E2} {
			if e < 0 || e >= h.NumEdges() {
				return fmt.Errorf("blocking: edge pair %+v has invalid edge", p)
			}
		}
		byEdge[p.E1] = append(byEdge[p.E1], p.E2)
		byEdge[p.E2] = append(byEdge[p.E2], p.E1)
	}

	var bad error
	EnumerateCycles(h, maxCycleLen, func(verts, edges []int) bool {
		onCycle := make(map[int]bool, len(edges))
		for _, e := range edges {
			onCycle[e] = true
		}
		for _, eid := range edges {
			for _, partner := range byEdge[eid] {
				if onCycle[partner] {
					return true
				}
			}
		}
		bad = fmt.Errorf("blocking: cycle %v (edges %v) is not edge-blocked", append([]int(nil), verts...), append([]int(nil), edges...))
		return false
	})
	return bad
}

// EnumerateCycles visits every simple cycle of h with at most maxLen edges
// exactly once, as (vertices, edge IDs) slices of equal length (edges[i]
// joins verts[i] and verts[(i+1)%len]). The slices are reused across calls;
// copy them to retain. visit returns false to stop the enumeration.
//
// Cycles are canonicalized by requiring the start vertex to be the cycle's
// minimum and the second vertex to be smaller than the last, so each cycle
// appears once in one orientation. The running time is proportional to the
// number of bounded-length paths, which is fine for the short cycle lengths
// (k+1) the blocking machinery cares about.
func EnumerateCycles(h *graph.Graph, maxLen int, visit func(verts, edges []int) bool) {
	if maxLen < 3 {
		return
	}
	n := h.NumVertices()
	onPath := make([]bool, n)
	verts := make([]int, 0, maxLen)
	edges := make([]int, 0, maxLen)
	stopped := false

	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		if stopped {
			return
		}
		for _, arc := range h.Neighbors(cur) {
			next := arc.To
			if next == start && len(verts) >= 3 {
				// Canonical orientation: second vertex < last vertex.
				if verts[1] < verts[len(verts)-1] {
					edges = append(edges, arc.ID)
					if !visit(verts, edges) {
						stopped = true
					}
					edges = edges[:len(edges)-1]
					if stopped {
						return
					}
				}
				continue
			}
			if next <= start || onPath[next] || len(verts) == maxLen {
				continue
			}
			onPath[next] = true
			verts = append(verts, next)
			edges = append(edges, arc.ID)
			dfs(start, next)
			verts = verts[:len(verts)-1]
			edges = edges[:len(edges)-1]
			onPath[next] = false
			if stopped {
				return
			}
		}
	}

	for s := 0; s < n && !stopped; s++ {
		onPath[s] = true
		verts = append(verts[:0], s)
		edges = edges[:0]
		dfs(s, s)
		onPath[s] = false
	}
}

// CountCycles returns the number of simple cycles with at most maxLen edges.
func CountCycles(h *graph.Graph, maxLen int) int {
	count := 0
	EnumerateCycles(h, maxLen, func(_, _ []int) bool {
		count++
		return true
	})
	return count
}
