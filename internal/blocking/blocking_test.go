package blocking

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/girth"
)

func TestEnumerateCyclesTriangle(t *testing.T) {
	g := gen.Complete(3)
	var count int
	EnumerateCycles(g, 3, func(verts, edges []int) bool {
		count++
		if len(verts) != 3 || len(edges) != 3 {
			t.Errorf("triangle reported with %d verts %d edges", len(verts), len(edges))
		}
		if verts[0] != 0 {
			t.Errorf("cycle should start at its min vertex, got %v", verts)
		}
		return true
	})
	if count != 1 {
		t.Errorf("K3 has %d cycles of length <= 3, want 1", count)
	}
}

func TestEnumerateCyclesK4(t *testing.T) {
	g := gen.Complete(4)
	// K4: 4 triangles, 3 four-cycles.
	if got := CountCycles(g, 3); got != 4 {
		t.Errorf("K4 triangles = %d, want 4", got)
	}
	if got := CountCycles(g, 4); got != 7 {
		t.Errorf("K4 cycles <= 4 = %d, want 7", got)
	}
	if got := CountCycles(g, 2); got != 0 {
		t.Errorf("cycles <= 2 = %d, want 0", got)
	}
}

func TestEnumerateCyclesEdgesMatchVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.ConnectedGNM(10, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	EnumerateCycles(g, 6, func(verts, edges []int) bool {
		if len(verts) != len(edges) {
			t.Fatalf("cycle %v has %d edges", verts, len(edges))
		}
		for i, eid := range edges {
			e := g.Edge(eid)
			a, b := verts[i], verts[(i+1)%len(verts)]
			eu, ev := e.Endpoints()
			na, nb := a, b
			if na > nb {
				na, nb = nb, na
			}
			if eu != na || ev != nb {
				t.Fatalf("cycle %v edge %d does not join %d-%d", verts, eid, a, b)
			}
		}
		return true
	})
}

func TestEnumerateCyclesEarlyStop(t *testing.T) {
	g := gen.Complete(5)
	count := 0
	EnumerateCycles(g, 5, func(_, _ []int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d cycles, want 2", count)
	}
}

// cyclesBrute counts cycles up to maxLen by enumerating vertex subsets — an
// independent reference for small graphs via permanent-style DFS on each
// subset is overkill; instead compare against the known closed-form counts
// of complete graphs: cycles of length L in K_n = C(n,L)·(L-1)!/2.
func TestEnumerateCyclesCompleteGraphCounts(t *testing.T) {
	choose := func(n, k int) int {
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	fact := func(k int) int {
		r := 1
		for i := 2; i <= k; i++ {
			r *= i
		}
		return r
	}
	for _, n := range []int{4, 5, 6} {
		g := gen.Complete(n)
		for maxLen := 3; maxLen <= n; maxLen++ {
			want := 0
			for l := 3; l <= maxLen; l++ {
				want += choose(n, l) * fact(l-1) / 2
			}
			if got := CountCycles(g, maxLen); got != want {
				t.Errorf("K%d cycles <= %d: got %d, want %d", n, maxLen, got, want)
			}
		}
	}
}

func TestVerifyVertexBlockingManual(t *testing.T) {
	// C4 plus chord: cycles (0,1,2,3), (0,1,2), wait — build C4 0-1-2-3 and
	// chord (0,2): triangles (0,1,2) and (0,2,3), square (0,1,2,3).
	g, err := gen.Cycle(4)
	if err != nil {
		t.Fatal(err)
	}
	chord := g.MustAddEdge(0, 2, 1)

	// Block both triangles and the square: pair (3, chord) blocks the
	// triangle (0,2,3)? No: 3 is on that triangle and chord is on it too.
	// Triangle (0,1,2): needs a pair; (3, edge(0,1)) has 3 not on it.
	// Use (1, chord) for triangle (0,1,2) and square? square contains 1 and
	// chord is not on the square. So add (3, edge 0) for the square: vertex
	// 3 is on it, edge 0=(0,1) is on it.
	pairs := []Pair{
		{Vertex: 1, EdgeID: chord}, // blocks (0,1,2)
		{Vertex: 3, EdgeID: chord}, // blocks (0,2,3)
		{Vertex: 3, EdgeID: 0},     // blocks (0,1,2,3)
	}
	if err := VerifyVertexBlocking(g, pairs, 4); err != nil {
		t.Errorf("valid blocking set rejected: %v", err)
	}
	// Remove one pair: the square is unblocked.
	if err := VerifyVertexBlocking(g, pairs[:2], 4); err == nil {
		t.Error("missing square block should be caught")
	} else if !strings.Contains(err.Error(), "not blocked") {
		t.Errorf("unexpected error: %v", err)
	}
	// But up to length 3 the two pairs suffice.
	if err := VerifyVertexBlocking(g, pairs[:2], 3); err != nil {
		t.Errorf("triangle-only check should pass: %v", err)
	}
}

func TestVerifyVertexBlockingRejectsBadPairs(t *testing.T) {
	g := gen.Complete(3)
	if err := VerifyVertexBlocking(g, []Pair{{Vertex: 0, EdgeID: 0}}, 3); err == nil {
		t.Error("v ∈ e must be rejected")
	}
	if err := VerifyVertexBlocking(g, []Pair{{Vertex: 9, EdgeID: 0}}, 3); err == nil {
		t.Error("invalid vertex must be rejected")
	}
	if err := VerifyVertexBlocking(g, []Pair{{Vertex: 0, EdgeID: 9}}, 3); err == nil {
		t.Error("invalid edge must be rejected")
	}
	// Empty pairs on an acyclic graph is fine.
	if err := VerifyVertexBlocking(gen.Path(5), nil, 5); err != nil {
		t.Errorf("forest needs no blocking: %v", err)
	}
	// Empty pairs on a graph with a short cycle fails.
	if err := VerifyVertexBlocking(g, nil, 3); err == nil {
		t.Error("triangle with no pairs must fail")
	}
}

func TestVerifyEdgeBlockingManual(t *testing.T) {
	g := gen.Complete(3) // edges 0=(0,1), 1=(0,2), 2=(1,2)
	pairs := []EdgePair{{E1: 0, E2: 2}}
	if err := VerifyEdgeBlocking(g, pairs, 3); err != nil {
		t.Errorf("valid edge blocking set rejected: %v", err)
	}
	if err := VerifyEdgeBlocking(g, nil, 3); err == nil {
		t.Error("triangle with no pairs must fail")
	}
	if err := VerifyEdgeBlocking(g, []EdgePair{{E1: 1, E2: 1}}, 3); err == nil {
		t.Error("non-distinct pair must be rejected")
	}
	if err := VerifyEdgeBlocking(g, []EdgePair{{E1: 1, E2: 9}}, 3); err == nil {
		t.Error("invalid edge must be rejected")
	}
}

func TestLemma3FromGreedyRun(t *testing.T) {
	// The paper's Lemma 3 as an executable invariant: run the VFT greedy,
	// extract B, check |B| <= f|E(H)| and that B is a (k+1)-blocking set.
	rng := rand.New(rand.NewSource(7))
	for _, tc := range []struct {
		n, m, f int
		stretch int
	}{
		{n: 14, m: 60, f: 1, stretch: 3},
		{n: 14, m: 70, f: 2, stretch: 3},
		{n: 12, m: 40, f: 2, stretch: 5},
	} {
		base, err := gen.ConnectedGNM(tc.n, tc.m, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.GreedyVFT(base, float64(tc.stretch), tc.f)
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := FromResult(res)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) > tc.f*res.Spanner.NumEdges() {
			t.Errorf("n=%d f=%d: |B|=%d exceeds f|E(H)|=%d",
				tc.n, tc.f, len(pairs), tc.f*res.Spanner.NumEdges())
		}
		if err := VerifyVertexBlocking(res.Spanner, pairs, tc.stretch+1); err != nil {
			t.Errorf("n=%d f=%d: Lemma 3 blocking set invalid: %v", tc.n, tc.f, err)
		}
	}
}

func TestFromResultModeChecks(t *testing.T) {
	g := gen.Complete(5)
	vft, err := core.GreedyVFT(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	eft, err := core.GreedyEFT(g, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromResult(eft); err == nil {
		t.Error("FromResult should reject EFT runs")
	}
	if _, err := EdgePairsFromResult(vft); err == nil {
		t.Error("EdgePairsFromResult should reject VFT runs")
	}
	if _, err := FromResult(vft); err != nil {
		t.Errorf("FromResult on VFT: %v", err)
	}
	if _, err := EdgePairsFromResult(eft); err != nil {
		t.Errorf("EdgePairsFromResult on EFT: %v", err)
	}
}

func TestEFTRemarkEdgeBlockingFromGreedy(t *testing.T) {
	// The paper's concluding remark, first claim: the EFT greedy admits an
	// edge (k+1)-blocking set of size <= f|E(H)|.
	rng := rand.New(rand.NewSource(8))
	base, err := gen.ConnectedGNM(12, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	const f, stretch = 2, 3
	res, err := core.GreedyEFT(base, stretch, f)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := EdgePairsFromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) > f*res.Spanner.NumEdges() {
		t.Errorf("|B|=%d exceeds f|E(H)|=%d", len(pairs), f*res.Spanner.NumEdges())
	}
	if err := VerifyEdgeBlocking(res.Spanner, pairs, stretch+1); err != nil {
		t.Errorf("EFT blocking set invalid: %v", err)
	}
}

func TestSubsampleLemma4(t *testing.T) {
	// Build a VFT greedy spanner, extract its blocking set, and run the
	// Lemma 4 subsample: the result must always have girth > k+1, exactly
	// ceil(n/2f) nodes, and (on average over trials) Omega(m/f^2) edges.
	rng := rand.New(rand.NewSource(9))
	base, err := gen.ConnectedGNM(60, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	const f, stretch = 2, 3
	res, err := core.GreedyVFT(base, stretch, f)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := FromResult(res)
	if err != nil {
		t.Fatal(err)
	}
	h := res.Spanner
	wantNodes := (h.NumVertices() + 2*f - 1) / (2 * f)
	for trial := 0; trial < 20; trial++ {
		final, stats, err := Subsample(h, pairs, f, rng)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Nodes != wantNodes || final.NumVertices() != wantNodes {
			t.Fatalf("trial %d: nodes = %d, want %d", trial, stats.Nodes, wantNodes)
		}
		if stats.Girth <= stretch+1 {
			t.Fatalf("trial %d: girth %d <= %d — Lemma 4 violated", trial, stats.Girth, stretch+1)
		}
		if gg := girth.Girth(final); gg != stats.Girth {
			t.Fatalf("reported girth %d != recomputed %d", stats.Girth, gg)
		}
		if stats.Edges != final.NumEdges() {
			t.Fatalf("edge stat mismatch")
		}
		if stats.DeletedEdges > stats.SurvivingPairs {
			t.Fatalf("deleted %d edges from %d pairs", stats.DeletedEdges, stats.SurvivingPairs)
		}
	}
}

func TestSubsampleArgumentChecks(t *testing.T) {
	g := gen.Complete(4)
	if _, _, err := Subsample(g, nil, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("f=0 should error")
	}
}

// TestQuickSubsampleGirthInvariant: for any graph and any valid blocking
// set, the subsample always has girth > the blocking parameter. We use the
// trivial-but-valid blocking set of ALL admissible (v,e) pairs over each
// short cycle, built by enumeration.
func TestQuickSubsampleGirthInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		maxM := n * (n - 1) / 2
		m := (n - 1) + rng.Intn(maxM-(n-1)+1)
		g, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		const L = 4
		// Collect pairs (v, e): v on cycle, e on cycle, v not endpoint of e.
		seen := make(map[Pair]bool)
		EnumerateCycles(g, L, func(verts, edges []int) bool {
			for _, v := range verts {
				for _, eid := range edges {
					e := g.Edge(eid)
					if e.U != v && e.V != v {
						seen[Pair{Vertex: v, EdgeID: eid}] = true
					}
				}
			}
			return true
		})
		pairs := make([]Pair, 0, len(seen))
		for p := range seen {
			pairs = append(pairs, p)
		}
		if err := VerifyVertexBlocking(g, pairs, L); err != nil {
			return false // the all-pairs set must always be valid
		}
		fParam := 1 + rng.Intn(3)
		_, stats, err := Subsample(g, pairs, fParam, rng)
		if err != nil {
			return false
		}
		return stats.Girth > L
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProductEdgeBlocking(t *testing.T) {
	// Base: high-girth graph with girth > 6; product with K_{2,2}; the
	// explicit set must block all cycles up to 6 edges.
	rng := rand.New(rand.NewSource(10))
	base := gen.HighGirth(14, 6, 0, rng)
	if girth.Girth(base) <= 6 {
		t.Fatal("test setup: base girth too small")
	}
	product, pairs, err := ProductEdgeBlocking(base, 2)
	if err != nil {
		t.Fatal(err)
	}
	if product.NumVertices() != base.NumVertices()*4 {
		t.Fatalf("product order %d", product.NumVertices())
	}
	for _, maxLen := range []int{4, 5, 6} {
		if err := VerifyEdgeBlocking(product, pairs, maxLen); err != nil {
			t.Errorf("maxLen=%d: %v", maxLen, err)
		}
	}
	// The remark's size requirement |B| <= f|E(H)| with f = 2·side.
	f := 4
	if len(pairs) > f*product.NumEdges() {
		t.Errorf("|B|=%d > f|E|=%d", len(pairs), f*product.NumEdges())
	}
	if _, _, err := ProductEdgeBlocking(base, 0); err == nil {
		t.Error("side=0 should error")
	}
}

func TestBlowupEdgeBlocking(t *testing.T) {
	// The paper's exact construction: blow-up of a high-girth base; the
	// shared-endpoint same-base-edge pairs must block every short cycle.
	rng := rand.New(rand.NewSource(12))
	base := gen.HighGirth(12, 6, 0, rng)
	if girth.Girth(base) <= 6 {
		t.Fatal("test setup: base girth too small")
	}
	for _, tt := range []int{1, 2, 3} {
		blowup, pairs, err := BlowupEdgeBlocking(base, tt)
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if blowup.NumVertices() != base.NumVertices()*tt {
			t.Fatalf("t=%d: blow-up order %d", tt, blowup.NumVertices())
		}
		if blowup.NumEdges() != base.NumEdges()*tt*tt {
			t.Fatalf("t=%d: blow-up size %d", tt, blowup.NumEdges())
		}
		wantPairs := base.NumEdges() * tt * tt * (tt - 1)
		if len(pairs) != wantPairs {
			t.Errorf("t=%d: |B| = %d, want %d", tt, len(pairs), wantPairs)
		}
		for _, maxLen := range []int{4, 6} {
			if err := VerifyEdgeBlocking(blowup, pairs, maxLen); err != nil {
				t.Errorf("t=%d maxLen=%d: %v", tt, maxLen, err)
			}
		}
		// The remark's size budget with f = 2t: |B| <= f|E|.
		if f := 2 * tt; len(pairs) > f*blowup.NumEdges() {
			t.Errorf("t=%d: |B|=%d exceeds f|E|=%d", tt, len(pairs), f*blowup.NumEdges())
		}
	}
	if _, _, err := BlowupEdgeBlocking(base, 0); err == nil {
		t.Error("t=0 should error")
	}
}

func TestProductEdgeBlockingSideOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	base := gen.HighGirth(10, 5, 0, rng)
	product, pairs, err := ProductEdgeBlocking(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEdgeBlocking(product, pairs, 5); err != nil {
		t.Errorf("side=1: %v", err)
	}
}

// TestQuickBlowupShortCyclesAreBlocked: for random high-girth bases and
// blow-up factors, the paper's shared-endpoint blocking set blocks every
// 4-cycle the blow-up introduces (blow-ups with t >= 2 always contain
// 4-cycles through two copies of one base edge, so this is not vacuous).
func TestQuickBlowupShortCyclesAreBlocked(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nBase := 8 + rng.Intn(8)
		base := gen.HighGirth(nBase, 5, 0, rng)
		tFactor := 2 + rng.Intn(2)
		blowup, pairs, err := BlowupEdgeBlocking(base, tFactor)
		if err != nil {
			return false
		}
		if base.NumEdges() > 0 && girth.Girth(blowup) != 4 {
			return false // t>=2 blow-ups of non-empty graphs have girth exactly 4
		}
		return VerifyEdgeBlocking(blowup, pairs, 5) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

var benchSink int

func BenchmarkEnumerateCycles(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := gen.ConnectedGNM(40, 200, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchSink = CountCycles(g, 5)
	}
}
