package blocking

import (
	"fmt"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/core"
	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/girth"
	"github.com/ftspanner/ftspanner/internal/graph"
)

// FromResult extracts the Lemma 3 blocking set from a VFT greedy run:
// B = {(x, e) : e kept, x ∈ F_e}, with edges identified by the spanner's own
// edge IDs. Its size is at most Faults·|E(H)| by construction, and Lemma 3
// proves it is a (Stretch+1)-blocking set of the spanner for integer
// stretch; VerifyVertexBlocking checks exactly that.
func FromResult(res *core.Result) ([]Pair, error) {
	if res.Mode != fault.Vertices {
		return nil, fmt.Errorf("blocking: vertex blocking set needs a VFT run, got %v", res.Mode)
	}
	if res.Witness == nil {
		return nil, fmt.Errorf("blocking: result carries no witnesses (conservative build?)")
	}
	var pairs []Pair
	for hid, gid := range res.Kept {
		for _, x := range res.Witness[gid] {
			pairs = append(pairs, Pair{Vertex: x, EdgeID: hid})
		}
	}
	return pairs, nil
}

// EdgePairsFromResult extracts the edge blocking set of the paper's EFT
// remark from an EFT greedy run: B = {(e', e) : e kept, e' ∈ F_e}, with
// edges identified by the spanner's own edge IDs.
func EdgePairsFromResult(res *core.Result) ([]EdgePair, error) {
	if res.Mode != fault.Edges {
		return nil, fmt.Errorf("blocking: edge blocking set needs an EFT run, got %v", res.Mode)
	}
	if res.Witness == nil {
		return nil, fmt.Errorf("blocking: result carries no witnesses (conservative build?)")
	}
	gToH := make(map[int]int, len(res.Kept))
	for hid, gid := range res.Kept {
		gToH[gid] = hid
	}
	var pairs []EdgePair
	for hid, gid := range res.Kept {
		for _, fe := range res.Witness[gid] {
			partner, ok := gToH[fe]
			if !ok {
				return nil, fmt.Errorf("blocking: witness edge %d of kept edge %d is not in the spanner", fe, gid)
			}
			pairs = append(pairs, EdgePair{E1: partner, E2: hid})
		}
	}
	return pairs, nil
}

// SubsampleStats reports one run of the Lemma 4 procedure.
type SubsampleStats struct {
	// SampleSize is ⌈n/(2f)⌉, the number of vertices drawn.
	SampleSize int
	// Nodes and Edges are the order and size of the final graph H''.
	Nodes, Edges int
	// SurvivingPairs is |B'|, the blocking pairs fully inside the sample.
	SurvivingPairs int
	// DeletedEdges is how many induced edges were removed because of B'.
	DeletedEdges int
	// Girth is the girth of H'' (girth.Acyclic if it is a forest).
	Girth int
}

// Subsample runs the randomized procedure of Lemma 4 on h with blocking set
// pairs and parameter f >= 1: induce h on ⌈n/(2f)⌉ uniformly random
// vertices, keep the blocking pairs whose vertex and edge survive, delete
// every surviving edge named by such a pair, and return the resulting graph
// H” with its statistics. Lemma 4 promises E[edges of H”] = Ω(m/f²) and
// girth > k+1 whenever pairs is a (k+1)-blocking set.
func Subsample(h *graph.Graph, pairs []Pair, f int, rng *rand.Rand) (*graph.Graph, *SubsampleStats, error) {
	if f < 1 {
		return nil, nil, fmt.Errorf("blocking: subsample needs f >= 1, got %d", f)
	}
	n := h.NumVertices()
	size := (n + 2*f - 1) / (2 * f) // ⌈n/(2f)⌉
	if size > n {
		size = n
	}
	sample := rng.Perm(n)[:size]

	sub, m, err := h.InducedSubgraph(sample)
	if err != nil {
		return nil, nil, err
	}
	inSample := make(map[int]bool, size)
	for _, v := range sample {
		inSample[v] = true
	}
	oldToNewEdge := make(map[int]int, len(m.EdgeTo))
	for newID, oldID := range m.EdgeTo {
		oldToNewEdge[oldID] = newID
	}

	stats := &SubsampleStats{SampleSize: size}
	deleted := make(map[int]bool)
	for _, p := range pairs {
		newEdge, edgeSurvives := oldToNewEdge[p.EdgeID]
		if !edgeSurvives || !inSample[p.Vertex] {
			continue
		}
		stats.SurvivingPairs++
		if !deleted[newEdge] {
			deleted[newEdge] = true
			stats.DeletedEdges++
		}
	}
	final, _ := sub.FilterEdges(func(e graph.Edge) bool { return !deleted[e.ID] })

	stats.Nodes = final.NumVertices()
	stats.Edges = final.NumEdges()
	stats.Girth = girth.Girth(final)
	return final, stats, nil
}

// BlowupEdgeBlocking builds the paper's concluding-remark witness exactly as
// described: the BDPW lower-bound graph (the blow-up of a high-girth base
// with t copies per vertex) together with its edge blocking set — "all pairs
// of edges that share an endpoint in the product graph and which correspond
// to the same edge in the initial high-girth graph".
//
// Validity: a cycle with at most girth(base)-1 edges projects to a closed
// base walk too short to contain a base cycle, so its trace is tree-like;
// at any leaf base-vertex x of the trace, the cycle enters and leaves some
// copy of x through two distinct product edges that share that copy and
// project to the same base edge — a pair of the set. Size: each base edge
// contributes 2·t·C(t,2) = t²(t-1) pairs against a budget of f·t² per edge
// whenever t-1 <= f, which holds for the paper's t = ⌊f/2⌋.
func BlowupEdgeBlocking(base *graph.Graph, t int) (*graph.Graph, []EdgePair, error) {
	if t < 1 {
		return nil, nil, fmt.Errorf("blocking: blow-up factor must be >= 1, got %d", t)
	}
	blowup := graph.Blowup(base, t)
	productEdge := func(u, v int) (int, error) {
		e, ok := blowup.EdgeBetween(u, v)
		if !ok {
			return 0, fmt.Errorf("blocking: expected blow-up edge (%d,%d) missing", u, v)
		}
		return e.ID, nil
	}
	var pairs []EdgePair
	for _, be := range base.Edges() {
		for i := 0; i < t; i++ {
			// Pairs sharing the copy (be.U, i).
			for j1 := 0; j1 < t; j1++ {
				for j2 := j1 + 1; j2 < t; j2++ {
					e1, err := productEdge(be.U*t+i, be.V*t+j1)
					if err != nil {
						return nil, nil, err
					}
					e2, err := productEdge(be.U*t+i, be.V*t+j2)
					if err != nil {
						return nil, nil, err
					}
					pairs = append(pairs, EdgePair{E1: e1, E2: e2})
				}
			}
			// Pairs sharing the copy (be.V, i).
			for j1 := 0; j1 < t; j1++ {
				for j2 := j1 + 1; j2 < t; j2++ {
					e1, err := productEdge(be.U*t+j1, be.V*t+i)
					if err != nil {
						return nil, nil, err
					}
					e2, err := productEdge(be.U*t+j2, be.V*t+i)
					if err != nil {
						return nil, nil, err
					}
					pairs = append(pairs, EdgePair{E1: e1, E2: e2})
				}
			}
		}
	}
	return blowup, pairs, nil
}

// ProductEdgeBlocking builds an alternative witness for the concluding
// remark under the literal Cartesian-product reading of its construction:
// the Cartesian product of a high-girth base graph with the biclique
// K_{side,side}, together with an explicit edge blocking set for it (the
// primary, blow-up reading is BlowupEdgeBlocking).
//
// The pairs are (1) every two distinct copies of the same base edge — any
// short cycle whose projection to the base is non-trivial traverses some
// base edge twice, because the base has no short cycles — and (2) for each
// base vertex's biclique copy, every two biclique edges sharing a left
// endpoint — any cycle confined to one biclique copy passes through some
// left vertex using exactly two of its edges. Together these block every
// cycle of the product with at most base-girth-1 edges, which the tests
// confirm by exhaustive cycle enumeration.
func ProductEdgeBlocking(base *graph.Graph, side int) (*graph.Graph, []EdgePair, error) {
	if side < 1 {
		return nil, nil, fmt.Errorf("blocking: biclique side must be >= 1, got %d", side)
	}
	biclique := graph.New(2 * side)
	for l := 0; l < side; l++ {
		for r := 0; r < side; r++ {
			biclique.MustAddEdge(l, side+r, 1)
		}
	}
	product := graph.CartesianProduct(base, biclique)

	nb := biclique.NumVertices()
	productEdge := func(u, v int) (int, error) {
		e, ok := product.EdgeBetween(u, v)
		if !ok {
			return 0, fmt.Errorf("blocking: expected product edge (%d,%d) missing", u, v)
		}
		return e.ID, nil
	}

	var pairs []EdgePair
	// (1) Distinct copies of the same base edge.
	for _, be := range base.Edges() {
		copies := make([]int, nb)
		for c := 0; c < nb; c++ {
			id, err := productEdge(be.U*nb+c, be.V*nb+c)
			if err != nil {
				return nil, nil, err
			}
			copies[c] = id
		}
		for i := 0; i < nb; i++ {
			for j := i + 1; j < nb; j++ {
				pairs = append(pairs, EdgePair{E1: copies[i], E2: copies[j]})
			}
		}
	}
	// (2) Biclique edges sharing a left endpoint, per base-vertex copy.
	for x := 0; x < base.NumVertices(); x++ {
		for l := 0; l < side; l++ {
			ids := make([]int, side)
			for r := 0; r < side; r++ {
				id, err := productEdge(x*nb+l, x*nb+side+r)
				if err != nil {
					return nil, nil, err
				}
				ids[r] = id
			}
			for i := 0; i < side; i++ {
				for j := i + 1; j < side; j++ {
					pairs = append(pairs, EdgePair{E1: ids[i], E2: ids[j]})
				}
			}
		}
	}
	return product, pairs, nil
}
