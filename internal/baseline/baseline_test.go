package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ftspanner/ftspanner/internal/fault"
	"github.com/ftspanner/ftspanner/internal/gen"
	"github.com/ftspanner/ftspanner/internal/verify"
)

func TestTrivial(t *testing.T) {
	g := gen.Complete(6)
	res := Trivial(g)
	if res.Spanner.NumEdges() != g.NumEdges() || len(res.Kept) != g.NumEdges() {
		t.Fatal("trivial baseline must keep everything")
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ExhaustiveCheck(1, fault.Vertices, 2); err != nil {
		t.Errorf("H=G must tolerate anything: %v", err)
	}
}

func TestUnionEFTArgumentChecks(t *testing.T) {
	if _, err := UnionEFT(gen.Complete(4), 3, -1); err == nil {
		t.Error("negative f should error")
	}
}

func TestUnionEFTZeroFaultsIsPlainGreedy(t *testing.T) {
	g := gen.Complete(10)
	res, err := UnionEFT(g, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.CheckFaultSet(3, fault.Edges, nil); err != nil {
		t.Errorf("f=0 union is not a 3-spanner: %v", err)
	}
}

func TestUnionEFTExhaustive(t *testing.T) {
	g := gen.Complete(7)
	const f = 2
	res, err := UnionEFT(g, 3, f)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ExhaustiveCheck(3, fault.Edges, f); err != nil {
		t.Errorf("union EFT fails exhaustive verification: %v", err)
	}
}

func TestUnionEFTExhaustsSmallGraphs(t *testing.T) {
	// A tree has no spare edges: one round consumes everything, further
	// rounds find empty residuals and the loop must stop early.
	g := gen.Path(8)
	res, err := UnionEFT(g, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.NumEdges() != g.NumEdges() {
		t.Errorf("union on a tree should keep all %d edges, kept %d", g.NumEdges(), res.Spanner.NumEdges())
	}
}

func TestQuickUnionEFTIsFaultTolerant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		maxM := n * (n - 1) / 2
		m := (n - 1) + rng.Intn(maxM-(n-1)+1)
		base, err := gen.ConnectedGNM(n, m, rng)
		if err != nil {
			return false
		}
		g, err := gen.RandomizeWeights(base, 1, 2, rng)
		if err != nil {
			return false
		}
		faults := rng.Intn(3)
		res, err := UnionEFT(g, 3, faults)
		if err != nil {
			return false
		}
		inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
		if err != nil {
			return false
		}
		return inst.ExhaustiveCheck(3, fault.Edges, faults) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSamplingVFTArgumentChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SamplingVFT(gen.Complete(4), 0, 1, SamplingVFTOptions{}, rng); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := SamplingVFT(gen.Complete(4), 2, -1, SamplingVFTOptions{}, rng); err == nil {
		t.Error("negative f should error")
	}
}

func TestSamplingVFTZeroFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.Complete(12)
	res, err := SamplingVFT(g, 2, 0, SamplingVFTOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.CheckFaultSet(3, fault.Vertices, nil); err != nil {
		t.Errorf("f=0 sampling is not a 3-spanner: %v", err)
	}
}

func TestSamplingVFTExhaustiveSmall(t *testing.T) {
	// Randomized construction: with the provable sample count on a small
	// instance the failure probability is negligible, and the fixed seed
	// makes the test deterministic (a correct run stays correct).
	rng := rand.New(rand.NewSource(3))
	g := gen.Complete(8)
	const f = 1
	res, err := SamplingVFT(g, 2, f, SamplingVFTOptions{Provable: true}, rng)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := verify.NewInstance(g, res.Spanner, res.Kept)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.ExhaustiveCheck(3, fault.Vertices, f); err != nil {
		t.Errorf("sampling VFT fails exhaustive verification: %v", err)
	}
}

func TestSamplingVFTSampleOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.Complete(10)
	res, err := SamplingVFT(g, 2, 2, SamplingVFTOptions{Samples: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// One sample with p=1/3 on 10 vertices: expect very few edges — mostly
	// just confirm the override plumbs through without error.
	if res.Spanner.NumEdges() > g.NumEdges() {
		t.Error("spanner larger than input?")
	}
}

func TestSamplingVFTKeptConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.Complete(15)
	res, err := SamplingVFT(g, 2, 2, SamplingVFTOptions{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kept) != res.Spanner.NumEdges() {
		t.Fatal("Kept length mismatch")
	}
	seen := make(map[int]bool)
	for sid, gid := range res.Kept {
		if seen[gid] {
			t.Fatalf("edge %d kept twice", gid)
		}
		seen[gid] = true
		se, ge := res.Spanner.Edge(sid), g.Edge(gid)
		su, sv := se.Endpoints()
		gu, gv := ge.Endpoints()
		if su != gu || sv != gv || se.Weight != ge.Weight {
			t.Fatal("mapping mismatch")
		}
	}
}

func BenchmarkUnionEFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(100, 800, rng)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := UnionEFT(g, 3, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSamplingVFT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	base, err := gen.ConnectedGNM(100, 800, rng)
	if err != nil {
		b.Fatal(err)
	}
	g, err := gen.RandomizeWeights(base, 1, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SamplingVFT(g, 2, 3, SamplingVFTOptions{}, rng); err != nil {
			b.Fatal(err)
		}
	}
}
