// Package baseline implements the comparators the paper positions itself
// against in experiment E3: the trivial spanner H = G, the provably correct
// union construction for edge faults, and a sampling construction for
// vertex faults in the spirit of Dinitz–Krauthgamer (PODC 2011, reference
// [16] of the paper) — polynomial in f where the exact greedy is
// exponential, at the price of larger output.
package baseline

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ftspanner/ftspanner/internal/graph"
	"github.com/ftspanner/ftspanner/internal/spanner"
)

// Result mirrors spanner.Result: the built subgraph plus the input edge IDs
// it keeps (spanner edge i corresponds to input edge Kept[i]).
type Result struct {
	Spanner *graph.Graph
	Kept    []int
}

// Trivial returns H = G, the only baseline with f = ∞: every fault set is
// tolerated at stretch 1, at full size. It anchors the size comparisons.
func Trivial(g *graph.Graph) *Result {
	h := graph.New(g.NumVertices())
	kept := make([]int, 0, g.NumEdges())
	for _, e := range g.Edges() {
		h.MustAddEdge(e.U, e.V, e.Weight)
		kept = append(kept, e.ID)
	}
	return &Result{Spanner: h, Kept: kept}
}

// UnionEFT builds an f-EFT t-spanner as the union of f+1 edge-disjoint
// t-spanners: H_1 spans G, H_2 spans G minus H_1's edges, and so on.
//
// Correctness: a surviving edge (u,v) of G\F is either in some H_i (and
// survives into H\F), or it survived into every residual graph G_i, so each
// H_i contains a u-v detour of weight <= t·w. The f+1 detours are pairwise
// edge-disjoint, and |F| <= f, so one of them avoids F entirely. This
// argument is vertex-fault-UNSOUND (the detours share endpoints' neighbors),
// which is exactly why the VFT problem needs the paper's machinery.
func UnionEFT(g *graph.Graph, t float64, f int) (*Result, error) {
	if f < 0 {
		return nil, fmt.Errorf("baseline: union needs f >= 0, got %d", f)
	}
	res := &Result{Spanner: graph.New(g.NumVertices())}
	inSpanner := make([]bool, g.NumEdges())

	residual := g
	residualToG := identity(g.NumEdges())
	for round := 0; round <= f; round++ {
		sub, err := spanner.Greedy(residual, t)
		if err != nil {
			return nil, err
		}
		if sub.Spanner.NumEdges() == 0 {
			break // residual graph exhausted
		}
		for _, rid := range sub.Kept {
			gid := residualToG[rid]
			if !inSpanner[gid] {
				inSpanner[gid] = true
				e := g.Edge(gid)
				res.Spanner.MustAddEdge(e.U, e.V, e.Weight)
				res.Kept = append(res.Kept, gid)
			}
		}
		if round == f {
			break
		}
		next, m := residual.FilterEdges(func(e graph.Edge) bool {
			return !inSpanner[residualToG[e.ID]]
		})
		nextToG := make([]int, len(m.EdgeTo))
		for newID, oldID := range m.EdgeTo {
			nextToG[newID] = residualToG[oldID]
		}
		residual, residualToG = next, nextToG
	}
	return res, nil
}

// SamplingVFTOptions tunes SamplingVFT.
type SamplingVFTOptions struct {
	// Samples overrides the number of sampled subgraphs. Zero selects the
	// practical default Θ(f²·ln n); set Provable to scale it by the extra
	// factor Θ(f·ln n) that a full union bound over all C(n,f) fault sets
	// requires.
	Samples int
	// Provable selects the union-bound sample count (much larger output).
	Provable bool
}

// SamplingVFT builds an f-VFT (2k-1)-spanner in the Dinitz–Krauthgamer
// style: repeatedly sample a random vertex subset that each vertex joins
// with probability 1/(f+1), build a Baswana–Sen (2k-1)-spanner of the
// induced subgraph, and return the union.
//
// Why it works: fix a fault set F (|F| <= f) and a surviving edge (u,v). A
// sample is "good" for them if u and v are in it and all of F is not, which
// happens with probability p²(1-p)^f = Θ(1/f²) at p = 1/(f+1) (the edge
// (u,v) is then inside the sampled subgraph, so its spanner keeps a detour
// avoiding F). With Θ(f²·log n) samples every (edge, fault-set) pair seen
// in practice is covered; covering all n^f fault sets provably (whp) needs
// the extra Θ(f·log n) factor of the Provable option. Either way the
// construction is polynomial in f — the runtime foil for experiment E7.
func SamplingVFT(g *graph.Graph, k, f int, opts SamplingVFTOptions, rng *rand.Rand) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: sampling needs k >= 1, got %d", k)
	}
	if f < 0 {
		return nil, fmt.Errorf("baseline: sampling needs f >= 0, got %d", f)
	}
	n := g.NumVertices()
	if f == 0 {
		// No faults: one spanner of the whole graph.
		bs, err := spanner.BaswanaSen(g, k, rng)
		if err != nil {
			return nil, err
		}
		return &Result{Spanner: bs.Spanner, Kept: bs.Kept}, nil
	}

	samples := opts.Samples
	if samples <= 0 {
		logN := math.Log(float64(n) + 1)
		samples = int(math.Ceil(3 * float64(f*f) * logN))
		if opts.Provable {
			samples = int(math.Ceil(float64(samples) * float64(f) * logN))
		}
		if samples < 1 {
			samples = 1
		}
	}

	res := &Result{Spanner: graph.New(n)}
	inSpanner := make([]bool, g.NumEdges())
	p := 1.0 / float64(f+1)
	var members []int
	for s := 0; s < samples; s++ {
		members = members[:0]
		for v := 0; v < n; v++ {
			if rng.Float64() < p {
				members = append(members, v)
			}
		}
		if len(members) < 2 {
			continue
		}
		sub, m, err := g.InducedSubgraph(members)
		if err != nil {
			return nil, err
		}
		bs, err := spanner.BaswanaSen(sub, k, rng)
		if err != nil {
			return nil, err
		}
		for _, sid := range bs.Kept {
			gid := m.EdgeTo[sid]
			if !inSpanner[gid] {
				inSpanner[gid] = true
				e := g.Edge(gid)
				res.Spanner.MustAddEdge(e.U, e.V, e.Weight)
				res.Kept = append(res.Kept, gid)
			}
		}
	}
	return res, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
