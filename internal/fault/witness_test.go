package fault

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// TestWitnessReuseHitsAndStaysExact drives an oracle through a greedy-like
// query sequence on a graph engineered for witness repetition (a bottleneck
// cut vertex), then checks (a) the cache actually hits, (b) hits return
// valid witnesses, and (c) counters add up.
func TestWitnessReuseHitsAndStaysExact(t *testing.T) {
	// Two cliques joined through a single cut vertex c: for every
	// cross-pair query, {c} is the unique witness, so after the first find
	// every subsequent query should be a cache hit.
	const side = 5
	g := newTwoCliquesGraph(side)
	c := 2 * side // the cut vertex ID

	o, err := NewOracle(g, Vertices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := 0
	for u := 0; u < side; u++ {
		for v := side; v < 2*side; v++ {
			// Bound below the through-c detour is impossible; pick a bound
			// the detour satisfies so only deleting c stretches the pair.
			w, found, err := o.FindFaultSet(u, v, 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !found {
				t.Fatalf("pair (%d,%d): cut vertex should witness", u, v)
			}
			if len(w) != 1 || w[0] != c {
				t.Fatalf("pair (%d,%d): witness %v, want [%d]", u, v, w, c)
			}
			queries++
		}
	}
	if o.WitnessHits() == 0 {
		t.Fatal("witness cache never hit on a workload built for it")
	}
	if o.WitnessHits()+o.WitnessMisses() > int64(queries) {
		t.Fatalf("hits %d + misses %d exceed query count %d", o.WitnessHits(), o.WitnessMisses(), queries)
	}
	t.Logf("witness cache: %d hits, %d misses over %d queries", o.WitnessHits(), o.WitnessMisses(), queries)
}

// newTwoCliquesGraph builds two unit-weight K_side cliques joined through
// one extra cut vertex (ID 2*side) with weight-1 spokes to every clique
// vertex. Removing the cut vertex disconnects the cliques.
func newTwoCliquesGraph(side int) *graph.Graph {
	g := graph.New(2*side + 1)
	for a := 0; a < side; a++ {
		for b := a + 1; b < side; b++ {
			g.MustAddEdge(a, b, 1)
			g.MustAddEdge(side+a, side+b, 1)
		}
	}
	c := 2 * side
	for a := 0; a < side; a++ {
		g.MustAddEdge(a, c, 1)
		g.MustAddEdge(side+a, c, 1)
	}
	return g
}

// TestWitnessCacheEntriesAreIsolated guards the mutation hazard of handing
// witnesses to callers: core.Greedy rewrites EFT witnesses in place (H edge
// IDs -> input IDs), so a returned slice must never alias a cache entry.
func TestWitnessCacheEntriesAreIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnectedGraph(rng, 10, 12)
	o, err := NewOracle(g, Edges, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.EdgesByWeight() {
		w, found, err := o.FindFaultSet(e.U, e.V, 1.2*e.Weight, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			continue
		}
		// Maul the returned witness the way core.Greedy does.
		for i := range w {
			w[i] = -999
		}
		// The cache must still hold only valid edge IDs.
		for _, cached := range o.witnesses {
			for _, x := range cached.set {
				if x < 0 || x >= g.NumEdges() {
					t.Fatalf("cache entry %v corrupted by caller mutation", cached.set)
				}
			}
		}
	}
}

// TestWitnessReuseDisabled checks the ablation switch: with reuse off, no
// cache state accumulates and counters stay zero.
func TestWitnessReuseDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnectedGraph(rng, 12, 24)
	o, err := NewOracle(g, Vertices, Options{DisableWitnessReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.EdgesByWeight() {
		if _, _, err := o.FindFaultSet(e.U, e.V, 1.3*e.Weight, 2); err != nil {
			t.Fatal(err)
		}
	}
	if o.WitnessHits() != 0 || o.WitnessMisses() != 0 || len(o.witnesses) != 0 {
		t.Fatalf("disabled witness reuse left traces: hits=%d misses=%d cached=%d",
			o.WitnessHits(), o.WitnessMisses(), len(o.witnesses))
	}
}
