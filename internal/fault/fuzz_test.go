package fault

import (
	"math/rand"
	"testing"
)

// FuzzOracleDifferential derives a small random instance from the fuzzed
// parameters and cross-checks the fully accelerated oracle against the
// ablated naive one on every edge query. Seed corpus lives in
// testdata/fuzz/FuzzOracleDifferential; `go test` replays it on every run,
// and `go test -fuzz=FuzzOracleDifferential ./internal/fault` explores
// further.
func FuzzOracleDifferential(f *testing.F) {
	f.Add(int64(1), uint64(8), uint64(10), uint64(1), false)
	f.Add(int64(2), uint64(12), uint64(30), uint64(2), true)
	f.Add(int64(3), uint64(6), uint64(0), uint64(3), false)
	f.Add(int64(20260726), uint64(14), uint64(40), uint64(0), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, extraRaw, budgetRaw uint64, edgeMode bool) {
		n := int(2 + nRaw%13)       // 2..14 vertices
		extra := int(extraRaw % 40) // up to 40 extra edges attempted
		budget := int(budgetRaw % 4)
		mode := Vertices
		if edgeMode {
			mode = Edges
		}
		rng := rand.New(rand.NewSource(seed))
		g := randomConnectedGraph(rng, n, extra)
		if g.NumEdges() == 0 {
			return
		}
		stretch := 1 + 2*rng.Float64()

		opt, err := NewOracle(g, mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := NewOracle(g, mode, Options{DisablePruning: true, DisableMemo: true, DisableWitnessReuse: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.EdgesByWeight() {
			bound := stretch * e.Weight
			w, foundOpt, err := opt.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatal(err)
			}
			_, foundNaive, err := naive.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatal(err)
			}
			if foundOpt != foundNaive {
				t.Fatalf("seed=%d n=%d mode=%v budget=%d edge (%d,%d) bound=%v: optimized=%v naive=%v",
					seed, n, mode, budget, e.U, e.V, bound, foundOpt, foundNaive)
			}
			if foundOpt && !witnessHolds(t, g, mode, e.U, e.V, bound, w) {
				t.Fatalf("seed=%d edge (%d,%d): invalid witness %v", seed, e.U, e.V, w)
			}
		}
	})
}
