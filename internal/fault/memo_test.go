package fault

import (
	"math/rand"
	"testing"
)

// TestMemoGenerationIsolation is the regression test for the memo lifecycle
// fix: the table is no longer wiped key-by-key per query, so stale entries
// from earlier queries must be invisible to later ones. A fresh oracle
// (empty memo) and a long-lived oracle (memo full of dead generations) must
// answer every query identically.
func TestMemoGenerationIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		n := 6 + rng.Intn(8)
		g := randomConnectedGraph(rng, n, rng.Intn(2*n))
		mode := Vertices
		if trial%2 == 1 {
			mode = Edges
		}
		longLived, err := NewOracle(g, mode, Options{DisableWitnessReuse: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.EdgesByWeight() {
			bound := (1 + 2*rng.Float64()) * e.Weight
			budget := rng.Intn(4)
			_, foundLong, err := longLived.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatal(err)
			}
			// The fresh oracle's memo cannot contain anything from earlier
			// queries; a differing answer means a stale entry leaked through
			// the generation stamps.
			fresh, err := NewOracle(g, mode, Options{DisableWitnessReuse: true})
			if err != nil {
				t.Fatal(err)
			}
			_, foundFresh, err := fresh.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatal(err)
			}
			if foundLong != foundFresh {
				t.Fatalf("trial %d edge (%d,%d) bound=%v budget=%d: long-lived oracle=%v, fresh oracle=%v (memo leak)",
					trial, e.U, e.V, bound, budget, foundLong, foundFresh)
			}
		}
	}
}

// TestMemoNotWipedPerQuery asserts the performance half of the lifecycle
// fix: entries accumulate across queries (the old implementation deleted
// every key on entry, making each query pay for all previous ones).
func TestMemoNotWipedPerQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnectedGraph(rng, 12, 30)
	// Edge mode always branches (the direct edge is itself a candidate), so
	// every query with spare budget feeds the memo table.
	o, err := NewOracle(g, Edges, Options{DisableWitnessReuse: true, DisablePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	var grew bool
	prev := 0
	for _, e := range g.EdgesByWeight() {
		if _, _, err := o.FindFaultSet(e.U, e.V, 2*e.Weight, 3); err != nil {
			t.Fatal(err)
		}
		if len(o.memo) > prev && prev > 0 {
			grew = true
		}
		if len(o.memo) > prev {
			prev = len(o.memo)
		}
	}
	if !grew {
		t.Fatal("memo table never accumulated entries across queries; is it being wiped again?")
	}
	if o.memoGen != int64AsUint64(o.calls) {
		t.Fatalf("memoGen %d should have advanced once per query (%d calls)", o.memoGen, o.calls)
	}
}

func int64AsUint64(x int64) uint64 { return uint64(x) }

// TestMemoTableCapResets exercises the memory backstop: pushing the table
// past memoMaxEntries must reallocate it without affecting answers (covered
// by forcing the cap artificially low via direct map stuffing).
func TestMemoTableCapResets(t *testing.T) {
	if testing.Short() {
		t.Skip("stuffs a million-entry map; skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(rng, 10, 20)
	o, err := NewOracle(g, Vertices, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Stuff the table beyond the cap with dead entries, then query: the
	// reset path must run and the query must still answer correctly.
	for i := uint64(0); i <= memoMaxEntries; i++ {
		o.memo[i] = 0
	}
	e := g.Edge(0)
	if _, _, err := o.FindFaultSet(e.U, e.V, 1.5*e.Weight, 2); err != nil {
		t.Fatal(err)
	}
	if len(o.memo) > memoMaxEntries/2 {
		t.Fatalf("memo table not reset after exceeding cap: %d entries", len(o.memo))
	}
}
