package fault

import (
	"math/rand"
	"testing"

	"github.com/ftspanner/ftspanner/internal/graph"
)

// TestBidiAblationDifferential cross-checks the oracle with the
// bidirectional engine (default) against the unidirectional ablation: the
// two must agree on every query verdict, since both reachability tests are
// exact.
func TestBidiAblationDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for inst := 0; inst < 40; inst++ {
		n := 5 + rng.Intn(12)
		g := randomConnectedGraph(rng, n, rng.Intn(3*n))
		mode := Vertices
		if inst%2 == 1 {
			mode = Edges
		}
		bidi, err := NewOracle(g, mode, Options{})
		if err != nil {
			t.Fatal(err)
		}
		uni, err := NewOracle(g, mode, Options{DisableBidi: true})
		if err != nil {
			t.Fatal(err)
		}
		stretch := 1 + 2*rng.Float64()
		budget := rng.Intn(3)
		for _, e := range g.EdgesByWeight() {
			bound := stretch * e.Weight
			wb, foundBidi, err := bidi.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatal(err)
			}
			_, foundUni, err := uni.FindFaultSet(e.U, e.V, bound, budget)
			if err != nil {
				t.Fatal(err)
			}
			if foundBidi != foundUni {
				t.Fatalf("inst %d mode=%v edge (%d,%d) bound=%v budget=%d: bidi=%v uni=%v",
					inst, mode, e.U, e.V, bound, budget, foundBidi, foundUni)
			}
			if foundBidi && !witnessHolds(t, g, mode, e.U, e.V, bound, wb) {
				t.Fatalf("inst %d: invalid bidi witness %v for (%d,%d)", inst, wb, e.U, e.V)
			}
		}
	}
}

// TestRebindTracksSnapshots drives one oracle across a growing graph's
// snapshots, checking results always reflect the bound graph and that
// rebinding rejects mismatched shapes.
func TestRebindTracksSnapshots(t *testing.T) {
	g := graph.New(4)
	oracle, err := NewOracle(g.Snapshot(), Vertices, Options{EdgeCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Empty graph: the empty fault set is already a witness.
	w, found, err := oracle.FindFaultSet(0, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !found || len(w) != 0 {
		t.Fatalf("empty graph: found=%v w=%v, want empty witness", found, w)
	}

	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)
	if err := oracle.Rebind(g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	// Two vertex-disjoint 0-3 paths: budget 1 cannot break both.
	if _, found, err = oracle.FindFaultSet(0, 3, 10, 1); err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("budget 1 cannot disconnect two disjoint paths")
	}
	// Budget 2 can.
	if w, found, err = oracle.FindFaultSet(0, 3, 10, 2); err != nil {
		t.Fatal(err)
	}
	if !found || len(w) != 2 {
		t.Fatalf("budget 2: found=%v w=%v, want a 2-vertex witness", found, w)
	}

	big := graph.New(5)
	if err := oracle.Rebind(big); err == nil {
		t.Fatal("rebind must reject a different vertex count")
	}
	over := graph.New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			over.MustAddEdge(i, j, 1)
		}
	}
	overCap, err := NewOracle(graph.New(4), Vertices, Options{EdgeCapacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := overCap.Rebind(over); err == nil {
		t.Fatal("rebind must reject a graph over EdgeCapacity")
	}
}

// TestValidateWitness pins the revalidation semantics the parallel greedy's
// commit loop relies on.
func TestValidateWitness(t *testing.T) {
	// 0-3 via 1 (short) and via 2 (short); direct heavy edge 0-3.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(2, 3, 1)

	oracle, err := NewOracle(g, Vertices, Options{EdgeCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := oracle.ValidateWitness(0, 3, 3, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("{1,2} disconnects 0-3: must validate")
	}
	ok, err = oracle.ValidateWitness(0, 3, 3, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("{1} leaves the 0-2-3 detour: must not validate")
	}
	// Witness containing an endpoint is never valid.
	ok, err = oracle.ValidateWitness(0, 3, 3, []int{0})
	if err != nil || ok {
		t.Fatalf("endpoint in witness: ok=%v err=%v, want false,nil", ok, err)
	}
	if _, err = oracle.ValidateWitness(0, 3, 3, []int{99}); err == nil {
		t.Fatal("out-of-range witness element must error")
	}
	if _, err = oracle.ValidateWitness(0, 0, 3, nil); err == nil {
		t.Fatal("coincident endpoints must error")
	}

	// Edge mode: faulting both short paths' first edges within the bound.
	eo, err := NewOracle(g, Edges, Options{EdgeCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = eo.ValidateWitness(0, 3, 1.5, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("edge witness {0,2} must validate at bound 1.5")
	}

	// A validated witness fed back via NoteWitness should serve the next
	// identical query from the cache.
	oracle.NoteWitness([]int{1, 2})
	before := oracle.WitnessHits()
	_, found, err := oracle.FindFaultSet(0, 3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("witness {1,2} exists for budget 2")
	}
	if oracle.WitnessHits() != before+1 {
		t.Fatalf("expected a witness-cache hit after NoteWitness, hits %d -> %d",
			before, oracle.WitnessHits())
	}
}
